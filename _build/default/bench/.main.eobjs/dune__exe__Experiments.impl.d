bench/experiments.ml: Array Format List Printf Rrs_core Rrs_offline Rrs_sim Rrs_stats Rrs_uniform Rrs_workload
