bench/main.ml: Array Experiments Format Micro Sys
