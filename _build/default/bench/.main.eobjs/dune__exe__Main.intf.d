bench/main.mli:
