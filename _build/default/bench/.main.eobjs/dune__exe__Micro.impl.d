bench/micro.ml: Analyze Bechamel Benchmark Format Hashtbl Instance List Measure Printf Result Rrs_core Rrs_offline Rrs_sim Rrs_stats Rrs_workload Staged Test Time Toolkit
