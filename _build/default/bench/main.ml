(* Benchmark / experiment harness entry point.

   Prints the experiment tables E1-E16 (one per claim of the paper; see
   DESIGN.md section 4 and EXPERIMENTS.md for the index) followed by the
   E11 bechamel throughput microbenches.

   Usage:
     dune exec bench/main.exe            # everything
     dune exec bench/main.exe -- tables  # only the claim tables
     dune exec bench/main.exe -- micro   # only the microbenches *)

let () =
  let mode = if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" in
  Format.printf
    "Reconfigurable Resource Scheduling with Variable Delay Bounds — experiment \
     harness@.";
  (match mode with
  | "tables" -> Experiments.run_all ()
  | "micro" -> Micro.run ()
  | "all" ->
      Experiments.run_all ();
      Micro.run ()
  | other ->
      Format.printf "unknown mode %S (expected: all | tables | micro)@." other;
      exit 1);
  Format.printf "@.done.@."
