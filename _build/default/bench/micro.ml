(* E11 — throughput microbenches (bechamel): how fast the simulator and
   the algorithms run, scaling in colors and resources. One Test.make per
   measured configuration; OLS estimate of ns/run printed as a table. *)

open Bechamel
open Toolkit

let make_instance ~colors =
  Rrs_workload.Random_workloads.uniform ~seed:17 ~colors ~delta:4
    ~bound_log_range:(0, 4) ~horizon:128 ~load:0.8 ~rate_limited:true ()

let engine_test ~name ~policy ~n instance =
  Test.make ~name
    (Staged.stage (fun () ->
         ignore (Rrs_sim.Engine.cost ~n ~policy instance)))

let tests () =
  let policies : (string * (module Rrs_sim.Policy.POLICY)) list =
    [
      ("dlru", (module Rrs_core.Policy_lru));
      ("edf", (module Rrs_core.Policy_edf));
      ("dlru-edf", (module Rrs_core.Policy_lru_edf));
    ]
  in
  let scaling_in_colors =
    List.concat_map
      (fun colors ->
        let instance = make_instance ~colors in
        List.map
          (fun (name, policy) ->
            engine_test
              ~name:(Printf.sprintf "%s/colors=%d" name colors)
              ~policy ~n:16 instance)
          policies)
      [ 8; 32; 128 ]
  in
  let scaling_in_resources =
    let instance = make_instance ~colors:32 in
    List.map
      (fun n ->
        engine_test
          ~name:(Printf.sprintf "dlru-edf/n=%d" n)
          ~policy:(module Rrs_core.Policy_lru_edf)
          ~n instance)
      [ 4; 16; 64 ]
  in
  let pipelines =
    let batched =
      Rrs_workload.Random_workloads.uniform ~seed:17 ~colors:16 ~delta:4
        ~bound_log_range:(0, 4) ~horizon:128 ~load:3.0 ~rate_limited:false ()
    in
    let unbatched =
      Rrs_workload.Random_workloads.unbatched ~seed:17 ~colors:16 ~delta:4
        ~bound_range:(3, 24) ~horizon:128 ~load:0.5 ()
    in
    [
      Test.make ~name:"pipeline/distribute"
        (Staged.stage (fun () ->
             ignore (Result.get_ok (Rrs_core.Distribute.run ~n:16 batched))));
      Test.make ~name:"pipeline/varbatch"
        (Staged.stage (fun () ->
             ignore (Result.get_ok (Rrs_core.Var_batch.run ~n:16 unbatched))));
      Test.make ~name:"reference/par-edf"
        (Staged.stage (fun () ->
             ignore (Rrs_core.Par_edf.drop_cost ~m:2 (make_instance ~colors:32))));
      Test.make ~name:"reference/greedy-offline"
        (Staged.stage (fun () ->
             ignore (Rrs_offline.Greedy_offline.cost ~m:2 (make_instance ~colors:32))));
    ]
  in
  scaling_in_colors @ scaling_in_resources @ pipelines

let run () =
  Format.printf "@.---- E11: throughput microbenches (bechamel, ns per full run) ----@.";
  let cfg =
    Benchmark.cfg ~limit:100 ~quota:(Time.second 0.25) ~kde:None ~stabilize:false ()
  in
  let table =
    Rrs_stats.Table.create ~title:"E11: engine + pipeline throughput"
      ~columns:[ "benchmark"; "time per run"; "runs/s"; "r^2" ]
  in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  List.iter
    (fun test ->
      let raw = Benchmark.all cfg Instance.[ monotonic_clock ] test in
      let results = Analyze.all ols Instance.monotonic_clock raw in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some (ns :: _) ->
              let human =
                if ns > 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
                else if ns > 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
                else if ns > 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
                else Printf.sprintf "%.0f ns" ns
              in
              Rrs_stats.Table.add_row table
                [
                  name;
                  human;
                  Printf.sprintf "%.1f" (1e9 /. ns);
                  (match Analyze.OLS.r_square ols_result with
                  | Some r2 -> Printf.sprintf "%.3f" r2
                  | None -> "-");
                ]
          | Some [] | None ->
              Rrs_stats.Table.add_row table [ name; "-"; "-"; "-" ])
        results)
    (tests ());
  Rrs_stats.Table.print table
