examples/adversary_demo.ml: Format List Rrs_sim Rrs_stats Rrs_workload
