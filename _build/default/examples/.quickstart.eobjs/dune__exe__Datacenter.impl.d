examples/datacenter.ml: Format List Rrs_sim Rrs_stats Rrs_workload
