examples/datacenter.mli:
