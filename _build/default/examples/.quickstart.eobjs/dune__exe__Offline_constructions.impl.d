examples/offline_constructions.ml: Format List Rrs_core Rrs_offline Rrs_sim Rrs_workload
