examples/offline_constructions.mli:
