examples/quickstart.ml: Format List Rrs_core Rrs_offline Rrs_sim Rrs_stats
