examples/quickstart.mli:
