examples/router.ml: Format List Rrs_core Rrs_sim Rrs_stats Rrs_workload
