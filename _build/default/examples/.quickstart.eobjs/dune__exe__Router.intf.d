examples/router.mli:
