(* The paper's two lower-bound constructions, live (Appendices A and B).

   Appendix A drives ΔLRU into underutilization: recency pins idle
   short-term colors while a huge long-term backlog starves. Appendix B
   drives EDF into thrashing: an intermittent short-bound color keeps
   displacing the long-bound color with the latest deadline. ΔLRU-EDF
   survives both.

   Run with: dune exec examples/adversary_demo.exe *)

module Engine = Rrs_sim.Engine
module Table = Rrs_stats.Table

let run_all ~n (adv : Rrs_workload.Adversary.lower_bound_input) =
  Format.printf "@.%s@." adv.description;
  Format.printf "  (online gets n=%d resources; OFF gets 1)@." n;
  let table =
    Table.create ~title:adv.instance.Rrs_sim.Instance.name
      ~columns:[ "algorithm"; "cost"; "reconfig cost"; "drops"; "vs OFF" ]
  in
  List.iter
    (fun (name, policy) ->
      let result = Engine.run ~record_events:false ~n ~policy adv.instance in
      let ledger = result.ledger in
      Table.add_row table
        [
          name;
          Table.cell_int (Rrs_sim.Ledger.total_cost ledger);
          Table.cell_int (Rrs_sim.Ledger.reconfig_cost ledger);
          Table.cell_int (Rrs_sim.Ledger.drop_count ledger);
          Table.cell_ratio
            (float_of_int (Rrs_sim.Ledger.total_cost ledger)
            /. float_of_int adv.off_cost);
        ])
    Rrs_stats.Experiment.standard_policies;
  Table.add_row table
    [ "OFF (paper)"; Table.cell_int adv.off_cost; "-"; "-"; "1.00x" ];
  Table.print table

let () =
  (* Appendix A, growing j: ΔLRU's ratio grows like 2^(j+1) / (n delta)
     while ΔLRU-EDF stays flat. *)
  Format.printf "=== Appendix A: the input that kills ΔLRU ===@.";
  run_all ~n:8 (Rrs_workload.Adversary.lru_killer ~n:8 ~delta:2 ~j:5 ~k:8);
  run_all ~n:8 (Rrs_workload.Adversary.lru_killer ~n:8 ~delta:2 ~j:7 ~k:10);

  (* Appendix B, growing k - j: EDF's ratio grows like 2^(k-j-1)/(n/2+1). *)
  Format.printf "@.=== Appendix B: the input that kills EDF ===@.";
  run_all ~n:8 (Rrs_workload.Adversary.edf_killer ~n:8 ~delta:10 ~j:4 ~k:6);
  run_all ~n:8 (Rrs_workload.Adversary.edf_killer ~n:8 ~delta:10 ~j:4 ~k:8);

  (* The motivation scenario from the introduction: background + bursts. *)
  Format.printf "@.=== Intro motivation: background vs short-term jobs ===@.";
  let instance =
    Rrs_workload.Adversary.motivation ~seed:11 ~short_colors:6 ~short_bound_log:3
      ~long_bound_log:9 ~delta:4 ~burst_probability:0.35 ()
  in
  let reference = Rrs_stats.Experiment.reference ~m:2 instance in
  let table =
    Table.create ~title:"motivation scenario (n = 16, m = 2)"
      ~columns:[ "algorithm"; "cost"; "reconfig cost"; "drops"; "vs lower bound" ]
  in
  List.iter
    (fun (name, policy) ->
      let row = Rrs_stats.Experiment.run_policy ~n:16 ~reference ~policy instance in
      Table.add_row table
        [
          name;
          Table.cell_int row.cost;
          Table.cell_int (instance.Rrs_sim.Instance.delta * row.reconfig_count);
          Table.cell_int row.drop_count;
          Table.cell_ratio row.ratio;
        ])
    Rrs_stats.Experiment.standard_policies;
  Table.print table
