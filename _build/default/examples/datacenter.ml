(* Shared data center scenario (paper intro, refs [4, 5]): services with
   different delay tolerances share a processor pool whose allocation must
   follow the shifting workload composition.

   The example compares the three online policies of Section 3.1 across
   resource budgets and prints a cost-breakdown table showing where each
   one loses: ΔLRU underutilizes (drop-heavy), EDF thrashes
   (reconfiguration-heavy), and ΔLRU-EDF balances both.

   Run with: dune exec examples/datacenter.exe *)

module Experiment = Rrs_stats.Experiment
module Table = Rrs_stats.Table

let () =
  let services = 12 in
  let delta = 6 in
  let instance =
    Rrs_workload.Scenarios.datacenter ~seed:42 ~services ~delta ~phases:4
      ~phase_length:128 ()
  in
  Format.printf "%a@.@." Rrs_sim.Instance.pp_summary instance;

  let m = 3 in
  let reference = Experiment.reference ~m instance in
  Format.printf
    "offline reference with m=%d resources: lower bound %d, greedy upper %s@.@." m
    reference.lower_bound
    (match reference.greedy_upper with Some c -> string_of_int c | None -> "-");

  let table =
    Table.create ~title:"policies across resource budgets (datacenter)"
      ~columns:[ "policy"; "n"; "cost"; "reconfig"; "drops"; "vs lower bound" ]
  in
  List.iter
    (fun n ->
      List.iter
        (fun (name, policy) ->
          let row = Experiment.run_policy ~n ~reference ~policy instance in
          Table.add_row table
            [
              name;
              Table.cell_int n;
              Table.cell_int row.cost;
              Table.cell_int row.reconfig_count;
              Table.cell_int row.drop_count;
              Table.cell_ratio row.ratio;
            ])
        Experiment.standard_policies)
    [ m; 2 * m; 8 * m ];
  Table.print table;

  (* The layered solver (= ΔLRU-EDF here) with the paper's n = 8m. *)
  match Experiment.run_solver ~n:(8 * m) ~reference instance with
  | Ok row ->
      Format.printf
        "@.solver with n = 8m = %d: cost %d (%.2fx the lower bound; the paper \
         guarantees O(1))@."
        (8 * m) row.cost row.ratio
  | Error message -> Format.printf "solver failed: %s@." message
