(* The paper's offline constructions, live: Aggregate (Lemma 4.1) and
   the punctual-schedule construction (Lemma 5.3).

   These are the machinery behind Theorems 2 and 3: they show that an
   optimal offline schedule can be massaged — at a constant-factor
   resource and reconfiguration overhead — into the restricted forms
   (rate-limited subcolors, punctual executions) that the online
   reductions need to compete against.

   Run with: dune exec examples/offline_constructions.exe *)

module Instance = Rrs_sim.Instance
module Schedule = Rrs_sim.Schedule
module OS = Rrs_offline.Offline_schedule

let show_grid name (grid : OS.t) =
  Format.printf "  %-28s %d resources, %d executions, %d reconfigurations@." name
    grid.OS.m (OS.exec_count grid) (OS.reconfig_count grid)

let () =
  (* --- Aggregate --- *)
  Format.printf "=== Aggregate (Lemma 4.1) ===@.";
  let batched =
    Rrs_workload.Random_workloads.bursty ~seed:3 ~colors:6 ~delta:2
      ~bound_log_range:(0, 4) ~horizon:96 ~load:2.0 ~churn:0.4
      ~rate_limited:false ()
  in
  Format.printf "%a@." Instance.pp_summary batched;
  (* A thrashy schedule T: online EDF with 4 resources. *)
  let run =
    Rrs_sim.Engine.run ~record_events:true ~n:4
      ~policy:(module Rrs_core.Policy_edf) batched
  in
  let t = OS.of_schedule (Schedule.of_run ~instance:batched ~n:4 ~speed:1 run.ledger) in
  show_grid "input T" t;
  (match Rrs_offline.Aggregate.run t with
  | Error message -> Format.printf "aggregate failed: %s@." message
  | Ok result -> (
      show_grid "output T' (subcolors)" result.output;
      Format.printf "  subcolor instance has %d colors (from %d); relabels %d, \
                     fallback placements %d@."
        (Instance.num_colors result.inner_instance)
        (Instance.num_colors batched) result.relabels result.fallback_placements;
      match OS.to_schedule result.output with
      | Error message -> Format.printf "  output replay failed: %s@." message
      | Ok schedule ->
          Format.printf "  output validates: %b@."
            (Schedule.validate schedule = Ok ())));

  (* --- Punctualize --- *)
  Format.printf "@.=== Punctual schedules (Lemmas 5.1-5.3) ===@.";
  let base =
    Rrs_workload.Random_workloads.uniform ~seed:8 ~colors:5 ~delta:3
      ~bound_log_range:(1, 4) ~horizon:96 ~load:0.7 ~rate_limited:true ()
  in
  (* Jitter arrivals so the greedy schedule mixes early, punctual and
     late executions. *)
  let rng = Rrs_workload.Gen.create ~seed:99 in
  let instance =
    Instance.make ~name:"jittered" ~delta:3 ~bounds:base.Instance.bounds
      ~arrivals:
        (List.map
           (fun (round, request) -> (round + Rrs_workload.Gen.int rng 3, request))
           (Instance.nonempty_arrivals base))
      ()
  in
  Format.printf "%a@." Instance.pp_summary instance;
  match Rrs_offline.Greedy_offline.run ~m:2 instance with
  | Error message -> Format.printf "greedy failed: %s@." message
  | Ok { schedule; _ } -> (
      let s = OS.of_schedule schedule in
      show_grid "input S (greedy offline)" s;
      let early, punctual, late = Rrs_offline.Punctualize.split s in
      Format.printf "  execution classes: %d early / %d punctual / %d late@."
        (OS.exec_count early) (OS.exec_count punctual) (OS.exec_count late);
      match Rrs_offline.Punctualize.punctual_schedule s with
      | Error message -> Format.printf "punctualize failed: %s@." message
      | Ok out -> (
          show_grid "output S' (punctual)" out;
          let e, p, l = Rrs_offline.Punctualize.split out in
          Format.printf "  output classes: %d early / %d punctual / %d late@."
            (OS.exec_count e) (OS.exec_count p) (OS.exec_count l);
          match OS.to_schedule out with
          | Error message -> Format.printf "  output replay failed: %s@." message
          | Ok validated ->
              Format.printf "  output validates: %b@."
                (Schedule.validate validated = Ok ())))
