(* Quickstart: build a small instance by hand, run the paper's ΔLRU-EDF
   pipeline on it, inspect costs, and validate the schedule.

   Run with: dune exec examples/quickstart.exe *)

module Instance = Rrs_sim.Instance
module Schedule = Rrs_sim.Schedule
module Solver = Rrs_core.Solver

let () =
  (* Two job categories: color 0 is latency-sensitive (delay bound 2),
     color 1 is background work (delay bound 8). Reconfiguring a resource
     costs delta = 3; dropping a job costs 1. *)
  let instance =
    Instance.make ~name:"quickstart" ~delta:3 ~bounds:[| 2; 8 |]
      ~arrivals:
        [
          (0, [ (0, 2); (1, 6) ]); (* burst of both at round 0 *)
          (2, [ (0, 2) ]);
          (4, [ (0, 1) ]);
          (8, [ (1, 4) ]); (* second background batch *)
          (10, [ (0, 2) ]);
        ]
      ()
  in
  Format.printf "%a@.@." Instance.pp_summary instance;

  (* The solver classifies the instance and picks the matching pipeline:
     direct ΔLRU-EDF here, since the input is rate-limited with
     power-of-two bounds. *)
  let outcome =
    match Solver.solve ~n:8 instance with
    | Ok outcome -> outcome
    | Error message -> failwith message
  in
  Format.printf "pipeline: %s@." (Solver.pipeline_to_string outcome.pipeline);
  Format.printf "total cost: %d (= %d reconfigs x delta %d + %d drops)@."
    outcome.cost outcome.reconfig_count instance.delta outcome.drop_count;

  (* Every schedule can be validated independently of the engine that
     produced it. *)
  (match Schedule.validate outcome.schedule with
  | Ok () -> Format.printf "schedule: valid@."
  | Error errors ->
      Format.printf "schedule INVALID:@.";
      List.iter (Format.printf "  %s@.") errors);

  (* Compare against offline references: the exact optimum (the instance
     is tiny), the valid lower bounds, and the clairvoyant heuristic. *)
  let reference = Rrs_stats.Experiment.reference ~exact_budget:500_000 ~m:1 instance in
  Format.printf "@.offline references (m = 1 resource):@.";
  List.iter
    (fun (name, value) -> Format.printf "  %-14s %d@." name value)
    (Rrs_offline.Lower_bounds.all ~m:1 instance);
  (match reference.exact with
  | Some opt -> Format.printf "  %-14s %d@." "exact OPT" opt
  | None -> ());
  (match reference.greedy_upper with
  | Some upper -> Format.printf "  %-14s %d@." "greedy (>=OPT)" upper
  | None -> ());
  Format.printf "@.cost ratio vs best reference: %.2fx@."
    (float_of_int outcome.cost
    /. float_of_int (Rrs_stats.Experiment.denominator reference))
