(* Multi-service router scenario (paper intro, refs [16, 17, 18]): packet
   classes on a multi-core network processor, with per-class delay
   tolerances (QoS) and Zipf-skewed traffic shares.

   The example shows the full VarBatch pipeline on an unbatched variant —
   packets arrive at arbitrary rounds — and inspects the per-class drop
   profile of the resulting schedule.

   Run with: dune exec examples/router.exe *)

module Instance = Rrs_sim.Instance
module Ledger = Rrs_sim.Ledger
module Table = Rrs_stats.Table

let () =
  let classes = 10 in
  let batched =
    Rrs_workload.Scenarios.router ~seed:7 ~classes ~delta:5 ~horizon:512
      ~utilization:0.8 ~n_ref:4 ()
  in
  (* Make it a general [delta|1|D_l|1] stream: jitter every batch by a few
     rounds so arrivals are no longer aligned to bound multiples. *)
  let rng = Rrs_workload.Gen.create ~seed:99 in
  let jittered =
    Instance.make ~name:"router-unbatched" ~delta:batched.Instance.delta
      ~bounds:batched.Instance.bounds
      ~arrivals:
        (List.map
           (fun (round, request) ->
             (round + Rrs_workload.Gen.int rng 3, request))
           (Instance.nonempty_arrivals batched))
      ()
  in
  Format.printf "%a@.@." Instance.pp_summary jittered;

  let n = 16 in
  let outcome =
    match Rrs_core.Solver.solve ~n jittered with
    | Ok outcome -> outcome
    | Error message -> failwith message
  in
  Format.printf "pipeline: %s (unbatched input goes through VarBatch)@."
    (Rrs_core.Solver.pipeline_to_string outcome.pipeline);
  Format.printf "cost: %d (%d reconfigs, %d dropped packets of %d)@.@."
    outcome.cost outcome.reconfig_count outcome.drop_count
    (Instance.total_jobs jittered);

  (* Per-class QoS report from the schedule's event log: delivery and
     latency profiles per packet class. *)
  let metrics = Rrs_stats.Metrics.of_schedule outcome.schedule in
  Table.print (Rrs_stats.Metrics.to_table metrics);
  Format.printf "@.fleet-wide p99 latency: %d rounds (mean %.2f)@."
    metrics.p99_latency metrics.mean_latency;

  (* QoS view: how much would loss improve with double the cores? *)
  match Rrs_core.Solver.solve ~n:(2 * n) jittered with
  | Ok bigger ->
      Format.printf "@.with n = %d cores: %d drops (was %d)@." (2 * n)
        bigger.drop_count outcome.drop_count
  | Error message -> Format.printf "solver failed: %s@." message
