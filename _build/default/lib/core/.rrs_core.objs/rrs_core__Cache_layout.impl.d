lib/core/cache_layout.ml: Array Hashtbl List Printf
