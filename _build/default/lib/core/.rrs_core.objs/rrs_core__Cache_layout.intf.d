lib/core/cache_layout.mli: Rrs_sim
