lib/core/color_state.ml: Array Hashtbl Int List Rrs_sim
