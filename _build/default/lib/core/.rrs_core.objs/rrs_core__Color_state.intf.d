lib/core/color_state.mli: Rrs_sim
