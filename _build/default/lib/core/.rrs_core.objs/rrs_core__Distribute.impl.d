lib/core/distribute.ml: Array List Policy_lru_edf Reduction Rrs_sim
