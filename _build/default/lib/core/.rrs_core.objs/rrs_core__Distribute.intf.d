lib/core/distribute.mli: Rrs_sim Stdlib
