lib/core/instrument.ml: Hashtbl List
