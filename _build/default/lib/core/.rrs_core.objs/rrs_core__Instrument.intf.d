lib/core/instrument.mli:
