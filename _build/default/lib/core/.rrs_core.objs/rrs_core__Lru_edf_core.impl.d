lib/core/lru_edf_core.ml: Cache_layout Color_state Float Hashtbl Instrument List Printf Ranking Rrs_ds Rrs_sim
