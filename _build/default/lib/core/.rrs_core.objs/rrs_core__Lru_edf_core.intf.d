lib/core/lru_edf_core.mli: Rrs_sim
