lib/core/par_edf.ml: Array List Ranking Rrs_sim
