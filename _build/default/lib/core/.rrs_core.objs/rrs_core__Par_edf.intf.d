lib/core/par_edf.mli: Rrs_sim
