lib/core/policy_edf.mli: Rrs_sim
