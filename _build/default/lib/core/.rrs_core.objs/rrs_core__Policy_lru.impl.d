lib/core/policy_lru.ml: Cache_layout Color_state Hashtbl List Ranking Rrs_ds Rrs_sim
