lib/core/policy_lru.mli: Rrs_sim
