lib/core/policy_lru_edf.ml: Lru_edf_core
