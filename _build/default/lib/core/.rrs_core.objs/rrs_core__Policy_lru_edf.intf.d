lib/core/policy_lru_edf.mli: Rrs_sim
