lib/core/policy_lru_k.ml: Cache_layout Color_state Hashtbl Int List Rrs_ds Rrs_sim
