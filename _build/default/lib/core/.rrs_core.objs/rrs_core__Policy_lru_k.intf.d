lib/core/policy_lru_k.mli: Rrs_sim
