lib/core/ranking.ml: Array Color_state Int Rrs_sim
