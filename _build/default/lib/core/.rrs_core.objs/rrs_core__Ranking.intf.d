lib/core/ranking.mli: Color_state Rrs_sim
