lib/core/reduction.ml: List Rrs_sim
