lib/core/seq_edf.ml: Array Cache_layout Color_state Hashtbl List Ranking Rrs_ds Rrs_sim
