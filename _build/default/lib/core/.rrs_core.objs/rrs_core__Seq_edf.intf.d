lib/core/seq_edf.mli: Rrs_sim
