lib/core/solver.ml: Distribute Policy_lru_edf Printf Rrs_sim Var_batch
