lib/core/solver.mli: Rrs_sim
