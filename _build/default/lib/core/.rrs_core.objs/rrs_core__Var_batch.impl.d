lib/core/var_batch.ml: Array Distribute Fun List Reduction Rrs_sim
