lib/core/var_batch.mli: Distribute Rrs_sim Stdlib
