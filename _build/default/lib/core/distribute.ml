module Instance = Rrs_sim.Instance
module Schedule = Rrs_sim.Schedule
module Rebuild = Rrs_sim.Rebuild
module Engine = Rrs_sim.Engine

type result = {
  schedule : Schedule.t;
  inner_instance : Instance.t;
  inner : Engine.result;
  parent_of : int array;
}

let transform (instance : Instance.t) =
  if not (Instance.is_batched instance) then
    invalid_arg "Distribute.transform: instance is not batched";
  let num_colors = Instance.num_colors instance in
  let bounds = instance.bounds in
  (* Chunks needed per color: the largest request of color l uses
     ceil(count / D_l) subcolors. Every color keeps at least one subcolor
     so the two instances have aligned color universes. *)
  let chunks = Array.make num_colors 1 in
  Array.iter
    (fun request ->
      List.iter
        (fun (color, count) ->
          let needed = (count + bounds.(color) - 1) / bounds.(color) in
          if needed > chunks.(color) then chunks.(color) <- needed)
        request)
    instance.requests;
  (* Dense subcolor ids: subcolor (l, j) = base.(l) + j. *)
  let base = Array.make num_colors 0 in
  let total = ref 0 in
  Array.iteri
    (fun color needed ->
      base.(color) <- !total;
      total := !total + needed)
    chunks;
  let parent_of = Array.make !total 0 in
  Array.iteri
    (fun color needed ->
      for j = 0 to needed - 1 do
        parent_of.(base.(color) + j) <- color
      done)
    chunks;
  let inner_bounds = Array.map (fun subcolor -> bounds.(parent_of.(subcolor)))
      (Array.init !total (fun i -> i))
  in
  let arrivals =
    List.map
      (fun (round, request) ->
        let split =
          List.concat_map
            (fun (color, count) ->
              let d = bounds.(color) in
              let rec chunks_of j remaining acc =
                if remaining <= 0 then List.rev acc
                else
                  let here = min remaining d in
                  chunks_of (j + 1) (remaining - here)
                    ((base.(color) + j, here) :: acc)
              in
              chunks_of 0 count [])
            request
        in
        (round, split))
      (Instance.nonempty_arrivals instance)
  in
  let inner =
    Instance.make
      ~name:(instance.name ^ "+distribute")
      ~horizon:instance.horizon ~delta:instance.delta ~bounds:inner_bounds
      ~arrivals ()
  in
  (inner, parent_of)

let default_policy : (module Rrs_sim.Policy.POLICY) =
  (module Policy_lru_edf)

let run ?(policy = default_policy) ~n instance =
  let inner_instance, parent_of = transform instance in
  let inner = Engine.run ~record_events:true ~n ~policy inner_instance in
  let actions =
    Reduction.actions_of_events
      ~map:(fun subcolor -> parent_of.(subcolor))
      (Rrs_sim.Ledger.events inner.ledger)
  in
  match Rebuild.rebuild ~instance ~n ~speed:1 ~actions with
  | Error message -> Error message
  | Ok schedule -> Ok { schedule; inner_instance; inner; parent_of }

let cost result = Schedule.total_cost result.schedule
