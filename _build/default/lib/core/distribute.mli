(** Algorithm Distribute (Section 4): reduce batched arrivals
    [Δ|1|D_l|D_l] to the rate-limited special case.

    Each request's color-[l] jobs are ranked (arrival order) and job rank
    [r] is relabeled to subcolor [(l, r / D_l)], so every subcolor
    receives at most [D_l] jobs per batch — a rate-limited instance.
    ΔLRU-EDF runs on the subcolor instance; configuring subcolor [(l, j)]
    becomes configuring [l], and executing an [(l, j)] job becomes
    executing an [l] job. Collapsed same-color reconfigurations cost
    nothing, so the outer cost is at most the inner cost (Lemma 4.2);
    Theorem 2 makes the composition resource competitive. *)

type result = {
  schedule : Rrs_sim.Schedule.t; (* on the original instance *)
  inner_instance : Rrs_sim.Instance.t; (* the rate-limited subcolor instance *)
  inner : Rrs_sim.Engine.result; (* the inner policy's run *)
  parent_of : int array; (* inner subcolor -> original color *)
}

(** Build the rate-limited subcolor instance and the subcolor->color map.
    Works for any batched instance; subcolor bounds equal parent bounds.
    @raise Invalid_argument if the instance is not batched. *)
val transform : Rrs_sim.Instance.t -> Rrs_sim.Instance.t * int array

(** [run ~n instance] executes the full reduction with [n] resources.
    [policy] is the inner algorithm (default ΔLRU-EDF).
    Returns [Error _] if the inner schedule cannot be replayed on the
    original instance (a reduction bug — never expected). *)
val run :
  ?policy:(module Rrs_sim.Policy.POLICY) ->
  n:int ->
  Rrs_sim.Instance.t ->
  (result, string) Stdlib.result

(** Total cost of the outer (relabeled) schedule. *)
val cost : result -> int
