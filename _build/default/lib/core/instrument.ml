(** Analysis instrumentation helpers (Sections 3.2 and 3.4).

    The lemma-level experiments need quantities that live outside any one
    policy: super-epoch counts derived from timestamp-update events, and
    convenient access to the counters policies report via [stats]. *)

(** Look up a counter in a policy's stats list (0 when absent). *)
let stat stats key =
  match List.assoc_opt key stats with Some value -> value | None -> 0

(** Epochs including the trailing incomplete ones (Section 3.2's
    [numEpochs]). *)
let num_epochs stats = stat stats "epochs"

let eligible_drops stats = stat stats "eligible_drops"
let ineligible_drops stats = stat stats "ineligible_drops"
let wraps stats = stat stats "wraps"

(** Count super-epochs from chronological timestamp-update events
    (Section 3.4): a super-epoch ends the moment at least [watermark]
    distinct colors have updated their timestamps since it started; the
    trailing partial super-epoch counts when nonempty. For Theorem 1 the
    watermark is [2m = n/4]. *)
let super_epochs ~watermark events =
  if watermark < 1 then invalid_arg "Instrument.super_epochs: watermark < 1";
  let seen = Hashtbl.create 16 in
  let complete = ref 0 in
  List.iter
    (fun (_round, color) ->
      if not (Hashtbl.mem seen color) then begin
        Hashtbl.replace seen color ();
        if Hashtbl.length seen >= watermark then begin
          incr complete;
          Hashtbl.reset seen
        end
      end)
    events;
  !complete + (if Hashtbl.length seen > 0 then 1 else 0)

(** The Lemma 3.3 bound: reconfiguration cost is at most
    [4 * numEpochs * delta]. *)
let lemma_3_3_bound ~delta stats = 4 * num_epochs stats * delta

(** The Lemma 3.4 bound: ineligible drop cost is at most
    [numEpochs * delta]. *)
let lemma_3_4_bound ~delta stats = num_epochs stats * delta
