(** Analysis instrumentation helpers (Sections 3.2 and 3.4): accessors
    for the counters policies report via [stats], super-epoch counting,
    and the Lemma 3.3 / 3.4 bounds used by the lemma-level experiments. *)

(** Look up a counter in a policy's stats list (0 when absent). *)
val stat : (string * int) list -> string -> int

(** Epochs including trailing incomplete ones (Section 3.2's
    [numEpochs]). *)
val num_epochs : (string * int) list -> int

val eligible_drops : (string * int) list -> int
val ineligible_drops : (string * int) list -> int
val wraps : (string * int) list -> int

(** Count super-epochs from chronological [(round, color)]
    timestamp-update events (Section 3.4): a super-epoch ends the moment
    at least [watermark] distinct colors have updated their timestamps
    since it started; a trailing partial super-epoch counts when
    nonempty. For Theorem 1 the watermark is [2m = n/4].
    @raise Invalid_argument if [watermark < 1]. *)
val super_epochs : watermark:int -> (int * int) list -> int

(** Lemma 3.3: reconfiguration cost <= [4 * numEpochs * delta]. *)
val lemma_3_3_bound : delta:int -> (string * int) list -> int

(** Lemma 3.4: ineligible drop cost <= [numEpochs * delta]. *)
val lemma_3_4_bound : delta:int -> (string * int) list -> int
