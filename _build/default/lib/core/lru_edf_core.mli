(** Parameterized ΔLRU-EDF: the Section 3.1.3 combination with a tunable
    split of the cache between the LRU set and the EDF set.

    The cache holds [n/2] distinct colors (each replicated twice). A
    share [s] of those slots form the LRU set (most recent timestamps,
    cached unconditionally); the rest form the sticky EDF set. The
    paper's ΔLRU-EDF is [s = 0.5] (n/4 + n/4); [s = 1] degenerates to
    ΔLRU and [s = 0] to the sticky EDF of Section 3.1.2 — which is what
    the ablation experiment demonstrates. *)

module Make (_ : sig
  val name : string

  (** Fraction of the [n/2] distinct cache slots given to the LRU set,
      in [0, 1]. *)
  val lru_share : float
end) : Rrs_sim.Policy.POLICY

(** [with_share s] is a packaged policy named ["dlru-edf@s"]. *)
val with_share : float -> (module Rrs_sim.Policy.POLICY)
