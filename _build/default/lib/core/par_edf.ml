module Job_pool = Rrs_sim.Job_pool

type result = {
  drops : int;
  executed : int;
  drops_by_round : (int * int) list;
}

let run ~m (instance : Rrs_sim.Instance.t) =
  if m < 1 then invalid_arg "Par_edf.run: m must be >= 1";
  let bounds = instance.bounds in
  let pool = Job_pool.create ~num_colors:(Array.length bounds) in
  let drops = ref 0 in
  let executed = ref 0 in
  let drops_by_round = ref [] in
  for round = 0 to instance.horizon - 1 do
    let dropped = Job_pool.drop_expired pool ~round in
    let dropped_here =
      List.fold_left (fun acc (_, count) -> acc + count) 0 dropped
    in
    if dropped_here > 0 then begin
      drops := !drops + dropped_here;
      drops_by_round := (round, dropped_here) :: !drops_by_round
    end;
    List.iter
      (fun (color, count) ->
        Job_pool.add pool ~color ~deadline:(round + bounds.(color)) ~count)
      instance.requests.(round);
    (* Execute the m best-ranked pending jobs: job rank is (deadline,
       bound, color), and within a color the earliest deadline goes
       first, so it suffices to repeatedly take the best color. *)
    let remaining = ref m in
    let continue = ref true in
    while !remaining > 0 && !continue do
      let best =
        List.fold_left
          (fun best color ->
            match best with
            | None -> Some color
            | Some b ->
                if Ranking.job_compare pool ~bounds color b < 0 then Some color
                else best)
          None
          (Job_pool.nonidle_colors pool)
      in
      match best with
      | None -> continue := false
      | Some color ->
          (match Job_pool.execute_one pool ~color ~round with
          | Some _ -> incr executed
          | None -> assert false);
          decr remaining
    done
  done;
  { drops = !drops; executed = !executed; drops_by_round = List.rev !drops_by_round }

let drop_cost ~m instance = (run ~m instance).drops
let is_nice ~m instance = drop_cost ~m instance = 0
