(** Algorithm Par-EDF (Section 3.3): the drop-cost reference.

    Par-EDF treats the [m] resources as one super-resource that executes
    up to [m] pending jobs per round, always the best-ranked ones
    (ascending deadline, then delay bound, then color) — reconfiguration
    is free and ignored. By the optimality of EDF (Lemma 3.7), its drop
    count lower-bounds the drop cost of {e any} schedule on [m]
    resources, which makes it both the reference of Lemma 3.2 and a valid
    component of offline lower bounds. *)

type result = {
  drops : int;
  executed : int;
  drops_by_round : (int * int) list; (* nonzero rounds only, ascending *)
}

(** Simulate Par-EDF with [m] parallel executions per round. *)
val run : m:int -> Rrs_sim.Instance.t -> result

(** [drop_cost ~m instance] is just the drop count. *)
val drop_cost : m:int -> Rrs_sim.Instance.t -> int

(** An input is {e nice} when Par-EDF drops nothing on it (Section 3.3). *)
val is_nice : m:int -> Rrs_sim.Instance.t -> bool
