(** Algorithm EDF (Section 3.1.2): deadline-driven sticky caching.

    Eligible colors are ranked nonidle-first, then by ascending per-color
    deadline, delay bound, and color id. Any nonidle eligible color in
    the top [n/2] rankings that is missing from the cache is brought in
    (two locations per color); when the cache is full the lowest-ranked
    cached color is evicted. Colors stay cached until displaced.

    Not resource competitive: an intermittently idle short-bound color
    keeps displacing the long-bound color with the latest deadline, so
    reconfiguration cost thrashes without bound (Appendix B; see
    {!Rrs_workload.Adversary.edf_killer} and experiment E2). Implemented
    as a baseline. *)

include Rrs_sim.Policy.POLICY
