(** Algorithm ΔLRU (Section 3.1.1): pure recency caching.

    Keeps the [n/2] eligible colors with the most recent ΔLRU timestamps
    cached (each replicated in two locations), ties broken by the
    consistent color order. A color's timestamp is the latest round,
    strictly before the most recent multiple of its delay bound, in which
    its arrival counter wrapped around [Delta].

    Not resource competitive: recency ignores idleness and backlog, so
    the Appendix A construction pins idle short-term colors while a huge
    long-bound backlog starves (see {!Rrs_workload.Adversary.lru_killer}
    and experiment E1). Implemented as a baseline. *)

include Rrs_sim.Policy.POLICY
