(** Algorithm ΔLRU-EDF (Section 3.1.3) — the paper's main contribution.

    The cache holds up to [n/2] distinct colors, each replicated in two
    locations, split evenly between two quarter-size color sets:

    - the {e LRU half}: the [n/4] eligible colors with the most recent
      ΔLRU timestamps — cached unconditionally, idle or not, which gives
      short-bound colors hysteresis against thrashing;
    - the {e EDF half}: eligible non-LRU colors ranked nonidle-first then
      earliest-deadline-first; nonidle colors in the top [n/4] rankings
      are brought in, evicting the lowest-ranked EDF-half color when room
      is needed. Colors brought in stay until displaced.

    Theorem 1: resource competitive on rate-limited [Δ|1|D_l|D_l] with
    power-of-two bounds when given [n = 8m] resources.

    This is {!Lru_edf_core.Make} at the paper's even split; the ablation
    experiment (E14) varies the split to show both halves are load-
    bearing. *)

include Lru_edf_core.Make (struct
  let name = "dlru-edf"
  let lru_share = 0.5
end)
