(** Algorithm ΔLRU-EDF (Section 3.1.3) — the paper's main contribution.

    The cache holds up to [n/2] distinct colors, each replicated in two
    locations, split evenly between an LRU set (the [n/4] eligible colors
    with the most recent timestamps, cached unconditionally — hysteresis
    against thrashing) and a sticky EDF set (the best-ranked nonidle
    non-LRU colors — utilization). Theorem 1: resource competitive on
    rate-limited [Δ|1|D_l|D_l] with power-of-two bounds at [n = 8m].

    This is {!Lru_edf_core.Make} at the paper's even split; experiment
    E14 varies the split to show both halves are load-bearing. *)

include Rrs_sim.Policy.POLICY
