(** ΔLRU-2: the LRU-K replacement idea of O'Neil et al. (related work
    [12]) transplanted into the ΔLRU setting — colors ranked by their
    second-to-last counter-wrap round.

    Still a pure-recency scheme: the Appendix A adversary defeats it
    exactly as it defeats ΔLRU (experiment E14), demonstrating that the
    deadline half of ΔLRU-EDF does work no recency refinement can. *)

include Rrs_sim.Policy.POLICY
