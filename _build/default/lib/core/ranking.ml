module Job_pool = Rrs_sim.Job_pool

let edf_compare state pool ~bounds a b =
  let nonidle_a = Job_pool.nonidle pool a in
  let nonidle_b = Job_pool.nonidle pool b in
  if nonidle_a <> nonidle_b then compare nonidle_b nonidle_a (* nonidle first *)
  else
    let by_deadline =
      Int.compare (Color_state.deadline state a) (Color_state.deadline state b)
    in
    if by_deadline <> 0 then by_deadline
    else
      let by_bound = Int.compare bounds.(a) bounds.(b) in
      if by_bound <> 0 then by_bound else Int.compare a b

let lru_compare state ~round a b =
  let by_timestamp =
    Int.compare
      (Color_state.timestamp state b ~round)
      (Color_state.timestamp state a ~round)
    (* larger timestamp = more recent = better *)
  in
  if by_timestamp <> 0 then by_timestamp else Int.compare a b

let job_compare pool ~bounds a b =
  let deadline color =
    match Job_pool.earliest_deadline pool color with
    | Some d -> d
    | None -> invalid_arg "Ranking.job_compare: idle color"
  in
  let by_deadline = Int.compare (deadline a) (deadline b) in
  if by_deadline <> 0 then by_deadline
  else
    let by_bound = Int.compare bounds.(a) bounds.(b) in
    if by_bound <> 0 then by_bound else Int.compare a b
