(** Color-ranking schemes shared by the algorithms (Sections 3.1.2, 3.3).

    EDF rank over eligible colors: nonidle colors first, then ascending
    deadline, breaking ties by increasing delay bound, then by the
    consistent order of colors (ascending id). ΔLRU recency: most recent
    timestamp first, ties by the consistent order. *)

(** [edf_compare state pool ~bounds a b < 0] iff [a] ranks strictly better
    (earlier) than [b] under the EDF scheme. *)
val edf_compare :
  Color_state.t ->
  Rrs_sim.Job_pool.t ->
  bounds:int array ->
  Rrs_sim.Types.color ->
  Rrs_sim.Types.color ->
  int

(** [lru_compare state ~round a b < 0] iff [a] has the more recent
    timestamp (better LRU rank). *)
val lru_compare :
  Color_state.t -> round:int -> Rrs_sim.Types.color -> Rrs_sim.Types.color -> int

(** [job_compare pool ~bounds a b < 0] iff the best pending job of color
    [a] ranks before the best pending job of color [b] under the pending-
    job ranking of Section 3.3 (deadline, then delay bound, then color).
    Both colors must be nonidle. *)
val job_compare :
  Rrs_sim.Job_pool.t ->
  bounds:int array ->
  Rrs_sim.Types.color ->
  Rrs_sim.Types.color ->
  int
