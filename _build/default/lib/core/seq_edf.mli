(** Algorithm Seq-EDF (Section 3.3): the EDF analysis reference without
    replication — all [m] locations cache distinct colors, one copy each.
    DS-Seq-EDF is this policy run at engine speed 2.

    Unlike the online EDF of Section 3.1.2 this reference carries no
    eligibility gating (the paper operates it on the eligible
    subsequence); with gating, Corollary 3.1 — drops(DS-Seq-EDF, m) <=
    drops(Par-EDF, m) — would be false for colors with fewer than
    [Delta] jobs. *)

include Rrs_sim.Policy.POLICY
