module Instance = Rrs_sim.Instance
module Schedule = Rrs_sim.Schedule
module Engine = Rrs_sim.Engine

type pipeline = Direct_lru_edf | Distributed | Var_batched

let pipeline_to_string = function
  | Direct_lru_edf -> "direct"
  | Distributed -> "distribute"
  | Var_batched -> "varbatch"

let classify instance =
  if Instance.bounds_pow2 instance && Instance.is_rate_limited instance then
    Direct_lru_edf
  else if Instance.bounds_pow2 instance && Instance.is_batched instance then
    Distributed
  else Var_batched

type outcome = {
  pipeline : pipeline;
  schedule : Schedule.t;
  cost : int;
  reconfig_count : int;
  drop_count : int;
  stats : (string * int) list;
}

let default_policy : (module Rrs_sim.Policy.POLICY) = (module Policy_lru_edf)

let applicable instance = function
  | Direct_lru_edf ->
      Instance.bounds_pow2 instance && Instance.is_rate_limited instance
  | Distributed -> Instance.bounds_pow2 instance && Instance.is_batched instance
  | Var_batched -> true

let solve ?(policy = default_policy) ?pipeline ~n instance =
  let chosen = match pipeline with Some p -> p | None -> classify instance in
  if not (applicable instance chosen) then
    Error
      (Printf.sprintf "pipeline %s is not applicable to %s"
         (pipeline_to_string chosen) instance.Instance.name)
  else
    let outcome_of_schedule ~stats schedule =
      {
        pipeline = chosen;
        schedule;
        cost = Schedule.total_cost schedule;
        reconfig_count = Schedule.reconfig_count schedule;
        drop_count = Schedule.drop_count schedule;
        stats;
      }
    in
    match chosen with
    | Direct_lru_edf ->
        let run = Engine.run ~record_events:true ~n ~policy instance in
        let schedule = Schedule.of_run ~instance ~n ~speed:1 run.ledger in
        Ok (outcome_of_schedule ~stats:run.stats schedule)
    | Distributed -> (
        match Distribute.run ~policy ~n instance with
        | Error message -> Error message
        | Ok result ->
            Ok
              (outcome_of_schedule ~stats:result.inner.stats
                 result.Distribute.schedule))
    | Var_batched -> (
        match Var_batch.run ~policy ~n instance with
        | Error message -> Error message
        | Ok result ->
            Ok
              (outcome_of_schedule
                 ~stats:result.distribute.Distribute.inner.stats
                 result.Var_batch.schedule))
