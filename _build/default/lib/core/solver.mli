(** Top-level entry point: classify an instance and run the paper's
    layered pipeline on it.

    - rate-limited [Δ|1|D_l|D_l] with power-of-two bounds: ΔLRU-EDF
      directly (Section 3, Theorem 1);
    - batched [Δ|1|D_l|D_l] with power-of-two bounds: Distribute
      (Section 4, Theorem 2);
    - anything else, arbitrary bounds: VarBatch (Section 5, Theorem 3). *)

type pipeline = Direct_lru_edf | Distributed | Var_batched

val pipeline_to_string : pipeline -> string

(** Which pipeline {!solve} will pick for an instance. *)
val classify : Rrs_sim.Instance.t -> pipeline

type outcome = {
  pipeline : pipeline;
  schedule : Rrs_sim.Schedule.t; (* on the given instance; validates *)
  cost : int;
  reconfig_count : int;
  drop_count : int;
  stats : (string * int) list; (* innermost policy counters *)
}

(** [solve ~n instance] runs the appropriate pipeline with [n] resources.
    [policy] overrides the innermost algorithm (default ΔLRU-EDF).
    [pipeline] forces a specific pipeline (it must be applicable). *)
val solve :
  ?policy:(module Rrs_sim.Policy.POLICY) ->
  ?pipeline:pipeline ->
  n:int ->
  Rrs_sim.Instance.t ->
  (outcome, string) result
