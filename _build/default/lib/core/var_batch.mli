(** Algorithm VarBatch (Section 5): reduce general arrivals [Δ|1|D_l|1]
    to batched arrivals, then apply Distribute.

    A job of a color with bound [D >= 2] arriving in a half-block is
    delayed to the start of the next half-block and must execute within
    it: with [q = ] largest power of two [<= D/2], arrival [a] becomes
    [(a/q + 1) * q] with new bound [q]. The delayed window is contained
    in the original one ([a' + q <= a + 2q <= a + D]), so the resulting
    schedule is feasible for the original deadlines. Bound-1 colors are
    already batched and pass through unchanged. This realizes both the
    power-of-two case of Section 5.1 ([q = D/2]) and the arbitrary-bound
    extension of Section 5.3. Theorem 3 makes the composition resource
    competitive. *)

type result = {
  schedule : Rrs_sim.Schedule.t; (* on the original instance *)
  batched_instance : Rrs_sim.Instance.t; (* after half-block delaying *)
  distribute : Distribute.result; (* the inner reduction's run *)
}

(** The effective batched bound [q] for an original bound: largest power
    of two [<= D/2], and [1] for [D = 1]. *)
val effective_bound : int -> int

(** Delay arrivals into half-block batches; bounds become effective
    bounds. *)
val transform : Rrs_sim.Instance.t -> Rrs_sim.Instance.t

(** [run ~n instance] executes the full pipeline
    (delay -> Distribute -> ΔLRU-EDF) and rebuilds the schedule against
    the {e original} instance. [policy] is the innermost algorithm
    (default ΔLRU-EDF). *)
val run :
  ?policy:(module Rrs_sim.Policy.POLICY) ->
  n:int ->
  Rrs_sim.Instance.t ->
  (result, string) Stdlib.result

val cost : result -> int
