lib/ds/binary_heap.ml: Array List
