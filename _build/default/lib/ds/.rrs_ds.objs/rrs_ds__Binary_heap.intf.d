lib/ds/binary_heap.mli:
