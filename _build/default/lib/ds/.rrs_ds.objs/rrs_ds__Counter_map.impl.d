lib/ds/counter_map.ml: Int List Map
