lib/ds/counter_map.mli:
