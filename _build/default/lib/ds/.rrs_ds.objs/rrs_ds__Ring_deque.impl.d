lib/ds/ring_deque.ml: Array
