lib/ds/ring_deque.mli:
