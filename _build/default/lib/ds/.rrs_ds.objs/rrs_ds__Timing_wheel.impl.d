lib/ds/timing_wheel.ml: Array List Printf
