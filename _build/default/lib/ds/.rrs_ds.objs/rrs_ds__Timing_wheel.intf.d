lib/ds/timing_wheel.mli:
