lib/ds/topk.ml: Binary_heap List
