lib/ds/topk.mli:
