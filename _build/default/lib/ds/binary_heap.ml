module type ORDERED = sig
  type t

  val compare : t -> t -> int
end

module Make (Elt : ORDERED) = struct
  type t = {
    mutable data : Elt.t array;
    mutable size : int;
  }

  let create ?(capacity = 16) () =
    { data = [||]; size = 0 } |> fun h ->
    ignore capacity;
    h

  (* The backing array is created lazily on first push so that [create]
     needs no dummy element. *)

  let length h = h.size
  let is_empty h = h.size = 0

  let grow h x =
    if Array.length h.data = 0 then h.data <- Array.make 16 x
    else begin
      let data = Array.make (2 * Array.length h.data) h.data.(0) in
      Array.blit h.data 0 data 0 h.size;
      h.data <- data
    end

  let swap h i j =
    let tmp = h.data.(i) in
    h.data.(i) <- h.data.(j);
    h.data.(j) <- tmp

  let rec sift_up h i =
    if i > 0 then begin
      let parent = (i - 1) / 2 in
      if Elt.compare h.data.(i) h.data.(parent) < 0 then begin
        swap h i parent;
        sift_up h parent
      end
    end

  let rec sift_down h i =
    let left = (2 * i) + 1 in
    let right = left + 1 in
    let smallest = ref i in
    if left < h.size && Elt.compare h.data.(left) h.data.(!smallest) < 0 then
      smallest := left;
    if right < h.size && Elt.compare h.data.(right) h.data.(!smallest) < 0 then
      smallest := right;
    if !smallest <> i then begin
      swap h i !smallest;
      sift_down h !smallest
    end

  let push h x =
    if h.size >= Array.length h.data then grow h x;
    h.data.(h.size) <- x;
    h.size <- h.size + 1;
    sift_up h (h.size - 1)

  let of_list xs =
    match xs with
    | [] -> create ()
    | first :: _ ->
        let n = List.length xs in
        let data = Array.make (max n 16) first in
        List.iteri (fun i x -> data.(i) <- x) xs;
        let h = { data; size = n } in
        for i = (n / 2) - 1 downto 0 do
          sift_down h i
        done;
        h

  let peek_min h = if h.size = 0 then raise Not_found else h.data.(0)

  let pop_min h =
    if h.size = 0 then raise Not_found;
    let min = h.data.(0) in
    h.size <- h.size - 1;
    if h.size > 0 then begin
      h.data.(0) <- h.data.(h.size);
      sift_down h 0
    end;
    min

  let pop_min_opt h = if h.size = 0 then None else Some (pop_min h)
  let clear h = h.size <- 0

  let iter f h =
    for i = 0 to h.size - 1 do
      f h.data.(i)
    done

  let to_sorted_list h =
    if h.size = 0 then []
    else begin
      let copy = { data = Array.sub h.data 0 h.size; size = h.size } in
      let rec drain acc =
        match pop_min_opt copy with
        | None -> List.rev acc
        | Some x -> drain (x :: acc)
      in
      drain []
    end

  let check_invariant h =
    let ok = ref true in
    for i = 1 to h.size - 1 do
      if Elt.compare h.data.((i - 1) / 2) h.data.(i) > 0 then ok := false
    done;
    !ok
end
