(** Array-backed binary min-heap, functorized over the element order.

    The heap is a mutable structure intended for hot scheduling loops: all
    operations are allocation-free except when the backing array grows.
    [pop_min] and [push] are [O(log size)]; [peek_min] is [O(1)]. *)

module type ORDERED = sig
  type t

  (** Total order; [compare a b < 0] means [a] has higher priority (is
      "smaller") than [b]. *)
  val compare : t -> t -> int
end

module Make (Elt : ORDERED) : sig
  type t

  (** [create ?capacity ()] is an empty heap. [capacity] is a size hint
      (default 16); the heap grows on demand. *)
  val create : ?capacity:int -> unit -> t

  (** [of_list xs] is a heap holding exactly the elements of [xs], built in
      [O(|xs|)] by bottom-up heapification. *)
  val of_list : Elt.t list -> t

  val length : t -> int
  val is_empty : t -> bool

  val push : t -> Elt.t -> unit

  (** [peek_min h] is the minimum element. @raise Not_found if empty. *)
  val peek_min : t -> Elt.t

  (** [pop_min h] removes and returns the minimum element.
      @raise Not_found if empty. *)
  val pop_min : t -> Elt.t

  (** [pop_min_opt h] is [Some (pop_min h)] or [None] when empty. *)
  val pop_min_opt : t -> Elt.t option

  (** Remove every element. Keeps the backing array. *)
  val clear : t -> unit

  (** [to_sorted_list h] is the elements in ascending order; the heap is
      left unchanged ([O(n log n)], allocates). *)
  val to_sorted_list : t -> Elt.t list

  (** Iterate in unspecified (heap) order. *)
  val iter : (Elt.t -> unit) -> t -> unit

  (** Internal invariant check, used by the test suite: every parent is
      [<=] its children. *)
  val check_invariant : t -> bool
end
