module Int_map = Map.Make (Int)

type t = {
  map : int Int_map.t; (* counts, all > 0 *)
  total : int;
}

let empty = { map = Int_map.empty; total = 0 }
let is_empty t = t.total = 0
let total t = t.total
let cardinal t = Int_map.cardinal t.map
let count t key = match Int_map.find_opt key t.map with None -> 0 | Some c -> c

let add t key ~count =
  if count < 0 then invalid_arg "Counter_map.add: negative count";
  if count = 0 then t
  else
    let map =
      Int_map.update key
        (function None -> Some count | Some c -> Some (c + count))
        t.map
    in
    { map; total = t.total + count }

let remove t key ~count:k =
  if k < 0 then invalid_arg "Counter_map.remove: negative count";
  if k = 0 then t
  else
    let present = count t key in
    if present < k then invalid_arg "Counter_map.remove: not enough occurrences";
    let map =
      if present = k then Int_map.remove key t.map
      else Int_map.add key (present - k) t.map
    in
    { map; total = t.total - k }

let min_key t =
  match Int_map.min_binding_opt t.map with
  | None -> None
  | Some (key, _) -> Some key

let remove_min t =
  match Int_map.min_binding_opt t.map with
  | None -> None
  | Some (key, _) -> Some (key, remove t key ~count:1)

let remove_all t key =
  let present = count t key in
  (present, if present = 0 then t else remove t key ~count:present)

let to_list t = Int_map.bindings t.map

let of_list pairs =
  List.fold_left (fun acc (key, c) -> add acc key ~count:c) empty pairs

let fold f t init = Int_map.fold f t.map init
let equal a b = a.total = b.total && Int_map.equal Int.equal a.map b.map
let compare a b = Int_map.compare Int.compare a.map b.map
