(** Multiset of integers, stored as an ordered [key -> count] map.

    Used for deadline multisets (pending jobs of one color grouped by
    deadline) and for cache-content multisets in the offline search. All
    counts are kept strictly positive; removing the last occurrence of a
    key deletes it. *)

type t

val empty : t
val is_empty : t -> bool

(** Total number of elements, i.e. the sum of the counts. O(1). *)
val total : t -> int

(** Number of distinct keys. *)
val cardinal : t -> int

(** [add t key ~count] adds [count] occurrences of [key].
    @raise Invalid_argument if [count < 0]. [count = 0] is a no-op. *)
val add : t -> int -> count:int -> t

(** [remove t key ~count] removes [count] occurrences of [key].
    @raise Invalid_argument if fewer than [count] occurrences exist. *)
val remove : t -> int -> count:int -> t

(** Occurrences of [key] (0 when absent). *)
val count : t -> int -> int

(** Smallest key present. *)
val min_key : t -> int option

(** [remove_min t] removes one occurrence of the smallest key and returns
    it with the updated multiset. *)
val remove_min : t -> (int * t) option

(** [remove_all t key] removes every occurrence of [key], returning how
    many were removed. *)
val remove_all : t -> int -> int * t

(** Ascending [(key, count)] pairs. *)
val to_list : t -> (int * int) list

val of_list : (int * int) list -> t

(** [fold f t init] folds over [(key, count)] in ascending key order. *)
val fold : (int -> int -> 'a -> 'a) -> t -> 'a -> 'a

val equal : t -> t -> bool
val compare : t -> t -> int
