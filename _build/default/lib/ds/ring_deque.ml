type 'a t = {
  mutable data : 'a option array;
  mutable head : int; (* index of front element when size > 0 *)
  mutable size : int;
}

let create ?(capacity = 8) () =
  { data = Array.make (max capacity 1) None; head = 0; size = 0 }

let length q = q.size
let is_empty q = q.size = 0
let capacity q = Array.length q.data

let grow q =
  let old_capacity = capacity q in
  let data = Array.make (2 * old_capacity) None in
  for i = 0 to q.size - 1 do
    data.(i) <- q.data.((q.head + i) mod old_capacity)
  done;
  q.data <- data;
  q.head <- 0

let push_back q x =
  if q.size = capacity q then grow q;
  q.data.((q.head + q.size) mod capacity q) <- Some x;
  q.size <- q.size + 1

let push_front q x =
  if q.size = capacity q then grow q;
  q.head <- (q.head - 1 + capacity q) mod capacity q;
  q.data.(q.head) <- Some x;
  q.size <- q.size + 1

let get q i =
  match q.data.((q.head + i) mod capacity q) with
  | Some x -> x
  | None -> assert false

let pop_front q =
  if q.size = 0 then raise Not_found;
  let x = get q 0 in
  q.data.(q.head) <- None;
  q.head <- (q.head + 1) mod capacity q;
  q.size <- q.size - 1;
  x

let pop_back q =
  if q.size = 0 then raise Not_found;
  let x = get q (q.size - 1) in
  q.data.((q.head + q.size - 1) mod capacity q) <- None;
  q.size <- q.size - 1;
  x

let pop_front_opt q = if q.size = 0 then None else Some (pop_front q)
let pop_back_opt q = if q.size = 0 then None else Some (pop_back q)
let peek_front q = if q.size = 0 then raise Not_found else get q 0
let peek_back q = if q.size = 0 then raise Not_found else get q (q.size - 1)

let clear q =
  Array.fill q.data 0 (capacity q) None;
  q.head <- 0;
  q.size <- 0

let iter f q =
  for i = 0 to q.size - 1 do
    f (get q i)
  done

let to_list q =
  let acc = ref [] in
  for i = q.size - 1 downto 0 do
    acc := get q i :: !acc
  done;
  !acc
