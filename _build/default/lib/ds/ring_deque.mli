(** Growable double-ended queue over a circular array.

    O(1) amortized push/pop at both ends; used for FIFO request queues and
    for the recency lists of the LRU bookkeeping. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool
val push_back : 'a t -> 'a -> unit
val push_front : 'a t -> 'a -> unit

(** @raise Not_found when empty. *)
val pop_front : 'a t -> 'a

(** @raise Not_found when empty. *)
val pop_back : 'a t -> 'a

val pop_front_opt : 'a t -> 'a option
val pop_back_opt : 'a t -> 'a option

(** @raise Not_found when empty. *)
val peek_front : 'a t -> 'a

(** @raise Not_found when empty. *)
val peek_back : 'a t -> 'a

val clear : 'a t -> unit

(** Front-to-back iteration. *)
val iter : ('a -> unit) -> 'a t -> unit

(** Front-to-back contents. *)
val to_list : 'a t -> 'a list
