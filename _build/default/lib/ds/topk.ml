(* A size-k max-heap (reversed comparison) of the best elements seen so
   far: a new element replaces the heap root when it beats the current
   worst of the best. *)

let select (type a) ~(compare : a -> a -> int) ~k iter =
  if k <= 0 then []
  else begin
    let module Max = Binary_heap.Make (struct
      type t = a

      let compare x y = compare y x
    end) in
    let heap = Max.create ~capacity:(k + 1) () in
    let consider x =
      if Max.length heap < k then Max.push heap x
      else if compare x (Max.peek_min heap) < 0 then begin
        ignore (Max.pop_min heap);
        Max.push heap x
      end
    in
    iter consider;
    (* The max-heap's sorted order is descending under [compare]. *)
    List.rev (Max.to_sorted_list heap)
  end

let select_list ~compare ~k xs = select ~compare ~k (fun f -> List.iter f xs)
