(** Streaming k-best selection.

    Select the [k] smallest elements (under a comparison) out of a stream
    without sorting the whole stream: a size-[k] max-heap of the current
    best candidates is maintained, so the cost is [O(n log k)].

    Scheduling policies use this every reconfiguration phase to pick the
    top-[n/4] colors by recency or by deadline rank. *)

(** [select ~compare ~k iter] returns the [k] smallest elements (ascending
    order by [compare]) among those produced by [iter]. [iter f] must call
    [f] once per element. If fewer than [k] elements are produced, all of
    them are returned. [k <= 0] yields []. *)
val select : compare:('a -> 'a -> int) -> k:int -> (('a -> unit) -> unit) -> 'a list

(** [select_list ~compare ~k xs] is [select] over a list. *)
val select_list : compare:('a -> 'a -> int) -> k:int -> 'a list -> 'a list
