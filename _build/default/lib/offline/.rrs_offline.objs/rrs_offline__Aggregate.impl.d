lib/offline/aggregate.ml: Array Fun Hashtbl Int List Offline_schedule Printf Rrs_core Rrs_sim
