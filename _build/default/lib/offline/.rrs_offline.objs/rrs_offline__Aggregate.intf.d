lib/offline/aggregate.mli: Offline_schedule Rrs_sim Stdlib
