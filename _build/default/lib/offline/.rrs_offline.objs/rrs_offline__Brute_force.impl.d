lib/offline/brute_force.ml: Array Hashtbl List Option Rrs_ds Rrs_sim
