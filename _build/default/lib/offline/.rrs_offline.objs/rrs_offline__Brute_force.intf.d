lib/offline/brute_force.mli: Rrs_sim
