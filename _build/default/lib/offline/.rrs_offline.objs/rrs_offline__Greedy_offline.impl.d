lib/offline/greedy_offline.ml: Array Fun Hashtbl Int List Rrs_sim
