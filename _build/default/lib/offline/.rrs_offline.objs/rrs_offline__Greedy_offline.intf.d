lib/offline/greedy_offline.mli: Rrs_sim Stdlib
