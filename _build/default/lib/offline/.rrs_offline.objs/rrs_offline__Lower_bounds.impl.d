lib/offline/lower_bounds.ml: Array Hashtbl Int List Rrs_core Rrs_sim
