lib/offline/lower_bounds.mli: Rrs_sim
