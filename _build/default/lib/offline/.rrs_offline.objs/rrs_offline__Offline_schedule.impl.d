lib/offline/offline_schedule.ml: Array List Printf Rrs_sim
