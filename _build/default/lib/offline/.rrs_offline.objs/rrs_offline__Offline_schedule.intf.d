lib/offline/offline_schedule.mli: Rrs_sim
