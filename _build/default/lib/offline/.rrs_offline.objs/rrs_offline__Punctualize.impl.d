lib/offline/punctualize.ml: Array Int List Offline_schedule Printf Rrs_sim
