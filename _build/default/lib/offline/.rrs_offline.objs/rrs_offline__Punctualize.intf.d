lib/offline/punctualize.mli: Offline_schedule
