lib/offline/static_offline.ml: Array List Rrs_core Rrs_sim
