lib/offline/static_offline.mli: Rrs_sim Stdlib
