(** Algorithm Aggregate (Section 4.3, Lemma 4.1): turn an offline
    schedule [T] for a batched instance [I] into an offline schedule [T']
    for the rate-limited subcolor instance [I' = Distribute.transform I],
    using three times the resources, executing the same jobs, at an
    [O(1)]-factor reconfiguration cost.

    Construction (per delay bound [p], ascending; per block [i]; per
    color [l] with bound [p]):

    - the color-[l] jobs executed by [T] in [block(p, i)] are partitioned
      into groups of size [p] (one smaller remainder group);
    - resources monochromatically configured with [l] throughout the
      block ([M]) each take one group, on output resource [(k, 0)] of
      their triple, labeled with a subcolor index that is inherited
      across consecutive blocks to avoid boundary reconfigurations;
      groups go to resources in descending T-level (the largest enclosing
      monochromatic block), sizes descending;
    - leftover groups go to the first free slots of multichromatic
      resource triples.

    Deviation from the paper (documented in DESIGN.md): inherited labels
    are dropped when the subcolor they name lacks enough jobs in the
    current batch — the paper's prose leaves this case open and it would
    make the output infeasible. Each dropped label costs at most one
    extra pair of reconfigurations, preserving the lemma's O(1) factor;
    the count of such relabels is reported. *)

type result = {
  output : Offline_schedule.t; (* for the subcolor instance, 3m resources *)
  inner_instance : Rrs_sim.Instance.t; (* Distribute.transform of the input *)
  parent_of : int array;
  relabels : int; (* feasibility-forced label drops *)
  fallback_placements : int; (* leftover groups placed outside Y' triples *)
}

(** [run grid] aggregates an [m]-resource uni-speed grid for a batched
    power-of-two-bound instance. Errors on non-batched inputs or if a
    leftover group cannot be placed (not expected; would indicate a
    violated invariant). *)
val run : Offline_schedule.t -> (result, string) Stdlib.result
