module Counter_map = Rrs_ds.Counter_map
module Instance = Rrs_sim.Instance

type outcome = {
  cost : int;
  states : int;
}

exception Too_big

(* Pending jobs: ascending (color, deadline multiset) pairs, nonempty
   multisets only. Purely functional so states can be memoized. *)
type pending = (int * Counter_map.t) list

let purge_expired ~round ~drop_cost pending =
  let drops = ref 0 in
  let pending =
    List.filter_map
      (fun (color, deadlines) ->
        let rec purge deadlines =
          match Counter_map.min_key deadlines with
          | Some d when d <= round ->
              let count, rest = Counter_map.remove_all deadlines d in
              drops := !drops + (count * drop_cost color);
              purge rest
          | Some _ | None -> deadlines
        in
        let deadlines = purge deadlines in
        if Counter_map.is_empty deadlines then None else Some (color, deadlines))
      pending
  in
  (!drops, pending)

let add_arrivals ~round ~bounds pending request =
  List.fold_left
    (fun pending (color, count) ->
      let deadline = round + bounds.(color) in
      let rec insert = function
        | [] -> [ (color, Counter_map.add Counter_map.empty deadline ~count) ]
        | (c, deadlines) :: rest when c = color ->
            (c, Counter_map.add deadlines deadline ~count) :: rest
        | (c, _) :: _ as all when c > color ->
            (color, Counter_map.add Counter_map.empty deadline ~count) :: all
        | entry :: rest -> entry :: insert rest
      in
      insert pending)
    pending request

(* Pop one earliest-deadline job of [color]; None when idle. *)
let pop_job pending color =
  let rec walk = function
    | [] -> None
    | (c, deadlines) :: rest when c = color -> (
        match Counter_map.remove_min deadlines with
        | None -> None
        | Some (_deadline, remaining) ->
            if Counter_map.is_empty remaining then Some rest
            else Some ((c, remaining) :: rest))
    | entry :: rest -> (
        match walk rest with None -> None | Some rest -> Some (entry :: rest))
  in
  walk pending

let pending_key (pending : pending) =
  List.map (fun (color, deadlines) -> (color, Counter_map.to_list deadlines)) pending

let opt ?(max_states = 2_000_000) ?drop_costs ~m (instance : Instance.t) =
  let drop_cost =
    match drop_costs with
    | None -> fun _ -> 1
    | Some costs -> fun color -> costs.(color)
  in
  let bounds = instance.bounds in
  let delta = instance.delta in
  let horizon = instance.horizon in
  let memo = Hashtbl.create 4096 in
  let rec from_round round cache pending =
    if round >= horizon then 0
    else begin
      let drop_cost_here, pending = purge_expired ~round ~drop_cost pending in
      let pending = add_arrivals ~round ~bounds pending instance.requests.(round) in
      let cache = List.sort compare cache in
      let key = (round, cache, pending_key pending) in
      match Hashtbl.find_opt memo key with
      | Some best -> drop_cost_here + best
      | None ->
          if Hashtbl.length memo >= max_states then raise Too_big;
          let candidates = List.map fst pending in
          let best = ref max_int in
          (* Choose, per resource, keep or switch to a pending color. *)
          let rec assign remaining_cache chosen switch_cost =
            match remaining_cache with
            | [] ->
                (* Execute earliest-deadline jobs on the chosen colors. *)
                let pending =
                  List.fold_left
                    (fun pending slot ->
                      match slot with
                      | None -> pending
                      | Some color -> (
                          match pop_job pending color with
                          | None -> pending
                          | Some pending -> pending))
                    pending chosen
                in
                let total = switch_cost + from_round (round + 1) chosen pending in
                if total < !best then best := total
            | current :: rest ->
                assign rest (current :: chosen) switch_cost;
                List.iter
                  (fun color ->
                    if current <> Some color then
                      assign rest (Some color :: chosen) (switch_cost + delta))
                  candidates
          in
          assign cache [] 0;
          Hashtbl.replace memo key !best;
          drop_cost_here + !best
    end
  in
  match from_round 0 (List.init m (fun _ -> None)) [] with
  | cost -> Some { cost; states = Hashtbl.length memo }
  | exception Too_big -> None

let opt_cost ?max_states ?drop_costs ~m instance =
  Option.map (fun o -> o.cost) (opt ?max_states ?drop_costs ~m instance)
