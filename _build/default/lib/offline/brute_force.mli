(** Exact offline optimum for toy instances, by memoized exhaustive
    search over per-round reconfiguration choices.

    The state space is (round, cache multiset, pending deadlines), so
    this is only practical for a handful of colors, resources and rounds
    — exactly what the correctness tests need to cross-check online
    algorithms and lower bounds against the true OPT. *)

type outcome = {
  cost : int;
  states : int; (* distinct memoized states *)
}

(** [opt ~m instance] is the minimum total cost over all uni-speed
    offline schedules with [m] resources, or [None] when the memo table
    would exceed [max_states] (default 2_000_000).

    [drop_costs] gives per-color drop costs (default: unit costs — the
    paper's main setting); with it, the search solves the companion
    problem [Delta | c_l | D_l | .].

    Within a round the search considers, per resource, keeping the
    current color or switching to any color with pending jobs, and always
    executes the earliest-deadline pending job of the configured color —
    both restrictions preserve optimality (delaying a reconfiguration to
    the round it is first used never hurts; within a color EDF order is
    exchange-optimal). *)
val opt :
  ?max_states:int ->
  ?drop_costs:int array ->
  m:int ->
  Rrs_sim.Instance.t ->
  outcome option

(** [opt_cost ~m instance] is just the cost. *)
val opt_cost :
  ?max_states:int ->
  ?drop_costs:int array ->
  m:int ->
  Rrs_sim.Instance.t ->
  int option
