module Instance = Rrs_sim.Instance
module Job_pool = Rrs_sim.Job_pool
module Rebuild = Rrs_sim.Rebuild
module Schedule = Rrs_sim.Schedule

type result = {
  schedule : Schedule.t;
  cost : int;
}

(* upcoming.(c) = prefix sums of arrivals of color c by round, so that
   jobs of c arriving in [a, b) = prefix.(c).(b) - prefix.(c).(a). *)
let arrival_prefixes (instance : Instance.t) =
  let num_colors = Instance.num_colors instance in
  let horizon = instance.horizon in
  let prefix = Array.make_matrix num_colors (horizon + 1) 0 in
  for round = 0 to horizon - 1 do
    for color = 0 to num_colors - 1 do
      prefix.(color).(round + 1) <- prefix.(color).(round)
    done;
    List.iter
      (fun (color, count) ->
        prefix.(color).(round + 1) <- prefix.(color).(round + 1) + count)
      instance.requests.(round)
  done;
  prefix

let run ~m (instance : Instance.t) =
  if m < 1 then invalid_arg "Greedy_offline.run: m must be >= 1";
  let bounds = instance.bounds in
  let num_colors = Array.length bounds in
  let delta = instance.delta in
  let horizon = instance.horizon in
  let prefix = arrival_prefixes instance in
  let upcoming color ~from_round ~until_round =
    let from_round = min from_round horizon in
    let until_round = min until_round horizon in
    if until_round <= from_round then 0
    else prefix.(color).(until_round) - prefix.(color).(from_round)
  in
  let pool = Job_pool.create ~num_colors in
  let colors = Array.make m None in
  let actions = ref [] in
  for round = 0 to horizon - 1 do
    ignore (Job_pool.drop_expired pool ~round);
    List.iter
      (fun (color, count) ->
        Job_pool.add pool ~color ~deadline:(round + bounds.(color)) ~count)
      instance.requests.(round);
    (* Work in sight for a color: pending now plus arrivals within one
       deadline window. *)
    let benefit color =
      Job_pool.pending pool color
      + upcoming color ~from_round:(round + 1)
          ~until_round:(round + 1 + bounds.(color))
    in
    let on_resource = Hashtbl.create m in
    Array.iter
      (function Some c -> Hashtbl.replace on_resource c () | None -> ())
      colors;
    (* Reconfigure resources whose color has no pending work to the best
       uncovered color whose work amortizes Delta. *)
    let candidates =
      List.init num_colors Fun.id
      |> List.filter (fun c -> not (Hashtbl.mem on_resource c))
      |> List.map (fun c -> (benefit c, c))
      |> List.filter (fun (b, _) -> b >= delta)
      |> List.sort (fun (a, _) (b, _) -> Int.compare b a)
      |> List.map snd
      |> ref
    in
    for k = 0 to m - 1 do
      let keep =
        match colors.(k) with
        | None -> false
        | Some c -> Job_pool.nonidle pool c || benefit c >= delta
      in
      if not keep then begin
        match !candidates with
        | [] -> ()
        | best :: rest ->
            candidates := rest;
            (match colors.(k) with
            | Some old -> Hashtbl.remove on_resource old
            | None -> ());
            colors.(k) <- Some best;
            Hashtbl.replace on_resource best ();
            actions :=
              Rebuild.Configure
                { round; mini_round = 0; location = k; color = best }
              :: !actions
      end
    done;
    (* Execute. *)
    for k = 0 to m - 1 do
      match colors.(k) with
      | None -> ()
      | Some color -> (
          match Job_pool.execute_one pool ~color ~round with
          | None -> ()
          | Some _ ->
              actions :=
                Rebuild.Run { round; mini_round = 0; location = k; color }
                :: !actions)
    done
  done;
  match Rebuild.rebuild ~instance ~n:m ~speed:1 ~actions:(List.rev !actions) with
  | Error message -> Error message
  | Ok schedule -> Ok { schedule; cost = Schedule.total_cost schedule }

let cost ~m instance =
  match run ~m instance with
  | Ok { cost; _ } -> cost
  | Error message -> failwith ("Greedy_offline.cost: " ^ message)
