(** A clairvoyant greedy heuristic: an offline {e upper} bound on OPT.

    The heuristic sees the whole request sequence. At each round it keeps
    resources whose color still has work, and reconfigures an idle
    resource to the color with the most executable work in sight — but
    only when that work amortizes the reconfiguration cost [Delta].
    No optimality claim; benches report it as "OPT <= greedy" next to the
    lower bounds of {!Lower_bounds}. *)

type result = {
  schedule : Rrs_sim.Schedule.t;
  cost : int;
}

(** [run ~m instance] simulates the heuristic on [m] resources (one copy
    per color, uni-speed) and returns its validated schedule. *)
val run : m:int -> Rrs_sim.Instance.t -> (result, string) Stdlib.result

(** Just the cost. @raise Failure if the internal replay fails (a bug). *)
val cost : m:int -> Rrs_sim.Instance.t -> int
