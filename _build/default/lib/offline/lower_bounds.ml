module Instance = Rrs_sim.Instance

let per_color (instance : Instance.t) =
  let num_colors = Instance.num_colors instance in
  let jobs = Array.make num_colors 0 in
  Array.iter
    (fun request ->
      List.iter (fun (color, count) -> jobs.(color) <- jobs.(color) + count) request)
    instance.requests;
  Array.fold_left
    (fun acc n -> if n = 0 then acc else acc + min instance.delta n)
    0 jobs

let par_edf_drop ~m instance = Rrs_core.Par_edf.drop_cost ~m instance

let per_color_refined ~m (instance : Instance.t) =
  let num_colors = Instance.num_colors instance in
  let total = ref 0 in
  for color = 0 to num_colors - 1 do
    (* The single-color subsequence as its own instance. *)
    let arrivals =
      List.filter_map
        (fun (round, request) ->
          match List.assoc_opt color request with
          | Some count -> Some (round, [ (color, count) ])
          | None -> None)
        (Instance.nonempty_arrivals instance)
    in
    if arrivals <> [] then begin
      let sub =
        Instance.make ~name:"single-color" ~delta:instance.delta
          ~bounds:instance.bounds ~arrivals ()
      in
      let jobs = Instance.total_jobs sub in
      (* r = 0: drop everything. r >= 1: r always-on servers drop exactly
         the single-color EDF surplus. *)
      let best = ref jobs in
      let r = ref 1 in
      let continue = ref true in
      while !r <= m && !continue do
        let cost = (!r * instance.delta) + Rrs_core.Par_edf.drop_cost ~m:!r sub in
        if cost < !best then best := cost;
        (* Once r * delta alone exceeds the best, more servers cannot help. *)
        if !r * instance.delta >= !best then continue := false;
        incr r
      done;
      total := !total + !best
    end
  done;
  !total

let window ~m (instance : Instance.t) =
  (* Candidate window endpoints: arrival rounds (starts) and deadlines
     (ends). For each start t1, sweep deadlines in ascending order and
     accumulate jobs contained in [t1, t2). *)
  let arrivals = Instance.nonempty_arrivals instance in
  let starts = List.map fst arrivals in
  let best = ref 0 in
  List.iter
    (fun t1 ->
      (* Jobs with arrival >= t1, grouped by deadline. *)
      let by_deadline = Hashtbl.create 32 in
      List.iter
        (fun (round, request) ->
          if round >= t1 then
            List.iter
              (fun (color, count) ->
                let deadline = round + instance.bounds.(color) in
                let current =
                  try Hashtbl.find by_deadline deadline with Not_found -> 0
                in
                Hashtbl.replace by_deadline deadline (current + count))
              request)
        arrivals;
      let deadlines =
        Hashtbl.fold (fun deadline count acc -> (deadline, count) :: acc)
          by_deadline []
        |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
      in
      let contained = ref 0 in
      List.iter
        (fun (t2, count) ->
          contained := !contained + count;
          (* Jobs fully inside [t1, t2) can use at most m * (t2 - t1)
             execution slots (executions happen at rounds t1..t2-1). *)
          let capacity = m * (t2 - t1) in
          if !contained - capacity > !best then best := !contained - capacity)
        deadlines)
    starts;
  !best

let all ~m instance =
  [
    ("per_color", per_color instance);
    ("per_color_refined", per_color_refined ~m instance);
    ("par_edf_drop", par_edf_drop ~m instance);
    ("window", window ~m instance);
  ]

let combined ~m instance =
  List.fold_left (fun acc (_, value) -> max acc value) 0 (all ~m instance)
