(** Provably valid lower bounds on the optimal offline cost.

    Competitive ratios on instances too large for {!Brute_force} are
    reported against these bounds; since every bound is [<= OPT], the
    reported ratio upper-bounds the true ratio — the conservative
    direction when confirming the paper's upper-bound claims. *)

(** [per_color instance] = sum over colors of [min (Delta, N_l)]: any
    schedule either configures color [l] at least once (cost [Delta]) or
    drops all its [N_l] jobs; these cost items are disjoint across
    colors. Independent of [m]. *)
val per_color : Rrs_sim.Instance.t -> int

(** [par_edf_drop ~m instance]: Par-EDF's drop count lower-bounds the
    drop cost of any [m]-resource schedule (Lemma 3.7), and drop cost
    lower-bounds total cost. *)
val par_edf_drop : m:int -> Rrs_sim.Instance.t -> int

(** [per_color_refined ~m instance]: a strengthening of {!per_color}.
    Any schedule pays, per color [l], at least
    [min over r in 0..m of (r * Delta + minimal drops of l's jobs on r
    always-on servers)]: if it configures [l] [e] times it pays
    [e * Delta] and serves [l] with at most [min(e, m)] concurrent
    resources, each dominated by an always-on server; these cost items
    are disjoint across colors, so the per-color minima add up. *)
val per_color_refined : m:int -> Rrs_sim.Instance.t -> int

(** [window ~m instance]: over every time window [t1, t2), the jobs that
    must live entirely inside it — arrival [>= t1] and deadline [<= t2]
    — exceed the window's execution capacity [m * (t2 - t1)] by some
    surplus; the largest surplus is a valid drop lower bound. Implied by
    {!par_edf_drop} (kept as an independent cross-check). *)
val window : m:int -> Rrs_sim.Instance.t -> int

(** Best of all bounds. *)
val combined : m:int -> Rrs_sim.Instance.t -> int

(** All bounds, labeled, for reporting. *)
val all : m:int -> Rrs_sim.Instance.t -> (string * int) list
