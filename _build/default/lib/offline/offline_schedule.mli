(** Explicit offline schedules: a per-resource timeline of configured
    colors and execution marks.

    The offline constructions of the paper (Aggregate, the punctual
    schedules of Section 5.2) are most naturally expressed by editing
    slot grids — resource x mini-round cells — rather than event logs.
    This module provides that grid, costs it, and converts it back to an
    event-log {!Rrs_sim.Schedule.t} (via {!Rrs_sim.Rebuild}) so the same
    independent validator covers offline schedules too. *)

type t = {
  instance : Rrs_sim.Instance.t;
  m : int; (* resources *)
  speed : int; (* mini-rounds per round *)
  colors : Rrs_sim.Types.color option array array; (* colors.(k).(slot) *)
  execs : bool array array; (* execs.(k).(slot): slot executes its color *)
}

(** Empty (all-black, idle) schedule grid. Slots are global mini-round
    indices [round * speed + mini], [0 .. horizon * speed - 1]. *)
val create : instance:Rrs_sim.Instance.t -> m:int -> speed:int -> t

val num_slots : t -> int

(** [set_color t ~resource ~slot color] configures one cell. *)
val set_color : t -> resource:int -> slot:int -> Rrs_sim.Types.color -> unit

(** [set_color_range t ~resource ~from_slot ~to_slot color] configures
    cells [from_slot .. to_slot - 1]. *)
val set_color_range :
  t -> resource:int -> from_slot:int -> to_slot:int -> Rrs_sim.Types.color -> unit

(** Mark a cell as executing (its color must already be set). *)
val set_exec : t -> resource:int -> slot:int -> unit

(** Reconfiguration count: color changes along each timeline, including
    the initial black -> color change. *)
val reconfig_count : t -> int

val exec_count : t -> int

(** [delta * reconfig_count + (total_jobs - exec_count)]. This equals the
    validated schedule's cost whenever [to_schedule] succeeds. *)
val cost : t -> int

(** Convert to an event-log schedule by replaying (drops regenerated,
    executions consume earliest-deadline pending jobs). Fails if some
    execution mark has no feasible pending job. *)
val to_schedule : t -> (Rrs_sim.Schedule.t, string) result

(** [of_schedule schedule ~m] converts an event-log schedule into a grid.
    Events must fit in [m] resources. *)
val of_schedule : Rrs_sim.Schedule.t -> t

(** [monochromatic t ~resource ~from_slot ~to_slot] is [Some c] when the
    resource is configured with exactly color [c] in every slot of the
    range, [None] otherwise (including black cells). *)
val monochromatic :
  t -> resource:int -> from_slot:int -> to_slot:int -> Rrs_sim.Types.color option
