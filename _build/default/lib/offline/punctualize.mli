(** The punctual-schedule constructions of Section 5.2.

    For a delay bound [p], half-block [i] is the [p/2] rounds starting at
    [i * p/2]. A job arriving in half-block [i] of its bound is executed
    {e early} (same half-block), {e punctually} (next half-block) or
    {e late} (the one after) — no other case is possible. Lemma 5.1 turns
    an early single-resource schedule into a punctual 3-resource schedule
    executing the same jobs at [O(1)]-factor reconfiguration cost; Lemma
    5.2 does the same for late schedules; Lemma 5.3 stacks the three
    parts into a punctual schedule on 7 resources per original resource.

    All functions expect instances with power-of-two bounds [>= 2] (the
    Section 5 setting). *)

type classification = Early | Punctual | Late

(** Classify one execution: [arrival] and [execution_round] of a job with
    delay bound [bound]. @raise Invalid_argument if the execution round
    is outside the three legal half-blocks. *)
val classify :
  bound:int -> arrival:int -> execution_round:int -> classification

(** Split a schedule grid into its early / punctual / late parts: three
    grids with identical configuration timelines, each keeping only the
    matching execution marks. *)
val split :
  Offline_schedule.t -> Offline_schedule.t * Offline_schedule.t * Offline_schedule.t

(** Lemma 5.1: [punctualize_early grid] for a single-resource grid whose
    executions are all early. Returns a 3-resource punctual grid
    executing the same number of jobs. Errors if the input is not
    single-resource / not early, or (never expected) if slot packing
    fails. *)
val punctualize_early : Offline_schedule.t -> (Offline_schedule.t, string) result

(** Lemma 5.2: the analogous construction for late schedules. *)
val punctualize_late : Offline_schedule.t -> (Offline_schedule.t, string) result

(** Lemma 5.3: a punctual schedule on [7 * m] resources executing every
    job executed by the input [m]-resource grid. *)
val punctual_schedule : Offline_schedule.t -> (Offline_schedule.t, string) result
