module Instance = Rrs_sim.Instance
module Job_pool = Rrs_sim.Job_pool
module Rebuild = Rrs_sim.Rebuild
module Schedule = Rrs_sim.Schedule

type result = {
  schedule : Schedule.t;
  cost : int;
  allocation : (Rrs_sim.Types.color * int) list;
}

let single_color_instance (instance : Instance.t) color =
  let arrivals =
    List.filter_map
      (fun (round, request) ->
        match List.assoc_opt color request with
        | Some count -> Some (round, [ (color, count) ])
        | None -> None)
      (Instance.nonempty_arrivals instance)
  in
  if arrivals = [] then None
  else
    Some
      (Instance.make ~name:"static-sub" ~delta:instance.delta
         ~bounds:instance.bounds ~arrivals ())

let run ~m (instance : Instance.t) =
  if m < 1 then invalid_arg "Static_offline.run: m must be >= 1";
  let delta = instance.delta in
  let num_colors = Instance.num_colors instance in
  let subs = Array.init num_colors (single_color_instance instance) in
  (* served.(c) r = jobs of c served by r always-on servers. *)
  let served color r =
    match subs.(color) with
    | None -> 0
    | Some sub ->
        if r = 0 then 0
        else Instance.total_jobs sub - Rrs_core.Par_edf.drop_cost ~m:r sub
  in
  (* Greedy allocation by net marginal gain (served jobs minus the
     resource's one-off configuration cost delta). *)
  let allocation = Array.make num_colors 0 in
  let remaining = ref m in
  let continue = ref true in
  while !remaining > 0 && !continue do
    let best = ref None in
    for color = 0 to num_colors - 1 do
      let r = allocation.(color) in
      let gain = served color (r + 1) - served color r - delta in
      match !best with
      | Some (best_gain, _) when best_gain >= gain -> ()
      | _ -> if gain > 0 then best := Some (gain, color)
    done;
    match !best with
    | None -> continue := false
    | Some (_, color) ->
        allocation.(color) <- allocation.(color) + 1;
        decr remaining
  done;
  (* Materialize: dedicate resource indices, configure at round 0, run
     single-color EDF on each dedicated resource. *)
  let resource_color = Array.make m None in
  let next = ref 0 in
  Array.iteri
    (fun color r ->
      for _ = 1 to r do
        resource_color.(!next) <- Some color;
        incr next
      done)
    allocation;
  let pool = Job_pool.create ~num_colors in
  let actions = ref [] in
  Array.iteri
    (fun resource cell ->
      match cell with
      | Some color ->
          actions :=
            Rebuild.Configure { round = 0; mini_round = 0; location = resource; color }
            :: !actions
      | None -> ())
    resource_color;
  for round = 0 to instance.horizon - 1 do
    ignore (Job_pool.drop_expired pool ~round);
    List.iter
      (fun (color, count) ->
        Job_pool.add pool ~color ~deadline:(round + instance.bounds.(color)) ~count)
      instance.requests.(round);
    Array.iteri
      (fun resource cell ->
        match cell with
        | Some color ->
            if Job_pool.nonidle pool color then begin
              ignore (Job_pool.execute_one pool ~color ~round);
              actions :=
                Rebuild.Run { round; mini_round = 0; location = resource; color }
                :: !actions
            end
        | None -> ())
      resource_color
  done;
  match Rebuild.rebuild ~instance ~n:m ~speed:1 ~actions:(List.rev !actions) with
  | Error message -> Error message
  | Ok schedule ->
      let allocation =
        Array.to_list (Array.mapi (fun color r -> (color, r)) allocation)
        |> List.filter (fun (_, r) -> r > 0)
      in
      Ok { schedule; cost = Schedule.total_cost schedule; allocation }

let cost ~m instance =
  match run ~m instance with
  | Ok { cost; _ } -> cost
  | Error message -> failwith ("Static_offline.cost: " ^ message)
