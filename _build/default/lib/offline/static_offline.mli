(** Static partitioning baseline: the strategy the paper's motivation
    argues against.

    A shared data center without reconfigurable resources must dedicate
    each processor to one service up front. This baseline gets the whole
    trace in advance and picks the best {e static} allocation: it
    greedily assigns each of the [m] resources to the color whose
    marginal served-job gain is largest (gains computed by single-color
    EDF simulation with [r] vs [r+1] always-on servers), then pays one
    configuration per used resource and drops everything the allocation
    cannot serve.

    Comparing it against the reconfigurable algorithms quantifies the
    value of reconfiguration itself: static wins when the workload mix is
    stationary, and loses badly when the mix shifts (the E15 experiment). *)

type result = {
  schedule : Rrs_sim.Schedule.t;
  cost : int;
  allocation : (Rrs_sim.Types.color * int) list; (* resources per color, > 0 *)
}

(** [run ~m instance] computes the allocation and the resulting validated
    schedule. *)
val run : m:int -> Rrs_sim.Instance.t -> (result, string) Stdlib.result

(** Just the cost. @raise Failure on an internal replay error (a bug). *)
val cost : m:int -> Rrs_sim.Instance.t -> int
