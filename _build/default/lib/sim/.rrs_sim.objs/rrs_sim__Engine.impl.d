lib/sim/engine.ml: Array Format Instance Job_pool Ledger List Log Policy Printf Types
