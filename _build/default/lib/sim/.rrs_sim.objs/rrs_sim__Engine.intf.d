lib/sim/engine.mli: Instance Ledger Policy Types
