lib/sim/instance.ml: Array Format List Printf Types
