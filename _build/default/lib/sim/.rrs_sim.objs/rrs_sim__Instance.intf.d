lib/sim/instance.mli: Format Types
