lib/sim/instance_ops.ml: Array Instance List Printf
