lib/sim/instance_ops.mli: Instance Types
