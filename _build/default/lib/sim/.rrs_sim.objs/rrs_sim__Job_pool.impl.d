lib/sim/job_pool.ml: Array Hashtbl Int List Printf Rrs_ds Types
