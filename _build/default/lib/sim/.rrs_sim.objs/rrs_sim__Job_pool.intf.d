lib/sim/job_pool.mli: Types
