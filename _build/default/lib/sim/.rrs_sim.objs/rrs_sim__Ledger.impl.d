lib/sim/ledger.ml: Format List Types
