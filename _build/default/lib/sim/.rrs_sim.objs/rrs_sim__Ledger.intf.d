lib/sim/ledger.mli: Format Types
