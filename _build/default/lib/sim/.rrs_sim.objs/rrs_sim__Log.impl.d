lib/sim/log.ml: Logs
