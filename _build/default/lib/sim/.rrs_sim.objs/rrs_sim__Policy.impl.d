lib/sim/policy.ml: Job_pool Types
