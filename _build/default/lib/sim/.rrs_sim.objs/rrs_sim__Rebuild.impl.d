lib/sim/rebuild.ml: Array Instance Job_pool Ledger List Printf Schedule Types
