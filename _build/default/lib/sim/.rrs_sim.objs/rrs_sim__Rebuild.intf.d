lib/sim/rebuild.mli: Instance Schedule Types
