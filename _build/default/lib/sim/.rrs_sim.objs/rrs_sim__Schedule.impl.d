lib/sim/schedule.ml: Array Format Hashtbl Instance Int Job_pool Ledger List Printf Types
