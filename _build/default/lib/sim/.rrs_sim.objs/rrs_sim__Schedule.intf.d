lib/sim/schedule.mli: Instance Ledger
