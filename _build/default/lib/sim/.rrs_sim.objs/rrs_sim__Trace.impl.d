lib/sim/trace.ml: Array Buffer Fun Instance List Printf String Types
