lib/sim/trace.mli: Instance
