lib/sim/types.ml: Format Hashtbl Int List
