lib/sim/types.mli: Format
