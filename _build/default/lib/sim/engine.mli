(** The discrete-round engine: the paper's four-phase round model.

    Each round runs (1) the drop phase — jobs whose deadline equals the
    round index are dropped at unit cost each; (2) the arrival phase;
    (3)+(4) [speed] iterations of the reconfiguration and execution
    phases ([speed = 1] for uni-speed algorithms, [speed = 2] for the
    double-speed schedules of Section 3.3). In each execution phase every
    location configured with color [c] executes up to one pending job of
    color [c], always the one with the earliest deadline. *)

type result = {
  ledger : Ledger.t;
  stats : (string * int) list; (* policy-reported counters *)
  final_assignment : Types.color option array;
}

(** [run ~n ~policy instance] simulates [instance] to its horizon with [n]
    resources under [policy].

    @param speed mini-rounds (reconfig+execution iterations) per round;
    default 1.
    @param record_events keep the full event log in the ledger (needed by
    {!Schedule.validate}); default true.
    @raise Invalid_argument if the policy returns an assignment of the
    wrong length, or [n < 1], or [speed < 1]. *)
val run :
  ?speed:int ->
  ?record_events:bool ->
  n:int ->
  policy:(module Policy.POLICY) ->
  Instance.t ->
  result

(** Convenience: [total_cost (run ...)]. *)
val cost :
  ?speed:int -> n:int -> policy:(module Policy.POLICY) -> Instance.t -> int
