type t = {
  name : string;
  delta : int;
  bounds : int array;
  requests : Types.request array;
  horizon : int;
}

let make ?(name = "instance") ?horizon ~delta ~bounds ~arrivals () =
  if delta < 1 then invalid_arg "Instance.make: delta must be >= 1";
  if Array.length bounds = 0 then invalid_arg "Instance.make: no colors";
  Array.iteri
    (fun c d ->
      if d < 1 then
        invalid_arg (Printf.sprintf "Instance.make: bound of color %d is %d" c d))
    bounds;
  let num_colors = Array.length bounds in
  let arrivals =
    List.map (fun (round, request) -> (round, Types.normalize_request request)) arrivals
  in
  let max_deadline = ref 0 in
  List.iter
    (fun (round, request) ->
      if round < 0 then invalid_arg "Instance.make: negative round";
      List.iter
        (fun (color, _count) ->
          if color < 0 || color >= num_colors then
            invalid_arg (Printf.sprintf "Instance.make: unknown color %d" color);
          max_deadline := max !max_deadline (round + bounds.(color)))
        request)
    arrivals;
  let horizon =
    match horizon with
    | None -> max 1 (!max_deadline + 1)
    | Some h ->
        if h < !max_deadline + 1 then
          invalid_arg
            (Printf.sprintf "Instance.make: horizon %d truncates deadline %d" h
               !max_deadline);
        h
  in
  let requests = Array.make horizon [] in
  List.iter
    (fun (round, request) ->
      requests.(round) <- Types.normalize_request (requests.(round) @ request))
    arrivals;
  { name; delta; bounds; requests; horizon }

let num_colors t = Array.length t.bounds

let total_jobs t =
  Array.fold_left (fun acc request -> acc + Types.request_size request) 0 t.requests

let jobs_of_color t color =
  Array.fold_left
    (fun acc request ->
      List.fold_left
        (fun acc (c, count) -> if c = color then acc + count else acc)
        acc request)
    0 t.requests

let for_all_arrivals t predicate =
  let ok = ref true in
  Array.iteri
    (fun round request ->
      List.iter
        (fun (color, count) -> if not (predicate round color count) then ok := false)
        request)
    t.requests;
  !ok

let is_batched t = for_all_arrivals t (fun round color _ -> round mod t.bounds.(color) = 0)

let is_rate_limited t =
  is_batched t && for_all_arrivals t (fun _ color count -> count <= t.bounds.(color))

let is_pow2 d = d > 0 && d land (d - 1) = 0
let bounds_pow2 t = Array.for_all is_pow2 t.bounds

let iter_jobs t f =
  Array.iteri
    (fun round request ->
      List.iter
        (fun (color, count) ->
          for _ = 1 to count do
            f { Types.color; arrival = round; deadline = round + t.bounds.(color) }
          done)
        request)
    t.requests

let nonempty_arrivals t =
  let acc = ref [] in
  for round = t.horizon - 1 downto 0 do
    if t.requests.(round) <> [] then acc := (round, t.requests.(round)) :: !acc
  done;
  !acc

let pp_summary ppf t =
  Format.fprintf ppf
    "@[<v>instance %s: delta=%d colors=%d horizon=%d jobs=%d batched=%b \
     rate-limited=%b pow2=%b@]"
    t.name t.delta (num_colors t) t.horizon (total_jobs t) (is_batched t)
    (is_rate_limited t) (bounds_pow2 t)
