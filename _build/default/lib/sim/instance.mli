(** A complete problem instance of [Delta | 1 | D_l | *].

    An instance fixes the reconfiguration cost [Delta], the per-color delay
    bounds, and the full request sequence. The horizon is the number of
    rounds to simulate; it always extends past the last deadline so every
    job is either executed or dropped by the end of the run. *)

type t = private {
  name : string;
  delta : int;
  bounds : int array; (* bounds.(c) = D_c >= 1; length = number of colors *)
  requests : Types.request array; (* indexed by round; length = horizon *)
  horizon : int;
}

(** [make ~delta ~bounds ~arrivals ()] builds an instance from sparse
    arrivals [(round, request)]. Requests are normalized; the horizon is
    [max (round + D_color) + 1] over all arriving jobs (at least 1), or
    the explicit [horizon] if given (it must cover every deadline).

    @raise Invalid_argument on: [delta < 1], an empty [bounds] array, a
    bound [< 1], a negative round, a color outside [0, #colors), or a
    horizon that truncates deadlines. *)
val make :
  ?name:string ->
  ?horizon:int ->
  delta:int ->
  bounds:int array ->
  arrivals:(int * Types.request) list ->
  unit ->
  t

val num_colors : t -> int

(** Total number of jobs across all requests. *)
val total_jobs : t -> int

(** Number of jobs of one color. *)
val jobs_of_color : t -> Types.color -> int

(** [is_batched t] holds when every color-[c] arrival occurs at an
    integral multiple of [D_c] — the [.. | D_l] batch field. *)
val is_batched : t -> bool

(** [is_rate_limited t] holds when [is_batched t] and every color-[c]
    request carries at most [D_c] jobs — the rate-limited special case of
    Section 3. *)
val is_rate_limited : t -> bool

(** All delay bounds are powers of two. *)
val bounds_pow2 : t -> bool

(** Enumerate all concrete jobs in arrival order (stable by color within a
    round). *)
val iter_jobs : t -> (Types.job -> unit) -> unit

(** Sparse view of the request sequence: rounds with nonempty requests. *)
val nonempty_arrivals : t -> (int * Types.request) list

val pp_summary : Format.formatter -> t -> unit
