let rebuild ~(like : Instance.t) ~name arrivals =
  Instance.make ~name ~delta:like.Instance.delta ~bounds:like.Instance.bounds
    ~arrivals ()

let map_arrivals (instance : Instance.t) ~name f =
  let arrivals =
    List.filter_map
      (fun (round, request) ->
        match f round request with
        | _, [] -> None
        | round, request -> Some (round, request))
      (Instance.nonempty_arrivals instance)
  in
  rebuild ~like:instance ~name arrivals

let restrict_colors instance predicate =
  map_arrivals instance
    ~name:(instance.Instance.name ^ "+restricted")
    (fun round request ->
      (round, List.filter (fun (color, _) -> predicate color) request))

let split_by_volume (instance : Instance.t) ~threshold =
  let num_colors = Instance.num_colors instance in
  let totals = Array.make num_colors 0 in
  Array.iter
    (fun request ->
      List.iter (fun (color, count) -> totals.(color) <- totals.(color) + count)
        request)
    instance.Instance.requests;
  ( restrict_colors instance (fun color -> totals.(color) < threshold),
    restrict_colors instance (fun color -> totals.(color) >= threshold) )

let scale_load instance ~numerator ~denominator =
  if numerator < 0 || denominator < 1 then
    invalid_arg "Instance_ops.scale_load: bad factor";
  map_arrivals instance
    ~name:(Printf.sprintf "%s*%d/%d" instance.Instance.name numerator denominator)
    (fun round request ->
      ( round,
        List.filter_map
          (fun (color, count) ->
            let scaled = count * numerator / denominator in
            let scaled = if numerator > 0 && count > 0 then max scaled 1 else scaled in
            if scaled > 0 then Some (color, scaled) else None)
          request ))

let shift instance ~rounds =
  if rounds < 0 then invalid_arg "Instance_ops.shift: negative shift";
  map_arrivals instance
    ~name:(Printf.sprintf "%s+%d" instance.Instance.name rounds)
    (fun round request -> (round + rounds, request))

let merge (a : Instance.t) (b : Instance.t) =
  if a.Instance.delta <> b.Instance.delta then
    invalid_arg "Instance_ops.merge: different delta";
  if a.Instance.bounds <> b.Instance.bounds then
    invalid_arg "Instance_ops.merge: different bounds";
  rebuild ~like:a
    ~name:(a.Instance.name ^ "+" ^ b.Instance.name)
    (Instance.nonempty_arrivals a @ Instance.nonempty_arrivals b)

let truncate instance ~horizon =
  if horizon < 0 then invalid_arg "Instance_ops.truncate: negative horizon";
  map_arrivals instance
    ~name:(Printf.sprintf "%s|%d" instance.Instance.name horizon)
    (fun round request -> (round, if round < horizon then request else []))
