(** Instance manipulation: the subsequence and composition operations the
    paper's proofs use (splitting an input by color classes, Theorem 1;
    restricting to eligible jobs, Lemma 3.2) plus experiment utilities. *)

(** [restrict_colors instance predicate] keeps only the arrivals of
    colors satisfying [predicate]; the color universe and bounds are
    unchanged (other colors simply receive no jobs), so schedules and
    costs remain directly comparable. *)
val restrict_colors : Instance.t -> (Types.color -> bool) -> Instance.t

(** [split_by_volume instance ~threshold] is the paper's Theorem 1 split:
    [(alpha, beta)] where [alpha] carries the colors with fewer than
    [threshold] jobs in total and [beta] the rest. *)
val split_by_volume : Instance.t -> threshold:int -> Instance.t * Instance.t

(** [scale_load instance ~numerator ~denominator] multiplies every batch
    size by [numerator / denominator] (rounding down, keeping at least
    one job when the original batch was nonempty and [numerator > 0]). *)
val scale_load : Instance.t -> numerator:int -> denominator:int -> Instance.t

(** [shift instance ~rounds] delays every arrival by [rounds >= 0]. *)
val shift : Instance.t -> rounds:int -> Instance.t

(** [merge a b] superimposes two instances over the same color universe
    (equal [delta] and [bounds] required).
    @raise Invalid_argument otherwise. *)
val merge : Instance.t -> Instance.t -> Instance.t

(** [truncate instance ~horizon] drops every arrival at or after
    [horizon] (the resulting instance's own horizon still covers all
    remaining deadlines). *)
val truncate : Instance.t -> horizon:int -> Instance.t
