type event =
  | Reconfig of { round : int; mini_round : int; location : int;
                  previous : Types.color option; next : Types.color }
  | Drop of { round : int; color : Types.color; count : int }
  | Execute of { round : int; mini_round : int; location : int;
                 color : Types.color; deadline : int }

type t = {
  delta : int;
  record_events : bool;
  mutable reconfigs : int;
  mutable drops : int;
  mutable execs : int;
  mutable events : event list; (* reverse chronological *)
}

let create ?(record_events = true) ~delta () =
  { delta; record_events; reconfigs = 0; drops = 0; execs = 0; events = [] }

let push t event = if t.record_events then t.events <- event :: t.events

let record_reconfig t ~round ~mini_round ~location ~previous ~next =
  t.reconfigs <- t.reconfigs + 1;
  push t (Reconfig { round; mini_round; location; previous; next })

let record_drop t ~round ~color ~count =
  if count < 0 then invalid_arg "Ledger.record_drop: negative count";
  t.drops <- t.drops + count;
  if count > 0 then push t (Drop { round; color; count })

let record_execute t ~round ~mini_round ~location ~color ~deadline =
  t.execs <- t.execs + 1;
  push t (Execute { round; mini_round; location; color; deadline })

let reconfig_count t = t.reconfigs
let drop_count t = t.drops
let exec_count t = t.execs
let reconfig_cost t = t.delta * t.reconfigs
let total_cost t = reconfig_cost t + t.drops
let events t = List.rev t.events

let pp_summary ppf t =
  Format.fprintf ppf
    "cost=%d (reconfig=%d x delta=%d -> %d, drops=%d) executed=%d"
    (total_cost t) t.reconfigs t.delta (reconfig_cost t) t.drops t.execs
