(** Cost accounting for a run: reconfigurations, drops, executions.

    The ledger is the single source of truth for the objective value
    [total_cost = delta * reconfigurations + drops]. Event recording is
    optional (it costs memory) and feeds the schedule validator. *)

type event =
  | Reconfig of { round : int; mini_round : int; location : int;
                  previous : Types.color option; next : Types.color }
  | Drop of { round : int; color : Types.color; count : int }
  | Execute of { round : int; mini_round : int; location : int;
                 color : Types.color; deadline : int }

type t

(** [create ~delta ()] is an empty ledger. [record_events] (default
    [true]) controls whether the event log is kept. *)
val create : ?record_events:bool -> delta:int -> unit -> t

val record_reconfig :
  t -> round:int -> mini_round:int -> location:int ->
  previous:Types.color option -> next:Types.color -> unit

val record_drop : t -> round:int -> color:Types.color -> count:int -> unit

val record_execute :
  t -> round:int -> mini_round:int -> location:int -> color:Types.color ->
  deadline:int -> unit

val reconfig_count : t -> int
val drop_count : t -> int
val exec_count : t -> int

(** [delta * reconfig_count]. *)
val reconfig_cost : t -> int

(** [reconfig_cost + drop_count]. *)
val total_cost : t -> int

(** Events in chronological order ([] when recording is off). *)
val events : t -> event list

val pp_summary : Format.formatter -> t -> unit
