(** Library-wide log source. Quiet by default; the CLI's [--verbose]
    enables debug-level tracing of engine phases. Logging statements are
    lazy closures, so a disabled level costs one branch. *)

let src = Logs.Src.create "rrs" ~doc:"Reconfigurable resource scheduling"

include (val Logs.src_log src : Logs.LOG)
