type action =
  | Configure of { round : int; mini_round : int; location : int;
                   color : Types.color }
  | Run of { round : int; mini_round : int; location : int;
             color : Types.color }

exception Rebuild_error of string

let action_time = function
  | Configure { round; mini_round; _ } -> (round, mini_round, 0)
  | Run { round; mini_round; _ } -> (round, mini_round, 1)

let rebuild ~instance ~n ~speed ~actions =
  let (instance : Instance.t) = instance in
  let bounds = instance.bounds in
  let pool = Job_pool.create ~num_colors:(Array.length bounds) in
  let ledger = Ledger.create ~record_events:true ~delta:instance.delta () in
  let assignment = Array.make n None in
  let pending_actions = ref actions in
  try
    let fail fmt = Printf.ksprintf (fun s -> raise (Rebuild_error s)) fmt in
    for round = 0 to instance.horizon - 1 do
      let dropped = Job_pool.drop_expired pool ~round in
      List.iter
        (fun (color, count) -> Ledger.record_drop ledger ~round ~color ~count)
        dropped;
      List.iter
        (fun (color, count) ->
          Job_pool.add pool ~color ~deadline:(round + bounds.(color)) ~count)
        instance.requests.(round);
      for mini_round = 0 to speed - 1 do
        let used = Array.make n false in
        let here action =
          let r, m, _ = action_time action in
          r = round && m = mini_round
        in
        (* Within a mini-round, consume Configure actions then Run
           actions; an interleaving error surfaces as out-of-order. *)
        let rec consume stage =
          match !pending_actions with
          | action :: rest when here action -> (
              match (action, stage) with
              | Configure { location; color; _ }, `Configure ->
                  pending_actions := rest;
                  if location < 0 || location >= n then
                    fail "round %d.%d: configure at bad location %d" round
                      mini_round location;
                  if assignment.(location) <> Some color then begin
                    Ledger.record_reconfig ledger ~round ~mini_round ~location
                      ~previous:assignment.(location) ~next:color;
                    assignment.(location) <- Some color
                  end;
                  consume `Configure
              | Configure _, `Run ->
                  fail "round %d.%d: configure action after run action" round
                    mini_round
              | Run { location; color; _ }, _ ->
                  pending_actions := rest;
                  if location < 0 || location >= n then
                    fail "round %d.%d: run at bad location %d" round mini_round
                      location;
                  if assignment.(location) <> Some color then
                    fail "round %d.%d: run of color %d on location %d colored %s"
                      round mini_round color location
                      (match assignment.(location) with
                      | None -> "black"
                      | Some c -> string_of_int c);
                  if used.(location) then
                    fail "round %d.%d: location %d executes twice" round
                      mini_round location;
                  used.(location) <- true;
                  (match Job_pool.execute_one pool ~color ~round with
                  | None ->
                      fail "round %d.%d: no pending job of color %d" round
                        mini_round color
                  | Some deadline ->
                      Ledger.record_execute ledger ~round ~mini_round ~location
                        ~color ~deadline);
                  consume `Run)
          | action :: _ ->
              let r, m, _ = action_time action in
              if r < round || (r = round && m < mini_round) then
                fail "action at %d.%d is out of order (now %d.%d)" r m round
                  mini_round
          | [] -> ()
        in
        consume `Configure
      done
    done;
    (match !pending_actions with
    | [] -> ()
    | action :: _ ->
        let r, m, _ = action_time action in
        fail "action at %d.%d is beyond the horizon" r m);
    Ok (Schedule.of_run ~instance ~n ~speed ledger)
  with Rebuild_error message -> Error message
