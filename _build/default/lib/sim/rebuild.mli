(** Rebuild a schedule for an instance from a sequence of actions.

    The reductions of Sections 4 and 5 (Distribute, VarBatch) run an inner
    algorithm on a {e transformed} instance and map its actions back to
    the original one. Rebuilding replays those mapped actions against the
    original instance: drops are regenerated round by round, execution
    events consume the earliest-deadline genuinely pending job (recording
    its true deadline), and configuration actions are diffed into
    reconfiguration events with correct previous colors — so consecutive
    same-color configurations of a location collapse for free, exactly
    the cost collapse of Lemma 4.2. *)

type action =
  | Configure of { round : int; mini_round : int; location : int;
                   color : Types.color }
  | Run of { round : int; mini_round : int; location : int;
             color : Types.color }

(** [rebuild ~instance ~n ~speed ~actions] replays [actions]
    (chronologically ordered: nondecreasing rounds, mini-rounds within a
    round, Configure before Run within a mini-round) and returns the
    resulting schedule.

    Errors (returned, not raised): an action out of chronological order,
    a [Run] on a location not configured with that color, or a [Run] for
    a color with no pending job. *)
val rebuild :
  instance:Instance.t ->
  n:int ->
  speed:int ->
  actions:action list ->
  (Schedule.t, string) result
