type color = int
type request = (color * int) list

type job = {
  color : color;
  arrival : int;
  deadline : int;
}

type phase = Drop | Arrival | Reconfiguration | Execution

let phase_to_string = function
  | Drop -> "drop"
  | Arrival -> "arrival"
  | Reconfiguration -> "reconfiguration"
  | Execution -> "execution"

let normalize_request request =
  let table = Hashtbl.create 8 in
  List.iter
    (fun (color, count) ->
      if count < 0 then invalid_arg "Types.normalize_request: negative count";
      if count > 0 then
        let current = try Hashtbl.find table color with Not_found -> 0 in
        Hashtbl.replace table color (current + count))
    request;
  Hashtbl.fold (fun color count acc -> (color, count) :: acc) table []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let request_size request =
  List.fold_left (fun acc (_, count) -> acc + count) 0 request

let pp_request ppf request =
  let pp_pair ppf (color, count) = Format.fprintf ppf "%d:%d" color count in
  Format.fprintf ppf "[%a]" (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf " ") pp_pair) request
