(** Shared vocabulary of the reconfigurable-resource-scheduling model.

    Jobs are unit-size and characterized by a color and an arrival round;
    the per-color delay bound [D_l] lives in the instance (the paper's
    delay field is per color). A job arriving at round [a] with bound [D]
    has deadline [a + D]: it may execute in any round [r] with
    [a <= r < a + D] and is dropped in the drop phase of round [a + D]. *)

(** Job / resource color. Colors are small dense integers; black (the
    initial resource state) is represented by [None] at the resource. *)
type color = int

(** A request: the multiset of jobs arriving in one round, grouped as
    [(color, count)] pairs with positive counts and distinct colors. *)
type request = (color * int) list

(** A single concrete job (used by validators and offline schedules). *)
type job = {
  color : color;
  arrival : int;
  deadline : int; (* arrival + bound of its color *)
}

(** Phases of a round, in execution order. *)
type phase = Drop | Arrival | Reconfiguration | Execution

val phase_to_string : phase -> string

(** Normalize a request: merge duplicate colors, drop zero counts, sort by
    color. @raise Invalid_argument on a negative count. *)
val normalize_request : request -> request

(** Total number of jobs in a request. *)
val request_size : request -> int

val pp_request : Format.formatter -> request -> unit
