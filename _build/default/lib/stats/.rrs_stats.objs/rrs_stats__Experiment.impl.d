lib/stats/experiment.ml: List Rrs_core Rrs_offline Rrs_sim
