lib/stats/experiment.mli: Rrs_core Rrs_sim
