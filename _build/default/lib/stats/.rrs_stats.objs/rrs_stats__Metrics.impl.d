lib/stats/metrics.ml: Array Fun Int List Printf Rrs_sim Table
