lib/stats/metrics.mli: Rrs_sim Table
