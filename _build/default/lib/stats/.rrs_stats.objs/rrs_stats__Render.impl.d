lib/stats/render.ml: Array Buffer Bytes Char Printf Rrs_offline Rrs_sim
