lib/stats/render.mli: Rrs_offline Rrs_sim
