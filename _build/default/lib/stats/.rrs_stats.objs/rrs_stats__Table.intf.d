lib/stats/table.mli:
