module Instance = Rrs_sim.Instance
module Engine = Rrs_sim.Engine
module Ledger = Rrs_sim.Ledger

type reference = {
  lower_bound : int;
  exact : int option;
  greedy_upper : int option;
}

let reference ?(exact_budget = 0) ~m instance =
  let lower_bound = Rrs_offline.Lower_bounds.combined ~m instance in
  let exact =
    if exact_budget > 0 then
      Rrs_offline.Brute_force.opt_cost ~max_states:exact_budget ~m instance
    else None
  in
  let greedy_upper =
    match Rrs_offline.Greedy_offline.run ~m instance with
    | Ok { cost; _ } -> Some cost
    | Error _ -> None
  in
  { lower_bound; exact; greedy_upper }

let denominator reference =
  match reference.exact with
  | Some opt -> max opt 1
  | None -> max reference.lower_bound 1

type row = {
  algorithm : string;
  n : int;
  cost : int;
  reconfig_count : int;
  drop_count : int;
  ratio : float;
  stats : (string * int) list;
}

let make_row ~algorithm ~n ~reference ~cost ~reconfig_count ~drop_count ~stats =
  {
    algorithm;
    n;
    cost;
    reconfig_count;
    drop_count;
    ratio = float_of_int cost /. float_of_int (denominator reference);
    stats;
  }

let run_policy ?speed ~n ~reference ~policy:(module P : Rrs_sim.Policy.POLICY)
    instance =
  let result = Engine.run ?speed ~record_events:false ~n ~policy:(module P) instance in
  make_row ~algorithm:P.name ~n ~reference
    ~cost:(Ledger.total_cost result.ledger)
    ~reconfig_count:(Ledger.reconfig_count result.ledger)
    ~drop_count:(Ledger.drop_count result.ledger)
    ~stats:result.stats

let run_solver ?pipeline ~n ~reference instance =
  match Rrs_core.Solver.solve ?pipeline ~n instance with
  | Error message -> Error message
  | Ok outcome ->
      Ok
        (make_row
           ~algorithm:
             ("solver/" ^ Rrs_core.Solver.pipeline_to_string outcome.pipeline)
           ~n ~reference ~cost:outcome.cost ~reconfig_count:outcome.reconfig_count
           ~drop_count:outcome.drop_count ~stats:outcome.stats)

let standard_policies : (string * (module Rrs_sim.Policy.POLICY)) list =
  [
    ("dlru", (module Rrs_core.Policy_lru));
    ("edf", (module Rrs_core.Policy_edf));
    ("dlru-edf", (module Rrs_core.Policy_lru_edf));
  ]

let sweep_augmentation ~m ~factors instance =
  let reference = reference ~m instance in
  List.map
    (fun factor -> (factor, run_solver ~n:(factor * m) ~reference instance))
    factors
