(** Experiment runner: evaluate algorithms against offline references on
    an instance and report comparable rows.

    [m] is the offline adversary's resource count; online algorithms get
    [n] resources (the paper's resource augmentation is [n = 8m]). The
    offline reference is the best available: the exact optimum on toy
    instances, otherwise [max] of the valid lower bounds — so reported
    ratios always upper-bound the true competitive ratio. *)

type reference = {
  lower_bound : int; (* max of valid lower bounds; <= OPT *)
  exact : int option; (* brute-force OPT when affordable *)
  greedy_upper : int option; (* clairvoyant heuristic; >= OPT *)
}

(** Compute offline references. [exact_budget] caps brute-force states
    (default 0 = skip exact). *)
val reference : ?exact_budget:int -> m:int -> Rrs_sim.Instance.t -> reference

(** The denominator used in ratios: exact OPT when known, otherwise the
    lower bound, never below 1. *)
val denominator : reference -> int

type row = {
  algorithm : string;
  n : int;
  cost : int;
  reconfig_count : int;
  drop_count : int;
  ratio : float; (* cost / denominator *)
  stats : (string * int) list;
}

(** Run one policy directly under the engine. *)
val run_policy :
  ?speed:int ->
  n:int ->
  reference:reference ->
  policy:(module Rrs_sim.Policy.POLICY) ->
  Rrs_sim.Instance.t ->
  row

(** Run the full layered solver (Section 3/4/5 pipeline). *)
val run_solver :
  ?pipeline:Rrs_core.Solver.pipeline ->
  n:int ->
  reference:reference ->
  Rrs_sim.Instance.t ->
  (row, string) result

(** The three policies of Section 3.1 with display names. *)
val standard_policies : (string * (module Rrs_sim.Policy.POLICY)) list

(** Ratio of the solver cost to the reference across an augmentation
    sweep [n = factor * m]. *)
val sweep_augmentation :
  m:int ->
  factors:int list ->
  Rrs_sim.Instance.t ->
  (int * (row, string) result) list
