(** QoS metrics extracted from a schedule's event log: per-color delivery
    counts and the latency profile of executed jobs.

    Latency of an execution is [execution round - arrival round], with
    arrival recovered from the recorded deadline and the color's bound;
    it always lies in [0, D_color - 1]. This is the per-category delay
    view the paper's QoS motivation (packet processing within a delay
    tolerance, ref [9]) cares about. *)

type per_color = {
  color : Rrs_sim.Types.color;
  bound : int;
  offered : int; (* executed + dropped *)
  executed : int;
  dropped : int;
  loss_rate : float; (* dropped / offered; 0 when no jobs *)
  mean_latency : float; (* over executed jobs; 0 when none *)
  max_latency : int;
}

type t = {
  by_color : per_color list; (* ascending color, colors with traffic only *)
  executed : int;
  dropped : int;
  mean_latency : float;
  p99_latency : int; (* nearest-rank over executed jobs; 0 when none *)
}

(** Compute metrics from a schedule. *)
val of_schedule : Rrs_sim.Schedule.t -> t

(** Render as a table (one row per color plus a totals row). *)
val to_table : t -> Table.t
