type t = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
}

let of_floats = function
  | [] -> invalid_arg "Summary.of_floats: empty"
  | xs ->
      let count = List.length xs in
      let n = float_of_int count in
      let sum = List.fold_left ( +. ) 0.0 xs in
      let mean = sum /. n in
      let variance =
        List.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.0)) 0.0 xs /. n
      in
      {
        count;
        mean;
        stddev = sqrt variance;
        min = List.fold_left min infinity xs;
        max = List.fold_left max neg_infinity xs;
      }

let of_ints xs = of_floats (List.map float_of_int xs)

let percentile p = function
  | [] -> invalid_arg "Summary.percentile: empty"
  | xs ->
      if p < 0.0 || p > 100.0 then invalid_arg "Summary.percentile: p out of range";
      let sorted = List.sort Float.compare xs in
      let n = List.length sorted in
      let rank =
        int_of_float (ceil (p /. 100.0 *. float_of_int n)) |> max 1 |> min n
      in
      List.nth sorted (rank - 1)

let pp ppf t =
  Format.fprintf ppf "n=%d mean=%.3f sd=%.3f min=%.3f max=%.3f" t.count t.mean
    t.stddev t.min t.max
