(** Small descriptive-statistics helpers for experiment reporting. *)

type t = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
}

(** @raise Invalid_argument on []. *)
val of_floats : float list -> t

val of_ints : int list -> t

(** [percentile p xs] with [p] in [0, 100], nearest-rank method.
    @raise Invalid_argument on [] or out-of-range [p]. *)
val percentile : float -> float list -> float

val pp : Format.formatter -> t -> unit
