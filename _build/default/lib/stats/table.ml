type t = {
  title : string;
  columns : string list;
  mutable rows : string list list; (* reverse order *)
}

let create ~title ~columns = { title; columns; rows = [] }

let add_row t row =
  if List.length row <> List.length t.columns then
    invalid_arg
      (Printf.sprintf "Table.add_row: %d cells for %d columns" (List.length row)
         (List.length t.columns));
  t.rows <- row :: t.rows

let cell_int = string_of_int
let cell_float ?(decimals = 2) x = Printf.sprintf "%.*f" decimals x
let cell_ratio x = Printf.sprintf "%.2fx" x

let looks_numeric cell =
  cell <> ""
  && String.for_all
       (fun c -> (c >= '0' && c <= '9') || c = '.' || c = '-' || c = '+' || c = 'x' || c = 'e')
       cell

let to_string t =
  let rows = List.rev t.rows in
  let all = t.columns :: rows in
  let widths =
    List.fold_left
      (fun widths row ->
        List.map2 (fun w cell -> max w (String.length cell)) widths row)
      (List.map (fun _ -> 0) t.columns)
      all
  in
  let render_row row =
    String.concat "  "
      (List.map2
         (fun width cell ->
           if looks_numeric cell then Printf.sprintf "%*s" width cell
           else Printf.sprintf "%-*s" width cell)
         widths row)
  in
  let separator =
    String.concat "  " (List.map (fun w -> String.make w '-') widths)
  in
  let buffer = Buffer.create 256 in
  Buffer.add_string buffer ("== " ^ t.title ^ " ==\n");
  Buffer.add_string buffer (render_row t.columns ^ "\n");
  Buffer.add_string buffer (separator ^ "\n");
  List.iter (fun row -> Buffer.add_string buffer (render_row row ^ "\n")) rows;
  Buffer.contents buffer

let csv_cell cell =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') cell then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' cell) ^ "\""
  else cell

let to_csv t =
  let line row = String.concat "," (List.map csv_cell row) ^ "\n" in
  String.concat "" (List.map line (t.columns :: List.rev t.rows))

let print t = print_string (to_string t)
