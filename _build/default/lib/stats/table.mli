(** Minimal ASCII table rendering for experiment output.

    Columns are sized to their widest cell; numeric-looking cells are
    right-aligned, text left-aligned. *)

type t

(** [create ~title ~columns] starts a table. *)
val create : title:string -> columns:string list -> t

(** Append one row; its length must match the column count. *)
val add_row : t -> string list -> unit

(** Convenience formatters. *)
val cell_int : int -> string

val cell_float : ?decimals:int -> float -> string
val cell_ratio : float -> string

(** Render the full table. *)
val to_string : t -> string

(** RFC-4180-ish CSV: header row then data rows; cells containing commas,
    quotes or newlines are quoted. The title is not included. *)
val to_csv : t -> string

val print : t -> unit
