lib/uniform/landlord.ml: Array Float Hashtbl Int List Rrs_core Rrs_sim
