lib/uniform/landlord.mli: Rrs_sim
