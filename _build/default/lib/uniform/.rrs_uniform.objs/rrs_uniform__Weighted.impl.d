lib/uniform/weighted.ml: Array List Printf Rrs_offline Rrs_sim
