lib/uniform/weighted.mli: Rrs_sim
