lib/uniform/weighted_trace.ml: Array Fun List Printf Rrs_sim String Weighted
