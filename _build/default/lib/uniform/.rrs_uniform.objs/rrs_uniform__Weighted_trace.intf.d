lib/uniform/weighted_trace.mli: Weighted
