lib/uniform/weighted_workloads.ml: Array List Printf Random Rrs_sim Weighted
