lib/uniform/weighted_workloads.mli: Weighted
