(** A Landlord-style weight-aware online policy for the companion problem
    [Δ | c_l | D | D].

    The SPAA 2006 companion paper solves uniform-bound / variable-drop-
    cost scheduling by reduction to file caching, where Landlord (Young)
    is the classic resource-competitive algorithm. This policy adapts it
    directly, without the explicit reduction:

    - each color accumulates {e weighted demand} [c_l] per arriving job
      while uncached; when a nonidle color's demand reaches the
      reconfiguration cost [Delta] it {e faults} and is admitted with
      credit [Delta];
    - admission into a full cache first decreases every cached color's
      credit by the minimum cached credit and evicts the zero-credit
      colors (the Landlord step);
    - arrivals to a cached color refresh its credit to [Delta] (a hit).

    The cache holds up to [n/2] distinct colors, each in two locations,
    matching the Section 3.1 layout so results are comparable with the
    unit-cost policies. Weight-blind algorithms treat a 100-cost job like
    a 1-cost job; experiment E16 shows what that costs them. *)

(** [policy ~drop_costs] packages the weights into a policy instance. *)
val policy : drop_costs:int array -> (module Rrs_sim.Policy.POLICY)
