(** The companion problem [Δ | c_l | D | D]: uniform delay bounds,
    per-color drop costs — the variant solved by the SPAA 2006 paper
    "Reconfigurable resource scheduling" (reference [14] of the text we
    reproduce), which reduces it to file caching.

    This module layers weighted costs over the unit-cost simulator: the
    engine's mechanics (rounds, pending jobs, executions) are identical;
    only the objective changes, so weighted costs are computed from a
    run's event log. *)

type t = private {
  instance : Rrs_sim.Instance.t; (* uniform bounds *)
  drop_costs : int array; (* c_l >= 1 per color *)
}

(** [make ~instance ~drop_costs] validates that the instance has one
    common delay bound and positive integer drop costs (one per color). *)
val make :
  instance:Rrs_sim.Instance.t -> drop_costs:int array -> (t, string) result

(** The common delay bound. *)
val bound : t -> int

(** Weighted total cost of a run's event log:
    [delta * reconfigurations + sum over drops of c_color]. *)
val cost_of_events : t -> Rrs_sim.Ledger.event list -> int

(** Run a policy under the engine and return its weighted cost. The
    policy sees the unweighted instance; weight-aware policies (e.g.
    {!Landlord.policy}) carry the weights in their closure. *)
val run_policy :
  n:int -> policy:(module Rrs_sim.Policy.POLICY) -> t -> int

(** Weighted per-color lower bound on the weighted optimum:
    [sum over colors of min (Delta, c_l * N_l)] — any schedule either
    configures the color (>= Delta) or drops all its jobs (c_l each). *)
val lower_bound : t -> int

(** Exact weighted optimum by brute force (toy instances only). *)
val opt_cost : ?max_states:int -> m:int -> t -> int option
