let to_string (w : Weighted.t) =
  let base = Rrs_sim.Trace.to_string w.Weighted.instance in
  let costs =
    "dropcosts"
    ^ Array.fold_left
        (fun acc c -> acc ^ Printf.sprintf " %d" c)
        "" w.Weighted.drop_costs
    ^ "\n"
  in
  (* Insert the dropcosts directive before the final "end" line. *)
  match String.length base with
  | len when len >= 4 && String.sub base (len - 4) 4 = "end\n" ->
      String.sub base 0 (len - 4) ^ costs ^ "end\n"
  | _ -> base ^ costs

let of_string text =
  (* Extract the dropcosts line, hand the rest to the base parser. *)
  let lines = String.split_on_char '\n' text in
  let drop_costs = ref None in
  let error = ref None in
  let remaining =
    List.filter
      (fun line ->
        match String.split_on_char ' ' (String.trim line) with
        | "dropcosts" :: rest ->
            let values =
              List.filter_map int_of_string_opt
                (List.filter (fun t -> t <> "") rest)
            in
            if List.length values <> List.length (List.filter (fun t -> t <> "") rest)
            then error := Some "bad dropcosts line"
            else drop_costs := Some (Array.of_list values);
            false
        | _ -> true)
      lines
  in
  match !error with
  | Some message -> Error message
  | None -> (
      match Rrs_sim.Trace.of_string (String.concat "\n" remaining) with
      | Error message -> Error message
      | Ok instance ->
          let drop_costs =
            match !drop_costs with
            | Some costs -> costs
            | None -> Array.make (Rrs_sim.Instance.num_colors instance) 1
          in
          Weighted.make ~instance ~drop_costs)

let save w ~path =
  let channel = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out channel)
    (fun () -> output_string channel (to_string w))

let load ~path =
  match
    let channel = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in channel)
      (fun () -> really_input_string channel (in_channel_length channel))
  with
  | text -> of_string text
  | exception Sys_error message -> Error message
