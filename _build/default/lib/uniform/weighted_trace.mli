(** Trace I/O for weighted instances: the base trace format of
    {!Rrs_sim.Trace} plus one [dropcosts] directive:
    {v
    rrs-trace v1
    delta 4
    bounds 8 8 8
    dropcosts 1 1 100
    arrival 0 2:1
    end
    v} *)

val to_string : Weighted.t -> string
val of_string : string -> (Weighted.t, string) result
val save : Weighted.t -> path:string -> unit
val load : path:string -> (Weighted.t, string) result
