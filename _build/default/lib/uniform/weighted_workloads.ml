module Instance = Rrs_sim.Instance

let tiered ~seed ~colors ~delta ~bound ~horizon ~load ~precious ~precious_cost () =
  if precious < 0 || precious > colors then
    invalid_arg "Weighted_workloads.tiered: bad precious count";
  if precious_cost < 1 then
    invalid_arg "Weighted_workloads.tiered: precious_cost must be >= 1";
  let state = Random.State.make [| seed; 0xca5e |] in
  let poisson lambda cap =
    let limit = exp (-.lambda) in
    let rec draw k product =
      let product = product *. Random.State.float state 1.0 in
      if product <= limit || k >= cap then min k cap else draw (k + 1) product
    in
    draw 0 1.0
  in
  let arrivals = ref [] in
  for color = 0 to colors - 1 do
    let round = ref 0 in
    while !round < horizon do
      let count =
        if color < precious then
          (* Sparse: about one job per batch — too few to look important
             to a weight-blind counter. *)
          (if Random.State.float state 1.0 < 0.8 then 1 else 0)
        else poisson (load *. float_of_int bound) (2 * bound)
      in
      if count > 0 then arrivals := (!round, [ (color, count) ]) :: !arrivals;
      round := !round + bound
    done
  done;
  let instance =
    Instance.make
      ~name:
        (Printf.sprintf "tiered(c=%d,delta=%d,D=%d,precious=%dx%d,seed=%d)" colors
           delta bound precious precious_cost seed)
      ~delta
      ~bounds:(Array.make colors bound)
      ~arrivals:(List.rev !arrivals) ()
  in
  let drop_costs =
    Array.init colors (fun c -> if c < precious then precious_cost else 1)
  in
  match Weighted.make ~instance ~drop_costs with
  | Ok weighted -> weighted
  | Error message -> invalid_arg ("Weighted_workloads.tiered: " ^ message)
