(** Workloads for the companion problem: uniform delay bound, tiered
    per-color drop costs. *)

(** [tiered ~seed ~colors ~delta ~bound ~horizon ~load ~precious
    ~precious_cost ()] builds a weighted instance where all colors share
    [bound]; the first [precious] colors carry drop cost [precious_cost]
    and arrive sparsely (about one job per batch), while the remaining
    colors carry unit drop cost and Poisson batches of intensity [load].
    A weight-blind policy under-serves exactly the expensive sparse
    colors. @raise Invalid_argument on bad parameters. *)
val tiered :
  seed:int ->
  colors:int ->
  delta:int ->
  bound:int ->
  horizon:int ->
  load:float ->
  precious:int ->
  precious_cost:int ->
  unit ->
  Weighted.t
