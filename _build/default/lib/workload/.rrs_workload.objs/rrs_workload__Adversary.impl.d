lib/workload/adversary.ml: Array Fun Gen List Printf Rrs_sim
