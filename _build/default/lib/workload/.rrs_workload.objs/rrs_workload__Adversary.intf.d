lib/workload/adversary.mli: Rrs_sim
