lib/workload/gen.ml: List Random
