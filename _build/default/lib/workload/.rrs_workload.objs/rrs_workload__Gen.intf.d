lib/workload/gen.mli:
