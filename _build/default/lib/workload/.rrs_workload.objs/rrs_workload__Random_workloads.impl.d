lib/workload/random_workloads.ml: Array Gen List Printf Rrs_sim
