lib/workload/random_workloads.mli: Rrs_sim
