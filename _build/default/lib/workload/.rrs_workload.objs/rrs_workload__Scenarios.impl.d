lib/workload/scenarios.ml: Array Gen List Printf Rrs_sim
