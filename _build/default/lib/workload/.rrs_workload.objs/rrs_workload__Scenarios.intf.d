lib/workload/scenarios.mli: Rrs_sim
