lib/workload/spec.ml: Adversary List Printf Random_workloads Scenarios String
