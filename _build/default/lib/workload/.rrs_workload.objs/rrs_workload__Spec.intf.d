lib/workload/spec.mli: Rrs_sim
