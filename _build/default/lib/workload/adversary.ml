module Instance = Rrs_sim.Instance

type lower_bound_input = {
  instance : Instance.t;
  off_cost : int;
  description : string;
}

let lru_killer ~n ~delta ~j ~k =
  if n < 2 || n mod 2 <> 0 then invalid_arg "Adversary.lru_killer: n must be even, >= 2";
  if delta < 1 then invalid_arg "Adversary.lru_killer: delta must be >= 1";
  let short_bound = 1 lsl j in
  let long_bound = 1 lsl k in
  if not (long_bound > 2 * short_bound && 2 * short_bound > n * delta) then
    invalid_arg "Adversary.lru_killer: need 2^k > 2^(j+1) > n * delta";
  let short_colors = n / 2 in
  (* Colors 0 .. short_colors-1 are short-term; color short_colors is the
     long-term color. *)
  let bounds =
    Array.init (short_colors + 1) (fun c ->
        if c < short_colors then short_bound else long_bound)
  in
  let arrivals = ref [ (0, [ (short_colors, long_bound) ]) ] in
  let batch = List.init short_colors (fun c -> (c, delta)) in
  let round = ref 0 in
  while !round < long_bound do
    arrivals := (!round, batch) :: !arrivals;
    round := !round + short_bound
  done;
  let instance =
    Instance.make
      ~name:(Printf.sprintf "lru-killer(n=%d,delta=%d,j=%d,k=%d)" n delta j k)
      ~delta ~bounds ~arrivals:(List.rev !arrivals) ()
  in
  (* OFF (one resource) caches the long-term color throughout: one
     reconfiguration, and every short-term job is dropped. *)
  let dropped_short = short_colors * delta * (long_bound / short_bound) in
  {
    instance;
    off_cost = delta + dropped_short;
    description =
      Printf.sprintf
        "Appendix A: %d short colors (D=2^%d, %d jobs/batch), 1 long color \
         (D=2^%d, %d jobs at round 0)"
        short_colors j delta k long_bound;
  }

let edf_killer ~n ~delta ~j ~k =
  if n < 2 || n mod 2 <> 0 then invalid_arg "Adversary.edf_killer: n must be even, >= 2";
  let short_bound = 1 lsl j in
  let base_long = 1 lsl k in
  if not (base_long > short_bound && short_bound > delta && delta > n) then
    invalid_arg "Adversary.edf_killer: need 2^k > 2^j > delta > n";
  let long_colors = n / 2 in
  (* Color 0 is the short color; color 1+p has bound 2^(k+p). *)
  let bounds =
    Array.init (long_colors + 1) (fun c ->
        if c = 0 then short_bound else 1 lsl (k + c - 1))
  in
  let arrivals = ref [] in
  (* Long colors: color 1+p receives 2^(k+p-1) jobs at round 0. *)
  let round0 =
    List.init long_colors (fun p -> (p + 1, 1 lsl (k + p - 1)))
  in
  arrivals := [ (0, round0) ];
  (* Short color: delta jobs at each multiple of 2^j until round 2^(k-1). *)
  let round = ref 0 in
  while !round < base_long / 2 do
    arrivals := (!round, [ (0, delta) ]) :: !arrivals;
    round := !round + short_bound
  done;
  let instance =
    Instance.make
      ~name:(Printf.sprintf "edf-killer(n=%d,delta=%d,j=%d,k=%d)" n delta j k)
      ~delta ~bounds ~arrivals:(List.rev !arrivals) ()
  in
  {
    instance;
    off_cost = (long_colors + 1) * delta;
    description =
      Printf.sprintf
        "Appendix B: 1 short color (D=2^%d, %d jobs/batch until 2^%d), %d long \
         colors (D=2^%d..2^%d, half-bound backlogs at round 0)"
        j delta (k - 1) long_colors k
        (k + long_colors - 1);
  }

let motivation ?(seed = 1) ~short_colors ~short_bound_log ~long_bound_log ~delta
    ~burst_probability () =
  let rng = Gen.create ~seed in
  let short_bound = 1 lsl short_bound_log in
  let long_bound = 1 lsl long_bound_log in
  if long_bound <= short_bound then
    invalid_arg "Adversary.motivation: long bound must exceed short bound";
  let bounds =
    Array.init (short_colors + 1) (fun c ->
        if c < short_colors then short_bound else long_bound)
  in
  (* Background backlog: enough jobs to keep one resource busy for most
     of the horizon. *)
  let arrivals = ref [ (0, [ (short_colors, long_bound) ]) ] in
  let round = ref 0 in
  while !round < long_bound do
    let burst =
      List.filter_map
        (fun c ->
          if Gen.flip rng ~p:burst_probability then
            let lo = min delta short_bound in
            let hi = max lo (min (2 * delta) short_bound) in
            Some (c, Gen.int_range rng ~lo ~hi)
          else None)
        (List.init short_colors Fun.id)
    in
    if burst <> [] then arrivals := (!round, burst) :: !arrivals;
    round := !round + short_bound
  done;
  Instance.make
    ~name:
      (Printf.sprintf "motivation(s=%d,j=%d,k=%d,delta=%d,p=%.2f,seed=%d)"
         short_colors short_bound_log long_bound_log delta burst_probability seed)
    ~delta ~bounds ~arrivals:(List.rev !arrivals) ()
