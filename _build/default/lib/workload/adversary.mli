(** Adversarial constructions from the paper.

    Each builder also reports the analytic offline strategy cost the
    appendix uses (the cost of the OFF schedule described in the paper,
    with one resource) so benches can print the exact ratio the paper's
    argument yields. *)

type lower_bound_input = {
  instance : Rrs_sim.Instance.t;
  off_cost : int; (* cost of the appendix's explicit OFF schedule, m = 1 *)
  description : string;
}

(** Appendix A: kills ΔLRU. [n/2] short-term colors of bound [2^j] each
    receiving [Delta] jobs at every multiple of [2^j], one long-term
    color of bound [2^k] receiving [2^k] jobs at round 0.
    Requires [2^k > 2^(j+1) > n * Delta] (and [n] even, [n >= 2]).
    OFF caches the long-term color throughout:
    [off_cost = Delta + 2^(k-j-1) * n * Delta]. ΔLRU pins the short-term
    colors and drops all [2^k] long-term jobs.
    @raise Invalid_argument when the parameter constraints fail. *)
val lru_killer : n:int -> delta:int -> j:int -> k:int -> lower_bound_input

(** Appendix B: kills EDF. One color of bound [2^j] receiving [Delta]
    jobs at every multiple of [2^j] before round [2^(k-1)], plus [n/2]
    colors of bounds [2^(k+p)] ([0 <= p < n/2]) receiving [2^(k+p-1)]
    jobs at round 0. Requires [2^k > 2^j > Delta > n].
    OFF serves the short color first, then each long color in its own
    interval: [off_cost = (n/2 + 1) * Delta], no drops. EDF thrashes
    between the short color and the largest-bound color.
    @raise Invalid_argument when the parameter constraints fail. *)
val edf_killer : n:int -> delta:int -> j:int -> k:int -> lower_bound_input

(** The introduction's motivation scenario: one "background" color with a
    large bound and a backlog of jobs, plus short-term colors arriving in
    intermittent bursts. Exercises the thrashing/underutilization tension
    without being a worst case. *)
val motivation :
  ?seed:int ->
  short_colors:int ->
  short_bound_log:int ->
  long_bound_log:int ->
  delta:int ->
  burst_probability:float ->
  unit ->
  Rrs_sim.Instance.t
