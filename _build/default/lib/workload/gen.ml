type t = Random.State.t

let create ~seed = Random.State.make [| seed; 0x5eed; seed lxor 0x9e3779b9 |]
let int t bound = Random.State.int t (max bound 1)

let int_range t ~lo ~hi =
  if hi < lo then invalid_arg "Gen.int_range: hi < lo";
  lo + Random.State.int t (hi - lo + 1)

let float t bound = Random.State.float t bound
let flip t ~p = Random.State.float t 1.0 < p

let geometric t ~p ~cap =
  if p <= 0.0 || p > 1.0 then invalid_arg "Gen.geometric: p out of (0, 1]";
  let rec count failures =
    if failures >= cap then cap
    else if Random.State.float t 1.0 < p then failures
    else count (failures + 1)
  in
  count 0

let poisson t ~lambda ~cap =
  if lambda < 0.0 then invalid_arg "Gen.poisson: negative lambda";
  let limit = exp (-.lambda) in
  let rec draw k product =
    let product = product *. Random.State.float t 1.0 in
    if product <= limit || k >= cap then min k cap else draw (k + 1) product
  in
  draw 0 1.0

let choice t = function
  | [] -> invalid_arg "Gen.choice: empty list"
  | xs -> List.nth xs (int t (List.length xs))

let pow2_range t ~lo ~hi =
  if lo < 0 || hi < lo then invalid_arg "Gen.pow2_range: bad range";
  1 lsl int_range t ~lo ~hi

let zipf_weight ~rank ~s =
  if rank < 1 then invalid_arg "Gen.zipf_weight: rank must be >= 1";
  1.0 /. (float_of_int rank ** s)
