(** Deterministic random generation helpers for workloads.

    Thin wrapper over [Random.State] so every generator takes an explicit
    seed and experiments are reproducible. *)

type t

val create : seed:int -> t

(** Uniform in [0, bound). *)
val int : t -> int -> int

(** Uniform in [lo, hi] inclusive. *)
val int_range : t -> lo:int -> hi:int -> int

val float : t -> float -> float

(** True with probability [p]. *)
val flip : t -> p:float -> bool

(** Geometric with success probability [p]: number of failures before the
    first success, in [0, cap]. *)
val geometric : t -> p:float -> cap:int -> int

(** Poisson-distributed count with mean [lambda] (Knuth's method), capped
    at [cap]. *)
val poisson : t -> lambda:float -> cap:int -> int

(** Uniformly chosen element. @raise Invalid_argument on []. *)
val choice : t -> 'a list -> 'a

(** Random power of two in [2^lo, 2^hi]. *)
val pow2_range : t -> lo:int -> hi:int -> int

(** Zipf-like weight for rank [r] (1-based) with exponent [s]. *)
val zipf_weight : rank:int -> s:float -> float
