module Instance = Rrs_sim.Instance

let make_bounds rng ~colors ~bound_log_range:(lo, hi) =
  Array.init colors (fun _ -> Gen.pow2_range rng ~lo ~hi)

let batched_arrivals rng ~bounds ~horizon ~count_at =
  let arrivals = ref [] in
  Array.iteri
    (fun color bound ->
      let round = ref 0 in
      while !round < horizon do
        let count = count_at rng ~color ~bound ~round:!round in
        if count > 0 then arrivals := (!round, [ (color, count) ]) :: !arrivals;
        round := !round + bound
      done)
    bounds;
  List.rev !arrivals

let cap ~rate_limited ~bound count = if rate_limited then min count bound else count

let uniform ~seed ~colors ~delta ~bound_log_range ~horizon ~load ~rate_limited () =
  let rng = Gen.create ~seed in
  let bounds = make_bounds rng ~colors ~bound_log_range in
  let count_at rng ~color:_ ~bound ~round:_ =
    let lambda = load *. float_of_int bound in
    cap ~rate_limited ~bound (Gen.poisson rng ~lambda ~cap:(4 * bound))
  in
  let arrivals = batched_arrivals rng ~bounds ~horizon ~count_at in
  Instance.make
    ~name:(Printf.sprintf "uniform(c=%d,delta=%d,load=%.2f,seed=%d)" colors delta load seed)
    ~delta ~bounds ~arrivals ()

let bursty ~seed ~colors ~delta ~bound_log_range ~horizon ~load ~churn
    ~rate_limited () =
  let rng = Gen.create ~seed in
  let bounds = make_bounds rng ~colors ~bound_log_range in
  let on = Array.init colors (fun _ -> Gen.flip rng ~p:0.5) in
  let count_at rng ~color ~bound ~round:_ =
    if Gen.flip rng ~p:churn then on.(color) <- not on.(color);
    if not on.(color) then 0
    else
      let lambda = load *. float_of_int bound in
      cap ~rate_limited ~bound (Gen.poisson rng ~lambda ~cap:(4 * bound))
  in
  let arrivals = batched_arrivals rng ~bounds ~horizon ~count_at in
  Instance.make
    ~name:
      (Printf.sprintf "bursty(c=%d,delta=%d,load=%.2f,churn=%.2f,seed=%d)" colors
         delta load churn seed)
    ~delta ~bounds ~arrivals ()

let zipf ~seed ~colors ~delta ~bound_log_range ~horizon ~load ~s ~rate_limited () =
  let rng = Gen.create ~seed in
  let bounds = make_bounds rng ~colors ~bound_log_range in
  let total_weight =
    let sum = ref 0.0 in
    for rank = 1 to colors do
      sum := !sum +. Gen.zipf_weight ~rank ~s
    done;
    !sum
  in
  let count_at rng ~color ~bound ~round:_ =
    let weight = Gen.zipf_weight ~rank:(color + 1) ~s in
    let lambda =
      load *. float_of_int bound *. float_of_int colors *. weight /. total_weight
    in
    cap ~rate_limited ~bound (Gen.poisson rng ~lambda ~cap:(4 * bound))
  in
  let arrivals = batched_arrivals rng ~bounds ~horizon ~count_at in
  Instance.make
    ~name:(Printf.sprintf "zipf(c=%d,delta=%d,load=%.2f,s=%.2f,seed=%d)" colors delta load s seed)
    ~delta ~bounds ~arrivals ()

let unbatched ~seed ~colors ~delta ~bound_range:(lo, hi) ~horizon ~load () =
  let rng = Gen.create ~seed in
  let bounds = Array.init colors (fun _ -> Gen.int_range rng ~lo ~hi) in
  let arrivals = ref [] in
  Array.iteri
    (fun color _bound ->
      let round = ref (Gen.int rng (max 1 (int_of_float (1.0 /. load)))) in
      while !round < horizon do
        let count = 1 + Gen.geometric rng ~p:0.5 ~cap:7 in
        arrivals := (!round, [ (color, count) ]) :: !arrivals;
        (* Geometric gap targeting [load] jobs per round per color. *)
        let mean_gap = max 1 (int_of_float (float_of_int count /. load)) in
        round := !round + 1 + Gen.int rng (2 * mean_gap)
      done)
    bounds;
  Instance.make
    ~name:(Printf.sprintf "unbatched(c=%d,delta=%d,load=%.2f,seed=%d)" colors delta load seed)
    ~delta ~bounds ~arrivals:(List.rev !arrivals) ()
