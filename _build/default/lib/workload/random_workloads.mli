(** Randomized workload families for sweeps and property tests.

    All generators are deterministic in their seed. Bounds are powers of
    two unless stated otherwise; arrivals are batched at multiples of
    each color's bound (the [.. | D_l] batch model), with an option to
    cap batch sizes at [D_l] (rate-limited). *)

(** [uniform ~seed ~colors ~delta ~bound_log_range:(lo, hi) ~horizon
    ~load ~rate_limited ()]: every color gets an independent power-of-two
    bound in [2^lo, 2^hi]; at each multiple of its bound it receives a
    Poisson count with mean [load * bound] (so [load] is per-round
    arrival intensity per color), capped at the bound when
    [rate_limited]. *)
val uniform :
  seed:int ->
  colors:int ->
  delta:int ->
  bound_log_range:int * int ->
  horizon:int ->
  load:float ->
  rate_limited:bool ->
  unit ->
  Rrs_sim.Instance.t

(** [bursty]: like [uniform] but each color flips between ON and OFF
    states at its batch boundaries (two-state Markov chain with switch
    probability [churn]); OFF batches are empty, ON batches carry
    [load]-scaled traffic. Models intermittent services. *)
val bursty :
  seed:int ->
  colors:int ->
  delta:int ->
  bound_log_range:int * int ->
  horizon:int ->
  load:float ->
  churn:float ->
  rate_limited:bool ->
  unit ->
  Rrs_sim.Instance.t

(** [zipf]: color popularity follows a Zipf law with exponent [s] — a
    few hot colors carry most traffic. *)
val zipf :
  seed:int ->
  colors:int ->
  delta:int ->
  bound_log_range:int * int ->
  horizon:int ->
  load:float ->
  s:float ->
  rate_limited:bool ->
  unit ->
  Rrs_sim.Instance.t

(** [unbatched]: arrivals at arbitrary rounds (geometric gaps), arbitrary
    (not necessarily power-of-two) bounds in [bound_range] — the general
    [Δ|1|D_l|1] input class for VarBatch. *)
val unbatched :
  seed:int ->
  colors:int ->
  delta:int ->
  bound_range:int * int ->
  horizon:int ->
  load:float ->
  unit ->
  Rrs_sim.Instance.t
