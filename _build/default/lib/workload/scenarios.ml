module Instance = Rrs_sim.Instance

let datacenter ?(seed = 1) ~services ~delta ~phases ~phase_length () =
  if services < 2 then invalid_arg "Scenarios.datacenter: need >= 2 services";
  let rng = Gen.create ~seed in
  (* Service tiers: a third interactive (bound 4), a third standard
     (bound 16), the rest batch (bound 64); all powers of two. *)
  let bounds =
    Array.init services (fun s ->
        if s < services / 3 then 4 else if s < 2 * services / 3 then 16 else 64)
  in
  let horizon = phases * phase_length in
  let arrivals = ref [] in
  for phase = 0 to phases - 1 do
    (* In each phase, roughly half the services are hot. *)
    let hot = Array.init services (fun _ -> Gen.flip rng ~p:0.5) in
    Array.iteri
      (fun service bound ->
        let start = phase * phase_length in
        let round = ref (((start + bound - 1) / bound) * bound) in
        while !round < start + phase_length && !round < horizon do
          let lambda =
            (if hot.(service) then 0.8 else 0.05) *. float_of_int bound
          in
          let count = min bound (Gen.poisson rng ~lambda ~cap:(2 * bound)) in
          if count > 0 then arrivals := (!round, [ (service, count) ]) :: !arrivals;
          round := !round + bound
        done)
      bounds
  done;
  Instance.make
    ~name:
      (Printf.sprintf "datacenter(s=%d,delta=%d,phases=%d,len=%d,seed=%d)" services
         delta phases phase_length seed)
    ~delta ~bounds ~arrivals:(List.rev !arrivals) ()

let router ?(seed = 1) ~classes ~delta ~horizon ~utilization ~n_ref () =
  if classes < 2 then invalid_arg "Scenarios.router: need >= 2 classes";
  let rng = Gen.create ~seed in
  (* Latency tiers: hot (low-rank) classes are latency-sensitive. *)
  let bounds =
    Array.init classes (fun c ->
        if c < classes / 4 then 2
        else if c < classes / 2 then 8
        else if c < 3 * classes / 4 then 32
        else 128)
  in
  let s = 1.1 in
  let total_weight =
    let sum = ref 0.0 in
    for rank = 1 to classes do
      sum := !sum +. Gen.zipf_weight ~rank ~s
    done;
    !sum
  in
  let per_round_budget = utilization *. float_of_int n_ref in
  let arrivals = ref [] in
  Array.iteri
    (fun klass bound ->
      let weight = Gen.zipf_weight ~rank:(klass + 1) ~s /. total_weight in
      let lambda = per_round_budget *. weight *. float_of_int bound in
      let round = ref 0 in
      while !round < horizon do
        let count = min bound (Gen.poisson rng ~lambda ~cap:(2 * bound)) in
        if count > 0 then arrivals := (!round, [ (klass, count) ]) :: !arrivals;
        round := !round + bound
      done)
    bounds;
  Instance.make
    ~name:
      (Printf.sprintf "router(c=%d,delta=%d,util=%.2f,seed=%d)" classes delta
         utilization seed)
    ~delta ~bounds ~arrivals:(List.rev !arrivals) ()
