(** Domain scenarios from the paper's motivation: a shared data center
    reallocating processors between hosted services, and a multi-service
    router on programmable network processors.

    These are synthetic (the paper uses no traces), but exercise the
    motivating structure: several job categories with category-specific
    delay tolerances and shifting load composition. *)

(** Shared data center: [services] colors whose load composition shifts
    between phases — in each phase a different subset of services is
    hot. Delay bounds reflect service tiers (interactive services get
    small bounds, batch services large ones). *)
val datacenter :
  ?seed:int ->
  services:int ->
  delta:int ->
  phases:int ->
  phase_length:int ->
  unit ->
  Rrs_sim.Instance.t

(** Multi-service router: packet classes with Zipf-distributed traffic
    shares; latency-sensitive classes (voice, gaming) get tight delay
    bounds, bulk classes get loose ones. [utilization] is the target
    fraction of total execution capacity ([n_ref] resources) consumed. *)
val router :
  ?seed:int ->
  classes:int ->
  delta:int ->
  horizon:int ->
  utilization:float ->
  n_ref:int ->
  unit ->
  Rrs_sim.Instance.t
