let kinds =
  [
    "uniform"; "bursty"; "zipf"; "unbatched"; "datacenter"; "router";
    "motivation"; "lru-killer"; "edf-killer";
  ]

type params = (string * string) list

let parse_params text : (params, string) result =
  if String.trim text = "" then Ok []
  else
    let entries = String.split_on_char ',' text in
    let rec collect acc = function
      | [] -> Ok (List.rev acc)
      | entry :: rest -> (
          match String.split_on_char '=' entry with
          | [ key; value ] -> collect ((String.trim key, String.trim value) :: acc) rest
          | _ -> Error (Printf.sprintf "bad parameter %S (expected key=value)" entry))
    in
    collect [] entries

exception Bad of string

let int_param params key default =
  match List.assoc_opt key params with
  | None -> default
  | Some value -> (
      match int_of_string_opt value with
      | Some i -> i
      | None -> raise (Bad (Printf.sprintf "parameter %s: bad integer %S" key value)))

let float_param params key default =
  match List.assoc_opt key params with
  | None -> default
  | Some value -> (
      match float_of_string_opt value with
      | Some f -> f
      | None -> raise (Bad (Printf.sprintf "parameter %s: bad float %S" key value)))

let bool_param params key default =
  match List.assoc_opt key params with
  | None -> default
  | Some "true" -> true
  | Some "false" -> false
  | Some value -> raise (Bad (Printf.sprintf "parameter %s: bad bool %S" key value))

let known_keys =
  [
    "colors"; "delta"; "minlog"; "maxlog"; "horizon"; "load"; "seed";
    "ratelimited"; "churn"; "s"; "minbound"; "maxbound"; "services"; "phases";
    "phaselen"; "classes"; "util"; "nref"; "shorts"; "shortlog"; "longlog";
    "burst"; "n"; "j"; "k";
  ]

let check_keys params =
  List.iter
    (fun (key, _) ->
      if not (List.mem key known_keys) then
        raise (Bad (Printf.sprintf "unknown parameter %S" key)))
    params

let build kind params =
  check_keys params;
  let colors = int_param params "colors" 8 in
  let delta = int_param params "delta" 4 in
  let horizon = int_param params "horizon" 256 in
  let seed = int_param params "seed" 1 in
  let load = float_param params "load" 0.8 in
  let bound_log_range =
    (int_param params "minlog" 0, int_param params "maxlog" 4)
  in
  let rate_limited = bool_param params "ratelimited" true in
  match kind with
  | "uniform" ->
      Random_workloads.uniform ~seed ~colors ~delta ~bound_log_range ~horizon
        ~load ~rate_limited ()
  | "bursty" ->
      Random_workloads.bursty ~seed ~colors ~delta ~bound_log_range ~horizon
        ~load
        ~churn:(float_param params "churn" 0.3)
        ~rate_limited ()
  | "zipf" ->
      Random_workloads.zipf ~seed ~colors ~delta ~bound_log_range ~horizon ~load
        ~s:(float_param params "s" 1.2)
        ~rate_limited ()
  | "unbatched" ->
      Random_workloads.unbatched ~seed ~colors ~delta
        ~bound_range:
          (int_param params "minbound" 2, int_param params "maxbound" 32)
        ~horizon
        ~load:(float_param params "load" 0.5)
        ()
  | "datacenter" ->
      Scenarios.datacenter ~seed
        ~services:(int_param params "services" 9)
        ~delta
        ~phases:(int_param params "phases" 3)
        ~phase_length:(int_param params "phaselen" 64)
        ()
  | "router" ->
      Scenarios.router ~seed
        ~classes:(int_param params "classes" 8)
        ~delta ~horizon
        ~utilization:(float_param params "util" 0.7)
        ~n_ref:(int_param params "nref" 4)
        ()
  | "motivation" ->
      Adversary.motivation ~seed
        ~short_colors:(int_param params "shorts" 4)
        ~short_bound_log:(int_param params "shortlog" 3)
        ~long_bound_log:(int_param params "longlog" 8)
        ~delta
        ~burst_probability:(float_param params "burst" 0.4)
        ()
  | "lru-killer" ->
      (Adversary.lru_killer
         ~n:(int_param params "n" 8)
         ~delta:(int_param params "delta" 2)
         ~j:(int_param params "j" 5)
         ~k:(int_param params "k" 8))
        .instance
  | "edf-killer" ->
      (Adversary.edf_killer
         ~n:(int_param params "n" 8)
         ~delta:(int_param params "delta" 10)
         ~j:(int_param params "j" 4)
         ~k:(int_param params "k" 6))
        .instance
  | other ->
      raise
        (Bad
           (Printf.sprintf "unknown workload kind %S (expected one of: %s)" other
              (String.concat ", " kinds)))

let parse text =
  let kind, rest =
    match String.index_opt text ':' with
    | None -> (text, "")
    | Some i ->
        (String.sub text 0 i, String.sub text (i + 1) (String.length text - i - 1))
  in
  match parse_params rest with
  | Error message -> Error message
  | Ok params -> (
      match build (String.trim kind) params with
      | instance -> Ok instance
      | exception Bad message -> Error message
      | exception Invalid_argument message -> Error message)
