(** Parse workload specification strings for the CLI and scripts.

    A spec is [kind:key=value,key=value,...]. Supported kinds and their
    keys (all optional unless noted, with defaults in brackets):

    - [uniform]: colors [8], delta [4], minlog [0], maxlog [4],
      horizon [256], load [0.8], seed [1], ratelimited [true]
    - [bursty]: as uniform plus churn [0.3]
    - [zipf]: as uniform plus s [1.2]
    - [unbatched]: colors [8], delta [4], minbound [2], maxbound [32],
      horizon [256], load [0.5], seed [1]
    - [datacenter]: services [9], delta [4], phases [3], phaselen [64],
      seed [1]
    - [router]: classes [8], delta [4], horizon [256], util [0.7],
      nref [4], seed [1]
    - [motivation]: shorts [4], shortlog [3], longlog [8], delta [4],
      burst [0.4], seed [1]
    - [lru-killer]: n [8], delta [2], j [5], k [8]
    - [edf-killer]: n [8], delta [10], j [4], k [6]

    Example: ["uniform:colors=12,load=1.0,seed=7"]. *)

val parse : string -> (Rrs_sim.Instance.t, string) result

(** One-line summary of supported kinds for --help output. *)
val kinds : string list
