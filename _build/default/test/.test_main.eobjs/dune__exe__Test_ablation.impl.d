test/test_ablation.ml: Alcotest List QCheck2 QCheck_alcotest Rrs_core Rrs_offline Rrs_sim Rrs_workload Test_helpers
