test/test_constructions.ml: Alcotest Array List Printf QCheck2 QCheck_alcotest Result Rrs_core Rrs_offline Rrs_sim Rrs_workload
