test/test_ds.ml: Alcotest Int List Option QCheck2 QCheck_alcotest Rrs_ds
