test/test_edge_cases.ml: Alcotest Array Lazy List Option Rrs_core Rrs_offline Rrs_sim Rrs_stats Rrs_uniform Rrs_workload
