test/test_helpers.ml: Alcotest Array Hashtbl List QCheck2 Rrs_sim Rrs_workload String
