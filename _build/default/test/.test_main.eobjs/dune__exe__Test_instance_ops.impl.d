test/test_instance_ops.ml: Alcotest Fun Lazy List QCheck2 QCheck_alcotest Rrs_core Rrs_sim Test_helpers
