test/test_integration.ml: Alcotest Filename Fun List Option Rrs_core Rrs_sim Rrs_stats Rrs_workload String Sys
