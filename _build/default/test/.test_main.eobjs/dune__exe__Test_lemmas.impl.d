test/test_lemmas.ml: Alcotest Array List QCheck2 QCheck_alcotest Rrs_core Rrs_offline Rrs_sim Rrs_workload Test_helpers
