test/test_metrics.ml: Alcotest List QCheck2 QCheck_alcotest Rrs_core Rrs_sim Rrs_stats Test_helpers
