test/test_offline.ml: Alcotest List QCheck2 QCheck_alcotest Result Rrs_core Rrs_offline Rrs_sim Rrs_stats Rrs_workload Test_helpers
