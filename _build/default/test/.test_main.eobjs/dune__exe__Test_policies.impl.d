test/test_policies.ml: Alcotest Array Fun List Printf QCheck2 QCheck_alcotest Rrs_core Rrs_sim Rrs_stats Rrs_workload Test_helpers
