test/test_reductions.ml: Alcotest Array Fun List QCheck2 QCheck_alcotest Rrs_core Rrs_sim Test_helpers
