test/test_sim.ml: Alcotest Array Int List QCheck2 QCheck_alcotest Result Rrs_core Rrs_sim Test_helpers
