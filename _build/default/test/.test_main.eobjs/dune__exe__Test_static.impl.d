test/test_static.ml: Alcotest Hashtbl List QCheck2 QCheck_alcotest Rrs_offline Rrs_sim Test_helpers
