test/test_stress.ml: Alcotest Rrs_core Rrs_ds Rrs_sim Rrs_workload
