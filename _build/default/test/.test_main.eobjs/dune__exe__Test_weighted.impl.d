test/test_weighted.ml: Alcotest Array Option Printf QCheck2 QCheck_alcotest Result Rrs_core Rrs_sim Rrs_uniform Test_helpers
