test/test_workload.ml: Alcotest Array List Result Rrs_offline Rrs_sim Rrs_workload
