(* Tests for the extension layer: the refined per-color lower bound, the
   parameterized ΔLRU-EDF split, and the LRU-2 baseline. *)

module Instance = Rrs_sim.Instance
module Engine = Rrs_sim.Engine
module Lower_bounds = Rrs_offline.Lower_bounds
module Color_state = Rrs_core.Color_state
module H = Test_helpers

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ---- per_color_refined ---- *)

let test_refined_bound_example () =
  (* One color, 6 unit-bound jobs per round for 4 rounds, delta 2, m 2.
     r=0: 24 drops. r=1: 2 + 5*4 = 22. r=2: 4 + 4*4 = 20. Refined = 20;
     plain per-color bound = min(2, 24) = 2. *)
  let i =
    Instance.make ~delta:2 ~bounds:[| 1 |]
      ~arrivals:(List.init 4 (fun r -> (r, [ (0, 6) ])))
      ()
  in
  check "plain" 2 (Lower_bounds.per_color i);
  check "refined" 20 (Lower_bounds.per_color_refined ~m:2 i)

let test_refined_bound_prefers_dropping () =
  (* 1 job, delta 5: dropping is cheapest. *)
  let i = Instance.make ~delta:5 ~bounds:[| 2 |] ~arrivals:[ (0, [ (0, 1) ]) ] () in
  check "refined drops" 1 (Lower_bounds.per_color_refined ~m:3 i)

let prop_refined_dominates_plain =
  QCheck2.Test.make ~name:"per_color_refined >= per_color" ~count:60
    H.gen_batched (fun instance ->
      Lower_bounds.per_color_refined ~m:2 instance
      >= Lower_bounds.per_color instance)

let prop_refined_below_opt =
  QCheck2.Test.make ~name:"per_color_refined <= exact OPT" ~count:40 H.gen_tiny
    (fun instance ->
      match Rrs_offline.Brute_force.opt_cost ~max_states:300_000 ~m:2 instance with
      | None -> QCheck2.assume_fail ()
      | Some opt -> Lower_bounds.per_color_refined ~m:2 instance <= opt)

(* ---- LRU-2 timestamps ---- *)

let test_timestamp2 () =
  let s = Color_state.create ~delta:2 ~bounds:[| 4 |] () in
  (* Wraps at rounds 0, 4 and 8. *)
  List.iter
    (fun round ->
      Color_state.on_drop s ~round ~dropped:[] ~in_cache:(fun _ -> true);
      Color_state.on_arrival s ~round ~request:[ (0, 2) ])
    [ 0; 4; 8 ];
  (* As of round 9: boundary 8; last wrap before it is 4, second one 0. *)
  check "ts1" 4 (Color_state.timestamp s 0 ~round:9);
  check "ts2" 0 (Color_state.timestamp2 s 0 ~round:9);
  (* Cross the next boundary without a wrap: as of round 12, wraps before
     boundary 12 are 8, 4, ... *)
  Color_state.on_drop s ~round:12 ~dropped:[] ~in_cache:(fun _ -> true);
  Color_state.on_arrival s ~round:12 ~request:[];
  check "ts1 after" 8 (Color_state.timestamp s 0 ~round:13);
  check "ts2 after" 4 (Color_state.timestamp2 s 0 ~round:13)

let test_timestamp2_fewer_than_two_wraps () =
  let s = Color_state.create ~delta:2 ~bounds:[| 4 |] () in
  check "no wraps" 0 (Color_state.timestamp2 s 0 ~round:5);
  Color_state.on_arrival s ~round:0 ~request:[ (0, 2) ];
  check "one wrap" 0 (Color_state.timestamp2 s 0 ~round:5)

(* ---- split ablation ---- *)

let test_split_extremes_match_pure_policies () =
  (* Share 1.0 ranks exactly like ΔLRU; share 0.0 exactly like sticky
     EDF. Check cost equality on the adversarial inputs. *)
  let a = (Rrs_workload.Adversary.lru_killer ~n:8 ~delta:2 ~j:5 ~k:8).instance in
  let b = (Rrs_workload.Adversary.edf_killer ~n:8 ~delta:10 ~j:4 ~k:6).instance in
  let cost policy instance = Engine.cost ~n:8 ~policy instance in
  List.iter
    (fun instance ->
      check "share 1.0 = dlru"
        (cost (module Rrs_core.Policy_lru) instance)
        (cost (Rrs_core.Lru_edf_core.with_share 1.0) instance);
      check "share 0.0 = edf"
        (cost (module Rrs_core.Policy_edf) instance)
        (cost (Rrs_core.Lru_edf_core.with_share 0.0) instance);
      check "share 0.5 = dlru-edf"
        (cost (module Rrs_core.Policy_lru_edf) instance)
        (cost (Rrs_core.Lru_edf_core.with_share 0.5) instance))
    [ a; b ]

let test_only_combination_survives_both () =
  let a = Rrs_workload.Adversary.lru_killer ~n:8 ~delta:2 ~j:6 ~k:9 in
  let b = Rrs_workload.Adversary.edf_killer ~n:8 ~delta:10 ~j:4 ~k:8 in
  let ratio policy (adv : Rrs_workload.Adversary.lower_bound_input) =
    float_of_int (Engine.cost ~n:8 ~policy adv.instance)
    /. float_of_int adv.off_cost
  in
  let worst policy = max (ratio policy a) (ratio policy b) in
  let combo = worst (Rrs_core.Lru_edf_core.with_share 0.5) in
  check_bool "combination is O(1) on both" true (combo <= 3.0);
  check_bool "pure LRU blows up" true
    (worst (Rrs_core.Lru_edf_core.with_share 1.0) > 2.0 *. combo);
  check_bool "pure EDF blows up" true
    (worst (Rrs_core.Lru_edf_core.with_share 0.0) > 2.0 *. combo)

let test_lru_k_fails_appendix_a () =
  (* LRU-2 is still recency-only: Appendix A defeats it too. *)
  let adv = Rrs_workload.Adversary.lru_killer ~n:8 ~delta:2 ~j:6 ~k:9 in
  let lru2 = Engine.cost ~n:8 ~policy:(module Rrs_core.Policy_lru_k) adv.instance in
  let combo = Engine.cost ~n:8 ~policy:(module Rrs_core.Policy_lru_edf) adv.instance in
  check_bool "lru-2 much worse than the combination" true (lru2 > 3 * combo)

let prop_lru_k_invariants =
  QCheck2.Test.make ~name:"dlru-2: <= n/2 distinct colors, all duplicated"
    ~count:30 H.gen_rate_limited (fun instance ->
      let module S = H.Spy (Rrs_core.Policy_lru_k) in
      S.expected_copies := 2;
      let result, _ = H.run_validated ~n:8 ~policy:(module S) instance in
      H.stat result.stats "spy_max_distinct" <= 4
      && H.stat result.stats "spy_replication_violations" = 0)

let prop_split_policies_valid =
  QCheck2.Test.make ~name:"split ablation: all shares produce valid schedules"
    ~count:20 H.gen_rate_limited (fun instance ->
      List.for_all
        (fun share ->
          let policy = Rrs_core.Lru_edf_core.with_share share in
          let _ = H.run_validated ~n:8 ~policy instance in
          true)
        [ 0.0; 0.25; 0.5; 0.75; 1.0 ])

let quick name f = Alcotest.test_case name `Quick f
let prop p = QCheck_alcotest.to_alcotest p

let suite =
  [
    ( "extensions.lower_bounds",
      [
        quick "refined bound example" test_refined_bound_example;
        quick "refined bound can drop" test_refined_bound_prefers_dropping;
        prop prop_refined_dominates_plain;
        prop prop_refined_below_opt;
      ] );
    ( "extensions.lru2",
      [
        quick "second timestamps" test_timestamp2;
        quick "defaults without wraps" test_timestamp2_fewer_than_two_wraps;
        quick "lru-2 fails Appendix A" test_lru_k_fails_appendix_a;
        prop prop_lru_k_invariants;
      ] );
    ( "extensions.ablation",
      [
        quick "split extremes equal pure policies" test_split_extremes_match_pure_policies;
        quick "only the combination survives both adversaries"
          test_only_combination_survives_both;
        prop prop_split_policies_valid;
      ] );
  ]
