(* Tests for the offline constructions: Punctualize (Lemmas 5.1-5.3) and
   Aggregate (Lemma 4.1). *)

module Instance = Rrs_sim.Instance
module Schedule = Rrs_sim.Schedule
module OS = Rrs_offline.Offline_schedule
module Punctualize = Rrs_offline.Punctualize
module Aggregate = Rrs_offline.Aggregate

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ---- classify ---- *)

let test_classify () =
  let c = Punctualize.classify in
  check_bool "same half-block" true (c ~bound:8 ~arrival:1 ~execution_round:3 = Early);
  check_bool "next half-block" true (c ~bound:8 ~arrival:1 ~execution_round:4 = Punctual);
  check_bool "second next" true (c ~bound:8 ~arrival:1 ~execution_round:8 = Late);
  check_bool "boundary arrival" true (c ~bound:4 ~arrival:4 ~execution_round:5 = Early);
  (match c ~bound:8 ~arrival:0 ~execution_round:12 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "beyond-deadline classification accepted");
  match c ~bound:1 ~arrival:0 ~execution_round:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "bound-1 classification accepted"

(* A jittered pow2 instance whose greedy schedule mixes early, punctual
   and late executions. *)
let jittered_instance ~seed =
  let base =
    Rrs_workload.Random_workloads.uniform ~seed ~colors:5 ~delta:3
      ~bound_log_range:(1, 4) ~horizon:64 ~load:0.7 ~rate_limited:true ()
  in
  let rng = Rrs_workload.Gen.create ~seed:(seed * 13) in
  Instance.make
    ~name:(Printf.sprintf "jittered-%d" seed)
    ~delta:3 ~bounds:base.Instance.bounds
    ~arrivals:
      (List.map
         (fun (round, request) -> (round + Rrs_workload.Gen.int rng 3, request))
         (Instance.nonempty_arrivals base))
    ()

let greedy_grid ~m instance =
  match Rrs_offline.Greedy_offline.run ~m instance with
  | Error e -> Alcotest.fail e
  | Ok { schedule; _ } -> OS.of_schedule schedule

(* ---- split ---- *)

let test_split_partitions () =
  let instance = jittered_instance ~seed:4 in
  let grid = greedy_grid ~m:2 instance in
  let early, punctual, late = Punctualize.split grid in
  check "split preserves executions" (OS.exec_count grid)
    (OS.exec_count early + OS.exec_count punctual + OS.exec_count late);
  check_bool "parts share the config timeline" true
    (early.OS.colors = grid.OS.colors && late.OS.colors = grid.OS.colors)

(* ---- punctualize_early on a handcrafted schedule ---- *)

let test_punctualize_early_handcrafted () =
  (* One color, bound 4 (half-blocks of 2): 2 jobs at round 0, both
     executed early (rounds 0-1) on one resource configured throughout. *)
  let instance =
    Instance.make ~delta:1 ~bounds:[| 4 |] ~arrivals:[ (0, [ (0, 2) ]) ] ()
  in
  let grid = OS.create ~instance ~m:1 ~speed:1 in
  OS.set_color_range grid ~resource:0 ~from_slot:0 ~to_slot:4 0;
  OS.set_exec grid ~resource:0 ~slot:0;
  OS.set_exec grid ~resource:0 ~slot:1;
  match Punctualize.punctualize_early grid with
  | Error e -> Alcotest.fail e
  | Ok out ->
      check "executes both" 2 (OS.exec_count out);
      (* Configured throughout both half-blocks: the jobs are special and
         shift to resource 0 at rounds 2-3 (punctual). *)
      check_bool "slot 2 on resource 0" true out.OS.execs.(0).(2);
      check_bool "slot 3 on resource 0" true out.OS.execs.(0).(3);
      let _, punctual, _ = Punctualize.split out in
      check "all punctual" 2 (OS.exec_count punctual)

let test_punctualize_early_nonspecial () =
  (* Same jobs, but the resource switches color at round 2: not special,
     so the jobs go to resources 1-2 in the next half-block. *)
  let instance =
    Instance.make ~delta:1 ~bounds:[| 4; 4 |]
      ~arrivals:[ (0, [ (0, 2); (1, 1) ]) ]
      ()
  in
  let grid = OS.create ~instance ~m:1 ~speed:1 in
  OS.set_color_range grid ~resource:0 ~from_slot:0 ~to_slot:2 0;
  OS.set_color_range grid ~resource:0 ~from_slot:2 ~to_slot:4 1;
  OS.set_exec grid ~resource:0 ~slot:0;
  OS.set_exec grid ~resource:0 ~slot:1;
  match Punctualize.punctualize_early grid with
  | Error e -> Alcotest.fail e
  | Ok out ->
      check "executes both" 2 (OS.exec_count out);
      check_bool "resource 0 unused" true
        (Array.for_all (fun used -> not used) out.OS.execs.(0));
      let _, punctual, _ = Punctualize.split out in
      check "all punctual" 2 (OS.exec_count punctual)

let test_punctualize_rejects_wrong_class () =
  let instance =
    Instance.make ~delta:1 ~bounds:[| 4 |] ~arrivals:[ (0, [ (0, 1) ]) ] ()
  in
  let grid = OS.create ~instance ~m:1 ~speed:1 in
  OS.set_color_range grid ~resource:0 ~from_slot:0 ~to_slot:4 0;
  OS.set_exec grid ~resource:0 ~slot:2 (* punctual, not early *);
  check_bool "early builder rejects punctual execution" true
    (Result.is_error (Punctualize.punctualize_early grid));
  check_bool "late builder rejects punctual execution" true
    (Result.is_error (Punctualize.punctualize_late grid))

let test_punctualize_rejects_multi_resource () =
  let instance =
    Instance.make ~delta:1 ~bounds:[| 4 |] ~arrivals:[ (0, [ (0, 1) ]) ] ()
  in
  let grid = OS.create ~instance ~m:2 ~speed:1 in
  check_bool "multi-resource rejected" true
    (Result.is_error (Punctualize.punctualize_early grid))

(* ---- Lemma 5.3 end-to-end property ---- *)

let prop_punctual_schedule =
  QCheck2.Test.make
    ~name:"Lemma 5.3: 7m-resource punctual schedule keeps all executions" ~count:30
    QCheck2.Gen.(int_range 1 500)
    (fun seed ->
      let instance = jittered_instance ~seed in
      let grid = greedy_grid ~m:2 instance in
      match Punctualize.punctual_schedule grid with
      | Error e -> QCheck2.Test.fail_report e
      | Ok out -> (
          match OS.to_schedule out with
          | Error e -> QCheck2.Test.fail_report e
          | Ok validated ->
              let early, punctual, late = Punctualize.split out in
              Schedule.validate validated = Ok ()
              && OS.exec_count out = OS.exec_count grid
              && out.OS.m = 7 * grid.OS.m
              && OS.exec_count early = 0
              && OS.exec_count late = 0
              && OS.exec_count punctual = OS.exec_count out))

let prop_punctual_cost_factor =
  QCheck2.Test.make
    ~name:"Lemma 5.3: reconfiguration cost stays within a constant factor"
    ~count:30
    QCheck2.Gen.(int_range 1 500)
    (fun seed ->
      let instance = jittered_instance ~seed in
      let grid = greedy_grid ~m:2 instance in
      match Punctualize.punctual_schedule grid with
      | Error e -> QCheck2.Test.fail_report e
      | Ok out ->
          (* The paper's constant is larger; we pin a loose empirical
             bound to catch regressions. *)
          OS.reconfig_count out <= (8 * OS.reconfig_count grid) + 8)

(* ---- Aggregate ---- *)

let test_aggregate_handcrafted () =
  (* One color, bound 2, 5 jobs in one batch (subcolors of sizes 2,2,1);
     T executes 4 of them on two monochromatic resources over rounds
     0-1. Aggregate must place two groups of 2 on output resources (k,0)
     under distinct subcolors. *)
  let instance =
    Instance.make ~delta:1 ~bounds:[| 2 |] ~arrivals:[ (0, [ (0, 5) ]) ] ()
  in
  let grid = OS.create ~instance ~m:2 ~speed:1 in
  List.iter
    (fun resource ->
      OS.set_color_range grid ~resource ~from_slot:0 ~to_slot:2 0;
      OS.set_exec grid ~resource ~slot:0;
      OS.set_exec grid ~resource ~slot:1)
    [ 0; 1 ];
  match Aggregate.run grid with
  | Error e -> Alcotest.fail e
  | Ok result -> (
      check "executes the same 4 jobs" 4 (OS.exec_count result.output);
      check "3m resources" 6 result.output.OS.m;
      check "three subcolors" 3 (Instance.num_colors result.inner_instance);
      match OS.to_schedule result.output with
      | Error e -> Alcotest.fail e
      | Ok validated -> check_bool "validates" true (Schedule.validate validated = Ok ()))

let test_aggregate_rejects_unbatched () =
  let instance =
    Instance.make ~delta:1 ~bounds:[| 2 |] ~arrivals:[ (1, [ (0, 1) ]) ] ()
  in
  let grid = OS.create ~instance ~m:1 ~speed:1 in
  check_bool "unbatched rejected" true (Result.is_error (Aggregate.run grid))

let prop_aggregate =
  QCheck2.Test.make
    ~name:"Lemma 4.1: Aggregate preserves executions on 3m resources, validates"
    ~count:25
    QCheck2.Gen.(int_range 1 500)
    (fun seed ->
      let instance =
        Rrs_workload.Random_workloads.bursty ~seed ~colors:6 ~delta:2
          ~bound_log_range:(0, 4) ~horizon:64 ~load:2.0 ~churn:0.4
          ~rate_limited:false ()
      in
      (* A thrashy online schedule as T stresses the multichromatic
         paths. *)
      let run =
        Rrs_sim.Engine.run ~record_events:true ~n:4
          ~policy:(module Rrs_core.Policy_edf) instance
      in
      let schedule = Schedule.of_run ~instance ~n:4 ~speed:1 run.ledger in
      let grid = OS.of_schedule schedule in
      match Aggregate.run grid with
      | Error e -> QCheck2.Test.fail_report e
      | Ok result -> (
          match OS.to_schedule result.output with
          | Error e -> QCheck2.Test.fail_report e
          | Ok validated ->
              Schedule.validate validated = Ok ()
              && OS.exec_count result.output = OS.exec_count grid
              && result.output.OS.m = 3 * grid.OS.m))

let prop_aggregate_cost_factor =
  QCheck2.Test.make
    ~name:"Lemma 4.1: Aggregate reconfiguration cost within a constant factor"
    ~count:25
    QCheck2.Gen.(int_range 1 500)
    (fun seed ->
      let instance =
        Rrs_workload.Random_workloads.bursty ~seed ~colors:6 ~delta:2
          ~bound_log_range:(0, 4) ~horizon:64 ~load:2.0 ~churn:0.4
          ~rate_limited:false ()
      in
      let run =
        Rrs_sim.Engine.run ~record_events:true ~n:4
          ~policy:(module Rrs_core.Policy_edf) instance
      in
      let schedule = Schedule.of_run ~instance ~n:4 ~speed:1 run.ledger in
      let grid = OS.of_schedule schedule in
      match Aggregate.run grid with
      | Error e -> QCheck2.Test.fail_report e
      | Ok result ->
          OS.reconfig_count result.output <= (6 * OS.reconfig_count grid) + 12)

let quick name f = Alcotest.test_case name `Quick f
let prop p = QCheck_alcotest.to_alcotest p

let suite =
  [
    ( "offline.punctualize",
      [
        quick "classification" test_classify;
        quick "split partitions executions" test_split_partitions;
        quick "special jobs shift on resource 0" test_punctualize_early_handcrafted;
        quick "nonspecial jobs pack on resources 1-2" test_punctualize_early_nonspecial;
        quick "wrong class rejected" test_punctualize_rejects_wrong_class;
        quick "multi-resource rejected" test_punctualize_rejects_multi_resource;
        prop prop_punctual_schedule;
        prop prop_punctual_cost_factor;
      ] );
    ( "offline.aggregate",
      [
        quick "handcrafted batch" test_aggregate_handcrafted;
        quick "unbatched rejected" test_aggregate_rejects_unbatched;
        prop prop_aggregate;
        prop prop_aggregate_cost_factor;
      ] );
  ]
