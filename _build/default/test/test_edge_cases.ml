(* Edge cases across the stack: tiny resource counts, empty instances,
   degenerate parameters. *)

module Instance = Rrs_sim.Instance
module Engine = Rrs_sim.Engine
module Ledger = Rrs_sim.Ledger
module Schedule = Rrs_sim.Schedule

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let empty = lazy (Instance.make ~delta:3 ~bounds:[| 2; 4 |] ~arrivals:[] ())

let test_empty_instance_everywhere () =
  let i = Lazy.force empty in
  check "total jobs" 0 (Instance.total_jobs i);
  List.iter
    (fun (name, policy) ->
      check (name ^ " cost 0") 0 (Engine.cost ~n:4 ~policy i))
    Rrs_stats.Experiment.standard_policies;
  (match Rrs_core.Solver.solve ~n:4 i with
  | Ok outcome -> check "solver cost 0" 0 outcome.cost
  | Error e -> Alcotest.fail e);
  check "par-edf drops 0" 0 (Rrs_core.Par_edf.drop_cost ~m:1 i);
  check "lower bound 0" 0 (Rrs_offline.Lower_bounds.combined ~m:1 i);
  check "greedy 0" 0 (Rrs_offline.Greedy_offline.cost ~m:1 i)

let test_tiny_n_dlru_edf () =
  let i = Instance.make ~delta:1 ~bounds:[| 2 |] ~arrivals:[ (0, [ (0, 2) ]) ] () in
  (* n = 1: zero distinct slots — the policy caches nothing and drops
     everything, but must stay well-formed. *)
  let result = Engine.run ~n:1 ~policy:(module Rrs_core.Policy_lru_edf) i in
  check "drops everything at n=1" 2 (Ledger.drop_count result.ledger);
  check "no reconfigs at n=1" 0 (Ledger.reconfig_count result.ledger);
  (* n = 2: one distinct color slot (the LRU half wins the rounding) —
     enough to serve a single-color instance. *)
  let result = Engine.run ~n:2 ~policy:(module Rrs_core.Policy_lru_edf) i in
  check "serves at n=2" 2 (Ledger.exec_count result.ledger);
  (* n = 4: 1 LRU + 1 EDF color slot. *)
  let result = Engine.run ~n:4 ~policy:(module Rrs_core.Policy_lru_edf) i in
  check "serves at n=4" 2 (Ledger.exec_count result.ledger)

let test_n_one_policies () =
  (* Even n=1 (capacity zero after halving) must not crash. *)
  let i = Instance.make ~delta:1 ~bounds:[| 2 |] ~arrivals:[ (0, [ (0, 1) ]) ] () in
  List.iter
    (fun (_, policy) -> ignore (Engine.cost ~n:1 ~policy i))
    Rrs_stats.Experiment.standard_policies

let test_delta_one () =
  (* Reconfiguration as cheap as a drop: eligibility after every job. *)
  let i =
    Instance.make ~delta:1 ~bounds:[| 2; 2 |]
      ~arrivals:[ (0, [ (0, 1); (1, 1) ]); (2, [ (0, 1) ]) ]
      ()
  in
  let result = Engine.run ~n:8 ~policy:(module Rrs_core.Policy_lru_edf) i in
  check "everything served" 3 (Ledger.exec_count result.ledger)

let test_single_round_bound_one () =
  (* Bound 1: the job must run in its arrival round or drop at the next. *)
  let i = Instance.make ~delta:1 ~bounds:[| 1 |] ~arrivals:[ (0, [ (0, 1) ]) ] () in
  let result = Engine.run ~n:4 ~policy:(module Rrs_core.Policy_lru_edf) i in
  check "job resolved" 1
    (Ledger.exec_count result.ledger + Ledger.drop_count result.ledger);
  check "opt" 1 (Option.get (Rrs_offline.Brute_force.opt_cost ~m:1 i))

let test_huge_delta () =
  (* Delta far above the job count: everyone drops everything, and that
     is optimal. *)
  let i =
    Instance.make ~delta:1000 ~bounds:[| 4 |] ~arrivals:[ (0, [ (0, 3) ]) ] ()
  in
  check "opt drops all" 3 (Option.get (Rrs_offline.Brute_force.opt_cost ~m:2 i));
  let cost = Engine.cost ~n:8 ~policy:(module Rrs_core.Policy_lru_edf) i in
  check "dlru-edf matches" 3 cost

let test_varbatch_on_already_batched () =
  (* VarBatch on an already-batched power-of-two instance still works
     (it re-batches at half the bound). *)
  let i = Instance.make ~delta:2 ~bounds:[| 4 |] ~arrivals:[ (0, [ (0, 3) ]) ] () in
  match Rrs_core.Var_batch.run ~n:8 i with
  | Error e -> Alcotest.fail e
  | Ok result ->
      check_bool "valid" true (Schedule.validate result.schedule = Ok ());
      check "half bound" 2 result.batched_instance.Instance.bounds.(0)

let test_distribute_empty_request_rounds () =
  (* Batched instance with sparse, far-apart arrivals. *)
  let i =
    Instance.make ~delta:2 ~bounds:[| 8 |]
      ~arrivals:[ (0, [ (0, 20) ]); (64, [ (0, 20) ]) ]
      ()
  in
  match Rrs_core.Distribute.run ~n:8 i with
  | Error e -> Alcotest.fail e
  | Ok result ->
      check_bool "valid" true (Schedule.validate result.schedule = Ok ());
      check "jobs conserved" 40
        (Schedule.exec_count result.schedule + Schedule.drop_count result.schedule)

let test_static_with_zero_jobs () =
  match Rrs_offline.Static_offline.run ~m:2 (Lazy.force empty) with
  | Error e -> Alcotest.fail e
  | Ok result ->
      check "cost 0" 0 result.cost;
      Alcotest.(check (list (pair int int))) "no allocation" [] result.allocation

let test_landlord_all_equal_costs () =
  (* With unit costs Landlord behaves like a plain demand-counter scheme
     and must stay feasible. *)
  let i =
    Rrs_workload.Random_workloads.uniform ~seed:4 ~colors:6 ~delta:4
      ~bound_log_range:(2, 2) ~horizon:64 ~load:0.7 ~rate_limited:true ()
  in
  let w =
    match
      Rrs_uniform.Weighted.make ~instance:i ~drop_costs:(Array.make 6 1)
    with
    | Ok w -> w
    | Error e -> Alcotest.fail e
  in
  let cost =
    Rrs_uniform.Weighted.run_policy ~n:8
      ~policy:(Rrs_uniform.Landlord.policy ~drop_costs:w.drop_costs)
      w
  in
  check_bool "finite cost" true (cost >= 0 && cost <= Instance.total_jobs i + 1000)

let quick name f = Alcotest.test_case name `Quick f

let suite =
  [
    ( "edge_cases",
      [
        quick "empty instance everywhere" test_empty_instance_everywhere;
        quick "tiny n for dlru-edf" test_tiny_n_dlru_edf;
        quick "n = 1 does not crash" test_n_one_policies;
        quick "delta = 1" test_delta_one;
        quick "bound = 1" test_single_round_bound_one;
        quick "huge delta" test_huge_delta;
        quick "varbatch on batched input" test_varbatch_on_already_batched;
        quick "distribute with sparse batches" test_distribute_empty_request_rounds;
        quick "static with no jobs" test_static_with_zero_jobs;
        quick "landlord with unit costs" test_landlord_all_equal_costs;
      ] );
  ]
