(* Tests for the instance-manipulation utilities and the proof-level
   splits they enable. *)

module Instance = Rrs_sim.Instance
module Ops = Rrs_sim.Instance_ops
module H = Test_helpers

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let base =
  lazy
    (Instance.make ~name:"ops-base" ~delta:3 ~bounds:[| 2; 4; 4 |]
       ~arrivals:
         [ (0, [ (0, 2); (1, 5) ]); (2, [ (0, 1) ]); (4, [ (1, 3); (2, 1) ]) ]
       ())

let test_restrict () =
  let i = Lazy.force base in
  let only_1 = Ops.restrict_colors i (fun c -> c = 1) in
  check "kept jobs" 8 (Instance.total_jobs only_1);
  check "same color universe" 3 (Instance.num_colors only_1);
  check "color 0 removed" 0 (Instance.jobs_of_color only_1 0)

let test_split_by_volume () =
  let i = Lazy.force base in
  (* totals: color 0 -> 3, color 1 -> 8, color 2 -> 1; threshold delta=3 *)
  let alpha, beta = Ops.split_by_volume i ~threshold:3 in
  check "alpha: small colors only" 1 (Instance.total_jobs alpha);
  check "beta: large colors" 11 (Instance.total_jobs beta);
  check "alpha+beta = sigma" (Instance.total_jobs i)
    (Instance.total_jobs alpha + Instance.total_jobs beta)

let test_scale_load () =
  let i = Lazy.force base in
  let halved = Ops.scale_load i ~numerator:1 ~denominator:2 in
  (* 2->1, 5->2, 1->1(min), 3->1, 1->1(min) = 6 *)
  check "halved jobs" 6 (Instance.total_jobs halved);
  let doubled = Ops.scale_load i ~numerator:2 ~denominator:1 in
  check "doubled jobs" 24 (Instance.total_jobs doubled);
  let zero = Ops.scale_load i ~numerator:0 ~denominator:1 in
  check "zeroed" 0 (Instance.total_jobs zero)

let test_shift_and_truncate () =
  let i = Lazy.force base in
  let shifted = Ops.shift i ~rounds:4 in
  check "jobs preserved" (Instance.total_jobs i) (Instance.total_jobs shifted);
  check_bool "first arrival moved" true
    (match Instance.nonempty_arrivals shifted with
    | (4, _) :: _ -> true
    | _ -> false);
  let truncated = Ops.truncate i ~horizon:3 in
  check "jobs before round 3 only" 8 (Instance.total_jobs truncated)

let test_merge () =
  let i = Lazy.force base in
  let merged = Ops.merge i i in
  check "doubled by merge" (2 * Instance.total_jobs i) (Instance.total_jobs merged);
  let other = Instance.make ~delta:4 ~bounds:[| 2; 4; 4 |] ~arrivals:[] () in
  match Ops.merge i other with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "delta mismatch accepted"

(* The Theorem 1 proof shape: the cost of ΔLRU-EDF on the small-color
   part alpha alone is exactly its job count (Lemma 3.1 situation), and
   restriction never increases Par-EDF drops (Lemma 3.6 analogue). *)
let prop_restriction_never_increases_drops =
  QCheck2.Test.make
    ~name:"ops: Par-EDF drops on a restriction <= on the whole input" ~count:50
    H.gen_rate_limited (fun instance ->
      let even = Rrs_sim.Instance_ops.restrict_colors instance (fun c -> c mod 2 = 0) in
      Rrs_core.Par_edf.drop_cost ~m:2 even
      <= Rrs_core.Par_edf.drop_cost ~m:2 instance)

let prop_split_preserves_volume =
  QCheck2.Test.make ~name:"ops: split_by_volume partitions the jobs" ~count:50
    H.gen_batched (fun instance ->
      let threshold = instance.Instance.delta in
      let alpha, beta = Ops.split_by_volume instance ~threshold in
      Instance.total_jobs alpha + Instance.total_jobs beta
      = Instance.total_jobs instance
      (* alpha's colors each hold < threshold jobs *)
      && List.for_all
           (fun color -> Instance.jobs_of_color alpha color < threshold)
           (List.init (Instance.num_colors alpha) Fun.id))

let quick name f = Alcotest.test_case name `Quick f
let prop p = QCheck_alcotest.to_alcotest p

let suite =
  [
    ( "sim.instance_ops",
      [
        quick "restrict_colors" test_restrict;
        quick "split_by_volume (Theorem 1 split)" test_split_by_volume;
        quick "scale_load" test_scale_load;
        quick "shift and truncate" test_shift_and_truncate;
        quick "merge" test_merge;
        prop prop_restriction_never_increases_drops;
        prop prop_split_preserves_volume;
      ] );
  ]
