(* End-to-end integration tests: full pipelines on scenario workloads,
   experiment harness rows, augmentation sweeps, trace file round trips. *)

module Instance = Rrs_sim.Instance
module Schedule = Rrs_sim.Schedule
module Experiment = Rrs_stats.Experiment
module Summary = Rrs_stats.Summary
module Table = Rrs_stats.Table

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_full_run_on_datacenter () =
  let i =
    Rrs_workload.Scenarios.datacenter ~seed:5 ~services:9 ~delta:4 ~phases:2
      ~phase_length:64 ()
  in
  let reference = Experiment.reference ~m:2 i in
  check_bool "reference has a lower bound" true (reference.lower_bound >= 0);
  (match reference.greedy_upper with
  | Some upper -> check_bool "greedy >= lb" true (upper >= reference.lower_bound)
  | None -> Alcotest.fail "greedy failed");
  match Experiment.run_solver ~n:16 ~reference i with
  | Error e -> Alcotest.fail e
  | Ok row ->
      check_bool "cost accounted" true
        (row.cost = (4 * row.reconfig_count) + row.drop_count);
      check_bool "ratio computed" true (row.ratio >= 0.0)

let test_full_run_on_router () =
  let i =
    Rrs_workload.Scenarios.router ~seed:5 ~classes:8 ~delta:4 ~horizon:256
      ~utilization:0.6 ~n_ref:4 ()
  in
  let reference = Experiment.reference ~m:4 i in
  List.iter
    (fun (name, policy) ->
      let row = Experiment.run_policy ~n:32 ~reference ~policy i in
      check_bool (name ^ " ran") true (row.cost >= 0))
    Experiment.standard_policies

let test_augmentation_sweep_monotone_tendency () =
  (* More resources should never make the solver dramatically worse; we
     check the endpoints: n = 8m is at most the n = m cost plus slack. *)
  let i =
    Rrs_workload.Random_workloads.uniform ~seed:21 ~colors:10 ~delta:4
      ~bound_log_range:(1, 4) ~horizon:256 ~load:0.8 ~rate_limited:true ()
  in
  let rows = Experiment.sweep_augmentation ~m:2 ~factors:[ 1; 2; 4; 8 ] i in
  check "four rows" 4 (List.length rows);
  let cost factor =
    match List.assoc factor rows with
    | Ok (row : Experiment.row) -> row.cost
    | Error e -> Alcotest.fail e
  in
  check_bool "8x resources help vs 1x" true (cost 8 <= cost 1)

let test_experiment_reference_exact_on_tiny () =
  let i =
    Instance.make ~delta:2 ~bounds:[| 2; 2 |] ~arrivals:[ (0, [ (0, 2); (1, 2) ]) ] ()
  in
  let reference = Experiment.reference ~exact_budget:100_000 ~m:1 i in
  (match reference.exact with
  | Some opt -> check_bool "exact within bounds" true (opt >= reference.lower_bound)
  | None -> Alcotest.fail "exact expected");
  check "denominator uses exact" (Option.get reference.exact)
    (Experiment.denominator reference)

let test_trace_file_roundtrip () =
  let i =
    Rrs_workload.Random_workloads.uniform ~seed:13 ~colors:4 ~delta:3
      ~bound_log_range:(0, 3) ~horizon:64 ~load:0.7 ~rate_limited:true ()
  in
  let path = Filename.temp_file "rrs_test" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Rrs_sim.Trace.save i ~path;
      match Rrs_sim.Trace.load ~path with
      | Error e -> Alcotest.fail e
      | Ok i' ->
          check "jobs preserved" (Instance.total_jobs i) (Instance.total_jobs i');
          (* Solving the reloaded instance gives identical cost. *)
          let cost inst =
            match Rrs_core.Solver.solve ~n:8 inst with
            | Ok o -> o.cost
            | Error e -> Alcotest.fail e
          in
          check "same cost" (cost i) (cost i'))

let test_summary_and_table () =
  let s = Summary.of_ints [ 1; 2; 3; 4 ] in
  check "count" 4 s.count;
  check_bool "mean" true (abs_float (s.mean -. 2.5) < 1e-9);
  check_bool "p50" true
    (abs_float (Summary.percentile 50.0 [ 1.0; 2.0; 3.0; 4.0 ] -. 2.0) < 1e-9);
  let t = Table.create ~title:"demo" ~columns:[ "a"; "b" ] in
  Table.add_row t [ "x"; Table.cell_int 12 ];
  Table.add_row t [ "yy"; Table.cell_ratio 1.5 ];
  let rendered = Table.to_string t in
  check_bool "renders header" true
    (String.length rendered > 0
    && String.sub rendered 0 7 = "== demo");
  match Table.add_row t [ "only-one-cell" ] with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "bad row accepted"

let test_solver_stats_surface_epochs () =
  let i =
    Rrs_workload.Random_workloads.uniform ~seed:2 ~colors:6 ~delta:3
      ~bound_log_range:(0, 3) ~horizon:64 ~load:0.8 ~rate_limited:true ()
  in
  match Rrs_core.Solver.solve ~n:8 i with
  | Error e -> Alcotest.fail e
  | Ok outcome ->
      check_bool "epoch stat exposed" true
        (List.mem_assoc "epochs" outcome.stats);
      check_bool "drop split exposed" true
        (List.mem_assoc "eligible_drops" outcome.stats)

let test_render_timeline () =
  let i =
    Instance.make ~delta:1 ~bounds:[| 2; 2 |]
      ~arrivals:[ (0, [ (0, 2); (1, 2) ]) ]
      ()
  in
  match Rrs_core.Solver.solve ~n:4 i with
  | Error e -> Alcotest.fail e
  | Ok outcome ->
      let rendered = Rrs_stats.Render.timeline outcome.schedule in
      let lines = String.split_on_char '\n' rendered in
      (* header + tick row + one row per resource (+ trailing empty) *)
      check "line count" (2 + 4 + 1) (List.length lines);
      check_bool "mentions resource 0" true
        (List.exists (fun l -> String.length l > 2 && String.sub l 0 2 = "r0") lines);
      check_bool "contains color letters" true
        (String.exists (fun c -> c = 'a' || c = 'b') rendered)

let test_render_sampling () =
  let i =
    Rrs_workload.Random_workloads.uniform ~seed:1 ~colors:4 ~delta:2
      ~bound_log_range:(1, 3) ~horizon:1000 ~load:0.5 ~rate_limited:true ()
  in
  match Rrs_core.Solver.solve ~n:4 i with
  | Error e -> Alcotest.fail e
  | Ok outcome ->
      let rendered = Rrs_stats.Render.timeline ~max_width:50 outcome.schedule in
      check_bool "notes sampling stride" true
        (let re = "sampled every" in
         let rec contains i =
           i + String.length re <= String.length rendered
           && (String.sub rendered i (String.length re) = re || contains (i + 1))
         in
         contains 0);
      let lines = String.split_on_char '\n' rendered in
      check_bool "resource rows within width" true
        (List.for_all
           (fun l -> String.length l <= 60)
           (List.filter
              (fun l ->
                String.length l > 1 && l.[0] = 'r' && l.[1] >= '0' && l.[1] <= '9')
              lines))

let test_table_csv () =
  let t = Table.create ~title:"csv" ~columns:[ "name"; "value" ] in
  Table.add_row t [ "plain"; "1" ];
  Table.add_row t [ "with,comma"; "quote\"inside" ];
  Alcotest.(check string)
    "csv output" "name,value\nplain,1\n\"with,comma\",\"quote\"\"inside\"\n"
    (Table.to_csv t)

let quick name f = Alcotest.test_case name `Quick f

let suite =
  [
    ( "integration",
      [
        quick "datacenter end-to-end" test_full_run_on_datacenter;
        quick "router with all policies" test_full_run_on_router;
        quick "augmentation sweep" test_augmentation_sweep_monotone_tendency;
        quick "exact reference on tiny instance" test_experiment_reference_exact_on_tiny;
        quick "trace file roundtrip" test_trace_file_roundtrip;
        quick "summary and table" test_summary_and_table;
        quick "solver surfaces instrumentation" test_solver_stats_surface_epochs;
        quick "timeline rendering" test_render_timeline;
        quick "timeline sampling" test_render_sampling;
        quick "csv export" test_table_csv;
      ] );
  ]
