(* Empirical checks of the paper's formal claims (Sections 3.2-3.4).
   These are the load-bearing tests: each lemma/theorem becomes a
   property over randomized rate-limited instances. *)

module Instance = Rrs_sim.Instance
module Engine = Rrs_sim.Engine
module Ledger = Rrs_sim.Ledger
module Par_edf = Rrs_core.Par_edf
module Instrument = Rrs_core.Instrument
module H = Test_helpers

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let run_lru_edf ~n instance =
  Engine.run ~record_events:false ~n ~policy:(module Rrs_core.Policy_lru_edf)
    instance

(* Lemma 3.1: on inputs where every color has fewer than Delta jobs,
   ΔLRU-EDF never configures anything and therefore costs exactly the
   job count (all ineligible drops); OFF can never do better than
   min(Delta, N_l) per color, which equals N_l here. *)
let prop_lemma_3_1 =
  QCheck2.Test.make ~name:"Lemma 3.1: all-small colors -> cost <= OFF" ~count:50
    QCheck2.Gen.(
      let* delta = int_range 3 8 in
      let* colors = int_range 1 6 in
      let* seed = int_bound 10_000 in
      let rng = Rrs_workload.Gen.create ~seed in
      let bounds =
        Array.init colors (fun _ -> Rrs_workload.Gen.pow2_range rng ~lo:1 ~hi:4)
      in
      (* strictly fewer than delta jobs per color, batched *)
      let arrivals =
        List.concat
          (List.init colors (fun c ->
               let jobs = Rrs_workload.Gen.int_range rng ~lo:1 ~hi:(delta - 1) in
               let batches = Rrs_workload.Gen.int_range rng ~lo:1 ~hi:jobs in
               List.init batches (fun b ->
                   (b * bounds.(c), [ (c, max 1 (jobs / batches)) ]))))
      in
      return (Instance.make ~delta ~bounds ~arrivals ()))
    (fun instance ->
      let result = run_lru_edf ~n:8 instance in
      Ledger.reconfig_count result.ledger = 0
      && Ledger.drop_count result.ledger = Instance.total_jobs instance
      && Ledger.total_cost result.ledger
         <= Rrs_offline.Lower_bounds.per_color instance)

(* Lemma 3.2 (via 3.7/3.10/Cor 3.1): the eligible drop cost of ΔLRU-EDF
   with n = 8m resources is at most the drop cost of Par-EDF with m
   resources (itself <= DropCost(OFF_m)). *)
let prop_lemma_3_2 =
  QCheck2.Test.make
    ~name:"Lemma 3.2: eligible drops of dlru-edf(8m) <= drops of par-edf(m)"
    ~count:60 H.gen_rate_limited (fun instance ->
      let m = 1 in
      let result = run_lru_edf ~n:(8 * m) instance in
      let eligible = Instrument.eligible_drops result.stats in
      eligible <= Par_edf.drop_cost ~m instance)

(* Lemma 3.10 chain inner step, Corollary 3.1:
   drops(DS-Seq-EDF with m) <= drops(Par-EDF with m). *)
let prop_corollary_3_1 =
  QCheck2.Test.make ~name:"Corollary 3.1: drops(ds-seq-edf m) <= drops(par-edf m)"
    ~count:60 H.gen_rate_limited (fun instance ->
      let m = 2 in
      let ds =
        Engine.run ~speed:2 ~record_events:false ~n:m
          ~policy:(module Rrs_core.Seq_edf) instance
      in
      Ledger.drop_count ds.ledger <= Par_edf.drop_cost ~m instance)

(* Lemma 3.3: reconfiguration cost <= 4 * numEpochs * Delta. *)
let prop_lemma_3_3 =
  QCheck2.Test.make ~name:"Lemma 3.3: reconfig cost <= 4 * epochs * delta"
    ~count:80 H.gen_rate_limited (fun instance ->
      let result = run_lru_edf ~n:8 instance in
      let run_ledger = result.ledger in
      Ledger.reconfig_cost run_ledger
      <= Instrument.lemma_3_3_bound ~delta:instance.Instance.delta result.stats)

(* Lemma 3.4: ineligible drop cost <= numEpochs * Delta. *)
let prop_lemma_3_4 =
  QCheck2.Test.make ~name:"Lemma 3.4: ineligible drops <= epochs * delta"
    ~count:80 H.gen_rate_limited (fun instance ->
      let result = run_lru_edf ~n:8 instance in
      Instrument.ineligible_drops result.stats
      <= Instrument.lemma_3_4_bound ~delta:instance.Instance.delta result.stats)

(* Drop accounting: eligible + ineligible drops = total drops. *)
let prop_drop_partition =
  QCheck2.Test.make ~name:"drops partition into eligible + ineligible" ~count:80
    H.gen_rate_limited (fun instance ->
      let result = run_lru_edf ~n:8 instance in
      Instrument.eligible_drops result.stats
      + Instrument.ineligible_drops result.stats
      = Ledger.drop_count result.ledger)

(* Theorem 1 regression guard: on tiny rate-limited instances where the
   exact OPT is computable, the cost of ΔLRU-EDF with 8m resources stays
   within a generous constant of OPT with m = 1. The paper proves O(1);
   we pin a loose empirical constant to catch gross regressions. *)
let prop_theorem_1_ratio_guard =
  QCheck2.Test.make ~name:"Theorem 1 guard: cost(dlru-edf 8m) <= 12 * OPT_m + 4*delta"
    ~count:40 H.gen_tiny (fun instance ->
      match Rrs_offline.Brute_force.opt_cost ~max_states:400_000 ~m:1 instance with
      | None -> QCheck2.assume_fail ()
      | Some opt ->
          let cost = Ledger.total_cost (run_lru_edf ~n:8 instance).ledger in
          cost <= (12 * opt) + (4 * instance.Instance.delta))

(* Super-epoch counting (Section 3.4) sanity: with watermark w, the
   number of super-epochs is at most ceil(updates / w) + 1 and at least
   updates-distinct-colors / w-ish; check the structural bounds. *)
let prop_super_epochs =
  QCheck2.Test.make ~name:"super-epochs: between updates/w and updates + 1"
    ~count:60
    QCheck2.Gen.(
      pair (int_range 1 6) (list (pair (int_bound 100) (int_bound 8))))
    (fun (watermark, events) ->
      let count = Instrument.super_epochs ~watermark events in
      let n = List.length events in
      count <= n + 1
      && (n = 0 || count >= 1)
      && count >= n / (watermark * 101)
      (* trivially true lower bound; main check is monotonicity: *)
      && Instrument.super_epochs ~watermark:(watermark + 1) events <= count)

let test_super_epochs_exact () =
  (* watermark 2: colors 1,2 complete one super-epoch; 3 starts another. *)
  let events = [ (0, 1); (1, 1); (2, 2); (3, 3) ] in
  check "complete + partial" 2 (Rrs_core.Instrument.super_epochs ~watermark:2 events);
  check "watermark 1: every update closes one" 4
    (Rrs_core.Instrument.super_epochs ~watermark:1 events);
  check "empty" 0 (Rrs_core.Instrument.super_epochs ~watermark:3 [])

(* Theorem 2/3 feasibility + augmentation sanity on the adversaries:
   the full pipelines stay within a small factor of the analytic OFF on
   the paper's own hard inputs. *)
let test_pipelines_on_adversaries () =
  let a = Rrs_workload.Adversary.lru_killer ~n:8 ~delta:2 ~j:5 ~k:9 in
  (match Rrs_core.Solver.solve ~n:8 a.instance with
  | Error e -> Alcotest.fail e
  | Ok outcome ->
      check_bool "lru-killer: solver within 4x of off" true
        (outcome.cost <= 4 * a.off_cost));
  let b = Rrs_workload.Adversary.edf_killer ~n:8 ~delta:10 ~j:5 ~k:7 in
  match Rrs_core.Solver.solve ~n:8 b.instance with
  | Error e -> Alcotest.fail e
  | Ok outcome ->
      check_bool "edf-killer: solver within 6x of off" true
        (outcome.cost <= 6 * b.off_cost)

(* Lemma 3.10's containment gives a stronger empirical statement: total
   drops of dlru-edf(8m) minus its ineligible drops never exceed
   par-edf(m) drops; additionally with full augmentation the total cost
   stays below the idle policy's (drop-everything) cost. *)
let prop_better_than_dropping_everything =
  QCheck2.Test.make ~name:"dlru-edf never worse than dropping everything + 1 config"
    ~count:60 H.gen_rate_limited (fun instance ->
      let cost = Ledger.total_cost (run_lru_edf ~n:8 instance).ledger in
      (* Dropping everything costs total_jobs; allow the wrap slack. *)
      cost
      <= Instance.total_jobs instance
         + (4 * instance.Instance.delta * Instrument.num_epochs
              (run_lru_edf ~n:8 instance).stats))

(* Corollary 3.2: at most three epochs of any color overlap one
   super-epoch, so numEpochs <= 3 * colors * numSuperEpochs (with the
   trailing in-progress super-epoch counted as one). *)
let prop_corollary_3_2 =
  QCheck2.Test.make
    ~name:"Corollary 3.2: epochs <= 3 * colors * super-epochs" ~count:60
    H.gen_rate_limited (fun instance ->
      let result = run_lru_edf ~n:8 instance in
      let epochs = Instrument.num_epochs result.stats in
      let supers = max (Instrument.stat result.stats "super_epochs") 1 in
      epochs <= 3 * Instance.num_colors instance * supers)

let quick name f = Alcotest.test_case name `Quick f
let prop p = QCheck_alcotest.to_alcotest p

let suite =
  [
    ( "paper.lemmas",
      [
        prop prop_lemma_3_1;
        prop prop_lemma_3_2;
        prop prop_corollary_3_1;
        prop prop_lemma_3_3;
        prop prop_lemma_3_4;
        prop prop_drop_partition;
        prop prop_theorem_1_ratio_guard;
        prop prop_super_epochs;
        prop prop_corollary_3_2;
        quick "super-epoch exact counts" test_super_epochs_exact;
        quick "pipelines on paper adversaries" test_pipelines_on_adversaries;
        prop prop_better_than_dropping_everything;
      ] );
  ]
