(* Tests for the QoS metrics module. *)

module Instance = Rrs_sim.Instance
module Engine = Rrs_sim.Engine
module Schedule = Rrs_sim.Schedule
module Metrics = Rrs_stats.Metrics
module H = Test_helpers

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let solve ~n i =
  match Rrs_core.Solver.solve ~n i with
  | Ok outcome -> outcome.Rrs_core.Solver.schedule
  | Error e -> Alcotest.fail e

let test_metrics_handcrafted () =
  (* Color 0: 2 jobs bound 2 at round 0, both served (latencies 0, 1).
     Color 1: 1 job bound 4, never served with delta too high... use a
     pin-free exact case: n=4 so everything runs. *)
  let i =
    Instance.make ~delta:1 ~bounds:[| 2; 4 |]
      ~arrivals:[ (0, [ (0, 2); (1, 1) ]) ]
      ()
  in
  let metrics = Metrics.of_schedule (solve ~n:8 i) in
  check "executed" 3 metrics.executed;
  check "dropped" 0 metrics.dropped;
  check "colors with traffic" 2 (List.length metrics.by_color);
  let c0 = List.find (fun (r : Metrics.per_color) -> r.color = 0) metrics.by_color in
  check "c0 offered" 2 c0.offered;
  check_bool "c0 latency within bound" true (c0.max_latency < 2);
  check_bool "mean latency sane" true
    (metrics.mean_latency >= 0.0 && metrics.mean_latency < 4.0)

let test_metrics_all_dropped () =
  (* Delta too expensive: everything drops; loss 100%, latencies 0. *)
  let i =
    Instance.make ~delta:100 ~bounds:[| 2 |] ~arrivals:[ (0, [ (0, 3) ]) ] ()
  in
  let metrics = Metrics.of_schedule (solve ~n:4 i) in
  check "executed" 0 metrics.executed;
  check "dropped" 3 metrics.dropped;
  check "p99 of nothing" 0 metrics.p99_latency;
  match metrics.by_color with
  | [ row ] -> check_bool "loss 100%" true (row.loss_rate = 1.0)
  | _ -> Alcotest.fail "expected one traffic color"

let prop_metrics_consistent =
  QCheck2.Test.make ~name:"metrics: totals match the ledger; latencies in bounds"
    ~count:40 H.gen_rate_limited (fun instance ->
      let schedule = solve ~n:8 instance in
      let metrics = Metrics.of_schedule schedule in
      metrics.executed = Schedule.exec_count schedule
      && metrics.dropped = Schedule.drop_count schedule
      && metrics.executed + metrics.dropped = Instance.total_jobs instance
      && List.for_all
           (fun (row : Metrics.per_color) ->
             row.offered = row.executed + row.dropped
             && row.max_latency < row.bound
             && row.loss_rate >= 0.0
             && row.loss_rate <= 1.0)
           metrics.by_color)

let quick name f = Alcotest.test_case name `Quick f
let prop p = QCheck_alcotest.to_alcotest p

let suite =
  [
    ( "stats.metrics",
      [
        quick "handcrafted profile" test_metrics_handcrafted;
        quick "all-dropped profile" test_metrics_all_dropped;
        prop prop_metrics_consistent;
      ] );
  ]
