(* Offline-layer tests: brute-force OPT on instances with hand-computable
   optima, lower-bound validity, greedy heuristic sanity, offline
   schedule grids. *)

module Instance = Rrs_sim.Instance
module Schedule = Rrs_sim.Schedule
module Brute_force = Rrs_offline.Brute_force
module Lower_bounds = Rrs_offline.Lower_bounds
module Greedy_offline = Rrs_offline.Greedy_offline
module Offline_schedule = Rrs_offline.Offline_schedule
module H = Test_helpers

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let opt ~m i =
  match Brute_force.opt_cost ~m i with
  | Some c -> c
  | None -> Alcotest.fail "brute force exceeded budget"

(* ---- Hand-computed optima ---- *)

let test_opt_single_color () =
  (* 2 jobs, bound 2, delta 1, one resource: configure once, run both.
     OPT = 1. *)
  let i = Instance.make ~delta:1 ~bounds:[| 2 |] ~arrivals:[ (0, [ (0, 2) ]) ] () in
  check "opt" 1 (opt ~m:1 i)

let test_opt_drop_cheaper_than_reconfig () =
  (* 1 job, delta 5: dropping (cost 1) beats configuring (cost 5). *)
  let i = Instance.make ~delta:5 ~bounds:[| 2 |] ~arrivals:[ (0, [ (0, 1) ]) ] () in
  check "opt drops" 1 (opt ~m:1 i)

let test_opt_reconfig_cheaper_than_drops () =
  (* 4 jobs, delta 2: configuring (2) beats dropping (4). *)
  let i = Instance.make ~delta:2 ~bounds:[| 4 |] ~arrivals:[ (0, [ (0, 4) ]) ] () in
  check "opt configures" 2 (opt ~m:1 i)

let test_opt_two_colors_one_resource () =
  (* Two colors, each 2 jobs bound 2 arriving together, delta 1, m = 1:
     serve one color (cost 1 reconfig), drop the other (2 drops) = 3; or
     serve one job of each (2 reconfigs + 2 drops) = 4. OPT = 3. *)
  let i =
    Instance.make ~delta:1 ~bounds:[| 2; 2 |]
      ~arrivals:[ (0, [ (0, 2); (1, 2) ]) ]
      ()
  in
  check "opt" 3 (opt ~m:1 i)

let test_opt_two_resources_no_conflict () =
  (* Same workload with 2 resources: serve both colors fully = 2. *)
  let i =
    Instance.make ~delta:1 ~bounds:[| 2; 2 |]
      ~arrivals:[ (0, [ (0, 2); (1, 2) ]) ]
      ()
  in
  check "opt" 2 (opt ~m:2 i)

let test_opt_interleaving_beats_greedy () =
  (* Color 0: jobs at rounds 0 and 4 (bound 2, delta 2). Color 1: burst
     of 2 at round 0, bound 4.
     m = 1. Serving everything: configure 0 (run round 0), configure 1
     (runs rounds 1-2), back to 0 at round 4 costs 3 reconfigs = 6 ; or
     keep 0 and drop color 1: 2 + 2 = 4; or serve 1 and drop both 0
     jobs: 2 + 2 = 4. OPT = 4. *)
  let i =
    Instance.make ~delta:2 ~bounds:[| 2; 4 |]
      ~arrivals:[ (0, [ (0, 1); (1, 2) ]); (4, [ (0, 1) ]) ]
      ()
  in
  check "opt" 4 (opt ~m:1 i)

let test_opt_empty_instance () =
  let i = Instance.make ~delta:3 ~bounds:[| 2 |] ~arrivals:[] () in
  check "opt of empty" 0 (opt ~m:1 i)

let test_opt_budget_exhaustion () =
  let i =
    Rrs_workload.Random_workloads.uniform ~seed:3 ~colors:4 ~delta:2
      ~bound_log_range:(0, 2) ~horizon:24 ~load:1.0 ~rate_limited:true ()
  in
  match Brute_force.opt ~max_states:10 ~m:2 i with
  | None -> ()
  | Some _ -> Alcotest.fail "expected budget exhaustion"

(* ---- Lower bound validity: every bound <= OPT on tiny instances ---- *)

let prop_lower_bounds_below_opt =
  QCheck2.Test.make ~name:"lower bounds: all <= brute-force OPT" ~count:40
    H.gen_tiny (fun instance ->
      match Brute_force.opt_cost ~max_states:300_000 ~m:1 instance with
      | None -> QCheck2.assume_fail ()
      | Some opt ->
          List.for_all (fun (_, bound) -> bound <= opt)
            (Lower_bounds.all ~m:1 instance))

let prop_greedy_above_opt =
  QCheck2.Test.make ~name:"greedy heuristic: cost >= OPT (upper bound)" ~count:40
    H.gen_tiny (fun instance ->
      match Brute_force.opt_cost ~max_states:300_000 ~m:1 instance with
      | None -> QCheck2.assume_fail ()
      | Some opt -> Greedy_offline.cost ~m:1 instance >= opt)

let prop_greedy_valid_schedule =
  QCheck2.Test.make ~name:"greedy heuristic: schedules validate" ~count:40
    H.gen_batched (fun instance ->
      match Greedy_offline.run ~m:3 instance with
      | Error e -> QCheck2.Test.fail_report e
      | Ok { schedule; cost } ->
          Schedule.validate schedule = Ok ()
          && cost = Schedule.total_cost schedule)

let prop_opt_monotone_in_resources =
  QCheck2.Test.make ~name:"OPT: more resources never cost more" ~count:25
    H.gen_tiny (fun instance ->
      match
        ( Brute_force.opt_cost ~max_states:400_000 ~m:1 instance,
          Brute_force.opt_cost ~max_states:400_000 ~m:2 instance )
      with
      | Some opt1, Some opt2 -> opt2 <= opt1
      | _ -> QCheck2.assume_fail ())

let prop_online_at_least_opt =
  (* Any online policy with the same m resources costs at least OPT. *)
  QCheck2.Test.make ~name:"OPT: below every online policy at equal resources"
    ~count:25 H.gen_tiny (fun instance ->
      match Brute_force.opt_cost ~max_states:400_000 ~m:2 instance with
      | None -> QCheck2.assume_fail ()
      | Some opt ->
          List.for_all
            (fun (_, policy) ->
              Rrs_sim.Engine.cost ~n:2 ~policy instance >= opt)
            Rrs_stats.Experiment.standard_policies)

(* ---- Lower bound unit checks ---- *)

let test_per_color_bound () =
  (* Color 0: 5 jobs (delta 3 -> min 3); color 1: 2 jobs (-> 2). *)
  let i =
    Instance.make ~delta:3 ~bounds:[| 4; 4 |]
      ~arrivals:[ (0, [ (0, 4); (1, 2) ]); (4, [ (0, 1) ]) ]
      ()
  in
  check "per_color" 5 (Lower_bounds.per_color i)

let test_window_bound () =
  (* 6 unit-bound jobs in one round, m = 2: window [0,1) has capacity 2,
     surplus 4. *)
  let i =
    Instance.make ~delta:1 ~bounds:[| 1; 1; 1; 1; 1; 1 |]
      ~arrivals:[ (0, List.init 6 (fun c -> (c, 1))) ]
      ()
  in
  check "window" 4 (Lower_bounds.window ~m:2 i);
  check "par-edf agrees" 4 (Lower_bounds.par_edf_drop ~m:2 i)

let test_window_no_surplus () =
  let i = Instance.make ~delta:1 ~bounds:[| 4 |] ~arrivals:[ (0, [ (0, 2) ]) ] () in
  check "no surplus" 0 (Lower_bounds.window ~m:1 i)

(* ---- Offline schedule grid ---- *)

let test_grid_costs () =
  let i =
    Instance.make ~delta:2 ~bounds:[| 2; 2 |]
      ~arrivals:[ (0, [ (0, 2); (1, 1) ]) ]
      ()
  in
  let grid = Offline_schedule.create ~instance:i ~m:1 ~speed:1 in
  Offline_schedule.set_color_range grid ~resource:0 ~from_slot:0 ~to_slot:2 0;
  Offline_schedule.set_exec grid ~resource:0 ~slot:0;
  Offline_schedule.set_exec grid ~resource:0 ~slot:1;
  check "reconfigs" 1 (Offline_schedule.reconfig_count grid);
  check "execs" 2 (Offline_schedule.exec_count grid);
  (* cost = 2 * 1 + (3 jobs - 2 executed) = 3 *)
  check "cost" 3 (Offline_schedule.cost grid);
  match Offline_schedule.to_schedule grid with
  | Error e -> Alcotest.fail e
  | Ok schedule ->
      check "validated cost matches" 3 (Schedule.total_cost schedule);
      check_bool "validates" true (Schedule.validate schedule = Ok ())

let test_grid_monochromatic () =
  let i = Instance.make ~delta:1 ~bounds:[| 2 |] ~arrivals:[ (0, [ (0, 1) ]) ] () in
  let grid = Offline_schedule.create ~instance:i ~m:1 ~speed:1 in
  Offline_schedule.set_color_range grid ~resource:0 ~from_slot:0 ~to_slot:3 0;
  Alcotest.(check (option int)) "mono" (Some 0)
    (Offline_schedule.monochromatic grid ~resource:0 ~from_slot:0 ~to_slot:3);
  Offline_schedule.set_color grid ~resource:0 ~slot:1 1;
  Alcotest.(check (option int)) "multi" None
    (Offline_schedule.monochromatic grid ~resource:0 ~from_slot:0 ~to_slot:3)

let test_grid_infeasible_exec () =
  let i = Instance.make ~delta:1 ~bounds:[| 2 |] ~arrivals:[ (0, [ (0, 1) ]) ] () in
  let grid = Offline_schedule.create ~instance:i ~m:1 ~speed:1 in
  (* Execute at slot 2 = round 2 >= deadline: the replay must fail. *)
  Offline_schedule.set_color_range grid ~resource:0 ~from_slot:0 ~to_slot:3 0;
  Offline_schedule.set_exec grid ~resource:0 ~slot:2;
  check_bool "infeasible rejected" true
    (Result.is_error (Offline_schedule.to_schedule grid))

let prop_grid_roundtrip =
  (* Engine schedule -> grid -> schedule preserves costs. *)
  QCheck2.Test.make ~name:"offline grid: roundtrip preserves costs" ~count:30
    H.gen_rate_limited (fun instance ->
      let _, schedule =
        H.run_validated ~n:4 ~policy:(module Rrs_core.Policy_lru_edf) instance
      in
      let grid = Offline_schedule.of_schedule schedule in
      Offline_schedule.reconfig_count grid = Schedule.reconfig_count schedule
      && Offline_schedule.exec_count grid = Schedule.exec_count schedule
      &&
      match Offline_schedule.to_schedule grid with
      | Error _ -> false
      | Ok back ->
          Schedule.total_cost back = Schedule.total_cost schedule
          && Schedule.validate back = Ok ())

let quick name f = Alcotest.test_case name `Quick f
let prop p = QCheck_alcotest.to_alcotest p

let suite =
  [
    ( "offline.brute_force",
      [
        quick "single color" test_opt_single_color;
        quick "drop beats reconfig" test_opt_drop_cheaper_than_reconfig;
        quick "reconfig beats drops" test_opt_reconfig_cheaper_than_drops;
        quick "two colors one resource" test_opt_two_colors_one_resource;
        quick "two resources" test_opt_two_resources_no_conflict;
        quick "interleaving tradeoff" test_opt_interleaving_beats_greedy;
        quick "empty instance" test_opt_empty_instance;
        quick "budget exhaustion" test_opt_budget_exhaustion;
        prop prop_opt_monotone_in_resources;
        prop prop_online_at_least_opt;
      ] );
    ( "offline.lower_bounds",
      [
        quick "per-color bound" test_per_color_bound;
        quick "window bound" test_window_bound;
        quick "window without surplus" test_window_no_surplus;
        prop prop_lower_bounds_below_opt;
        prop prop_greedy_above_opt;
        prop prop_greedy_valid_schedule;
      ] );
    ( "offline.grid",
      [
        quick "grid costs and conversion" test_grid_costs;
        quick "monochromatic detection" test_grid_monochromatic;
        quick "infeasible execution rejected" test_grid_infeasible_exec;
        prop prop_grid_roundtrip;
      ] );
  ]
