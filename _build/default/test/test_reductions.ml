(* Reduction-layer tests: Distribute (Section 4), VarBatch (Section 5),
   and the top-level solver. *)

module Instance = Rrs_sim.Instance
module Schedule = Rrs_sim.Schedule
module Distribute = Rrs_core.Distribute
module Var_batch = Rrs_core.Var_batch
module Solver = Rrs_core.Solver
module H = Test_helpers

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ---- Distribute.transform ---- *)

let test_distribute_splits_bursts () =
  (* 10 jobs of a bound-4 color in one batch -> subcolors of sizes 4,4,2. *)
  let i =
    Instance.make ~delta:2 ~bounds:[| 4 |] ~arrivals:[ (0, [ (0, 10) ]) ] ()
  in
  let inner, parent_of = Distribute.transform i in
  check "subcolors" 3 (Instance.num_colors inner);
  check_bool "rate limited" true (Instance.is_rate_limited inner);
  check "job count preserved" 10 (Instance.total_jobs inner);
  Alcotest.(check (array int)) "parents" [| 0; 0; 0 |] parent_of;
  Alcotest.(check (list int))
    "chunk sizes" [ 4; 4; 2 ]
    (List.map (fun c -> Instance.jobs_of_color inner c) [ 0; 1; 2 ]);
  check "bounds inherited" 4 inner.bounds.(1)

let test_distribute_identity_when_rate_limited () =
  let i =
    Instance.make ~delta:2 ~bounds:[| 4; 2 |]
      ~arrivals:[ (0, [ (0, 3); (1, 2) ]); (4, [ (0, 4) ]) ]
      ()
  in
  let inner, parent_of = Distribute.transform i in
  check "no extra subcolors" 2 (Instance.num_colors inner);
  Alcotest.(check (array int)) "identity parents" [| 0; 1 |] parent_of;
  check "jobs preserved" (Instance.total_jobs i) (Instance.total_jobs inner)

let test_distribute_rejects_unbatched () =
  let i = Instance.make ~delta:1 ~bounds:[| 4 |] ~arrivals:[ (1, [ (0, 1) ]) ] () in
  match Distribute.transform i with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected rejection"

let prop_distribute_transform_sound =
  QCheck2.Test.make ~name:"distribute: transform is rate-limited & job-preserving"
    ~count:60 H.gen_batched (fun instance ->
      let inner, parent_of = Distribute.transform instance in
      Instance.is_rate_limited inner
      && Instance.total_jobs inner = Instance.total_jobs instance
      && Array.length parent_of = Instance.num_colors inner
      (* per-parent job totals preserved *)
      && List.for_all
           (fun parent ->
             let subtotal = ref 0 in
             Array.iteri
               (fun sub p ->
                 if p = parent then
                   subtotal := !subtotal + Instance.jobs_of_color inner sub)
               parent_of;
             !subtotal = Instance.jobs_of_color instance parent)
           (List.init (Instance.num_colors instance) Fun.id))

let prop_distribute_outer_at_most_inner =
  (* Lemma 4.2: the relabeled schedule costs at most the inner one, and
     executes exactly as many jobs. *)
  QCheck2.Test.make ~name:"distribute: outer cost <= inner cost (Lemma 4.2)"
    ~count:60 H.gen_batched (fun instance ->
      match Distribute.run ~n:8 instance with
      | Error e -> QCheck2.Test.fail_report e
      | Ok result ->
          let inner_cost = Rrs_sim.Ledger.total_cost result.inner.ledger in
          let outer_cost = Distribute.cost result in
          Schedule.validate result.schedule = Ok ()
          && outer_cost <= inner_cost
          && Schedule.exec_count result.schedule
             = Rrs_sim.Ledger.exec_count result.inner.ledger
          && Schedule.drop_count result.schedule
             = Rrs_sim.Ledger.drop_count result.inner.ledger)

(* ---- Var_batch ---- *)

let test_effective_bound () =
  Alcotest.(check (list int))
    "effective bounds"
    [ 1; 1; 1; 2; 2; 2; 4; 4; 8; 8 ]
    (List.map Var_batch.effective_bound [ 1; 2; 3; 4; 5; 7; 8; 9; 16; 17 ])

let test_varbatch_transform_delays () =
  (* A bound-8 job arriving at round 3: q = 4, delayed to round 4 with
     bound 4; deadline 8 <= original deadline 11. *)
  let i = Instance.make ~delta:1 ~bounds:[| 8 |] ~arrivals:[ (3, [ (0, 1) ]) ] () in
  let batched = Var_batch.transform i in
  check_bool "batched" true (Instance.is_batched batched);
  check "new bound" 4 batched.bounds.(0);
  Alcotest.(check (list (pair int (list (pair int int)))))
    "delayed arrival"
    [ (4, [ (0, 1) ]) ]
    (Instance.nonempty_arrivals batched)

let test_varbatch_bound_one_passthrough () =
  let i = Instance.make ~delta:1 ~bounds:[| 1 |] ~arrivals:[ (3, [ (0, 2) ]) ] () in
  let batched = Var_batch.transform i in
  Alcotest.(check (list (pair int (list (pair int int)))))
    "unchanged"
    [ (3, [ (0, 2) ]) ]
    (Instance.nonempty_arrivals batched)

let prop_varbatch_transform_feasible =
  QCheck2.Test.make
    ~name:"varbatch: delayed windows sit inside original windows" ~count:60
    H.gen_unbatched (fun instance ->
      let batched = Var_batch.transform instance in
      Instance.is_batched batched
      && Instance.bounds_pow2 batched
      && Instance.total_jobs batched = Instance.total_jobs instance
      && Array.for_all2
           (fun q d -> q >= 1 && (d = 1 || 2 * q <= d))
           batched.bounds instance.bounds)

let prop_varbatch_schedule_valid =
  QCheck2.Test.make ~name:"varbatch: end-to-end schedule validates on original"
    ~count:40 H.gen_unbatched (fun instance ->
      match Var_batch.run ~n:8 instance with
      | Error e -> QCheck2.Test.fail_report e
      | Ok result ->
          Schedule.validate result.schedule = Ok ()
          (* every executed job is executed within its original window:
             implied by validation, but also check drop conservation *)
          && Schedule.drop_count result.schedule
             + Schedule.exec_count result.schedule
             = Instance.total_jobs instance)

(* ---- Solver ---- *)

let test_solver_classification () =
  let rl =
    Instance.make ~delta:1 ~bounds:[| 2 |] ~arrivals:[ (0, [ (0, 2) ]) ] ()
  in
  let batched =
    Instance.make ~delta:1 ~bounds:[| 2 |] ~arrivals:[ (0, [ (0, 5) ]) ] ()
  in
  let unbatched =
    Instance.make ~delta:1 ~bounds:[| 2 |] ~arrivals:[ (1, [ (0, 1) ]) ] ()
  in
  let odd = Instance.make ~delta:1 ~bounds:[| 6 |] ~arrivals:[ (0, [ (0, 1) ]) ] () in
  Alcotest.(check string) "rl" "direct" (Solver.pipeline_to_string (Solver.classify rl));
  Alcotest.(check string) "batched" "distribute"
    (Solver.pipeline_to_string (Solver.classify batched));
  Alcotest.(check string) "unbatched" "varbatch"
    (Solver.pipeline_to_string (Solver.classify unbatched));
  Alcotest.(check string) "non-pow2" "varbatch"
    (Solver.pipeline_to_string (Solver.classify odd))

let test_solver_rejects_inapplicable () =
  let unbatched =
    Instance.make ~delta:1 ~bounds:[| 2 |] ~arrivals:[ (1, [ (0, 1) ]) ] ()
  in
  match Solver.solve ~pipeline:Solver.Direct_lru_edf ~n:4 unbatched with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected pipeline rejection"

let prop_solver_valid_everywhere =
  QCheck2.Test.make ~name:"solver: validated schedule on every input class"
    ~count:40
    QCheck2.Gen.(oneof [ H.gen_rate_limited; H.gen_batched; H.gen_unbatched ])
    (fun instance ->
      match Solver.solve ~n:8 instance with
      | Error e -> QCheck2.Test.fail_report e
      | Ok outcome ->
          Schedule.validate outcome.schedule = Ok ()
          && outcome.cost
             = (instance.Instance.delta * outcome.reconfig_count)
               + outcome.drop_count)

let prop_solver_forced_pipelines_agree_on_cost_model =
  (* Any applicable pipeline must produce a valid schedule; costs can
     differ but drops+execs must account for all jobs. *)
  QCheck2.Test.make ~name:"solver: forced pipelines all feasible on rate-limited"
    ~count:30 H.gen_rate_limited (fun instance ->
      List.for_all
        (fun pipeline ->
          match Solver.solve ~pipeline ~n:8 instance with
          | Error e -> QCheck2.Test.fail_report e
          | Ok outcome ->
              Schedule.validate outcome.schedule = Ok ()
              && Schedule.exec_count outcome.schedule + outcome.drop_count
                 = Instance.total_jobs instance)
        [ Solver.Direct_lru_edf; Solver.Distributed; Solver.Var_batched ])

let quick name f = Alcotest.test_case name `Quick f
let prop p = QCheck_alcotest.to_alcotest p

let suite =
  [
    ( "core.distribute",
      [
        quick "splits bursts into subcolors" test_distribute_splits_bursts;
        quick "identity on rate-limited input" test_distribute_identity_when_rate_limited;
        quick "rejects unbatched input" test_distribute_rejects_unbatched;
        prop prop_distribute_transform_sound;
        prop prop_distribute_outer_at_most_inner;
      ] );
    ( "core.var_batch",
      [
        quick "effective bounds" test_effective_bound;
        quick "transform delays into half-blocks" test_varbatch_transform_delays;
        quick "bound-1 passthrough" test_varbatch_bound_one_passthrough;
        prop prop_varbatch_transform_feasible;
        prop prop_varbatch_schedule_valid;
      ] );
    ( "core.solver",
      [
        quick "classification" test_solver_classification;
        quick "rejects inapplicable pipeline" test_solver_rejects_inapplicable;
        prop prop_solver_valid_everywhere;
        prop prop_solver_forced_pipelines_agree_on_cost_model;
      ] );
  ]
