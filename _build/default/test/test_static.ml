(* Tests for the static-partitioning baseline and its comparison
   properties against the reconfigurable algorithms. *)

module Instance = Rrs_sim.Instance
module Schedule = Rrs_sim.Schedule
module Static_offline = Rrs_offline.Static_offline
module H = Test_helpers

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_static_covers_small_mix () =
  (* 2 colors, plenty of jobs, 2 resources: static dedicates one to each
     and serves everything at cost 2 * delta. *)
  let i =
    Instance.make ~delta:2 ~bounds:[| 4; 4 |]
      ~arrivals:[ (0, [ (0, 4); (1, 4) ]); (4, [ (0, 4); (1, 4) ]) ]
      ()
  in
  match Static_offline.run ~m:2 i with
  | Error e -> Alcotest.fail e
  | Ok result ->
      check "cost = 2 delta" 4 result.cost;
      check "no drops" 0 (Schedule.drop_count result.schedule);
      Alcotest.(check (list (pair int int)))
        "one resource each"
        [ (0, 1); (1, 1) ]
        result.allocation

let test_static_skips_unprofitable_colors () =
  (* A color with one job and delta 5: dedicating a resource costs more
     than dropping. *)
  let i =
    Instance.make ~delta:5 ~bounds:[| 4; 4 |]
      ~arrivals:[ (0, [ (0, 1); (1, 8 ) ]); (4, [ (1, 4) ]) ]
      ()
  in
  match Static_offline.run ~m:2 i with
  | Error e -> Alcotest.fail e
  | Ok result ->
      check_bool "color 0 unallocated" true
        (not (List.mem_assoc 0 result.allocation));
      check "color 0 job dropped" 1
        (List.length
           (List.filter
              (function
                | Rrs_sim.Ledger.Drop { color = 0; _ } -> true
                | _ -> false)
              result.schedule.events))

let test_static_allocates_multiple_to_hot_color () =
  (* One color with 2 unit-bound jobs per round: needs 2 servers. *)
  let i =
    Instance.make ~delta:1 ~bounds:[| 1 |]
      ~arrivals:(List.init 8 (fun r -> (r, [ (0, 2) ])))
      ()
  in
  match Static_offline.run ~m:3 i with
  | Error e -> Alcotest.fail e
  | Ok result ->
      Alcotest.(check (list (pair int int))) "two servers" [ (0, 2) ] result.allocation;
      check "no drops" 0 (Schedule.drop_count result.schedule)

let prop_static_valid_and_bounded =
  QCheck2.Test.make ~name:"static: validates, and cost >= OPT on tiny instances"
    ~count:30 H.gen_tiny (fun instance ->
      match Static_offline.run ~m:2 instance with
      | Error e -> QCheck2.Test.fail_report e
      | Ok result -> (
          Schedule.validate result.schedule = Ok ()
          &&
          match
            Rrs_offline.Brute_force.opt_cost ~max_states:300_000 ~m:2 instance
          with
          | None -> true
          | Some opt -> result.cost >= opt))

let prop_static_never_reconfigures_twice =
  (* Static means static: at most one configuration per resource. *)
  QCheck2.Test.make ~name:"static: at most one reconfiguration per resource"
    ~count:30 H.gen_batched (fun instance ->
      match Static_offline.run ~m:4 instance with
      | Error e -> QCheck2.Test.fail_report e
      | Ok result ->
          let per_resource = Hashtbl.create 4 in
          List.iter
            (function
              | Rrs_sim.Ledger.Reconfig { location; _ } ->
                  Hashtbl.replace per_resource location
                    (1 + try Hashtbl.find per_resource location with Not_found -> 0)
              | _ -> ())
            result.schedule.events;
          Hashtbl.fold (fun _ count ok -> ok && count <= 1) per_resource true)

let quick name f = Alcotest.test_case name `Quick f
let prop p = QCheck_alcotest.to_alcotest p

let suite =
  [
    ( "offline.static",
      [
        quick "covers a small mix" test_static_covers_small_mix;
        quick "skips unprofitable colors" test_static_skips_unprofitable_colors;
        quick "multiple servers for a hot color" test_static_allocates_multiple_to_hot_color;
        prop prop_static_valid_and_bounded;
        prop prop_static_never_reconfigures_twice;
      ] );
  ]
