(* Larger end-to-end runs: catch scalability and memory regressions (no
   timing assertions — just that big runs complete and stay exact). *)

module Instance = Rrs_sim.Instance
module Schedule = Rrs_sim.Schedule
module Engine = Rrs_sim.Engine
module Ledger = Rrs_sim.Ledger

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_large_direct_run () =
  let instance =
    Rrs_workload.Random_workloads.uniform ~seed:77 ~colors:64 ~delta:8
      ~bound_log_range:(0, 6) ~horizon:4096 ~load:0.7 ~rate_limited:true ()
  in
  check_bool "big instance" true (Instance.total_jobs instance > 50_000);
  let result =
    Engine.run ~record_events:false ~n:32
      ~policy:(module Rrs_core.Policy_lru_edf) instance
  in
  check "every job accounted" (Instance.total_jobs instance)
    (Ledger.exec_count result.ledger + Ledger.drop_count result.ledger)

let test_large_varbatch_pipeline () =
  let instance =
    Rrs_workload.Random_workloads.unbatched ~seed:77 ~colors:24 ~delta:6
      ~bound_range:(3, 100) ~horizon:2048 ~load:0.5 ()
  in
  match Rrs_core.Var_batch.run ~n:24 instance with
  | Error e -> Alcotest.fail e
  | Ok result ->
      check_bool "validates" true (Schedule.validate result.schedule = Ok ());
      check "jobs conserved" (Instance.total_jobs instance)
        (Schedule.exec_count result.schedule + Schedule.drop_count result.schedule)

let test_large_distribute_bursts () =
  (* Heavy bursts create many subcolors. *)
  let instance =
    Rrs_workload.Random_workloads.uniform ~seed:5 ~colors:16 ~delta:4
      ~bound_log_range:(0, 3) ~horizon:1024 ~load:8.0 ~rate_limited:false ()
  in
  match Rrs_core.Distribute.run ~n:16 instance with
  | Error e -> Alcotest.fail e
  | Ok result ->
      check_bool "many subcolors" true
        (Instance.num_colors result.inner_instance > Instance.num_colors instance);
      check_bool "outer <= inner" true
        (Rrs_core.Distribute.cost result
        <= Ledger.total_cost result.inner.ledger)

let test_timing_wheel_long_horizon () =
  let wheel = Rrs_ds.Timing_wheel.create ~horizon:4 () in
  let n = 50_000 in
  for i = 1 to n do
    Rrs_ds.Timing_wheel.add wheel ~time:(i * 7 mod 65_536) i
  done;
  let fired = ref 0 in
  Rrs_ds.Timing_wheel.advance wheel ~time:65_536 (fun _ _ -> incr fired);
  check "all fired" n !fired

let test_deep_adversary () =
  (* Appendix A at depth: 2^12-round horizon. *)
  let adv = Rrs_workload.Adversary.lru_killer ~n:8 ~delta:2 ~j:8 ~k:12 in
  let dlru = Engine.cost ~n:8 ~policy:(module Rrs_core.Policy_lru) adv.instance in
  let combo =
    Engine.cost ~n:8 ~policy:(module Rrs_core.Policy_lru_edf) adv.instance
  in
  (* Exact formula still holds at depth. *)
  check "dlru exact" ((8 * 2) + 4096) dlru;
  check_bool "combo flat" true (combo < adv.off_cost)

let quick name f = Alcotest.test_case name `Quick f

let suite =
  [
    ( "stress",
      [
        quick "large direct run (64 colors, 4096 rounds)" test_large_direct_run;
        quick "large varbatch pipeline" test_large_varbatch_pipeline;
        quick "large distribute with bursts" test_large_distribute_bursts;
        quick "timing wheel long horizon" test_timing_wheel_long_horizon;
        quick "deep appendix-A adversary" test_deep_adversary;
      ] );
  ]
