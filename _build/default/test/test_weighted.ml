(* Tests for the companion-problem extension: weighted drop costs,
   weighted brute force, and the Landlord policy. *)

module Instance = Rrs_sim.Instance
module Ledger = Rrs_sim.Ledger
module Weighted = Rrs_uniform.Weighted
module Landlord = Rrs_uniform.Landlord
module H = Test_helpers

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let make_weighted ~delta ~bound ~drop_costs arrivals =
  let instance =
    Instance.make ~delta ~bounds:(Array.make (Array.length drop_costs) bound)
      ~arrivals ()
  in
  match Weighted.make ~instance ~drop_costs with
  | Ok w -> w
  | Error e -> Alcotest.fail e

let test_make_validation () =
  let uniform = Instance.make ~delta:2 ~bounds:[| 4; 4 |] ~arrivals:[] () in
  let mixed = Instance.make ~delta:2 ~bounds:[| 4; 8 |] ~arrivals:[] () in
  check_bool "uniform accepted" true
    (Result.is_ok (Weighted.make ~instance:uniform ~drop_costs:[| 1; 5 |]));
  check_bool "mixed bounds rejected" true
    (Result.is_error (Weighted.make ~instance:mixed ~drop_costs:[| 1; 5 |]));
  check_bool "wrong cost count rejected" true
    (Result.is_error (Weighted.make ~instance:uniform ~drop_costs:[| 1 |]));
  check_bool "zero cost rejected" true
    (Result.is_error (Weighted.make ~instance:uniform ~drop_costs:[| 1; 0 |]))

let test_weighted_cost_of_events () =
  let w =
    make_weighted ~delta:3 ~bound:4 ~drop_costs:[| 1; 10 |]
      [ (0, [ (0, 1); (1, 1) ]) ]
  in
  let events =
    [
      Ledger.Reconfig { round = 0; mini_round = 0; location = 0; previous = None; next = 0 };
      Ledger.Drop { round = 4; color = 0; count = 2 };
      Ledger.Drop { round = 4; color = 1; count = 3 };
      Ledger.Execute { round = 1; mini_round = 0; location = 0; color = 0; deadline = 4 };
    ]
  in
  (* 3 (reconfig) + 2*1 + 3*10 = 35 *)
  check "weighted cost" 35 (Weighted.cost_of_events w events)

let test_weighted_lower_bound () =
  (* color 0: 2 jobs at cost 1 -> min(5, 2) = 2; color 1: 1 job at cost
     10 -> min(5, 10) = 5. *)
  let w =
    make_weighted ~delta:5 ~bound:4 ~drop_costs:[| 1; 10 |]
      [ (0, [ (0, 2); (1, 1) ]) ]
  in
  check "lower bound" 7 (Weighted.lower_bound w)

let test_weighted_opt () =
  (* One job of cost 10, delta 5: configuring (5) beats dropping (10). *)
  let expensive =
    make_weighted ~delta:5 ~bound:4 ~drop_costs:[| 10 |] [ (0, [ (0, 1) ]) ]
  in
  check "opt configures" 5 (Option.get (Weighted.opt_cost ~m:1 expensive));
  (* Same job at cost 3: dropping wins. *)
  let cheap =
    make_weighted ~delta:5 ~bound:4 ~drop_costs:[| 3 |] [ (0, [ (0, 1) ]) ]
  in
  check "opt drops" 3 (Option.get (Weighted.opt_cost ~m:1 cheap));
  (* Two colors, one resource: serve the expensive one. color 0 has 2
     jobs at cost 1 (drop: 2), color 1 has 2 jobs at cost 9 (drop: 18,
     serve: delta 4). OPT = 4 + 2. *)
  let contested =
    make_weighted ~delta:4 ~bound:2 ~drop_costs:[| 1; 9 |]
      [ (0, [ (0, 2); (1, 2) ]) ]
  in
  check "opt serves the precious color" 6
    (Option.get (Weighted.opt_cost ~m:1 contested))

let prop_weighted_lb_below_opt =
  QCheck2.Test.make ~name:"weighted: lower bound <= weighted OPT" ~count:40
    QCheck2.Gen.(
      let* seed = int_bound 10_000 in
      let* delta = int_range 1 4 in
      let* precious_cost = int_range 2 12 in
      return
        (Rrs_uniform.Weighted_workloads.tiered ~seed ~colors:3 ~delta ~bound:2
           ~horizon:8 ~load:0.8 ~precious:1 ~precious_cost ()))
    (fun w ->
      match Weighted.opt_cost ~max_states:400_000 ~m:1 w with
      | None -> QCheck2.assume_fail ()
      | Some opt -> Weighted.lower_bound w <= opt)

let test_landlord_prefers_precious () =
  (* One precious sparse color (cost 100) + cheap frequent colors, few
     resources. Weight-blind ΔLRU-EDF ignores the precious color until
     its unit counter wraps; Landlord admits it after one arrival. *)
  let w =
    Rrs_uniform.Weighted_workloads.tiered ~seed:3 ~colors:6 ~delta:8 ~bound:8
      ~horizon:512 ~load:0.5 ~precious:1 ~precious_cost:100 ()
  in
  let landlord =
    Weighted.run_policy ~n:16 ~policy:(Landlord.policy ~drop_costs:w.drop_costs) w
  in
  let blind = Weighted.run_policy ~n:16 ~policy:(module Rrs_core.Policy_lru_edf) w in
  check_bool
    (Printf.sprintf "landlord (%d) well below weight-blind dlru-edf (%d)" landlord
       blind)
    true
    (2 * landlord < blind)

let prop_landlord_valid =
  QCheck2.Test.make ~name:"landlord: valid schedules, cache within capacity"
    ~count:30
    QCheck2.Gen.(
      let* seed = int_bound 10_000 in
      let* precious_cost = int_range 2 50 in
      return
        (Rrs_uniform.Weighted_workloads.tiered ~seed ~colors:8 ~delta:4 ~bound:4
           ~horizon:64 ~load:0.8 ~precious:2 ~precious_cost ()))
    (fun w ->
      let module P = (val Landlord.policy ~drop_costs:w.Weighted.drop_costs) in
      let module S = H.Spy (P) in
      S.expected_copies := 2;
      let result, _ =
        H.run_validated ~n:8 ~policy:(module S) w.Weighted.instance
      in
      H.stat result.stats "spy_max_distinct" <= 4
      && H.stat result.stats "spy_replication_violations" = 0)

let prop_weighted_policies_above_opt =
  QCheck2.Test.make ~name:"weighted: every policy costs >= weighted OPT at equal m"
    ~count:20
    QCheck2.Gen.(
      let* seed = int_bound 10_000 in
      return
        (Rrs_uniform.Weighted_workloads.tiered ~seed ~colors:3 ~delta:2 ~bound:2
           ~horizon:8 ~load:0.8 ~precious:1 ~precious_cost:6 ()))
    (fun w ->
      match Weighted.opt_cost ~max_states:400_000 ~m:2 w with
      | None -> QCheck2.assume_fail ()
      | Some opt ->
          Weighted.run_policy ~n:2
            ~policy:(Landlord.policy ~drop_costs:w.Weighted.drop_costs)
            w
          >= opt
          && Weighted.run_policy ~n:2 ~policy:(module Rrs_core.Policy_lru_edf) w
             >= opt)

let test_weighted_trace_roundtrip () =
  let w =
    Rrs_uniform.Weighted_workloads.tiered ~seed:8 ~colors:4 ~delta:3 ~bound:4
      ~horizon:32 ~load:0.7 ~precious:1 ~precious_cost:25 ()
  in
  match Rrs_uniform.Weighted_trace.of_string (Rrs_uniform.Weighted_trace.to_string w) with
  | Error e -> Alcotest.fail e
  | Ok back ->
      Alcotest.(check (array int)) "costs preserved" w.drop_costs back.drop_costs;
      check "jobs preserved"
        (Instance.total_jobs w.instance)
        (Instance.total_jobs back.instance)

let test_weighted_trace_defaults () =
  (* A plain trace without dropcosts parses with unit costs. *)
  let text = "rrs-trace v1\ndelta 2\nbounds 4 4\narrival 0 0:1\nend\n" in
  match Rrs_uniform.Weighted_trace.of_string text with
  | Error e -> Alcotest.fail e
  | Ok w -> Alcotest.(check (array int)) "unit costs" [| 1; 1 |] w.drop_costs

let test_weighted_trace_errors () =
  let bad = "rrs-trace v1\ndelta 2\nbounds 4 4\ndropcosts 1 x\nend\n" in
  check_bool "bad dropcosts rejected" true
    (Result.is_error (Rrs_uniform.Weighted_trace.of_string bad));
  let mismatched = "rrs-trace v1\ndelta 2\nbounds 4 4\ndropcosts 1\nend\n" in
  check_bool "cost-count mismatch rejected" true
    (Result.is_error (Rrs_uniform.Weighted_trace.of_string mismatched))

let quick name f = Alcotest.test_case name `Quick f
let prop p = QCheck_alcotest.to_alcotest p

let suite =
  [
    ( "uniform.weighted",
      [
        quick "make validation" test_make_validation;
        quick "weighted event costs" test_weighted_cost_of_events;
        quick "weighted lower bound" test_weighted_lower_bound;
        quick "weighted brute-force optimum" test_weighted_opt;
        quick "weighted trace roundtrip" test_weighted_trace_roundtrip;
        quick "weighted trace defaults" test_weighted_trace_defaults;
        quick "weighted trace errors" test_weighted_trace_errors;
        prop prop_weighted_lb_below_opt;
        prop prop_weighted_policies_above_opt;
      ] );
    ( "uniform.landlord",
      [
        quick "prefers the precious color" test_landlord_prefers_precious;
        prop prop_landlord_valid;
      ] );
  ]
