(* Workload-generator tests: determinism, model conformance, adversary
   parameter validation and analytic OFF costs. *)

module Instance = Rrs_sim.Instance
module Gen = Rrs_workload.Gen
module Adversary = Rrs_workload.Adversary
module Random_workloads = Rrs_workload.Random_workloads
module Scenarios = Rrs_workload.Scenarios

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ---- Gen ---- *)

let test_gen_determinism () =
  let a = Gen.create ~seed:5 and b = Gen.create ~seed:5 in
  let xs = List.init 20 (fun _ -> Gen.int a 1000) in
  let ys = List.init 20 (fun _ -> Gen.int b 1000) in
  Alcotest.(check (list int)) "same seed, same stream" xs ys

let test_gen_ranges () =
  let rng = Gen.create ~seed:1 in
  for _ = 1 to 200 do
    let x = Gen.int_range rng ~lo:3 ~hi:7 in
    check_bool "int_range in range" true (x >= 3 && x <= 7);
    let p = Gen.pow2_range rng ~lo:2 ~hi:5 in
    check_bool "pow2 in range" true (p >= 4 && p <= 32 && p land (p - 1) = 0);
    let g = Gen.geometric rng ~p:0.5 ~cap:10 in
    check_bool "geometric capped" true (g >= 0 && g <= 10);
    let k = Gen.poisson rng ~lambda:2.0 ~cap:50 in
    check_bool "poisson capped" true (k >= 0 && k <= 50)
  done

let test_gen_poisson_mean () =
  let rng = Gen.create ~seed:7 in
  let n = 3000 in
  let total = ref 0 in
  for _ = 1 to n do
    total := !total + Gen.poisson rng ~lambda:3.0 ~cap:100
  done;
  let mean = float_of_int !total /. float_of_int n in
  check_bool "poisson mean near lambda" true (mean > 2.6 && mean < 3.4)

let test_gen_errors () =
  let rng = Gen.create ~seed:1 in
  check_bool "choice empty raises" true
    (match Gen.choice rng [] with exception Invalid_argument _ -> true | _ -> false);
  check_bool "bad geometric p" true
    (match Gen.geometric rng ~p:0.0 ~cap:3 with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ---- Random workloads conform to their declared class ---- *)

let test_uniform_rate_limited () =
  let i =
    Random_workloads.uniform ~seed:11 ~colors:6 ~delta:3 ~bound_log_range:(0, 4)
      ~horizon:128 ~load:1.5 ~rate_limited:true ()
  in
  check_bool "rate limited" true (Instance.is_rate_limited i);
  check_bool "pow2" true (Instance.bounds_pow2 i);
  check_bool "nonempty" true (Instance.total_jobs i > 0)

let test_uniform_unlimited_can_burst () =
  let i =
    Random_workloads.uniform ~seed:11 ~colors:6 ~delta:3 ~bound_log_range:(0, 3)
      ~horizon:256 ~load:3.0 ~rate_limited:false ()
  in
  check_bool "batched" true (Instance.is_batched i);
  check_bool "bursts exceed bounds somewhere" true (not (Instance.is_rate_limited i))

let test_generators_deterministic () =
  let make () =
    Random_workloads.bursty ~seed:9 ~colors:5 ~delta:2 ~bound_log_range:(1, 3)
      ~horizon:64 ~load:0.8 ~churn:0.3 ~rate_limited:true ()
  in
  let a = make () and b = make () in
  Alcotest.(check string) "identical traces" (Rrs_sim.Trace.to_string a)
    (Rrs_sim.Trace.to_string b)

let test_zipf_skew () =
  let i =
    Random_workloads.zipf ~seed:3 ~colors:8 ~delta:2 ~bound_log_range:(2, 2)
      ~horizon:512 ~load:0.5 ~s:1.5 ~rate_limited:false ()
  in
  let hot = Instance.jobs_of_color i 0 in
  let cold = Instance.jobs_of_color i 7 in
  check_bool "rank-1 color much hotter than rank-8" true (hot > 2 * cold)

let test_unbatched_is_unbatched () =
  let i =
    Random_workloads.unbatched ~seed:4 ~colors:5 ~delta:2 ~bound_range:(3, 17)
      ~horizon:64 ~load:0.5 ()
  in
  check_bool "jobs exist" true (Instance.total_jobs i > 0);
  (* Bounds include non-powers of two by construction (range 3..17). *)
  check_bool "not classified rate-limited+pow2" true
    (not (Instance.bounds_pow2 i) || not (Instance.is_batched i))

(* ---- Scenarios ---- *)

let test_datacenter_shape () =
  let i = Scenarios.datacenter ~seed:2 ~services:9 ~delta:4 ~phases:3 ~phase_length:64 () in
  check_bool "batched" true (Instance.is_batched i);
  check_bool "rate limited" true (Instance.is_rate_limited i);
  check "tiers" 3
    (List.length
       (List.sort_uniq compare (Array.to_list i.bounds)));
  check_bool "busy" true (Instance.total_jobs i > 50)

let test_router_shape () =
  let i = Scenarios.router ~seed:2 ~classes:8 ~delta:4 ~horizon:256 ~utilization:0.7 ~n_ref:4 () in
  check_bool "rate limited" true (Instance.is_rate_limited i);
  check_bool "busy" true (Instance.total_jobs i > 100);
  (* Aggregate load should be in the ballpark of utilization * n_ref *)
  let per_round = float_of_int (Instance.total_jobs i) /. 256.0 in
  check_bool "load near target" true (per_round > 0.5 && per_round < 6.0)

(* ---- Adversaries ---- *)

let test_adversary_parameter_validation () =
  let invalid f = match f () with
    | exception Invalid_argument _ -> true
    | (_ : Adversary.lower_bound_input) -> false
  in
  check_bool "lru_killer needs 2^(j+1) > n*delta" true
    (invalid (fun () -> Adversary.lru_killer ~n:8 ~delta:8 ~j:3 ~k:9));
  check_bool "lru_killer needs 2^k > 2^(j+1)" true
    (invalid (fun () -> Adversary.lru_killer ~n:4 ~delta:1 ~j:4 ~k:5));
  check_bool "edf_killer needs delta > n" true
    (invalid (fun () -> Adversary.edf_killer ~n:8 ~delta:8 ~j:4 ~k:5));
  check_bool "edf_killer needs 2^j > delta" true
    (invalid (fun () -> Adversary.edf_killer ~n:4 ~delta:16 ~j:3 ~k:6))

let test_lru_killer_is_rate_limited () =
  let adv = Adversary.lru_killer ~n:8 ~delta:2 ~j:5 ~k:8 in
  check_bool "rate limited" true (Instance.is_rate_limited adv.instance);
  check_bool "pow2" true (Instance.bounds_pow2 adv.instance);
  (* Long color: exactly 2^k jobs; short colors: delta per batch. *)
  check "long jobs" 256 (Instance.jobs_of_color adv.instance 4);
  check "short jobs" (2 * (256 / 32)) (Instance.jobs_of_color adv.instance 0)

let test_edf_killer_is_rate_limited () =
  let adv = Adversary.edf_killer ~n:4 ~delta:5 ~j:3 ~k:6 in
  check_bool "rate limited" true (Instance.is_rate_limited adv.instance);
  (* Long color p gets 2^(k+p-1) jobs. *)
  check "long color 1" 32 (Instance.jobs_of_color adv.instance 1);
  check "long color 2" 64 (Instance.jobs_of_color adv.instance 2)

let test_off_costs_are_achievable () =
  (* The analytic OFF cost must be >= every valid lower bound with m=1
     (it is the cost of one concrete schedule, hence >= OPT >= LB). *)
  let check_adv (adv : Adversary.lower_bound_input) =
    let lb = Rrs_offline.Lower_bounds.combined ~m:1 adv.instance in
    check_bool (adv.instance.name ^ ": off >= lb") true (adv.off_cost >= lb)
  in
  check_adv (Adversary.lru_killer ~n:4 ~delta:2 ~j:4 ~k:7);
  check_adv (Adversary.edf_killer ~n:4 ~delta:5 ~j:3 ~k:5)

let test_motivation_scenario () =
  let i =
    Adversary.motivation ~seed:3 ~short_colors:4 ~short_bound_log:3
      ~long_bound_log:8 ~delta:3 ~burst_probability:0.4 ()
  in
  check_bool "batched" true (Instance.is_batched i);
  check "background backlog" 256 (Instance.jobs_of_color i 4)

(* ---- Spec parsing ---- *)

let test_spec_kinds_all_parse () =
  List.iter
    (fun kind ->
      match Rrs_workload.Spec.parse kind with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "default %s failed: %s" kind e)
    Rrs_workload.Spec.kinds

let test_spec_parameters_apply () =
  match Rrs_workload.Spec.parse "uniform:colors=3,delta=7,horizon=32,seed=2" with
  | Error e -> Alcotest.fail e
  | Ok i ->
      check "colors" 3 (Instance.num_colors i);
      check "delta" 7 i.delta

let test_spec_errors () =
  let is_error s =
    check_bool s true (Result.is_error (Rrs_workload.Spec.parse s))
  in
  is_error "frobnicate:colors=3";
  is_error "uniform:colors";
  is_error "uniform:colors=x";
  is_error "uniform:unknownkey=3";
  is_error "lru-killer:n=8,delta=100,j=3,k=9" (* violates 2^(j+1) > n delta *)

let test_spec_determinism () =
  let parse s =
    match Rrs_workload.Spec.parse s with Ok i -> i | Error e -> Alcotest.fail e
  in
  Alcotest.(check string)
    "same spec, same trace"
    (Rrs_sim.Trace.to_string (parse "zipf:colors=6,seed=9"))
    (Rrs_sim.Trace.to_string (parse "zipf:colors=6,seed=9"))

let quick name f = Alcotest.test_case name `Quick f

let suite =
  [
    ( "workload.gen",
      [
        quick "determinism" test_gen_determinism;
        quick "ranges" test_gen_ranges;
        quick "poisson mean" test_gen_poisson_mean;
        quick "errors" test_gen_errors;
      ] );
    ( "workload.random",
      [
        quick "uniform rate-limited conformance" test_uniform_rate_limited;
        quick "unlimited bursts" test_uniform_unlimited_can_burst;
        quick "generator determinism" test_generators_deterministic;
        quick "zipf skew" test_zipf_skew;
        quick "unbatched class" test_unbatched_is_unbatched;
      ] );
    ( "workload.scenarios",
      [
        quick "datacenter" test_datacenter_shape;
        quick "router" test_router_shape;
      ] );
    ( "workload.spec",
      [
        quick "all kinds parse with defaults" test_spec_kinds_all_parse;
        quick "parameters apply" test_spec_parameters_apply;
        quick "errors rejected" test_spec_errors;
        quick "determinism" test_spec_determinism;
      ] );
    ( "workload.adversary",
      [
        quick "parameter validation" test_adversary_parameter_validation;
        quick "lru-killer conformance" test_lru_killer_is_rate_limited;
        quick "edf-killer conformance" test_edf_killer_is_rate_limited;
        quick "off cost achievable" test_off_costs_are_achievable;
        quick "motivation scenario" test_motivation_scenario;
      ] );
  ]
