(* E22 — SLO-aware admission under offered overload.

   One deployment capacity spec (2 colors, rate 1/2 each, delta 2 ->
   sized n = 2, supply 2000 mjobs/round), one offered load far beyond
   it: 4 "good" sessions whose declarations are honest and jointly fill
   the supply exactly, 4 "bad" sessions each declaring 3/4+3/4
   jobs/round against their own n = 1 (analytically infeasible: they
   would drop their own jobs no matter what), and 1 late good session
   that is per-session feasible but over the aggregate budget.

   Run once with the gate enforcing and once with it off, driving every
   admitted session with exactly its declared token-bucket traffic:

   - enforcing: the 4 bad opens and the late open draw a typed
     admission_rejected naming the binding constraint and leave no
     session state; every admitted session finishes with zero drops;
     the headroom gauge reads 0 (supply fully promised).
   - off: everything is admitted; the bad sessions shed ~a third of
     their jobs as drops while the good sessions still hold at zero —
     the gate's refusals are exactly the sessions that would have
     degraded.

   Any deviation (a drop in an admitted enforce-mode session, a bad
   session NOT dropping ungated, a rejected open leaving state) fails
   the bench loudly. *)

module Server = Rrs_server.Server
module Client = Rrs_server.Client
module Wire = Rrs_server.Wire
module Admission = Rrs_server.Admission
module Json = Rrs_sim.Event_sink.Json
module Clock = Rrs_obs.Clock

let policy = "seq-edf"
let delta = 2
let bounds = [| 6; 6 |]
let colors = Array.length bounds
let rounds = 240

let fail format = Printf.ksprintf failwith format

(* The deployment capacity: 2 colors at 1/2 job/round each -> one
   resource per color, n = 2, supply 2000 mjobs/round. *)
let deployment () =
  match
    Rrs_workload.Demand.make ~name:"e22-deployment" ~n:2 ~delta ~speed:1
      (List.init colors (fun color ->
           { Rrs_workload.Demand.color; bound = bounds.(color); rate_num = 1;
             rate_den = 2; burst = 0 }))
  with
  | Ok spec -> spec
  | Error message -> fail "deployment spec: %s" message

type profile = {
  p_name : string;
  p_n : int;
  p_decl : Wire.decl;
  p_good : bool; (* honest, feasible, within its own n *)
}

let good name =
  { p_name = name; p_n = 2;
    p_decl = { Wire.d_rates = [| 1; 1 |]; d_den = 4; d_bursts = [||] };
    p_good = true }

let bad name =
  { p_name = name; p_n = 1;
    p_decl = { Wire.d_rates = [| 3; 3 |]; d_den = 4; d_bursts = [||] };
    p_good = false }

(* 4 good (4 x 500 = the whole supply), 4 bad, one late good that is
   per-session feasible but over the aggregate budget. *)
let offered =
  [ good "good-0"; good "good-1"; bad "bad-0"; bad "bad-1"; good "good-2";
    bad "bad-2"; good "good-3"; bad "bad-3"; good "late-good" ]

let call client frame =
  match Client.call client frame with
  | Ok reply -> reply
  | Error message -> fail "call: %s" message

(* Token-bucket arrivals of the declaration through round [r]:
   burst + floor ((r + 1) * num / den) per color — exactly the envelope
   the enforcing server polices, so honest traffic is never refused. *)
let request_at (decl : Wire.decl) r =
  let arrivals color =
    let cum r =
      if r < 0 then 0
      else
        (if Array.length decl.d_bursts = 0 then 0 else decl.d_bursts.(color))
        + ((r + 1) * decl.d_rates.(color) / decl.d_den)
    in
    cum r - cum (r - 1)
  in
  let pairs = ref [] in
  for color = colors - 1 downto 0 do
    let k = arrivals color in
    if k > 0 then pairs := (color, k) :: !pairs
  done;
  !pairs

type session_result = {
  s_admitted : bool;
  s_drops : int;
  s_execs : int;
  s_fed : int;
}

(* Try to open a session with its declaration. A rejected open must
   leave no session state behind. *)
let open_session client profile =
  let open_reply =
    call client
      (Wire.Open
         { session = profile.p_name; policy; delta; bounds; n = profile.p_n;
           speed = 1; horizon = 0; queue_limit = 0;
           decl = Some profile.p_decl })
  in
  match open_reply with
  | Wire.Admission_reject { session; message; _ } ->
      if session <> profile.p_name then
        fail "%s: reject names session %S" profile.p_name session;
      if String.length message = 0 then
        fail "%s: reject carries no constraint message" profile.p_name;
      (match call client (Wire.Stats { session = profile.p_name }) with
      | Wire.Error_frame _ -> ()
      | _ -> fail "%s: rejected open left session state" profile.p_name);
      false
  | Wire.Opened _ -> true
  | Wire.Error_frame { message } -> fail "%s: open: %s" profile.p_name message
  | _ -> fail "%s: unexpected reply to open" profile.p_name

(* Drive one admitted session through its declared traffic for [rounds]
   rounds (token-bucket exact, so the enforcing envelope never fires),
   leaving it open so its reservation stays charged against the
   deployment budget while later opens race for headroom. *)
let drive client profile =
  for r = 0 to rounds - 1 do
    (match request_at profile.p_decl r with
    | [] -> ()
    | pairs ->
        let colors_arr = Array.of_list (List.map fst pairs) in
        let counts_arr = Array.of_list (List.map snd pairs) in
        (match
           call client
             (Wire.Feed
                { session = profile.p_name; colors = colors_arr;
                  counts = counts_arr; decl = None })
         with
        | Wire.Fed _ -> ()
        | Wire.Admission_reject { message; _ } ->
            fail "%s: honest feed policed: %s" profile.p_name message
        | _ -> fail "%s: unexpected reply to feed" profile.p_name));
    match call client (Wire.Step { session = profile.p_name; rounds = 1 }) with
    | Wire.Stepped _ -> ()
    | _ -> fail "%s: unexpected reply to step" profile.p_name
  done

let finish client profile =
  let result =
    match call client (Wire.Stats { session = profile.p_name }) with
    | Wire.Stats_ok { fed; drops; execs; _ } ->
        { s_admitted = true; s_drops = drops; s_execs = execs; s_fed = fed }
    | _ -> fail "%s: stats reply was not stats_ok" profile.p_name
  in
  (match call client (Wire.Close { session = profile.p_name }) with
  | Wire.Closed _ -> ()
  | _ -> fail "%s: unexpected reply to close" profile.p_name);
  result

let metrics_gauge client name =
  match call client (Wire.Metrics { slow = 0 }) with
  | Wire.Metrics_ok { doc; _ } ->
      Json.opt_int_field (Json.parse_fields doc) name ~default:(-1)
  | _ -> fail "metrics: unexpected reply"

type mode_result = {
  m_mode : string;
  m_admitted : int;
  m_rejected : int;
  m_good_drops : int;
  m_bad_drops : int;
  m_execs : int;
  m_fed : int;
  m_headroom : int;
  m_wall : float;
}

let run_mode ~mode =
  let dir = Filename.temp_file "rrs-admission-bench" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let address = Server.Unix_socket (Filename.concat dir "sock") in
  let server =
    Server.start
      { (Server.default_config address) with domains = 2;
        admission = Some (deployment ()); admission_mode = mode }
  in
  Fun.protect
    ~finally:(fun () -> ignore (Server.stop ~drain:false server))
    (fun () ->
      let client = Client.connect address in
      let t0 = Clock.now_s () in
      (* All opens land before anything closes: every admitted session's
         reservation stays charged while later opens compete for the
         remaining headroom — the late over-budget open really does meet
         a full deployment. *)
      let opened = List.map (fun p -> (p, open_session client p)) offered in
      List.iter (fun (p, admitted) -> if admitted then drive client p) opened;
      (* Gauges read while the admitted set is still open, before close
         releases the reservations. *)
      let headroom =
        if mode = Admission.Off then -1
        else metrics_gauge client "admission_headroom_mjpr"
      in
      let rejected =
        if mode = Admission.Off then 0
        else metrics_gauge client "admission_rejected_total"
      in
      let results =
        List.map
          (fun (p, admitted) ->
            if admitted then (p, finish client p)
            else
              (p, { s_admitted = false; s_drops = 0; s_execs = 0; s_fed = 0 }))
          opened
      in
      let wall = Clock.elapsed_s t0 in
      Client.close client;
      let sum pred f =
        List.fold_left
          (fun acc (p, r) -> if pred p r then acc + f r else acc)
          0 results
      in
      {
        m_mode = Admission.mode_to_string mode;
        m_admitted = sum (fun _ r -> r.s_admitted) (fun _ -> 1);
        m_rejected = rejected;
        m_good_drops = sum (fun p r -> p.p_good && r.s_admitted) (fun r -> r.s_drops);
        m_bad_drops =
          sum (fun p r -> (not p.p_good) && r.s_admitted) (fun r -> r.s_drops);
        m_execs = sum (fun _ r -> r.s_admitted) (fun r -> r.s_execs);
        m_fed = sum (fun _ r -> r.s_admitted) (fun r -> r.s_fed);
        m_headroom = headroom;
        m_wall = wall;
      })

let check_expectations enforcing off =
  (* Enforcing: 4 good admitted; 4 infeasible + 1 over-budget rejected;
     admitted sessions drop nothing; the supply is fully promised. *)
  if enforcing.m_admitted <> 4 then
    fail "enforce admitted %d sessions, want 4" enforcing.m_admitted;
  if enforcing.m_rejected <> 5 then
    fail "enforce rejected %d opens, want 5" enforcing.m_rejected;
  if enforcing.m_good_drops <> 0 then
    fail "enforce: admitted sessions dropped %d job(s), want 0"
      enforcing.m_good_drops;
  (* Off: everything is admitted and the infeasible sessions degrade. *)
  if off.m_admitted <> List.length offered then
    fail "off admitted %d sessions, want %d" off.m_admitted
      (List.length offered);
  if off.m_bad_drops = 0 then
    fail "off: over-declared sessions dropped nothing — no overload?";
  if off.m_good_drops <> 0 then
    fail "off: good sessions dropped %d job(s), want 0 (sessions are \
          independent engines)"
      off.m_good_drops

let run ?json () =
  let enforcing = run_mode ~mode:Admission.Enforce in
  let off = run_mode ~mode:Admission.Off in
  check_expectations enforcing off;
  let table =
    Rrs_stats.Table.create
      ~title:
        (Printf.sprintf
           "E22 admission under overload (%d offered sessions, %d rounds, \
            policy %s)"
           (List.length offered) rounds policy)
      ~columns:
        [ "mode"; "admitted"; "rejected"; "good drops"; "bad drops"; "execs";
          "headroom" ]
  in
  List.iter
    (fun m ->
      Rrs_stats.Table.add_row table
        [
          m.m_mode;
          Rrs_stats.Table.cell_int m.m_admitted;
          Rrs_stats.Table.cell_int m.m_rejected;
          Rrs_stats.Table.cell_int m.m_good_drops;
          Rrs_stats.Table.cell_int m.m_bad_drops;
          Rrs_stats.Table.cell_int m.m_execs;
          Rrs_stats.Table.cell_int m.m_headroom;
        ])
    [ enforcing; off ];
  Rrs_stats.Table.print table;
  Option.iter
    (fun path ->
      let b =
        Rrs_stats.Bench_io.create ~tag:(Rrs_stats.Bench_io.tag_of_path path)
      in
      Rrs_stats.Bench_io.start_experiment b ~id:"E22"
        ~claim:
          "With the admission gate enforcing a capacity spec, opens whose \
           declared demand is infeasible for their own session or over the \
           deployment budget draw a typed admission_rejected (leaving no \
           session state) and every admitted session sustains its declared \
           load with zero drops; with the gate off, the same offered load \
           is accepted wholesale and the over-declared sessions degrade \
           into steady drops.";
      List.iter
        (fun m ->
          Rrs_stats.Bench_io.record b ~policy
            ~workload:(Printf.sprintf "admission-%s" m.m_mode)
            ~n:2 ~delta
            ~cost:(m.m_good_drops + m.m_bad_drops)
            ~reconfig_count:0
            ~drop_count:(m.m_good_drops + m.m_bad_drops)
            ~exec_count:m.m_execs ~wall_s:m.m_wall
            ~extras:
              [
                ("offered", List.length offered);
                ("admitted", m.m_admitted);
                ("rejected", m.m_rejected);
                ("good_drops", m.m_good_drops);
                ("bad_drops", m.m_bad_drops);
                ("fed", m.m_fed);
                ("headroom_mjpr", m.m_headroom);
                ("rounds", rounds);
              ]
            ())
        [ enforcing; off ];
      Rrs_stats.Bench_io.write b ~path;
      Format.eprintf "wrote %s@." path)
    json
