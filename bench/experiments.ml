(* Experiment tables E1-E16: one table per claim of the paper (the paper
   is theory-only, so each theorem/lemma/appendix construction is the
   "figure" we regenerate). See DESIGN.md section 4 and EXPERIMENTS.md. *)

module Instance = Rrs_sim.Instance
module Engine = Rrs_sim.Engine
module Ledger = Rrs_sim.Ledger
module Experiment = Rrs_stats.Experiment
module Summary = Rrs_stats.Summary
module Table = Rrs_stats.Table
module Bench_io = Rrs_stats.Bench_io
module Clock = Rrs_obs.Clock
module Adversary = Rrs_workload.Adversary
module Random_workloads = Rrs_workload.Random_workloads
module Instrument = Rrs_core.Instrument

(* When set, every experiment and engine run is also recorded into the
   machine-readable BENCH_*.json collector (see Bench_io). *)
let bench : Bench_io.t option ref = ref None

let section id claim =
  Option.iter (fun b -> Bench_io.start_experiment b ~id ~claim) !bench;
  Format.printf "@.---- %s: %s ----@." id claim

(* Run one policy under the engine, recording cost breakdown, wall clock,
   minor-heap allocation and (when collecting) the per-phase profile into
   the collector. *)
let recorded_run ?speed ?faults ~n ~policy instance =
  let module P = (val policy : Rrs_sim.Policy.POLICY) in
  let profile = !bench <> None in
  let minor0 = Gc.minor_words () in
  let t0 = Clock.now_s () in
  let result =
    Engine.run ?speed ?faults ~record_events:false ~profile ~n ~policy instance
  in
  let wall_s = Clock.elapsed_s t0 in
  let minor_words = Gc.minor_words () -. minor0 in
  Option.iter
    (fun b ->
      Bench_io.record b ~policy:P.name ~workload:instance.Instance.name ~n
        ~delta:instance.Instance.delta
        ~cost:(Ledger.total_cost result.Engine.ledger)
        ~reconfig_count:(Ledger.reconfig_count result.Engine.ledger)
        ~drop_count:(Ledger.drop_count result.Engine.ledger)
        ~exec_count:(Ledger.exec_count result.Engine.ledger)
        ~wall_s ~minor_words
        ?phases:(Option.map Rrs_obs.Profile.fields result.Engine.profile)
        ())
    !bench;
  result

let policy_cost ~n policy instance =
  Ledger.total_cost (recorded_run ~n ~policy instance).Engine.ledger

(* Experiment.run_policy with the same recording side channel. *)
let recorded_row ?speed ~n ~reference ~policy instance =
  let module P = (val policy : Rrs_sim.Policy.POLICY) in
  let minor0 = Gc.minor_words () in
  let t0 = Clock.now_s () in
  let row = Experiment.run_policy ?speed ~n ~reference ~policy instance in
  let wall_s = Clock.elapsed_s t0 in
  let minor_words = Gc.minor_words () -. minor0 in
  Option.iter
    (fun b ->
      Bench_io.record b ~policy:row.Experiment.algorithm
        ~workload:instance.Instance.name ~n ~delta:instance.Instance.delta
        ~cost:row.Experiment.cost ~reconfig_count:row.Experiment.reconfig_count
        ~drop_count:row.Experiment.drop_count ~wall_s ~minor_words ())
    !bench;
  row

let ratio cost denominator = float_of_int cost /. float_of_int (max denominator 1)

(* E1 — Appendix A: Delta-LRU's competitive ratio grows without bound;
   Delta-LRU-EDF stays flat on the same inputs. *)
let e1 () =
  section "E1"
    "Appendix A: dlru ratio grows like 2^(j+1)/(n*delta); dlru-edf stays O(1)";
  let n = 8 and delta = 2 in
  let table =
    Table.create ~title:"E1: lru-killer sweep (n=8, delta=2, k=j+3, OFF m=1)"
      ~columns:
        [ "j"; "dlru cost"; "dlru-edf cost"; "OFF cost"; "dlru ratio";
          "dlru-edf ratio"; "paper ratio" ]
  in
  List.iter
    (fun j ->
      let k = j + 3 in
      let adv = Adversary.lru_killer ~n ~delta ~j ~k in
      let dlru = policy_cost ~n (module Rrs_core.Policy_lru) adv.instance in
      let dlru_edf = policy_cost ~n (module Rrs_core.Policy_lru_edf) adv.instance in
      let paper =
        float_of_int ((n * delta) + (1 lsl k))
        /. float_of_int (delta + ((1 lsl (k - j - 1)) * n * delta))
      in
      Table.add_row table
        [
          Table.cell_int j;
          Table.cell_int dlru;
          Table.cell_int dlru_edf;
          Table.cell_int adv.off_cost;
          Table.cell_ratio (ratio dlru adv.off_cost);
          Table.cell_ratio (ratio dlru_edf adv.off_cost);
          Table.cell_ratio paper;
        ])
    [ 4; 5; 6; 7; 8 ];
  Table.print table

(* E2 — Appendix B: EDF's ratio grows with k - j; dlru-edf stays flat. *)
let e2 () =
  section "E2"
    "Appendix B: edf ratio grows like 2^(k-j-1)/(n/2+1); dlru-edf stays O(1)";
  let n = 8 and delta = 10 and j = 4 in
  let table =
    Table.create ~title:"E2: edf-killer sweep (n=8, delta=10, j=4, OFF m=1)"
      ~columns:
        [ "k-j"; "edf cost"; "edf reconfig"; "dlru-edf cost"; "OFF cost";
          "edf ratio"; "dlru-edf ratio"; "paper LB" ]
  in
  List.iter
    (fun k ->
      let adv = Adversary.edf_killer ~n ~delta ~j ~k in
      let edf_run =
        recorded_run ~n ~policy:(module Rrs_core.Policy_edf) adv.instance
      in
      let edf = Ledger.total_cost edf_run.ledger in
      let dlru_edf = policy_cost ~n (module Rrs_core.Policy_lru_edf) adv.instance in
      let paper =
        float_of_int (1 lsl (k - j - 1)) /. float_of_int ((n / 2) + 1)
      in
      Table.add_row table
        [
          Table.cell_int (k - j);
          Table.cell_int edf;
          Table.cell_int (Ledger.reconfig_cost edf_run.ledger);
          Table.cell_int dlru_edf;
          Table.cell_int adv.off_cost;
          Table.cell_ratio (ratio edf adv.off_cost);
          Table.cell_ratio (ratio dlru_edf adv.off_cost);
          Table.cell_ratio paper;
        ])
    [ 6; 7; 8; 9 ];
  Table.print table

let rate_limited_batch ~seed ~load =
  Random_workloads.uniform ~seed ~colors:12 ~delta:4 ~bound_log_range:(0, 4)
    ~horizon:256 ~load ~rate_limited:true ()

(* E3 — Theorem 1: dlru-edf with n = 8m is O(1)-competitive on
   rate-limited batched inputs. Ratios are against valid lower bounds, so
   they over-estimate the true competitive ratio. *)
let e3 () =
  section "E3"
    "Theorem 1: dlru-edf(n=8m) cost within a constant of OPT(m) on \
     rate-limited inputs";
  let m = 2 in
  let n = 8 * m in
  let table =
    Table.create ~title:"E3: random rate-limited, 5 seeds per load (m=2, n=16)"
      ~columns:
        [ "load"; "mean ratio"; "max ratio"; "mean cost"; "mean LB"; "mean greedy" ]
  in
  List.iter
    (fun load ->
      let rows =
        List.map
          (fun seed ->
            let instance = rate_limited_batch ~seed ~load in
            let reference = Experiment.reference ~m instance in
            let cost = policy_cost ~n (module Rrs_core.Policy_lru_edf) instance in
            ( ratio cost (Experiment.denominator reference),
              cost,
              reference.lower_bound,
              match reference.greedy_upper with Some g -> g | None -> 0 ))
          [ 1; 2; 3; 4; 5 ]
      in
      let ratios = List.map (fun (r, _, _, _) -> r) rows in
      let summary = Summary.of_floats ratios in
      let mean f = (Summary.of_ints (List.map f rows)).Summary.mean in
      Table.add_row table
        [
          Table.cell_float ~decimals:1 load;
          Table.cell_ratio summary.mean;
          Table.cell_ratio summary.max;
          Table.cell_float ~decimals:0 (mean (fun (_, c, _, _) -> c));
          Table.cell_float ~decimals:0 (mean (fun (_, _, lb, _) -> lb));
          Table.cell_float ~decimals:0 (mean (fun (_, _, _, g) -> g));
        ])
    [ 0.3; 0.6; 0.9; 1.2 ];
  Table.print table

(* E4 — Theorem 2: Distribute handles batched bursts; outer cost never
   exceeds the inner rate-limited run's cost (Lemma 4.2). *)
let e4 () =
  section "E4" "Theorem 2: Distribute on batched bursts (outer <= inner, Lemma 4.2)";
  let m = 2 in
  let n = 8 * m in
  let table =
    Table.create ~title:"E4: bursty batched inputs through Distribute (m=2, n=16)"
      ~columns:
        [ "load"; "seed"; "subcolors"; "outer cost"; "inner cost"; "vs LB" ]
  in
  List.iter
    (fun load ->
      List.iter
        (fun seed ->
          let instance =
            Random_workloads.uniform ~seed ~colors:8 ~delta:4
              ~bound_log_range:(0, 4) ~horizon:256 ~load ~rate_limited:false ()
          in
          match Rrs_core.Distribute.run ~n instance with
          | Error message -> Format.printf "E4 failed: %s@." message
          | Ok result ->
              let reference = Experiment.reference ~m instance in
              let outer = Rrs_core.Distribute.cost result in
              Table.add_row table
                [
                  Table.cell_float ~decimals:1 load;
                  Table.cell_int seed;
                  Table.cell_int (Instance.num_colors result.inner_instance);
                  Table.cell_int outer;
                  Table.cell_int (Ledger.total_cost result.inner.ledger);
                  Table.cell_ratio (ratio outer (Experiment.denominator reference));
                ])
        [ 1; 2 ])
    [ 2.0; 4.0; 8.0 ];
  Table.print table

(* E5 — Theorem 3: VarBatch on general arrivals with arbitrary bounds. *)
let e5 () =
  section "E5" "Theorem 3: VarBatch on unbatched arbitrary-bound inputs";
  let m = 2 in
  let n = 8 * m in
  let table =
    Table.create ~title:"E5: unbatched inputs through VarBatch (m=2, n=16)"
      ~columns:[ "load"; "mean ratio"; "max ratio"; "mean cost"; "mean LB" ]
  in
  List.iter
    (fun load ->
      let rows =
        List.filter_map
          (fun seed ->
            let instance =
              Random_workloads.unbatched ~seed ~colors:10 ~delta:4
                ~bound_range:(3, 40) ~horizon:256 ~load ()
            in
            match Rrs_core.Var_batch.run ~n instance with
            | Error _ -> None
            | Ok result ->
                let reference = Experiment.reference ~m instance in
                let cost = Rrs_core.Var_batch.cost result in
                Some
                  (ratio cost (Experiment.denominator reference), cost,
                   reference.lower_bound))
          [ 1; 2; 3; 4; 5 ]
      in
      let summary = Summary.of_floats (List.map (fun (r, _, _) -> r) rows) in
      let mean f = (Summary.of_ints (List.map f rows)).Summary.mean in
      Table.add_row table
        [
          Table.cell_float ~decimals:1 load;
          Table.cell_ratio summary.mean;
          Table.cell_ratio summary.max;
          Table.cell_float ~decimals:0 (mean (fun (_, c, _) -> c));
          Table.cell_float ~decimals:0 (mean (fun (_, _, lb) -> lb));
        ])
    [ 0.3; 0.6; 1.0 ];
  Table.print table

(* E6 — Lemma 3.2: eligible drops of dlru-edf(8m) <= drops of par-edf(m)
   <= DropCost(OFF_m). *)
let e6 () =
  section "E6" "Lemma 3.2: eligible drops(dlru-edf, 8m) <= drops(par-edf, m)";
  let m = 2 in
  let n = 8 * m in
  let table =
    Table.create ~title:"E6: drop-cost chain on rate-limited inputs (m=2, n=16)"
      ~columns:
        [ "load"; "seed"; "eligible drops"; "par-edf drops"; "holds" ]
  in
  List.iter
    (fun load ->
      List.iter
        (fun seed ->
          let instance = rate_limited_batch ~seed ~load in
          let result =
            recorded_run ~n ~policy:(module Rrs_core.Policy_lru_edf) instance
          in
          let eligible = Instrument.eligible_drops result.Engine.stats in
          let par = Rrs_core.Par_edf.drop_cost ~m instance in
          Table.add_row table
            [
              Table.cell_float ~decimals:1 load;
              Table.cell_int seed;
              Table.cell_int eligible;
              Table.cell_int par;
              (if eligible <= par then "yes" else "VIOLATED");
            ])
        [ 1; 2 ])
    [ 0.6; 1.0; 1.4 ];
  Table.print table

(* E7 — Lemmas 3.3 / 3.4: reconfiguration and ineligible-drop costs
   against their epoch bounds. *)
let e7 () =
  section "E7"
    "Lemmas 3.3/3.4: reconfig <= 4*epochs*delta; ineligible drops <= epochs*delta";
  let n = 16 in
  let table =
    Table.create ~title:"E7: epoch bounds on dlru-edf (n=16)"
      ~columns:
        [ "workload"; "epochs"; "reconfig cost"; "4*epochs*delta";
          "inelig drops"; "epochs*delta" ]
  in
  let workloads =
    [
      ("uniform-0.6", rate_limited_batch ~seed:11 ~load:0.6);
      ("uniform-1.2", rate_limited_batch ~seed:11 ~load:1.2);
      ( "bursty",
        Random_workloads.bursty ~seed:11 ~colors:12 ~delta:4
          ~bound_log_range:(0, 4) ~horizon:256 ~load:1.0 ~churn:0.3
          ~rate_limited:true () );
      ( "lru-killer",
        (Adversary.lru_killer ~n:16 ~delta:2 ~j:6 ~k:9).instance );
    ]
  in
  List.iter
    (fun (name, instance) ->
      let delta = instance.Instance.delta in
      let result =
        recorded_run ~n ~policy:(module Rrs_core.Policy_lru_edf) instance
      in
      Table.add_row table
        [
          name;
          Table.cell_int (Instrument.num_epochs result.stats);
          Table.cell_int (Ledger.reconfig_cost result.ledger);
          Table.cell_int (Instrument.lemma_3_3_bound ~delta result.stats);
          Table.cell_int (Instrument.ineligible_drops result.stats);
          Table.cell_int (Instrument.lemma_3_4_bound ~delta result.stats);
        ])
    workloads;
  Table.print table

(* E8 — Resource augmentation sweep: how much augmentation the solver
   needs before the ratio flattens. *)
let e8 () =
  section "E8" "Resource augmentation: solver ratio vs n/m";
  let m = 2 in
  let table =
    Table.create ~title:"E8: augmentation sweep (uniform load 0.9, m=2, 3 seeds)"
      ~columns:[ "n/m"; "mean ratio"; "mean cost"; "mean drops" ]
  in
  let seeds = [ 31; 32; 33 ] in
  List.iter
    (fun factor ->
      let rows =
        List.filter_map
          (fun seed ->
            let instance = rate_limited_batch ~seed ~load:0.9 in
            let reference = Experiment.reference ~m instance in
            let minor0 = Gc.minor_words () in
            let t0 = Clock.now_s () in
            match Experiment.run_solver ~n:(factor * m) ~reference instance with
            | Ok row ->
                Option.iter
                  (fun b ->
                    Bench_io.record b ~policy:row.Experiment.algorithm
                      ~workload:instance.Instance.name ~n:(factor * m)
                      ~delta:instance.Instance.delta ~cost:row.Experiment.cost
                      ~reconfig_count:row.Experiment.reconfig_count
                      ~drop_count:row.Experiment.drop_count
                      ~wall_s:(Clock.elapsed_s t0)
                      ~minor_words:(Gc.minor_words () -. minor0)
                      ())
                  !bench;
                Some row
            | Error _ -> None)
          seeds
      in
      let mean f = (Summary.of_ints (List.map f rows)).Summary.mean in
      Table.add_row table
        [
          Table.cell_int factor;
          Table.cell_ratio
            (Summary.of_floats (List.map (fun (r : Experiment.row) -> r.ratio) rows))
              .Summary.mean;
          Table.cell_float ~decimals:0 (mean (fun r -> r.Experiment.cost));
          Table.cell_float ~decimals:0 (mean (fun r -> r.Experiment.drop_count));
        ])
    [ 1; 2; 4; 8; 16 ];
  Table.print table

(* E9 — Intro motivation scenario: dlru underutilizes, edf thrashes,
   dlru-edf balances. *)
let e9 () =
  section "E9" "Intro scenario: thrashing vs underutilization";
  let instance =
    Adversary.motivation ~seed:11 ~short_colors:8 ~short_bound_log:3
      ~long_bound_log:10 ~delta:4 ~burst_probability:0.6 ()
  in
  let reference = Experiment.reference ~m:2 instance in
  let table =
    Table.create
      ~title:"E9: motivation workload (8 bursty short colors + 1024-job backlog, m=2)"
      ~columns:[ "n"; "policy"; "cost"; "reconfig cost"; "drops"; "vs LB" ]
  in
  List.iter
    (fun n ->
      List.iter
        (fun (name, policy) ->
          let row = recorded_row ~n ~reference ~policy instance in
          Table.add_row table
            [
              Table.cell_int n;
              name;
              Table.cell_int row.cost;
              Table.cell_int (instance.Instance.delta * row.reconfig_count);
              Table.cell_int row.drop_count;
              Table.cell_ratio row.ratio;
            ])
        Experiment.standard_policies)
    [ 8; 16 ];
  Table.print table

(* E10 — Cost breakdown on the domain scenarios. *)
let e10 () =
  section "E10" "Cost breakdown on data-center and router scenarios";
  let scenarios =
    [
      ( "datacenter",
        Rrs_workload.Scenarios.datacenter ~seed:42 ~services:12 ~delta:6
          ~phases:4 ~phase_length:128 () );
      ( "router",
        Rrs_workload.Scenarios.router ~seed:7 ~classes:10 ~delta:5 ~horizon:512
          ~utilization:0.8 ~n_ref:4 () );
    ]
  in
  let table =
    Table.create ~title:"E10: scenarios (n=16, m=2)"
      ~columns:[ "scenario"; "policy"; "cost"; "reconfig%"; "drop%"; "vs LB" ]
  in
  List.iter
    (fun (scenario, instance) ->
      let reference = Experiment.reference ~m:2 instance in
      List.iter
        (fun (name, policy) ->
          let row = recorded_row ~n:16 ~reference ~policy instance in
          let reconfig_cost = instance.Instance.delta * row.reconfig_count in
          let pct part = 100.0 *. float_of_int part /. float_of_int (max row.cost 1) in
          Table.add_row table
            [
              scenario;
              name;
              Table.cell_int row.cost;
              Printf.sprintf "%.0f%%" (pct reconfig_cost);
              Printf.sprintf "%.0f%%" (pct row.drop_count);
              Table.cell_ratio row.ratio;
            ])
        Experiment.standard_policies)
    scenarios;
  Table.print table

(* E12 — the offline constructions: Aggregate (Lemma 4.1) and the
   punctual schedule of Lemma 5.3 preserve executions at constant-factor
   reconfiguration cost. *)
let e12 () =
  section "E12"
    "Lemmas 4.1/5.3: Aggregate & Punctualize preserve executions at O(1) cost";
  let module OS = Rrs_offline.Offline_schedule in
  let table =
    Table.create ~title:"E12: offline constructions"
      ~columns:
        [ "construction"; "input"; "execs in"; "execs out"; "reconfig in";
          "reconfig out"; "resources" ]
  in
  (* Aggregate over thrashy EDF schedules on bursty batched inputs. *)
  List.iter
    (fun seed ->
      let instance =
        Random_workloads.bursty ~seed ~colors:6 ~delta:2 ~bound_log_range:(0, 4)
          ~horizon:96 ~load:2.0 ~churn:0.4 ~rate_limited:false ()
      in
      let run =
        Engine.run ~record_events:true ~n:4 ~policy:(module Rrs_core.Policy_edf)
          instance
      in
      let schedule = Rrs_sim.Schedule.of_run ~instance ~n:4 ~speed:1 run.ledger in
      let grid = OS.of_schedule schedule in
      match Rrs_offline.Aggregate.run grid with
      | Error message -> Format.printf "E12 aggregate failed: %s@." message
      | Ok result ->
          Table.add_row table
            [
              "aggregate";
              Printf.sprintf "bursty seed=%d" seed;
              Table.cell_int (OS.exec_count grid);
              Table.cell_int (OS.exec_count result.output);
              Table.cell_int (OS.reconfig_count grid);
              Table.cell_int (OS.reconfig_count result.output);
              Printf.sprintf "%d->%d" grid.OS.m result.output.OS.m;
            ])
    [ 1; 2; 3 ];
  (* Punctualize over greedy schedules on jittered pow2 inputs. *)
  List.iter
    (fun seed ->
      let base =
        Random_workloads.uniform ~seed ~colors:5 ~delta:3 ~bound_log_range:(1, 4)
          ~horizon:96 ~load:0.7 ~rate_limited:true ()
      in
      let rng = Rrs_workload.Gen.create ~seed:(seed * 13) in
      let instance =
        Instance.make
          ~name:(Printf.sprintf "jittered-%d" seed)
          ~delta:3 ~bounds:base.Instance.bounds
          ~arrivals:
            (List.map
               (fun (round, request) ->
                 (round + Rrs_workload.Gen.int rng 3, request))
               (Instance.nonempty_arrivals base))
          ()
      in
      match Rrs_offline.Greedy_offline.run ~m:2 instance with
      | Error message -> Format.printf "E12 greedy failed: %s@." message
      | Ok { schedule; _ } -> (
          let grid = OS.of_schedule schedule in
          match Rrs_offline.Punctualize.punctual_schedule grid with
          | Error message -> Format.printf "E12 punctualize failed: %s@." message
          | Ok out ->
              Table.add_row table
                [
                  "punctualize";
                  Printf.sprintf "jittered seed=%d" seed;
                  Table.cell_int (OS.exec_count grid);
                  Table.cell_int (OS.exec_count out);
                  Table.cell_int (OS.reconfig_count grid);
                  Table.cell_int (OS.reconfig_count out);
                  Printf.sprintf "%d->%d" grid.OS.m out.OS.m;
                ]))
    [ 1; 2; 3 ];
  Table.print table

(* E13 — Corollary 3.1 chain: drops(DS-Seq-EDF_m) <= drops(Par-EDF_m). *)
let e13 () =
  section "E13" "Corollary 3.1: drops(ds-seq-edf, m) <= drops(par-edf, m)";
  let table =
    Table.create ~title:"E13: reference-scheduler drop chain"
      ~columns:[ "workload"; "m"; "ds-seq-edf drops"; "par-edf drops"; "holds" ]
  in
  List.iter
    (fun (name, instance) ->
      List.iter
        (fun m ->
          let ds =
            recorded_run ~speed:2 ~n:m ~policy:(module Rrs_core.Seq_edf)
              instance
          in
          let ds_drops = Ledger.drop_count ds.Engine.ledger in
          let par = Rrs_core.Par_edf.drop_cost ~m instance in
          Table.add_row table
            [
              name;
              Table.cell_int m;
              Table.cell_int ds_drops;
              Table.cell_int par;
              (if ds_drops <= par then "yes" else "VIOLATED");
            ])
        [ 1; 2; 4 ])
    [
      ("uniform-0.9", rate_limited_batch ~seed:3 ~load:0.9);
      ("uniform-1.4", rate_limited_batch ~seed:3 ~load:1.4);
      ( "router",
        Rrs_workload.Scenarios.router ~seed:7 ~classes:10 ~delta:5 ~horizon:256
          ~utilization:0.9 ~n_ref:4 () );
    ];
  Table.print table

(* E14 — ablation: vary the LRU/EDF split of ΔLRU-EDF, and compare the
   LRU-2 recency baseline. Share 1.0 degenerates to ΔLRU (dies on the
   Appendix A input), share 0.0 to sticky EDF (dies on the Appendix B
   input); only the combination survives both. *)
let e14 () =
  section "E14"
    "Ablation: LRU/EDF cache split (1.0 = pure LRU, 0.0 = pure EDF) + LRU-2";
  let n = 8 in
  let workloads =
    [
      ("lru-killer", (Adversary.lru_killer ~n ~delta:2 ~j:6 ~k:9).instance,
       (Adversary.lru_killer ~n ~delta:2 ~j:6 ~k:9).off_cost);
      ("edf-killer", (Adversary.edf_killer ~n ~delta:10 ~j:4 ~k:8).instance,
       (Adversary.edf_killer ~n ~delta:10 ~j:4 ~k:8).off_cost);
    ]
  in
  let policies =
    List.map
      (fun share -> Rrs_core.Lru_edf_core.with_share share)
      [ 0.0; 0.25; 0.5; 0.75; 1.0 ]
    @ [ (module Rrs_core.Policy_lru_k : Rrs_sim.Policy.POLICY) ]
  in
  let table =
    Table.create ~title:"E14: cache-split ablation (n=8, OFF m=1)"
      ~columns:[ "policy"; "lru-killer cost"; "vs OFF"; "edf-killer cost"; "vs OFF" ]
  in
  List.iter
    (fun policy ->
      let module P = (val policy : Rrs_sim.Policy.POLICY) in
      let cells =
        List.concat_map
          (fun (_, instance, off) ->
            let cost = policy_cost ~n policy instance in
            [ Table.cell_int cost; Table.cell_ratio (ratio cost off) ])
          workloads
      in
      Table.add_row table (P.name :: cells))
    policies;
  Table.print table

(* E15 — the value of reconfiguration: the clairvoyant *static*
   partitioning baseline vs the online reconfigurable algorithm. Static
   is fine when the mix is stationary and collapses when it shifts — the
   paper's Section 1 motivation, quantified. *)

(* 24 services, phases of 128 rounds; in phase p services 4p..4p+3 are
   hot (bound 8, ~6 jobs per batch). Each phase fits 8 resources; the
   union of hot sets does not fit any static 8. *)
let rotating_hot_set ~delta =
  let services = 24 and phase_length = 128 and phases = 6 in
  let bounds = Array.make services 8 in
  let arrivals = ref [] in
  for phase = 0 to phases - 1 do
    for slot = 0 to 3 do
      let service = (4 * phase) + slot in
      let round = ref (phase * phase_length) in
      while !round < (phase + 1) * phase_length do
        arrivals := (!round, [ (service, 6) ]) :: !arrivals;
        round := !round + bounds.(service)
      done
    done
  done;
  Instance.make
    ~name:(Printf.sprintf "rotating-hot-set(delta=%d)" delta)
    ~delta ~bounds ~arrivals:(List.rev !arrivals) ()

let e15 () =
  section "E15"
    "Static partitioning vs reconfigurable scheduling (the paper's motivation)";
  let n = 8 in
  let table =
    Table.create ~title:"E15: static (clairvoyant, n=8) vs dlru-edf (online, n=8)"
      ~columns:
        [ "workload"; "static cost"; "static drops"; "dlru-edf cost";
          "dlru-edf drops"; "static/dlru-edf" ]
  in
  let workloads =
    [
      (* Fewer colors than resources: static trivially covers everything. *)
      ( "stationary, 6 colors",
        Random_workloads.uniform ~seed:5 ~colors:6 ~delta:4
          ~bound_log_range:(0, 4) ~horizon:512 ~load:0.8 ~rate_limited:true () );
      (* Rotating hot set: 24 services, only 4 hot per phase (so each
         phase fits in n = 8 resources), but the union does not fit any
         static choice of 8. The reconfiguration price delta decides the
         margin — the crossover. *)
      ("rotating hot set, delta=1", rotating_hot_set ~delta:1);
      ("rotating hot set, delta=4", rotating_hot_set ~delta:4);
      ("rotating hot set, delta=16", rotating_hot_set ~delta:16);
      ( "oversaturated bursty, delta=4",
        Random_workloads.bursty ~seed:9 ~colors:32 ~delta:4
          ~bound_log_range:(0, 4) ~horizon:512 ~load:1.0 ~churn:0.4
          ~rate_limited:true () );
    ]
  in
  List.iter
    (fun (name, instance) ->
      match Rrs_offline.Static_offline.run ~m:n instance with
      | Error message -> Format.printf "E15 static failed: %s@." message
      | Ok static ->
          Option.iter
            (fun b ->
              Bench_io.record b ~policy:"static-offline"
                ~workload:instance.Instance.name ~n
                ~delta:instance.Instance.delta ~cost:static.Rrs_offline.Static_offline.cost
                ~reconfig_count:(Rrs_sim.Schedule.reconfig_count static.schedule)
                ~drop_count:(Rrs_sim.Schedule.drop_count static.schedule) ())
            !bench;
          let dynamic =
            recorded_run ~n ~policy:(module Rrs_core.Policy_lru_edf) instance
          in
          let dynamic_cost = Ledger.total_cost dynamic.Engine.ledger in
          Table.add_row table
            [
              name;
              Table.cell_int static.cost;
              Table.cell_int (Rrs_sim.Schedule.drop_count static.schedule);
              Table.cell_int dynamic_cost;
              Table.cell_int (Ledger.drop_count dynamic.ledger);
              Table.cell_ratio (ratio static.cost dynamic_cost);
            ])
    workloads;
  Table.print table

(* E16 — extension: the companion problem [Δ | c_l | D | D] (uniform
   bounds, variable drop costs — the titled SPAA 2006 paper's setting).
   A Landlord-style weight-aware policy vs the weight-blind algorithms,
   on tiered workloads where a few sparse colors carry most of the value. *)
let e16 () =
  section "E16"
    "Companion problem [delta | c_l | D | D]: weight-aware Landlord vs \
     weight-blind policies";
  let table =
    Table.create
      ~title:"E16: tiered drop costs (1 precious color x cost, 5 cheap; n=16)"
      ~columns:
        [ "precious cost"; "landlord"; "dlru-edf"; "dlru"; "edf"; "weighted LB" ]
  in
  List.iter
    (fun precious_cost ->
      let w =
        Rrs_uniform.Weighted_workloads.tiered ~seed:3 ~colors:6 ~delta:8 ~bound:8
          ~horizon:512 ~load:0.5 ~precious:1 ~precious_cost ()
      in
      let cost policy = Rrs_uniform.Weighted.run_policy ~n:16 ~policy w in
      Table.add_row table
        [
          Table.cell_int precious_cost;
          Table.cell_int
            (cost
               (Rrs_uniform.Landlord.policy
                  ~drop_costs:w.Rrs_uniform.Weighted.drop_costs));
          Table.cell_int (cost (module Rrs_core.Policy_lru_edf));
          Table.cell_int (cost (module Rrs_core.Policy_lru));
          Table.cell_int (cost (module Rrs_core.Policy_edf));
          Table.cell_int (Rrs_uniform.Weighted.lower_bound w);
        ])
    [ 1; 10; 100; 1000 ];
  Table.print table

(* E17 — robustness extension (not a paper claim): graceful degradation
   under injected location crashes. Sweeping the stationary offline
   fraction shows drop counts rising with lost capacity while the
   competitive ordering of the policies is preserved — the schedulers
   degrade, they do not collapse. Plans come from the seeded generator,
   so every cell is reproducible from (workload seed, fault seed). *)
let e17 () =
  section "E17"
    "Fault injection: drops grow smoothly with crash density; dlru-edf \
     stays ahead of the greedy baselines";
  let n = 8 in
  let instance =
    Random_workloads.uniform ~seed:11 ~colors:8 ~delta:4
      ~bound_log_range:(2, 4) ~horizon:512 ~load:0.7 ~rate_limited:true ()
  in
  let policies =
    [
      ("dlru-edf", (module Rrs_core.Policy_lru_edf : Rrs_sim.Policy.POLICY));
      ("dlru", (module Rrs_core.Policy_lru));
      ("edf", (module Rrs_core.Policy_edf));
    ]
  in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "E17: cost (drops) vs crash density, %s, n=%d, fault seed 17"
           instance.Instance.name n)
      ~columns:
        ("density" :: "offline lr"
        :: List.map (fun (name, _) -> name) policies)
  in
  List.iter
    (fun density ->
      let faults =
        if density = 0.0 then None
        else
          Some
            (Rrs_workload.Fault_gen.random ~seed:17 ~n
               ~horizon:instance.Instance.horizon ~crash_density:density
               ~mean_outage:8 ())
      in
      let offline =
        match faults with
        | None -> 0
        | Some plan -> Rrs_sim.Fault.offline_location_rounds plan
      in
      Table.add_row table
        (Printf.sprintf "%.2f" density
        :: Table.cell_int offline
        :: List.map
             (fun (_, policy) ->
               let ledger =
                 (recorded_run ?faults ~n ~policy instance).Engine.ledger
               in
               Printf.sprintf "%d (%d)" (Ledger.total_cost ledger)
                 (Ledger.drop_count ledger))
             policies))
    [ 0.0; 0.05; 0.1; 0.2; 0.4 ];
  Table.print table

(* [run_all ?json ()] regenerates every claim table; with [json] set, the
   same results are also serialized to that path as a BENCH_*.json
   document (schema: Bench_io.schema_version). *)
let run_all ?json () =
  bench := Option.map (fun path -> Bench_io.create ~tag:(Bench_io.tag_of_path path)) json;
  e1 ();
  e2 ();
  e3 ();
  e4 ();
  e5 ();
  e6 ();
  e7 ();
  e8 ();
  e9 ();
  e10 ();
  e12 ();
  e13 ();
  e14 ();
  e15 ();
  e16 ();
  e17 ();
  (match (!bench, json) with
  | Some b, Some path ->
      Bench_io.write b ~path;
      Format.printf "@.wrote %s@." path
  | _ -> ());
  bench := None
