(* E21 — crash-failover recovery (sharded serving under kill -9).

   Topology: a real shard set — N child *processes* (this same binary
   re-exec'd in [shard_child] mode, each an rrs session server with
   autosnap on its own snapshot directory) behind an in-process
   consistent-hash router, supervised with restart backoff. S client
   domains drive closed-loop sessions through the router; once every
   session has made [warmup] acknowledged rounds, the harness kill -9s
   the shard process owning at least one session and keeps driving.

   Measured:
     - recovery_ms: kill to the first acknowledged step on an affected
       session (supervisor restart + snapshot restore + router
       re-admission, observed from the client side);
     - lost rounds: per affected session, acknowledged-round high-water
       mark minus the round the restored shard resumed at — bounded by
       the checkpoint interval K (autosnap writes at every checkpoint
       boundary), asserted [<= K];
     - surviving-shard service: sessions on the other shard(s) must see
       zero errors for the whole window, and their p99 is reported
       next to a pre-kill baseline p99;
     - the router must never hang: every reply (success or clean
       error) lands within the client deadline; a single deadline
       expiry fails the bench.

   Any violation exits non-zero, so CI can gate on it. *)

module Server = Rrs_server.Server
module Client = Rrs_server.Client
module Wire = Rrs_server.Wire
module Router = Rrs_server.Router
module Shard = Rrs_server.Shard
module Clock = Rrs_obs.Clock

let policy = "dlru-edf"
let bounds = [| 2; 3; 4; 6; 8; 12; 16; 24 |]
let colors = Array.length bounds
let delta = 4
let n = 8

let fail format = Printf.ksprintf failwith format

(* ---- child mode: one shard process ------------------------------- *)

(* Re-exec'd as [main.exe shard-child --socket S --snap-dir D
   --checkpoint-every K]: a plain session server that the supervisor
   can kill -9 and restart. Runs until SIGTERM (the supervisor's
   graceful stop). *)
let shard_child args =
  let socket = ref "" and snap_dir = ref "" and checkpoint_every = ref 0 in
  let rec parse = function
    | [] -> ()
    | "--socket" :: v :: rest -> socket := v; parse rest
    | "--snap-dir" :: v :: rest -> snap_dir := v; parse rest
    | "--checkpoint-every" :: v :: rest ->
        checkpoint_every := int_of_string v;
        parse rest
    | arg :: _ -> fail "shard-child: unexpected argument %S" arg
  in
  parse args;
  if !socket = "" || !snap_dir = "" then
    fail "shard-child: --socket and --snap-dir are required";
  Rrs_server.Slog.set_level Rrs_server.Slog.Warn;
  let config =
    {
      (Server.default_config (Server.Unix_socket !socket)) with
      snap_dir = Some !snap_dir;
      domains = 2;
      checkpoint_every = !checkpoint_every;
      autosnap = true;
    }
  in
  ignore (Server.serve config);
  exit 0

(* ---- closed-loop client ------------------------------------------ *)

type outcome = {
  o_at : float; (* wall clock, seconds *)
  o_ok : bool;
  o_round : int; (* acked round for a successful step, else 0 *)
  o_latency_us : int;
  o_deadline : bool; (* the client deadline itself expired *)
}

type client_result = {
  c_session : string;
  c_outcomes : outcome list; (* step outcomes, oldest first *)
  c_errors : int; (* failed feed/step calls *)
  c_stats : Wire.frame option; (* final stats_ok, if reachable *)
}

(* Feed one round's arrivals then step once, [rounds] times, through
   the router. Errors (shard down mid-failover) are recorded and the
   loop keeps going — exactly what a resilient client does. *)
let drive address ~session ~seed ~rounds ~deadline_ms ~acked =
  let client = Client.connect address in
  (match Client.negotiate client ~wire:2 with
  | Ok () -> ()
  | Error message -> fail "%s: negotiate: %s" session message);
  let random = Random.State.make [| 0xE21; seed |] in
  let outcomes = ref [] in
  let errors = ref 0 in
  let call frame =
    let t0 = Clock.now_ns () in
    let reply = Client.call ~deadline_ms client frame in
    let dt_us =
      Int64.to_int (Int64.div (Int64.sub (Clock.now_ns ()) t0) 1000L)
    in
    (reply, dt_us)
  in
  (match
     call
       (Wire.Open
          { session; policy; delta; bounds; n; speed = 1; horizon = 0;
            queue_limit = 0; decl = None })
   with
  | (Ok (Wire.Opened _), _) -> ()
  | (Ok (Wire.Error_frame { message }), _) -> fail "%s: open: %s" session message
  | (Ok _, _) -> fail "%s: unexpected reply to open" session
  | (Error message, _) -> fail "%s: open: %s" session message);
  for _ = 1 to rounds do
    let counts = Array.make colors 0 in
    for _ = 1 to n do
      let c = Random.State.int random colors in
      counts.(c) <- counts.(c) + 1
    done;
    let colors_arr =
      Array.of_seq
        (Seq.filter (fun c -> counts.(c) > 0) (Seq.init colors (fun c -> c)))
    in
    let counts_arr = Array.map (fun c -> counts.(c)) colors_arr in
    (match call (Wire.Feed { session; colors = colors_arr; counts = counts_arr; decl = None })
     with
    | (Ok (Wire.Fed _ | Wire.Shed _), _) -> ()
    | (Ok _, _) | (Error _, _) -> incr errors);
    let now = Unix.gettimeofday () in
    (match call (Wire.Step { session; rounds = 1 }) with
    | (Ok (Wire.Stepped { round; _ }), dt) ->
        Atomic.set acked round;
        outcomes :=
          { o_at = now; o_ok = true; o_round = round; o_latency_us = dt;
            o_deadline = false }
          :: !outcomes
    | (Ok _, dt) ->
        incr errors;
        outcomes :=
          { o_at = now; o_ok = false; o_round = 0; o_latency_us = dt;
            o_deadline = false }
          :: !outcomes;
        (* Back off instead of hot-spinning against a dead shard. *)
        Unix.sleepf 0.01
    | (Error message, dt) ->
        incr errors;
        outcomes :=
          { o_at = now; o_ok = false; o_round = 0; o_latency_us = dt;
            o_deadline =
              (* A client-deadline expiry means something hung past its
                 budget — the one thing the router must never do. *)
              (String.length message >= 8 && String.sub message 0 8 = "deadline");
          }
          :: !outcomes;
        Unix.sleepf 0.01)
  done;
  let stats =
    match call (Wire.Stats { session }) with
    | (Ok (Wire.Stats_ok _ as s), _) -> Some s
    | _ -> None
  in
  Client.close client;
  { c_session = session; c_outcomes = List.rev !outcomes; c_errors = !errors;
    c_stats = stats }

let check_conservation result =
  match result.c_stats with
  | Some
      (Wire.Stats_ok
         { session; pending; buffered; fed; accepted; shed; execs; drops; _ })
    ->
      if fed <> accepted + shed then
        fail "%s: conservation violated: fed %d <> accepted %d + shed %d"
          session fed accepted shed;
      if accepted <> execs + drops + pending + buffered then
        fail
          "%s: conservation violated: accepted %d <> execs %d + drops %d + \
           pending %d + buffered %d"
          session accepted execs drops pending buffered
  | Some _ | None -> fail "%s: no final stats" result.c_session

let percentile_us sorted p =
  if Array.length sorted = 0 then 0
  else
    let index =
      int_of_float (ceil (p *. float_of_int (Array.length sorted))) - 1
    in
    sorted.(max 0 (min index (Array.length sorted - 1)))

let rm_rf dir =
  let rec go path =
    if Sys.is_directory path then begin
      Array.iter (fun e -> go (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path
  in
  if Sys.file_exists dir then go dir

(* ---- the experiment ---------------------------------------------- *)

let run ?json ?(sessions = 8) ?(rounds = 240) ?(checkpoint_every = 8)
    ?(warmup = 40) () =
  let dir = Filename.temp_file "rrs-failover" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  Rrs_server.Slog.set_level Rrs_server.Slog.Error;
  let shard_count = 2 in
  let shard_sock i = Filename.concat dir (Printf.sprintf "shard-%d.sock" i) in
  let shard_snaps i = Filename.concat dir (Printf.sprintf "shard-%d.snaps" i) in
  let specs =
    List.init shard_count (fun i ->
        Unix.mkdir (shard_snaps i) 0o700;
        {
          Shard.sp_label = Printf.sprintf "shard-%d" i;
          sp_argv =
            [|
              Sys.executable_name; "shard-child"; "--socket"; shard_sock i;
              "--snap-dir"; shard_snaps i; "--checkpoint-every";
              string_of_int checkpoint_every;
            |];
        })
  in
  let supervisor = Shard.start ~base_backoff_ms:50 ~stable_after_s:5. specs in
  let stop_supervising = Atomic.make false in
  let supervisor_domain =
    Domain.spawn (fun () ->
        Shard.run supervisor ~stop:(fun () -> Atomic.get stop_supervising))
  in
  (* Wait for every shard to answer before opening the front door. *)
  List.iteri
    (fun i _ ->
      let deadline = Unix.gettimeofday () +. 10. in
      let rec wait () =
        match
          Client.try_connect ~timeout_ms:200 (Server.Unix_socket (shard_sock i))
        with
        | Ok probe -> Client.close probe
        | Error message ->
            if Unix.gettimeofday () >= deadline then
              fail "shard %d never came up: %s" i message
            else begin
              Unix.sleepf 0.05;
              wait ()
            end
      in
      wait ())
    specs;
  let front = Server.Unix_socket (Filename.concat dir "front.sock") in
  let router_shards =
    List.init shard_count (fun i ->
        {
          Router.shard_label = Printf.sprintf "shard-%d" i;
          shard_address = Server.Unix_socket (shard_sock i);
        })
  in
  let router =
    Router.start
      {
        (Router.default_config ~address:front ~shards:router_shards) with
        Router.timeout_ms = 500;
        connect_timeout_ms = 300;
        fail_threshold = 1;
        probe_interval_ms = 25;
      }
  in
  let session_name i = Printf.sprintf "fo-%d" i in
  (* Ring ownership is deterministic, so pick the victim up front: the
     shard owning session fo-0. Sessions on the other shard(s) are the
     bystanders whose service must not degrade. *)
  let owner i = Router.shard_of_session router (session_name i) in
  let victim = owner 0 in
  let affected =
    List.filter (fun i -> owner i = victim) (List.init sessions Fun.id)
  in
  let surviving =
    List.filter (fun i -> owner i <> victim) (List.init sessions Fun.id)
  in
  let deadline_ms = 2_000 in
  let acked = Array.init sessions (fun _ -> Atomic.make 0) in
  let t_kill = Atomic.make 0. in
  let killer =
    Domain.spawn (fun () ->
        (* Arm once every session has [warmup] acknowledged rounds. *)
        let rec armed () =
          if
            List.for_all
              (fun i -> Atomic.get acked.(i) >= warmup)
              (List.init sessions Fun.id)
          then ()
          else begin
            Unix.sleepf 0.005;
            armed ()
          end
        in
        armed ();
        let pid = List.assoc victim (Shard.pids supervisor) in
        if pid <= 0 then fail "victim %s has no pid" victim;
        Atomic.set t_kill (Unix.gettimeofday ());
        Unix.kill pid Sys.sigkill)
  in
  let clients =
    List.init sessions (fun i ->
        Domain.spawn (fun () ->
            drive front ~session:(session_name i) ~seed:i ~rounds ~deadline_ms
              ~acked:acked.(i)))
  in
  let results = List.map Domain.join clients in
  Domain.join killer;
  let kill_at = Atomic.get t_kill in
  if kill_at = 0. then fail "the kill never fired";
  (* Tear down: router first (stops forwarding), then the children. *)
  Router.stop router;
  Atomic.set stop_supervising true;
  Domain.join supervisor_domain;
  Shard.stop ~grace_s:5. supervisor;
  let restarts = Shard.restarts supervisor in
  rm_rf dir;

  (* ---- analysis ---- *)
  List.iter check_conservation results;
  if restarts < 1 then fail "supervisor recorded no restart";
  let result i = List.nth results i in
  let deadline_expiries =
    List.fold_left
      (fun acc r ->
        acc
        + List.length (List.filter (fun o -> o.o_deadline) r.c_outcomes))
      0 results
  in
  if deadline_expiries > 0 then
    fail "%d replies blew the client deadline: the router hung"
      deadline_expiries;
  (* Recovery: kill -> first acked step on any affected session. *)
  let recovery_ms =
    let first_ok =
      List.fold_left
        (fun acc i ->
          List.fold_left
            (fun acc o ->
              if o.o_ok && o.o_at > kill_at then min acc o.o_at else acc)
            acc (result i).c_outcomes)
        infinity affected
    in
    if first_ok = infinity then fail "no affected session ever recovered";
    (first_ok -. kill_at) *. 1000.
  in
  (* Lost rounds: acked high-water mark before the kill vs the round
     the restored shard resumed from. *)
  let lost_of i =
    let outcomes = (result i).c_outcomes in
    let before =
      List.fold_left
        (fun acc o -> if o.o_ok && o.o_at <= kill_at then max acc o.o_round else acc)
        0 outcomes
    in
    let first_after =
      List.fold_left
        (fun acc o ->
          if o.o_ok && o.o_at > kill_at then min acc o.o_round else acc)
        max_int outcomes
    in
    if first_after = max_int then 0
    else max 0 (before - (first_after - 1))
  in
  let losses = List.map lost_of affected in
  let lost_max = List.fold_left max 0 losses in
  let lost_total = List.fold_left ( + ) 0 losses in
  if lost_max > checkpoint_every then
    fail "lost %d rounds on one session, checkpoint interval is %d" lost_max
      checkpoint_every;
  (* Surviving sessions: zero errors, p99 reported against the
     everyone-healthy baseline (their own pre-kill calls). *)
  let surviving_errors =
    List.fold_left (fun acc i -> acc + (result i).c_errors) 0 surviving
  in
  if surviving_errors > 0 then
    fail "%d errors on sessions of surviving shards" surviving_errors;
  let surviving_lat pred =
    let lats =
      List.concat_map
        (fun i ->
          List.filter_map
            (fun o -> if o.o_ok && pred o then Some o.o_latency_us else None)
            (result i).c_outcomes)
        surviving
    in
    let arr = Array.of_list lats in
    Array.sort compare arr;
    arr
  in
  let p99_before = percentile_us (surviving_lat (fun o -> o.o_at <= kill_at)) 0.99 in
  let p99_after = percentile_us (surviving_lat (fun o -> o.o_at > kill_at)) 0.99 in
  let affected_errors =
    List.fold_left (fun acc i -> acc + (result i).c_errors) 0 affected
  in

  let table =
    Rrs_stats.Table.create
      ~title:
        (Printf.sprintf
           "E21 crash-failover recovery (%d sessions, %d rounds, kill -9 one \
            of %d shards, checkpoint every %d)"
           sessions rounds shard_count checkpoint_every)
      ~columns:
        [ "affected"; "recovery ms"; "lost max"; "lost total"; "restarts";
          "surv errors"; "surv p99 us pre"; "surv p99 us post" ]
  in
  Rrs_stats.Table.add_row table
    [
      Rrs_stats.Table.cell_int (List.length affected);
      Rrs_stats.Table.cell_float ~decimals:0 recovery_ms;
      Rrs_stats.Table.cell_int lost_max;
      Rrs_stats.Table.cell_int lost_total;
      Rrs_stats.Table.cell_int restarts;
      Rrs_stats.Table.cell_int surviving_errors;
      Rrs_stats.Table.cell_int p99_before;
      Rrs_stats.Table.cell_int p99_after;
    ];
  Rrs_stats.Table.print table;
  Option.iter
    (fun path ->
      let b =
        Rrs_stats.Bench_io.create ~tag:(Rrs_stats.Bench_io.tag_of_path path)
      in
      Rrs_stats.Bench_io.start_experiment b ~id:"E21"
        ~claim:
          "A kill -9'd shard is restarted by the supervisor, restores from \
           its autosnap checkpoints and is re-admitted by the router within \
           a bounded window: affected sessions lose at most \
           checkpoint_every rounds and resume, sessions on surviving \
           shards see zero errors and unchanged p99, and every reply in \
           the outage window is a clean error within the deadline — the \
           router never hangs.";
      Rrs_stats.Bench_io.record b ~policy ~workload:"serve-failover-kill9" ~n
        ~delta ~cost:0 ~reconfig_count:0 ~drop_count:0 ~exec_count:0
        ~wall_s:0.
        ~extras:
          [
            ("sessions", sessions);
            ("rounds", rounds);
            ("shards", shard_count);
            ("checkpoint_every", checkpoint_every);
            ("affected_sessions", List.length affected);
            ("surviving_sessions", List.length surviving);
            ("recovery_ms", int_of_float recovery_ms);
            ("lost_rounds_max", lost_max);
            ("lost_rounds_total", lost_total);
            ("supervisor_restarts", restarts);
            ("affected_errors", affected_errors);
            ("surviving_errors", surviving_errors);
            ("deadline_expiries", deadline_expiries);
            ("surviving_p99_us_before", p99_before);
            ("surviving_p99_us_after", p99_after);
          ]
        ();
      Rrs_stats.Bench_io.write b ~path;
      Format.eprintf "wrote %s@." path)
    json
