(* Benchmark / experiment harness entry point.

   Prints the experiment tables E1-E16 (one per claim of the paper; see
   DESIGN.md section 4 and EXPERIMENTS.md for the index) followed by the
   E11 bechamel throughput microbenches.

   Usage:
     dune exec bench/main.exe                      # everything
     dune exec bench/main.exe -- tables            # only the claim tables
     dune exec bench/main.exe -- micro             # only the microbenches
     dune exec bench/main.exe -- sweep             # multicore sweep grid
     dune exec bench/main.exe -- sweep --inject-crash  # + failure isolation
     dune exec bench/main.exe -- serve             # E18 serving throughput
     dune exec bench/main.exe -- churn             # E18 connection churn
     dune exec bench/main.exe -- snap              # E19 snapshot growth
     dune exec bench/main.exe -- admission         # E22 admission gate
     dune exec bench/main.exe -- tables --json F   # tables + BENCH json

   --json FILE serializes the results of the selected mode to FILE using
   the versioned rrs-bench schema (see Rrs_stats.Bench_io); diagnostics
   go to stderr so stdout stays clean for redirection. --inject-crash
   (sweep mode) adds tasks whose policy raises, proving the sweep
   completes degraded with attributable errors. *)

let usage =
  "all | tables | micro | sweep | serve | churn | snap | failover | \
   admission [--json FILE] [--inject-crash]"

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  (* [shard-child] is the E21 failover bench re-exec'ing itself as a
     killable shard process: no banner, no table — just a session
     server until SIGTERM. *)
  (match args with
  | "shard-child" :: rest -> Failover_bench.shard_child rest
  | _ -> ());
  let rec parse mode json inject_crash = function
    | [] -> (mode, json, inject_crash)
    | "--json" :: path :: rest -> parse mode (Some path) inject_crash rest
    | "--json" :: [] ->
        Format.eprintf "--json requires a file argument (usage: %s)@." usage;
        exit 1
    | "--inject-crash" :: rest -> parse mode json true rest
    | arg :: rest when mode = None -> parse (Some arg) json inject_crash rest
    | arg :: _ ->
        Format.eprintf "unexpected argument %S (usage: %s)@." arg usage;
        exit 1
  in
  let mode, json, inject_crash = parse None None false args in
  let mode = Option.value mode ~default:"all" in
  Format.printf
    "Reconfigurable Resource Scheduling with Variable Delay Bounds — experiment \
     harness@.";
  (match mode with
  | "tables" -> Experiments.run_all ?json ()
  | "micro" -> Micro.run ()
  | "sweep" -> Sweep_bench.run ?json ~inject_crash ()
  | "serve" -> Serve_bench.run ?json ()
  | "churn" -> Serve_bench.run_churn ?json ()
  | "snap" -> Snap_bench.run ?json ()
  | "failover" -> Failover_bench.run ?json ()
  | "admission" -> Admission_bench.run ?json ()
  | "all" ->
      Experiments.run_all ?json ();
      Micro.run ()
  | other ->
      (* Keep stdout parseable (e.g. under --json wrappers): diagnostics
         belong on stderr. *)
      Format.eprintf "unknown mode %S (expected: %s)@." other usage;
      exit 1);
  Format.printf "@.done.@."
