(* E18 — sustained serving throughput (closed-loop load harness).

   Starts an in-process rrs session server on a Unix socket, then for
   each session count S and each wire framing (rrs-wire/1 JSON,
   rrs-wire/2 binary) spawns S client domains. Each client opens its
   own session and drives it closed-loop over the real socket: feed one
   round's arrivals, step one round, repeat — so every round costs two
   request/reply round trips and the measured figure is end-to-end wire
   throughput, not engine throughput. The /1 and /2 rows for the same S
   run the same seeds over the same server, so the framings are compared
   side by side: frames moved, bytes per frame, p50/p99 frame latency.

   Reported per (S, wire): aggregate rounds/sec, jobs executed/sec,
   p50/p99 per-frame latency (connect-to-reply excluded; measured per
   call over all clients), the server's own per-frame-type request
   percentiles (fetched over the 'metrics' wire request after the
   window; each row runs against a fresh server so its metrics cover
   exactly that window) and mean wire bytes per frame. The same rows
   are re-emitted as experiment E20, comparing server-side against
   client-observed percentiles — the gap is client-side stack + wire.
   After the measured window every session's server-side stats are
   checked for conservation:

     fed = accepted + shed
     accepted = execs + drops + pool pending + buffered

   and any violation or server crash fails the bench loudly. *)

module Server = Rrs_server.Server
module Client = Rrs_server.Client
module Wire = Rrs_server.Wire
module Clock = Rrs_obs.Clock
module Json = Rrs_sim.Event_sink.Json

let policy = "dlru-edf"
let bounds = [| 2; 3; 4; 6; 8; 12; 16; 24 |]
let colors = Array.length bounds
let delta = 4
let n = 8

type client_result = {
  rounds : int;
  latencies_us : int array; (* one per frame round trip, unsorted *)
  bytes : int; (* wire bytes moved, both directions *)
  frames : int; (* frames moved, both directions *)
  stats : Wire.frame; (* the final Stats_ok *)
}

let fail format = Printf.ksprintf failwith format

(* One closed-loop client: open, (feed; step) x rounds, stats, close. *)
let drive address ~wire ~session ~seed ~rounds =
  let client = Client.connect address in
  (* The hello exchange is counted in the byte/frame totals: it is part
     of what the framing costs. *)
  (match Client.negotiate client ~wire with
  | Ok () -> ()
  | Error message -> fail "%s: negotiate /%d: %s" session wire message);
  let random = Random.State.make [| 0xE18; seed |] in
  let latencies = Array.make ((2 * rounds) + 8) 0 in
  let round_trips = ref 1 (* the negotiation hello *) in
  let frames = ref 0 in
  let call frame =
    let t0 = Clock.now_ns () in
    let reply = Client.call client frame in
    let dt_us =
      Int64.to_int (Int64.div (Int64.sub (Clock.now_ns ()) t0) 1000L)
    in
    if !frames < Array.length latencies then begin
      latencies.(!frames) <- dt_us;
      incr frames
    end;
    incr round_trips;
    match reply with
    | Ok (Wire.Error_frame { message }) -> fail "%s: server error: %s" session message
    | Ok frame -> frame
    | Error message -> fail "%s: %s" session message
  in
  (match
     call
       (Wire.Open
          { session; policy; delta; bounds; n; speed = 1; horizon = 0;
            queue_limit = 0; decl = None })
   with
  | Wire.Opened _ -> ()
  | _ -> fail "%s: unexpected reply to open" session);
  for _ = 1 to rounds do
    (* ~n jobs per round across random colors: enough load to keep every
       location busy without unbounded backlog. *)
    let counts = Array.make colors 0 in
    for _ = 1 to n do
      let c = Random.State.int random colors in
      counts.(c) <- counts.(c) + 1
    done;
    let colors_arr =
      Array.of_seq
        (Seq.filter (fun c -> counts.(c) > 0)
           (Seq.init colors (fun c -> c)))
    in
    let counts_arr = Array.map (fun c -> counts.(c)) colors_arr in
    (match call (Wire.Feed { session; colors = colors_arr; counts = counts_arr; decl = None }) with
    | Wire.Fed _ | Wire.Shed _ -> ()
    | _ -> fail "%s: unexpected reply to feed" session);
    match call (Wire.Step { session; rounds = 1 }) with
    | Wire.Stepped _ -> ()
    | _ -> fail "%s: unexpected reply to step" session
  done;
  let stats = call (Wire.Stats { session }) in
  (match call (Wire.Close { session }) with
  | Wire.Closed _ -> ()
  | _ -> fail "%s: unexpected reply to close" session);
  let bytes = Client.bytes_sent client + Client.bytes_received client in
  Client.close client;
  {
    rounds;
    latencies_us = Array.sub latencies 0 !frames;
    bytes;
    frames = 2 * !round_trips;
    stats;
  }

let check_conservation result =
  match result.stats with
  | Wire.Stats_ok
      { session; pending; buffered; fed; accepted; shed; execs; drops; _ } ->
      if fed <> accepted + shed then
        fail "%s: conservation violated: fed %d <> accepted %d + shed %d"
          session fed accepted shed;
      if accepted <> execs + drops + pending + buffered then
        fail
          "%s: conservation violated: accepted %d <> execs %d + drops %d + \
           pending %d + buffered %d"
          session accepted execs drops pending buffered
  | _ -> fail "stats reply was not stats_ok"

let percentile_us sorted p =
  if Array.length sorted = 0 then 0
  else
    let index =
      int_of_float (ceil (p *. float_of_int (Array.length sorted))) - 1
    in
    sorted.(max 0 (min index (Array.length sorted - 1)))

(* The merged server-side metrics document, fetched over the wire after
   a measured window. *)
let fetch_server_metrics address =
  let client = Client.connect address in
  let doc =
    match Client.call client (Wire.Metrics { slow = 0 }) with
    | Ok (Wire.Metrics_ok { doc; _ }) -> doc
    | Ok (Wire.Error_frame { message }) -> fail "metrics: %s" message
    | Ok _ -> fail "metrics: unexpected reply"
    | Error message -> fail "metrics: %s" message
  in
  Client.close client;
  Json.parse_fields doc

(* One row's comparison material, kept for the E20 re-emission. *)
type row_summary = {
  w_sessions : int;
  w_wire : int;
  w_p50 : int; (* client-observed, µs *)
  w_p99 : int;
  w_srv : (string * int) list; (* srv_* extras, µs *)
  w_cost : int;
  w_reconfigs : int;
  w_drops : int;
  w_execs : int;
  w_wall : float;
}

let run ?json ?(session_counts = [ 1; 2; 4; 8 ]) ?(rounds = 400) () =
  let dir = Filename.temp_file "rrs-serve-bench" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let address = Server.Unix_socket (Filename.concat dir "sock") in
  let table =
    Rrs_stats.Table.create
      ~title:
        (Printf.sprintf
           "E18 serving throughput (closed loop, %d rounds/session, policy %s)"
           rounds policy)
      ~columns:
        [ "sessions"; "wire"; "rounds/s"; "execs/s"; "p50 us"; "p99 us";
          "srv feed p99"; "srv step p99"; "B/frame"; "shed" ]
  in
  let summaries = ref [] in
  let bench =
    Option.map
      (fun path -> (Rrs_stats.Bench_io.create ~tag:(Rrs_stats.Bench_io.tag_of_path path), path))
      json
  in
  Option.iter
    (fun (b, _) ->
      Rrs_stats.Bench_io.start_experiment b ~id:"E18"
        ~claim:
          "The rrs session server sustains closed-loop load from concurrent \
           sessions with bounded frame latency and exact job conservation; \
           the negotiated rrs-wire/2 binary framing moves fewer bytes per \
           frame than rrs-wire/1 at equal or better latency.")
    bench;
  let ok = ref true in
  (try
     List.iter
       (fun sessions ->
         List.iter
           (fun wire ->
             (* A fresh server per row: its metrics plane then covers
                exactly this measured window, so the server-side
                percentiles are comparable with the client-observed
                ones from the same row. *)
             let server =
               Server.start
                 { (Server.default_config address) with domains = 0;
                   queue_limit = 0 }
             in
             Fun.protect
               ~finally:(fun () -> ignore (Server.stop ~drain:false server))
               (fun () ->
             let t0 = Clock.now_s () in
             let domains =
               List.init sessions (fun i ->
                   Domain.spawn (fun () ->
                       drive address ~wire
                         ~session:
                           (Printf.sprintf "bench-w%d-%d-%d" wire sessions i)
                         ~seed:((sessions * 1000) + i) ~rounds))
             in
             let results = List.map Domain.join domains in
             let wall_s = Clock.elapsed_s t0 in
             let server_metrics = fetch_server_metrics address in
             let srv name =
               Json.opt_int_field server_metrics name ~default:0
             in
             List.iter check_conservation results;
             let total_rounds =
               List.fold_left (fun acc r -> acc + r.rounds) 0 results
             in
             let total_bytes =
               List.fold_left (fun acc r -> acc + r.bytes) 0 results
             in
             let total_frames =
               List.fold_left (fun acc r -> acc + r.frames) 0 results
             in
             let latencies =
               Array.concat (List.map (fun r -> r.latencies_us) results)
             in
             Array.sort compare latencies;
             let totals =
               List.fold_left
                 (fun (execs, drops, reconfigs, shed, cost) r ->
                   match r.stats with
                   | Wire.Stats_ok s ->
                       ( execs + s.execs, drops + s.drops,
                         reconfigs + s.reconfigs, shed + s.shed, cost + s.cost )
                   | _ -> (execs, drops, reconfigs, shed, cost))
                 (0, 0, 0, 0, 0) results
             in
             let execs, drops, reconfigs, shed, cost = totals in
             let rounds_per_s = float_of_int total_rounds /. wall_s in
             let execs_per_s = float_of_int execs /. wall_s in
             let p50 = percentile_us latencies 0.50 in
             let p99 = percentile_us latencies 0.99 in
             let bytes_per_frame =
               if total_frames = 0 then 0 else total_bytes / total_frames
             in
             (* Server-side per-frame-type percentiles (handler + reply
                write; the blocking read is excluded). *)
             let srv_extras =
               [
                 ("srv_feed_p50_us", srv "req_latency_us_feed_p50");
                 ("srv_feed_p99_us", srv "req_latency_us_feed_p99");
                 ("srv_step_p50_us", srv "req_latency_us_step_p50");
                 ("srv_step_p99_us", srv "req_latency_us_step_p99");
                 ("srv_lock_wait_p99_us", srv "lock_wait_us_p99");
                 ("srv_requests_total", srv "requests_total");
               ]
             in
             Rrs_stats.Table.add_row table
               [
                 Rrs_stats.Table.cell_int sessions;
                 Printf.sprintf "/%d" wire;
                 Rrs_stats.Table.cell_float ~decimals:0 rounds_per_s;
                 Rrs_stats.Table.cell_float ~decimals:0 execs_per_s;
                 Rrs_stats.Table.cell_int p50;
                 Rrs_stats.Table.cell_int p99;
                 Rrs_stats.Table.cell_int (srv "req_latency_us_feed_p99");
                 Rrs_stats.Table.cell_int (srv "req_latency_us_step_p99");
                 Rrs_stats.Table.cell_int bytes_per_frame;
                 Rrs_stats.Table.cell_int shed;
               ];
             summaries :=
               { w_sessions = sessions; w_wire = wire; w_p50 = p50;
                 w_p99 = p99; w_srv = srv_extras; w_cost = cost;
                 w_reconfigs = reconfigs; w_drops = drops; w_execs = execs;
                 w_wall = wall_s }
               :: !summaries;
             Option.iter
               (fun (b, _) ->
                 Rrs_stats.Bench_io.record b ~policy
                   ~workload:
                     (Printf.sprintf "serve-closed-loop-x%d-wire%d" sessions
                        wire)
                   ~n ~delta ~cost ~reconfig_count:reconfigs ~drop_count:drops
                   ~exec_count:execs ~wall_s
                   ~extras:
                     ([
                        ("sessions", sessions);
                        ("wire", wire);
                        ("rounds_total", total_rounds);
                        ("rounds_per_s", int_of_float rounds_per_s);
                        ("execs_per_s", int_of_float execs_per_s);
                        ("frames_total", total_frames);
                        ("bytes_total", total_bytes);
                        ("bytes_per_frame", bytes_per_frame);
                        ("p50_us", p50);
                        ("p99_us", p99);
                        ("shed_jobs", shed);
                      ]
                     @ srv_extras)
                   ())
               bench))
           [ 1; 2 ])
       session_counts
   with e ->
     ok := false;
     Format.eprintf "serve bench failed: %s@." (Printexc.to_string e));
  Rrs_stats.Table.print table;
  (* E20 — the same windows, re-cut as a server-side vs client-observed
     latency comparison. *)
  Option.iter
    (fun (b, _) ->
      Rrs_stats.Bench_io.start_experiment b ~id:"E20"
        ~claim:
          "Server-side request latency percentiles (handler + reply write, \
           traced per frame type across worker domains) track the \
           client-observed round-trip percentiles from the same closed-loop \
           window under both framings; the residual gap is client stack + \
           wire transport.";
      List.iter
        (fun w ->
          Rrs_stats.Bench_io.record b ~policy
            ~workload:
              (Printf.sprintf "serve-latency-x%d-wire%d" w.w_sessions w.w_wire)
            ~n ~delta ~cost:w.w_cost ~reconfig_count:w.w_reconfigs
            ~drop_count:w.w_drops ~exec_count:w.w_execs ~wall_s:w.w_wall
            ~extras:
              ([
                 ("sessions", w.w_sessions);
                 ("wire", w.w_wire);
                 ("client_p50_us", w.w_p50);
                 ("client_p99_us", w.w_p99);
               ]
              @ w.w_srv)
            ())
        (List.rev !summaries))
    bench;
  Option.iter
    (fun (b, path) ->
      Rrs_stats.Bench_io.write b ~path;
      Format.eprintf "wrote %s@." path)
    bench;
  if not !ok then exit 1

(* ---- E18 churn mode: the FD_SETSIZE cliff under live load ----

   Holds thousands of concurrent connections open against one server —
   all multiplexed by the poll-based event loop, most of them on fds
   far above the old select(2) FD_SETSIZE=1024 cliff — drives
   pipelined request sweeps across the whole population, and churns a
   slice of it closed/reopened between sweeps. Reported per framing:
   sustained connection count, calls/s, client p50/p99, connections
   churned, and the /proc/self/fd table size at matched full-occupancy
   points. Both connection ends live in this process, so fd_min <>
   fd_max is a descriptor leak in the connection core; any frame or
   transport error fails the bench loudly. *)

module Poll = Rrs_server.Poll

let churn_connect address ~wire =
  let client = Client.connect address in
  (if wire = 2 then
     match Client.negotiate client ~wire with
     | Ok () -> ()
     | Error message -> fail "churn connect: negotiate /%d: %s" wire message);
  client

let run_churn ?json ?(conns = 2048) ?(sweeps = 4) () =
  let want_fds = (2 * conns) + 512 in
  let limit = Poll.raise_fd_limit want_fds in
  let conns =
    if limit >= want_fds then conns
    else begin
      (* No silent caps: an fd-starved sandbox shrinks the population
         and says so, instead of pretending it ran at full size. *)
      let scaled = max 256 ((limit - 512) / 2) in
      Format.eprintf
        "churn: fd limit %d caps the population at %d connections (wanted %d)@."
        limit scaled conns;
      scaled
    end
  in
  let have_proc = Sys.file_exists "/proc/self/fd" in
  let fd_table () =
    if have_proc then Array.length (Sys.readdir "/proc/self/fd") else 0
  in
  let dir = Filename.temp_file "rrs-churn-bench" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let address = Server.Unix_socket (Filename.concat dir "sock") in
  let table =
    Rrs_stats.Table.create
      ~title:
        (Printf.sprintf
           "E18 connection churn (%d concurrent connections, %d sweeps)" conns
           sweeps)
      ~columns:
        [ "conns"; "wire"; "calls/s"; "p50 us"; "p99 us"; "churned";
          "fd min"; "fd max" ]
  in
  let bench =
    Option.map
      (fun path -> (Rrs_stats.Bench_io.create ~tag:(Rrs_stats.Bench_io.tag_of_path path), path))
      json
  in
  Option.iter
    (fun (b, _) ->
      Rrs_stats.Bench_io.start_experiment b ~id:"E18"
        ~claim:
          "The poll-based connection core sustains thousands of concurrent \
           sockets — far past the select(2) FD_SETSIZE cliff — through \
           open/close churn with zero frame errors and a byte-flat fd \
           table, under both wire framings.")
    bench;
  let ok = ref true in
  (try
     List.iter
       (fun wire ->
         let server =
           Server.start
             { (Server.default_config address) with domains = 0;
               queue_limit = 0 }
         in
         Fun.protect
           ~finally:(fun () -> ignore (Server.stop ~drain:false server))
           (fun () ->
             let control = churn_connect address ~wire in
             (match
                Client.call control
                  (Wire.Open
                     { session = "churn"; policy; delta; bounds; n; speed = 1;
                       horizon = 0; queue_limit = 0; decl = None })
              with
             | Ok (Wire.Opened _) -> ()
             | Ok frame -> fail "churn open: %s" (Wire.encode frame)
             | Error message -> fail "churn open: %s" message);
             let population =
               Array.init conns (fun _ -> churn_connect address ~wire)
             in
             let latencies =
               Array.make ((sweeps * conns) + (sweeps * (conns / 8)) + 8) 0
             in
             let calls = ref 0 in
             let stats_call client =
               let t0 = Clock.now_ns () in
               match Client.call client (Wire.Stats { session = "churn" }) with
               | Ok (Wire.Stats_ok _) ->
                   if !calls < Array.length latencies then begin
                     latencies.(!calls) <-
                       Int64.to_int
                         (Int64.div (Int64.sub (Clock.now_ns ()) t0) 1000L);
                     incr calls
                   end
               | Ok frame -> fail "frame error under churn: %s" (Wire.encode frame)
               | Error message -> fail "transport error under churn: %s" message
             in
             (* Ramp sweep: one call on every connection while all of
                them stay open, then pin the full-occupancy fd count. *)
             let t0 = Clock.now_s () in
             Array.iter stats_call population;
             let at_full = fd_table () in
             let fd_min = ref at_full and fd_max = ref at_full in
             let settle () =
               if have_proc then begin
                 (* The event loop closes its half of a churned
                    connection asynchronously; wait (bounded) for the
                    table to return to full occupancy before sampling. *)
                 let deadline = Unix.gettimeofday () +. 5. in
                 let rec wait () =
                   if fd_table () = at_full then ()
                   else if Unix.gettimeofday () >= deadline then ()
                   else begin
                     Unix.sleepf 0.01;
                     wait ()
                   end
                 in
                 wait ();
                 let sample = fd_table () in
                 fd_min := min !fd_min sample;
                 fd_max := max !fd_max sample
               end
             in
             let churn_per_sweep = conns / 8 in
             let churned = ref 0 in
             (* Pipelined sweeps: send a whole batch before reading any
                reply, so the loop sees bursts of concurrently-readable
                fds, not one lonely socket at a time. *)
             let batch = 64 in
             let send_t0 = Array.make batch 0L in
             for sweep = 1 to sweeps do
               let i = ref 0 in
               while !i < conns do
                 let count = min batch (conns - !i) in
                 for k = 0 to count - 1 do
                   send_t0.(k) <- Clock.now_ns ();
                   Client.send population.(!i + k) (Wire.Stats { session = "churn" })
                 done;
                 for k = 0 to count - 1 do
                   match Client.read_reply population.(!i + k) with
                   | Ok (Wire.Stats_ok _) ->
                       if !calls < Array.length latencies then begin
                         latencies.(!calls) <-
                           Int64.to_int
                             (Int64.div
                                (Int64.sub (Clock.now_ns ()) send_t0.(k))
                                1000L);
                         incr calls
                       end
                   | Ok frame ->
                       fail "frame error under churn: %s" (Wire.encode frame)
                   | Error message ->
                       fail "transport error under churn: %s" message
                 done;
                 i := !i + count
               done;
               for k = 0 to churn_per_sweep - 1 do
                 let j = (((sweep - 1) * churn_per_sweep) + k) mod conns in
                 Client.close population.(j);
                 population.(j) <- churn_connect address ~wire;
                 stats_call population.(j);
                 incr churned
               done;
               settle ()
             done;
             let wall_s = Clock.elapsed_s t0 in
             Array.iter Client.close population;
             Client.close control;
             if have_proc && !fd_min <> !fd_max then
               fail "fd table drifted under churn: %d .. %d (full ramp %d)"
                 !fd_min !fd_max at_full;
             let sorted = Array.sub latencies 0 !calls in
             Array.sort compare sorted;
             let p50 = percentile_us sorted 0.50 in
             let p99 = percentile_us sorted 0.99 in
             let calls_per_s = float_of_int !calls /. wall_s in
             Rrs_stats.Table.add_row table
               [
                 Rrs_stats.Table.cell_int conns;
                 Printf.sprintf "/%d" wire;
                 Rrs_stats.Table.cell_float ~decimals:0 calls_per_s;
                 Rrs_stats.Table.cell_int p50;
                 Rrs_stats.Table.cell_int p99;
                 Rrs_stats.Table.cell_int !churned;
                 Rrs_stats.Table.cell_int !fd_min;
                 Rrs_stats.Table.cell_int !fd_max;
               ];
             Option.iter
               (fun (b, _) ->
                 Rrs_stats.Bench_io.record b ~policy
                   ~workload:(Printf.sprintf "serve-churn-x%d-wire%d" conns wire)
                   ~n ~delta ~cost:0 ~reconfig_count:0 ~drop_count:0
                   ~exec_count:0 ~wall_s
                   ~extras:
                     [
                       ("conns", conns);
                       ("wire", wire);
                       ("sweeps", sweeps);
                       ("calls_total", !calls);
                       ("calls_per_s", int_of_float calls_per_s);
                       ("p50_us", p50);
                       ("p99_us", p99);
                       ("churned", !churned);
                       ("frame_errors", 0);
                       ("fd_full_ramp", at_full);
                       ("fd_min", !fd_min);
                       ("fd_max", !fd_max);
                       ("fd_limit", limit);
                     ]
                   ())
               bench))
       [ 1; 2 ]
   with e ->
     ok := false;
     Format.eprintf "churn bench failed: %s@." (Printexc.to_string e));
  Rrs_stats.Table.print table;
  Option.iter
    (fun (b, path) ->
      Rrs_stats.Bench_io.write b ~path;
      Format.eprintf "wrote %s@." path)
    bench;
  if not !ok then exit 1
