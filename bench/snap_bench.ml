(* E19 — snapshot size and save/restore latency vs session age.

   Two identically-fed steppers (same seeded workload as E18: ~n jobs
   per round across 8 colors, dlru-edf) age side by side: one plain
   (rrs-snap/1, the replay base is the full arrival history) and one
   checkpointing every [checkpoint_interval] rounds (rrs-snap/2, the
   replay base is the latest materialized-state checkpoint). At each
   round milestone both are snapshotted to disk and restored back, and
   the bench reports document bytes, save latency, restore latency and
   whether the document still fits an inline [snapshotted] reply frame
   (the wire's max_frame).

   The claim under test: /1 grows linearly with rounds served — bytes,
   save and restore all O(total arrivals) — until the document cannot
   cross the wire at all, while /2 stays flat at O(checkpoint interval)
   however long the session runs. *)

module Stepper = Rrs_sim.Stepper
module Ledger = Rrs_sim.Ledger
module Clock = Rrs_obs.Clock
module Wire = Rrs_server.Wire

let policy_key = "dlru-edf"
let policy : (module Rrs_sim.Policy.POLICY) = (module Rrs_core.Policy_lru_edf)
let bounds = [| 2; 3; 4; 6; 8; 12; 16; 24 |]
let colors = Array.length bounds
let delta = 4
let n = 8
let checkpoint_interval = 256

(* The last milestone pushes the /1 document past Wire.max_frame, so the
   run demonstrates both the growth curve and the point where only /2
   can still snapshot inline. *)
let milestones = [ 1_000; 5_000; 10_000; 20_000; 40_000; 60_000 ]

let us_of_ns span = Int64.to_int (Int64.div span 1000L)

let feed_round random stepper =
  let counts = Array.make colors 0 in
  for _ = 1 to n do
    let c = Random.State.int random colors in
    counts.(c) <- counts.(c) + 1
  done;
  let request =
    List.filter (fun (_, k) -> k > 0)
      (List.init colors (fun c -> (c, counts.(c))))
  in
  Stepper.feed stepper request;
  Stepper.step stepper

type sample = {
  s_bytes : int;
  s_save_us : int;
  s_restore_us : int;
  s_inline_ok : bool; (* fits one inline snapshotted reply frame *)
}

let measure dir ~version stepper =
  let path =
    Filename.concat dir (Printf.sprintf "e19-v%d.sess.jsonl" version)
  in
  let t0 = Clock.now_ns () in
  Stepper.save stepper ~path;
  let s_save_us = us_of_ns (Int64.sub (Clock.now_ns ()) t0) in
  let doc = In_channel.with_open_bin path In_channel.input_all in
  let t1 = Clock.now_ns () in
  (match Stepper.restore ~record_events:false ~policy doc with
  | Ok _ -> ()
  | Error message ->
      Printf.ksprintf failwith "E19: /%d restore failed: %s" version message);
  let s_restore_us = us_of_ns (Int64.sub (Clock.now_ns ()) t1) in
  let reply =
    Wire.to_wire Wire.V1
      (Wire.Snapshotted { session = "e19"; path = None; doc = Some doc })
  in
  {
    s_bytes = String.length doc;
    s_save_us;
    s_restore_us;
    s_inline_ok = String.length reply <= Wire.max_frame;
  }

let run ?json () =
  let dir = Filename.temp_file "rrs-snap-bench" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let table =
    Rrs_stats.Table.create
      ~title:
        (Printf.sprintf
           "E19 snapshot growth (policy %s, /2 checkpoint every %d rounds)"
           policy_key checkpoint_interval)
      ~columns:
        [ "rounds"; "snap"; "bytes"; "save us"; "restore us"; "inline" ]
  in
  let bench =
    Option.map
      (fun path ->
        (Rrs_stats.Bench_io.create ~tag:(Rrs_stats.Bench_io.tag_of_path path),
         path))
      json
  in
  Option.iter
    (fun (b, _) ->
      Rrs_stats.Bench_io.start_experiment b ~id:"E19"
        ~claim:
          "rrs-snap/1 snapshot size and save/restore latency grow linearly \
           with rounds served until the document exceeds the wire frame \
           limit; rrs-snap/2 checkpointed snapshots stay flat at \
           O(checkpoint interval) and remain inline-frameable at every \
           session age.")
    bench;
  let ok = ref true in
  (try
     let config version =
       { Stepper.name = Printf.sprintf "e19-v%d" version; delta; bounds; n;
         speed = 1; horizon = 0 }
     in
     let v1 = Stepper.create ~record_events:false ~policy (config 1) in
     let v2 =
       Stepper.create ~record_events:false ~checkpoint_every:checkpoint_interval
         ~policy (config 2)
     in
     let random1 = Random.State.make [| 0xE19; 1 |] in
     let random2 = Random.State.make [| 0xE19; 1 |] in
     let rounds_done = ref 0 in
     List.iter
       (fun milestone ->
         let t0 = Clock.now_s () in
         for _ = !rounds_done + 1 to milestone do
           feed_round random1 v1;
           feed_round random2 v2
         done;
         rounds_done := milestone;
         List.iter
           (fun (version, stepper) ->
             let sample = measure dir ~version stepper in
             let ledger = Stepper.ledger stepper in
             Rrs_stats.Table.add_row table
               [
                 Rrs_stats.Table.cell_int milestone;
                 Printf.sprintf "/%d" version;
                 Rrs_stats.Table.cell_int sample.s_bytes;
                 Rrs_stats.Table.cell_int sample.s_save_us;
                 Rrs_stats.Table.cell_int sample.s_restore_us;
                 (if sample.s_inline_ok then "yes" else "NO");
               ];
             Option.iter
               (fun (b, _) ->
                 Rrs_stats.Bench_io.record b ~policy:policy_key
                   ~workload:
                     (Printf.sprintf "snap-age-%d-v%d" milestone version)
                   ~n ~delta
                   ~cost:(Ledger.total_cost ledger)
                   ~reconfig_count:(Ledger.reconfig_count ledger)
                   ~drop_count:(Ledger.drop_count ledger)
                   ~exec_count:(Ledger.exec_count ledger)
                   ~wall_s:(Clock.elapsed_s t0)
                   ~extras:
                     [
                       ("snap_version", version);
                       ("rounds", milestone);
                       ("snap_bytes", sample.s_bytes);
                       ("save_us", sample.s_save_us);
                       ("restore_us", sample.s_restore_us);
                       ( "checkpoint_every",
                         if version = 2 then checkpoint_interval else 0 );
                       ("inline_frameable", if sample.s_inline_ok then 1 else 0);
                     ]
                   ())
               bench)
           [ (1, v1); (2, v2) ])
       milestones
   with e ->
     ok := false;
     Format.eprintf "snap bench failed: %s@." (Printexc.to_string e));
  Rrs_stats.Table.print table;
  Option.iter
    (fun (b, path) ->
      Rrs_stats.Bench_io.write b ~path;
      Format.eprintf "wrote %s@." path)
    bench;
  if not !ok then exit 1
