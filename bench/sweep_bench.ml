(* Multicore sweep benchmark: a 64-run (policy x workload x n) grid fanned
   across domains by Rrs_sim.Sweep.

   The same grid is executed sequentially (1 domain) and in parallel
   (default: the runtime's recommended domain count, at least 4 when the
   hardware offers it), the per-run ledger totals are checked identical,
   and both wall clocks are reported. On a multicore host the parallel
   pass is expected to be >= 2x faster at 4 domains; on a single core it
   degrades to the sequential time plus negligible spawn overhead. *)

module Sweep = Rrs_sim.Sweep
module Instance = Rrs_sim.Instance
module Table = Rrs_stats.Table
module Bench_io = Rrs_stats.Bench_io
module Clock = Rrs_obs.Clock

let policies : (string * (module Rrs_sim.Policy.POLICY)) list =
  [
    ("dlru", (module Rrs_core.Policy_lru));
    ("edf", (module Rrs_core.Policy_edf));
    ("dlru-edf", (module Rrs_core.Policy_lru_edf));
    ("dlru-2", (module Rrs_core.Policy_lru_k));
  ]

(* 4 policies x 4 loads x 4 seeds = 64 runs. Seeds are derived from the
   (load, seed) grid position, so the task list — and with it every
   per-run ledger total — is deterministic. *)
let grid ~n =
  let loads = [ 0.3; 0.6; 0.9; 1.2 ] in
  let seeds = [ 1; 2; 3; 4 ] in
  List.concat_map
    (fun (name, policy) ->
      List.concat_map
        (fun load ->
          List.map
            (fun seed ->
              let instance =
                Rrs_workload.Random_workloads.uniform ~seed ~colors:24 ~delta:4
                  ~bound_log_range:(0, 5) ~horizon:512 ~load ~rate_limited:true
                  ()
              in
              Sweep.task
                ~key:
                  (Printf.sprintf "%s/load=%.1f/seed=%d/n=%d" name load seed n)
                ~policy ~n instance)
            seeds)
        loads)
    policies

let total_cost outcomes =
  List.fold_left (fun acc (o : Sweep.outcome) -> acc + o.cost) 0 outcomes

let run ?json () =
  Format.printf "@.---- sweep: %d-run grid, sequential vs parallel ----@."
    (List.length (grid ~n:16));
  let tasks = grid ~n:16 in
  let time f =
    let t0 = Clock.now_s () in
    let result = f () in
    (result, Clock.elapsed_s t0)
  in
  let sequential, seq_wall = time (fun () -> Sweep.run ~domains:1 tasks) in
  let domains = max 4 (Sweep.default_domains ()) in
  let profiled = Sweep.run_profiled ~domains tasks in
  let parallel = profiled.Sweep.outcomes in
  let par_wall = profiled.Sweep.wall_s in
  let identical =
    List.for_all2
      (fun (a : Sweep.outcome) (b : Sweep.outcome) ->
        a.key = b.key && a.cost = b.cost
        && a.reconfig_count = b.reconfig_count
        && a.drop_count = b.drop_count
        && a.exec_count = b.exec_count)
      sequential parallel
  in
  let table =
    Table.create ~title:"sweep: 64-run grid (n=16, uniform rate-limited)"
      ~columns:[ "mode"; "domains"; "wall (s)"; "total cost"; "ledgers match" ]
  in
  Table.add_row table
    [
      "sequential"; "1";
      Printf.sprintf "%.3f" seq_wall;
      Table.cell_int (total_cost sequential);
      "-";
    ];
  Table.add_row table
    [
      "parallel";
      Table.cell_int domains;
      Printf.sprintf "%.3f" par_wall;
      Table.cell_int (total_cost parallel);
      (if identical then "yes" else "MISMATCH");
    ];
  Table.print table;
  let util =
    Table.create ~title:"per-domain utilization (parallel pass)"
      ~columns:[ "domain"; "tasks"; "busy (s)"; "util" ]
  in
  List.iter
    (fun (load : Sweep.domain_load) ->
      Table.add_row util
        [
          Table.cell_int load.domain;
          Table.cell_int load.tasks;
          Printf.sprintf "%.3f" load.busy_s;
          Printf.sprintf "%.0f%%"
            (100.0 *. load.busy_s /. Float.max profiled.Sweep.wall_s 1e-9);
        ])
    profiled.Sweep.loads;
  Table.print util;
  Format.printf "speedup: %.2fx (%d domains; single-core hosts report ~1x)@."
    (seq_wall /. Float.max par_wall 1e-9)
    domains;
  if not identical then begin
    Format.eprintf "sweep: parallel ledgers diverge from sequential@.";
    exit 1
  end;
  match json with
  | None -> ()
  | Some path ->
      let b = Bench_io.create ~tag:(Bench_io.tag_of_path path) in
      Bench_io.start_experiment b ~id:"sweep"
        ~claim:
          (Printf.sprintf
             "64-run grid: sequential %.3fs vs parallel %.3fs on %d domains"
             seq_wall par_wall domains);
      List.iter
        (fun (o : Sweep.outcome) ->
          let policy = List.hd (String.split_on_char '/' o.key) in
          Bench_io.record_outcome b ~workload:o.key ~policy o)
        parallel;
      Bench_io.set_domain_load b profiled.Sweep.loads;
      Bench_io.write b ~path;
      Format.printf "wrote %s@." path
