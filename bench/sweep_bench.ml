(* Multicore sweep benchmark: a 64-run (policy x workload x n) grid fanned
   across domains by Rrs_sim.Sweep.

   The same grid is executed sequentially (1 domain) and in parallel
   (default: the runtime's recommended domain count, at least 4 when the
   hardware offers it), the per-run ledger totals are checked identical,
   and both wall clocks are reported. On a multicore host the parallel
   pass is expected to be >= 2x faster at 4 domains; on a single core it
   degrades to the sequential time plus negligible spawn overhead.

   With [inject_crash] (CLI: --inject-crash) the grid gains tasks whose
   policy raises on first reconfigure, exercising the sweep's failure
   isolation end to end: the crashing tasks must fail with attributable
   errors, every other task must still complete, and sequential/parallel
   must agree on both. Only an all-tasks-failed sweep exits nonzero. *)

module Sweep = Rrs_sim.Sweep
module Instance = Rrs_sim.Instance
module Table = Rrs_stats.Table
module Bench_io = Rrs_stats.Bench_io
module Clock = Rrs_obs.Clock

let policies : (string * (module Rrs_sim.Policy.POLICY)) list =
  [
    ("dlru", (module Rrs_core.Policy_lru));
    ("edf", (module Rrs_core.Policy_edf));
    ("dlru-edf", (module Rrs_core.Policy_lru_edf));
    ("dlru-2", (module Rrs_core.Policy_lru_k));
  ]

(* A deliberately broken policy: raises on the first reconfigure call.
   Used by --inject-crash to prove one bad task cannot take down a
   sweep. *)
module Crashy : Rrs_sim.Policy.POLICY = struct
  let name = "crashy"

  type t = unit

  let create ~n:_ ~delta:_ ~bounds:_ = ()
  let on_drop () ~round:_ ~dropped:_ = ()
  let on_arrival () ~round:_ ~request:_ = ()
  let reconfigure () _view = failwith "injected crash (--inject-crash)"
  let stats () = []
  let serialize () = "{}"
  let deserialize () _ = ()
end

(* 4 policies x 4 loads x 4 seeds = 64 runs. Seeds are derived from the
   (load, seed) grid position, so the task list — and with it every
   per-run ledger total — is deterministic. *)
let loads = [ 0.3; 0.6; 0.9; 1.2 ]

let uniform_instance ~seed ~load =
  Rrs_workload.Random_workloads.uniform ~seed ~colors:24 ~delta:4
    ~bound_log_range:(0, 5) ~horizon:512 ~load ~rate_limited:true ()

let grid ?(inject_crash = false) ~n () =
  let seeds = [ 1; 2; 3; 4 ] in
  let sound =
    List.concat_map
      (fun (name, policy) ->
        List.concat_map
          (fun load ->
            List.map
              (fun seed ->
                let instance = uniform_instance ~seed ~load in
                Sweep.task
                  ~key:
                    (Printf.sprintf "%s/load=%.1f/seed=%d/n=%d" name load seed
                       n)
                  ~policy ~n instance)
              seeds)
          loads)
      policies
  in
  if not inject_crash then sound
  else
    sound
    @ List.map
        (fun load ->
          Sweep.task
            ~key:(Printf.sprintf "crashy/load=%.1f/seed=1/n=%d" load n)
            ~policy:(module Crashy) ~n
            (uniform_instance ~seed:1 ~load))
        loads

let total_cost outcomes =
  List.fold_left (fun acc (o : Sweep.outcome) -> acc + o.cost) 0 outcomes

let run ?json ?(inject_crash = false) () =
  let tasks = grid ~inject_crash ~n:16 () in
  Format.printf "@.---- sweep: %d-run grid, sequential vs parallel%s ----@."
    (List.length tasks)
    (if inject_crash then " (crash injection on)" else "");
  let time f =
    let t0 = Clock.now_s () in
    let result = f () in
    (result, Clock.elapsed_s t0)
  in
  let seq_results, seq_wall =
    time (fun () -> Sweep.run_results ~domains:1 tasks)
  in
  let sequential = List.filter_map Result.to_option seq_results in
  let seq_failures =
    List.filter_map
      (function Ok _ -> None | Error (f : Sweep.failure) -> Some f)
      seq_results
  in
  let domains = max 4 (Sweep.default_domains ()) in
  let profiled = Sweep.run_profiled ~domains tasks in
  let parallel = profiled.Sweep.outcomes in
  let par_wall = profiled.Sweep.wall_s in
  let identical =
    List.length sequential = List.length parallel
    && List.for_all2
         (fun (a : Sweep.outcome) (b : Sweep.outcome) ->
           a.key = b.key && a.cost = b.cost
           && a.reconfig_count = b.reconfig_count
           && a.drop_count = b.drop_count
           && a.exec_count = b.exec_count)
         sequential parallel
    && List.map (fun (f : Sweep.failure) -> f.key) seq_failures
       = List.map (fun (f : Sweep.failure) -> f.key) profiled.Sweep.failures
  in
  let table =
    Table.create
      ~title:
        (Printf.sprintf "sweep: %d-run grid (n=16, uniform rate-limited)"
           (List.length tasks))
      ~columns:
        [ "mode"; "domains"; "wall (s)"; "total cost"; "failed";
          "ledgers match" ]
  in
  Table.add_row table
    [
      "sequential"; "1";
      Printf.sprintf "%.3f" seq_wall;
      Table.cell_int (total_cost sequential);
      Table.cell_int (List.length seq_failures);
      "-";
    ];
  Table.add_row table
    [
      "parallel";
      Table.cell_int domains;
      Printf.sprintf "%.3f" par_wall;
      Table.cell_int (total_cost parallel);
      Table.cell_int (List.length profiled.Sweep.failures);
      (if identical then "yes" else "MISMATCH");
    ];
  Table.print table;
  List.iter
    (fun (f : Sweep.failure) ->
      Format.printf "failed task %s: %s (attempt %d)@." f.key f.exn_text
        f.attempts)
    profiled.Sweep.failures;
  let util =
    Table.create ~title:"per-domain utilization (parallel pass)"
      ~columns:[ "domain"; "tasks"; "busy (s)"; "util" ]
  in
  List.iter
    (fun (load : Sweep.domain_load) ->
      Table.add_row util
        [
          Table.cell_int load.domain;
          Table.cell_int load.tasks;
          Printf.sprintf "%.3f" load.busy_s;
          Printf.sprintf "%.0f%%"
            (100.0 *. load.busy_s /. Float.max profiled.Sweep.wall_s 1e-9);
        ])
    profiled.Sweep.loads;
  Table.print util;
  Format.printf "speedup: %.2fx (%d domains; single-core hosts report ~1x)@."
    (seq_wall /. Float.max par_wall 1e-9)
    domains;
  if not identical then begin
    Format.eprintf "sweep: parallel outcomes diverge from sequential@.";
    exit 1
  end;
  (match json with
  | None -> ()
  | Some path ->
      let b = Bench_io.create ~tag:(Bench_io.tag_of_path path) in
      Bench_io.start_experiment b ~id:"sweep"
        ~claim:
          (Printf.sprintf
             "%d-run grid: sequential %.3fs vs parallel %.3fs on %d domains"
             (List.length tasks) seq_wall par_wall domains);
      List.iter
        (fun (o : Sweep.outcome) ->
          let policy = List.hd (String.split_on_char '/' o.key) in
          Bench_io.record_outcome b ~workload:o.key ~policy o)
        parallel;
      List.iter (Bench_io.record_failure b) profiled.Sweep.failures;
      Bench_io.set_domain_load b profiled.Sweep.loads;
      Bench_io.write b ~path;
      Format.printf "wrote %s@." path);
  (* Degraded completion is success; only a sweep with zero surviving
     outcomes is a hard failure. *)
  if parallel = [] && profiled.Sweep.failures <> [] then begin
    Format.eprintf "sweep: every task failed@.";
    exit 1
  end
