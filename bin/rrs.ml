(* rrs — command-line front end for the reconfigurable-resource-scheduling
   library.

   Subcommands: gen, info, run, trace-run, report, compare, sweep,
   validate, weighted, faults. An instance
   SOURCE argument is either a workload spec ("uniform:colors=8,load=0.9")
   or "@path/to/file.trace". *)

open Cmdliner

let setup_logs verbose =
  Fmt_tty.setup_std_outputs ();
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (if verbose then Some Logs.Debug else Some Logs.Warning)

let verbose_arg =
  let doc = "Enable debug-level engine tracing." in
  Term.(const setup_logs $ Arg.(value & flag & info [ "v"; "verbose" ] ~doc))

let load_source source =
  if String.length source > 0 && source.[0] = '@' then
    let path = String.sub source 1 (String.length source - 1) in
    Rrs_sim.Trace.load ~path
  else Rrs_workload.Spec.parse source

let or_die = function
  | Ok value -> value
  | Error message ->
      Format.eprintf "error: %s@." message;
      exit 1

let source_arg =
  let doc =
    "Instance source: a workload spec like 'uniform:colors=8,load=0.9' \
     (kinds: " ^ String.concat ", " Rrs_workload.Spec.kinds
    ^ ") or '@file.trace'."
  in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"SOURCE" ~doc)

let n_arg =
  Arg.(value & opt int 8 & info [ "n" ] ~docv:"N" ~doc:"Online resources.")

let m_arg =
  Arg.(
    value & opt int 1
    & info [ "m" ] ~docv:"M" ~doc:"Offline adversary resources (references).")

(* ---- gen ---- *)

let gen_cmd =
  let output =
    Arg.(
      value & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write the trace to $(docv).")
  in
  let run source output =
    let instance = or_die (load_source source) in
    match output with
    | Some path ->
        Rrs_sim.Trace.save instance ~path;
        Format.printf "%a@.wrote %s@." Rrs_sim.Instance.pp_summary instance path
    | None -> print_string (Rrs_sim.Trace.to_string instance)
  in
  Cmd.v
    (Cmd.info "gen" ~doc:"Generate a workload and print or save its trace.")
    Term.(const run $ source_arg $ output)

(* ---- info ---- *)

let info_cmd =
  let run source =
    let instance = or_die (load_source source) in
    Format.printf "%a@." Rrs_sim.Instance.pp_summary instance;
    Format.printf "pipeline: %s@."
      (Rrs_core.Solver.pipeline_to_string (Rrs_core.Solver.classify instance));
    let bounds = instance.Rrs_sim.Instance.bounds in
    let distinct = List.sort_uniq Int.compare (Array.to_list bounds) in
    Format.printf "distinct delay bounds: %s@."
      (String.concat ", " (List.map string_of_int distinct))
  in
  Cmd.v
    (Cmd.info "info" ~doc:"Classify an instance and print its summary.")
    Term.(const run $ source_arg)

(* ---- run ---- *)

let algo_arg =
  let doc = "Algorithm: dlru, edf, dlru-edf, seq-edf, or solver (the layered pipeline)." in
  Arg.(value & opt string "solver" & info [ "algo" ] ~docv:"ALGO" ~doc)

let policy_of_name = Rrs_core.Policies.find

let run_cmd =
  let no_validate =
    Arg.(value & flag & info [ "no-validate" ] ~doc:"Skip schedule validation.")
  in
  let timeline =
    Arg.(
      value & flag
      & info [ "timeline" ]
          ~doc:"Print an ASCII timeline of the schedule (solver only).")
  in
  let metrics =
    Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:"Print per-color QoS metrics (solver only).")
  in
  let run () source n algo no_validate timeline metrics =
    let instance = or_die (load_source source) in
    let delta = instance.Rrs_sim.Instance.delta in
    match algo with
    | "solver" -> (
        let outcome = or_die (Rrs_core.Solver.solve ~n instance) in
        Format.printf "pipeline: %s@."
          (Rrs_core.Solver.pipeline_to_string outcome.pipeline);
        Format.printf "cost: %d (reconfig %d x %d = %d, drops %d)@." outcome.cost
          outcome.reconfig_count delta (delta * outcome.reconfig_count)
          outcome.drop_count;
        List.iter (fun (key, value) -> Format.printf "  %s = %d@." key value)
          outcome.stats;
        if timeline then
          print_string (Rrs_stats.Render.timeline ~max_width:110 outcome.schedule);
        if metrics then
          Rrs_stats.Table.print
            (Rrs_stats.Metrics.to_table
               (Rrs_stats.Metrics.of_schedule outcome.schedule));
        if not no_validate then
          match Rrs_sim.Schedule.validate outcome.schedule with
          | Ok () -> Format.printf "schedule: valid@."
          | Error errors ->
              Format.printf "schedule INVALID (%d errors):@." (List.length errors);
              List.iteri
                (fun i e -> if i < 5 then Format.printf "  %s@." e)
                errors;
              exit 1)
    | name -> (
        match policy_of_name name with
        | None ->
            Format.eprintf "unknown algorithm %S@." name;
            exit 1
        | Some policy ->
            let result =
              Rrs_sim.Engine.run ~record_events:(not no_validate) ~n ~policy
                instance
            in
            Format.printf "%a@." Rrs_sim.Ledger.pp_summary result.ledger;
            List.iter (fun (key, value) -> Format.printf "  %s = %d@." key value)
              result.stats;
            if not no_validate then
              let schedule =
                Rrs_sim.Schedule.of_run ~instance ~n ~speed:1 result.ledger
              in
              match Rrs_sim.Schedule.validate schedule with
              | Ok () -> Format.printf "schedule: valid@."
              | Error errors ->
                  Format.printf "schedule INVALID (%d errors)@."
                    (List.length errors);
                  exit 1)
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run one algorithm on an instance.")
    Term.(
      const run $ verbose_arg $ source_arg $ n_arg $ algo_arg $ no_validate
      $ timeline $ metrics)

let csv_arg =
  Arg.(value & flag & info [ "csv" ] ~doc:"Emit CSV instead of an ASCII table.")

(* ---- trace-run ---- *)

let trace_run_cmd =
  (* Unlike [run], the solver pipeline is not an option here — the trace
     streams engine rounds — so the default is the paper's algorithm. *)
  let algo_arg =
    let doc = "Algorithm: dlru, edf, dlru-edf or seq-edf." in
    Arg.(value & opt string "dlru-edf" & info [ "algo" ] ~docv:"ALGO" ~doc)
  in
  let output =
    Arg.(
      value & opt string "rrs-events.jsonl"
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:
            "Write the event stream to $(docv) as versioned JSONL (schema \
             rrs-events/2, one JSON object per line; read it back with \
             'rrs report').")
  in
  let no_probes =
    Arg.(
      value & flag
      & info [ "no-probes" ]
          ~doc:"Skip the engine probes (slack/latency/churn/queue-depth).")
  in
  let faults_file =
    Arg.(
      value & opt (some string) None
      & info [ "faults" ] ~docv:"PLAN"
          ~doc:
            "Inject the rrs-faults/1 plan from $(docv) (see 'rrs faults'): \
             crashed locations go dark, poisoned reconfigurations pay delta \
             without taking effect.")
  in
  let run () source n algo output no_probes faults_file =
    let instance = or_die (load_source source) in
    match policy_of_name algo with
    | None ->
        Format.eprintf
          "unknown algorithm %S (trace-run drives the engine; use dlru, edf, \
           dlru-edf or seq-edf)@."
          algo;
        exit 1
    | Some policy ->
        let faults =
          Option.map (fun path -> or_die (Rrs_sim.Fault.load ~path)) faults_file
        in
        let channel = open_out output in
        let result =
          Fun.protect
            ~finally:(fun () -> close_out channel)
            (fun () ->
              let probes =
                if no_probes then None
                else Some (Rrs_obs.Probe.create_registry ())
              in
              Rrs_sim.Engine.run ~sink:(Rrs_sim.Event_sink.Jsonl channel)
                ?probes ~profile:true ?faults ~n ~policy instance)
        in
        Format.printf "%a@." Rrs_sim.Ledger.pp_summary result.ledger;
        (match result.profile with
        | Some profile -> Rrs_stats.Table.print (Rrs_stats.Render.phase_table profile)
        | None -> ());
        if not no_probes then
          List.iter (fun (key, value) -> Format.printf "  %s = %d@." key value)
            result.stats;
        Format.eprintf "wrote %s@." output
  in
  Cmd.v
    (Cmd.info "trace-run"
       ~doc:
         "Run one engine algorithm while streaming every ledger event and \
          per-round snapshot to a JSONL file (bounded memory at any horizon).")
    Term.(
      const run $ verbose_arg $ source_arg $ n_arg $ algo_arg $ output
      $ no_probes $ faults_file)

(* ---- report ---- *)

let report_cmd =
  let file_arg =
    Arg.(
      required & pos 0 (some string) None
      & info [] ~docv:"FILE"
          ~doc:
            "An rrs-events/1 or /2 JSONL file from trace-run, or '-' to \
             read the stream from standard input.")
  in
  let run file csv =
    match
      if file = "-" then Rrs_stats.Report.of_channel stdin
      else Rrs_stats.Report.of_path file
    with
    | Error message ->
        Format.eprintf "error: %s: %s@." file message;
        exit 1
    | Ok report ->
        let header = report.Rrs_stats.Report.header in
        if not csv then
          Format.printf "%s: delta=%d n=%d speed=%d horizon=%d colors=%d \
                         (%d events, %d rounds)@."
            header.Rrs_sim.Event_sink.hdr_name header.hdr_delta header.hdr_n
            header.hdr_speed header.hdr_horizon
            (Array.length header.hdr_bounds)
            report.Rrs_stats.Report.events_seen
            report.Rrs_stats.Report.rounds_seen;
        print_string (Rrs_stats.Report.summary_string report);
        print_newline ();
        List.iter
          (fun table ->
            if csv then print_string (Rrs_stats.Table.to_csv table)
            else Rrs_stats.Table.print table)
          (Rrs_stats.Report.tables report)
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Reconstruct a run from its JSONL event stream: the exact ledger \
          summary plus slack/latency/churn/queue-depth percentile tables.")
    Term.(const run $ file_arg $ csv_arg)

(* ---- compare ---- *)

let compare_cmd =
  let exact =
    Arg.(
      value & opt int 0
      & info [ "exact" ] ~docv:"STATES"
          ~doc:"Brute-force OPT state budget (0 = skip).")
  in
  let run source n m exact csv =
    let instance = or_die (load_source source) in
    if not csv then Format.printf "%a@." Rrs_sim.Instance.pp_summary instance;
    let reference = Rrs_stats.Experiment.reference ~exact_budget:exact ~m instance in
    if not csv then
    Format.printf "references (m=%d): lower bound %d%s%s@." m
      reference.lower_bound
      (match reference.exact with
      | Some opt -> Printf.sprintf ", exact OPT %d" opt
      | None -> "")
      (match reference.greedy_upper with
      | Some g -> Printf.sprintf ", greedy upper %d" g
      | None -> "");
    let table =
      Rrs_stats.Table.create ~title:(Printf.sprintf "comparison (n=%d)" n)
        ~columns:[ "algorithm"; "cost"; "reconfig"; "drops"; "ratio" ]
    in
    List.iter
      (fun (name, policy) ->
        let row = Rrs_stats.Experiment.run_policy ~n ~reference ~policy instance in
        Rrs_stats.Table.add_row table
          [
            name;
            Rrs_stats.Table.cell_int row.cost;
            Rrs_stats.Table.cell_int row.reconfig_count;
            Rrs_stats.Table.cell_int row.drop_count;
            Rrs_stats.Table.cell_ratio row.ratio;
          ])
      Rrs_stats.Experiment.standard_policies;
    (match Rrs_stats.Experiment.run_solver ~n ~reference instance with
    | Ok row ->
        Rrs_stats.Table.add_row table
          [
            row.algorithm;
            Rrs_stats.Table.cell_int row.cost;
            Rrs_stats.Table.cell_int row.reconfig_count;
            Rrs_stats.Table.cell_int row.drop_count;
            Rrs_stats.Table.cell_ratio row.ratio;
          ]
    | Error message -> Format.printf "solver failed: %s@." message);
    if csv then print_string (Rrs_stats.Table.to_csv table)
    else Rrs_stats.Table.print table
  in
  Cmd.v
    (Cmd.info "compare"
       ~doc:"Compare all policies and the solver against offline references.")
    Term.(const run $ source_arg $ n_arg $ m_arg $ exact $ csv_arg)

(* ---- sweep ---- *)

let sweep_cmd =
  let factors =
    Arg.(
      value
      & opt (list int) [ 1; 2; 4; 8; 16 ]
      & info [ "factors" ] ~docv:"LIST" ~doc:"Augmentation factors n/m.")
  in
  let json =
    Arg.(
      value & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:
            "Also write the sweep as a versioned BENCH json document to \
             $(docv) (schema rrs-bench/1; see EXPERIMENTS.md).")
  in
  let run source m factors csv json =
    let instance = or_die (load_source source) in
    let table =
      Rrs_stats.Table.create
        ~title:(Printf.sprintf "augmentation sweep (m=%d)" m)
        ~columns:[ "n/m"; "n"; "cost"; "reconfig"; "drops"; "ratio" ]
    in
    let bench =
      Option.map
        (fun path ->
          let b =
            Rrs_stats.Bench_io.create
              ~tag:(Rrs_stats.Bench_io.tag_of_path path)
          in
          Rrs_stats.Bench_io.start_experiment b ~id:"sweep"
            ~claim:
              (Printf.sprintf "augmentation sweep of %s (m=%d)"
                 instance.Rrs_sim.Instance.name m);
          (b, path))
        json
    in
    List.iter
      (fun (factor, result) ->
        match result with
        | Ok (row : Rrs_stats.Experiment.row) ->
            Option.iter
              (fun (b, _) ->
                Rrs_stats.Bench_io.record b ~policy:row.algorithm
                  ~workload:instance.Rrs_sim.Instance.name ~n:row.n
                  ~delta:instance.Rrs_sim.Instance.delta ~cost:row.cost
                  ~reconfig_count:row.reconfig_count
                  ~drop_count:row.drop_count ())
              bench;
            Rrs_stats.Table.add_row table
              [
                Rrs_stats.Table.cell_int factor;
                Rrs_stats.Table.cell_int row.n;
                Rrs_stats.Table.cell_int row.cost;
                Rrs_stats.Table.cell_int row.reconfig_count;
                Rrs_stats.Table.cell_int row.drop_count;
                Rrs_stats.Table.cell_ratio row.ratio;
              ]
        | Error message ->
            Rrs_stats.Table.add_row table
              [ Rrs_stats.Table.cell_int factor; "-"; "-"; "-"; "-"; message ])
      (Rrs_stats.Experiment.sweep_augmentation ~m ~factors instance);
    if csv then print_string (Rrs_stats.Table.to_csv table)
    else Rrs_stats.Table.print table;
    Option.iter
      (fun (b, path) ->
        Rrs_stats.Bench_io.write b ~path;
        Format.eprintf "wrote %s@." path)
      bench
  in
  Cmd.v
    (Cmd.info "sweep" ~doc:"Solver cost across resource-augmentation factors.")
    Term.(const run $ source_arg $ m_arg $ factors $ csv_arg $ json)

(* ---- validate ---- *)

let validate_cmd =
  let run source n =
    let instance = or_die (load_source source) in
    let outcome = or_die (Rrs_core.Solver.solve ~n instance) in
    match Rrs_sim.Schedule.validate outcome.schedule with
    | Ok () ->
        Format.printf "ok: %s pipeline, cost %d, schedule valid@."
          (Rrs_core.Solver.pipeline_to_string outcome.pipeline)
          outcome.cost
    | Error errors ->
        Format.printf "INVALID (%d errors)@." (List.length errors);
        List.iteri (fun i e -> if i < 10 then Format.printf "  %s@." e) errors;
        exit 1
  in
  Cmd.v
    (Cmd.info "validate"
       ~doc:"Run the solver and independently validate its schedule.")
    Term.(const run $ source_arg $ n_arg)

(* ---- faults ---- *)

let faults_cmd =
  let gen =
    let seed =
      Arg.(value & opt int 0 & info [ "seed" ] ~docv:"S" ~doc:"Generator seed.")
    in
    let horizon =
      Arg.(
        value & opt int 256
        & info [ "horizon" ] ~docv:"T" ~doc:"Rounds the plan covers.")
    in
    let density =
      Arg.(
        value & opt float 0.1
        & info [ "crash-density" ] ~docv:"P"
            ~doc:"Stationary offline fraction per location, in [0, 1).")
    in
    let mean_outage =
      Arg.(
        value & opt int 8
        & info [ "mean-outage" ] ~docv:"R"
            ~doc:"Mean crash window length in rounds.")
    in
    let fail_rate =
      Arg.(
        value & opt float 0.0
        & info [ "reconfig-fail-rate" ] ~docv:"P"
            ~doc:
              "Per (round, location) probability that reconfigurations \
               there fail (pay delta, no effect).")
    in
    let output =
      Arg.(
        value & opt (some string) None
        & info [ "o"; "output" ] ~docv:"FILE"
            ~doc:"Write the plan to $(docv) (default: stdout).")
    in
    let run () n seed horizon density mean_outage fail_rate output =
      let plan =
        try
          Rrs_workload.Fault_gen.random ~seed ~n ~horizon
            ~crash_density:density ~mean_outage ~reconfig_fail_rate:fail_rate
            ()
        with Invalid_argument message ->
          Format.eprintf "error: %s@." message;
          exit 1
      in
      match output with
      | Some path ->
          Rrs_sim.Fault.save plan ~path;
          Format.printf "%a@.wrote %s@." Rrs_sim.Fault.pp_describe plan path
      | None -> print_string (Rrs_sim.Fault.to_string plan)
    in
    Cmd.v
      (Cmd.info "gen"
         ~doc:
           "Generate a seeded random fault plan (rrs-faults/1 JSONL): \
            geometric crash/repair phases per location plus optional \
            reconfiguration failures.")
      Term.(
        const run $ verbose_arg $ n_arg $ seed $ horizon $ density
        $ mean_outage $ fail_rate $ output)
  in
  let describe =
    let file_arg =
      Arg.(
        required & pos 0 (some string) None
        & info [] ~docv:"PLAN" ~doc:"An rrs-faults/1 plan file.")
    in
    let run file =
      let plan = or_die (Rrs_sim.Fault.load ~path:file) in
      Format.printf "%a@." Rrs_sim.Fault.pp_describe plan
    in
    Cmd.v
      (Cmd.info "describe"
         ~doc:"Print every fault of a plan in human-readable form.")
      Term.(const run $ file_arg)
  in
  Cmd.group
    (Cmd.info "faults"
       ~doc:
         "Generate and inspect deterministic fault plans for 'rrs trace-run \
          --faults'.")
    [ gen; describe ]

(* ---- weighted (companion problem) ---- *)

let weighted_cmd =
  let costs =
    Arg.(
      value & opt (some (list int)) None
      & info [ "costs" ] ~docv:"LIST"
          ~doc:"Per-color drop costs (comma separated, one per color).")
  in
  let precious =
    Arg.(
      value & opt int 0
      & info [ "precious" ] ~docv:"K"
          ~doc:"Give the first $(docv) colors the --precious-cost (ignored \
                with --costs).")
  in
  let precious_cost =
    Arg.(
      value & opt int 10
      & info [ "precious-cost" ] ~docv:"C" ~doc:"Drop cost of precious colors.")
  in
  let run source n costs precious precious_cost csv =
    let weighted =
      if String.length source > 0 && source.[0] = '@' then
        let path = String.sub source 1 (String.length source - 1) in
        or_die (Rrs_uniform.Weighted_trace.load ~path)
      else
        let instance = or_die (load_source source) in
        let num_colors = Rrs_sim.Instance.num_colors instance in
        let drop_costs =
          match costs with
          | Some list ->
              if List.length list <> num_colors then begin
                Format.eprintf "error: %d costs for %d colors@."
                  (List.length list) num_colors;
                exit 1
              end;
              Array.of_list list
          | None ->
              Array.init num_colors (fun c ->
                  if c < precious then precious_cost else 1)
        in
        or_die (Rrs_uniform.Weighted.make ~instance ~drop_costs)
    in
    if not csv then begin
      Format.printf "%a@." Rrs_sim.Instance.pp_summary
        weighted.Rrs_uniform.Weighted.instance;
      Format.printf "weighted lower bound: %d@."
        (Rrs_uniform.Weighted.lower_bound weighted)
    end;
    let table =
      Rrs_stats.Table.create
        ~title:(Printf.sprintf "weighted comparison (n=%d)" n)
        ~columns:[ "algorithm"; "weighted cost" ]
    in
    let policies =
      ( "landlord",
        Rrs_uniform.Landlord.policy
          ~drop_costs:weighted.Rrs_uniform.Weighted.drop_costs )
      :: Rrs_stats.Experiment.standard_policies
    in
    List.iter
      (fun (name, policy) ->
        let cost = Rrs_uniform.Weighted.run_policy ~n ~policy weighted in
        Rrs_stats.Table.add_row table [ name; Rrs_stats.Table.cell_int cost ])
      policies;
    if csv then print_string (Rrs_stats.Table.to_csv table)
    else Rrs_stats.Table.print table
  in
  Cmd.v
    (Cmd.info "weighted"
       ~doc:
         "Companion problem [delta | c_l | D | D]: compare the weight-aware \
          Landlord policy against the weight-blind algorithms.")
    Term.(
      const run $ source_arg $ n_arg $ costs $ precious $ precious_cost $ csv_arg)

(* ---- serve / client ---- *)

let address_of_args socket tcp =
  match (socket, tcp) with
  | Some path, None -> Ok (Rrs_server.Server.Unix_socket path)
  | None, Some hostport -> (
      match String.rindex_opt hostport ':' with
      | None -> Error "expected --tcp HOST:PORT"
      | Some colon -> (
          let host = String.sub hostport 0 colon in
          let host = if host = "" then "127.0.0.1" else host in
          let port =
            String.sub hostport (colon + 1) (String.length hostport - colon - 1)
          in
          match int_of_string_opt port with
          | Some port when port >= 0 -> Ok (Rrs_server.Server.Tcp (host, port))
          | _ -> Error (Printf.sprintf "bad port %S" port)))
  | Some _, Some _ -> Error "--socket and --tcp are mutually exclusive"
  | None, None -> Error "one of --socket PATH or --tcp HOST:PORT is required"

let socket_arg =
  Arg.(
    value & opt (some string) None
    & info [ "socket" ] ~docv:"PATH" ~doc:"Listen/connect on a Unix socket.")

let tcp_arg =
  Arg.(
    value & opt (some string) None
    & info [ "tcp" ] ~docv:"HOST:PORT" ~doc:"Listen/connect over TCP.")

let wire_arg ~doc = Arg.(value & opt int 0 & info [ "wire" ] ~docv:"1|2" ~doc)

let check_wire ~default = function
  | 0 -> Ok default
  | (1 | 2) as wire -> Ok wire
  | wire -> Error (Printf.sprintf "unsupported --wire %d (want 1 or 2)" wire)

(* A metrics/admin address: HOST:PORT when the text ends in a :port,
   otherwise a Unix socket path. *)
let parse_aux_address text =
  match String.rindex_opt text ':' with
  | Some colon
    when int_of_string_opt
           (String.sub text (colon + 1) (String.length text - colon - 1))
         <> None ->
      let host = String.sub text 0 colon in
      let host = if host = "" then "127.0.0.1" else host in
      let port =
        int_of_string
          (String.sub text (colon + 1) (String.length text - colon - 1))
      in
      if port >= 0 then Ok (Rrs_server.Server.Tcp (host, port))
      else Error (Printf.sprintf "bad port in %S" text)
  | _ -> Ok (Rrs_server.Server.Unix_socket text)

let log_level_arg =
  Arg.(
    value & opt string "info"
    & info [ "log-level" ] ~docv:"LEVEL"
        ~doc:
          "Server log threshold: debug, info, warn or error. Records are \
           single key=value lines on stderr.")

let serve_cmd =
  let snap_dir =
    Arg.(
      value & opt (some string) None
      & info [ "snap-dir" ] ~docv:"DIR"
          ~doc:
            "Directory for graceful-drain snapshots; sessions found there \
             at startup are restored (rrs-sess/1).")
  in
  let trace_dir =
    Arg.(
      value & opt (some string) None
      & info [ "trace-dir" ] ~docv:"DIR"
          ~doc:"Stream each session's rrs-events/2 JSONL to $(docv).")
  in
  let domains =
    Arg.(
      value & opt int 0
      & info [ "domains" ] ~docv:"K"
          ~doc:"Worker domains (0 = one per recommended core).")
  in
  let queue_limit =
    Arg.(
      value & opt int 0
      & info [ "queue-limit" ] ~docv:"JOBS"
          ~doc:
            "Default per-session admission bound on fed-but-unstepped jobs \
             (0 = built-in default). Feeds beyond it are answered with a \
             'shed' frame.")
  in
  let no_restore =
    Arg.(
      value & flag
      & info [ "no-restore" ] ~doc:"Do not restore snapshots from --snap-dir.")
  in
  let wire =
    wire_arg
      ~doc:
        "Highest wire version to negotiate (default 2). With --wire 1 the \
         server refuses rrs-wire/2 hellos."
  in
  let snap_version =
    Arg.(
      value & opt int 0
      & info [ "snap-version" ] ~docv:"1|2"
          ~doc:
            "Session snapshot schema (default 2). 2 = rrs-snap/2: sessions \
             checkpoint their materialized state and snapshots embed only \
             the arrivals since the last checkpoint, so snapshot size and \
             restore time stay bounded however long the session runs. 1 = \
             rrs-snap/1: full-history replay (restored rrs-snap/2 \
             snapshots are never downgraded).")
  in
  let checkpoint_every =
    Arg.(
      value & opt int 0
      & info [ "checkpoint-every" ] ~docv:"ROUNDS"
          ~doc:
            "Checkpoint interval of rrs-snap/2 sessions (0 = built-in \
             default). Requires --snap-version 2.")
  in
  let max_reply =
    Arg.(
      value & opt int 0
      & info [ "max-reply" ] ~docv:"BYTES"
          ~doc:
            "Reply frame size cap (0 = the wire limit). Oversize replies — \
             an inline snapshot of a deep session — are answered with an \
             error naming the limit instead of an un-receivable frame.")
  in
  let metrics =
    Arg.(
      value & opt (some string) None
      & info [ "metrics" ] ~docv:"ADDR"
          ~doc:
            "Serve Prometheus/OpenMetrics text on $(docv) (HOST:PORT or a \
             Unix socket path), one scrape per connection. Metrics are \
             always collected; this only adds the endpoint.")
  in
  let slow_us =
    Arg.(
      value & opt int 0
      & info [ "slow-us" ] ~docv:"MICROSECONDS"
          ~doc:
            "Slow-request log threshold (0 = built-in default, 10000). \
             Requests at or over it enter the slow log served by the \
             'metrics' wire request and 'rrs top'.")
  in
  let slow_log =
    Arg.(
      value & opt int 0
      & info [ "slow-log" ] ~docv:"ENTRIES"
          ~doc:"Slow-request ring capacity (0 = built-in default, 64).")
  in
  let autosnap =
    Arg.(
      value & flag
      & info [ "autosnap" ]
          ~doc:
            "Write each session's snapshot into --snap-dir whenever a step \
             crosses a checkpoint boundary, so a crash (kill -9, no drain) \
             loses at most --checkpoint-every rounds per session. Requires \
             --snap-dir; no effect on rrs-snap/1 sessions.")
  in
  let admission =
    Arg.(
      value & opt (some string) None
      & info [ "admission" ] ~docv:"SPEC"
          ~doc:
            "Run the admission gate against the deployment capacity in \
             $(docv) (an rrs-spec/1 file, see 'rrs analyze'): the spec's n \
             (or the analytically sized minimum) times its speed is the \
             supply budget that sessions declaring rates on open/feed are \
             priced against. See --admission-mode.")
  in
  let admission_mode =
    Arg.(
      value & opt string "enforce"
      & info [ "admission-mode" ] ~docv:"MODE"
          ~doc:
            "off, warn or enforce (default enforce, effective only with \
             --admission). enforce: over-budget or infeasible declarations \
             draw admission_rejected — an open leaves no session state — \
             and declared sessions' feeds are policed against their \
             envelope. warn: violations are admitted and logged.")
  in
  let run () socket tcp snap_dir trace_dir domains queue_limit no_restore wire
      snap_version checkpoint_every max_reply metrics slow_us slow_log autosnap
      admission admission_mode log_level =
    let address = or_die (address_of_args socket tcp) in
    let max_wire = or_die (check_wire ~default:2 wire) in
    (match Rrs_server.Slog.level_of_string log_level with
    | Some level -> Rrs_server.Slog.set_level level
    | None ->
        Format.eprintf
          "error: unknown --log-level %S (want debug, info, warn or error)@."
          log_level;
        exit 1);
    let metrics =
      Option.map (fun text -> or_die (parse_aux_address text)) metrics
    in
    let admission_mode =
      or_die (Rrs_server.Admission.mode_of_string admission_mode)
    in
    let admission =
      Option.map (fun path -> or_die (Rrs_workload.Demand.load path)) admission
    in
    let config =
      {
        Rrs_server.Server.address;
        snap_dir;
        trace_dir;
        domains;
        queue_limit;
        max_wire;
        snap_version;
        checkpoint_every;
        max_reply;
        metrics;
        slow_threshold_us = slow_us;
        slow_log;
        server_id = "rrs/1.0.0";
        autosnap;
        admission;
        admission_mode;
      }
    in
    match Rrs_server.Server.serve ~restore:(not no_restore) config with
    | drained -> Format.eprintf "drained %d session(s)@." drained
    | exception Failure message ->
        Format.eprintf "error: %s@." message;
        exit 1
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the rrs-wire session server until SIGTERM/SIGINT, then \
          drain every open session to --snap-dir. A restart with the same \
          --snap-dir continues the sessions where they left off. Speaks \
          rrs-wire/1 (JSON lines) by default and upgrades to rrs-wire/2 \
          (binary) per connection when the client asks for it. With \
          --metrics, serves the merged cross-domain metrics as \
          Prometheus text on a second listener.")
    Term.(
      const run $ verbose_arg $ socket_arg $ tcp_arg $ snap_dir $ trace_dir
      $ domains $ queue_limit $ no_restore $ wire $ snap_version
      $ checkpoint_every $ max_reply $ metrics $ slow_us $ slow_log $ autosnap
      $ admission $ admission_mode $ log_level_arg)

(* The client script language, one command per line ('#' comments):
     hello
     open NAME policy=dlru delta=4 bounds=2,3,4 n=8 [speed=S] [horizon=H]
          [queue_limit=Q]
     feed NAME COLOR:COUNT [COLOR:COUNT ...]
     step NAME [ROUNDS]
     stats NAME
     snapshot NAME [FILE]   (FILE is saved inside the server's --snap-dir;
                             without FILE the document is returned inline)
     close NAME
     metrics [SLOW]    (server metrics; SLOW = slow-log entries wanted)
     raw TEXT          (send TEXT verbatim — for protocol testing)
   Each reply is printed as its JSON encoding, one per line. *)
module Client_script = struct
  let split_words line =
    String.split_on_char ' ' line |> List.filter (fun w -> w <> "")

  let kv_args words =
    List.fold_left
      (fun acc word ->
        match String.index_opt word '=' with
        | None -> acc
        | Some eq ->
            (String.sub word 0 eq,
             String.sub word (eq + 1) (String.length word - eq - 1))
            :: acc)
      [] words

  let int_kv kvs key ~default =
    match List.assoc_opt key kvs with
    | None -> Ok default
    | Some value -> (
        match int_of_string_opt value with
        | Some v -> Ok v
        | None -> Error (Printf.sprintf "%s: expected an integer, got %S" key value))

  let required_int kvs key =
    match List.assoc_opt key kvs with
    | None -> Error (Printf.sprintf "missing %s=..." key)
    | Some value -> (
        match int_of_string_opt value with
        | Some v -> Ok v
        | None -> Error (Printf.sprintf "%s: expected an integer, got %S" key value))

  let ( let* ) = Result.bind

  let parse_bounds text =
    let parts = String.split_on_char ',' text in
    let rec go acc = function
      | [] -> Ok (Array.of_list (List.rev acc))
      | part :: rest -> (
          match int_of_string_opt part with
          | Some v -> go (v :: acc) rest
          | None -> Error (Printf.sprintf "bounds: bad entry %S" part))
    in
    go [] parts

  let parse_pairs words =
    let rec go colors counts = function
      | [] -> Ok (Array.of_list (List.rev colors), Array.of_list (List.rev counts))
      | word :: rest -> (
          match String.index_opt word ':' with
          | None -> Error (Printf.sprintf "expected COLOR:COUNT, got %S" word)
          | Some colon -> (
              let c = String.sub word 0 colon in
              let k = String.sub word (colon + 1) (String.length word - colon - 1) in
              match (int_of_string_opt c, int_of_string_opt k) with
              | Some c, Some k -> go (c :: colors) (k :: counts) rest
              | _ -> Error (Printf.sprintf "expected COLOR:COUNT, got %S" word)))
    in
    go [] [] words

  (* Optional declared-envelope kvs on open/feed:
     rates=1,0,2 rate_den=2 [bursts=0,0,4]. *)
  let parse_decl kvs =
    match List.assoc_opt "rates" kvs with
    | None -> (
        match List.assoc_opt "rate_den" kvs with
        | Some _ -> Error "rate_den=... without rates=..."
        | None -> Ok None)
    | Some rates ->
        let* d_rates = parse_bounds rates in
        let* d_den = int_kv kvs "rate_den" ~default:1 in
        let* d_bursts =
          match List.assoc_opt "bursts" kvs with
          | None -> Ok [||]
          | Some b -> parse_bounds b
        in
        Ok (Some { Rrs_server.Wire.d_rates; d_den; d_bursts })

  (* One line -> either a frame to send or a raw payload. *)
  type action = Send of Rrs_server.Wire.frame | Raw of string | Skip

  let parse line =
    let line = String.trim line in
    if line = "" || line.[0] = '#' then Ok Skip
    else
      match split_words line with
      | [] -> Ok Skip
      | "hello" :: _ ->
          Ok (Send (Rrs_server.Wire.Hello { client_version = Rrs_server.Wire.version }))
      | "raw" :: _ ->
          (* everything after the first space, verbatim *)
          let payload =
            match String.index_opt line ' ' with
            | None -> ""
            | Some sp -> String.sub line (sp + 1) (String.length line - sp - 1)
          in
          Ok (Raw payload)
      | "open" :: session :: rest ->
          let kvs = kv_args rest in
          let* policy =
            match List.assoc_opt "policy" kvs with
            | Some p -> Ok p
            | None -> Error "missing policy=..."
          in
          let* delta = required_int kvs "delta" in
          let* n = required_int kvs "n" in
          let* bounds =
            match List.assoc_opt "bounds" kvs with
            | Some b -> parse_bounds b
            | None -> Error "missing bounds=..."
          in
          let* speed = int_kv kvs "speed" ~default:1 in
          let* horizon = int_kv kvs "horizon" ~default:0 in
          let* queue_limit = int_kv kvs "queue_limit" ~default:0 in
          let* decl = parse_decl kvs in
          Ok
            (Send
               (Rrs_server.Wire.Open
                  { session; policy; delta; bounds; n; speed; horizon;
                    queue_limit; decl }))
      | "feed" :: session :: rest ->
          (* KEY=VALUE words are a (re)declaration; the rest are pairs. *)
          let pairs, kv_words =
            List.partition (fun w -> not (String.contains w '=')) rest
          in
          let* colors, counts = parse_pairs pairs in
          let* decl = parse_decl (kv_args kv_words) in
          Ok (Send (Rrs_server.Wire.Feed { session; colors; counts; decl }))
      | "step" :: session :: rest ->
          let* rounds =
            match rest with
            | [] -> Ok 1
            | [ k ] -> (
                match int_of_string_opt k with
                | Some k -> Ok k
                | None -> Error (Printf.sprintf "step: bad round count %S" k))
            | _ -> Error "step: too many arguments"
          in
          Ok (Send (Rrs_server.Wire.Step { session; rounds }))
      | [ "stats"; session ] -> Ok (Send (Rrs_server.Wire.Stats { session }))
      | "snapshot" :: session :: rest ->
          let* path =
            match rest with
            | [] -> Ok None
            | [ path ] -> Ok (Some path)
            | _ -> Error "snapshot: too many arguments"
          in
          Ok (Send (Rrs_server.Wire.Snapshot { session; path }))
      | [ "close"; session ] -> Ok (Send (Rrs_server.Wire.Close { session }))
      | "metrics" :: rest ->
          let* slow =
            match rest with
            | [] -> Ok 0
            | [ k ] -> (
                match int_of_string_opt k with
                | Some k -> Ok k
                | None ->
                    Error (Printf.sprintf "metrics: bad slow count %S" k))
            | _ -> Error "metrics: too many arguments"
          in
          Ok (Send (Rrs_server.Wire.Metrics { slow }))
      | verb :: _ -> Error (Printf.sprintf "unknown command %S" verb)
end

let client_cmd =
  let script_arg =
    Arg.(
      value & pos 0 string "-"
      & info [] ~docv:"SCRIPT"
          ~doc:"Command script ('-' = standard input), one command per line.")
  in
  let wire =
    wire_arg
      ~doc:
        "Wire version to negotiate at connect (default 1). With --wire 2 \
         the session upgrades to the binary framing before the script runs."
  in
  let timeout_ms =
    Arg.(
      value & opt int 0
      & info [ "timeout-ms" ] ~docv:"MS"
          ~doc:
            "Per-call deadline: a reply not received within $(docv) fails \
             the command with a clean error instead of blocking (0 = no \
             deadline). Also bounds the connect itself.")
  in
  let retries =
    Arg.(
      value & opt int 0
      & info [ "retries" ] ~docv:"K"
          ~doc:
            "Retry failed calls up to $(docv) times with jittered \
             exponential backoff. Only requests whose replay is safe \
             (hello/stats/metrics) are retried after bytes were written; \
             feed/step and the other mutating commands are retried only \
             when the connection attempt itself failed.")
  in
  let run () socket tcp script wire timeout_ms retries =
    let address = or_die (address_of_args socket tcp) in
    let wire = or_die (check_wire ~default:1 wire) in
    if retries < 0 then begin
      Format.eprintf "error: negative --retries %d@." retries;
      exit 1
    end;
    let channel = if script = "-" then stdin else open_in script in
    let timeout_ms = if timeout_ms > 0 then Some timeout_ms else None in
    let endpoint =
      Rrs_server.Client.Endpoint.create ?timeout_ms
        ~retry:(Rrs_server.Client.retry_policy ~attempts:(retries + 1) ())
        ~wire address
    in
    (* Satellite contract for every CLI entry: a dead or unresolvable
       address is a one-line "cannot connect: ..." and exit 1. *)
    (match Rrs_server.Client.Endpoint.connection endpoint with
    | Ok _ -> ()
    | Error message ->
        Format.eprintf "error: %s@." message;
        exit 1);
    let failures = ref 0 in
    (* [raw] exists to poke the protocol with malformed input, so an
       [error] reply to it is the expected outcome, not a failure. *)
    let print_result ~error_expected = function
      | Ok frame ->
          print_endline (Rrs_server.Wire.encode frame);
          (match frame with
          | Rrs_server.Wire.Error_frame _ when not error_expected ->
              incr failures
          | _ -> ())
      | Error message ->
          Format.eprintf "error: %s@." message;
          incr failures
    in
    let connection_wire () =
      match Rrs_server.Client.Endpoint.connection endpoint with
      | Ok c -> Rrs_server.Client.wire_version c
      | Error _ -> wire
    in
    let rec loop number =
      match input_line channel with
      | exception End_of_file -> ()
      | line ->
          (match Client_script.parse line with
          | Ok Client_script.Skip -> ()
          | Ok (Client_script.Send frame) ->
              (* [hello] re-states the version already in effect so it
                 never downgrades a negotiated /2 connection. *)
              let frame =
                match frame with
                | Rrs_server.Wire.Hello _ when connection_wire () = 2 ->
                    Rrs_server.Wire.Hello
                      { client_version = Rrs_server.Wire.version2 }
                | frame -> frame
              in
              print_result ~error_expected:false
                (Rrs_server.Client.Endpoint.call endpoint frame)
          | Ok (Client_script.Raw payload) ->
              (* Raw lines go out on the endpoint's live connection;
                 write failures are clean one-line errors like
                 everything else. *)
              (match Rrs_server.Client.Endpoint.connection endpoint with
              | Error message ->
                  Format.eprintf "error: %s@." message;
                  incr failures
              | Ok c ->
                  (match Rrs_server.Client.send_raw c payload with
                  | () ->
                      print_result ~error_expected:true
                        (Rrs_server.Client.read_reply ?deadline_ms:timeout_ms c)
                  | exception Sys_error message ->
                      Format.eprintf "error: connection lost: %s@." message;
                      incr failures))
          | Error message ->
              Format.eprintf "%s:%d: %s@." script number message;
              incr failures);
          loop (number + 1)
    in
    loop 1;
    Rrs_server.Client.Endpoint.close endpoint;
    if script <> "-" then close_in channel;
    if !failures > 0 then exit 2
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:
         "Drive an rrs serve instance (or an rrs route front) from a \
          command script: open named sessions, feed arrivals, step rounds, \
          query stats, snapshot and close. Replies are printed as \
          rrs-wire/1 JSON, one per line (even when the connection itself \
          runs the /2 binary framing); exits 2 if any command failed. \
          --timeout-ms bounds every call; --retries adds bounded \
          jittered-backoff retry for replay-safe requests.")
    Term.(
      const run $ verbose_arg $ socket_arg $ tcp_arg $ script_arg $ wire
      $ timeout_ms $ retries)

(* ---- analyze: capacity analysis over an rrs-spec/1 file ---- *)

let analyze_cmd =
  let spec_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"SPEC"
          ~doc:
            "An rrs-spec/1 workload spec file: a header line with delta, \
             speed, colors and optionally a deployment size n, then one \
             line per color with its delay bound, token-bucket rate \
             (rate_num/rate_den jobs per round) and burst.")
  in
  let n_opt =
    Arg.(
      value & opt (some int) None
      & info [ "n" ] ~docv:"N"
          ~doc:
            "Verify this deployment size (overrides the spec's n). With \
             neither, analyze sizes the minimal feasible n instead.")
  in
  let policy =
    Arg.(
      value & opt string "seq-edf"
      & info [ "policy" ] ~docv:"POLICY"
          ~doc:
            "Policy for the simulation cross-check and --probe. The \
             default seq-edf reference caches distinct colors in all n \
             locations, matching the dedicated-allocation supply model; \
             the Section-3 online policies (dlru, edf, dlru-edf) use only \
             n/2 and need roughly twice the analytic minimum.")
  in
  let sim_rounds =
    Arg.(
      value & opt int 400
      & info [ "sim-rounds" ] ~docv:"R"
          ~doc:"Rounds of the simulation cross-check.")
  in
  let no_sim =
    Arg.(
      value & flag
      & info [ "no-sim" ] ~doc:"Skip the simulation cross-check.")
  in
  let calibrate =
    Arg.(
      value & opt (some string) None
      & info [ "calibrate" ] ~docv:"EVENTS"
          ~doc:
            "Fit empirical per-color supply curves (sustained rate and \
             startup delay) from an rrs-events/1 or /2 stream file and \
             print them alongside the analytic report.")
  in
  let probe =
    Arg.(
      value & flag
      & info [ "probe" ]
          ~doc:
            "Calibrate from a short simulated probe run of the spec at \
             the chosen n (empirical supply as --calibrate, no stream \
             file needed).")
  in
  let run () spec_path n_opt policy sim_rounds no_sim calibrate probe =
    let module C = Rrs_analysis.Capacity in
    let module Cal = Rrs_analysis.Calibrate in
    let spec = or_die (Rrs_workload.Demand.load spec_path) in
    let target =
      match n_opt with Some n -> Some n | None -> spec.Rrs_workload.Demand.n
    in
    (* fit = the analytic verdict; n/allocation feed the report. *)
    let n, allocation, fit =
      match target with
      | Some n -> (
          match C.check ~n spec with
          | C.Fits { allocation; spare } ->
              Format.printf "%a@." C.pp_report (C.report ~n ~allocation spec);
              Format.printf "verdict fit n=%d required=%d spare=%d@." n
                (n - spare) spare;
              (n, Some allocation, true)
          | C.Overcommitted { allocation; required; available; binding } ->
              Format.printf "%a@." C.pp_report (C.report ~n ~allocation spec);
              Format.printf
                "verdict overcommitted n=%d required=%d binding_color=%d@."
                available required binding;
              (n, Some allocation, false)
          | C.Unsatisfiable { color; reason } ->
              Format.printf "verdict unsatisfiable color=%d reason=%S@." color
                reason;
              (n, None, false))
      | None -> (
          match C.size spec with
          | Ok (n, allocation) ->
              Format.printf "%a@." C.pp_report (C.report ~n ~allocation spec);
              Format.printf "verdict sized n=%d@." n;
              (n, Some allocation, true)
          | Error reason ->
              Format.printf "verdict unsatisfiable reason=%S@." reason;
              (0, None, false))
    in
    if (not no_sim) && allocation <> None && n > 0 then begin
      let sim = or_die (C.simulate ~policy ~rounds:sim_rounds ~n spec) in
      Format.printf "sim policy=%s rounds=%d jobs=%d execs=%d drops=%d@."
        policy sim.C.sim_rounds sim.C.sim_jobs sim.C.sim_execs sim.C.sim_drops;
      if fit && sim.C.sim_drops > 0 then
        Format.printf
          "warning: analytically feasible but the %s simulation dropped %d \
           job(s) — the Section-3 online policies cache only n/2 colors \
           (resource augmentation) and need roughly twice the analytic \
           minimum; seq-edf realizes the dedicated-allocation model@."
          policy sim.C.sim_drops
    end;
    Option.iter
      (fun path -> Format.printf "%a@." Cal.pp (or_die (Cal.of_file path)))
      calibrate;
    if probe && n > 0 then
      Format.printf "%a@." Cal.pp
        (or_die (Cal.probe ~policy ~n spec));
    if not fit then exit 1
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Capacity analysis of a declared workload (rrs-spec/1): verify a \
          deployment size or size the minimal one via the demand-bound vs \
          supply-bound check, print the per-color capacity report with \
          headroom, cross-validate by simulation, and optionally fit \
          empirical supply curves from an event stream (--calibrate) or a \
          probe run (--probe). Exits 1 when the workload does not fit.")
    Term.(
      const run $ verbose_arg $ spec_arg $ n_opt $ policy $ sim_rounds
      $ no_sim $ calibrate $ probe)

(* ---- top: a refreshing live view over the 'metrics' wire request ---- *)

let top_cmd =
  let interval =
    Arg.(
      value & opt float 1.0
      & info [ "interval" ] ~docv:"SECONDS" ~doc:"Seconds between refreshes.")
  in
  let count =
    Arg.(
      value & opt int 0
      & info [ "count" ] ~docv:"K"
          ~doc:"Stop after $(docv) refreshes (0 = until interrupted).")
  in
  let slow =
    Arg.(
      value & opt int 8
      & info [ "slow" ] ~docv:"K" ~doc:"Slow-log entries to show.")
  in
  let wire =
    wire_arg ~doc:"Wire version to negotiate at connect (default 1)."
  in
  let timeout_ms =
    Arg.(
      value & opt int 0
      & info [ "timeout-ms" ] ~docv:"MS"
          ~doc:
            "Bound the connect and every metrics poll by $(docv); an \
             unresponsive server fails the command instead of freezing \
             the display (0 = no deadline).")
  in
  let module Json = Rrs_sim.Event_sink.Json in
  let run () socket tcp interval count slow wire timeout_ms =
    let address = or_die (address_of_args socket tcp) in
    let wire = or_die (check_wire ~default:1 wire) in
    let interval = if interval > 0.01 then interval else 0.01 in
    let timeout_ms = if timeout_ms > 0 then Some timeout_ms else None in
    let client =
      match Rrs_server.Client.try_connect ?timeout_ms address with
      | Ok client -> client
      | Error message ->
          Format.eprintf "error: %s@." message;
          exit 1
    in
    if wire = 2 then or_die (Rrs_server.Client.negotiate client ~wire);
    let previous = ref None in
    let rec loop remaining =
      if remaining <> 0 then begin
        match
          Rrs_server.Client.call ?deadline_ms:timeout_ms client
            (Rrs_server.Wire.Metrics { slow })
        with
        | Ok (Rrs_server.Wire.Metrics_ok { doc; slow = slow_doc }) ->
            let fields =
              try Json.parse_fields doc
              with Json.Parse_error message ->
                Format.eprintf "error: bad metrics document: %s@." message;
                exit 1
            in
            let slow_lines =
              if slow_doc = "" then []
              else String.split_on_char '\n' slow_doc
            in
            let sample =
              { Rrs_server.Top_view.at = Rrs_obs.Clock.now_s (); fields }
            in
            (* Clear and repaint only when this is a refreshing view. *)
            if count <> 1 then print_string "\027[2J\027[H";
            print_string
              (Rrs_server.Top_view.render ~previous:!previous sample
                 ~slow:slow_lines);
            flush stdout;
            previous := Some sample;
            if remaining <> 1 then begin
              Unix.sleepf interval;
              loop (remaining - 1)
            end
        | Ok (Rrs_server.Wire.Error_frame { message }) ->
            Format.eprintf "error: %s@." message;
            exit 1
        | Ok frame ->
            Format.eprintf "error: unexpected reply: %s@."
              (Rrs_server.Wire.encode frame);
            exit 1
        | Error message ->
            Format.eprintf "error: %s@." message;
            exit 1
      end
    in
    loop (if count <= 0 then -1 else count);
    Rrs_server.Client.close client
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Live view of an rrs serve instance: rounds/s and requests/s, \
          per-frame-type latency percentiles (server-side), lock-wait and \
          step timings, shed counts and the slow-request log — polled over \
          the 'metrics' wire request.")
    Term.(
      const run $ verbose_arg $ socket_arg $ tcp_arg $ interval $ count $ slow
      $ wire $ timeout_ms)

let route_cmd =
  let shards =
    Arg.(
      value & opt_all string []
      & info [ "shard" ] ~docv:"ADDR"
          ~doc:
            "Backend shard address (HOST:PORT or a Unix socket path). \
             Repeat once per shard; the literal $(docv) text is the \
             shard's stable ring label, so keep spellings identical \
             across restarts.")
  in
  let domains =
    Arg.(
      value & opt int 0
      & info [ "domains" ] ~docv:"K"
          ~doc:"Front worker domains (0 = built-in default, 4).")
  in
  let wire =
    wire_arg
      ~doc:
        "Highest wire version negotiable on the front (default 2). With \
         --wire 1 the router refuses rrs-wire/2 hellos."
  in
  let backend_wire =
    Arg.(
      value & opt int 0
      & info [ "backend-wire" ] ~docv:"1|2"
          ~doc:"Framing spoken to the shards (default 2, binary).")
  in
  let timeout_ms =
    Arg.(
      value & opt int 0
      & info [ "timeout-ms" ] ~docv:"MS"
          ~doc:
            "Per-backend-call deadline (default 2000). A shard not \
             answering within $(docv) counts as a failure; the client \
             gets a clean error, never a hang.")
  in
  let connect_timeout_ms =
    Arg.(
      value & opt int 0
      & info [ "connect-timeout-ms" ] ~docv:"MS"
          ~doc:"Backend connect budget (default 1000).")
  in
  let fail_threshold =
    Arg.(
      value & opt int 0
      & info [ "fail-threshold" ] ~docv:"K"
          ~doc:
            "Consecutive backend failures that trip a shard to 'down' \
             (default 3). Down shards are refused immediately and \
             re-admitted by background hello probes.")
  in
  let probe_interval_ms =
    Arg.(
      value & opt int 0
      & info [ "probe-interval-ms" ] ~docv:"MS"
          ~doc:
            "First re-admission probe delay after a trip (default 200); \
             later probes back off exponentially.")
  in
  let replicas =
    Arg.(
      value & opt int 0
      & info [ "replicas" ] ~docv:"K"
          ~doc:
            "Ring virtual nodes per shard (0 = built-in default, 128).")
  in
  let run () socket tcp shards domains wire backend_wire timeout_ms
      connect_timeout_ms fail_threshold probe_interval_ms replicas log_level =
    let address = or_die (address_of_args socket tcp) in
    let max_wire = or_die (check_wire ~default:2 wire) in
    (match Rrs_server.Slog.level_of_string log_level with
    | Some level -> Rrs_server.Slog.set_level level
    | None ->
        Format.eprintf
          "error: unknown --log-level %S (want debug, info, warn or error)@."
          log_level;
        exit 1);
    if shards = [] then begin
      Format.eprintf "error: no shards (pass --shard at least once)@.";
      exit 1
    end;
    let shards =
      List.map
        (fun text ->
          {
            Rrs_server.Router.shard_label = text;
            shard_address = or_die (parse_aux_address text);
          })
        shards
    in
    let config =
      {
        (Rrs_server.Router.default_config ~address ~shards) with
        Rrs_server.Router.domains;
        max_wire;
        backend_wire = or_die (check_wire ~default:2 backend_wire);
        timeout_ms = (if timeout_ms > 0 then timeout_ms else 2000);
        connect_timeout_ms =
          (if connect_timeout_ms > 0 then connect_timeout_ms else 1000);
        fail_threshold = (if fail_threshold > 0 then fail_threshold else 3);
        probe_interval_ms =
          (if probe_interval_ms > 0 then probe_interval_ms else 200);
        replicas;
      }
    in
    match Rrs_server.Router.serve config with
    | () -> ()
    | exception Failure message ->
        Format.eprintf "error: %s@." message;
        exit 1
  in
  Cmd.v
    (Cmd.info "route"
       ~doc:
         "Run the sharding router until SIGTERM/SIGINT: speak both \
          rrs-wire framings on the front and multiplex sessions to the \
          --shard backends by consistent hashing on session name. A dead \
          shard is detected by connect failures and call deadlines, \
          refused with clean errors while down (the router never hangs a \
          client), and re-admitted automatically once its hello answers \
          again.")
    Term.(
      const run $ verbose_arg $ socket_arg $ tcp_arg $ shards $ domains $ wire
      $ backend_wire $ timeout_ms $ connect_timeout_ms $ fail_threshold
      $ probe_interval_ms $ replicas $ log_level_arg)

let shard_set_cmd =
  let shards =
    Arg.(
      value & opt int 2
      & info [ "shards" ] ~docv:"N" ~doc:"Number of shard processes.")
  in
  let dir =
    Arg.(
      required
      & opt (some string) None
      & info [ "dir" ] ~docv:"DIR"
          ~doc:
            "State directory: per-shard Unix sockets, snapshot \
             directories and pidfiles live under $(docv). Reusing the \
             same $(docv) across restarts continues the sessions.")
  in
  let checkpoint_every =
    Arg.(
      value & opt int 0
      & info [ "checkpoint-every" ] ~docv:"ROUNDS"
          ~doc:
            "Per-shard checkpoint interval; with autosnap (always on \
             here) a kill -9 loses at most $(docv) rounds per session \
             (0 = the server's built-in default).")
  in
  let timeout_ms =
    Arg.(
      value & opt int 0
      & info [ "timeout-ms" ] ~docv:"MS"
          ~doc:"Router per-backend-call deadline (default 2000).")
  in
  let fail_threshold =
    Arg.(
      value & opt int 0
      & info [ "fail-threshold" ] ~docv:"K"
          ~doc:"Consecutive failures tripping a shard down (default 3).")
  in
  let probe_interval_ms =
    Arg.(
      value & opt int 0
      & info [ "probe-interval-ms" ] ~docv:"MS"
          ~doc:"First re-admission probe delay (default 200).")
  in
  let base_backoff_ms =
    Arg.(
      value & opt int 100
      & info [ "restart-backoff-ms" ] ~docv:"MS"
          ~doc:
            "Base restart backoff: a crashed shard is respawned after \
             $(docv) * 2^streak (capped at 5s), streak reset after 10s \
             of stable uptime.")
  in
  let run () socket tcp shards dir checkpoint_every timeout_ms fail_threshold
      probe_interval_ms base_backoff_ms log_level =
    let address = or_die (address_of_args socket tcp) in
    (match Rrs_server.Slog.level_of_string log_level with
    | Some level -> Rrs_server.Slog.set_level level
    | None ->
        Format.eprintf
          "error: unknown --log-level %S (want debug, info, warn or error)@."
          log_level;
        exit 1);
    if shards < 1 then begin
      Format.eprintf "error: --shards must be at least 1@.";
      exit 1
    end;
    let ensure_dir path =
      try Unix.mkdir path 0o755
      with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    in
    ensure_dir dir;
    let shard_specs =
      List.init shards (fun i ->
          let label = Printf.sprintf "shard-%d" i in
          let sock = Filename.concat dir (label ^ ".sock") in
          let snaps = Filename.concat dir (label ^ ".snaps") in
          ensure_dir snaps;
          let argv =
            Array.append
              [|
                Sys.executable_name; "serve"; "--socket"; sock; "--snap-dir";
                snaps; "--autosnap"; "--log-level"; log_level;
              |]
              (if checkpoint_every > 0 then
                 [| "--checkpoint-every"; string_of_int checkpoint_every |]
               else [||])
          in
          (label, sock, { Rrs_server.Shard.sp_label = label; sp_argv = argv }))
    in
    let write_pidfile ~label ~pid =
      let path = Filename.concat dir (label ^ ".pid") in
      let out = open_out path in
      output_string out (string_of_int pid ^ "\n");
      close_out out
    in
    let supervisor =
      Rrs_server.Shard.start ~base_backoff_ms ~on_spawn:write_pidfile
        (List.map (fun (_, _, spec) -> spec) shard_specs)
    in
    (* Give the shards a moment to bind before the router opens the
       front door, so the first requests don't trip healthy shards. *)
    let await_ready (label, sock, _spec) =
      let deadline = Unix.gettimeofday () +. 5.0 in
      let rec wait () =
        match
          Rrs_server.Client.try_connect ~timeout_ms:200
            (Rrs_server.Server.Unix_socket sock)
        with
        | Ok probe -> Rrs_server.Client.close probe
        | Error _ when Unix.gettimeofday () < deadline ->
            Rrs_server.Shard.poll supervisor;
            Unix.sleepf 0.05;
            wait ()
        | Error message ->
            Format.eprintf "error: shard %s not ready: %s@." label message
      in
      wait ()
    in
    List.iter await_ready shard_specs;
    let router_shards =
      List.map
        (fun (label, sock, _spec) ->
          {
            Rrs_server.Router.shard_label = label;
            shard_address = Rrs_server.Server.Unix_socket sock;
          })
        shard_specs
    in
    let config =
      {
        (Rrs_server.Router.default_config ~address ~shards:router_shards) with
        Rrs_server.Router.timeout_ms =
          (if timeout_ms > 0 then timeout_ms else 2000);
        fail_threshold = (if fail_threshold > 0 then fail_threshold else 3);
        probe_interval_ms =
          (if probe_interval_ms > 0 then probe_interval_ms else 200);
      }
    in
    let stop_requested = Atomic.make false in
    let request_stop _signal = Atomic.set stop_requested true in
    let previous_term =
      Sys.signal Sys.sigterm (Sys.Signal_handle request_stop)
    in
    let previous_int = Sys.signal Sys.sigint (Sys.Signal_handle request_stop) in
    (match Rrs_server.Router.start config with
    | router ->
        Rrs_server.Shard.run supervisor ~stop:(fun () ->
            Atomic.get stop_requested);
        Rrs_server.Slog.info ~event:"stopping" [ ("reason", "signal") ];
        Rrs_server.Router.stop router;
        Rrs_server.Shard.stop supervisor;
        Sys.set_signal Sys.sigterm previous_term;
        Sys.set_signal Sys.sigint previous_int
    | exception Failure message ->
        Rrs_server.Shard.stop supervisor;
        Format.eprintf "error: %s@." message;
        exit 1)
  in
  Cmd.v
    (Cmd.info "shard-set"
       ~doc:
         "Run a supervised shard set behind an in-process router: spawn \
          N 'rrs serve' shards (each with its own Unix socket and \
          snapshot directory under --dir, autosnap on), restart crashed \
          shards with exponential backoff, and route client sessions to \
          them by consistent hashing. A kill -9'd shard is restarted, \
          restores from its checkpoints, and is re-admitted by the \
          router's hello probe — sessions on other shards never notice.")
    Term.(
      const run $ verbose_arg $ socket_arg $ tcp_arg $ shards $ dir
      $ checkpoint_every $ timeout_ms $ fail_threshold $ probe_interval_ms
      $ base_backoff_ms $ log_level_arg)

let () =
  let doc = "reconfigurable resource scheduling with variable delay bounds" in
  let info = Cmd.info "rrs" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            gen_cmd; info_cmd; run_cmd; trace_run_cmd; report_cmd; compare_cmd;
            sweep_cmd; validate_cmd; weighted_cmd; faults_cmd; serve_cmd;
            client_cmd; analyze_cmd; top_cmd; route_cmd; shard_set_cmd;
          ]))
