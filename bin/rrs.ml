(* rrs — command-line front end for the reconfigurable-resource-scheduling
   library.

   Subcommands: gen, info, run, trace-run, report, compare, sweep,
   validate, weighted, faults. An instance
   SOURCE argument is either a workload spec ("uniform:colors=8,load=0.9")
   or "@path/to/file.trace". *)

open Cmdliner

let setup_logs verbose =
  Fmt_tty.setup_std_outputs ();
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (if verbose then Some Logs.Debug else Some Logs.Warning)

let verbose_arg =
  let doc = "Enable debug-level engine tracing." in
  Term.(const setup_logs $ Arg.(value & flag & info [ "v"; "verbose" ] ~doc))

let load_source source =
  if String.length source > 0 && source.[0] = '@' then
    let path = String.sub source 1 (String.length source - 1) in
    Rrs_sim.Trace.load ~path
  else Rrs_workload.Spec.parse source

let or_die = function
  | Ok value -> value
  | Error message ->
      Format.eprintf "error: %s@." message;
      exit 1

let source_arg =
  let doc =
    "Instance source: a workload spec like 'uniform:colors=8,load=0.9' \
     (kinds: " ^ String.concat ", " Rrs_workload.Spec.kinds
    ^ ") or '@file.trace'."
  in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"SOURCE" ~doc)

let n_arg =
  Arg.(value & opt int 8 & info [ "n" ] ~docv:"N" ~doc:"Online resources.")

let m_arg =
  Arg.(
    value & opt int 1
    & info [ "m" ] ~docv:"M" ~doc:"Offline adversary resources (references).")

(* ---- gen ---- *)

let gen_cmd =
  let output =
    Arg.(
      value & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write the trace to $(docv).")
  in
  let run source output =
    let instance = or_die (load_source source) in
    match output with
    | Some path ->
        Rrs_sim.Trace.save instance ~path;
        Format.printf "%a@.wrote %s@." Rrs_sim.Instance.pp_summary instance path
    | None -> print_string (Rrs_sim.Trace.to_string instance)
  in
  Cmd.v
    (Cmd.info "gen" ~doc:"Generate a workload and print or save its trace.")
    Term.(const run $ source_arg $ output)

(* ---- info ---- *)

let info_cmd =
  let run source =
    let instance = or_die (load_source source) in
    Format.printf "%a@." Rrs_sim.Instance.pp_summary instance;
    Format.printf "pipeline: %s@."
      (Rrs_core.Solver.pipeline_to_string (Rrs_core.Solver.classify instance));
    let bounds = instance.Rrs_sim.Instance.bounds in
    let distinct = List.sort_uniq Int.compare (Array.to_list bounds) in
    Format.printf "distinct delay bounds: %s@."
      (String.concat ", " (List.map string_of_int distinct))
  in
  Cmd.v
    (Cmd.info "info" ~doc:"Classify an instance and print its summary.")
    Term.(const run $ source_arg)

(* ---- run ---- *)

let algo_arg =
  let doc = "Algorithm: dlru, edf, dlru-edf, seq-edf, or solver (the layered pipeline)." in
  Arg.(value & opt string "solver" & info [ "algo" ] ~docv:"ALGO" ~doc)

let policy_of_name = function
  | "dlru" -> Some (module Rrs_core.Policy_lru : Rrs_sim.Policy.POLICY)
  | "edf" -> Some (module Rrs_core.Policy_edf)
  | "dlru-edf" -> Some (module Rrs_core.Policy_lru_edf)
  | "seq-edf" -> Some (module Rrs_core.Seq_edf)
  | _ -> None

let run_cmd =
  let no_validate =
    Arg.(value & flag & info [ "no-validate" ] ~doc:"Skip schedule validation.")
  in
  let timeline =
    Arg.(
      value & flag
      & info [ "timeline" ]
          ~doc:"Print an ASCII timeline of the schedule (solver only).")
  in
  let metrics =
    Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:"Print per-color QoS metrics (solver only).")
  in
  let run () source n algo no_validate timeline metrics =
    let instance = or_die (load_source source) in
    let delta = instance.Rrs_sim.Instance.delta in
    match algo with
    | "solver" -> (
        let outcome = or_die (Rrs_core.Solver.solve ~n instance) in
        Format.printf "pipeline: %s@."
          (Rrs_core.Solver.pipeline_to_string outcome.pipeline);
        Format.printf "cost: %d (reconfig %d x %d = %d, drops %d)@." outcome.cost
          outcome.reconfig_count delta (delta * outcome.reconfig_count)
          outcome.drop_count;
        List.iter (fun (key, value) -> Format.printf "  %s = %d@." key value)
          outcome.stats;
        if timeline then
          print_string (Rrs_stats.Render.timeline ~max_width:110 outcome.schedule);
        if metrics then
          Rrs_stats.Table.print
            (Rrs_stats.Metrics.to_table
               (Rrs_stats.Metrics.of_schedule outcome.schedule));
        if not no_validate then
          match Rrs_sim.Schedule.validate outcome.schedule with
          | Ok () -> Format.printf "schedule: valid@."
          | Error errors ->
              Format.printf "schedule INVALID (%d errors):@." (List.length errors);
              List.iteri
                (fun i e -> if i < 5 then Format.printf "  %s@." e)
                errors;
              exit 1)
    | name -> (
        match policy_of_name name with
        | None ->
            Format.eprintf "unknown algorithm %S@." name;
            exit 1
        | Some policy ->
            let result =
              Rrs_sim.Engine.run ~record_events:(not no_validate) ~n ~policy
                instance
            in
            Format.printf "%a@." Rrs_sim.Ledger.pp_summary result.ledger;
            List.iter (fun (key, value) -> Format.printf "  %s = %d@." key value)
              result.stats;
            if not no_validate then
              let schedule =
                Rrs_sim.Schedule.of_run ~instance ~n ~speed:1 result.ledger
              in
              match Rrs_sim.Schedule.validate schedule with
              | Ok () -> Format.printf "schedule: valid@."
              | Error errors ->
                  Format.printf "schedule INVALID (%d errors)@."
                    (List.length errors);
                  exit 1)
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run one algorithm on an instance.")
    Term.(
      const run $ verbose_arg $ source_arg $ n_arg $ algo_arg $ no_validate
      $ timeline $ metrics)

let csv_arg =
  Arg.(value & flag & info [ "csv" ] ~doc:"Emit CSV instead of an ASCII table.")

(* ---- trace-run ---- *)

let trace_run_cmd =
  (* Unlike [run], the solver pipeline is not an option here — the trace
     streams engine rounds — so the default is the paper's algorithm. *)
  let algo_arg =
    let doc = "Algorithm: dlru, edf, dlru-edf or seq-edf." in
    Arg.(value & opt string "dlru-edf" & info [ "algo" ] ~docv:"ALGO" ~doc)
  in
  let output =
    Arg.(
      value & opt string "rrs-events.jsonl"
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:
            "Write the event stream to $(docv) as versioned JSONL (schema \
             rrs-events/2, one JSON object per line; read it back with \
             'rrs report').")
  in
  let no_probes =
    Arg.(
      value & flag
      & info [ "no-probes" ]
          ~doc:"Skip the engine probes (slack/latency/churn/queue-depth).")
  in
  let faults_file =
    Arg.(
      value & opt (some string) None
      & info [ "faults" ] ~docv:"PLAN"
          ~doc:
            "Inject the rrs-faults/1 plan from $(docv) (see 'rrs faults'): \
             crashed locations go dark, poisoned reconfigurations pay delta \
             without taking effect.")
  in
  let run () source n algo output no_probes faults_file =
    let instance = or_die (load_source source) in
    match policy_of_name algo with
    | None ->
        Format.eprintf
          "unknown algorithm %S (trace-run drives the engine; use dlru, edf, \
           dlru-edf or seq-edf)@."
          algo;
        exit 1
    | Some policy ->
        let faults =
          Option.map (fun path -> or_die (Rrs_sim.Fault.load ~path)) faults_file
        in
        let channel = open_out output in
        let result =
          Fun.protect
            ~finally:(fun () -> close_out channel)
            (fun () ->
              let probes =
                if no_probes then None
                else Some (Rrs_obs.Probe.create_registry ())
              in
              Rrs_sim.Engine.run ~sink:(Rrs_sim.Event_sink.Jsonl channel)
                ?probes ~profile:true ?faults ~n ~policy instance)
        in
        Format.printf "%a@." Rrs_sim.Ledger.pp_summary result.ledger;
        (match result.profile with
        | Some profile -> Rrs_stats.Table.print (Rrs_stats.Render.phase_table profile)
        | None -> ());
        if not no_probes then
          List.iter (fun (key, value) -> Format.printf "  %s = %d@." key value)
            result.stats;
        Format.eprintf "wrote %s@." output
  in
  Cmd.v
    (Cmd.info "trace-run"
       ~doc:
         "Run one engine algorithm while streaming every ledger event and \
          per-round snapshot to a JSONL file (bounded memory at any horizon).")
    Term.(
      const run $ verbose_arg $ source_arg $ n_arg $ algo_arg $ output
      $ no_probes $ faults_file)

(* ---- report ---- *)

let report_cmd =
  let file_arg =
    Arg.(
      required & pos 0 (some string) None
      & info [] ~docv:"FILE"
          ~doc:"An rrs-events/1 or /2 JSONL file from trace-run.")
  in
  let run file csv =
    match Rrs_stats.Report.of_path file with
    | Error message ->
        Format.eprintf "error: %s: %s@." file message;
        exit 1
    | Ok report ->
        let header = report.Rrs_stats.Report.header in
        if not csv then
          Format.printf "%s: delta=%d n=%d speed=%d horizon=%d colors=%d \
                         (%d events, %d rounds)@."
            header.Rrs_sim.Event_sink.hdr_name header.hdr_delta header.hdr_n
            header.hdr_speed header.hdr_horizon
            (Array.length header.hdr_bounds)
            report.Rrs_stats.Report.events_seen
            report.Rrs_stats.Report.rounds_seen;
        print_string (Rrs_stats.Report.summary_string report);
        print_newline ();
        List.iter
          (fun table ->
            if csv then print_string (Rrs_stats.Table.to_csv table)
            else Rrs_stats.Table.print table)
          (Rrs_stats.Report.tables report)
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Reconstruct a run from its JSONL event stream: the exact ledger \
          summary plus slack/latency/churn/queue-depth percentile tables.")
    Term.(const run $ file_arg $ csv_arg)

(* ---- compare ---- *)

let compare_cmd =
  let exact =
    Arg.(
      value & opt int 0
      & info [ "exact" ] ~docv:"STATES"
          ~doc:"Brute-force OPT state budget (0 = skip).")
  in
  let run source n m exact csv =
    let instance = or_die (load_source source) in
    if not csv then Format.printf "%a@." Rrs_sim.Instance.pp_summary instance;
    let reference = Rrs_stats.Experiment.reference ~exact_budget:exact ~m instance in
    if not csv then
    Format.printf "references (m=%d): lower bound %d%s%s@." m
      reference.lower_bound
      (match reference.exact with
      | Some opt -> Printf.sprintf ", exact OPT %d" opt
      | None -> "")
      (match reference.greedy_upper with
      | Some g -> Printf.sprintf ", greedy upper %d" g
      | None -> "");
    let table =
      Rrs_stats.Table.create ~title:(Printf.sprintf "comparison (n=%d)" n)
        ~columns:[ "algorithm"; "cost"; "reconfig"; "drops"; "ratio" ]
    in
    List.iter
      (fun (name, policy) ->
        let row = Rrs_stats.Experiment.run_policy ~n ~reference ~policy instance in
        Rrs_stats.Table.add_row table
          [
            name;
            Rrs_stats.Table.cell_int row.cost;
            Rrs_stats.Table.cell_int row.reconfig_count;
            Rrs_stats.Table.cell_int row.drop_count;
            Rrs_stats.Table.cell_ratio row.ratio;
          ])
      Rrs_stats.Experiment.standard_policies;
    (match Rrs_stats.Experiment.run_solver ~n ~reference instance with
    | Ok row ->
        Rrs_stats.Table.add_row table
          [
            row.algorithm;
            Rrs_stats.Table.cell_int row.cost;
            Rrs_stats.Table.cell_int row.reconfig_count;
            Rrs_stats.Table.cell_int row.drop_count;
            Rrs_stats.Table.cell_ratio row.ratio;
          ]
    | Error message -> Format.printf "solver failed: %s@." message);
    if csv then print_string (Rrs_stats.Table.to_csv table)
    else Rrs_stats.Table.print table
  in
  Cmd.v
    (Cmd.info "compare"
       ~doc:"Compare all policies and the solver against offline references.")
    Term.(const run $ source_arg $ n_arg $ m_arg $ exact $ csv_arg)

(* ---- sweep ---- *)

let sweep_cmd =
  let factors =
    Arg.(
      value
      & opt (list int) [ 1; 2; 4; 8; 16 ]
      & info [ "factors" ] ~docv:"LIST" ~doc:"Augmentation factors n/m.")
  in
  let json =
    Arg.(
      value & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:
            "Also write the sweep as a versioned BENCH json document to \
             $(docv) (schema rrs-bench/1; see EXPERIMENTS.md).")
  in
  let run source m factors csv json =
    let instance = or_die (load_source source) in
    let table =
      Rrs_stats.Table.create
        ~title:(Printf.sprintf "augmentation sweep (m=%d)" m)
        ~columns:[ "n/m"; "n"; "cost"; "reconfig"; "drops"; "ratio" ]
    in
    let bench =
      Option.map
        (fun path ->
          let b =
            Rrs_stats.Bench_io.create
              ~tag:(Rrs_stats.Bench_io.tag_of_path path)
          in
          Rrs_stats.Bench_io.start_experiment b ~id:"sweep"
            ~claim:
              (Printf.sprintf "augmentation sweep of %s (m=%d)"
                 instance.Rrs_sim.Instance.name m);
          (b, path))
        json
    in
    List.iter
      (fun (factor, result) ->
        match result with
        | Ok (row : Rrs_stats.Experiment.row) ->
            Option.iter
              (fun (b, _) ->
                Rrs_stats.Bench_io.record b ~policy:row.algorithm
                  ~workload:instance.Rrs_sim.Instance.name ~n:row.n
                  ~delta:instance.Rrs_sim.Instance.delta ~cost:row.cost
                  ~reconfig_count:row.reconfig_count
                  ~drop_count:row.drop_count ())
              bench;
            Rrs_stats.Table.add_row table
              [
                Rrs_stats.Table.cell_int factor;
                Rrs_stats.Table.cell_int row.n;
                Rrs_stats.Table.cell_int row.cost;
                Rrs_stats.Table.cell_int row.reconfig_count;
                Rrs_stats.Table.cell_int row.drop_count;
                Rrs_stats.Table.cell_ratio row.ratio;
              ]
        | Error message ->
            Rrs_stats.Table.add_row table
              [ Rrs_stats.Table.cell_int factor; "-"; "-"; "-"; "-"; message ])
      (Rrs_stats.Experiment.sweep_augmentation ~m ~factors instance);
    if csv then print_string (Rrs_stats.Table.to_csv table)
    else Rrs_stats.Table.print table;
    Option.iter
      (fun (b, path) ->
        Rrs_stats.Bench_io.write b ~path;
        Format.eprintf "wrote %s@." path)
      bench
  in
  Cmd.v
    (Cmd.info "sweep" ~doc:"Solver cost across resource-augmentation factors.")
    Term.(const run $ source_arg $ m_arg $ factors $ csv_arg $ json)

(* ---- validate ---- *)

let validate_cmd =
  let run source n =
    let instance = or_die (load_source source) in
    let outcome = or_die (Rrs_core.Solver.solve ~n instance) in
    match Rrs_sim.Schedule.validate outcome.schedule with
    | Ok () ->
        Format.printf "ok: %s pipeline, cost %d, schedule valid@."
          (Rrs_core.Solver.pipeline_to_string outcome.pipeline)
          outcome.cost
    | Error errors ->
        Format.printf "INVALID (%d errors)@." (List.length errors);
        List.iteri (fun i e -> if i < 10 then Format.printf "  %s@." e) errors;
        exit 1
  in
  Cmd.v
    (Cmd.info "validate"
       ~doc:"Run the solver and independently validate its schedule.")
    Term.(const run $ source_arg $ n_arg)

(* ---- faults ---- *)

let faults_cmd =
  let gen =
    let seed =
      Arg.(value & opt int 0 & info [ "seed" ] ~docv:"S" ~doc:"Generator seed.")
    in
    let horizon =
      Arg.(
        value & opt int 256
        & info [ "horizon" ] ~docv:"T" ~doc:"Rounds the plan covers.")
    in
    let density =
      Arg.(
        value & opt float 0.1
        & info [ "crash-density" ] ~docv:"P"
            ~doc:"Stationary offline fraction per location, in [0, 1).")
    in
    let mean_outage =
      Arg.(
        value & opt int 8
        & info [ "mean-outage" ] ~docv:"R"
            ~doc:"Mean crash window length in rounds.")
    in
    let fail_rate =
      Arg.(
        value & opt float 0.0
        & info [ "reconfig-fail-rate" ] ~docv:"P"
            ~doc:
              "Per (round, location) probability that reconfigurations \
               there fail (pay delta, no effect).")
    in
    let output =
      Arg.(
        value & opt (some string) None
        & info [ "o"; "output" ] ~docv:"FILE"
            ~doc:"Write the plan to $(docv) (default: stdout).")
    in
    let run () n seed horizon density mean_outage fail_rate output =
      let plan =
        try
          Rrs_workload.Fault_gen.random ~seed ~n ~horizon
            ~crash_density:density ~mean_outage ~reconfig_fail_rate:fail_rate
            ()
        with Invalid_argument message ->
          Format.eprintf "error: %s@." message;
          exit 1
      in
      match output with
      | Some path ->
          Rrs_sim.Fault.save plan ~path;
          Format.printf "%a@.wrote %s@." Rrs_sim.Fault.pp_describe plan path
      | None -> print_string (Rrs_sim.Fault.to_string plan)
    in
    Cmd.v
      (Cmd.info "gen"
         ~doc:
           "Generate a seeded random fault plan (rrs-faults/1 JSONL): \
            geometric crash/repair phases per location plus optional \
            reconfiguration failures.")
      Term.(
        const run $ verbose_arg $ n_arg $ seed $ horizon $ density
        $ mean_outage $ fail_rate $ output)
  in
  let describe =
    let file_arg =
      Arg.(
        required & pos 0 (some string) None
        & info [] ~docv:"PLAN" ~doc:"An rrs-faults/1 plan file.")
    in
    let run file =
      let plan = or_die (Rrs_sim.Fault.load ~path:file) in
      Format.printf "%a@." Rrs_sim.Fault.pp_describe plan
    in
    Cmd.v
      (Cmd.info "describe"
         ~doc:"Print every fault of a plan in human-readable form.")
      Term.(const run $ file_arg)
  in
  Cmd.group
    (Cmd.info "faults"
       ~doc:
         "Generate and inspect deterministic fault plans for 'rrs trace-run \
          --faults'.")
    [ gen; describe ]

(* ---- weighted (companion problem) ---- *)

let weighted_cmd =
  let costs =
    Arg.(
      value & opt (some (list int)) None
      & info [ "costs" ] ~docv:"LIST"
          ~doc:"Per-color drop costs (comma separated, one per color).")
  in
  let precious =
    Arg.(
      value & opt int 0
      & info [ "precious" ] ~docv:"K"
          ~doc:"Give the first $(docv) colors the --precious-cost (ignored \
                with --costs).")
  in
  let precious_cost =
    Arg.(
      value & opt int 10
      & info [ "precious-cost" ] ~docv:"C" ~doc:"Drop cost of precious colors.")
  in
  let run source n costs precious precious_cost csv =
    let weighted =
      if String.length source > 0 && source.[0] = '@' then
        let path = String.sub source 1 (String.length source - 1) in
        or_die (Rrs_uniform.Weighted_trace.load ~path)
      else
        let instance = or_die (load_source source) in
        let num_colors = Rrs_sim.Instance.num_colors instance in
        let drop_costs =
          match costs with
          | Some list ->
              if List.length list <> num_colors then begin
                Format.eprintf "error: %d costs for %d colors@."
                  (List.length list) num_colors;
                exit 1
              end;
              Array.of_list list
          | None ->
              Array.init num_colors (fun c ->
                  if c < precious then precious_cost else 1)
        in
        or_die (Rrs_uniform.Weighted.make ~instance ~drop_costs)
    in
    if not csv then begin
      Format.printf "%a@." Rrs_sim.Instance.pp_summary
        weighted.Rrs_uniform.Weighted.instance;
      Format.printf "weighted lower bound: %d@."
        (Rrs_uniform.Weighted.lower_bound weighted)
    end;
    let table =
      Rrs_stats.Table.create
        ~title:(Printf.sprintf "weighted comparison (n=%d)" n)
        ~columns:[ "algorithm"; "weighted cost" ]
    in
    let policies =
      ( "landlord",
        Rrs_uniform.Landlord.policy
          ~drop_costs:weighted.Rrs_uniform.Weighted.drop_costs )
      :: Rrs_stats.Experiment.standard_policies
    in
    List.iter
      (fun (name, policy) ->
        let cost = Rrs_uniform.Weighted.run_policy ~n ~policy weighted in
        Rrs_stats.Table.add_row table [ name; Rrs_stats.Table.cell_int cost ])
      policies;
    if csv then print_string (Rrs_stats.Table.to_csv table)
    else Rrs_stats.Table.print table
  in
  Cmd.v
    (Cmd.info "weighted"
       ~doc:
         "Companion problem [delta | c_l | D | D]: compare the weight-aware \
          Landlord policy against the weight-blind algorithms.")
    Term.(
      const run $ source_arg $ n_arg $ costs $ precious $ precious_cost $ csv_arg)

let () =
  let doc = "reconfigurable resource scheduling with variable delay bounds" in
  let info = Cmd.info "rrs" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            gen_cmd; info_cmd; run_cmd; trace_run_cmd; report_cmd; compare_cmd;
            sweep_cmd; validate_cmd; weighted_cmd; faults_cmd;
          ]))
