(* Empirical supply-curve calibration. See calibrate.mli. *)

module Event_sink = Rrs_sim.Event_sink

type color_fit = {
  f_color : int;
  f_rate_mjpr : int;
  f_delay : int;
  f_samples : (int * int) list;
}

type t = { cal_rounds : int; cal_fits : color_fit array }

(* Window widths to sample: every width up to 16, then x5/4 growth, the
   full span always included. *)
let sample_widths rounds =
  let rec grow w acc =
    if w >= rounds then List.rev (rounds :: acc)
    else
      let next = if w < 16 then w + 1 else max (w + 1) (w * 5 / 4) in
      grow next (w :: acc)
  in
  if rounds <= 0 then [] else grow 1 []

let fit_color ~rounds ~color counts =
  let prefix = Array.make (rounds + 1) 0 in
  for r = 0 to rounds - 1 do
    prefix.(r + 1) <- prefix.(r) + counts.(r)
  done;
  let min_window w =
    let best = ref max_int in
    for s = 0 to rounds - w do
      let sum = prefix.(s + w) - prefix.(s) in
      if sum < !best then best := sum
    done;
    !best
  in
  let samples = List.map (fun w -> (w, min_window w)) (sample_widths rounds) in
  let alpha =
    match List.rev samples with
    | (w2, m2) :: (w1, m1) :: _ when w2 > w1 ->
        float_of_int (m2 - m1) /. float_of_int (w2 - w1)
    | (w, m) :: _ -> float_of_int m /. float_of_int w
    | [] -> 0.
  in
  let delay =
    if alpha <= 0. then rounds
    else
      List.fold_left
        (fun acc (w, m) ->
          let d = float_of_int w -. (float_of_int m /. alpha) in
          max acc (int_of_float (ceil d)))
        0 samples
      |> min rounds |> max 0
  in
  {
    f_color = color;
    f_rate_mjpr = int_of_float (Float.round (alpha *. 1000.));
    f_delay = delay;
    f_samples = samples;
  }

let of_exec_rounds ~colors ~rounds execs =
  let counts = Array.init colors (fun _ -> Array.make (max rounds 1) 0) in
  List.iter
    (fun (round, color) ->
      if round >= 0 && round < rounds && color >= 0 && color < colors then
        counts.(color).(round) <- counts.(color).(round) + 1)
    execs;
  {
    cal_rounds = rounds;
    cal_fits =
      Array.init colors (fun color ->
          fit_color ~rounds:(max rounds 1) ~color counts.(color));
  }

let of_events ~colors ~rounds events =
  of_exec_rounds ~colors ~rounds
    (List.filter_map
       (function
         | Event_sink.Execute { round; color; _ } -> Some (round, color)
         | _ -> None)
       events)

let of_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error m -> Error m
  | document -> (
      let lines =
        String.split_on_char '\n' document
        |> List.filter (fun l -> String.trim l <> "")
      in
      match lines with
      | [] -> Error "empty events file"
      | header :: rest -> (
          match Event_sink.parse_line header with
          | Error m -> Error (Printf.sprintf "header: %s" m)
          | Ok (Event_sink.Header h) -> (
              let colors = Array.length h.Event_sink.hdr_bounds in
              let execs = ref [] and max_round = ref (-1) and bad = ref None in
              List.iter
                (fun line ->
                  match Event_sink.parse_line line with
                  | Error m -> if !bad = None then bad := Some m
                  | Ok (Event_sink.Event (Event_sink.Execute { round; color; _ }))
                    ->
                      execs := (round, color) :: !execs;
                      if round > !max_round then max_round := round
                  | Ok (Event_sink.Round { snap_round; _ }) ->
                      if snap_round > !max_round then max_round := snap_round
                  | Ok _ -> ())
                rest;
              match !bad with
              | Some m -> Error m
              | None ->
                  let rounds = max (!max_round + 1) 1 in
                  Ok (of_exec_rounds ~colors ~rounds !execs))
          | Ok _ -> Error "first line is not an rrs-events header"))

let probe ?(policy = "seq-edf") ?(rounds = 256) ~n (spec : Rrs_workload.Demand.t)
    =
  match Rrs_core.Policies.find policy with
  | None ->
      Error
        (Printf.sprintf "unknown policy %S (known: %s)" policy
           (String.concat ", " Rrs_core.Policies.names))
  | Some policy_module -> (
      match Rrs_workload.Demand.to_instance ~rounds spec with
      | exception Invalid_argument m -> Error m
      | instance ->
          let result =
            Rrs_sim.Engine.run ~speed:spec.speed ~record_events:true ~n
              ~policy:policy_module instance
          in
          Ok
            (of_events
               ~colors:(Rrs_sim.Instance.num_colors instance)
               ~rounds:instance.Rrs_sim.Instance.horizon
               (Rrs_sim.Ledger.events result.Rrs_sim.Engine.ledger)))

let pp formatter t =
  Format.fprintf formatter
    "empirical supply (observed over %d rounds):@." t.cal_rounds;
  Format.fprintf formatter "  %5s  %16s  %14s@." "color" "delivered mj/r"
    "startup delay";
  Array.iter
    (fun f ->
      Format.fprintf formatter "  %5d  %16d  %14d@." f.f_color f.f_rate_mjpr
        f.f_delay)
    t.cal_fits
