(** Empirical supply curves from observed executions.

    The analytic supply bound of {!Capacity} assumes dedicated resources
    with a fixed startup delay. This module measures what a deployment
    {e actually} delivered: from the per-round execution counts of an
    [rrs-events/1]/[/2] stream (or a short simulated probe run) it
    builds, per color, the empirical supply-bound curve

    {v sbf*(w) = min over windows of w consecutive rounds of
               (executions of the color inside the window) v}

    and fits the two BDR parameters — the sustained service slope
    [alpha] (from the largest sampled windows) and the startup delay
    (the largest [w - sbf*(w) / alpha] over the samples, i.e. the
    bandwidth-delay intercept). The fit is the empirical counterpart to
    [sbf(t) = k * speed * max 0 (t - delay)] and lets [rrs analyze
    --calibrate/--probe] compare declared supply against delivered
    supply.

    The curve is sampled at geometrically spaced window widths (dense up
    to 16 rounds, then ×5/4 growth), keeping calibration linear in the
    stream length. *)

type color_fit = {
  f_color : int;
  f_rate_mjpr : int; (* fitted sustained service, milli-jobs/round *)
  f_delay : int; (* fitted startup delay, rounds; [rounds] if starved *)
  f_samples : (int * int) list; (* (window, min executions) at samples *)
}

type t = { cal_rounds : int; cal_fits : color_fit array }

(** [of_exec_rounds ~colors ~rounds execs] calibrates from raw
    [(round, color)] execution observations (rounds outside
    [0..rounds-1] and colors outside range are ignored). *)
val of_exec_rounds : colors:int -> rounds:int -> (int * int) list -> t

(** Calibrate from retained ledger events (only [Execute] lines count). *)
val of_events : colors:int -> rounds:int -> Rrs_sim.Event_sink.event list -> t

(** Calibrate from an [rrs-events/1]/[/2] JSONL file; colors and round
    count come from its header and the observed stream. *)
val of_file : string -> (t, string) result

(** Short simulated probe: run the spec's arrival sequence on [n]
    resources for [rounds] (default 256) under [policy] (default
    [seq-edf], as {!Capacity.simulate}) and calibrate from the events
    it emits. *)
val probe :
  ?policy:string -> ?rounds:int -> n:int -> Rrs_workload.Demand.t ->
  (t, string) result

val pp : Format.formatter -> t -> unit
