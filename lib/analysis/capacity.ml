(* Demand-bound / supply-bound capacity analysis. See capacity.mli for
   the model and the finite-horizon argument. *)

module Demand = Rrs_workload.Demand

type supply = { s_speed : int; s_delays : int array }

let default_supply (spec : Demand.t) =
  {
    s_speed = spec.speed;
    s_delays =
      Array.map (fun (e : Demand.entry) -> min spec.delta (e.bound - 1))
        spec.entries;
  }

let ceil_div a b = (a + b - 1) / b

let dbf (e : Demand.entry) t =
  if t < e.bound then 0
  else e.burst + ceil_div (e.rate_num * (t - e.bound + 1)) e.rate_den

let sbf ~resources ~speed ~delay t = resources * speed * max 0 (t - delay)

type violation = {
  v_color : int;
  v_window : int;
  v_demand : int;
  v_supply : int;
}

(* Scan horizon past which no violation can occur (see the .mli): with
   surplus slope g = den*resources*speed - rate_num per round,
   - g > 0: dbf(t) <= sbf(t) holds algebraically for
     g*t >= den*(burst+1) - 1 + num*(1 - bound) + den*resources*speed*delay,
     so scanning up to that bound is exhaustive;
   - g = 0: dbf - sbf is eventually periodic in t with period den, so one
     full period past max(bound, delay+1) is exhaustive;
   - g < 0: the deficit grows by at least 1/den per round, so a witness
     exists and appears within den * (initial surplus + burst + 2) rounds
     of the activation point. *)
let scan_horizon ~resources ~speed ~delay (e : Demand.entry) =
  let num = e.rate_num and den = e.rate_den in
  let g = (den * resources * speed) - num in
  if g > 0 then
    let r =
      (den * (e.burst + 1)) - 1 + num - (num * e.bound)
      + (den * resources * speed * delay)
    in
    max (e.bound + delay + 1) (if r <= 0 then 1 else ceil_div r g)
  else if g = 0 then max e.bound (delay + 1) + den
  else
    let t0 = max e.bound (delay + 1) in
    t0 + (den * ((resources * speed * t0) + e.burst + 2))

let witness ~resources ~speed ~delay (e : Demand.entry) =
  if e.rate_num = 0 && e.burst = 0 then None
  else
    let horizon = scan_horizon ~resources ~speed ~delay e in
    let rec scan t =
      if t > horizon then None
      else
        let demand = dbf e t and supply = sbf ~resources ~speed ~delay t in
        if demand > supply then
          Some { v_color = e.color; v_window = t; v_demand = demand;
                 v_supply = supply }
        else scan (t + 1)
    in
    scan 1

let feasible ~resources ~speed ~delay e =
  witness ~resources ~speed ~delay e = None

type requirement = Resources of int | Impossible of string

let min_resources ~speed ~delay (e : Demand.entry) =
  if e.rate_num = 0 && e.burst = 0 then Resources 0
  else if delay >= e.bound then
    Impossible
      (Printf.sprintf
         "supply delay %d >= bound %d: no window before the deadline" delay
         e.bound)
  else begin
    (* burst + ceil(rate) resources per speed-unit always suffice:
       dbf(t) <= (t - bound + 1) * (burst + ceil(num/den)) <= sbf(t)
       whenever delay <= bound - 1. Double defensively all the same. *)
    let hi = ref (max 1 (ceil_div (e.burst + ceil_div e.rate_num e.rate_den) speed)) in
    while not (feasible ~resources:!hi ~speed ~delay e) do
      hi := !hi * 2
    done;
    let rec search lo hi =
      if lo >= hi then lo
      else
        let mid = (lo + hi) / 2 in
        if feasible ~resources:mid ~speed ~delay e then search lo mid
        else search (mid + 1) hi
    in
    Resources (search 1 !hi)
  end

type verdict =
  | Fits of { allocation : int array; spare : int }
  | Overcommitted of {
      allocation : int array;
      required : int;
      available : int;
      binding : int;
    }
  | Unsatisfiable of { color : int; reason : string }

exception Unsat of int * string

let allocations ?supply (spec : Demand.t) =
  let supply = Option.value supply ~default:(default_supply spec) in
  try
    Ok
      (Array.map
         (fun (e : Demand.entry) ->
           match
             min_resources ~speed:supply.s_speed
               ~delay:supply.s_delays.(e.color) e
           with
           | Resources k -> k
           | Impossible reason -> raise (Unsat (e.color, reason)))
         spec.entries)
  with Unsat (color, reason) -> Error (color, reason)

let check ?supply ~n spec =
  match allocations ?supply spec with
  | Error (color, reason) -> Unsatisfiable { color; reason }
  | Ok allocation ->
      let required = Array.fold_left ( + ) 0 allocation in
      if required <= n then Fits { allocation; spare = n - required }
      else
        let binding = ref 0 in
        Array.iteri
          (fun l k -> if k > allocation.(!binding) then binding := l)
          allocation;
        Overcommitted { allocation; required; available = n; binding = !binding }

let size ?supply spec =
  match allocations ?supply spec with
  | Error (color, reason) ->
      Error (Printf.sprintf "color %d: %s" color reason)
  | Ok allocation -> Ok (max 1 (Array.fold_left ( + ) 0 allocation), allocation)

type color_report = {
  r_color : int;
  r_bound : int;
  r_rate_mjpr : int;
  r_burst : int;
  r_resources : int;
  r_capacity_mjpr : int;
  r_headroom_mjpr : int;
}

type report = {
  rep_name : string;
  rep_n : int;
  rep_spare : int;
  rep_colors : color_report list;
}

let report ?supply ~n ~allocation (spec : Demand.t) =
  let supply = Option.value supply ~default:(default_supply spec) in
  let colors =
    Array.to_list
      (Array.map
         (fun (e : Demand.entry) ->
           let resources = allocation.(e.color) in
           let capacity = resources * supply.s_speed * 1000 in
           let rate = Demand.rate_mjpr e in
           {
             r_color = e.color;
             r_bound = e.bound;
             r_rate_mjpr = rate;
             r_burst = e.burst;
             r_resources = resources;
             r_capacity_mjpr = capacity;
             r_headroom_mjpr = capacity - rate;
           })
         spec.entries)
  in
  {
    rep_name = spec.name;
    rep_n = n;
    rep_spare = n - Array.fold_left ( + ) 0 allocation;
    rep_colors = colors;
  }

let pp_report formatter r =
  Format.fprintf formatter "capacity report — %s: n=%d (spare %d)@." r.rep_name
    r.rep_n r.rep_spare;
  Format.fprintf formatter
    "  %5s  %5s  %10s  %5s  %9s  %12s  %12s@." "color" "bound" "rate mj/r"
    "burst" "resources" "supply mj/r" "headroom";
  List.iter
    (fun c ->
      Format.fprintf formatter "  %5d  %5d  %10d  %5d  %9d  %12d  %12d@."
        c.r_color c.r_bound c.r_rate_mjpr c.r_burst c.r_resources
        c.r_capacity_mjpr c.r_headroom_mjpr)
    r.rep_colors

type sim_result = {
  sim_rounds : int;
  sim_jobs : int;
  sim_drops : int;
  sim_execs : int;
  sim_cost : int;
}

let simulate ?(policy = "seq-edf") ?(rounds = 400) ~n spec =
  match Rrs_core.Policies.find policy with
  | None ->
      Error
        (Printf.sprintf "unknown policy %S (known: %s)" policy
           (String.concat ", " Rrs_core.Policies.names))
  | Some policy_module -> (
      match Demand.to_instance ~rounds spec with
      | exception Invalid_argument m -> Error m
      | instance ->
          let result =
            Rrs_sim.Engine.run ~speed:spec.speed ~record_events:false ~n
              ~policy:policy_module instance
          in
          let ledger = result.Rrs_sim.Engine.ledger in
          Ok
            {
              sim_rounds = instance.Rrs_sim.Instance.horizon;
              sim_jobs = Rrs_sim.Instance.total_jobs instance;
              sim_drops = Rrs_sim.Ledger.drop_count ledger;
              sim_execs = Rrs_sim.Ledger.exec_count ledger;
              sim_cost = Rrs_sim.Ledger.total_cost ledger;
            })
