(** Analytic capacity check: demand-bound vs supply-bound functions.

    The RRS port of the classic dbf/sbf schedulability argument (the
    BDR-style analysis): a deployment of dedicated resources absorbs a
    declared workload with zero drops iff for every color [l] and every
    window length [t >= 1],

    {v dbf_l(t) <= sbf_l(t) v}

    {b Demand.} A color with token-bucket rate [num/den] jobs per round,
    burst [b] and delay bound [D] admits at most
    [b + ceil (num * w / den)] arrivals in any [w] consecutive rounds
    (the burst only once, bounded here for every window). A job arriving
    at round [a] must execute in rounds [a .. a + D - 1], so the work
    that {e must complete} inside a window of [t] rounds is the arrivals
    of its first [t - D + 1] rounds:

    {v dbf(t) = b + ceil (num * (t - D + 1) / den)   for t >= D, else 0 v}

    {b Supply.} [k] resources dedicated to the color, each executing up
    to [speed] jobs per round once configured, with a startup/
    reconfiguration latency of [delay] rounds (default
    [min Delta (D - 1)]: the policy may spend [Delta] rounds
    reconfiguring before the color's first service, but never more than
    the laxity allows):

    {v sbf(t) = k * speed * max 0 (t - delay) v}

    The check is exact integer arithmetic over a finite horizon: beyond
    an algebraically derived window length the linear (or periodic)
    terms dominate and no further violation can occur. Colors are
    independent under dedicated allocation, so the minimal deployment
    size is the sum of per-color minima, each found by binary search
    over the monotone per-color check. The analytic model is
    conservative for work-conserving policies that share resources
    across colors; [rrs analyze] cross-validates its answers by
    simulation. *)

module Demand = Rrs_workload.Demand

type supply = {
  s_speed : int; (* executions per configured resource per round *)
  s_delays : int array; (* per-color startup delay, rounds *)
}

(** [s_speed = spec.speed]; [s_delays.(l) = min spec.delta (D_l - 1)]. *)
val default_supply : Demand.t -> supply

(** [dbf entry t]: jobs that must complete within any window of [t]
    rounds. 0 for [t < bound]. *)
val dbf : Demand.entry -> int -> int

(** [sbf ~resources ~speed ~delay t]: guaranteed executions a dedicated
    allocation provides within a window of [t] rounds. *)
val sbf : resources:int -> speed:int -> delay:int -> int -> int

type violation = {
  v_color : int;
  v_window : int; (* witness window length t *)
  v_demand : int; (* dbf at the witness *)
  v_supply : int; (* sbf at the witness *)
}

(** First window at which demand exceeds supply under the given
    allocation, if any. [None] means the color is feasible forever. *)
val witness :
  resources:int -> speed:int -> delay:int -> Demand.entry -> violation option

val feasible :
  resources:int -> speed:int -> delay:int -> Demand.entry -> bool

type requirement =
  | Resources of int (* minimal dedicated resources; 0 for an idle color *)
  | Impossible of string (* no resource count satisfies the color *)

(** Minimal [k] with [feasible ~resources:k], by binary search
    (feasibility is monotone in [k]). [Impossible] when the supply
    delay leaves no service window before the deadline. *)
val min_resources : speed:int -> delay:int -> Demand.entry -> requirement

type verdict =
  | Fits of { allocation : int array; spare : int }
  | Overcommitted of {
      allocation : int array; (* per-color minima *)
      required : int; (* their sum *)
      available : int; (* the deployment's n *)
      binding : int; (* color with the largest requirement *)
    }
  | Unsatisfiable of { color : int; reason : string }

(** Verify a deployment of [n] resources against the spec. *)
val check : ?supply:supply -> n:int -> Demand.t -> verdict

(** Minimal feasible deployment size and its per-color allocation. *)
val size : ?supply:supply -> Demand.t -> (int * int array, string) result

type color_report = {
  r_color : int;
  r_bound : int;
  r_rate_mjpr : int; (* declared rate, milli-jobs/round *)
  r_burst : int;
  r_resources : int; (* allocated *)
  r_capacity_mjpr : int; (* sustained service the allocation provides *)
  r_headroom_mjpr : int; (* capacity - declared rate *)
}

type report = {
  rep_name : string;
  rep_n : int;
  rep_spare : int; (* resources beyond the per-color allocation *)
  rep_colors : color_report list;
}

val report : ?supply:supply -> n:int -> allocation:int array -> Demand.t -> report
val pp_report : Format.formatter -> report -> unit

type sim_result = {
  sim_rounds : int;
  sim_jobs : int;
  sim_drops : int;
  sim_execs : int;
  sim_cost : int;
}

(** Cross-validate by simulation: run the spec's deterministic arrival
    sequence for [rounds] (default 400) under [policy] on [n]
    resources. The default policy is [seq-edf] — the Section 3.3
    reference that caches distinct colors in all [n] locations, and so
    realizes the dedicated-allocation supply this analysis assumes. The
    Section 3 online policies ([dlru], [edf], [dlru-edf]) cache only
    [n/2] colors by construction (the paper's resource augmentation),
    so a deployment serving them needs roughly twice the analytic
    minimum.

    One further caveat: [seq-edf] caches one copy per color, serving
    each color at most [speed] jobs/round. A color whose declared rate
    exceeds [speed] needs replicated locations — legal in the engine's
    cost model but offered by no registered policy — so such specs
    validate analytically yet drop under this cross-check. *)
val simulate :
  ?policy:string -> ?rounds:int -> n:int -> Demand.t ->
  (sim_result, string) result
