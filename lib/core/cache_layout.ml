let place ?into ~n ~copies ~current ~want () =
  if copies < 1 then invalid_arg "Cache_layout.place: copies must be >= 1";
  let needed = Hashtbl.create 16 in
  List.iter
    (fun color ->
      if Hashtbl.mem needed color then
        invalid_arg "Cache_layout.place: duplicate wanted color";
      Hashtbl.replace needed color copies)
    want;
  if copies * List.length want > n then
    invalid_arg
      (Printf.sprintf "Cache_layout.place: %d copies of %d colors exceed %d locations"
         copies (List.length want) n);
  let target =
    match into with
    | Some buffer when Array.length buffer = n ->
        Array.fill buffer 0 n None;
        buffer
    | Some _ -> invalid_arg "Cache_layout.place: into buffer has wrong length"
    | None -> Array.make n None
  in
  (* Keep existing placements of wanted colors. *)
  for location = 0 to n - 1 do
    match current.(location) with
    | Some color when (try Hashtbl.find needed color with Not_found -> 0) > 0 ->
        target.(location) <- Some color;
        Hashtbl.replace needed color (Hashtbl.find needed color - 1)
    | Some _ | None -> ()
  done;
  (* Fill missing copies into the lowest free locations. *)
  let next_free = ref 0 in
  let take_free () =
    while !next_free < n && target.(!next_free) <> None do incr next_free done;
    if !next_free >= n then invalid_arg "Cache_layout.place: out of locations";
    let location = !next_free in
    incr next_free;
    location
  in
  List.iter
    (fun color ->
      let missing = try Hashtbl.find needed color with Not_found -> 0 in
      for _ = 1 to missing do
        target.(take_free ()) <- Some color
      done)
    want;
  target
