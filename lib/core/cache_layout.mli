(** Stable placement of a wanted color set onto cache locations.

    Policies decide {e which} colors to cache; this module decides
    {e where}, preserving existing placements so that the engine's
    location diff charges exactly one reconfiguration per newly placed
    copy. Each wanted color is cached in [copies] locations (Section 3.1
    replicates every cached color in two locations; Seq-EDF uses one). *)

(** [place ~n ~copies ~current ~want ()] is a target assignment of length
    [n] in which every color of [want] occupies exactly [copies] locations
    and all other locations are inactive ([None]).

    Locations already holding a wanted color are kept (up to [copies]);
    missing copies go to the lowest-index locations not otherwise used.

    [into] is an optional reusable buffer of length [n]: it is cleared,
    filled and returned instead of allocating a fresh array. Policies pass
    their own scratch buffer here so the per-mini-round target costs no
    allocation; the engine never retains the returned array across
    mini-rounds, so reuse is safe.

    @raise Invalid_argument if [want] has duplicates, [copies * |want| > n],
    or [into] has a length other than [n]. *)
val place :
  ?into:Rrs_sim.Types.color option array ->
  n:int ->
  copies:int ->
  current:Rrs_sim.Types.color option array ->
  want:Rrs_sim.Types.color list ->
  unit ->
  Rrs_sim.Types.color option array
