module Types = Rrs_sim.Types

type color_info = {
  mutable cnt : int;
  mutable dd : int;
  mutable eligible : bool;
  mutable last_wrap : int; (* round of the most recent wrap; -1 if none *)
  mutable prev_wrap : int; (* round of the wrap before that; -1 if none *)
  mutable prev2_wrap : int; (* round of the wrap before prev_wrap; -1 if none *)
  mutable epochs_ended : int;
  mutable active_in_epoch : bool; (* any arrival since the last epoch end *)
  mutable eligible_drops : int;
  mutable ineligible_drops : int;
  mutable last_timestamp : int; (* last value reported, to detect updates *)
}

type t = {
  delta : int;
  bounds : int array;
  info : color_info array;
  boundary_groups : (int * int list) list; (* (bound, colors with that bound) *)
  mutable wraps : int;
  mutable timestamp_updates : int;
  mutable timestamp_event_log : (int * int) list; (* reverse chronological *)
  record_timestamp_events : bool;
  on_timestamp : (round:int -> color:int -> unit) option;
}

let fresh_info () =
  {
    cnt = 0;
    dd = 0;
    eligible = false;
    last_wrap = -1;
    prev_wrap = -1;
    prev2_wrap = -1;
    epochs_ended = 0;
    active_in_epoch = false;
    eligible_drops = 0;
    ineligible_drops = 0;
    last_timestamp = 0;
  }

let create ?(record_timestamp_events = false) ?on_timestamp ~delta ~bounds () =
  let num_colors = Array.length bounds in
  let groups = Hashtbl.create 8 in
  Array.iteri
    (fun color bound ->
      let colors = try Hashtbl.find groups bound with Not_found -> [] in
      Hashtbl.replace groups bound (color :: colors))
    bounds;
  let boundary_groups =
    Hashtbl.fold (fun bound colors acc -> (bound, List.rev colors) :: acc) groups []
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  in
  {
    delta;
    bounds;
    info = Array.init num_colors (fun _ -> fresh_info ());
    boundary_groups;
    wraps = 0;
    timestamp_updates = 0;
    timestamp_event_log = [];
    record_timestamp_events;
    on_timestamp;
  }

let num_colors t = Array.length t.info
let eligible t color = t.info.(color).eligible
let deadline t color = t.info.(color).dd

(* Timestamp of [color] as of [round]: the latest wrap round strictly
   before [k], where [k] is the most recent multiple of the color's bound.
   Wraps happen only at multiples of the bound, so the two most recent
   wrap rounds suffice: [last_wrap <= k] always, with equality exactly
   when the wrap happened at boundary [k] itself. *)
let timestamp t color ~round =
  let info = t.info.(color) in
  let k = round - (round mod t.bounds.(color)) in
  if info.last_wrap >= 0 && info.last_wrap < k then info.last_wrap
  else if info.prev_wrap >= 0 then info.prev_wrap
  else 0

(* LRU-2 timestamp: the second-to-last wrap round strictly before the
   most recent boundary [k] (O'Neil et al.'s LRU-K with K = 2, adapted to
   the ΔLRU notion of a reference = a counter wrap). *)
let timestamp2 t color ~round =
  let info = t.info.(color) in
  let k = round - (round mod t.bounds.(color)) in
  if info.last_wrap >= 0 && info.last_wrap < k then
    if info.prev_wrap >= 0 then info.prev_wrap else 0
  else if info.prev_wrap >= 0 then
    if info.prev2_wrap >= 0 then info.prev2_wrap else 0
  else 0

(* A timestamp update event of [color] (Section 3.4) happens when the
   derived timestamp changes value; we detect it at boundaries, where it
   can only change. *)
let note_timestamp t color ~round =
  let info = t.info.(color) in
  let current = timestamp t color ~round in
  if current <> info.last_timestamp then begin
    info.last_timestamp <- current;
    t.timestamp_updates <- t.timestamp_updates + 1;
    if t.record_timestamp_events then
      t.timestamp_event_log <- (round, color) :: t.timestamp_event_log;
    match t.on_timestamp with
    | None -> ()
    | Some hook -> hook ~round ~color
  end

let iter_boundary_colors t ~round f =
  List.iter
    (fun (bound, colors) -> if round mod bound = 0 then List.iter f colors)
    t.boundary_groups

let on_drop t ~round ~dropped ~in_cache =
  (* Classify this round's drops with pre-reset eligibility. *)
  List.iter
    (fun (color, count) ->
      let info = t.info.(color) in
      if info.eligible then info.eligible_drops <- info.eligible_drops + count
      else info.ineligible_drops <- info.ineligible_drops + count)
    dropped;
  (* Boundary resets: an eligible, uncached color becomes ineligible and
     its counter resets — the end of an epoch. *)
  iter_boundary_colors t ~round (fun color ->
      let info = t.info.(color) in
      if info.eligible && not (in_cache color) then begin
        info.eligible <- false;
        info.cnt <- 0;
        info.epochs_ended <- info.epochs_ended + 1;
        info.active_in_epoch <- false
      end)

let on_arrival t ~round ~request =
  (* Every color at its boundary refreshes its deadline. *)
  iter_boundary_colors t ~round (fun color ->
      let info = t.info.(color) in
      info.dd <- round + t.bounds.(color);
      note_timestamp t color ~round);
  (* Arriving jobs update counters; a wrap makes the color eligible. *)
  List.iter
    (fun (color, count) ->
      let info = t.info.(color) in
      if count > 0 then begin
        info.active_in_epoch <- true;
        info.cnt <- info.cnt + count;
        if info.cnt >= t.delta then begin
          info.cnt <- info.cnt mod t.delta;
          info.prev2_wrap <- info.prev_wrap;
          info.prev_wrap <- info.last_wrap;
          info.last_wrap <- round;
          t.wraps <- t.wraps + 1;
          if not info.eligible then info.eligible <- true
        end
      end)
    request

let eligible_colors t =
  let acc = ref [] in
  for color = num_colors t - 1 downto 0 do
    if t.info.(color).eligible then acc := color :: !acc
  done;
  !acc

let stats t =
  let epochs = ref 0 and eligible_drops = ref 0 and ineligible_drops = ref 0 in
  Array.iter
    (fun info ->
      epochs := !epochs + info.epochs_ended + (if info.active_in_epoch then 1 else 0);
      eligible_drops := !eligible_drops + info.eligible_drops;
      ineligible_drops := !ineligible_drops + info.ineligible_drops)
    t.info;
  [
    ("epochs", !epochs);
    ("wraps", t.wraps);
    ("timestamp_updates", t.timestamp_updates);
    ("eligible_drops", !eligible_drops);
    ("ineligible_drops", !ineligible_drops);
  ]

let timestamp_events t = List.rev t.timestamp_event_log

(* ---- serialization (the rrs-snap/2 policy-blob building blocks) ----

   Field fragments, not a whole object, so a policy can splice them into
   its own flat blob next to its cached set and counters. The timestamp
   event log is deliberately NOT serialized: it grows with rounds served,
   which is exactly what checkpointed snapshots exist to avoid — its only
   consumer (super-epoch counting) is maintained incrementally via
   [on_timestamp] instead. *)

module Json = Rrs_sim.Event_sink.Json

let ints_to_json values =
  let buffer = Buffer.create 64 in
  Buffer.add_char buffer '[';
  Array.iteri
    (fun i v ->
      if i > 0 then Buffer.add_char buffer ',';
      Buffer.add_string buffer (string_of_int v))
    values;
  Buffer.add_char buffer ']';
  Buffer.contents buffer

let serialize_fields t =
  let per_color f = ints_to_json (Array.map f t.info) in
  let bool b = if b then 1 else 0 in
  Printf.sprintf
    "\"cs_cnt\":%s,\"cs_dd\":%s,\"cs_eligible\":%s,\"cs_last_wrap\":%s,\
     \"cs_prev_wrap\":%s,\"cs_prev2_wrap\":%s,\"cs_epochs_ended\":%s,\
     \"cs_active\":%s,\"cs_eligible_drops\":%s,\"cs_ineligible_drops\":%s,\
     \"cs_last_timestamp\":%s,\"cs_wraps\":%d,\"cs_timestamp_updates\":%d"
    (per_color (fun i -> i.cnt))
    (per_color (fun i -> i.dd))
    (per_color (fun i -> bool i.eligible))
    (per_color (fun i -> i.last_wrap))
    (per_color (fun i -> i.prev_wrap))
    (per_color (fun i -> i.prev2_wrap))
    (per_color (fun i -> i.epochs_ended))
    (per_color (fun i -> bool i.active_in_epoch))
    (per_color (fun i -> i.eligible_drops))
    (per_color (fun i -> i.ineligible_drops))
    (per_color (fun i -> i.last_timestamp))
    t.wraps t.timestamp_updates

let deserialize_fields t fields =
  let colors = num_colors t in
  let per_color key apply =
    let values = Json.ints_field fields key in
    if Array.length values <> colors then
      raise
        (Json.Parse_error
           (Printf.sprintf "field %S: %d values for %d colors" key
              (Array.length values) colors));
    Array.iteri (fun color v -> apply t.info.(color) v) values
  in
  let as_bool key v =
    match v with
    | 0 -> false
    | 1 -> true
    | _ -> raise (Json.Parse_error (Printf.sprintf "field %S: expected 0/1" key))
  in
  per_color "cs_cnt" (fun i v -> i.cnt <- v);
  per_color "cs_dd" (fun i v -> i.dd <- v);
  per_color "cs_eligible" (fun i v -> i.eligible <- as_bool "cs_eligible" v);
  per_color "cs_last_wrap" (fun i v -> i.last_wrap <- v);
  per_color "cs_prev_wrap" (fun i v -> i.prev_wrap <- v);
  per_color "cs_prev2_wrap" (fun i v -> i.prev2_wrap <- v);
  per_color "cs_epochs_ended" (fun i v -> i.epochs_ended <- v);
  per_color "cs_active" (fun i v -> i.active_in_epoch <- as_bool "cs_active" v);
  per_color "cs_eligible_drops" (fun i v -> i.eligible_drops <- v);
  per_color "cs_ineligible_drops" (fun i v -> i.ineligible_drops <- v);
  per_color "cs_last_timestamp" (fun i v -> i.last_timestamp <- v);
  t.wraps <- Json.int_field fields "cs_wraps";
  t.timestamp_updates <- Json.int_field fields "cs_timestamp_updates";
  t.timestamp_event_log <- []
