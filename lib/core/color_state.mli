(** Per-color bookkeeping shared by ΔLRU, EDF and ΔLRU-EDF — the "common
    aspects" of Section 3.1.

    For each color [l] the paper maintains a counter [l.cnt], a deadline
    [l.dd], and an eligibility bit, updated at integral multiples of the
    color's delay bound [D_l]:

    - Drop phase of round [k], [k mod D_l = 0]: if [l] is eligible and not
      cached, it becomes ineligible and [l.cnt] resets to 0 (this ends an
      epoch of [l]).
    - Arrival phase of round [k], [k mod D_l = 0]: [l.dd := k + D_l];
      [l.cnt] grows by the number of arriving color-[l] jobs; when
      [l.cnt >= Delta] it wraps to [l.cnt mod Delta] (a {e counter
      wrapping event}) and [l] becomes eligible.

    The ΔLRU {e timestamp} of [l] (Section 3.1.1) is the latest round
    strictly before the most recent multiple of [D_l] in which a counter
    wrapping event of [l] occurred, and 0 if there is none.

    The module also instruments the quantities used by the analysis:
    epochs (Section 3.2), counter wraps, timestamp update events
    (Section 3.4), and the eligible/ineligible split of drop costs. *)

type t

(** [on_timestamp] is invoked once per timestamp-update event, in
    chronological order, as the event happens — the incremental
    alternative to [record_timestamp_events] for consumers (super-epoch
    tracking) that must not hold the whole event log. *)
val create :
  ?record_timestamp_events:bool ->
  ?on_timestamp:(round:int -> color:int -> unit) ->
  delta:int ->
  bounds:int array ->
  unit ->
  t

val num_colors : t -> int

(** Drop-phase hook. [dropped] is the engine's per-color drop counts for
    this round; [in_cache] reports current cache membership (the policy's
    own cached set). Dropped jobs are classified eligible/ineligible by
    the color's eligibility {e before} any reset this round. *)
val on_drop :
  t ->
  round:int ->
  dropped:(Rrs_sim.Types.color * int) list ->
  in_cache:(Rrs_sim.Types.color -> bool) ->
  unit

(** Arrival-phase hook. Updates deadlines at every boundary of every color
    (even with no arriving jobs), then applies counter/eligibility updates
    for the arriving jobs. *)
val on_arrival : t -> round:int -> request:Rrs_sim.Types.request -> unit

val eligible : t -> Rrs_sim.Types.color -> bool

(** Current per-color deadline [l.dd] (0 before the first boundary). *)
val deadline : t -> Rrs_sim.Types.color -> int

(** ΔLRU timestamp of the color as of [round]. *)
val timestamp : t -> Rrs_sim.Types.color -> round:int -> int

(** LRU-2 timestamp: the second-to-last counter-wrap round strictly
    before the most recent boundary (0 when fewer than two such wraps
    exist) — the LRU-K recency notion of O'Neil et al. with K = 2,
    used by the {!Policy_lru_k} baseline. *)
val timestamp2 : t -> Rrs_sim.Types.color -> round:int -> int

(** Currently eligible colors, ascending. *)
val eligible_colors : t -> Rrs_sim.Types.color list

(** Counters for experiments: ["epochs"] (ended + active incomplete),
    ["wraps"], ["timestamp_updates"], ["eligible_drops"],
    ["ineligible_drops"]. *)
val stats : t -> (string * int) list

(** Chronological [(round, color)] timestamp-update events (empty unless
    [record_timestamp_events] was set). Used to count super-epochs. *)
val timestamp_events : t -> (int * int) list

(** The per-color state as [rrs-snap/2] policy-blob field fragments
    (["cs_"]-prefixed keys, no surrounding braces), for policies to splice
    into their own flat JSON blob. The timestamp event log is not
    serialized — it grows with rounds served; incremental consumers use
    [on_timestamp] instead. *)
val serialize_fields : t -> string

(** Applies fields written by {!serialize_fields} to a freshly created
    state with the same [delta]/[bounds].
    @raise Rrs_sim.Event_sink.Json.Parse_error on missing fields or
    per-color arrays whose length disagrees with [num_colors]. *)
val deserialize_fields : t -> (string * Rrs_sim.Event_sink.Json.value) list -> unit
