(** Analysis instrumentation helpers (Sections 3.2 and 3.4).

    The lemma-level experiments need quantities that live outside any one
    policy: super-epoch counts derived from timestamp-update events, and
    convenient access to the counters policies report via [stats]. *)

(** Look up a counter in a policy's stats list (0 when absent). *)
let stat stats key =
  match List.assoc_opt key stats with Some value -> value | None -> 0

(** Epochs including the trailing incomplete ones (Section 3.2's
    [numEpochs]). *)
let num_epochs stats = stat stats "epochs"

let eligible_drops stats = stat stats "eligible_drops"
let ineligible_drops stats = stat stats "ineligible_drops"
let wraps stats = stat stats "wraps"

(** Incremental super-epoch state (Section 3.4): a super-epoch ends the
    moment at least [watermark] distinct colors have updated their
    timestamps since it started; the trailing partial super-epoch counts
    when nonempty. For Theorem 1 the watermark is [2m = n/4]. Fed one
    event at a time, the state is O(watermark) regardless of how many
    events have been tracked — unlike the full event log. *)
type tracker = {
  watermark : int;
  seen : (int, unit) Hashtbl.t;
  mutable complete : int;
}

let tracker ~watermark =
  if watermark < 1 then invalid_arg "Instrument.tracker: watermark < 1";
  { watermark; seen = Hashtbl.create 16; complete = 0 }

let track t ~color =
  if not (Hashtbl.mem t.seen color) then begin
    Hashtbl.replace t.seen color ();
    if Hashtbl.length t.seen >= t.watermark then begin
      t.complete <- t.complete + 1;
      Hashtbl.reset t.seen
    end
  end

let tracker_count t = t.complete + (if Hashtbl.length t.seen > 0 then 1 else 0)

(* State accessors for policy serialization. *)
let tracker_complete t = t.complete

let tracker_seen t =
  Hashtbl.fold (fun color () acc -> color :: acc) t.seen [] |> List.sort Int.compare

let tracker_restore t ~complete ~seen =
  t.complete <- complete;
  Hashtbl.reset t.seen;
  List.iter (fun color -> Hashtbl.replace t.seen color ()) seen

(** Count super-epochs from a full chronological event log (the batch
    form of {!tracker}). *)
let super_epochs ~watermark events =
  if watermark < 1 then invalid_arg "Instrument.super_epochs: watermark < 1";
  let t = tracker ~watermark in
  List.iter (fun (_round, color) -> track t ~color) events;
  tracker_count t

(** The Lemma 3.3 bound: reconfiguration cost is at most
    [4 * numEpochs * delta]. *)
let lemma_3_3_bound ~delta stats = 4 * num_epochs stats * delta

(** The Lemma 3.4 bound: ineligible drop cost is at most
    [numEpochs * delta]. *)
let lemma_3_4_bound ~delta stats = num_epochs stats * delta
