(** Analysis instrumentation helpers (Sections 3.2 and 3.4): accessors
    for the counters policies report via [stats], super-epoch counting,
    and the Lemma 3.3 / 3.4 bounds used by the lemma-level experiments. *)

(** Look up a counter in a policy's stats list (0 when absent). *)
val stat : (string * int) list -> string -> int

(** Epochs including trailing incomplete ones (Section 3.2's
    [numEpochs]). *)
val num_epochs : (string * int) list -> int

val eligible_drops : (string * int) list -> int
val ineligible_drops : (string * int) list -> int
val wraps : (string * int) list -> int

(** Incremental super-epoch counter (Section 3.4): a super-epoch ends
    the moment at least [watermark] distinct colors have updated their
    timestamps since it started; a trailing partial super-epoch counts
    when nonempty. For Theorem 1 the watermark is [2m = n/4]. The state
    is O(watermark) no matter how many events are tracked, so policies
    can maintain super-epoch counts without retaining the event log. *)
type tracker

(** @raise Invalid_argument if [watermark < 1]. *)
val tracker : watermark:int -> tracker

(** Feed one timestamp-update event. Events must arrive in chronological
    order (as {!Color_state}'s [on_timestamp] hook delivers them). *)
val track : tracker -> color:int -> unit

(** Super-epochs so far, counting a nonempty trailing partial one. *)
val tracker_count : tracker -> int

(** Completed super-epochs (excludes the trailing partial one). For
    serialization. *)
val tracker_complete : tracker -> int

(** Distinct colors seen in the current (partial) super-epoch, ascending.
    For serialization. *)
val tracker_seen : tracker -> int list

(** Overwrite the tracker with serialized state. *)
val tracker_restore : tracker -> complete:int -> seen:int list -> unit

(** Count super-epochs from a full chronological [(round, color)] event
    log — the batch form of {!tracker}.
    @raise Invalid_argument if [watermark < 1]. *)
val super_epochs : watermark:int -> (int * int) list -> int

(** Lemma 3.3: reconfiguration cost <= [4 * numEpochs * delta]. *)
val lemma_3_3_bound : delta:int -> (string * int) list -> int

(** Lemma 3.4: ineligible drop cost <= [numEpochs * delta]. *)
val lemma_3_4_bound : delta:int -> (string * int) list -> int
