module Types = Rrs_sim.Types
module Job_pool = Rrs_sim.Job_pool
module Topk = Rrs_ds.Topk

module Make (Config : sig
  val name : string
  val lru_share : float
end) : Rrs_sim.Policy.POLICY = struct
  type t = {
    n : int;
    lru_slots : int; (* distinct colors in the LRU set *)
    edf_slots : int; (* distinct colors in the EDF set *)
    state : Color_state.t;
    se : Instrument.tracker; (* super-epochs, fed incrementally *)
    lru_half : (Types.color, unit) Hashtbl.t;
    edf_half : (Types.color, unit) Hashtbl.t;
    target : Types.color option array; (* reusable reconfigure buffer *)
    mutable evictions : int;
    mutable lru_promotions : int;
  }

  let name = Config.name

  let create ~n ~delta ~bounds =
    if Config.lru_share < 0.0 || Config.lru_share > 1.0 then
      invalid_arg "Lru_edf_core: lru_share out of [0, 1]";
    let distinct = n / 2 in
    let lru_slots =
      int_of_float (Float.round (Config.lru_share *. float_of_int distinct))
    in
    (* Super-epochs (Section 3.4) with the Theorem 1 watermark 2m = n/4
       (at least 1 so the count is defined for tiny n), maintained
       incrementally so no per-round event log accumulates. *)
    let se = Instrument.tracker ~watermark:(max 1 (n / 4)) in
    {
      n;
      lru_slots;
      edf_slots = distinct - lru_slots;
      state =
        Color_state.create
          ~on_timestamp:(fun ~round:_ ~color -> Instrument.track se ~color)
          ~delta ~bounds ();
      se;
      lru_half = Hashtbl.create 16;
      edf_half = Hashtbl.create 16;
      target = Array.make n None;
      evictions = 0;
      lru_promotions = 0;
    }

  let in_cache t color = Hashtbl.mem t.lru_half color || Hashtbl.mem t.edf_half color

  let on_drop t ~round ~dropped =
    Color_state.on_drop t.state ~round ~dropped ~in_cache:(in_cache t)

  let on_arrival t ~round ~request = Color_state.on_arrival t.state ~round ~request

  let worst_in_edf_half t ~compare =
    Hashtbl.fold
      (fun color () worst ->
        match worst with
        | None -> Some color
        | Some w -> if compare color w > 0 then Some color else worst)
      t.edf_half None

  let reconfigure t (view : Rrs_sim.Policy.view) =
    let eligible = Color_state.eligible_colors t.state in
    (* LRU set: the most recently stamped eligible colors. *)
    let lru =
      Topk.select_list
        ~compare:(Ranking.lru_compare t.state ~round:view.round)
        ~k:t.lru_slots eligible
    in
    Hashtbl.reset t.lru_half;
    List.iter (fun color -> Hashtbl.replace t.lru_half color ()) lru;
    List.iter
      (fun color ->
        if Hashtbl.mem t.edf_half color then begin
          Hashtbl.remove t.edf_half color;
          t.lru_promotions <- t.lru_promotions + 1
        end)
      lru;
    (* EDF set: sticky admission of the best-ranked nonidle non-LRU
       colors, evicting the worst-ranked member when full. *)
    let non_lru =
      List.filter (fun color -> not (Hashtbl.mem t.lru_half color)) eligible
    in
    let compare = Ranking.edf_compare t.state view.pool ~bounds:view.bounds in
    let top = Topk.select_list ~compare ~k:t.edf_slots non_lru in
    List.iter
      (fun color ->
        if Job_pool.nonidle view.pool color && not (in_cache t color) then begin
          Hashtbl.replace t.edf_half color ();
          if Hashtbl.length t.edf_half > t.edf_slots then begin
            match worst_in_edf_half t ~compare with
            | Some worst ->
                Hashtbl.remove t.edf_half worst;
                t.evictions <- t.evictions + 1
            | None -> assert false
          end
        end)
      top;
    let want =
      lru @ Hashtbl.fold (fun color () acc -> color :: acc) t.edf_half []
    in
    Cache_layout.place ~into:t.target ~n:t.n ~copies:2 ~current:view.assignment
      ~want ()

  let stats t =
    ("cached", Hashtbl.length t.lru_half + Hashtbl.length t.edf_half)
    :: ("edf_evictions", t.evictions)
    :: ("lru_promotions", t.lru_promotions)
    :: ("super_epochs", Instrument.tracker_count t.se)
    :: Color_state.stats t.state

  module Json = Rrs_sim.Event_sink.Json

  let half_list half =
    Hashtbl.fold (fun color () acc -> color :: acc) half []
    |> List.sort Int.compare

  let serialize t =
    Printf.sprintf
      "{\"lru\":%s,\"edf\":%s,\"evictions\":%d,\"promotions\":%d,\
       \"se_complete\":%d,\"se_seen\":%s,%s}"
      (Json.ints (half_list t.lru_half))
      (Json.ints (half_list t.edf_half))
      t.evictions t.lru_promotions
      (Instrument.tracker_complete t.se)
      (Json.ints (Instrument.tracker_seen t.se))
      (Color_state.serialize_fields t.state)

  let deserialize t blob =
    let fields = Json.parse_fields blob in
    Color_state.deserialize_fields t.state fields;
    t.evictions <- Json.int_field fields "evictions";
    t.lru_promotions <- Json.int_field fields "promotions";
    Instrument.tracker_restore t.se
      ~complete:(Json.int_field fields "se_complete")
      ~seen:(Array.to_list (Json.ints_field fields "se_seen"));
    Hashtbl.reset t.lru_half;
    Hashtbl.reset t.edf_half;
    Array.iter
      (fun color -> Hashtbl.replace t.lru_half color ())
      (Json.ints_field fields "lru");
    Array.iter
      (fun color -> Hashtbl.replace t.edf_half color ())
      (Json.ints_field fields "edf")
end

let with_share share : (module Rrs_sim.Policy.POLICY) =
  (module Make (struct
    let name = Printf.sprintf "dlru-edf@%.2f" share
    let lru_share = share
  end))
