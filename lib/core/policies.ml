(* One registry of the engine-drivable policies, keyed by [P.name], so
   the CLI, the serving layer and the benches resolve algorithm names the
   same way. The solver pipeline is deliberately absent: it is not a
   POLICY (it plans offline) and cannot drive a stepper. *)

let all : (module Rrs_sim.Policy.POLICY) list =
  [
    (module Policy_lru);
    (module Policy_edf);
    (module Policy_lru_edf);
    (module Seq_edf);
  ]

let names =
  List.map (fun (module P : Rrs_sim.Policy.POLICY) -> P.name) all

let find name =
  List.find_opt
    (fun (module P : Rrs_sim.Policy.POLICY) -> P.name = name)
    all
