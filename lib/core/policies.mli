(** Registry of the engine-drivable policies, keyed by [P.name]
    ([dlru], [edf], [dlru-edf], [seq-edf]). The CLI, the serving layer
    and snapshot restore all resolve algorithm names through it. *)

val all : (module Rrs_sim.Policy.POLICY) list

(** Registered names, registration order. *)
val names : string list

val find : string -> (module Rrs_sim.Policy.POLICY) option
