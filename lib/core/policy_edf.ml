(** Algorithm EDF (Section 3.1.2).

    Eligible colors are ranked nonidle-first, then by ascending deadline,
    delay bound, and color id. Any nonidle eligible color in the top
    [n/2] rankings that is missing from the cache is brought in; when the
    cache is full, the lowest-ranked cached color is evicted. The cache
    is sticky — colors stay until displaced — which is what the appendix
    B adversary exploits to force thrashing. *)

module Types = Rrs_sim.Types
module Job_pool = Rrs_sim.Job_pool
module Topk = Rrs_ds.Topk

type t = {
  n : int;
  state : Color_state.t;
  cached : (Types.color, unit) Hashtbl.t;
  target : Types.color option array; (* reusable reconfigure buffer *)
  mutable evictions : int;
}

let name = "edf"

let create ~n ~delta ~bounds =
  {
    n;
    state = Color_state.create ~delta ~bounds ();
    cached = Hashtbl.create 16;
    target = Array.make n None;
    evictions = 0;
  }

let on_drop t ~round ~dropped =
  Color_state.on_drop t.state ~round ~dropped ~in_cache:(Hashtbl.mem t.cached)

let on_arrival t ~round ~request = Color_state.on_arrival t.state ~round ~request

let worst_cached t ~compare =
  Hashtbl.fold
    (fun color () worst ->
      match worst with
      | None -> Some color
      | Some w -> if compare color w > 0 then Some color else worst)
    t.cached None

let reconfigure t (view : Rrs_sim.Policy.view) =
  let capacity = t.n / 2 in
  let compare = Ranking.edf_compare t.state view.pool ~bounds:view.bounds in
  let top =
    Topk.select_list ~compare ~k:capacity (Color_state.eligible_colors t.state)
  in
  List.iter
    (fun color ->
      if Job_pool.nonidle view.pool color && not (Hashtbl.mem t.cached color) then begin
        Hashtbl.replace t.cached color ();
        if Hashtbl.length t.cached > capacity then begin
          match worst_cached t ~compare with
          | Some worst ->
              Hashtbl.remove t.cached worst;
              t.evictions <- t.evictions + 1
          | None -> assert false
        end
      end)
    top;
  let want = Hashtbl.fold (fun color () acc -> color :: acc) t.cached [] in
  Cache_layout.place ~into:t.target ~n:t.n ~copies:2 ~current:view.assignment
    ~want ()

let stats t =
  ("cached", Hashtbl.length t.cached)
  :: ("evictions", t.evictions)
  :: Color_state.stats t.state

module Json = Rrs_sim.Event_sink.Json

let cached_list cached =
  Hashtbl.fold (fun color () acc -> color :: acc) cached []
  |> List.sort Int.compare

let serialize t =
  Printf.sprintf "{\"cached\":%s,\"evictions\":%d,%s}"
    (Json.ints (cached_list t.cached))
    t.evictions
    (Color_state.serialize_fields t.state)

let deserialize t blob =
  let fields = Json.parse_fields blob in
  Color_state.deserialize_fields t.state fields;
  t.evictions <- Json.int_field fields "evictions";
  Hashtbl.reset t.cached;
  Array.iter
    (fun color -> Hashtbl.replace t.cached color ())
    (Json.ints_field fields "cached")
