(** Algorithm ΔLRU (Section 3.1.1).

    Reconfiguration scheme: keep the [n/2] eligible colors with the most
    recent timestamps cached (each replicated in two locations), ties
    broken by the consistent color order. Not resource competitive — it
    may pin idle recently-used colors and starve a long-bound color with
    many pending jobs (Appendix A); implemented as a baseline. *)

module Types = Rrs_sim.Types
module Topk = Rrs_ds.Topk

type t = {
  n : int;
  state : Color_state.t;
  cached : (Types.color, unit) Hashtbl.t;
  target : Types.color option array; (* reusable reconfigure buffer *)
}

let name = "dlru"

let create ~n ~delta ~bounds =
  {
    n;
    state = Color_state.create ~delta ~bounds ();
    cached = Hashtbl.create 16;
    target = Array.make n None;
  }

let on_drop t ~round ~dropped =
  Color_state.on_drop t.state ~round ~dropped ~in_cache:(Hashtbl.mem t.cached)

let on_arrival t ~round ~request = Color_state.on_arrival t.state ~round ~request

let reconfigure t (view : Rrs_sim.Policy.view) =
  let capacity = t.n / 2 in
  let want =
    Topk.select_list
      ~compare:(Ranking.lru_compare t.state ~round:view.round)
      ~k:capacity
      (Color_state.eligible_colors t.state)
  in
  Hashtbl.reset t.cached;
  List.iter (fun color -> Hashtbl.replace t.cached color ()) want;
  Cache_layout.place ~into:t.target ~n:t.n ~copies:2 ~current:view.assignment
    ~want ()

let stats t = ("cached", Hashtbl.length t.cached) :: Color_state.stats t.state

module Json = Rrs_sim.Event_sink.Json

let cached_list cached =
  Hashtbl.fold (fun color () acc -> color :: acc) cached []
  |> List.sort Int.compare

let serialize t =
  Printf.sprintf "{\"cached\":%s,%s}"
    (Json.ints (cached_list t.cached))
    (Color_state.serialize_fields t.state)

let deserialize t blob =
  let fields = Json.parse_fields blob in
  Color_state.deserialize_fields t.state fields;
  Hashtbl.reset t.cached;
  Array.iter
    (fun color -> Hashtbl.replace t.cached color ())
    (Json.ints_field fields "cached")
