(** ΔLRU-2: the LRU-K replacement idea of O'Neil et al. (paper related
    work, [12]) transplanted into the ΔLRU setting.

    Identical to {!Policy_lru} except colors are ranked by their
    {e second-to-last} counter-wrap round (ties broken by the last wrap,
    then the consistent color order). LRU-K resists single-burst pollution
    better than LRU, but it is still a pure-recency scheme: it ignores
    idleness and deadlines, so the Appendix A adversary defeats it the
    same way it defeats ΔLRU — the baseline demonstrates that the EDF
    half of ΔLRU-EDF is doing real work. *)

module Types = Rrs_sim.Types
module Topk = Rrs_ds.Topk

type t = {
  n : int;
  state : Color_state.t;
  cached : (Types.color, unit) Hashtbl.t;
  target : Types.color option array; (* reusable reconfigure buffer *)
}

let name = "dlru-2"

let create ~n ~delta ~bounds =
  {
    n;
    state = Color_state.create ~delta ~bounds ();
    cached = Hashtbl.create 16;
    target = Array.make n None;
  }

let on_drop t ~round ~dropped =
  Color_state.on_drop t.state ~round ~dropped ~in_cache:(Hashtbl.mem t.cached)

let on_arrival t ~round ~request = Color_state.on_arrival t.state ~round ~request

let lru2_compare state ~round a b =
  let by_second =
    Int.compare
      (Color_state.timestamp2 state b ~round)
      (Color_state.timestamp2 state a ~round)
  in
  if by_second <> 0 then by_second
  else
    let by_first =
      Int.compare
        (Color_state.timestamp state b ~round)
        (Color_state.timestamp state a ~round)
    in
    if by_first <> 0 then by_first else Int.compare a b

let reconfigure t (view : Rrs_sim.Policy.view) =
  let capacity = t.n / 2 in
  let want =
    Topk.select_list
      ~compare:(lru2_compare t.state ~round:view.round)
      ~k:capacity
      (Color_state.eligible_colors t.state)
  in
  Hashtbl.reset t.cached;
  List.iter (fun color -> Hashtbl.replace t.cached color ()) want;
  Cache_layout.place ~into:t.target ~n:t.n ~copies:2 ~current:view.assignment
    ~want ()

let stats t = ("cached", Hashtbl.length t.cached) :: Color_state.stats t.state

module Json = Rrs_sim.Event_sink.Json

let cached_list cached =
  Hashtbl.fold (fun color () acc -> color :: acc) cached []
  |> List.sort Int.compare

let serialize t =
  Printf.sprintf "{\"cached\":%s,%s}"
    (Json.ints (cached_list t.cached))
    (Color_state.serialize_fields t.state)

let deserialize t blob =
  let fields = Json.parse_fields blob in
  Color_state.deserialize_fields t.state fields;
  Hashtbl.reset t.cached;
  Array.iter
    (fun color -> Hashtbl.replace t.cached color ())
    (Json.ints_field fields "cached")
