(** Shared plumbing for the Distribute and VarBatch reductions: turn the
    event log of an inner run (on a transformed instance) into replayable
    actions on the outer instance, relabeling colors through a mapping. *)

module Ledger = Rrs_sim.Ledger
module Rebuild = Rrs_sim.Rebuild

(** [actions_of_events ~map events] converts reconfiguration events to
    [Configure] actions and execution events to [Run] actions, relabeling
    every color through [map]. Drop events are discarded — the rebuild
    regenerates them for the outer instance. *)
let actions_of_events ~map events =
  List.filter_map
    (function
      | Ledger.Reconfig { round; mini_round; location; next; _ } ->
          Some (Rebuild.Configure { round; mini_round; location; color = map next })
      | Ledger.Execute { round; mini_round; location; color; _ } ->
          Some (Rebuild.Run { round; mini_round; location; color = map color })
      | Ledger.Drop _ -> None
      (* Fault events never occur in inner reduction runs (reductions do
         not inject faults), but discard them defensively. *)
      | Ledger.Crash _ | Ledger.Repair _ | Ledger.Reconfig_failed _ -> None)
    events
