(** Algorithm Seq-EDF (Section 3.3): the EDF reference without
    replication — all [m] locations cache distinct colors, one copy each.
    DS-Seq-EDF is this policy run at engine speed 2 (two
    reconfiguration+execution mini-rounds per round).

    Unlike the online EDF of Section 3.1.2, this is an {e analysis
    reference}: the paper operates it on the eligible subsequence of the
    input, so it carries no eligibility gating of its own — every color
    is treated as eligible, and colors are ranked nonidle-first, then by
    deadline, bound, id. With gating, Corollary 3.1 (drops(DS-Seq-EDF_m)
    <= drops(Par-EDF_m)) would be false: a color with fewer than [Delta]
    jobs never wraps, so a gated reference would drop jobs Par-EDF
    executes. *)

module Types = Rrs_sim.Types
module Job_pool = Rrs_sim.Job_pool
module Topk = Rrs_ds.Topk

type t = {
  n : int;
  num_colors : int;
  state : Color_state.t; (* deadlines update at boundaries for all colors *)
  cached : (Types.color, unit) Hashtbl.t;
  target : Types.color option array; (* reusable reconfigure buffer *)
  mutable evictions : int;
}

let name = "seq-edf"

let create ~n ~delta ~bounds =
  {
    n;
    num_colors = Array.length bounds;
    state = Color_state.create ~delta ~bounds ();
    cached = Hashtbl.create 16;
    target = Array.make n None;
    evictions = 0;
  }

let on_drop t ~round ~dropped =
  Color_state.on_drop t.state ~round ~dropped ~in_cache:(Hashtbl.mem t.cached)

let on_arrival t ~round ~request = Color_state.on_arrival t.state ~round ~request

let worst_cached t ~compare =
  Hashtbl.fold
    (fun color () worst ->
      match worst with
      | None -> Some color
      | Some w -> if compare color w > 0 then Some color else worst)
    t.cached None

let reconfigure t (view : Rrs_sim.Policy.view) =
  let capacity = t.n in
  let compare = Ranking.edf_compare t.state view.pool ~bounds:view.bounds in
  (* All colors are candidates: no eligibility gate. *)
  let top =
    Topk.select ~compare ~k:capacity (fun f ->
        for color = 0 to t.num_colors - 1 do
          f color
        done)
  in
  List.iter
    (fun color ->
      if Job_pool.nonidle view.pool color && not (Hashtbl.mem t.cached color) then begin
        Hashtbl.replace t.cached color ();
        if Hashtbl.length t.cached > capacity then begin
          match worst_cached t ~compare with
          | Some worst ->
              Hashtbl.remove t.cached worst;
              t.evictions <- t.evictions + 1
          | None -> assert false
        end
      end)
    top;
  let want = Hashtbl.fold (fun color () acc -> color :: acc) t.cached [] in
  Cache_layout.place ~into:t.target ~n:t.n ~copies:1 ~current:view.assignment
    ~want ()

let stats t =
  ("cached", Hashtbl.length t.cached)
  :: ("evictions", t.evictions)
  :: Color_state.stats t.state

module Json = Rrs_sim.Event_sink.Json

let cached_list cached =
  Hashtbl.fold (fun color () acc -> color :: acc) cached []
  |> List.sort Int.compare

let serialize t =
  Printf.sprintf "{\"cached\":%s,\"evictions\":%d,%s}"
    (Json.ints (cached_list t.cached))
    t.evictions
    (Color_state.serialize_fields t.state)

let deserialize t blob =
  let fields = Json.parse_fields blob in
  Color_state.deserialize_fields t.state fields;
  t.evictions <- Json.int_field fields "evictions";
  Hashtbl.reset t.cached;
  Array.iter
    (fun color -> Hashtbl.replace t.cached color ())
    (Json.ints_field fields "cached")
