module Instance = Rrs_sim.Instance
module Schedule = Rrs_sim.Schedule
module Rebuild = Rrs_sim.Rebuild

type result = {
  schedule : Schedule.t;
  batched_instance : Instance.t;
  distribute : Distribute.result;
}

let effective_bound d =
  if d < 1 then invalid_arg "Var_batch.effective_bound: bound must be >= 1";
  if d = 1 then 1
  else begin
    (* Largest power of two <= d / 2. *)
    let target = d / 2 in
    let q = ref 1 in
    while !q * 2 <= target do
      q := !q * 2
    done;
    !q
  end

let transform (instance : Instance.t) =
  let bounds = instance.bounds in
  let effective = Array.map effective_bound bounds in
  let arrivals =
    List.map
      (fun (round, request) ->
        List.map
          (fun (color, count) ->
            let d = bounds.(color) in
            let a' =
              if d = 1 then round
              else
                let q = effective.(color) in
                ((round / q) + 1) * q
            in
            (a', color, count))
          request)
      (Instance.nonempty_arrivals instance)
    |> List.concat
    |> List.map (fun (round, color, count) -> (round, [ (color, count) ]))
  in
  Instance.make
    ~name:(instance.name ^ "+varbatch")
    ~delta:instance.delta ~bounds:effective ~arrivals ()

let run ?policy ~n instance =
  let batched_instance = transform instance in
  match Distribute.run ?policy ~n batched_instance with
  | Error message -> Error ("inner distribute failed: " ^ message)
  | Ok distribute -> (
      (* Replay the inner schedule's actions against the original
         instance: colors are unchanged by the delaying step, only job
         timings differ, and every delayed window is inside the original
         one, so earliest-deadline replay succeeds. *)
      let actions =
        Reduction.actions_of_events ~map:Fun.id
          (Rrs_sim.Ledger.events distribute.Distribute.inner.ledger
          |> List.map (fun event ->
                 match event with
                 | Rrs_sim.Ledger.Reconfig r ->
                     Rrs_sim.Ledger.Reconfig
                       { r with next = distribute.Distribute.parent_of.(r.next) }
                 | Rrs_sim.Ledger.Execute e ->
                     Rrs_sim.Ledger.Execute
                       { e with color = distribute.Distribute.parent_of.(e.color) }
                 | Rrs_sim.Ledger.Drop _ as d -> d
                 (* inner runs inject no faults; relabel defensively *)
                 | Rrs_sim.Ledger.Reconfig_failed r ->
                     Rrs_sim.Ledger.Reconfig_failed
                       {
                         r with
                         attempted = distribute.Distribute.parent_of.(r.attempted);
                       }
                 | (Rrs_sim.Ledger.Crash _ | Rrs_sim.Ledger.Repair _) as e -> e))
      in
      match Rebuild.rebuild ~instance ~n ~speed:1 ~actions with
      | Error message -> Error ("replay on original instance failed: " ^ message)
      | Ok schedule -> Ok { schedule; batched_instance; distribute })

let cost result = Schedule.total_cost result.schedule
