type 'a t = {
  mutable buckets : 'a list array; (* bucket i holds time [base + offset] with
                                      [(base + offset) mod capacity = i],
                                      values stored in reverse arrival order *)
  mutable time : int;
  mutable count : int;
}

let create ?(horizon = 64) () =
  { buckets = Array.make (max horizon 1) []; time = 0; count = 0 }

let now wheel = wheel.time
let length wheel = wheel.count
let capacity wheel = Array.length wheel.buckets

(* Buckets hold immutable lists, so a shallow array copy gives two wheels
   that share bucket spines but never observe each other's mutations
   (every mutation replaces a whole bucket). *)
let copy wheel =
  { buckets = Array.copy wheel.buckets; time = wheel.time; count = wheel.count }

(* Grow so that [time .. time + needed] fits without aliasing: rebuild the
   bucket array with at least double the span. *)
let grow wheel needed =
  let old = wheel.buckets in
  let old_capacity = Array.length old in
  let new_capacity = max (2 * old_capacity) (needed + 1) in
  let fresh = Array.make new_capacity [] in
  (* Re-slot every pending value. Times in the old wheel lie in
     [time, time + old_capacity); recover each absolute time from its
     slot index. *)
  for i = 0 to old_capacity - 1 do
    match old.(i) with
    | [] -> ()
    | values ->
        let offset = (i - (wheel.time mod old_capacity) + old_capacity) mod old_capacity in
        let t = wheel.time + offset in
        fresh.(t mod new_capacity) <- values
  done;
  wheel.buckets <- fresh

let add wheel ~time value =
  if time < wheel.time then
    invalid_arg
      (Printf.sprintf "Timing_wheel.add: time %d is before now %d" time wheel.time);
  if time - wheel.time >= capacity wheel then grow wheel (time - wheel.time);
  let slot = time mod capacity wheel in
  wheel.buckets.(slot) <- value :: wheel.buckets.(slot);
  wheel.count <- wheel.count + 1

let advance wheel ~time f =
  if time < wheel.time then
    invalid_arg
      (Printf.sprintf "Timing_wheel.advance: time %d is before now %d" time wheel.time);
  (* Fast path: with nothing scheduled there is no slot to drain, so the
     clock can jump straight to [time]. This also terminates the walk as
     soon as the last pending value fires mid-advance. *)
  while wheel.time < time && wheel.count > 0 do
    let slot = wheel.time mod capacity wheel in
    (match wheel.buckets.(slot) with
    | [] -> ()
    | values ->
        wheel.buckets.(slot) <- [];
        let t = wheel.time in
        List.iter
          (fun v ->
            wheel.count <- wheel.count - 1;
            f t v)
          (List.rev values));
    wheel.time <- wheel.time + 1
  done;
  if wheel.time < time then wheel.time <- time

let pending_at wheel ~time =
  if time < wheel.time || time - wheel.time >= capacity wheel then []
  else List.rev wheel.buckets.(time mod capacity wheel)
