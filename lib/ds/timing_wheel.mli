(** A monotone timing wheel: buckets of values keyed by a nondecreasing
    integer clock (simulation rounds).

    Values are scheduled at absolute times [>=] the current time, and
    [advance] hands back every value whose time has come, in scheduling
    order within a time step. The wheel is a growable circular array of
    buckets, giving O(1) amortized [add] and O(1) per-expired-value
    [advance] — the classic calendar-queue substrate for deadline expiry
    in discrete-event simulators. *)

type 'a t

(** [create ?horizon ()] is an empty wheel positioned at time 0.
    [horizon] is a capacity hint for the initial number of buckets. *)
val create : ?horizon:int -> unit -> 'a t

(** Current time (the next time that [advance] will hand out). *)
val now : 'a t -> int

(** Number of values currently scheduled. *)
val length : 'a t -> int

(** An independent wheel with the same clock and pending values. O(number
    of buckets); the copy and the original never affect each other. *)
val copy : 'a t -> 'a t

(** [add wheel ~time value] schedules [value] at [time].
    @raise Invalid_argument if [time < now wheel]. *)
val add : 'a t -> time:int -> 'a -> unit

(** [advance wheel ~time f] moves the clock to [time] (which must be
    [>= now wheel]), calling [f t v] for every value [v] scheduled at any
    [t < time], in ascending [t] and FIFO order within a bucket. After the
    call, [now wheel = time]. *)
val advance : 'a t -> time:int -> (int -> 'a -> unit) -> unit

(** [pending_at wheel ~time] is the values scheduled at exactly [time]
    (FIFO order), without removing them. *)
val pending_at : 'a t -> time:int -> 'a list
