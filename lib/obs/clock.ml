let now_ns = Monotonic_clock.now

let now_s () = Int64.to_float (Monotonic_clock.now ()) *. 1e-9

let elapsed_s t0 = Float.max 0.0 (now_s () -. t0)
