(** Monotonic wall clock for all timing measurements.

    Every [wall_s]-style measurement in the repo goes through this module
    instead of [Unix.gettimeofday], so NTP steps and manual clock
    adjustments can never produce negative or skewed intervals. Backed by
    [CLOCK_MONOTONIC] (via bechamel's allocation-free stub); the epoch is
    arbitrary — only differences are meaningful. *)

(** Nanoseconds on the monotonic clock (arbitrary epoch). *)
val now_ns : unit -> int64

(** Seconds on the monotonic clock (arbitrary epoch). *)
val now_s : unit -> float

(** [elapsed_s t0] is the nonnegative seconds since [t0 = now_s ()]. *)
val elapsed_s : float -> float
