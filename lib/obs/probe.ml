type counter = { c_name : string; c_enabled : bool ref; mutable c_value : int }

type gauge = {
  g_name : string;
  g_enabled : bool ref;
  mutable g_value : int;
  mutable g_max : int;
}

type histogram = {
  h_name : string;
  h_enabled : bool ref;
  h_bounds : int array; (* strictly increasing inclusive upper bounds *)
  h_counts : int array; (* length = length h_bounds + 1 (overflow last) *)
  mutable h_sum : int;
  mutable h_n : int;
  mutable h_min : int;
  mutable h_max : int;
}

type probe = Counter of counter | Gauge of gauge | Histogram of histogram

type registry = {
  r_enabled : bool ref;
  by_name : (string, probe) Hashtbl.t;
  mutable order : probe list; (* reverse registration order *)
}

let create_registry ?(enabled = true) () =
  { r_enabled = ref enabled; by_name = Hashtbl.create 16; order = [] }

let enabled registry = !(registry.r_enabled)
let set_enabled registry flag = registry.r_enabled := flag

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histogram _ -> "histogram"

let register registry name make match_kind =
  match Hashtbl.find_opt registry.by_name name with
  | Some probe -> (
      match match_kind probe with
      | Some existing -> existing
      | None ->
          invalid_arg
            (Printf.sprintf "Probe: %S is already registered as a %s" name
               (kind_name probe)))
  | None ->
      let value, probe = make () in
      Hashtbl.replace registry.by_name name probe;
      registry.order <- probe :: registry.order;
      value

let counter registry name =
  register registry name
    (fun () ->
      let c = { c_name = name; c_enabled = registry.r_enabled; c_value = 0 } in
      (c, Counter c))
    (function Counter c -> Some c | _ -> None)

let incr c = if !(c.c_enabled) then c.c_value <- c.c_value + 1
let add c n = if !(c.c_enabled) then c.c_value <- c.c_value + n
let counter_value c = c.c_value

let gauge registry name =
  register registry name
    (fun () ->
      let g =
        { g_name = name; g_enabled = registry.r_enabled; g_value = 0; g_max = 0 }
      in
      (g, Gauge g))
    (function Gauge g -> Some g | _ -> None)

let set_gauge g value =
  if !(g.g_enabled) then begin
    g.g_value <- value;
    if value > g.g_max then g.g_max <- value
  end

let gauge_value g = g.g_value
let gauge_max g = g.g_max

let default_buckets =
  [| 0; 1; 2; 4; 8; 16; 32; 64; 128; 256; 512; 1024; 4096; 16384; 65536 |]

let validate_buckets bounds =
  if Array.length bounds = 0 then
    invalid_arg "Probe.histogram: empty bucket list";
  for i = 1 to Array.length bounds - 1 do
    if bounds.(i) <= bounds.(i - 1) then
      invalid_arg "Probe.histogram: bucket bounds must be strictly increasing"
  done

let histogram registry ?(buckets = default_buckets) name =
  validate_buckets buckets;
  register registry name
    (fun () ->
      let h =
        {
          h_name = name;
          h_enabled = registry.r_enabled;
          h_bounds = Array.copy buckets;
          h_counts = Array.make (Array.length buckets + 1) 0;
          h_sum = 0;
          h_n = 0;
          h_min = max_int;
          h_max = min_int;
        }
      in
      (h, Histogram h))
    (function Histogram h -> Some h | _ -> None)

(* Index of the smallest bound >= value, or [length bounds] (overflow). *)
let bucket_index bounds value =
  let n = Array.length bounds in
  if value > bounds.(n - 1) then n
  else begin
    let lo = ref 0 and hi = ref (n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if bounds.(mid) >= value then hi := mid else lo := mid + 1
    done;
    !lo
  end

let observe_n h value ~n =
  if !(h.h_enabled) && n > 0 then begin
    let index = bucket_index h.h_bounds value in
    h.h_counts.(index) <- h.h_counts.(index) + n;
    h.h_sum <- h.h_sum + (value * n);
    h.h_n <- h.h_n + n;
    if value < h.h_min then h.h_min <- value;
    if value > h.h_max then h.h_max <- value
  end

let observe h value = observe_n h value ~n:1

type hist_snapshot = {
  hist_name : string;
  count : int;
  sum : int;
  min_value : int;
  max_value : int;
  buckets : (int * int) array;
  overflow : int;
}

let snapshot_histogram h =
  let n = Array.length h.h_bounds in
  {
    hist_name = h.h_name;
    count = h.h_n;
    sum = h.h_sum;
    min_value = (if h.h_n = 0 then 0 else h.h_min);
    max_value = (if h.h_n = 0 then 0 else h.h_max);
    buckets = Array.init n (fun i -> (h.h_bounds.(i), h.h_counts.(i)));
    overflow = h.h_counts.(n);
  }

let percentile snap p =
  if snap.count = 0 then 0
  else begin
    let rank = max 1 (int_of_float (ceil (p *. float_of_int snap.count))) in
    let rank = min rank snap.count in
    let cumulative = ref 0 in
    let result = ref snap.max_value in
    (try
       Array.iter
         (fun (bound, count) ->
           cumulative := !cumulative + count;
           if !cumulative >= rank then begin
             (* The true quantile can't exceed the largest observed value. *)
             result := min bound snap.max_value;
             raise Exit
           end)
         snap.buckets
     with Exit -> ());
    !result
  end

let mean snap =
  if snap.count = 0 then 0.0
  else float_of_int snap.sum /. float_of_int snap.count

let reset registry =
  Hashtbl.iter
    (fun _ probe ->
      match probe with
      | Counter c -> c.c_value <- 0
      | Gauge g ->
          g.g_value <- 0;
          g.g_max <- 0
      | Histogram h ->
          Array.fill h.h_counts 0 (Array.length h.h_counts) 0;
          h.h_sum <- 0;
          h.h_n <- 0;
          h.h_min <- max_int;
          h.h_max <- min_int)
    registry.by_name

let snapshot registry =
  let entries =
    List.concat_map
      (fun probe ->
        match probe with
        | Counter c -> [ (c.c_name, c.c_value) ]
        | Gauge g -> [ (g.g_name, g.g_value); (g.g_name ^ "_max", g.g_max) ]
        | Histogram h ->
            let snap = snapshot_histogram h in
            [
              (h.h_name ^ "_count", snap.count);
              (h.h_name ^ "_sum", snap.sum);
              (h.h_name ^ "_p50", percentile snap 0.50);
              (h.h_name ^ "_p90", percentile snap 0.90);
              (h.h_name ^ "_p99", percentile snap 0.99);
              (h.h_name ^ "_p999", percentile snap 0.999);
              (h.h_name ^ "_max", snap.max_value);
            ])
      registry.order
  in
  List.sort (fun (a, _) (b, _) -> String.compare a b) entries

let histograms registry =
  List.rev registry.order
  |> List.filter_map (function
       | Histogram h -> Some (snapshot_histogram h)
       | _ -> None)

let counters registry =
  List.rev registry.order
  |> List.filter_map (function
       | Counter c -> Some (c.c_name, c.c_value)
       | _ -> None)

let gauges registry =
  List.rev registry.order
  |> List.filter_map (function
       | Gauge g -> Some (g.g_name, g.g_value, g.g_max)
       | _ -> None)

(* Fold [source] into [into]. Probes are matched by name; a probe absent
   from [into] is registered there first (histograms with the source's
   bucket bounds). Counter values and gauge values add; gauge maxima and
   histogram min/max combine with max/min — exactly what recording the
   union of both sample streams into one registry would have produced.
   Word-sized int reads mean a concurrent recorder can skew a merged
   total by in-flight samples but never tear a value. *)
let merge ~into source =
  List.iter
    (fun probe ->
      match probe with
      | Counter c ->
          let target = counter into c.c_name in
          target.c_value <- target.c_value + c.c_value
      | Gauge g ->
          let target = gauge into g.g_name in
          target.g_value <- target.g_value + g.g_value;
          if g.g_max > target.g_max then target.g_max <- g.g_max
      | Histogram h ->
          let target = histogram into ~buckets:h.h_bounds h.h_name in
          if target.h_bounds <> h.h_bounds then
            invalid_arg
              (Printf.sprintf
                 "Probe.merge: histogram %S has mismatched bucket bounds"
                 h.h_name);
          Array.iteri
            (fun i n -> target.h_counts.(i) <- target.h_counts.(i) + n)
            h.h_counts;
          target.h_sum <- target.h_sum + h.h_sum;
          target.h_n <- target.h_n + h.h_n;
          if h.h_min < target.h_min then target.h_min <- h.h_min;
          if h.h_max > target.h_max then target.h_max <- h.h_max)
    (List.rev source.order)

let merged registries =
  let into = create_registry () in
  List.iter (fun source -> merge ~into source) registries;
  into

let merged_snapshot registries = snapshot (merged registries)
