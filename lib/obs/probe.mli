(** Probe registry: typed counters, gauges and fixed-bucket histograms,
    registered by name so policies, the engine and the analysis helpers
    ([Rrs_core.Instrument]) share one namespace.

    Probes are designed to be left in hot paths permanently: every
    recording operation on a disabled registry costs exactly one branch
    (a [bool ref] dereference) and allocates nothing. Registration is
    idempotent — asking for a probe under an existing name returns the
    existing probe; asking for it under a different kind raises.

    Registries are not thread-safe: give each domain its own registry
    (or none). For cross-domain aggregation, keep one registry per
    worker domain and fold them with {!merge} / {!merged_snapshot} from
    a reader — recording stays lock-free and the reader pays for the
    fold. All stored values are word-sized [int]s, so a concurrent read
    can miss in-flight samples but never observes a torn value. *)

type registry

(** [create_registry ()] is a fresh, empty registry. [enabled] defaults
    to [true]. *)
val create_registry : ?enabled:bool -> unit -> registry

val enabled : registry -> bool

(** Enable or disable every probe of the registry at once. *)
val set_enabled : registry -> bool -> unit

(** Zero every probe (registrations are kept). *)
val reset : registry -> unit

(** {1 Counters} *)

type counter

(** [counter registry name] registers (or finds) a monotonic counter.
    @raise Invalid_argument if [name] is registered with another kind. *)
val counter : registry -> string -> counter

val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

(** {1 Gauges} *)

type gauge

(** [gauge registry name] registers (or finds) a last-value gauge that
    also tracks the maximum it has seen.
    @raise Invalid_argument if [name] is registered with another kind. *)
val gauge : registry -> string -> gauge

val set_gauge : gauge -> int -> unit
val gauge_value : gauge -> int
val gauge_max : gauge -> int

(** {1 Histograms} *)

type histogram

(** Default bucket upper bounds: 0, then powers of two up to [65536]. *)
val default_buckets : int array

(** [histogram registry ?buckets name] registers (or finds) a
    fixed-bucket histogram. [buckets] are inclusive upper bounds, must be
    strictly increasing and nonempty; values above the last bound land in
    an overflow bucket.
    @raise Invalid_argument if [name] is registered with another kind, or
    [buckets] is empty or not strictly increasing. *)
val histogram : registry -> ?buckets:int array -> string -> histogram

(** [observe h value] records one sample ([observe_n] records [n] equal
    samples in one call). One branch + one array increment when enabled;
    one branch when disabled. *)
val observe : histogram -> int -> unit

val observe_n : histogram -> int -> n:int -> unit

(** Immutable view of a histogram for rendering and percentile queries. *)
type hist_snapshot = {
  hist_name : string;
  count : int; (* total samples *)
  sum : int;
  min_value : int; (* 0 when empty *)
  max_value : int; (* 0 when empty *)
  buckets : (int * int) array; (* (inclusive upper bound, samples) *)
  overflow : int; (* samples above the last bound *)
}

val snapshot_histogram : histogram -> hist_snapshot

(** [percentile snap p] (with [0 <= p <= 1]) is an upper bound on the
    [p]-quantile: the smallest bucket bound whose cumulative count
    reaches [ceil (p * count)], clamped to [max_value] so a wide bucket
    never reports above the largest observed sample.

    Overflow behavior, pinned by tests: when the rank falls in the
    overflow bucket (samples above the last bound) no bucket bound
    applies and the result is exactly [max_value] — in particular, if
    {e every} sample overflowed, all percentiles equal [max_value]. An
    empty histogram reports 0 for every percentile. *)
val percentile : hist_snapshot -> float -> int

(** Mean sample, 0 when empty. *)
val mean : hist_snapshot -> float

(** {1 Snapshots} *)

(** Flatten every probe into the [(string * int) list] namespace policies
    already use for [stats] (and [Rrs_core.Instrument.stat] reads):
    counters as [name]; gauges as [name] and [name_max]; histograms as
    [name_count], [name_sum], [name_p50], [name_p90], [name_p99],
    [name_p999] and [name_max]. Entries are sorted by name. *)
val snapshot : registry -> (string * int) list

(** Histogram snapshots in registration order. *)
val histograms : registry -> hist_snapshot list

(** Counter [(name, value)] pairs in registration order. *)
val counters : registry -> (string * int) list

(** Gauge [(name, value, max)] triples in registration order. *)
val gauges : registry -> (string * int * int) list

(** {1 Cross-domain aggregation} *)

(** [merge ~into source] folds every probe of [source] into [into],
    registering missing names as it goes: counter values and gauge
    values add, gauge maxima take the max, histogram buckets/sums/counts
    add and min/max combine — the result equals recording the union of
    both sample streams into one registry. [source] is not modified and
    may belong to a domain that is still recording: int reads are
    word-sized, so the fold can miss in-flight samples but never tears.
    @raise Invalid_argument if a histogram name exists in both registries
    with different bucket bounds. *)
val merge : into:registry -> registry -> unit

(** [merged registries] is a fresh registry holding the fold of every
    registry in the list (see {!merge}). *)
val merged : registry list -> registry

(** [merged_snapshot registries] = [snapshot (merged registries)]. *)
val merged_snapshot : registry list -> (string * int) list
