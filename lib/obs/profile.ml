type entry = {
  name : string;
  mutable wall_s : float;
  mutable minor_words : float;
  mutable samples : int;
}

type t = entry array

type mark = { mark_s : float; mark_minor : float }

let create names =
  Array.of_list
    (List.map
       (fun name -> { name; wall_s = 0.0; minor_words = 0.0; samples = 0 })
       names)

let start () = { mark_s = Clock.now_s (); mark_minor = Gc.minor_words () }

let stop t index mark =
  let entry = t.(index) in
  entry.wall_s <- entry.wall_s +. Float.max 0.0 (Clock.now_s () -. mark.mark_s);
  entry.minor_words <- entry.minor_words +. (Gc.minor_words () -. mark.mark_minor);
  entry.samples <- entry.samples + 1

let phase_count t = Array.length t

let fields t =
  Array.to_list (Array.map (fun e -> (e.name, e.wall_s, e.minor_words)) t)

let samples t index = t.(index).samples

let total_wall_s t = Array.fold_left (fun acc e -> acc +. e.wall_s) 0.0 t
