(** Per-phase profiling aggregates: monotonic wall clock plus GC
    minor-words, one slot per named phase.

    Usage: [let p = create ["drop"; "execute"]] once, then around each
    phase [let t = start () in ...; stop p index t]. [start]/[stop] cost
    two clock reads and two [Gc.minor_words] reads; no allocation. *)

type t

(** Opaque start mark (monotonic seconds, minor words). *)
type mark = { mark_s : float; mark_minor : float }

(** [create names] makes one slot per phase, indexed in list order. *)
val create : string list -> t

val start : unit -> mark

(** [stop t index mark] folds the elapsed time and allocation since
    [mark] into slot [index]. *)
val stop : t -> int -> mark -> unit

val phase_count : t -> int

(** [(name, wall_s, minor_words)] per phase, in [create] order. *)
val fields : t -> (string * float * float) list

(** Samples folded into slot [index] so far. *)
val samples : t -> int -> int

(** Total wall seconds over all phases. *)
val total_wall_s : t -> float
