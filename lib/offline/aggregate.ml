module Instance = Rrs_sim.Instance
module Ledger = Rrs_sim.Ledger

type result = {
  output : Offline_schedule.t;
  inner_instance : Instance.t;
  parent_of : int array;
  relabels : int;
  fallback_placements : int;
}

(* Subcolor id of (color, label) given the dense layout of
   Distribute.transform: subcolors of a color are consecutive. *)
let subcolor_bases parent_of num_colors =
  let base = Array.make num_colors (-1) in
  Array.iteri (fun sub parent -> if base.(parent) < 0 then base.(parent) <- sub)
    parent_of;
  base

(* Number of subcolors of each color. *)
let subcolor_counts parent_of num_colors =
  let counts = Array.make num_colors 0 in
  Array.iter (fun parent -> counts.(parent) <- counts.(parent) + 1) parent_of;
  counts

let run (grid : Offline_schedule.t) =
  let instance = grid.Offline_schedule.instance in
  if grid.Offline_schedule.speed <> 1 then Error "input must be uni-speed"
  else if not (Instance.is_batched instance) then Error "instance is not batched"
  else if not (Instance.bounds_pow2 instance) then
    Error "bounds must be powers of two"
  else begin
    let m = grid.Offline_schedule.m in
    let bounds = instance.Instance.bounds in
    let num_colors = Array.length bounds in
    let horizon = instance.Instance.horizon in
    let inner_instance, parent_of = Rrs_core.Distribute.transform instance in
    let base = subcolor_bases parent_of num_colors in
    let sub_count = subcolor_counts parent_of num_colors in
    (* Batch size of subcolor (l, j) at a block starting at [start]:
       the Distribute split of that round's color-l count. *)
    let color_count_at = Hashtbl.create 64 in
    Array.iteri
      (fun round request ->
        List.iter
          (fun (color, count) -> Hashtbl.replace color_count_at (round, color) count)
          request)
      instance.Instance.requests;
    let batch_size ~color ~label ~start =
      let count = try Hashtbl.find color_count_at (start, color) with Not_found -> 0 in
      max 0 (min bounds.(color) (count - (label * bounds.(color))))
    in
    (* Executions of T grouped by (bound, block, color). *)
    match Offline_schedule.to_schedule grid with
    | Error message -> Error ("input replay: " ^ message)
    | Ok schedule ->
        let executed = Hashtbl.create 64 in
        List.iter
          (function
            | Ledger.Execute { color; deadline; _ } ->
                let p = bounds.(color) in
                let block = (deadline / p) - 1 in
                let key = (p, block, color) in
                Hashtbl.replace executed key
                  (1 + try Hashtbl.find executed key with Not_found -> 0)
            | Ledger.Reconfig _ | Ledger.Drop _ | Ledger.Crash _
            | Ledger.Repair _ | Ledger.Reconfig_failed _ ->
                ())
          schedule.events;
        let output =
          Offline_schedule.create ~instance:inner_instance ~m:(3 * m) ~speed:1
        in
        let occupied = Array.make_matrix (3 * m) horizon false in
        (* T-level of resource k in block(p, i): largest power-of-two q
           such that k is monochromatic throughout the enclosing block of
           q. *)
        let t_level ~resource ~p ~start =
          let rec widen q =
            let next = 2 * q in
            let next_start = start - (start mod next) in
            if
              next_start + next <= horizon
              && Offline_schedule.monochromatic grid ~resource
                   ~from_slot:next_start ~to_slot:(next_start + next)
                 <> None
            then widen next
            else q
          in
          widen p
        in
        (* Labels of monochromatic resources, per (p, color): the previous
           block's (resource -> label) map. *)
        let previous_labels = Hashtbl.create 16 in
        let relabels = ref 0 in
        let fallbacks = ref 0 in
        let error = ref None in
        let fail message = if !error = None then error := Some message in
        let distinct_bounds =
          List.sort_uniq Int.compare (Array.to_list bounds)
        in
        List.iter
          (fun p ->
            let colors_of_p =
              List.filter (fun c -> bounds.(c) = p) (List.init num_colors Fun.id)
            in
            let block = ref 0 in
            while !block * p < horizon do
              let i = !block in
              let start = i * p in
              let stop = min horizon (start + p) in
              List.iter
                (fun color ->
                  let executed_jobs =
                    try Hashtbl.find executed (p, i, color) with Not_found -> 0
                  in
                  (* Monochromatic resources for (T, p, i, color), ranked
                     by descending T-level. *)
                  let mono =
                    List.filter
                      (fun k ->
                        Offline_schedule.monochromatic grid ~resource:k
                          ~from_slot:start ~to_slot:stop
                        = Some color)
                      (List.init m Fun.id)
                    |> List.map (fun k -> (t_level ~resource:k ~p ~start, k))
                    |> List.sort (fun (la, ka) (lb, kb) ->
                           if la <> lb then Int.compare lb la else Int.compare ka kb)
                    |> List.map snd
                  in
                  (* Label assignment: inherit where possible, fill the
                     remaining labels in rank order. *)
                  let inherited =
                    match Hashtbl.find_opt previous_labels (p, color) with
                    | Some table ->
                        List.filter_map
                          (fun k ->
                            match Hashtbl.find_opt table k with
                            | Some label when label < List.length mono ->
                                Some (k, label)
                            | Some _ | None -> None)
                          mono
                    | None -> []
                  in
                  let taken = List.map snd inherited in
                  let labels = Hashtbl.create 8 in
                  List.iter (fun (k, label) -> Hashtbl.replace labels k label)
                    inherited;
                  let next_label = ref 0 in
                  List.iter
                    (fun k ->
                      if not (Hashtbl.mem labels k) then begin
                        while List.mem !next_label taken do incr next_label done;
                        Hashtbl.replace labels k !next_label;
                        incr next_label
                      end)
                    mono;
                  (* Groups of size p, descending (remainder last). *)
                  let rec make_groups remaining acc =
                    if remaining <= 0 then List.rev acc
                    else make_groups (remaining - p) (min p remaining :: acc)
                  in
                  let groups = make_groups executed_jobs [] in
                  let used_labels = Hashtbl.create 8 in
                  let pick_feasible_label ~size ~preferred =
                    let feasible label =
                      (not (Hashtbl.mem used_labels label))
                      && label < sub_count.(color)
                      && batch_size ~color ~label ~start >= size
                    in
                    match preferred with
                    | Some label when feasible label -> Some label
                    | preferred ->
                        if preferred <> None then incr relabels;
                        let rec scan label =
                          if label >= sub_count.(color) then None
                          else if feasible label then Some label
                          else scan (label + 1)
                        in
                        scan 0
                  in
                  (* Phase 1: one group per monochromatic resource. *)
                  let rec place_mono groups resources table =
                    match (groups, resources) with
                    | [], _ -> []
                    | groups, [] -> groups
                    | size :: rest_groups, k :: rest_resources -> (
                        let preferred = Hashtbl.find_opt labels k in
                        match pick_feasible_label ~size ~preferred with
                        | None ->
                            fail
                              (Printf.sprintf
                                 "no feasible subcolor for a %d-job group of \
                                  color %d at block %d"
                                 size color i);
                            rest_groups
                        | Some label ->
                            Hashtbl.replace used_labels label ();
                            Hashtbl.replace table k label;
                            let sub = base.(color) + label in
                            let row = 3 * k in
                            Offline_schedule.set_color_range output ~resource:row
                              ~from_slot:start ~to_slot:stop sub;
                            for slot = start to start + size - 1 do
                              Offline_schedule.set_exec output ~resource:row ~slot
                            done;
                            for slot = start to stop - 1 do
                              occupied.(row).(slot) <- true
                            done;
                            place_mono rest_groups rest_resources table)
                  in
                  let fresh_table = Hashtbl.create 8 in
                  let leftovers = place_mono groups mono fresh_table in
                  Hashtbl.replace previous_labels (p, color) fresh_table;
                  (* Phase 2: leftover groups into multichromatic triples
                     (fallback: any triple) with enough free slots. *)
                  let free_slots_in_triple k =
                    let free = ref [] in
                    for slot = stop - 1 downto start do
                      for row = (3 * k) + 2 downto 3 * k do
                        if not occupied.(row).(slot) then free := (row, slot) :: !free
                      done
                    done;
                    !free
                  in
                  let is_multichromatic k =
                    Offline_schedule.monochromatic grid ~resource:k
                      ~from_slot:start ~to_slot:stop
                    = None
                  in
                  List.iter
                    (fun size ->
                      match pick_feasible_label ~size ~preferred:None with
                      | None ->
                          fail
                            (Printf.sprintf
                               "no feasible subcolor for a leftover %d-job group \
                                of color %d at block %d"
                               size color i)
                      | Some label -> (
                          Hashtbl.replace used_labels label ();
                          let candidates = List.init m Fun.id in
                          let multichromatic_first =
                            List.filter is_multichromatic candidates
                            @ List.filter (fun k -> not (is_multichromatic k))
                                candidates
                          in
                          let placed = ref false in
                          List.iter
                            (fun k ->
                              if not !placed then begin
                                let free = free_slots_in_triple k in
                                if List.length free >= size then begin
                                  if not (is_multichromatic k) then incr fallbacks;
                                  let sub = base.(color) + label in
                                  List.iteri
                                    (fun index (row, slot) ->
                                      if index < size then begin
                                        Offline_schedule.set_color output
                                          ~resource:row ~slot sub;
                                        Offline_schedule.set_exec output
                                          ~resource:row ~slot;
                                        occupied.(row).(slot) <- true
                                      end)
                                    free;
                                  placed := true
                                end
                              end)
                            multichromatic_first;
                          match !placed with
                          | true -> ()
                          | false ->
                              fail
                                (Printf.sprintf
                                   "no room for a leftover %d-job group of color \
                                    %d at block %d"
                                   size color i)))
                    leftovers)
                colors_of_p;
              incr block
            done)
          distinct_bounds;
        match !error with
        | Some message -> Error message
        | None ->
            Ok
              {
                output;
                inner_instance;
                parent_of;
                relabels = !relabels;
                fallback_placements = !fallbacks;
              }
  end
