module Instance = Rrs_sim.Instance
module Schedule = Rrs_sim.Schedule
module Rebuild = Rrs_sim.Rebuild
module Ledger = Rrs_sim.Ledger

type t = {
  instance : Instance.t;
  m : int;
  speed : int;
  colors : Rrs_sim.Types.color option array array;
  execs : bool array array;
}

let create ~instance ~m ~speed =
  if m < 1 then invalid_arg "Offline_schedule.create: m must be >= 1";
  if speed < 1 then invalid_arg "Offline_schedule.create: speed must be >= 1";
  let slots = instance.Instance.horizon * speed in
  {
    instance;
    m;
    speed;
    colors = Array.init m (fun _ -> Array.make slots None);
    execs = Array.init m (fun _ -> Array.make slots false);
  }

let num_slots t = t.instance.Instance.horizon * t.speed

let check_cell t ~resource ~slot =
  if resource < 0 || resource >= t.m then
    invalid_arg (Printf.sprintf "Offline_schedule: bad resource %d" resource);
  if slot < 0 || slot >= num_slots t then
    invalid_arg (Printf.sprintf "Offline_schedule: bad slot %d" slot)

let set_color t ~resource ~slot color =
  check_cell t ~resource ~slot;
  t.colors.(resource).(slot) <- Some color

let set_color_range t ~resource ~from_slot ~to_slot color =
  for slot = from_slot to to_slot - 1 do
    set_color t ~resource ~slot color
  done

let set_exec t ~resource ~slot =
  check_cell t ~resource ~slot;
  if t.colors.(resource).(slot) = None then
    invalid_arg "Offline_schedule.set_exec: black cell";
  t.execs.(resource).(slot) <- true

let reconfig_count t =
  let count = ref 0 in
  for resource = 0 to t.m - 1 do
    let previous = ref None in
    Array.iter
      (fun cell ->
        (match cell with
        | Some _ when cell <> !previous -> incr count
        | Some _ | None -> ());
        (* A black cell does not change the physical color: treat black
           runs as "the resource is unused", so color - black - same
           color costs once, matching the free-eviction convention. *)
        if cell <> None then previous := cell)
      t.colors.(resource)
  done;
  !count

let exec_count t =
  Array.fold_left
    (fun acc row -> Array.fold_left (fun acc e -> if e then acc + 1 else acc) acc row)
    0 t.execs

let cost t =
  (t.instance.Instance.delta * reconfig_count t)
  + (Instance.total_jobs t.instance - exec_count t)

let to_schedule t =
  let actions = ref [] in
  let slots = num_slots t in
  for slot = 0 to slots - 1 do
    let round = slot / t.speed in
    let mini_round = slot mod t.speed in
    for resource = 0 to t.m - 1 do
      match t.colors.(resource).(slot) with
      | None -> ()
      | Some color ->
          actions :=
            Rebuild.Configure { round; mini_round; location = resource; color }
            :: !actions
    done;
    for resource = 0 to t.m - 1 do
      if t.execs.(resource).(slot) then
        match t.colors.(resource).(slot) with
        | Some color ->
            actions :=
              Rebuild.Run { round; mini_round; location = resource; color }
              :: !actions
        | None -> assert false
    done
  done;
  Rebuild.rebuild ~instance:t.instance ~n:t.m ~speed:t.speed
    ~actions:(List.rev !actions)

let of_schedule (schedule : Schedule.t) =
  let t =
    create ~instance:schedule.instance ~m:schedule.n ~speed:schedule.speed
  in
  let slots = num_slots t in
  (* Replay events into the grid; configured colors persist over time. *)
  let current = Array.make schedule.n None in
  let cursor = ref 0 in
  let fill_until slot =
    while !cursor < slot do
      for resource = 0 to schedule.n - 1 do
        t.colors.(resource).(!cursor) <- current.(resource)
      done;
      incr cursor
    done
  in
  List.iter
    (fun event ->
      match event with
      | Ledger.Reconfig { round; mini_round; location; next; _ } ->
          let slot = (round * schedule.speed) + mini_round in
          fill_until slot;
          current.(location) <- Some next
      | Ledger.Execute { round; mini_round; location; _ } ->
          let slot = (round * schedule.speed) + mini_round in
          fill_until (slot + 1);
          t.execs.(location).(slot) <- true
      | Ledger.Drop _ -> ()
      | Ledger.Crash { round; location } ->
          (* the grid paints crashed spans black (no color, no execs) *)
          fill_until (round * schedule.speed);
          current.(location) <- None
      | Ledger.Repair _ | Ledger.Reconfig_failed _ -> ())
    schedule.events;
  fill_until slots;
  t

let monochromatic t ~resource ~from_slot ~to_slot =
  if from_slot >= to_slot then None
  else
    match t.colors.(resource).(from_slot) with
    | None -> None
    | Some color ->
        let ok = ref true in
        for slot = from_slot + 1 to to_slot - 1 do
          if t.colors.(resource).(slot) <> Some color then ok := false
        done;
        if !ok then Some color else None
