module Instance = Rrs_sim.Instance
module Ledger = Rrs_sim.Ledger

type classification = Early | Punctual | Late

let half p = p / 2

let classify ~bound ~arrival ~execution_round =
  if bound < 2 then invalid_arg "Punctualize.classify: bound must be >= 2";
  let h = half bound in
  let arrival_block = arrival / h in
  let execution_block = execution_round / h in
  match execution_block - arrival_block with
  | 0 -> Early
  | 1 -> Punctual
  | 2 -> Late
  | d ->
      invalid_arg
        (Printf.sprintf
           "Punctualize.classify: execution %d half-blocks after arrival" d)

(* Annotate every execution mark of a grid with its job's deadline (and
   hence arrival) by replaying it through the validator path. Note that
   annotation assigns jobs to marks by earliest-deadline-first within a
   color; job identities of a *subset* of marks can differ from their
   identities in the full grid, which is why classification happens once
   on the full grid and is passed along explicitly below. *)
let annotated_executions grid =
  match Offline_schedule.to_schedule grid with
  | Error message -> Error ("annotate: " ^ message)
  | Ok schedule ->
      Ok
        (List.filter_map
           (function
             | Ledger.Execute { round; mini_round; location; color; deadline } ->
                 let slot = (round * grid.Offline_schedule.speed) + mini_round in
                 Some (location, slot, color, deadline)
             | Ledger.Reconfig _ | Ledger.Drop _ | Ledger.Crash _
             | Ledger.Repair _ | Ledger.Reconfig_failed _ ->
                 None)
           schedule.events)

let copy_colors grid =
  let fresh =
    Offline_schedule.create ~instance:grid.Offline_schedule.instance
      ~m:grid.Offline_schedule.m ~speed:grid.Offline_schedule.speed
  in
  Array.iteri
    (fun resource row ->
      Array.iteri
        (fun slot cell ->
          match cell with
          | Some color -> Offline_schedule.set_color fresh ~resource ~slot color
          | None -> ())
        row)
    grid.Offline_schedule.colors;
  fresh

let classify_execution ~bounds ~speed (_, slot, color, deadline) =
  let bound = bounds.(color) in
  classify ~bound ~arrival:(deadline - bound) ~execution_round:(slot / speed)

let partition_executions grid =
  match annotated_executions grid with
  | Error message -> Error message
  | Ok executions ->
      let bounds = grid.Offline_schedule.instance.Instance.bounds in
      let speed = grid.Offline_schedule.speed in
      let early, rest =
        List.partition
          (fun e -> classify_execution ~bounds ~speed e = Early)
          executions
      in
      let punctual, late =
        List.partition
          (fun e -> classify_execution ~bounds ~speed e = Punctual)
          rest
      in
      Ok (early, punctual, late)

let split grid =
  match partition_executions grid with
  | Error message -> invalid_arg ("Punctualize.split: " ^ message)
  | Ok (early_marks, punctual_marks, late_marks) ->
      let materialize marks =
        let fresh = copy_colors grid in
        List.iter
          (fun (resource, slot, _, _) ->
            Offline_schedule.set_exec fresh ~resource ~slot)
          marks;
        fresh
      in
      (materialize early_marks, materialize punctual_marks, materialize late_marks)

(* Is [grid] (single resource) configured with [color] throughout rounds
   [from_round, to_round) (clipped to the horizon)? *)
let configured_throughout grid ~from_round ~to_round color =
  let slots = Offline_schedule.num_slots grid in
  let from_slot = max 0 from_round in
  let to_slot = min slots to_round in
  Offline_schedule.monochromatic grid ~resource:0 ~from_slot ~to_slot
  = Some color

let check_single_uni grid =
  if grid.Offline_schedule.m <> 1 then Error "input must be single-resource"
  else if grid.Offline_schedule.speed <> 1 then Error "input must be uni-speed"
  else
    let bounds = grid.Offline_schedule.instance.Instance.bounds in
    if not (Array.for_all (fun d -> d >= 2 && d land (d - 1) = 0) bounds) then
      Error "bounds must be powers of two >= 2"
    else Ok ()

(* Shared construction for Lemmas 5.1 and 5.2: [source] provides the
   configuration timeline (for specialness tests); [executions] are the
   (slot, color) marks to relocate, all pre-classified as early
   ([`Forward]) or late ([`Backward]). *)
let build_directed ~direction ~source executions =
  let instance = source.Offline_schedule.instance in
  let bounds = instance.Instance.bounds in
  let output = Offline_schedule.create ~instance ~m:3 ~speed:1 in
  let slots = Offline_schedule.num_slots output in
  let shift_of p = match direction with `Forward -> half p | `Backward -> -(half p) in
  (* Special jobs: the resource stays on the job's color through both the
     execution half-block and the adjacent one in the shift direction;
     they move to resource 0, shifted by p/2 (Lemma 5.1, steps 1-2). *)
  let special, nonspecial =
    List.partition
      (fun (_, slot, color, _) ->
        let p = bounds.(color) in
        let h = half p in
        let block_start = slot - (slot mod h) in
        let from_round, to_round =
          match direction with
          | `Forward -> (block_start, block_start + (2 * h))
          | `Backward -> (block_start - h, block_start + h)
        in
        configured_throughout source ~from_round ~to_round color)
      executions
  in
  let pack_error = ref None in
  List.iter
    (fun (_, slot, color, _) ->
      let target = slot + shift_of bounds.(color) in
      if target < 0 || target >= slots then
        pack_error := Some "special job shifted outside the horizon"
      else begin
        Offline_schedule.set_color output ~resource:0 ~slot:target color;
        Offline_schedule.set_exec output ~resource:0 ~slot:target
      end)
    special;
  (* Nonspecial jobs: ascending delay bound, then half-block, then color;
     each goes to the first free slot on resources 1-2 within its
     punctual half-block (Lemma 5.1, step 3). *)
  let ordered =
    List.sort
      (fun (_, slot_a, color_a, _) (_, slot_b, color_b, _) ->
        let by_bound = Int.compare bounds.(color_a) bounds.(color_b) in
        if by_bound <> 0 then by_bound
        else
          let block a color = a / half bounds.(color) in
          let by_block = Int.compare (block slot_a color_a) (block slot_b color_b) in
          if by_block <> 0 then by_block else Int.compare color_a color_b)
      nonspecial
  in
  List.iter
    (fun (_, slot, color, _) ->
      let h = half bounds.(color) in
      let block_start = slot - (slot mod h) in
      let window_start, window_end =
        match direction with
        | `Forward -> (block_start + h, block_start + (2 * h))
        | `Backward -> (block_start - h, block_start)
      in
      let window_start = max 0 window_start in
      let window_end = min slots window_end in
      let placed = ref false in
      let target_slot = ref window_start in
      while (not !placed) && !target_slot < window_end do
        let resource = ref 1 in
        while (not !placed) && !resource <= 2 do
          if not output.Offline_schedule.execs.(!resource).(!target_slot) then begin
            Offline_schedule.set_color output ~resource:!resource
              ~slot:!target_slot color;
            Offline_schedule.set_exec output ~resource:!resource ~slot:!target_slot;
            placed := true
          end;
          incr resource
        done;
        incr target_slot
      done;
      if not !placed then
        pack_error :=
          Some
            (Printf.sprintf
               "no free slot for a nonspecial color-%d job in [%d, %d)" color
               window_start window_end))
    ordered;
  match !pack_error with Some message -> Error message | None -> Ok output

let punctualize_with ~direction grid =
  match check_single_uni grid with
  | Error _ as e -> e
  | Ok () -> (
      match partition_executions grid with
      | Error message -> Error message
      | Ok (early, punctual, late) -> (
          match (direction, punctual, early, late) with
          | `Forward, [], _, [] -> build_directed ~direction ~source:grid early
          | `Backward, [], [], _ -> build_directed ~direction ~source:grid late
          | `Forward, _, _, _ -> Error "input is not an early schedule"
          | `Backward, _, _, _ -> Error "input is not a late schedule"))

let punctualize_early grid = punctualize_with ~direction:`Forward grid
let punctualize_late grid = punctualize_with ~direction:`Backward grid

let extract_resource grid k =
  let single =
    Offline_schedule.create ~instance:grid.Offline_schedule.instance ~m:1
      ~speed:grid.Offline_schedule.speed
  in
  Array.iteri
    (fun slot cell ->
      match cell with
      | Some color -> Offline_schedule.set_color single ~resource:0 ~slot color
      | None -> ())
    grid.Offline_schedule.colors.(k);
  Array.iteri
    (fun slot marked ->
      if marked then Offline_schedule.set_exec single ~resource:0 ~slot)
    grid.Offline_schedule.execs.(k);
  single

let blit_rows ~source ~target ~at =
  Array.iteri
    (fun k row ->
      Array.iteri
        (fun slot cell ->
          match cell with
          | Some color ->
              Offline_schedule.set_color target ~resource:(at + k) ~slot color
          | None -> ())
        row;
      Array.iteri
        (fun slot marked ->
          if marked then Offline_schedule.set_exec target ~resource:(at + k) ~slot)
        source.Offline_schedule.execs.(k))
    source.Offline_schedule.colors

let punctual_schedule grid =
  if grid.Offline_schedule.speed <> 1 then Error "input must be uni-speed"
  else begin
    let m = grid.Offline_schedule.m in
    let instance = grid.Offline_schedule.instance in
    let output = Offline_schedule.create ~instance ~m:(7 * m) ~speed:1 in
    let rec build k =
      if k >= m then Ok output
      else
        let single = extract_resource grid k in
        match check_single_uni single with
        | Error message -> Error message
        | Ok () -> (
            match partition_executions single with
            | Error message -> Error (Printf.sprintf "resource %d: %s" k message)
            | Ok (early, punctual, late) -> (
                match build_directed ~direction:`Forward ~source:single early with
                | Error message ->
                    Error (Printf.sprintf "resource %d (early): %s" k message)
                | Ok early' -> (
                    match
                      build_directed ~direction:`Backward ~source:single late
                    with
                    | Error message ->
                        Error (Printf.sprintf "resource %d (late): %s" k message)
                    | Ok late' ->
                        blit_rows ~source:early' ~target:output ~at:(7 * k);
                        (* The punctual part keeps its original slots on
                           one dedicated resource. *)
                        Array.iteri
                          (fun slot cell ->
                            match cell with
                            | Some color ->
                                Offline_schedule.set_color output
                                  ~resource:((7 * k) + 3) ~slot color
                            | None -> ())
                          single.Offline_schedule.colors.(0);
                        List.iter
                          (fun (_, slot, _, _) ->
                            Offline_schedule.set_exec output
                              ~resource:((7 * k) + 3) ~slot)
                          punctual;
                        blit_rows ~source:late' ~target:output ~at:((7 * k) + 4);
                        build (k + 1))))
    in
    build 0
  end
