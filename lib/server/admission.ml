(* Serving-layer admission gate. See admission.mli. *)

module Capacity = Rrs_analysis.Capacity
module Demand = Rrs_workload.Demand

type mode = Off | Warn | Enforce

let mode_of_string = function
  | "off" -> Ok Off
  | "warn" -> Ok Warn
  | "enforce" -> Ok Enforce
  | other ->
      Error
        (Printf.sprintf "unknown admission mode %S (known: off, warn, enforce)"
           other)

let mode_to_string = function Off -> "off" | Warn -> "warn" | Enforce -> "enforce"

type reject = {
  r_color : int;
  r_demand : int;
  r_supply : int;
  r_message : string;
}

let validate_decl ~colors (decl : Wire.decl) =
  let rates = Array.length decl.d_rates in
  let bursts = Array.length decl.d_bursts in
  if rates <> colors then
    Error
      (Printf.sprintf "declaration has %d rates for %d colors" rates colors)
  else if decl.d_den < 1 then
    Error (Printf.sprintf "declaration rate_den %d < 1" decl.d_den)
  else if bursts <> 0 && bursts <> colors then
    Error
      (Printf.sprintf "declaration has %d bursts for %d colors" bursts colors)
  else if Array.exists (fun r -> r < 0) decl.d_rates then
    Error "declaration has a negative rate"
  else if Array.exists (fun b -> b < 0) decl.d_bursts then
    Error "declaration has a negative burst"
  else Ok ()

let ceil_div a b = (a + b - 1) / b

let decl_mjpr (decl : Wire.decl) =
  Array.fold_left
    (fun acc rate ->
      acc + if rate = 0 then 0 else ceil_div (1000 * rate) decl.d_den)
    0 decl.d_rates

let burst_of (decl : Wire.decl) color =
  if Array.length decl.d_bursts = 0 then 0 else decl.d_bursts.(color)

let spec_of_decl ~delta ~bounds ~speed (decl : Wire.decl) =
  Demand.make ~delta ~speed
    (List.init (Array.length bounds) (fun color ->
         {
           Demand.color;
           bound = bounds.(color);
           rate_num = decl.d_rates.(color);
           rate_den = decl.d_den;
           burst = burst_of decl color;
         }))

let check_session ~session ~delta ~bounds ~n ~speed decl =
  match spec_of_decl ~delta ~bounds ~speed decl with
  | Error _ ->
      (* Not analyzable (bad delta/speed/bounds): let session creation
         produce the config error instead of a capacity verdict. *)
      Ok ()
  | Ok spec -> (
      match Capacity.check ~n spec with
      | Capacity.Fits _ -> Ok ()
      | Capacity.Overcommitted { required; available; binding; _ } ->
          let e = spec.Demand.entries.(binding) in
          Error
            {
              r_color = binding;
              r_demand = required;
              r_supply = available;
              r_message =
                Printf.sprintf
                  "session %S: declared demand needs %d resources but the \
                   session has n=%d (binding color %d: rate %d/%d jobs/round, \
                   burst %d, bound %d)"
                  session required available binding e.Demand.rate_num
                  e.Demand.rate_den e.Demand.burst e.Demand.bound;
            }
      | Capacity.Unsatisfiable { color; reason } ->
          Error
            {
              r_color = color;
              r_demand = decl.d_rates.(color);
              r_supply = 0;
              r_message =
                Printf.sprintf "session %S: color %d unsatisfiable: %s" session
                  color reason;
            })

type t = {
  gate_mode : mode;
  supply : int; (* mjpr *)
  mutex : Mutex.t;
  demands : (string, int) Hashtbl.t; (* session -> admitted mjpr *)
  mutable demand : int; (* sum of [demands] *)
  mutable rejected_opens : int;
  mutable policed_feeds : int;
  mutable policed_jobs : int;
}

let create ~mode ~supply_mjpr =
  {
    gate_mode = mode;
    supply = supply_mjpr;
    mutex = Mutex.create ();
    demands = Hashtbl.create 64;
    demand = 0;
    rejected_opens = 0;
    policed_feeds = 0;
    policed_jobs = 0;
  }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let mode t = t.gate_mode
let supply_mjpr t = t.supply
let demand_mjpr t = locked t (fun () -> t.demand)
let sessions t = locked t (fun () -> Hashtbl.length t.demands)

let set_unlocked t ~session ~mjpr =
  let previous = Option.value (Hashtbl.find_opt t.demands session) ~default:0 in
  Hashtbl.replace t.demands session mjpr;
  t.demand <- t.demand - previous + mjpr

let try_admit t ~session ~mjpr =
  locked t (fun () ->
      let previous =
        Option.value (Hashtbl.find_opt t.demands session) ~default:0
      in
      let next = t.demand - previous + mjpr in
      if next > t.supply then
        Error
          {
            r_color = -1;
            r_demand = next;
            r_supply = t.supply;
            r_message =
              Printf.sprintf
                "aggregate: admitting %d mjobs/round for session %S would \
                 raise deployment demand to %d against a supply of %d \
                 mjobs/round"
                mjpr session next t.supply;
          }
      else begin
        set_unlocked t ~session ~mjpr;
        Ok ()
      end)

let force_admit t ~session ~mjpr = locked t (fun () -> set_unlocked t ~session ~mjpr)

let release t ~session =
  locked t (fun () ->
      match Hashtbl.find_opt t.demands session with
      | None -> ()
      | Some mjpr ->
          Hashtbl.remove t.demands session;
          t.demand <- t.demand - mjpr)

let note_rejected_open t =
  locked t (fun () -> t.rejected_opens <- t.rejected_opens + 1)

let note_policed t ~jobs =
  locked t (fun () ->
      t.policed_feeds <- t.policed_feeds + 1;
      t.policed_jobs <- t.policed_jobs + jobs)

let rejected_opens t = locked t (fun () -> t.rejected_opens)
let policed_feeds t = locked t (fun () -> t.policed_feeds)
let policed_jobs t = locked t (fun () -> t.policed_jobs)
