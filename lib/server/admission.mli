(** The serving-layer admission gate: declared demand vs configured
    supply.

    Configured by [rrs serve --admission SPEC] (an [rrs-spec/1] file,
    see {!Rrs_workload.Demand}): the spec's deployment size [n] (or the
    analytically sized minimum when the spec carries none) times its
    [speed] is the supply budget, tracked in {e milli-jobs per round}
    (mjpr) so rational per-color rates aggregate in exact integer
    arithmetic.

    Two checks guard an [open] (and a [feed] re-declaration) that
    carries a {!Wire.decl}:

    - {b session}: the declared rates must be analytically feasible for
      the session's {e own} configuration ([n], [delta], bounds, speed)
      per {!Rrs_analysis.Capacity} — otherwise the session would drop
      its own jobs no matter what the rest of the deployment does;
    - {b aggregate}: the sum of admitted declared rates must stay within
      the deployment supply — otherwise the new session would eat into
      budgets already promised to admitted sessions.

    In [Enforce] mode a violation draws {!Wire.Admission_reject} (the
    reply names the binding constraint) and, for an [open], leaves no
    session state; in [Warn] mode it is admitted anyway and logged.
    Undeclared sessions bypass the gate (demand 0) — the gate prices
    declared work, it does not refuse legacy clients. *)

type mode = Off | Warn | Enforce

val mode_of_string : string -> (mode, string) result
val mode_to_string : mode -> string

(** A violated constraint, mirrored onto {!Wire.Admission_reject}. *)
type reject = {
  r_color : int; (* binding color; -1 = aggregate supply *)
  r_demand : int;
  r_supply : int;
  r_message : string;
}

(** Structural validation of a declaration against the session's color
    count: rate per color, positive denominator, non-negative rates and
    bursts, bursts either absent or per color. *)
val validate_decl : colors:int -> Wire.decl -> (unit, string) result

(** Aggregate declared demand of one declaration, milli-jobs/round
    (per-color ceilings, so the gate never under-counts). *)
val decl_mjpr : Wire.decl -> int

(** The per-session analytic check: are the declared rates feasible for
    a session configured with [n]/[delta]/[bounds]/[speed]? The reject
    names the binding color (or the impossibility). Returns [Ok ()] for
    declarations the capacity model cannot even build (invalid
    delta/speed) — session creation surfaces those as config errors. *)
val check_session :
  session:string -> delta:int -> bounds:int array -> n:int -> speed:int ->
  Wire.decl -> (unit, reject) result

(** The aggregate gate. Thread-safe; one per server. *)
type t

val create : mode:mode -> supply_mjpr:int -> t
val mode : t -> mode
val supply_mjpr : t -> int
val demand_mjpr : t -> int

(** Admitted sessions currently holding a declared budget. *)
val sessions : t -> int

(** [try_admit t ~session ~mjpr] reserves [mjpr] for the session
    (replacing any previous reservation — a re-declaration adjusts, it
    does not double-count). [Error] (nothing reserved) when the new
    aggregate would exceed the supply. *)
val try_admit : t -> session:string -> mjpr:int -> (unit, reject) result

(** Reserve unconditionally ([Warn] mode, and restore-time
    re-admission of already-running sessions). *)
val force_admit : t -> session:string -> mjpr:int -> unit

(** Release a session's reservation (close, or a lost open race). *)
val release : t -> session:string -> unit

(** {2 Gate counters} (for the metrics plane) *)

val note_rejected_open : t -> unit
val note_policed : t -> jobs:int -> unit
val rejected_opens : t -> int
val policed_feeds : t -> int
val policed_jobs : t -> int
