exception Timeout

type t = {
  fd : Unix.file_descr;
  input : Wire.reader;
  output : out_channel;
  mutable framing : Wire.framing;
  mutable sent : int;
  deadline : float option ref; (* absolute, Unix.gettimeofday based *)
  mutable broken : bool; (* reader state indeterminate; reconnect *)
}

let connect_fd fd =
  (* The reader pulls straight from the fd so a per-call deadline can
     wait on readiness with the remaining budget before every read
     (poll-based: client fds can sit above FD_SETSIZE when thousands of
     connections are open). Reads without a deadline behave like the
     old in_channel-backed reader. *)
  let deadline = ref None in
  let pull buf off len =
    match !deadline with
    | None -> Unix.read fd buf off len
    | Some until ->
        let rec wait () =
          let remaining = until -. Unix.gettimeofday () in
          if remaining <= 0. then raise Timeout
          else
            match Poll.wait_readable ~timeout:remaining fd with
            | `Timeout -> raise Timeout
            | `Readable -> Unix.read fd buf off len
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait ()
        in
        wait ()
  in
  {
    fd;
    input = Wire.reader_fn pull;
    output = Unix.out_channel_of_descr fd;
    framing = Wire.V1;
    sent = 0;
    deadline;
    broken = false;
  }

let address_label = function
  | Server.Unix_socket path -> path
  | Server.Tcp (host, port) -> Printf.sprintf "%s:%d" host port

(* Connect with an optional budget: non-blocking connect + poll on
   writability + SO_ERROR, so a black-holed host cannot stall the CLI
   for the kernel's default timeout. *)
let connect_sockaddr fd sockaddr timeout_ms =
  match timeout_ms with
  | None -> Unix.connect fd sockaddr
  | Some ms -> (
      Unix.set_nonblock fd;
      let finish () =
        let budget = float_of_int (max ms 1) /. 1000. in
        match Poll.wait_writable ~timeout:budget fd with
        | `Timeout -> raise (Unix.Unix_error (Unix.ETIMEDOUT, "connect", ""))
        | `Writable -> (
            match Unix.getsockopt_error fd with
            | None -> ()
            | Some error -> raise (Unix.Unix_error (error, "connect", "")))
      in
      (match Unix.connect fd sockaddr with
      | () -> ()
      | exception
          Unix.Unix_error
            ((Unix.EINPROGRESS | Unix.EWOULDBLOCK | Unix.EAGAIN), _, _) ->
          finish ());
      Unix.clear_nonblock fd)

let connect ?timeout_ms address =
  match address with
  | Server.Unix_socket path ->
      let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (try connect_sockaddr fd (Unix.ADDR_UNIX path) timeout_ms
       with e ->
         (try Unix.close fd with Unix.Unix_error _ -> ());
         raise e);
      connect_fd fd
  | Server.Tcp (host, port) -> (
      match Server.resolve_host host with
      | Error message -> failwith ("cannot connect: " ^ message)
      | Ok addr ->
          let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
          (try connect_sockaddr fd (Unix.ADDR_INET (addr, port)) timeout_ms
           with e ->
             (try Unix.close fd with Unix.Unix_error _ -> ());
             raise e);
          connect_fd fd)

let try_connect ?timeout_ms address =
  match connect ?timeout_ms address with
  | t -> Ok t
  | exception Unix.Unix_error (e, _, _) ->
      Error
        (Printf.sprintf "cannot connect: %s: %s" (address_label address)
           (Unix.error_message e))
  | exception Failure message -> Error message

let wire_version t = match t.framing with Wire.V1 -> 1 | Wire.V2 -> 2
let bytes_sent t = t.sent
let bytes_received t = Wire.reader_bytes t.input
let is_broken t = t.broken

let send t frame =
  let data = Wire.to_wire t.framing frame in
  t.sent <- t.sent + String.length data;
  output_string t.output data;
  flush t.output

let send_raw t line =
  let line =
    if line = "" || line.[String.length line - 1] <> '\n' then line ^ "\n"
    else line
  in
  t.sent <- t.sent + String.length line;
  output_string t.output line;
  flush t.output

let set_deadline t = function
  | None -> t.deadline := None
  | Some ms ->
      t.deadline := Some (Unix.gettimeofday () +. (float_of_int ms /. 1000.))

let read_reply ?deadline_ms t =
  set_deadline t deadline_ms;
  Fun.protect
    ~finally:(fun () -> t.deadline := None)
    (fun () ->
      match Wire.read ~framing:t.framing t.input with
      | Wire.Frame frame -> Ok frame
      | Wire.Malformed message -> Error ("malformed reply: " ^ message)
      | Wire.Eof ->
          t.broken <- true;
          Error "connection closed by server"
      | exception Timeout ->
          (* A partial frame may sit in the buffer; the connection can
             no longer be trusted for framing. *)
          t.broken <- true;
          Error
            (Printf.sprintf "deadline exceeded after %d ms"
               (Option.value deadline_ms ~default:0))
      | exception Unix.Unix_error (e, _, _) ->
          t.broken <- true;
          Error ("connection lost: " ^ Unix.error_message e))

let call ?deadline_ms t frame =
  match send t frame with
  | () -> read_reply ?deadline_ms t
  | exception Sys_error message ->
      t.broken <- true;
      Error ("connection lost: " ^ message)
  | exception Unix.Unix_error (e, _, _) ->
      t.broken <- true;
      Error ("connection lost: " ^ Unix.error_message e)

let negotiate t ~wire =
  let want =
    match wire with
    | 1 -> Ok Wire.version
    | 2 -> Ok Wire.version2
    | v -> Error (Printf.sprintf "unsupported wire version %d (want 1 or 2)" v)
  in
  match want with
  | Error _ as e -> e
  | Ok wanted -> (
      match call t (Wire.Hello { client_version = wanted }) with
      | Ok (Wire.Hello_ok { server_version; _ }) when server_version = wanted ->
          (* The server switched right after its hello_ok; follow it. *)
          if wire = 2 then t.framing <- Wire.V2;
          Ok ()
      | Ok (Wire.Hello_ok { server_version; _ }) ->
          Error
            (Printf.sprintf "server negotiated %S instead of %S" server_version
               wanted)
      | Ok (Wire.Error_frame { message }) -> Error message
      | Ok frame ->
          Error ("unexpected hello reply: " ^ Wire.encode frame)
      | Error _ as e -> e)

let close t =
  try
    flush t.output;
    Unix.close t.fd
  with Sys_error _ | Unix.Unix_error _ -> ()

(* ---- retry policy ---- *)

(* Retries are safe for requests whose replay cannot change server
   state: [hello], [stats], [metrics]. Everything session-mutating
   ([open]/[feed]/[step]/[snapshot]/[close]) is retried only when the
   connection attempt itself failed — before any request bytes hit the
   socket — so a round is never applied twice. *)
let idempotent = function
  | Wire.Hello _ | Wire.Stats _ | Wire.Metrics _ -> true
  | Wire.Open _ | Wire.Feed _ | Wire.Step _ | Wire.Snapshot _ | Wire.Close _
    ->
      false
  | _ -> false

type retry = {
  r_attempts : int; (* total attempts, >= 1 *)
  r_base_ms : int;
  r_max_ms : int;
  r_jitter : int -> int; (* bound -> jitter in [0, bound) *)
  r_sleep_ms : int -> unit;
}

let default_sleep_ms ms = if ms > 0 then Unix.sleepf (float_of_int ms /. 1000.)

let seeded_jitter seed =
  let state = Random.State.make [| seed |] in
  fun bound -> if bound <= 0 then 0 else Random.State.int state bound

let retry_policy ?(attempts = 3) ?(base_ms = 50) ?(max_ms = 2_000) ?seed
    ?(sleep_ms = default_sleep_ms) () =
  if attempts < 1 then invalid_arg "Client.retry_policy: attempts < 1";
  let jitter =
    match seed with
    | Some seed -> seeded_jitter seed
    | None -> fun bound -> if bound <= 0 then 0 else Random.int bound
  in
  {
    r_attempts = attempts;
    r_base_ms = max base_ms 1;
    r_max_ms = max max_ms base_ms;
    r_jitter = jitter;
    r_sleep_ms = sleep_ms;
  }

let no_retry = { (retry_policy ~attempts:1 ()) with r_sleep_ms = ignore }

(* Exponential backoff with jitter: after failed attempt [n] (1-based),
   sleep capped-double(base, n) plus up to half that again. Advances the
   jitter stream, so sequences are reproducible from a seed. *)
let backoff_ms retry ~attempt =
  let doubled = retry.r_base_ms * (1 lsl min (max (attempt - 1) 0) 16) in
  let capped = min doubled retry.r_max_ms in
  capped + retry.r_jitter ((capped / 2) + 1)

(* ---- resilient endpoint ----

   A reconnecting wrapper around one server address: per-call deadline,
   bounded retry under the policy above, lazy (re)connection with the
   negotiated framing. *)

module Endpoint = struct
  type conn = t

  type nonrec t = {
    address : Server.address;
    wire : int;
    timeout_ms : int option;
    retry : retry;
    mutable conn : conn option;
    (* Wire bytes of connections already dropped: the endpoint's
       totals must accumulate across reconnects, not reset with each
       new connection. *)
    mutable sent_closed : int;
    mutable received_closed : int;
  }

  let create ?timeout_ms ?(retry = no_retry) ?(wire = 1) address =
    { address; wire; timeout_ms; retry; conn = None;
      sent_closed = 0; received_closed = 0 }

  let drop t =
    match t.conn with
    | Some c ->
        t.sent_closed <- t.sent_closed + bytes_sent c;
        t.received_closed <- t.received_closed + bytes_received c;
        close c;
        t.conn <- None
    | None -> ()

  let bytes_sent t =
    t.sent_closed
    + match t.conn with Some c -> bytes_sent c | None -> 0

  let bytes_received t =
    t.received_closed
    + match t.conn with Some c -> bytes_received c | None -> 0

  let connection t =
    match t.conn with
    | Some c when not c.broken -> Ok c
    | _ -> (
        drop t;
        match try_connect ?timeout_ms:t.timeout_ms t.address with
        | Error _ as e -> e
        | Ok c -> (
            if t.wire = 1 then begin
              t.conn <- Some c;
              Ok c
            end
            else
              match negotiate c ~wire:t.wire with
              | Ok () ->
                  t.conn <- Some c;
                  Ok c
              | Error message ->
                  close c;
                  Error message))

  let call t frame =
    let retry_after_send = idempotent frame in
    let rec go attempt =
      let retry_or_fail error =
        if attempt >= t.retry.r_attempts then Error error
        else begin
          t.retry.r_sleep_ms (backoff_ms t.retry ~attempt);
          go (attempt + 1)
        end
      in
      match connection t with
      (* No request bytes were written: safe to retry any frame. *)
      | Error message -> retry_or_fail message
      | Ok c -> (
          match call ?deadline_ms:t.timeout_ms c frame with
          | Ok reply -> Ok reply
          | Error message ->
              drop t;
              if retry_after_send then retry_or_fail message
              else
                Error (message ^ " (not retried: request may have applied)"))
    in
    go 1

  let close = drop
end
