type t = {
  fd : Unix.file_descr;
  input : Wire.reader;
  output : out_channel;
  mutable framing : Wire.framing;
  mutable sent : int;
}

let connect_fd fd =
  {
    fd;
    input = Wire.reader (Unix.in_channel_of_descr fd);
    output = Unix.out_channel_of_descr fd;
    framing = Wire.V1;
    sent = 0;
  }

let connect = function
  | Server.Unix_socket path ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX path);
      connect_fd fd
  | Server.Tcp (host, port) -> (
      match Server.resolve_host host with
      | Error message -> failwith ("cannot connect: " ^ message)
      | Ok addr ->
          let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
          Unix.connect fd (Unix.ADDR_INET (addr, port));
          connect_fd fd)

let wire_version t = match t.framing with Wire.V1 -> 1 | Wire.V2 -> 2
let bytes_sent t = t.sent
let bytes_received t = Wire.reader_bytes t.input

let send t frame =
  let data = Wire.to_wire t.framing frame in
  t.sent <- t.sent + String.length data;
  output_string t.output data;
  flush t.output

let send_raw t line =
  let line =
    if line = "" || line.[String.length line - 1] <> '\n' then line ^ "\n"
    else line
  in
  t.sent <- t.sent + String.length line;
  output_string t.output line;
  flush t.output

let read_reply t =
  match Wire.read ~framing:t.framing t.input with
  | Wire.Frame frame -> Ok frame
  | Wire.Malformed message -> Error ("malformed reply: " ^ message)
  | Wire.Eof -> Error "connection closed by server"

let call t frame =
  send t frame;
  read_reply t

let negotiate t ~wire =
  let want =
    match wire with
    | 1 -> Ok Wire.version
    | 2 -> Ok Wire.version2
    | v -> Error (Printf.sprintf "unsupported wire version %d (want 1 or 2)" v)
  in
  match want with
  | Error _ as e -> e
  | Ok wanted -> (
      match call t (Wire.Hello { client_version = wanted }) with
      | Ok (Wire.Hello_ok { server_version; _ }) when server_version = wanted ->
          (* The server switched right after its hello_ok; follow it. *)
          if wire = 2 then t.framing <- Wire.V2;
          Ok ()
      | Ok (Wire.Hello_ok { server_version; _ }) ->
          Error
            (Printf.sprintf "server negotiated %S instead of %S" server_version
               wanted)
      | Ok (Wire.Error_frame { message }) -> Error message
      | Ok frame ->
          Error ("unexpected hello reply: " ^ Wire.encode frame)
      | Error _ as e -> e)

let close t =
  try
    flush t.output;
    Unix.close t.fd
  with Sys_error _ | Unix.Unix_error _ -> ()
