type t = {
  fd : Unix.file_descr;
  input : in_channel;
  output : out_channel;
}

let connect_fd fd =
  { fd; input = Unix.in_channel_of_descr fd; output = Unix.out_channel_of_descr fd }

let connect = function
  | Server.Unix_socket path ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX path);
      connect_fd fd
  | Server.Tcp (host, port) ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      let addr =
        try Unix.inet_addr_of_string host
        with Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
      in
      Unix.connect fd (Unix.ADDR_INET (addr, port));
      connect_fd fd

let send t frame = Wire.write t.output frame

let send_raw t line =
  output_string t.output line;
  if line = "" || line.[String.length line - 1] <> '\n' then
    output_char t.output '\n';
  flush t.output

let read_reply t =
  match Wire.read t.input with
  | Wire.Frame frame -> Ok frame
  | Wire.Malformed message -> Error ("malformed reply: " ^ message)
  | Wire.Eof -> Error "connection closed by server"

let call t frame =
  send t frame;
  read_reply t

let close t = try flush t.output; Unix.close t.fd with Sys_error _ | Unix.Unix_error _ -> ()
