(** Minimal blocking [rrs-wire/1] client: one connection, synchronous
    request/reply. Used by [rrs client], the E18 load harness and the
    protocol tests. *)

type t

val connect : Server.address -> t

(** Wrap an already-connected socket. *)
val connect_fd : Unix.file_descr -> t

val send : t -> Wire.frame -> unit

(** Write a raw (pre-framed or deliberately malformed) line. A missing
    trailing newline is added so the server stays line-synced. *)
val send_raw : t -> string -> unit

val read_reply : t -> (Wire.frame, string) result

(** [send] + [read_reply]. *)
val call : t -> Wire.frame -> (Wire.frame, string) result

val close : t -> unit
