(** Blocking wire client: one connection, synchronous request/reply.
    Starts in [rrs-wire/1]; {!negotiate} can upgrade the connection to
    the /2 binary framing. Used by [rrs client], [rrs route]'s backend
    legs, the E18/E21 load harnesses and the protocol tests.

    Resilience: {!connect} takes an optional connect budget, every
    {!call} takes an optional per-call deadline (poll-based — the
    client never blocks past it), and {!Endpoint} layers bounded
    retry with jittered exponential backoff on top, restricted to
    frames whose replay is safe (see {!idempotent}). *)

type t

exception Timeout
(** Raised internally when a per-call deadline expires; surfaced by
    {!call}/{!read_reply} as a clean [Error _]. *)

(** @raise Failure on an unresolvable TCP host (clean message naming
    the host).
    @raise Unix.Unix_error on connection failure; [timeout_ms] bounds
    the connect itself (non-blocking connect + poll). *)
val connect : ?timeout_ms:int -> Server.address -> t

val try_connect : ?timeout_ms:int -> Server.address -> (t, string) result
(** Like {!connect} but never raises: all failures become a one-line
    ["cannot connect: ..."] message naming the address. *)

(** Wrap an already-connected socket. *)
val connect_fd : Unix.file_descr -> t

(** [negotiate t ~wire] performs the [hello] exchange for wire version
    [1] or [2]; on a successful /2 negotiation the connection switches
    to the binary framing. *)
val negotiate : t -> wire:int -> (unit, string) result

(** The wire version currently in effect (1 until a /2 negotiation
    succeeds). *)
val wire_version : t -> int

val bytes_sent : t -> int
(** Wire bytes written so far (frames and raw lines). *)

val bytes_received : t -> int
(** Wire bytes pulled from the server so far. *)

val is_broken : t -> bool
(** True once a deadline, EOF or I/O error left the connection's
    framing state indeterminate; callers should reconnect. *)

val send : t -> Wire.frame -> unit

(** Write a raw (pre-framed or deliberately malformed) line. A missing
    trailing newline is added so the server stays synced under either
    framing. *)
val send_raw : t -> string -> unit

val read_reply : ?deadline_ms:int -> t -> (Wire.frame, string) result
(** Read one reply. With [deadline_ms] the read is bounded: expiry
    yields [Error "deadline exceeded ..."] and marks the connection
    {!is_broken}. *)

(** [send] + [read_reply]. Never raises on I/O failure: lost
    connections surface as [Error _] and mark the client broken. *)
val call : ?deadline_ms:int -> t -> Wire.frame -> (Wire.frame, string) result

val close : t -> unit

(** {1 Retry policy} *)

val idempotent : Wire.frame -> bool
(** True for requests whose replay cannot change server state
    ([hello]/[stats]/[metrics]). [feed]/[step] and the other mutating
    frames must only be retried when the connection attempt itself
    failed, before any request bytes were written. *)

type retry
(** Bounded retry with jittered exponential backoff. *)

val retry_policy :
  ?attempts:int ->
  ?base_ms:int ->
  ?max_ms:int ->
  ?seed:int ->
  ?sleep_ms:(int -> unit) ->
  unit ->
  retry
(** [attempts] total tries (default 3, min 1); backoff after failed
    attempt [n] is [min (base_ms * 2^(n-1)) max_ms] plus jitter up to
    half that. [seed] makes the jitter stream deterministic; [sleep_ms]
    lets tests observe sleeps instead of waiting them out. *)

val no_retry : retry
(** Single attempt, no sleeping. *)

val backoff_ms : retry -> attempt:int -> int
(** The next backoff for failed attempt [attempt] (1-based). Advances
    the policy's jitter stream. *)

(** {1 Resilient endpoint}

    A reconnecting wrapper around one server address: lazy
    (re)connection with the configured wire version, a per-call
    deadline, and bounded retry under a {!retry} policy. *)
module Endpoint : sig
  type conn = t
  type t

  val create :
    ?timeout_ms:int -> ?retry:retry -> ?wire:int -> Server.address -> t

  val connection : t -> (conn, string) result
  (** The live connection, (re)connecting and negotiating as needed. *)

  val call : t -> Wire.frame -> (Wire.frame, string) result
  (** Call with deadline and retry. Connect failures are retried for
      every frame (no bytes were written); post-send failures are
      retried only for {!idempotent} frames, so rounds are never
      double-applied. *)

  val drop : t -> unit
  (** Close the cached connection (a fresh one is made on next call). *)

  val bytes_sent : t -> int
  (** Wire bytes written over the endpoint's whole lifetime — closed
      connections plus the live one — so the total survives
      reconnects. *)

  val bytes_received : t -> int
  (** Wire bytes read, accumulated the same way. *)

  val close : t -> unit
end
