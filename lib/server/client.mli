(** Minimal blocking wire client: one connection, synchronous
    request/reply. Starts in [rrs-wire/1]; {!negotiate} can upgrade the
    connection to the /2 binary framing. Used by [rrs client], the E18
    load harness and the protocol tests. *)

type t

(** @raise Failure on an unresolvable TCP host (clean message naming
    the host). *)
val connect : Server.address -> t

(** Wrap an already-connected socket. *)
val connect_fd : Unix.file_descr -> t

(** [negotiate t ~wire] performs the [hello] exchange for wire version
    [1] or [2]; on a successful /2 negotiation the connection switches
    to the binary framing. *)
val negotiate : t -> wire:int -> (unit, string) result

(** The wire version currently in effect (1 until a /2 negotiation
    succeeds). *)
val wire_version : t -> int

val bytes_sent : t -> int
(** Wire bytes written so far (frames and raw lines). *)

val bytes_received : t -> int
(** Wire bytes pulled from the server so far. *)

val send : t -> Wire.frame -> unit

(** Write a raw (pre-framed or deliberately malformed) line. A missing
    trailing newline is added so the server stays synced under either
    framing. *)
val send_raw : t -> string -> unit

val read_reply : t -> (Wire.frame, string) result

(** [send] + [read_reply]. *)
val call : t -> Wire.frame -> (Wire.frame, string) result

val close : t -> unit
