(* The poll(2)-readiness connection core shared by [Server] and
   [Router].

   One event domain owns every connection fd in non-blocking mode: it
   accepts, reads, feeds bytes into each connection's [Wire.Stream],
   and hands COMPLETE frames (never fds) to the worker-domain pool
   through a dispatch queue. Workers run the protocol handler and queue
   replies onto per-connection outbound buffers, which the event domain
   drains on writability (with a direct-write fast path when the buffer
   is empty, so an idle socket costs no extra wakeup).

   Discipline that keeps this simple and correct:

   - One global mutex guards all connection state and the dispatch
     queue. The loop releases it only while parked in poll; workers
     hold it only for queue pops and buffer pushes. A self-pipe wakes
     the parked loop when a worker finishes or queues bytes.
   - At most ONE parsed-but-unhandled frame per connection. This
     serializes request handling per connection (replies keep their
     order), and means the loop never parses ahead of a hello that is
     about to switch the connection's framing.
   - Backpressure is "stop polling readable": a connection stops being
     polled for POLLIN while its inbound buffer is full (>= max_in) or
     its outbound buffer is backed up (>= max_out, a slow reader
     pipelining requests), and parsing pauses with it. The kernel
     socket buffer then pushes back on the peer.
   - Only the event domain opens, closes or polls fds. Workers signal
     intent (dead/done) and the loop acts on it, so an fd number can
     never be closed and reused while another domain might touch it. *)

module Clock = Rrs_obs.Clock

type 'a conn = {
  fd : Unix.file_descr;
  stream : Wire.Stream.t;
  data : 'a;
  owner : 'a t;
  mutable busy : bool; (* a frame of ours is queued or in a handler *)
  mutable read_eof : bool; (* read(2) saw 0 / peer hung up *)
  mutable stream_done : bool; (* stream emitted Eof: all input handled *)
  mutable dead : bool; (* I/O error; close as soon as not busy *)
  mutable closed : bool;
  out : string Queue.t; (* pending outbound chunks *)
  mutable out_off : int; (* written prefix of the head chunk *)
  mutable out_len : int; (* total unwritten outbound bytes *)
  mutable bytes_out : int; (* total bytes accepted for write *)
  mutable enq_ns : int64; (* when the pending frame was dispatched *)
}

and 'a t = {
  mutex : Mutex.t;
  nonempty : Condition.t;
  dq : ('a conn * Wire.read_result) Queue.t;
  mutable dq_closed : bool;
  conns : (Unix.file_descr, 'a conn) Hashtbl.t;
  mutable listen_fd : Unix.file_descr option;
  stopping : bool Atomic.t;
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  mutable woken : bool;
  on_open : unit -> 'a;
  on_close : 'a -> unit;
  handler : worker:int -> 'a conn -> Wire.read_result -> unit;
  max_in : int;
  max_out : int;
  mutable accept_paused : bool; (* EMFILE: skip the listener one cycle *)
  mutable peak : int;
  mutable opened : int;
  (* poll scratch, reused every iteration: no allocation per wait *)
  mutable p_fds : Unix.file_descr array;
  mutable p_events : int array;
  mutable p_revents : int array;
  scratch : Bytes.t;
}

let default_max_in = 64 * 1024
let default_max_out = 8 * 1024 * 1024

let create ?(max_in = default_max_in) ?(max_out = default_max_out) ~listen_fd
    ~stopping ~on_open ?(on_close = fun _ -> ()) ~handler () =
  let wake_r, wake_w = Unix.pipe ~cloexec:true () in
  Unix.set_nonblock wake_r;
  Unix.set_nonblock wake_w;
  Unix.set_nonblock listen_fd;
  {
    mutex = Mutex.create ();
    nonempty = Condition.create ();
    dq = Queue.create ();
    dq_closed = false;
    conns = Hashtbl.create 64;
    listen_fd = Some listen_fd;
    stopping;
    wake_r;
    wake_w;
    woken = false;
    on_open;
    on_close;
    handler;
    max_in;
    max_out;
    accept_paused = false;
    peak = 0;
    opened = 0;
    p_fds = Array.make 64 Unix.stdin;
    p_events = Array.make 64 0;
    p_revents = Array.make 64 0;
    scratch = Bytes.create (64 * 1024);
  }

(* ---- wakeup (mutex held) ---- *)

let wake t =
  if not t.woken then begin
    t.woken <- true;
    try ignore (Unix.write_substring t.wake_w "!" 0 1)
    with Unix.Unix_error _ -> ()
  end

let drain_wake t =
  t.woken <- false;
  let continue = ref true in
  while !continue do
    match Unix.read t.wake_r t.scratch 0 64 with
    | 0 -> continue := false
    | _ -> ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        continue := false
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error _ -> continue := false
  done

(* ---- outbound writes (mutex held; fd is non-blocking) ---- *)

(* Write as much of [s] from [off] as the socket accepts; returns the
   new offset. Fatal errors mark the connection dead (EPIPE and resets
   are the peer's loss, not ours). *)
let rec write_some c s off =
  if off >= String.length s || c.dead then off
  else
    match Unix.write_substring c.fd s off (String.length s - off) with
    | k -> write_some c s (off + k)
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> off
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_some c s off
    | exception Unix.Unix_error _ ->
        c.dead <- true;
        off

let flush_out c =
  let continue = ref true in
  while !continue && c.out_len > 0 && not c.dead do
    let head = Queue.peek c.out in
    let off = write_some c head c.out_off in
    c.out_len <- c.out_len - (off - c.out_off);
    c.out_off <- off;
    if off >= String.length head then begin
      ignore (Queue.pop c.out);
      c.out_off <- 0
    end
    else continue := false (* EAGAIN: wait for POLLOUT *)
  done

(* ---- worker-facing API ---- *)

let data c = c.data
let fd c = c.fd
let framing c = Wire.Stream.framing c.stream

let set_framing c framing =
  Mutex.lock c.owner.mutex;
  Wire.Stream.set_framing c.stream framing;
  Mutex.unlock c.owner.mutex

let bytes_in c = Wire.Stream.fed c.stream

let bytes_out c =
  Mutex.lock c.owner.mutex;
  let n = c.bytes_out in
  Mutex.unlock c.owner.mutex;
  n

let queued_ns c = c.enq_ns

(* Queue [data] for the peer. The fast path writes straight to the
   socket when nothing is already queued — one syscall, no event-loop
   round trip — which is what keeps request/reply latency at parity
   with the old blocking write. *)
let send c data =
  let t = c.owner in
  Mutex.lock t.mutex;
  if not (c.closed || c.dead) then begin
    let len = String.length data in
    c.bytes_out <- c.bytes_out + len;
    if c.out_len = 0 then begin
      let off = write_some c data 0 in
      if c.dead then wake t
      else if off < len then begin
        Queue.push data c.out;
        c.out_off <- off;
        c.out_len <- len - off;
        wake t (* the parked loop must add POLLOUT interest *)
      end
    end
    else begin
      Queue.push data c.out;
      c.out_len <- c.out_len + len
      (* no wake: POLLOUT interest is already active for this conn *)
    end
  end;
  Mutex.unlock t.mutex

(* ---- dispatch: the worker-domain body ---- *)

let dispatch_loop t ~worker =
  let rec loop () =
    Mutex.lock t.mutex;
    while Queue.is_empty t.dq && not t.dq_closed do
      Condition.wait t.nonempty t.mutex
    done;
    if Queue.is_empty t.dq then Mutex.unlock t.mutex (* closed and drained *)
    else begin
      let c, result = Queue.pop t.dq in
      Mutex.unlock t.mutex;
      (try t.handler ~worker c result
       with e ->
         (* handlers do their own per-request error capture; anything
            that escapes costs this connection, never the worker *)
         Slog.error ~event:"handler_crashed"
           [ ("worker", Slog.int worker); ("exn", Printexc.to_string e) ];
         Mutex.lock t.mutex;
         c.dead <- true;
         Mutex.unlock t.mutex);
      Mutex.lock t.mutex;
      c.busy <- false;
      (* Wake the loop only when it has something to do for this conn:
         re-parse buffered bytes (a pipelining client's next frame is
         already here and only the loop can dispatch it) or close it
         (eof/error/drain). A request/reply client leaves nothing
         buffered, and its next request wakes poll through POLLIN —
         which stays armed across busy — so the common case costs no
         wakeup round trip at all. *)
      if
        Wire.Stream.buffered c.stream > 0
        || c.read_eof || c.stream_done || c.dead
        || Atomic.get t.stopping
      then wake t;
      Mutex.unlock t.mutex;
      loop ()
    end
  in
  loop ()

(* ---- event-domain internals (mutex held) ---- *)

(* Parse at most one frame out of the connection's buffer and dispatch
   it. Gated on busy (one in flight), outbound backpressure, and
   stopping (a stopping server finishes in-flight requests but starts
   no new ones — the old "check stopping before the next read"). *)
let try_parse t c =
  if
    (not c.busy) && (not c.stream_done) && (not c.dead) && (not c.closed)
    && c.out_len < t.max_out
    && not (Atomic.get t.stopping)
  then
    match Wire.Stream.next c.stream with
    | None -> ()
    | Some Wire.Eof -> c.stream_done <- true
    | Some result ->
        c.busy <- true;
        c.enq_ns <- Clock.now_ns ();
        Queue.push (c, result) t.dq;
        Condition.signal t.nonempty

let closeable t c =
  (not c.busy) && (not c.closed)
  && (c.dead
     || (c.stream_done && c.out_len = 0)
     || (Atomic.get t.stopping && c.out_len = 0))

let close_conn t c =
  if not c.closed then begin
    c.closed <- true;
    Hashtbl.remove t.conns c.fd;
    (try Unix.close c.fd with Unix.Unix_error _ -> ());
    try t.on_close c.data
    with e ->
      Slog.error ~event:"on_close_raised" [ ("exn", Printexc.to_string e) ]
  end

let interest_of t c =
  if c.dead || c.closed then 0
  else begin
    let i = ref 0 in
    if
      (not c.read_eof)
      && (not (Atomic.get t.stopping))
      && Wire.Stream.buffered c.stream < t.max_in
      && c.out_len < t.max_out
    then i := Poll.pollin;
    if c.out_len > 0 then i := !i lor Poll.pollout;
    !i
  end

let set_read_eof c =
  if not c.read_eof then begin
    c.read_eof <- true;
    Wire.Stream.feed_eof c.stream
  end

let read_into t c =
  match Unix.read c.fd t.scratch 0 (Bytes.length t.scratch) with
  | 0 -> set_read_eof c
  | k -> Wire.Stream.feed c.stream t.scratch 0 k
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  | exception Unix.Unix_error _ -> c.dead <- true

let add_conn t fd =
  Unix.set_nonblock fd;
  let c =
    {
      fd;
      stream = Wire.Stream.create Wire.V1;
      data = t.on_open ();
      owner = t;
      busy = false;
      read_eof = false;
      stream_done = false;
      dead = false;
      closed = false;
      out = Queue.create ();
      out_off = 0;
      out_len = 0;
      bytes_out = 0;
      enq_ns = 0L;
    }
  in
  Hashtbl.replace t.conns fd c;
  t.opened <- t.opened + 1;
  if Hashtbl.length t.conns > t.peak then t.peak <- Hashtbl.length t.conns

let accept_batch t =
  match t.listen_fd with
  | None -> ()
  | Some lfd ->
      let continue = ref true in
      while !continue do
        match Unix.accept ~cloexec:true lfd with
        | fd, _addr -> add_conn t fd
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
          ->
            continue := false
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
        | exception Unix.Unix_error ((Unix.EMFILE | Unix.ENFILE), _, _) ->
            (* out of fds: stop polling the listener for one cycle so a
               full table cannot spin the loop; closes free fds soon *)
            t.accept_paused <- true;
            continue := false
        | exception Unix.Unix_error _ -> continue := false
      done

let handle_conn_event t c re =
  if re land (Poll.pollerr lor Poll.pollnval) <> 0 then c.dead <- true
  else begin
    if re land Poll.pollout <> 0 then flush_out c;
    if re land Poll.pollin <> 0 then read_into t c
    else if re land Poll.pollhup <> 0 then
      (* hangup while we were not reading (backpressure): the peer is
         fully gone, nothing more will arrive *)
      set_read_eof c
  end

let conn_count t =
  Mutex.lock t.mutex;
  let n = Hashtbl.length t.conns in
  Mutex.unlock t.mutex;
  n

let peak_conns t =
  Mutex.lock t.mutex;
  let n = t.peak in
  Mutex.unlock t.mutex;
  n

let wake_loop t =
  Mutex.lock t.mutex;
  wake t;
  Mutex.unlock t.mutex

(* ---- the event domain body ---- *)

let grow_scratch t need =
  if Array.length t.p_fds < need then begin
    let capacity = ref (max 64 (2 * Array.length t.p_fds)) in
    while !capacity < need do
      capacity := !capacity * 2
    done;
    t.p_fds <- Array.make !capacity Unix.stdin;
    t.p_events <- Array.make !capacity 0;
    t.p_revents <- Array.make !capacity 0
  end

let run t =
  let finished = ref false in
  while not !finished do
    Mutex.lock t.mutex;
    if Atomic.get t.stopping then begin
      (* stop accepting; in-flight requests finish, replies flush, and
         every connection closes as it goes idle *)
      match t.listen_fd with
      | Some lfd ->
          (try Unix.close lfd with Unix.Unix_error _ -> ());
          t.listen_fd <- None
      | None -> ()
    end;
    (* parse / close pass *)
    let to_close = ref [] in
    Hashtbl.iter
      (fun _ c ->
        try_parse t c;
        if closeable t c then to_close := c :: !to_close)
      t.conns;
    List.iter (close_conn t) !to_close;
    if Atomic.get t.stopping && Hashtbl.length t.conns = 0 then begin
      t.dq_closed <- true;
      Condition.broadcast t.nonempty;
      Mutex.unlock t.mutex;
      finished := true
    end
    else begin
      grow_scratch t (2 + Hashtbl.length t.conns);
      let n = ref 0 in
      let add fd interest =
        t.p_fds.(!n) <- fd;
        t.p_events.(!n) <- interest;
        incr n
      in
      add t.wake_r Poll.pollin;
      (match t.listen_fd with
      | Some lfd when not t.accept_paused -> add lfd Poll.pollin
      | _ -> ());
      t.accept_paused <- false;
      Hashtbl.iter
        (fun fd c ->
          let interest = interest_of t c in
          if interest <> 0 then add fd interest)
        t.conns;
      let n = !n in
      Mutex.unlock t.mutex;
      let ready =
        (* 200ms cap: stop and EMFILE recovery never wait on a quiet
           poll set, mirroring the old accept loop's select timeout *)
        try
          Poll.poll ~fds:t.p_fds ~events:t.p_events ~revents:t.p_revents ~n
            ~timeout_ms:200
        with Unix.Unix_error (Unix.EINTR, _, _) -> 0
      in
      Mutex.lock t.mutex;
      if ready > 0 then
        for i = 0 to n - 1 do
          let re = t.p_revents.(i) in
          if re <> 0 then begin
            let fd = t.p_fds.(i) in
            if fd = t.wake_r then drain_wake t
            else if t.listen_fd = Some fd then accept_batch t
            else
              match Hashtbl.find_opt t.conns fd with
              | Some c -> handle_conn_event t c re
              | None -> ()
          end
        done;
      Mutex.unlock t.mutex
    end
  done;
  (try Unix.close t.wake_r with Unix.Unix_error _ -> ());
  try Unix.close t.wake_w with Unix.Unix_error _ -> ()
