(** The poll(2)-readiness connection core shared by [Server] and
    [Router].

    One event domain ([run]) owns every connection fd in non-blocking
    mode: it accepts from the listen socket, reads bytes into each
    connection's incremental {!Wire.Stream}, and hands complete frames
    (never fds) to worker domains ([dispatch_loop]) that run the
    protocol [handler]. Replies go out through {!send}: straight to the
    socket when nothing is queued, else via a per-connection outbound
    buffer the event domain drains on writability.

    Replaces the accept-domain + blocking-per-connection-worker core,
    whose every wait was a select(2) — a hard failure for any fd >=
    FD_SETSIZE (1024) — and whose connection concurrency was capped by
    the worker-domain count. Here concurrency is capped by the fd
    limit, and no wait anywhere uses select.

    Invariants:
    - at most one parsed-but-unhandled frame per connection, so
      per-connection handling is serialized (reply order preserved,
      hello framing switches race-free);
    - a connection stops being polled readable while its inbound buffer
      is full or its outbound buffer is backed up (slow reader), so
      backpressure lands on the peer's socket buffer;
    - only the event domain opens or closes fds. ['a] is per-connection
      handler state, built by [on_open] and released by [on_close]. *)

type 'a t
(** The loop. ['a] is the per-connection handler state. *)

type 'a conn
(** One live connection, as seen by the handler. *)

val create :
  ?max_in:int ->
  ?max_out:int ->
  listen_fd:Unix.file_descr ->
  stopping:bool Atomic.t ->
  on_open:(unit -> 'a) ->
  ?on_close:('a -> unit) ->
  handler:(worker:int -> 'a conn -> Wire.read_result -> unit) ->
  unit ->
  'a t
(** [create ~listen_fd ~stopping ~on_open ~handler ()] builds a loop
    serving [listen_fd] (made non-blocking; callers are expected to
    have set close-on-exec). The [handler] runs on worker domains and
    receives only [Frame] and [Malformed] results — never [Eof]; it
    replies with {!send} and must not close the fd. [on_open] builds
    per-connection state on accept; [on_close] releases it after the fd
    is closed. [max_in] (default 64KiB) bounds buffered inbound bytes;
    [max_out] (default 8MiB) bounds queued outbound bytes — beyond
    either, the connection stops being polled readable.

    Setting [stopping] and calling {!wake_loop} shuts down: the
    listener closes, in-flight requests finish, replies flush, every
    connection closes, then [run] and all [dispatch_loop]s return. *)

val run : 'a t -> unit
(** The event-domain body. Returns once stopping is set and every
    connection has closed. *)

val dispatch_loop : 'a t -> worker:int -> unit
(** A worker-domain body: pops complete frames and runs the handler
    until shutdown. A handler exception costs that connection (it is
    closed), never the worker. *)

val wake_loop : 'a t -> unit
(** Wake a loop parked in poll (used with [stopping] to shut down). *)

(** {1 Handler-side connection API} *)

val send : 'a conn -> string -> unit
(** Queue pre-framed bytes for the peer. Never blocks: writes what the
    socket accepts now, buffers the rest. Dropped silently if the
    connection already failed. *)

val data : 'a conn -> 'a
val fd : 'a conn -> Unix.file_descr

val framing : 'a conn -> Wire.framing

val set_framing : 'a conn -> Wire.framing -> unit
(** Switch the connection's wire framing from the next frame on (the
    hello negotiation). Safe because no further frame is parsed while
    the hello is in the handler. *)

val bytes_in : 'a conn -> int
(** Total bytes read from this connection (mirrors the old
    [Wire.reader_bytes] accounting). *)

val bytes_out : 'a conn -> int
(** Total bytes accepted for write to this connection. *)

val queued_ns : 'a conn -> int64
(** When the frame now in the handler was dispatched — the handler's
    queue-wait reference point for span accounting. *)

(** {1 Introspection} *)

val conn_count : 'a t -> int
val peak_conns : 'a t -> int
