module Probe = Rrs_obs.Probe

(* Prometheus text exposition (v0.0.4) from a probe registry. Every
   series is prefixed "rrs_". The req_latency_us_<kind> histogram family
   collapses into one labeled family, rrs_req_latency_us{type="<kind>"};
   likewise requests_<kind> counters into rrs_requests{type="<kind>"}.
   Our histogram bounds are inclusive upper bounds, which is exactly
   Prometheus [le] semantics; bucket counts are emitted cumulative with
   the closing le="+Inf" = _count. *)

let prefix = "rrs_"

let escape_label value =
  let buf = Buffer.create (String.length value + 4) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    value;
  Buffer.contents buf

(* "req_latency_us_feed" -> Some ("req_latency_us", "feed") when [kind]
   is a known request kind. *)
let split_family name ~family =
  let p = family ^ "_" in
  if String.length name > String.length p
     && String.sub name 0 (String.length p) = p
  then begin
    let kind = String.sub name (String.length p)
                 (String.length name - String.length p) in
    if Array.exists (( = ) kind) Metrics.kinds then Some kind else None
  end
  else None

let add_type buf name kind =
  Buffer.add_string buf (Printf.sprintf "# TYPE %s%s %s\n" prefix name kind)

let add_histogram buf ~name ~labels (snap : Probe.hist_snapshot) =
  let label_and more =
    match (labels, more) with
    | "", "" -> ""
    | "", more -> "{" ^ more ^ "}"
    | labels, "" -> "{" ^ labels ^ "}"
    | labels, more -> "{" ^ labels ^ "," ^ more ^ "}"
  in
  let cumulative = ref 0 in
  Array.iter
    (fun (bound, count) ->
      cumulative := !cumulative + count;
      Buffer.add_string buf
        (Printf.sprintf "%s%s_bucket%s %d\n" prefix name
           (label_and (Printf.sprintf "le=\"%d\"" bound))
           !cumulative))
    snap.Probe.buckets;
  Buffer.add_string buf
    (Printf.sprintf "%s%s_bucket%s %d\n" prefix name
       (label_and "le=\"+Inf\"") snap.Probe.count);
  Buffer.add_string buf
    (Printf.sprintf "%s%s_sum%s %d\n" prefix name (label_and "")
       snap.Probe.sum);
  Buffer.add_string buf
    (Printf.sprintf "%s%s_count%s %d\n" prefix name (label_and "")
       snap.Probe.count)

let render registry =
  let buf = Buffer.create 4096 in
  (* Counters: the per-kind requests_<kind> series render as one labeled
     family; everything else renders under its own name. *)
  let labeled_requests = ref [] in
  List.iter
    (fun (name, value) ->
      match split_family name ~family:"requests" with
      | Some kind -> labeled_requests := (kind, value) :: !labeled_requests
      | None ->
          add_type buf name "counter";
          Buffer.add_string buf (Printf.sprintf "%s%s %d\n" prefix name value))
    (Probe.counters registry);
  (match List.rev !labeled_requests with
  | [] -> ()
  | kinds ->
      add_type buf "requests" "counter";
      List.iter
        (fun (kind, value) ->
          Buffer.add_string buf
            (Printf.sprintf "%srequests{type=\"%s\"} %d\n" prefix
               (escape_label kind) value))
        kinds);
  List.iter
    (fun (name, value, max_value) ->
      add_type buf name "gauge";
      Buffer.add_string buf (Printf.sprintf "%s%s %d\n" prefix name value);
      add_type buf (name ^ "_max") "gauge";
      Buffer.add_string buf
        (Printf.sprintf "%s%s_max %d\n" prefix name max_value))
    (Probe.gauges registry);
  let labeled_latency = ref [] in
  List.iter
    (fun snap ->
      match split_family snap.Probe.hist_name ~family:"req_latency_us" with
      | Some kind -> labeled_latency := (kind, snap) :: !labeled_latency
      | None ->
          add_type buf snap.Probe.hist_name "histogram";
          add_histogram buf ~name:snap.Probe.hist_name ~labels:"" snap)
    (Probe.histograms registry);
  (match List.rev !labeled_latency with
  | [] -> ()
  | kinds ->
      add_type buf "req_latency_us" "histogram";
      List.iter
        (fun (kind, snap) ->
          add_histogram buf ~name:"req_latency_us"
            ~labels:(Printf.sprintf "type=\"%s\"" (escape_label kind))
            snap)
        kinds);
  Buffer.contents buf

let http_response body =
  Printf.sprintf
    "HTTP/1.1 200 OK\r\n\
     Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
     Content-Length: %d\r\n\
     Connection: close\r\n\
     \r\n\
     %s"
    (String.length body) body
