(** Prometheus/OpenMetrics text exposition (format v0.0.4) of a probe
    registry, served by [rrs serve --metrics].

    Every series carries the ["rrs_"] prefix. Counters and gauges render
    one sample each (gauges additionally as [<name>_max]); histograms
    render cumulative [..._bucket{le="<bound>"}] samples — the probe
    layer's inclusive upper bounds are exactly Prometheus [le]
    semantics — closed by [le="+Inf"], plus [_sum] and [_count]. The
    per-kind [req_latency_us_<kind>] histograms and [requests_<kind>]
    counters collapse into labeled families
    [rrs_req_latency_us{type="<kind>"}] / [rrs_requests{type="<kind>"}]. *)

val render : Rrs_obs.Probe.registry -> string

(** A complete [HTTP/1.1 200] response (headers + body) carrying
    [body] as [text/plain; version=0.0.4]. *)
val http_response : string -> string
