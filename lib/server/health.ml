(* Per-shard health state machine.

   A shard starts [Up]. Consecutive failures (connect errors, call
   deadlines) trip it to [Down] once they reach [fail_threshold]; a
   single success resets the streak and (re)admits the shard. While
   down, probes are due on an exponential backoff schedule
   ([probe_interval_ms] doubling up to [probe_max_ms]) so a dead shard
   is not hammered but a restarted one is noticed quickly.

   All timing flows through explicit [now_ms] arguments, so tests drive
   the machine with a synthetic clock. The struct is mutex-protected:
   router workers report outcomes from many domains while the prober
   domain polls [probe_due]. *)

type state = Up | Down

type t = {
  mutex : Mutex.t;
  fail_threshold : int;
  probe_interval_ms : int;
  probe_max_ms : int;
  mutable state : state;
  mutable consecutive_failures : int;
  mutable next_probe_ms : int; (* absolute, valid while Down *)
  mutable probe_backoff_ms : int; (* current gap between probes *)
  mutable last_error : string;
  mutable failures_total : int;
  mutable trips_total : int;
  mutable readmits_total : int;
}

let create ?(fail_threshold = 3) ?(probe_interval_ms = 200)
    ?(probe_max_ms = 5_000) () =
  if fail_threshold < 1 then invalid_arg "Health.create: fail_threshold < 1";
  if probe_interval_ms < 1 then
    invalid_arg "Health.create: probe_interval_ms < 1";
  {
    mutex = Mutex.create ();
    fail_threshold;
    probe_interval_ms;
    probe_max_ms = max probe_max_ms probe_interval_ms;
    state = Up;
    consecutive_failures = 0;
    next_probe_ms = 0;
    probe_backoff_ms = probe_interval_ms;
    last_error = "";
    failures_total = 0;
    trips_total = 0;
    readmits_total = 0;
  }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let state t = locked t (fun () -> t.state)
let is_up t = state t = Up
let last_error t = locked t (fun () -> t.last_error)

let counters t =
  locked t (fun () -> (t.failures_total, t.trips_total, t.readmits_total))

let ok t =
  locked t (fun () ->
      t.consecutive_failures <- 0;
      if t.state = Down then begin
        t.state <- Up;
        t.readmits_total <- t.readmits_total + 1;
        t.probe_backoff_ms <- t.probe_interval_ms
      end)

let fail t ~now_ms ~reason =
  locked t (fun () ->
      t.failures_total <- t.failures_total + 1;
      t.last_error <- reason;
      t.consecutive_failures <- t.consecutive_failures + 1;
      if t.state = Up && t.consecutive_failures >= t.fail_threshold then begin
        t.state <- Down;
        t.trips_total <- t.trips_total + 1;
        t.probe_backoff_ms <- t.probe_interval_ms;
        t.next_probe_ms <- now_ms + t.probe_interval_ms
      end)

(* While down, a failure reported from a probe pushes the next probe
   out on the backoff schedule. [fail] alone leaves [next_probe_ms]
   untouched so concurrent request failures cannot starve probing. *)
let probe_failed t ~now_ms ~reason =
  locked t (fun () ->
      t.failures_total <- t.failures_total + 1;
      t.last_error <- reason;
      if t.state = Down then begin
        t.probe_backoff_ms <- min (t.probe_backoff_ms * 2) t.probe_max_ms;
        t.next_probe_ms <- now_ms + t.probe_backoff_ms
      end)

let probe_due t ~now_ms =
  locked t (fun () -> t.state = Down && now_ms >= t.next_probe_ms)
