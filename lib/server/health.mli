(** Per-shard health tracking for the router.

    A shard starts [Up]; [fail_threshold] consecutive failures trip it
    to [Down]; one success ([ok]) re-admits it. While down, [probe_due]
    follows an exponential backoff schedule ([probe_interval_ms]
    doubling to [probe_max_ms]) reset on every re-admit.

    Thread-safe; all timing is via explicit [now_ms] arguments so tests
    can drive a synthetic clock. *)

type state = Up | Down
type t

val create :
  ?fail_threshold:int ->
  ?probe_interval_ms:int ->
  ?probe_max_ms:int ->
  unit ->
  t

val state : t -> state
val is_up : t -> bool

val ok : t -> unit
(** Record a success: resets the failure streak and re-admits a [Down]
    shard. *)

val fail : t -> now_ms:int -> reason:string -> unit
(** Record a request/connect failure. Trips [Up] -> [Down] at
    [fail_threshold] consecutive failures and schedules the first
    probe. *)

val probe_failed : t -> now_ms:int -> reason:string -> unit
(** Record a failed health probe: doubles the probe backoff (capped)
    and schedules the next probe. *)

val probe_due : t -> now_ms:int -> bool
(** True when the shard is [Down] and its next probe time has come. *)

val last_error : t -> string

val counters : t -> int * int * int
(** [(failures_total, trips_total, readmits_total)]. *)
