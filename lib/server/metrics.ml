module Probe = Rrs_obs.Probe
module Clock = Rrs_obs.Clock
module Json = Rrs_sim.Event_sink.Json

(* Request kinds, indexed by [kind_index]. [error] is the bucket for
   frames that never resolved to a request (malformed input, replies
   sent as requests). *)
let kinds =
  [| "hello"; "open"; "feed"; "step"; "stats"; "snapshot"; "close"; "metrics";
     "error" |]

let error_kind = Array.length kinds - 1

let step_kind = 3

let kind_index = function
  | Wire.Hello _ -> 0
  | Wire.Open _ -> 1
  | Wire.Feed _ -> 2
  | Wire.Step _ -> 3
  | Wire.Stats _ -> 4
  | Wire.Snapshot _ -> 5
  | Wire.Close _ -> 6
  | Wire.Metrics _ -> 7
  | _ -> error_kind

let kind_name index = kinds.(index)

(* Power-of-two microsecond buckets up to ~1 s; slower requests land in
   the overflow bucket and report through [max]/the slow log. *)
let latency_buckets =
  [| 1; 2; 4; 8; 16; 32; 64; 128; 256; 512; 1024; 2048; 4096; 8192; 16384;
     32768; 65536; 131072; 262144; 524288; 1048576 |]

(* Frame sizes: fine-grained at the bottom (most frames are tens of
   bytes), sparse up to the 4 MiB frame cap. *)
let bytes_buckets =
  [| 0; 16; 32; 64; 128; 256; 512; 1024; 4096; 16384; 65536; 262144; 1048576;
     4194304 |]

(* One slot per worker domain: a private registry plus typed handles, so
   the hot path records without locks at the Probe one-branch cost. A
   reader folds every slot with [Probe.merge] on demand. *)
type slot = {
  registry : Probe.registry;
  requests_total : Probe.counter;
  requests_by : Probe.counter array; (* requests_<kind> *)
  errors_total : Probe.counter; (* error replies sent *)
  malformed_total : Probe.counter; (* frames that failed to decode *)
  rounds_total : Probe.counter; (* rounds executed by step frames *)
  shed_jobs_total : Probe.counter; (* jobs refused by admission control *)
  slow_total : Probe.counter; (* spans over the slow threshold *)
  req_latency : Probe.histogram array; (* req_latency_us_<kind> *)
  lock_wait : Probe.histogram; (* lock_wait_us *)
  step_time : Probe.histogram; (* step_us *)
  bytes_in_h : Probe.histogram; (* bytes_in *)
  bytes_out_h : Probe.histogram; (* bytes_out *)
}

let make_slot () =
  let registry = Probe.create_registry () in
  {
    registry;
    requests_total = Probe.counter registry "requests_total";
    requests_by =
      Array.map (fun k -> Probe.counter registry ("requests_" ^ k)) kinds;
    errors_total = Probe.counter registry "errors_total";
    malformed_total = Probe.counter registry "malformed_total";
    rounds_total = Probe.counter registry "rounds_total";
    shed_jobs_total = Probe.counter registry "shed_jobs_total";
    slow_total = Probe.counter registry "slow_total";
    req_latency =
      Array.map
        (fun k ->
          Probe.histogram registry ~buckets:latency_buckets
            ("req_latency_us_" ^ k))
        kinds;
    lock_wait = Probe.histogram registry ~buckets:latency_buckets "lock_wait_us";
    step_time = Probe.histogram registry ~buckets:latency_buckets "step_us";
    bytes_in_h = Probe.histogram registry ~buckets:bytes_buckets "bytes_in";
    bytes_out_h = Probe.histogram registry ~buckets:bytes_buckets "bytes_out";
  }

(* One request's trace, filled in by the connection loop and recorded
   whole. Mutable and reused per connection: the hot path allocates
   nothing per frame. *)
type span = {
  mutable s_kind : int;
  mutable s_session : string;
  mutable s_wire : int;
  mutable s_read_us : int;
      (* blocking read + decode; includes client think time *)
  mutable s_lock_us : int; (* waiting on the session mutex *)
  mutable s_handle_us : int; (* handler, lock wait included *)
  mutable s_write_us : int; (* encode + write + flush *)
  mutable s_bytes_in : int;
  mutable s_bytes_out : int;
  mutable s_rounds : int; (* rounds executed, step frames *)
  mutable s_shed : int; (* jobs shed, feed frames *)
  mutable s_error : bool; (* the reply was an error frame *)
}

let span () =
  {
    s_kind = error_kind;
    s_session = "";
    s_wire = 1;
    s_read_us = 0;
    s_lock_us = 0;
    s_handle_us = 0;
    s_write_us = 0;
    s_bytes_in = 0;
    s_bytes_out = 0;
    s_rounds = 0;
    s_shed = 0;
    s_error = false;
  }

let reset_span s =
  s.s_kind <- error_kind;
  s.s_session <- "";
  s.s_read_us <- 0;
  s.s_lock_us <- 0;
  s.s_handle_us <- 0;
  s.s_write_us <- 0;
  s.s_bytes_in <- 0;
  s.s_bytes_out <- 0;
  s.s_rounds <- 0;
  s.s_shed <- 0;
  s.s_error <- false

(* Request latency as the client could observe it server-side: handler
   (lock wait included) + reply write. The blocking read is excluded —
   it is dominated by the peer's think time — but kept in the span for
   the slow log. *)
let span_latency_us s = s.s_handle_us + s.s_write_us

type slow_entry = {
  e_at_us : int; (* µs after server start the request completed *)
  e_kind : string;
  e_session : string;
  e_wire : int;
  e_latency_us : int;
  e_read_us : int;
  e_lock_us : int;
  e_handle_us : int;
  e_write_us : int;
  e_bytes_in : int;
  e_bytes_out : int;
  e_error : bool;
}

type t = {
  slots : slot array;
  started_ns : int64;
  slow_threshold_us : int;
  (* The slow log is the one shared structure, and its mutex is taken
     only for requests over the threshold — the per-frame hot path
     stays lock-free. *)
  slow_mutex : Mutex.t;
  slow : slow_entry option array; (* ring, [slow_pushed mod capacity] *)
  mutable slow_pushed : int;
}

let default_slow_threshold_us = 10_000
let default_slow_capacity = 64

let create ?(workers = 1) ?(slow_threshold_us = 0) ?(slow_capacity = 0) () =
  let workers = max 1 workers in
  let slow_threshold_us =
    if slow_threshold_us > 0 then slow_threshold_us
    else default_slow_threshold_us
  in
  let slow_capacity =
    if slow_capacity > 0 then slow_capacity else default_slow_capacity
  in
  {
    slots = Array.init workers (fun _ -> make_slot ());
    started_ns = Clock.now_ns ();
    slow_threshold_us;
    slow_mutex = Mutex.create ();
    slow = Array.make slow_capacity None;
    slow_pushed = 0;
  }

let workers t = Array.length t.slots
let slow_threshold_us t = t.slow_threshold_us

let uptime_ns t = Int64.sub (Clock.now_ns ()) t.started_ns
let uptime_s t = Int64.to_int (Int64.div (uptime_ns t) 1_000_000_000L)

let push_slow t entry =
  Mutex.lock t.slow_mutex;
  t.slow.(t.slow_pushed mod Array.length t.slow) <- Some entry;
  t.slow_pushed <- t.slow_pushed + 1;
  Mutex.unlock t.slow_mutex

let record t ~worker s =
  let slot = t.slots.(worker mod Array.length t.slots) in
  let latency = span_latency_us s in
  Probe.incr slot.requests_total;
  Probe.incr slot.requests_by.(s.s_kind);
  if s.s_error then Probe.incr slot.errors_total;
  Probe.observe slot.req_latency.(s.s_kind) latency;
  Probe.observe slot.lock_wait s.s_lock_us;
  if s.s_kind = step_kind then Probe.observe slot.step_time s.s_handle_us;
  Probe.observe slot.bytes_in_h s.s_bytes_in;
  Probe.observe slot.bytes_out_h s.s_bytes_out;
  if s.s_rounds > 0 then Probe.add slot.rounds_total s.s_rounds;
  if s.s_shed > 0 then Probe.add slot.shed_jobs_total s.s_shed;
  if latency >= t.slow_threshold_us then begin
    Probe.incr slot.slow_total;
    push_slow t
      {
        e_at_us = Int64.to_int (Int64.div (uptime_ns t) 1000L);
        e_kind = kind_name s.s_kind;
        e_session = s.s_session;
        e_wire = s.s_wire;
        e_latency_us = latency;
        e_read_us = s.s_read_us;
        e_lock_us = s.s_lock_us;
        e_handle_us = s.s_handle_us;
        e_write_us = s.s_write_us;
        e_bytes_in = s.s_bytes_in;
        e_bytes_out = s.s_bytes_out;
        e_error = s.s_error;
      }
  end

let record_malformed t ~worker s =
  let slot = t.slots.(worker mod Array.length t.slots) in
  Probe.incr slot.malformed_total;
  s.s_kind <- error_kind;
  s.s_error <- true;
  record t ~worker s

(* Newest first, at most [max] entries. *)
let slow_log ?max t =
  Mutex.lock t.slow_mutex;
  let capacity = Array.length t.slow in
  let available = min t.slow_pushed capacity in
  let wanted =
    match max with None -> available | Some m -> min (Stdlib.max m 0) available
  in
  let entries =
    List.init wanted (fun i ->
        t.slow.((t.slow_pushed - 1 - i + (capacity * 2)) mod capacity))
  in
  Mutex.unlock t.slow_mutex;
  List.filter_map Fun.id entries

let slow_to_json e =
  Printf.sprintf
    "{\"at_us\":%d,\"type\":%s,\"session\":%s,\"wire\":%d,\
     \"latency_us\":%d,\"read_us\":%d,\"lock_us\":%d,\"handle_us\":%d,\
     \"write_us\":%d,\"bytes_in\":%d,\"bytes_out\":%d,\"error\":%d}"
    e.e_at_us (Json.escape e.e_kind) (Json.escape e.e_session) e.e_wire
    e.e_latency_us e.e_read_us e.e_lock_us e.e_handle_us e.e_write_us
    e.e_bytes_in e.e_bytes_out
    (if e.e_error then 1 else 0)

let registries t = Array.to_list (Array.map (fun s -> s.registry) t.slots)
let merged t = Probe.merged (registries t)

(* A registry snapshot as one flat JSON object (name -> int), the
   [metrics_ok.doc] payload — parseable by [Json.parse_fields]. Shared
   by the server's and the router's in-band metrics replies. *)
let registry_doc registry =
  let entries = Probe.snapshot registry in
  let buf = Buffer.create 4096 in
  Buffer.add_char buf '{';
  List.iteri
    (fun i (name, value) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Json.escape name);
      Buffer.add_char buf ':';
      Buffer.add_string buf (string_of_int value))
    entries;
  Buffer.add_char buf '}';
  Buffer.contents buf
