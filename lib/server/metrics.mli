(** Serving-layer metrics: per-worker probe registries, request spans
    and a bounded slow-request log.

    Each worker domain owns one {!Rrs_obs.Probe.registry} (a {e slot}),
    so the per-frame hot path records at the Probe cost — one branch
    when disabled, no locks, no allocation — and a reader folds every
    slot with {!Rrs_obs.Probe.merge} on demand ({!merged}). The only
    shared structure is the slow-request ring, whose mutex is taken
    only for requests over the threshold.

    {b Series} (all per worker, merged on read):
    counters [requests_total], [requests_<kind>], [errors_total],
    [malformed_total], [rounds_total], [shed_jobs_total], [slow_total];
    histograms [req_latency_us_<kind>] (µs), [lock_wait_us], [step_us],
    [bytes_in], [bytes_out] — where [<kind>] ranges over {!kinds}. *)

(** {1 Request kinds} *)

(** Request-frame kind names, in index order; the last entry ([error])
    buckets frames that never resolved to a request (malformed input,
    replies sent as requests). *)
val kinds : string array

val error_kind : int
val kind_index : Wire.frame -> int
val kind_name : int -> string

(** {1 Spans} *)

(** One request's trace: timings in µs, sizes in bytes. Mutable and
    meant to be reused per connection ({!reset_span}), so the hot path
    allocates nothing per frame. *)
type span = {
  mutable s_kind : int;
  mutable s_session : string;
  mutable s_wire : int;  (** negotiated wire version *)
  mutable s_read_us : int;
      (** blocking read + decode; includes client think time *)
  mutable s_lock_us : int;  (** waiting on the session mutex *)
  mutable s_handle_us : int;  (** handler, lock wait included *)
  mutable s_write_us : int;  (** encode + write + flush *)
  mutable s_bytes_in : int;
  mutable s_bytes_out : int;
  mutable s_rounds : int;  (** rounds executed, step frames *)
  mutable s_shed : int;  (** jobs shed, feed frames *)
  mutable s_error : bool;  (** the reply was an error frame *)
}

val span : unit -> span
val reset_span : span -> unit

(** Server-side request latency: handler (lock wait included) + reply
    write; the blocking read is excluded as it is dominated by peer
    think time. *)
val span_latency_us : span -> int

(** {1 The metrics plane} *)

type t

val default_slow_threshold_us : int
(** 10 ms. *)

val default_slow_capacity : int
(** 64 entries. *)

(** [create ~workers ()] makes one slot per worker domain. 0 (or
    absent) [slow_threshold_us]/[slow_capacity] mean the defaults. *)
val create :
  ?workers:int -> ?slow_threshold_us:int -> ?slow_capacity:int -> unit -> t

val workers : t -> int
val slow_threshold_us : t -> int
val uptime_s : t -> int

(** [record t ~worker span] folds one finished span into worker
    [worker]'s slot (lock-free) and, when its latency reaches the slow
    threshold, into the shared slow ring (one short lock). *)
val record : t -> worker:int -> span -> unit

(** Count a frame that failed to decode: bumps [malformed_total] and
    records the span under the [error] kind. *)
val record_malformed : t -> worker:int -> span -> unit

(** {1 Reading} *)

(** One slow request, as recorded. *)
type slow_entry = {
  e_at_us : int;  (** µs after server start the request completed *)
  e_kind : string;
  e_session : string;
  e_wire : int;
  e_latency_us : int;
  e_read_us : int;
  e_lock_us : int;
  e_handle_us : int;
  e_write_us : int;
  e_bytes_in : int;
  e_bytes_out : int;
  e_error : bool;
}

(** Newest first, at most [max] entries (default: everything held). *)
val slow_log : ?max:int -> t -> slow_entry list

(** One flat JSON object (ints only, booleans as 0/1), parseable with
    {!Rrs_sim.Event_sink.Json.parse_fields}. *)
val slow_to_json : slow_entry -> string

(** Every worker slot's registry, for {!Rrs_obs.Probe.merged_snapshot}
    or direct inspection. *)
val registries : t -> Rrs_obs.Probe.registry list

(** A fresh registry folding every slot (see {!Rrs_obs.Probe.merge}). *)
val merged : t -> Rrs_obs.Probe.registry

(** A registry snapshot as one flat JSON object (name -> int), the
    [metrics_ok.doc] payload — parseable with
    {!Rrs_sim.Event_sink.Json.parse_fields}. *)
val registry_doc : Rrs_obs.Probe.registry -> string
