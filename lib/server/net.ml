(* Shared serving-layer plumbing: addresses, listen sockets, the live
   connection table, the bounded accept->worker handoff queue, and the
   accept/worker domain loops. Used by both the session server
   ([Server]) and the sharding router ([Router]). *)

type address = Unix_socket of string | Tcp of string * int

(* A bad host name is an operator typo, not a crash: resolution failures
   come back as a clean [Error] naming the host. *)
let resolve_host host =
  match Unix.inet_addr_of_string host with
  | addr -> Ok addr
  | exception Failure _ -> (
      match Unix.gethostbyname host with
      | { Unix.h_addr_list = [||]; _ } ->
          Error (Printf.sprintf "host %S has no address" host)
      | entry -> Ok entry.Unix.h_addr_list.(0)
      | exception Not_found -> Error (Printf.sprintf "unknown host %S" host))

(* Is something accepting on this Unix socket path right now? A stale
   file left by a crashed server refuses the connect; a live server
   completes it. *)
let unix_socket_live path =
  let probe = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let live =
    match Unix.connect probe (Unix.ADDR_UNIX path) with
    | () -> true
    | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _) ->
        false
    | exception Unix.Unix_error _ ->
        (* can't prove it stale (EACCES, ...): refuse to steal it *)
        true
  in
  (try Unix.close probe with Unix.Unix_error _ -> ());
  live

(* Every listener is close-on-exec: the [Shard] supervisor forks
   children with [Unix.create_process], and an inherited listen or
   connection fd would keep dead clients from ever seeing EOF. *)
let listen_socket = function
  | Unix_socket path ->
      if Sys.file_exists path then
        if unix_socket_live path then
          failwith
            (Printf.sprintf
               "cannot listen on %s: address in use by a live server" path)
        else Sys.remove path;
      let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.listen fd 64;
      (fd, Some path)
  | Tcp (host, port) ->
      let addr =
        match resolve_host host with
        | Ok addr -> addr
        | Error message -> failwith ("cannot listen: " ^ message)
      in
      let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Unix.bind fd (Unix.ADDR_INET (addr, port));
      Unix.listen fd 64;
      (fd, None)

let port_of fd =
  match Unix.getsockname fd with
  | Unix.ADDR_INET (_, port) -> Some port
  | _ -> None

let address_label = function
  | Unix_socket path -> "unix:" ^ path
  | Tcp (host, port) -> Printf.sprintf "tcp:%s:%d" host port

(* ---- live connection table ---- *)

type conn_table = {
  c_mutex : Mutex.t;
  c_fds : (Unix.file_descr, unit) Hashtbl.t;
}

let conn_table () = { c_mutex = Mutex.create (); c_fds = Hashtbl.create 16 }

let conn_add table fd =
  Mutex.lock table.c_mutex;
  Hashtbl.replace table.c_fds fd ();
  Mutex.unlock table.c_mutex

let conn_remove table fd =
  Mutex.lock table.c_mutex;
  Hashtbl.remove table.c_fds fd;
  Mutex.unlock table.c_mutex

let conn_shutdown_all table =
  Mutex.lock table.c_mutex;
  Hashtbl.iter
    (fun fd () -> try Unix.shutdown fd Unix.SHUTDOWN_RECEIVE with _ -> ())
    table.c_fds;
  Mutex.unlock table.c_mutex

(* ---- bounded handoff queue: accept loop -> worker domains ---- *)

type handoff = {
  q_mutex : Mutex.t;
  q_nonempty : Condition.t;
  q_nonfull : Condition.t;
  q_items : Unix.file_descr Queue.t;
  q_capacity : int;
  mutable q_closed : bool;
}

let handoff_create capacity =
  {
    q_mutex = Mutex.create ();
    q_nonempty = Condition.create ();
    q_nonfull = Condition.create ();
    q_items = Queue.create ();
    q_capacity = capacity;
    q_closed = false;
  }

let handoff_push q fd =
  Mutex.lock q.q_mutex;
  while Queue.length q.q_items >= q.q_capacity && not q.q_closed do
    Condition.wait q.q_nonfull q.q_mutex
  done;
  let accepted = not q.q_closed in
  (* Signal only when something was actually queued: a rejected push on
     a closed queue has nothing for a worker to pop, and the spurious
     signal could steal the wakeup a real push is entitled to. *)
  if accepted then begin
    Queue.push fd q.q_items;
    Condition.signal q.q_nonempty
  end;
  Mutex.unlock q.q_mutex;
  accepted

let handoff_pop q =
  Mutex.lock q.q_mutex;
  while Queue.is_empty q.q_items && not q.q_closed do
    Condition.wait q.q_nonempty q.q_mutex
  done;
  let item =
    if Queue.is_empty q.q_items then None else Some (Queue.pop q.q_items)
  in
  Condition.signal q.q_nonfull;
  Mutex.unlock q.q_mutex;
  item

let handoff_close q =
  Mutex.lock q.q_mutex;
  q.q_closed <- true;
  Condition.broadcast q.q_nonempty;
  Condition.broadcast q.q_nonfull;
  Mutex.unlock q.q_mutex

(* ---- accept / worker domain bodies ---- *)

(* Poll with a short readiness timeout rather than blocking in accept:
   closing a listen socket does not wake an accept blocked in another
   domain, so a blocking loop would hang stop. *)
let accept_loop ~stopping ~listen_fd ~conns ~handoff =
  let rec loop () =
    if Atomic.get stopping then ()
    else
      match Poll.wait_readable ~timeout:0.2 listen_fd with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | exception Unix.Unix_error _ -> ()
      | `Timeout -> loop ()
      | `Readable -> (
          match Unix.accept ~cloexec:true listen_fd with
          | exception Unix.Unix_error (Unix.EINTR, _, _) ->
              (* Same retry as the poll above: a signal landing between
                 the readiness wait and the accept must not drop the
                 pending connection (or, under the catch-all below with
                 [stopping] racing true, the whole accept loop). *)
              loop ()
          | exception Unix.Unix_error _ ->
              if Atomic.get stopping then () else loop ()
          | fd, _addr ->
              conn_add conns fd;
              if not (handoff_push handoff fd) then begin
                conn_remove conns fd;
                (try Unix.close fd with Unix.Unix_error _ -> ())
              end;
              loop ())
  in
  loop ()

(* One worker: pop connections until the handoff closes; a raising
   [serve] costs that connection, never the worker — and never the fd:
   [serve] normally owns the close, but if it raises before getting
   there the worker closes the popped fd itself, so a handler bug
   cannot leak descriptors one crashed connection at a time. *)
let worker_loop ~handoff ~conns ~worker ~serve =
  let rec loop () =
    match handoff_pop handoff with
    | None -> ()
    | Some fd ->
        (try serve ~worker fd
         with e ->
           Slog.error ~event:"connection_raised"
             [ ("worker", Slog.int worker); ("exn", Printexc.to_string e) ];
           (try Unix.close fd with Unix.Unix_error _ -> ()));
        conn_remove conns fd;
        loop ()
  in
  loop ()
