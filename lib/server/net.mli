(** Shared serving-layer plumbing: addresses and listen sockets, the
    live-connection table, the bounded accept->worker handoff queue and
    the accept/worker domain loop bodies. {!Server} and {!Router} are
    both built on it; {!Server} re-exports {!address} so existing
    callers keep their spelling. *)

type address = Unix_socket of string | Tcp of string * int

val resolve_host : string -> (Unix.inet_addr, string) result
(** Resolve a dotted quad or host name; failures are an [Error] naming
    the host, never an exception. *)

val listen_socket : address -> Unix.file_descr * string option
(** Bind + listen (close-on-exec); the [string option] is a Unix socket
    path to unlink on shutdown. An existing Unix socket path is
    probe-connected first: a stale file (crashed server) is cleaned and
    reused, but a path a live server is still accepting on is refused —
    starting a second server must not silently steal the first one's
    socket.
    @raise Failure on an unresolvable TCP host or a live socket path. *)

val port_of : Unix.file_descr -> int option
(** The bound port, for [Tcp] listeners (the kernel's pick under
    port 0). *)

val address_label : address -> string

(** {1 Live connection table} *)

type conn_table

val conn_table : unit -> conn_table
val conn_add : conn_table -> Unix.file_descr -> unit
val conn_remove : conn_table -> Unix.file_descr -> unit

val conn_shutdown_all : conn_table -> unit
(** Shut down the read side of every live connection, unblocking
    workers parked in reads so stop can join them. *)

(** {1 Accept -> worker handoff} *)

type handoff

val handoff_create : int -> handoff

val handoff_push : handoff -> Unix.file_descr -> bool
(** Blocks while full; false when the queue is closed (caller closes
    the fd — nothing was queued and no worker is signalled). *)

val handoff_pop : handoff -> Unix.file_descr option
(** Blocks while empty; [None] once closed and drained. *)

val handoff_close : handoff -> unit

(** {1 Domain loop bodies} *)

val accept_loop :
  stopping:bool Atomic.t ->
  listen_fd:Unix.file_descr ->
  conns:conn_table ->
  handoff:handoff ->
  unit

val worker_loop :
  handoff:handoff ->
  conns:conn_table ->
  worker:int ->
  serve:(worker:int -> Unix.file_descr -> unit) ->
  unit
(** Pop and serve connections until the handoff closes. [serve] owns
    the fd and closes it on every normal path; if it raises instead,
    the worker closes the fd itself — an exception never leaks the
    descriptor. *)
