(* poll(2) readiness waits over the vendored stub in poll_stubs.c; see
   poll.mli for why Unix.select cannot be used anywhere in lib/server. *)

let pollin = 1
let pollout = 2
let pollerr = 4
let pollhup = 8
let pollnval = 16

external rrs_poll :
  Unix.file_descr array -> int array -> int array -> int -> int -> int
  = "rrs_poll"

external fd_limit : unit -> int = "rrs_fd_limit"
external raise_fd_limit : int -> int = "rrs_set_fd_limit"

let poll ~fds ~events ~revents ~n ~timeout_ms =
  rrs_poll fds events revents n timeout_ms

let timeout_ms_of = function
  | None -> -1
  | Some seconds when seconds < 0. -> -1
  | Some seconds -> int_of_float (ceil (seconds *. 1000.))

(* One-element scratch per call: the single-fd helpers are used on cold
   paths (accept polling, client deadlines), not in the event loop. *)
let wait1 fd interest timeout =
  let fds = [| fd |] and events = [| interest |] and revents = [| 0 |] in
  let ready =
    rrs_poll fds events revents 1 (timeout_ms_of timeout)
  in
  if ready = 0 then None else Some revents.(0)

let wait_readable ?timeout fd =
  match wait1 fd pollin timeout with None -> `Timeout | Some _ -> `Readable

let wait_writable ?timeout fd =
  match wait1 fd pollout timeout with None -> `Timeout | Some _ -> `Writable
