(** poll(2)-based readiness waits — the serving layer's allowlisted
    [Unix.select] replacement.

    [Unix.select] fails (or corrupts memory, depending on libc) for any
    fd >= FD_SETSIZE (1024 on Linux), which put a hard ceiling of ~1k
    open sockets under the old connection core. Every wait in
    [lib/server] goes through this module instead: a vendored C binding
    of [poll(2)], which takes an explicit fd array and has no such
    cliff. CI greps [lib/server] and fails on any new [Unix.select]
    outside this module. *)

(** {1 Event bits} *)

val pollin : int
val pollout : int
val pollerr : int
val pollhup : int
val pollnval : int

(** {1 The raw multi-fd wait}

    [poll ~fds ~events ~revents ~n ~timeout_ms] waits on entries
    [0..n-1] of the parallel arrays: [fds.(i)] with interest bits
    [events.(i)] ({!pollin} lor {!pollout}); [revents.(i)] is
    overwritten with the bits that fired ({!pollerr}/{!pollhup}/
    {!pollnval} can fire unrequested). [timeout_ms < 0] waits forever.
    Returns the number of ready entries.

    The arrays are caller-owned and reused across iterations, so a 10k
    connection event loop allocates nothing per wait.

    @raise Unix.Unix_error like [Unix.select] would — [EINTR] included;
    callers keep their retry loops. *)
val poll :
  fds:Unix.file_descr array ->
  events:int array ->
  revents:int array ->
  n:int ->
  timeout_ms:int ->
  int

(** {1 Single-fd waits — drop-in select replacements} *)

(** [wait_readable ?timeout fd] blocks until [fd] is readable (data,
    EOF, error or hangup — anything a read would not block on), or the
    timeout (seconds; negative or absent = forever) elapses. *)
val wait_readable :
  ?timeout:float -> Unix.file_descr -> [ `Readable | `Timeout ]

val wait_writable :
  ?timeout:float -> Unix.file_descr -> [ `Writable | `Timeout ]

(** {1 fd budget helpers (for the churn harnesses)} *)

val fd_limit : unit -> int
(** The soft [RLIMIT_NOFILE] (clamped to [2^30 - 1] for infinity). *)

val raise_fd_limit : int -> int
(** Best-effort raise of the soft fd limit toward the argument (never
    past the hard limit, never lowered); returns the resulting soft
    limit. Lets a 1k+ connection bench run under a default 1024 soft
    limit without shelling out to [ulimit]. *)
