/* Vendored poll(2) binding — the serving layer's select replacement.
 *
 * Unix.select marshals fd sets through FD_SETSIZE-bounded fd_set
 * bitmaps, so on Linux any fd >= 1024 is undefined behaviour (glibc
 * aborts or corrupts the stack).  poll(2) takes an explicit array and
 * has no such ceiling.  OCaml 5.1's Unix module does not bind poll, so
 * this small stub does; lib/server/poll.ml is the only caller.
 *
 * The rlimit helpers exist for the connection-churn harnesses: a 10k+
 * connection bench must be able to discover and (best-effort) raise the
 * process fd limit instead of dying mid-run on EMFILE.
 */

#include <poll.h>
#include <errno.h>
#include <stdlib.h>
#include <string.h>
#include <sys/resource.h>

#include <caml/alloc.h>
#include <caml/fail.h>
#include <caml/memory.h>
#include <caml/mlvalues.h>
#include <caml/signals.h>
#include <caml/threads.h>
#include <caml/unixsupport.h>

/* Event bits shared with poll.ml (kept independent of the platform's
 * POLLIN/POLLOUT numeric values). */
#define RRS_POLLIN 1
#define RRS_POLLOUT 2
#define RRS_POLLERR 4
#define RRS_POLLHUP 8
#define RRS_POLLNVAL 16

/* rrs_poll fds events revents n timeout_ms
 *
 * [fds], [events] and [revents] are int arrays of length >= n; entries
 * [0, n) are polled.  [events] uses the RRS_* bits above; [revents] is
 * overwritten with the RRS_* bits that fired.  Returns the number of
 * ready entries.  Raises Unix_error (EINTR included — callers retry,
 * exactly as they did around Unix.select). */
CAMLprim value rrs_poll(value v_fds, value v_events, value v_revents,
                        value v_n, value v_timeout_ms)
{
  CAMLparam5(v_fds, v_events, v_revents, v_n, v_timeout_ms);
  int n = Int_val(v_n);
  int timeout = Int_val(v_timeout_ms);
  struct pollfd *pfds;
  int i, ready;

  if (n < 0 || n > Wosize_val(v_fds) || n > Wosize_val(v_events)
      || n > Wosize_val(v_revents))
    caml_invalid_argument("Poll.poll: n out of bounds");

  pfds = (struct pollfd *)malloc((n > 0 ? n : 1) * sizeof(struct pollfd));
  if (pfds == NULL) caml_raise_out_of_memory();

  for (i = 0; i < n; i++) {
    int ev = Int_val(Field(v_events, i));
    pfds[i].fd = Int_val(Field(v_fds, i));
    pfds[i].events = 0;
    if (ev & RRS_POLLIN) pfds[i].events |= POLLIN;
    if (ev & RRS_POLLOUT) pfds[i].events |= POLLOUT;
    pfds[i].revents = 0;
  }

  caml_release_runtime_system();
  ready = poll(pfds, (nfds_t)n, timeout);
  caml_acquire_runtime_system();

  if (ready < 0) {
    int err = errno;
    free(pfds);
    caml_unix_error(err, "poll", Nothing);
  }

  for (i = 0; i < n; i++) {
    int re = 0;
    if (pfds[i].revents & POLLIN) re |= RRS_POLLIN;
    if (pfds[i].revents & POLLOUT) re |= RRS_POLLOUT;
    if (pfds[i].revents & POLLERR) re |= RRS_POLLERR;
    if (pfds[i].revents & POLLHUP) re |= RRS_POLLHUP;
    if (pfds[i].revents & POLLNVAL) re |= RRS_POLLNVAL;
    Store_field(v_revents, i, Val_int(re));
  }
  free(pfds);
  CAMLreturn(Val_int(ready));
}

/* Clamp an rlim_t to a tagged OCaml int. */
static long rrs_clamp_rlim(rlim_t v)
{
  if (v == RLIM_INFINITY || v > (rlim_t)0x3FFFFFFF) return 0x3FFFFFFF;
  return (long)v;
}

/* Current soft RLIMIT_NOFILE (infinity reported as 2^30 - 1). */
CAMLprim value rrs_fd_limit(value v_unit)
{
  struct rlimit rl;
  (void)v_unit;
  if (getrlimit(RLIMIT_NOFILE, &rl) != 0)
    caml_uerror("getrlimit", Nothing);
  return Val_long(rrs_clamp_rlim(rl.rlim_cur));
}

/* Best-effort raise of the soft RLIMIT_NOFILE toward [want] (never past
 * the hard limit, never lowered).  Returns the resulting soft limit. */
CAMLprim value rrs_set_fd_limit(value v_want)
{
  struct rlimit rl;
  rlim_t want = (rlim_t)Long_val(v_want);
  if (getrlimit(RLIMIT_NOFILE, &rl) != 0)
    caml_uerror("getrlimit", Nothing);
  if (want > rl.rlim_cur) {
    rlim_t target = want;
    if (rl.rlim_max != RLIM_INFINITY && target > rl.rlim_max)
      target = rl.rlim_max;
    if (target > rl.rlim_cur) {
      struct rlimit raised = rl;
      raised.rlim_cur = target;
      if (setrlimit(RLIMIT_NOFILE, &raised) == 0) rl.rlim_cur = target;
      /* EPERM and friends: keep the old soft limit, report honestly. */
    }
  }
  return Val_long(rrs_clamp_rlim(rl.rlim_cur));
}
