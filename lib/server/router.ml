module Probe = Rrs_obs.Probe
module Clock = Rrs_obs.Clock

(* ---- consistent-hash ring ----

   Classic ring with virtual nodes: every shard label contributes
   [replicas] points hashed onto a 64-bit circle (FNV-1a); a key is
   owned by the first point clockwise from its own hash. Adding or
   removing one of N shards therefore remaps only ~1/N of the keys, and
   every remapped key lands on a surviving shard — the property the
   qcheck suite pins. Ownership is computed over ALL configured shards,
   up or down: a crashed shard keeps its keys (its sessions live in its
   own snapshot directory), and failover is restart + re-admission, not
   remapping. *)
module Ring = struct
  (* FNV-1a 64-bit. Signed Int64 compare is used consistently for both
     sorting and lookup, which is all a ring needs (any fixed total
     order of the circle works). *)
  let fnv_offset = -3750763034362895579L (* 0xcbf29ce484222325 *)
  let fnv_prime = 1099511628211L

  (* murmur3's fmix64 finalizer. Raw FNV-1a has weak avalanche in the
     high bits: keys differing only in their last character end up
     within ~[fnv_prime] of each other — a sliver of the 64-bit circle —
     and would all land on the same shard. The finalizer scatters
     them. *)
  let mix h =
    let h = Int64.logxor h (Int64.shift_right_logical h 33) in
    let h = Int64.mul h (-49064778989728563L) (* 0xff51afd7ed558ccd *) in
    let h = Int64.logxor h (Int64.shift_right_logical h 33) in
    let h = Int64.mul h (-4265267296055464877L) (* 0xc4ceb9fe1a85ec53 *) in
    Int64.logxor h (Int64.shift_right_logical h 33)

  let hash key =
    let h = ref fnv_offset in
    String.iter
      (fun c ->
        h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) fnv_prime)
      key;
    mix !h

  type t = {
    points : (int64 * int) array; (* (point, shard index), sorted *)
    labels : string array;
  }

  let default_replicas = 128

  let make ?(replicas = default_replicas) labels =
    if Array.length labels = 0 then invalid_arg "Ring.make: no shards";
    if replicas < 1 then invalid_arg "Ring.make: replicas < 1";
    let shards = Array.length labels in
    let points =
      Array.init (shards * replicas) (fun i ->
          let shard = i / replicas and replica = i mod replicas in
          (hash (labels.(shard) ^ "#" ^ string_of_int replica), shard))
    in
    Array.sort compare points;
    { points; labels = Array.copy labels }

  let size t = Array.length t.labels
  let labels t = Array.copy t.labels

  (* First point at or clockwise-after the key's hash, wrapping. *)
  let index t key =
    let h = hash key in
    let n = Array.length t.points in
    let lo = ref 0 and hi = ref n in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if fst t.points.(mid) < h then lo := mid + 1 else hi := mid
    done;
    snd t.points.(if !lo = n then 0 else !lo)

  let shard t key = t.labels.(index t key)
end

(* ---- router ---- *)

type shard_spec = { shard_label : string; shard_address : Net.address }

type config = {
  address : Net.address; (* front listener *)
  shards : shard_spec list;
  domains : int; (* front worker domains; 0 = default *)
  max_wire : int; (* front framings negotiable; 1 pins /1 *)
  backend_wire : int; (* framing spoken to shards (default 2) *)
  timeout_ms : int; (* per-backend-call deadline *)
  connect_timeout_ms : int; (* backend connect budget *)
  fail_threshold : int; (* consecutive failures before down *)
  probe_interval_ms : int; (* first re-admission probe delay *)
  probe_max_ms : int; (* probe backoff cap *)
  replicas : int; (* ring virtual nodes per shard; 0 = default *)
  router_id : string; (* identity surfaced in hello_ok *)
}

let default_config ~address ~shards =
  {
    address;
    shards;
    domains = 0;
    max_wire = 2;
    backend_wire = 2;
    timeout_ms = 2_000;
    connect_timeout_ms = 1_000;
    fail_threshold = 3;
    probe_interval_ms = 200;
    probe_max_ms = 5_000;
    replicas = 0;
    router_id = "rrs-router/1.0.0";
  }

type shard = {
  label : string;
  address : Net.address;
  health : Health.t;
  routed : Probe.counter; (* requests forwarded to this shard *)
  errors : Probe.counter; (* backend failures charged to this shard *)
}

type t = {
  cfg : config;
  shards : shard array;
  ring : Ring.t;
  metrics : Metrics.t; (* front-side request spans *)
  probes : Probe.registry; (* router counters (routing/health) *)
  shed_down : Probe.counter; (* requests refused: owner shard down *)
  listen_fd : Unix.file_descr;
  cleanup_socket : string option;
  stopping : bool Atomic.t;
  (* Assigned right after construction (the loop handler needs [t]);
     always Some once [start] returns. *)
  mutable loop : conn_state Event_loop.t option;
  mutable event_domain : unit Domain.t option;
  mutable worker_domains : unit Domain.t list;
  mutable prober_domain : unit Domain.t option;
}

(* Per-connection handler state: the reused span plus this connection's
   cached backend legs (one per shard, connected lazily). *)
and conn_state = {
  rc_span : Metrics.span;
  rc_backends : Client.t option array;
  mutable rc_in_mark : int; (* bytes_in watermark at the last frame end *)
}

let now_ms () = Int64.to_int (Int64.div (Clock.now_ns ()) 1_000_000L)

let session_of_frame = function
  | Wire.Open { session; _ }
  | Wire.Feed { session; _ }
  | Wire.Step { session; _ }
  | Wire.Stats { session; _ }
  | Wire.Snapshot { session; _ }
  | Wire.Close { session; _ } ->
      Some session
  | _ -> None

let hello_reply t client_version =
  let hello_ok server_version =
    Wire.Hello_ok
      {
        server_version;
        server = t.cfg.router_id;
        uptime_s = Metrics.uptime_s t.metrics;
      }
  in
  if client_version = Wire.version then (hello_ok Wire.version, Some Wire.V1)
  else if client_version = Wire.version2 && t.cfg.max_wire >= 2 then
    (hello_ok Wire.version2, Some Wire.V2)
  else
    ( Wire.Error_frame
        {
          message =
            Printf.sprintf "unsupported wire version %S (this router speaks %s)"
              client_version
              (if t.cfg.max_wire >= 2 then
                 Wire.version ^ " and " ^ Wire.version2
               else Wire.version);
        },
      None )

(* The router's own metrics view: front-side spans merged across
   workers plus routing/health gauges — shards_total/up, per-shard
   failures and re-admissions folded into totals. *)
let metrics_registry t =
  let merged = Metrics.merged t.metrics in
  Probe.merge ~into:merged t.probes;
  let up =
    Array.fold_left
      (fun up s -> if Health.is_up s.health then up + 1 else up)
      0 t.shards
  in
  let failures, trips, readmits =
    Array.fold_left
      (fun (f, tr, re) s ->
        let f', tr', re' = Health.counters s.health in
        (f + f', tr + tr', re + re'))
      (0, 0, 0) t.shards
  in
  let set name value = Probe.set_gauge (Probe.gauge merged name) value in
  set "shards_total" (Array.length t.shards);
  set "shards_up" up;
  set "shard_failures_total" failures;
  set "shard_trips_total" trips;
  set "shard_readmits_total" readmits;
  set "uptime_s" (Metrics.uptime_s t.metrics);
  set "workers" (Metrics.workers t.metrics);
  merged

let handle_metrics t ~slow =
  let doc = Metrics.registry_doc (metrics_registry t) in
  let entries = if slow <= 0 then [] else Metrics.slow_log ~max:slow t.metrics in
  Wire.Metrics_ok
    { doc; slow = String.concat "\n" (List.map Metrics.slow_to_json entries) }

(* One backend leg: the cached per-connection client when it is still
   trusted, else a fresh connect (bounded) + negotiation. *)
let backend_conn t backends i =
  let shard = t.shards.(i) in
  (match backends.(i) with
  | Some c when Client.is_broken c ->
      Client.close c;
      backends.(i) <- None
  | _ -> ());
  match backends.(i) with
  | Some c -> Ok c
  | None -> (
      match
        Client.try_connect ~timeout_ms:t.cfg.connect_timeout_ms shard.address
      with
      | Error _ as e -> e
      | Ok c ->
          if t.cfg.backend_wire = 1 then begin
            backends.(i) <- Some c;
            Ok c
          end
          else (
            match Client.negotiate c ~wire:t.cfg.backend_wire with
            | Ok () ->
                backends.(i) <- Some c;
                Ok c
            | Error message ->
                Client.close c;
                Error message))

(* Forward one session frame to its owning shard. Down shards are
   refused immediately with a clean error — the router never blocks a
   client on a dead backend — and every leg (connect, call) is
   deadline-bounded, so the reply always comes back in bounded time. *)
let forward t backends frame session =
  let i = Ring.index t.ring session in
  let shard = t.shards.(i) in
  if not (Health.is_up shard.health) then begin
    Probe.incr t.shed_down;
    Wire.Error_frame
      {
        message =
          Printf.sprintf "shard %s down (%s); session %S unavailable until it \
                          recovers"
            shard.label
            (match Health.last_error shard.health with
            | "" -> "unreachable"
            | reason -> reason)
            session;
      }
  end
  else begin
    Probe.incr shard.routed;
    let fail reason =
      Probe.incr shard.errors;
      Health.fail shard.health ~now_ms:(now_ms ()) ~reason;
      if not (Health.is_up shard.health) then
        Slog.warn ~event:"shard_down"
          [ ("shard", shard.label); ("reason", reason) ];
      Wire.Error_frame
        {
          message =
            Printf.sprintf "shard %s unavailable: %s" shard.label reason;
        }
    in
    match backend_conn t backends i with
    | Error message -> fail message
    | Ok c -> (
        match Client.call ~deadline_ms:t.cfg.timeout_ms c frame with
        | Ok reply ->
            Health.ok shard.health;
            reply
        | Error message ->
            Client.close c;
            backends.(i) <- None;
            fail message)
  end

let handle t backends frame =
  match frame with
  | Wire.Hello _ | Wire.Metrics _ ->
      (* Handled locally, never forwarded: hello is per-connection
         negotiation, metrics is the router's own view. *)
      assert false
  | _ -> (
      match session_of_frame frame with
      | Some session -> forward t backends frame session
      | None ->
          Wire.Error_frame { message = "reply frames are not requests" })

let us_since t0 = Int64.to_int (Int64.div (Int64.sub (Clock.now_ns ()) t0) 1000L)

let conn_state t () =
  {
    rc_span = Metrics.span ();
    rc_backends = Array.make (Array.length t.shards) None;
    rc_in_mark = 0;
  }

let conn_close_backends st =
  Array.iteri
    (fun i c ->
      Option.iter Client.close c;
      st.rc_backends.(i) <- None)
    st.rc_backends

(* One complete inbound result on a worker domain: same span accounting
   as the server's, with the handle phase being the proxied backend
   call. s_read_us measures dispatch-queue wait (there is no per-frame
   blocking read under the readiness loop). *)
let handle_event t ~worker conn result =
  let metrics = t.metrics in
  let st = Event_loop.data conn in
  let span = st.rc_span in
  let framing = Event_loop.framing conn in
  Metrics.reset_span span;
  span.Metrics.s_wire <- (match framing with Wire.V1 -> 1 | Wire.V2 -> 2);
  let started = Clock.now_ns () in
  span.Metrics.s_read_us <-
    Int64.to_int
      (Int64.div (Int64.sub started (Event_loop.queued_ns conn)) 1000L);
  let bytes_in_now = Event_loop.bytes_in conn in
  span.Metrics.s_bytes_in <- bytes_in_now - st.rc_in_mark;
  st.rc_in_mark <- bytes_in_now;
  let send reply =
    let bytes = Wire.to_wire framing reply in
    Event_loop.send conn bytes;
    String.length bytes
  in
  match result with
  | Wire.Eof -> ()
  | Wire.Malformed message ->
      let handled = Clock.now_ns () in
      let wrote = send (Wire.Error_frame { message }) in
      span.Metrics.s_bytes_out <- wrote;
      span.Metrics.s_write_us <- us_since handled;
      Metrics.record_malformed metrics ~worker span
  | Wire.Frame frame ->
      span.Metrics.s_kind <- Metrics.kind_index frame;
      Option.iter
        (fun session -> span.Metrics.s_session <- session)
        (session_of_frame frame);
      let reply, negotiated =
        match frame with
        | Wire.Hello { client_version } -> hello_reply t client_version
        | Wire.Metrics { slow } -> (handle_metrics t ~slow, None)
        | _ ->
            let reply =
              (* A routing bug must cost this request, never the
                 router. *)
              try handle t st.rc_backends frame
              with e ->
                Slog.error ~event:"router_raised"
                  [ ("exn", Printexc.to_string e) ];
                Wire.Error_frame
                  { message = "internal error: " ^ Printexc.to_string e }
            in
            (reply, None)
      in
      let handled = Clock.now_ns () in
      span.Metrics.s_handle_us <-
        Int64.to_int (Int64.div (Int64.sub handled started) 1000L);
      (match reply with
      | Wire.Error_frame _ -> span.Metrics.s_error <- true
      | _ -> ());
      let wrote = send reply in
      span.Metrics.s_bytes_out <- wrote;
      span.Metrics.s_write_us <- us_since handled;
      Option.iter (fun f -> Event_loop.set_framing conn f) negotiated;
      Metrics.record metrics ~worker span

(* Re-admission probe: bounded connect + hello. Success re-admits the
   shard (the supervisor restarted it and restore-at-boot brought its
   sessions back); failure pushes the next probe out on the backoff
   schedule. *)
let probe_shard t shard =
  match
    Client.try_connect ~timeout_ms:t.cfg.connect_timeout_ms shard.address
  with
  | Error message -> Health.probe_failed shard.health ~now_ms:(now_ms ()) ~reason:message
  | Ok c ->
      (match Client.negotiate c ~wire:1 with
      | Ok () ->
          Health.ok shard.health;
          Slog.info ~event:"shard_readmitted" [ ("shard", shard.label) ]
      | Error message ->
          Health.probe_failed shard.health ~now_ms:(now_ms ()) ~reason:message);
      Client.close c

let prober_loop t =
  while not (Atomic.get t.stopping) do
    Array.iter
      (fun shard ->
        if
          (not (Atomic.get t.stopping))
          && Health.probe_due shard.health ~now_ms:(now_ms ())
        then probe_shard t shard)
      t.shards;
    Unix.sleepf 0.02
  done

let shards_up t =
  Array.fold_left
    (fun up s -> if Health.is_up s.health then up + 1 else up)
    0 t.shards

let shard_of_session t session = (Ring.shard t.ring) session

let start (config : config) =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  if config.shards = [] then failwith "router: no shards configured";
  if config.timeout_ms < 1 then failwith "router: timeout_ms must be >= 1";
  let labels = Array.of_list (List.map (fun s -> s.shard_label) config.shards) in
  let distinct = List.sort_uniq String.compare (Array.to_list labels) in
  if List.length distinct <> Array.length labels then
    failwith "router: duplicate shard labels";
  let probes = Probe.create_registry () in
  let shards =
    Array.of_list
      (List.map
         (fun spec ->
           {
             label = spec.shard_label;
             address = spec.shard_address;
             health =
               Health.create ~fail_threshold:config.fail_threshold
                 ~probe_interval_ms:config.probe_interval_ms
                 ~probe_max_ms:config.probe_max_ms ();
             routed = Probe.counter probes ("routed_" ^ spec.shard_label);
             errors = Probe.counter probes ("errors_" ^ spec.shard_label);
           })
         config.shards)
  in
  let ring =
    Ring.make
      ?replicas:(if config.replicas > 0 then Some config.replicas else None)
      labels
  in
  let workers = if config.domains > 0 then config.domains else 4 in
  let listen_fd, cleanup_socket = Net.listen_socket config.address in
  let stopping = Atomic.make false in
  let metrics = Metrics.create ~workers () in
  let shed_down = Probe.counter probes "routed_shard_down_total" in
  let t =
    {
      cfg = config;
      shards;
      ring;
      metrics;
      probes;
      shed_down;
      listen_fd;
      cleanup_socket;
      stopping;
      loop = None;
      event_domain = None;
      worker_domains = [];
      prober_domain = None;
    }
  in
  let loop =
    Event_loop.create ~listen_fd ~stopping ~on_open:(conn_state t)
      ~on_close:conn_close_backends
      ~handler:(fun ~worker conn result -> handle_event t ~worker conn result)
      ()
  in
  t.loop <- Some loop;
  t.event_domain <- Some (Domain.spawn (fun () -> Event_loop.run loop));
  t.worker_domains <-
    List.init workers (fun worker ->
        Domain.spawn (fun () -> Event_loop.dispatch_loop loop ~worker));
  t.prober_domain <- Some (Domain.spawn (fun () -> prober_loop t));
  Slog.info ~event:"routing"
    [
      ("address", Net.address_label config.address);
      ("shards", Slog.int (Array.length shards));
      ("workers", Slog.int workers);
    ];
  t

let bound_port t = Net.port_of t.listen_fd

let stop t =
  Atomic.set t.stopping true;
  (* The event loop owns the listen fd and every front-connection fd:
     waking it closes the listener, finishes in-flight requests,
     flushes replies and closes all connections (backend legs included,
     via on_close) before [run] returns. *)
  Option.iter Event_loop.wake_loop t.loop;
  Option.iter Domain.join t.event_domain;
  List.iter Domain.join t.worker_domains;
  Option.iter Domain.join t.prober_domain;
  Option.iter
    (fun path -> try Sys.remove path with Sys_error _ -> ())
    t.cleanup_socket

let serve config =
  let stop_requested = Atomic.make false in
  let request_stop _signal = Atomic.set stop_requested true in
  let previous_term = Sys.signal Sys.sigterm (Sys.Signal_handle request_stop) in
  let previous_int = Sys.signal Sys.sigint (Sys.Signal_handle request_stop) in
  let t = start config in
  while not (Atomic.get stop_requested) do
    Unix.sleepf 0.1
  done;
  Slog.info ~event:"stopping" [ ("reason", "signal") ];
  stop t;
  Sys.set_signal Sys.sigterm previous_term;
  Sys.set_signal Sys.sigint previous_int
