(** The sharding router: one process speaking both [rrs-wire] framings
    on the front, multiplexing session traffic to N shard servers on
    the back.

    {b Ownership} is consistent hashing on session name over ALL
    configured shards (see {!Ring}): stable under restarts, minimal
    remapping under topology change. A crashed shard keeps its keys —
    its sessions live in its own snapshot directory — so failover is
    supervisor restart + re-admission, not remapping.

    {b Health}: connect failures and per-call deadlines feed a
    per-shard {!Health} machine; a down shard's requests are refused
    immediately with a clean [error] frame (the router never hangs a
    client on a dead backend), and a prober domain re-admits the shard
    after a successful hello.

    {b Locally handled}: [hello] (per-connection framing negotiation,
    router identity) and [metrics] (the router's own merged view:
    front-side spans plus [shards_total]/[shards_up]/
    [shard_failures_total]/[shard_trips_total]/[shard_readmits_total]/
    [routed_<label>]/[errors_<label>]/[routed_shard_down_total]).
    Everything session-bearing is forwarded verbatim; replies pass
    through untouched. *)

(** Consistent-hash ring with virtual nodes (FNV-1a 64-bit). *)
module Ring : sig
  type t

  val default_replicas : int

  val make : ?replicas:int -> string array -> t
  (** [make labels] builds the ring; every label contributes
      [replicas] (default {!default_replicas}) points.
      @raise Invalid_argument on an empty shard set. *)

  val size : t -> int
  val labels : t -> string array

  val index : t -> string -> int
  (** Owner of a key, as an index into [labels] as given to {!make}. *)

  val shard : t -> string -> string
  (** Owner of a key, as its label. *)

  val hash : string -> int64
  (** The ring's key hash (FNV-1a 64-bit through a murmur3 fmix64
      finalizer, so near-identical keys still scatter), exposed for
      tests. *)
end

type shard_spec = { shard_label : string; shard_address : Net.address }

type config = {
  address : Net.address;  (** front listener *)
  shards : shard_spec list;
  domains : int;  (** front worker domains; 0 = default (4) *)
  max_wire : int;  (** front framings negotiable; [1] pins [rrs-wire/1] *)
  backend_wire : int;  (** framing spoken to shards (default 2, binary) *)
  timeout_ms : int;  (** per-backend-call deadline *)
  connect_timeout_ms : int;  (** backend connect budget *)
  fail_threshold : int;  (** consecutive failures tripping a shard down *)
  probe_interval_ms : int;  (** first re-admission probe delay *)
  probe_max_ms : int;  (** probe backoff cap *)
  replicas : int;  (** ring virtual nodes per shard; 0 = default *)
  router_id : string;  (** identity surfaced in [hello_ok] *)
}

val default_config : address:Net.address -> shards:shard_spec list -> config

type t

(** Bind the front listener, spawn accept/worker/prober domains, return
    immediately.
    @raise Failure on an empty or duplicate-labeled shard set, or an
    unresolvable listen host. *)
val start : config -> t

(** For [Tcp] with port 0: the port the kernel picked. *)
val bound_port : t -> int option

val shards_up : t -> int
(** Shards currently admitted (health [Up]). *)

val shard_of_session : t -> string -> string
(** The owning shard's label for a session name (ring lookup). *)

val stop : t -> unit

(** [start] + block until SIGTERM/SIGINT + [stop]. *)
val serve : config -> unit
