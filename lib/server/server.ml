module Json = Rrs_sim.Event_sink.Json
module Probe = Rrs_obs.Probe
module Clock = Rrs_obs.Clock

type address = Net.address = Unix_socket of string | Tcp of string * int

type config = {
  address : address;
  snap_dir : string option;
  trace_dir : string option;
  domains : int; (* worker domains; 0 = Sweep.default_domains () *)
  queue_limit : int; (* per-session default; 0 = Session default *)
  max_wire : int; (* highest wire version negotiable; 0 = both (2) *)
  snap_version : int; (* session snapshot schema; 0 = default (2) *)
  checkpoint_every : int; (* checkpoint interval; 0 = per-version default *)
  max_reply : int; (* reply frame size cap; 0 = Wire.max_frame *)
  metrics : address option; (* OpenMetrics exposition listener *)
  slow_threshold_us : int; (* slow-request log threshold; 0 = default *)
  slow_log : int; (* slow-request log capacity; 0 = default *)
  server_id : string; (* identity surfaced in hello_ok *)
  autosnap : bool;
      (* write each session's snapshot at checkpoint boundaries, so a
         crash (no drain) loses at most one unsnapshotted window *)
  admission : Rrs_workload.Demand.t option;
      (* deployment capacity spec (rrs-spec/1): its [n] (or the
         analytically sized minimum) times its speed is the supply
         budget the admission gate prices declared sessions against *)
  admission_mode : Admission.mode; (* off | warn | enforce *)
}

let default_config address =
  { address; snap_dir = None; trace_dir = None; domains = 0; queue_limit = 0;
    max_wire = 2; snap_version = 0; checkpoint_every = 0; max_reply = 0;
    metrics = None; slow_threshold_us = 0; slow_log = 0; server_id = "rrs";
    autosnap = false; admission = None; admission_mode = Admission.Off }

(* ---- session manager ---- *)

type manager = {
  m_mutex : Mutex.t;
  m_sessions : (string, Session.t) Hashtbl.t;
  m_queue_limit : int;
  m_trace_dir : string option;
  m_snap_dir : string option;
  m_max_wire : int;
  m_snap_version : int; (* 1 or 2 *)
  m_checkpoint_every : int option; (* None = Session's per-version default *)
  m_max_reply : int;
  m_metrics : Metrics.t;
  m_server_id : string;
  m_autosnap : bool;
  m_admission : Admission.t option; (* None = gate off *)
}

let with_manager m f =
  Mutex.lock m.m_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock m.m_mutex) f

let find_session m name = with_manager m (fun () -> Hashtbl.find_opt m.m_sessions name)

let session_names m =
  with_manager m (fun () ->
      Hashtbl.fold (fun name _ acc -> name :: acc) m.m_sessions []
      |> List.sort String.compare)

(* ---- frame handling ---- *)

let err format = Printf.ksprintf (fun message -> Wire.Error_frame { message }) format

let with_session m session f =
  match find_session m session with
  | None -> err "no such session %S" session
  | Some s -> f s

let snapshot_filename name = name ^ ".sess.jsonl"

(* Session names double as snapshot file names: keep them path-safe. *)
let valid_session_name name =
  name <> ""
  && String.length name <= 128
  && String.for_all
       (fun c ->
         (c >= 'a' && c <= 'z')
         || (c >= 'A' && c <= 'Z')
         || (c >= '0' && c <= '9')
         || c = '-' || c = '_' || c = '.')
       name
  && name.[0] <> '.'

(* ---- admission gate ----

   [admit] prices one declaration: the per-session analytic check
   (would the session drop its own declared load?) and the aggregate
   reservation (does the deployment still have budget?). [Ok police]
   admits — [police] says whether feeds must be held to the declared
   envelope (enforce mode). [Error reply] is the {!Wire.Admission_reject}
   to send instead; the caller sends it and creates nothing. Warn mode
   admits violations anyway (force-reserving, so the demand gauge tells
   the truth) and logs the constraint it would have enforced. The
   reservation taken here must be released on any later failure of the
   open (lost insert race, create error). *)
let admit m ~session ~(config : Rrs_sim.Stepper.config) decl =
  match m.m_admission with
  | None -> Ok false (* no gate: the declaration is recorded, not priced *)
  | Some gate ->
      let enforce = Admission.mode gate = Admission.Enforce in
      let reject (r : Admission.reject) =
        Admission.note_rejected_open gate;
        Wire.Admission_reject
          { session; color = r.Admission.r_color; demand = r.r_demand;
            supply = r.r_supply; message = r.r_message }
      in
      let warn (r : Admission.reject) =
        Slog.warn ~event:"admission_warn"
          [ ("session", session); ("constraint", r.Admission.r_message) ]
      in
      let session_verdict =
        Admission.check_session ~session ~delta:config.Rrs_sim.Stepper.delta
          ~bounds:config.bounds ~n:config.n ~speed:config.speed decl
      in
      (match session_verdict with
      | Error r when enforce -> Error (reject r)
      | session_verdict ->
          (match session_verdict with Error r -> warn r | Ok () -> ());
          let mjpr = Admission.decl_mjpr decl in
          (match Admission.try_admit gate ~session ~mjpr with
          | Ok () -> Ok enforce
          | Error r when enforce -> Error (reject r)
          | Error r ->
              warn r;
              Admission.force_admit gate ~session ~mjpr;
              Ok enforce))

let release_admission m ~session =
  Option.iter (fun gate -> Admission.release gate ~session) m.m_admission

(* Undo a failed open's reservation. Reservations key on the session
   name, so if a concurrent open of the same name won the insert race
   and is itself declared, the standing reservation is the winner's —
   leave it alone. *)
let release_failed_open m ~session =
  match find_session m session with
  | Some winner when Session.declaration winner <> None -> ()
  | _ -> release_admission m ~session

let handle_open m ~session ~policy ~delta ~bounds ~n ~speed ~horizon
    ~queue_limit ~decl =
  if not (valid_session_name session) then
    err "invalid session name %S (want [A-Za-z0-9._-]+, not dot-led)" session
  else if with_manager m (fun () -> Hashtbl.mem m.m_sessions session) then
    err "session %S already open" session
  else begin
    let queue_limit = if queue_limit > 0 then queue_limit else m.m_queue_limit in
    let config =
      { Rrs_sim.Stepper.name = session; delta; bounds; n;
        speed = (if speed > 0 then speed else 1); horizon }
    in
    let admitted =
      match decl with
      | None -> Ok false
      | Some d -> (
          match Admission.validate_decl ~colors:(Array.length bounds) d with
          | Error message -> Error (err "open: %s" message)
          | Ok () -> admit m ~session ~config d)
    in
    match admitted with
    | Error reply -> reply (* an enforce-mode reject leaves no state *)
    | Ok police -> (
        (* Construct OUTSIDE the manager mutex: trace-file opens and stepper
           construction must cost this connection's frame, not stall every
           other connection's. Insert with a double-check on the name; the
           losing racer tears its session down again. *)
        match
          Session.create ~name:session ~policy ~queue_limit
            ~snap_version:m.m_snap_version
            ?checkpoint_every:m.m_checkpoint_every ?trace_dir:m.m_trace_dir
            config
        with
        | Error message ->
            if decl <> None then release_failed_open m ~session;
            Wire.Error_frame { message }
        | Ok s ->
            Option.iter (fun d -> Session.declare s ~decl:d ~police) decl;
            let won =
              with_manager m (fun () ->
                  if Hashtbl.mem m.m_sessions session then false
                  else begin
                    Hashtbl.add m.m_sessions session s;
                    true
                  end)
            in
            if won then Wire.Opened { session; round = 0 }
            else begin
              if decl <> None then release_failed_open m ~session;
              Session.release s;
              err "session %S already open" session
            end)
  end

(* The hello exchange doubles as framing negotiation: asking for
   [rrs-wire/2] (when the server allows it) switches the connection to
   the binary framing right after the [hello_ok] goes out in the old
   one. It also surfaces the server's identity and uptime. *)
let hello_reply m client_version =
  let hello_ok server_version =
    Wire.Hello_ok
      { server_version; server = m.m_server_id;
        uptime_s = Metrics.uptime_s m.m_metrics }
  in
  if client_version = Wire.version then (hello_ok Wire.version, Some Wire.V1)
  else if client_version = Wire.version2 && m.m_max_wire >= 2 then
    (hello_ok Wire.version2, Some Wire.V2)
  else
    ( err "unsupported wire version %S (this server speaks %s)" client_version
        (if m.m_max_wire >= 2 then Wire.version ^ " and " ^ Wire.version2
         else Wire.version),
      None )

(* The merged metrics view: every worker slot folded into one fresh
   registry, plus scrape-time series derived from the live sessions.
   The session list is grabbed under the manager mutex; per-session
   stats are read after releasing it (each [Session.stats] takes its
   own lock), so the two lock domains never nest. *)
let metrics_registry m =
  let merged = Metrics.merged m.m_metrics in
  let sessions =
    with_manager m (fun () ->
        Hashtbl.fold (fun _ s acc -> s :: acc) m.m_sessions [])
  in
  let buffered = ref 0 and pending = ref 0 in
  let shed = ref 0 and fed = ref 0 and rounds = ref 0 in
  List.iter
    (fun s ->
      let st = Session.stats s in
      buffered := !buffered + st.Session.st_buffered;
      pending := !pending + st.Session.st_pending;
      shed := !shed + st.Session.st_shed;
      fed := !fed + st.Session.st_fed;
      rounds := !rounds + st.Session.st_round)
    sessions;
  let set name value = Probe.set_gauge (Probe.gauge merged name) value in
  set "sessions_open" (List.length sessions);
  set "sessions_buffered_jobs" !buffered;
  set "sessions_pending_jobs" !pending;
  set "sessions_shed_jobs" !shed;
  set "sessions_fed_jobs" !fed;
  set "sessions_rounds" !rounds;
  set "uptime_s" (Metrics.uptime_s m.m_metrics);
  set "slow_threshold_us" (Metrics.slow_threshold_us m.m_metrics);
  set "workers" (Metrics.workers m.m_metrics);
  (match m.m_admission with
  | None -> ()
  | Some gate ->
      let supply = Admission.supply_mjpr gate in
      let demand = Admission.demand_mjpr gate in
      set "admission_supply_mjpr" supply;
      set "admission_demand_mjpr" demand;
      set "admission_headroom_mjpr" (max 0 (supply - demand));
      set "admission_sessions" (Admission.sessions gate);
      set "admission_rejected_total" (Admission.rejected_opens gate);
      set "admission_policed_feeds" (Admission.policed_feeds gate);
      set "admission_policed_jobs" (Admission.policed_jobs gate));
  merged

let metrics_doc = Metrics.registry_doc

let handle_metrics m ~slow =
  let doc = metrics_doc (metrics_registry m) in
  let entries =
    if slow <= 0 then [] else Metrics.slow_log ~max:slow m.m_metrics
  in
  let slow =
    String.concat "\n" (List.map Metrics.slow_to_json entries)
  in
  Wire.Metrics_ok { doc; slow }

(* [on_lock] observes session-mutex wait for the span being traced;
   [wire]/[bytes_in]/[bytes_out] describe the answering connection for
   [stats]. *)
let handle_frame m ~on_lock ~wire ~bytes_in ~bytes_out frame =
  match frame with
  | Wire.Hello { client_version } -> fst (hello_reply m client_version)
  | Wire.Open
      { session; policy; delta; bounds; n; speed; horizon; queue_limit; decl }
    ->
      handle_open m ~session ~policy ~delta ~bounds ~n ~speed ~horizon
        ~queue_limit ~decl
  | Wire.Feed { session; colors; counts; decl } ->
      with_session m session (fun s ->
          (* A feed may re-declare: the new envelope passes the same
             gate as an open's (replacing the session's reservation).
             An enforce-mode reject refuses the whole frame — the jobs
             it carries are not fed. *)
          let redeclared =
            match decl with
            | None -> Ok ()
            | Some d -> (
                match
                  Admission.validate_decl ~colors:(Session.num_colors s) d
                with
                | Error message -> Error (err "feed: %s" message)
                | Ok () -> (
                    match admit m ~session ~config:(Session.config s) d with
                    | Error reply -> Error reply
                    | Ok police ->
                        Session.declare ~on_lock_wait_us:on_lock s ~decl:d
                          ~police;
                        Ok ()))
          in
          match redeclared with
          | Error reply -> reply
          | Ok () -> (
              match Session.feed ~on_lock_wait_us:on_lock s ~colors ~counts with
              | Ok (Session.Accepted { accepted; buffered }) ->
                  Wire.Fed { session; accepted; buffered }
              | Ok (Session.Shed_reply { shed; buffered; limit }) ->
                  Wire.Shed { session; shed; buffered; limit }
              | Ok (Session.Policed { color; offered; allowance }) ->
                  Option.iter
                    (fun gate ->
                      Admission.note_policed gate
                        ~jobs:(Array.fold_left ( + ) 0 counts))
                    m.m_admission;
                  Wire.Admission_reject
                    { session; color; demand = offered; supply = allowance;
                      message =
                        Printf.sprintf
                          "feed: color %d over the declared envelope: \
                           cumulative %d jobs against an allowance of %d \
                           through the current round"
                          color offered allowance }
              | Error message -> Wire.Error_frame { message }))
  | Wire.Step { session; rounds } ->
      with_session m session (fun s ->
          match Session.step ~on_lock_wait_us:on_lock s ~rounds with
          | Ok r ->
              (* Crash durability: persist the snapshot when this step
                 crossed a checkpoint boundary. Autosave failure must
                 not fail the step — log and carry on; the epoch
                 re-arms so the next boundary retries. *)
              (if m.m_autosnap then
                 match m.m_snap_dir with
                 | None -> ()
                 | Some dir -> (
                     let path =
                       Filename.concat dir (snapshot_filename session)
                     in
                     match Session.autosave ~on_lock_wait_us:on_lock s ~path with
                     | true ->
                         Slog.debug ~event:"autosnap"
                           [
                             ("session", session);
                             ("round", Slog.int r.Session.sr_round);
                           ]
                     | false -> ()
                     | exception e ->
                         Slog.warn ~event:"autosnap_failed"
                           [
                             ("session", session);
                             ("exn", Printexc.to_string e);
                           ]));
              Wire.Stepped
                {
                  session;
                  round = r.Session.sr_round;
                  pending = r.sr_pending;
                  cost = r.sr_cost;
                  reconfigs = r.sr_reconfigs;
                  drops = r.sr_drops;
                  execs = r.sr_execs;
                }
          | Error message -> Wire.Error_frame { message })
  | Wire.Stats { session } ->
      with_session m session (fun s ->
          let st = Session.stats ~on_lock_wait_us:on_lock s in
          Wire.Stats_ok
            {
              session;
              round = st.Session.st_round;
              pending = st.st_pending;
              buffered = st.st_buffered;
              fed = st.st_fed;
              accepted = st.st_accepted;
              shed = st.st_shed;
              execs = st.st_execs;
              drops = st.st_drops;
              reconfigs = st.st_reconfigs;
              failed = st.st_failed;
              cost = st.st_cost;
              wire;
              bytes_in;
              bytes_out;
            })
  | Wire.Snapshot { session; path } ->
      with_session m session (fun s -> (
          match path with
          | Some file -> (
              (* The client names a file, never a path: anything else
                 would let any connected peer write wherever the server
                 user can. Resolved inside snap_dir, like drains. *)
              if not (valid_session_name file) then
                err "invalid snapshot file name %S (want [A-Za-z0-9._-]+, \
                     not dot-led; saved inside the server's snapshot \
                     directory)" file
              else
                match m.m_snap_dir with
                | None ->
                    err "snapshot to file requires a server snapshot \
                         directory (--snap-dir)"
                | Some dir -> (
                    let path = Filename.concat dir file in
                    match Session.save ~on_lock_wait_us:on_lock s ~path with
                    | () ->
                        Wire.Snapshotted { session; path = Some path; doc = None }
                    | exception Sys_error message ->
                        Wire.Error_frame { message }))
          | None ->
              Wire.Snapshotted
                { session; path = None;
                  doc = Some (Session.snapshot ~on_lock_wait_us:on_lock s) }))
  | Wire.Close { session } -> (
      (* Atomic take: of two racing [close] frames exactly one gets the
         session; the other answers "no such session". *)
      let taken =
        with_manager m (fun () ->
            match Hashtbl.find_opt m.m_sessions session with
            | None -> None
            | Some s ->
                Hashtbl.remove m.m_sessions session;
                Some s)
      in
      match taken with
      | None -> err "no such session %S" session
      | Some s ->
          release_admission m ~session;
          (* A closed session must not resurrect from a stale drain
             snapshot at the next restart. *)
          Option.iter
            (fun dir ->
              let path = Filename.concat dir (snapshot_filename session) in
              try Sys.remove path with Sys_error _ -> ())
            m.m_snap_dir;
          (match Session.close ~on_lock_wait_us:on_lock s with
          | Ok cost -> Wire.Closed { session; cost }
          | Error message -> Wire.Error_frame { message }))
  | Wire.Metrics { slow } -> handle_metrics m ~slow
  | Wire.Hello_ok _ | Wire.Opened _ | Wire.Fed _ | Wire.Shed _
  | Wire.Stepped _ | Wire.Stats_ok _ | Wire.Snapshotted _ | Wire.Closed _
  | Wire.Metrics_ok _ | Wire.Error_frame _ | Wire.Admission_reject _ ->
      err "reply frames are not requests"

(* ---- connection serving ---- *)

(* A reply longer than [m_max_reply] (<= [Wire.max_frame]) is
   un-receivable: the peer's reader rejects any frame over its cap as
   malformed, so writing one — an inline snapshot of a session with a
   deep history, say — would desynchronize or kill the connection.
   Answer a clean [error] naming the limit instead; the connection (and
   the session) survives, and the snapshot is still reachable through
   the file path. *)

let us_since t0 = Int64.to_int (Int64.div (Int64.sub (Clock.now_ns ()) t0) 1000L)

(* Per-connection handler state for the event loop: one reused span and
   lock-wait closure (the tracing hot path allocates nothing per
   request), plus the bytes-in watermark for per-frame accounting. *)
type conn_state = {
  cs_span : Metrics.span;
  cs_on_lock : int -> unit;
  mutable cs_in_mark : int; (* Event_loop.bytes_in at the last frame end *)
}

let conn_state () =
  let span = Metrics.span () in
  {
    cs_span = span;
    cs_on_lock = (fun us -> span.Metrics.s_lock_us <- span.Metrics.s_lock_us + us);
    cs_in_mark = 0;
  }

(* Frame and queue the reply (capped per the policy above); returns the
   bytes queued. The event loop writes straight to the socket when the
   connection's outbound buffer is empty. *)
let send_reply manager ~framing conn reply =
  let bytes = Wire.to_wire framing reply in
  let data =
    if String.length bytes <= manager.m_max_reply then bytes
    else
      Wire.to_wire framing
        (err
           "reply frame of %d bytes exceeds the %d-byte frame limit; \
            request the snapshot to a file (snapshot with a path) instead"
           (String.length bytes) manager.m_max_reply)
  in
  Event_loop.send conn data;
  String.length data

(* One complete inbound result (frame or malformed report — the loop
   never dispatches Eof), handled on a worker domain. Same span
   accounting as the old blocking loop, except s_read_us now measures
   dispatch-queue wait (there is no per-frame blocking read to time). *)
let handle_event manager ~worker conn result =
  let metrics = manager.m_metrics in
  let st = Event_loop.data conn in
  let span = st.cs_span in
  let framing = Event_loop.framing conn in
  Metrics.reset_span span;
  span.Metrics.s_wire <- (match framing with Wire.V1 -> 1 | Wire.V2 -> 2);
  let started = Clock.now_ns () in
  span.Metrics.s_read_us <-
    Int64.to_int
      (Int64.div (Int64.sub started (Event_loop.queued_ns conn)) 1000L);
  let bytes_in_now = Event_loop.bytes_in conn in
  span.Metrics.s_bytes_in <- bytes_in_now - st.cs_in_mark;
  st.cs_in_mark <- bytes_in_now;
  match result with
  | Wire.Eof -> ()
  | Wire.Malformed message ->
      let handled = Clock.now_ns () in
      let wrote = send_reply manager ~framing conn (Wire.Error_frame { message }) in
      span.Metrics.s_bytes_out <- wrote;
      span.Metrics.s_write_us <- us_since handled;
      Metrics.record_malformed metrics ~worker span
  | Wire.Frame frame ->
      span.Metrics.s_kind <- Metrics.kind_index frame;
      (match frame with
      | Wire.Open { session; _ } | Wire.Feed { session; _ }
      | Wire.Step { session; _ } | Wire.Stats { session; _ }
      | Wire.Snapshot { session; _ } | Wire.Close { session; _ } ->
          span.Metrics.s_session <- session
      | _ -> ());
      let reply, negotiated =
        match frame with
        (* The hello reply goes out in the framing the hello arrived
           in; only then does the connection switch. *)
        | Wire.Hello { client_version } -> hello_reply manager client_version
        | _ ->
            let reply =
              (* A bug in frame handling must cost this request, not
                 the server: fail the frame, keep the connection. *)
              try
                handle_frame manager ~on_lock:st.cs_on_lock
                  ~wire:span.Metrics.s_wire ~bytes_in:bytes_in_now
                  ~bytes_out:(Event_loop.bytes_out conn)
                  frame
              with e ->
                Slog.error ~event:"handler_raised"
                  [ ("exn", Printexc.to_string e) ];
                Wire.Error_frame
                  { message = "internal error: " ^ Printexc.to_string e }
            in
            (reply, None)
      in
      let handled = Clock.now_ns () in
      span.Metrics.s_handle_us <-
        Int64.to_int (Int64.div (Int64.sub handled started) 1000L);
      (match reply with
      | Wire.Error_frame _ | Wire.Admission_reject _ ->
          span.Metrics.s_error <- true
      | Wire.Stepped _ -> (
          match frame with
          | Wire.Step { rounds; _ } -> span.Metrics.s_rounds <- max rounds 1
          | _ -> ())
      | Wire.Shed { shed; _ } -> span.Metrics.s_shed <- shed
      | _ -> ());
      let wrote = send_reply manager ~framing conn reply in
      span.Metrics.s_bytes_out <- wrote;
      span.Metrics.s_write_us <- us_since handled;
      Option.iter (fun f -> Event_loop.set_framing conn f) negotiated;
      Metrics.record metrics ~worker span

(* ---- server handle ---- *)

type t = {
  manager : manager;
  listen_fd : Unix.file_descr;
  stopping : bool Atomic.t;
  loop : conn_state Event_loop.t;
  event_domain : unit Domain.t;
  worker_domains : unit Domain.t list;
  cleanup_socket : string option; (* unix socket path to unlink on stop *)
  metrics_fd : Unix.file_descr option;
  metrics_domain : unit Domain.t option;
  metrics_cleanup : string option;
}

let resolve_host = Net.resolve_host
let listen_socket = Net.listen_socket
let bound_port t = Net.port_of t.listen_fd
let bound_metrics_port t = Option.bind t.metrics_fd Net.port_of
let address_label = Net.address_label

(* ---- the OpenMetrics exposition listener ----

   A single domain serving one tiny HTTP/1.1 exchange per connection:
   read and discard the request head, write the full exposition, close.
   Scrapes are rare (seconds apart) and the registry fold is cheap, so
   one blocking responder is plenty; the short-timeout readiness wait
   mirrors the accept loop so [stop] can join it. *)
let serve_metrics_http manager stopping fd =
  let answer client =
    let input = Unix.in_channel_of_descr client in
    let output = Unix.out_channel_of_descr client in
    (try
       (* Drain the request head (request line + headers). *)
       let rec head () =
         match input_line input with
         | "" | "\r" -> ()
         | _ -> head ()
       in
       head ()
     with End_of_file -> ());
    let body = Exposition.render (metrics_registry manager) in
    output_string output (Exposition.http_response body);
    flush output
  in
  let rec loop () =
    if Atomic.get stopping then ()
    else
      match Poll.wait_readable ~timeout:0.2 fd with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | exception Unix.Unix_error _ -> ()
      | `Timeout -> loop ()
      | `Readable -> (
          match Unix.accept ~cloexec:true fd with
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
          | exception Unix.Unix_error _ ->
              if Atomic.get stopping then () else loop ()
          | client, _ ->
              (try answer client
               with Sys_error _ | Unix.Unix_error _ -> ());
              (try Unix.close client with Unix.Unix_error _ -> ());
              loop ())
  in
  loop ()

let restore_sessions manager =
  match manager.m_snap_dir with
  | None -> 0
  | Some dir when not (Sys.file_exists dir) -> 0
  | Some dir ->
      let files = Sys.readdir dir in
      Array.sort String.compare files;
      Array.fold_left
        (fun restored file ->
          if Filename.check_suffix file ".sess.jsonl" then begin
            let path = Filename.concat dir file in
            match
              Session.load ?trace_dir:manager.m_trace_dir
                ~snap_version:manager.m_snap_version
                ?checkpoint_every:manager.m_checkpoint_every ~path ()
            with
            | Ok session ->
                let name = Session.name session in
                (* The embedded name becomes the registry key, and later
                   close/drain build snap_dir paths from it — a crafted
                   snapshot must not smuggle in a path-escaping name. *)
                if not (valid_session_name name) then begin
                  Slog.error ~event:"restore_refused"
                    [ ("path", path); ("session", name);
                      ("reason", "path-unsafe session name") ];
                  Session.release session;
                  restored
                end
                else begin
                  let added =
                    with_manager manager (fun () ->
                        if Hashtbl.mem manager.m_sessions name then false
                        else begin
                          Hashtbl.add manager.m_sessions name session;
                          true
                        end)
                  in
                  if added then begin
                    (* Snapshots persist the declaration but not the
                       policing flag (that is server policy, not session
                       state): re-arm it for this server's mode and put
                       the restored demand back on the gate's books —
                       unconditionally, since refusing an already-running
                       session is not an option. *)
                    (match Session.declaration session with
                    | None -> ()
                    | Some decl ->
                        let police =
                          match manager.m_admission with
                          | Some gate ->
                              Admission.mode gate = Admission.Enforce
                          | None -> false
                        in
                        Session.declare session ~decl ~police;
                        Option.iter
                          (fun gate ->
                            Admission.force_admit gate ~session:name
                              ~mjpr:(Admission.decl_mjpr decl))
                          manager.m_admission);
                    Slog.info ~event:"restored"
                      [ ("session", name); ("path", path) ];
                    restored + 1
                  end
                  else begin
                    Slog.error ~event:"restore_collision"
                      [ ("path", path); ("session", name) ];
                    Session.release session;
                    restored
                  end
                end
            | Error message ->
                Slog.error ~event:"restore_failed"
                  [ ("path", path); ("reason", message) ];
                restored
          end
          else restored)
        0 files

let start ?(restore = true) config =
  (* A client that disconnects before its reply is written must cost
     that connection, not the process: with SIGPIPE ignored, writes to
     a dead peer raise Sys_error (EPIPE), which serve_connection
     already absorbs. Unavailable on some platforms, hence the try. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let snap_version = if config.snap_version = 1 then 1 else 2 in
  if config.snap_version <> 0 && config.snap_version <> 1
     && config.snap_version <> 2 then
    failwith
      (Printf.sprintf "unsupported snapshot version %d (known: 1, 2)"
         config.snap_version);
  if config.checkpoint_every < 0 then
    failwith
      (Printf.sprintf "negative checkpoint interval %d" config.checkpoint_every);
  if snap_version = 1 && config.checkpoint_every > 0 then
    failwith
      "a checkpoint interval requires snapshot version 2 (rrs-snap/1 cannot \
       compact history)";
  if config.slow_threshold_us < 0 then
    failwith
      (Printf.sprintf "negative slow-request threshold %d"
         config.slow_threshold_us);
  if config.slow_log < 0 then
    failwith (Printf.sprintf "negative slow-log capacity %d" config.slow_log);
  let workers =
    if config.domains > 0 then config.domains
    else max 2 (Rrs_sim.Sweep.default_domains ())
  in
  let admission_gate =
    match (config.admission, config.admission_mode) with
    | None, _ | _, Admission.Off -> None
    | Some spec, mode ->
        (* Supply = deployment size × speed, in milli-jobs/round. The
           spec's own [n] wins; a spec without one is sized to the
           analytic minimum for its declared workload. *)
        let n =
          match spec.Rrs_workload.Demand.n with
          | Some n -> n
          | None -> (
              match Rrs_analysis.Capacity.size spec with
              | Ok (n, _) -> n
              | Error reason ->
                  failwith
                    (Printf.sprintf
                       "admission spec cannot be sized (%s); give it an \
                        explicit \"n\"" reason))
        in
        let supply_mjpr = n * spec.Rrs_workload.Demand.speed * 1000 in
        Slog.info ~event:"admission"
          [ ("mode", Admission.mode_to_string mode);
            ("n", Slog.int n);
            ("supply_mjpr", Slog.int supply_mjpr) ];
        Some (Admission.create ~mode ~supply_mjpr)
  in
  let manager =
    {
      m_mutex = Mutex.create ();
      m_sessions = Hashtbl.create 16;
      m_queue_limit = config.queue_limit;
      m_trace_dir = config.trace_dir;
      m_snap_dir = config.snap_dir;
      m_max_wire = (if config.max_wire = 1 then 1 else 2);
      m_snap_version = snap_version;
      m_checkpoint_every =
        (if config.checkpoint_every > 0 then Some config.checkpoint_every
         else None);
      m_max_reply =
        (if config.max_reply > 0 then min config.max_reply Wire.max_frame
         else Wire.max_frame);
      m_metrics =
        Metrics.create ~workers ~slow_threshold_us:config.slow_threshold_us
          ~slow_capacity:config.slow_log ();
      m_server_id = config.server_id;
      m_autosnap = config.autosnap && config.snap_dir <> None;
      m_admission = admission_gate;
    }
  in
  Option.iter
    (fun dir -> if not (Sys.file_exists dir) then Unix.mkdir dir 0o755)
    config.snap_dir;
  Option.iter
    (fun dir -> if not (Sys.file_exists dir) then Unix.mkdir dir 0o755)
    config.trace_dir;
  let restored = if restore then restore_sessions manager else 0 in
  if restored > 0 then
    Slog.info ~event:"restore_done" [ ("sessions", Slog.int restored) ];
  let listen_fd, cleanup_socket = listen_socket config.address in
  let metrics_fd, metrics_cleanup =
    match config.metrics with
    | None -> (None, None)
    | Some address ->
        let fd, cleanup = listen_socket address in
        (Some fd, cleanup)
  in
  let stopping = Atomic.make false in
  let loop =
    Event_loop.create ~listen_fd ~stopping ~on_open:conn_state
      ~handler:(fun ~worker conn result ->
        handle_event manager ~worker conn result)
      ()
  in
  let event_domain = Domain.spawn (fun () -> Event_loop.run loop) in
  let worker_domains =
    List.init workers (fun worker ->
        Domain.spawn (fun () -> Event_loop.dispatch_loop loop ~worker))
  in
  let metrics_domain =
    Option.map
      (fun fd ->
        Domain.spawn (fun () -> serve_metrics_http manager stopping fd))
      metrics_fd
  in
  Slog.info ~event:"serving"
    ([ ("address", address_label config.address);
       ("workers", Slog.int workers) ]
    @
    match config.metrics with
    | None -> []
    | Some address -> [ ("metrics", address_label address) ]);
  {
    manager;
    listen_fd;
    stopping;
    loop;
    event_domain;
    worker_domains;
    cleanup_socket;
    metrics_fd;
    metrics_domain;
    metrics_cleanup;
  }

let drain_sessions t =
  match t.manager.m_snap_dir with
  | None ->
      List.iter
        (fun name ->
          Option.iter Session.release (find_session t.manager name))
        (session_names t.manager);
      0
  | Some dir ->
      List.fold_left
        (fun saved name ->
          match find_session t.manager name with
          | None -> saved
          | Some session -> (
              let path = Filename.concat dir (snapshot_filename name) in
              match Session.save session ~path with
              | () ->
                  Session.release session;
                  Slog.info ~event:"drained"
                    [ ("session", name); ("path", path) ];
                  saved + 1
              | exception e ->
                  Slog.error ~event:"drain_failed"
                    [ ("session", name); ("exn", Printexc.to_string e) ];
                  Session.release session;
                  saved))
        0 (session_names t.manager)

let stop ?(drain = true) t =
  Atomic.set t.stopping true;
  (* The event loop owns the listen fd and every connection fd: waking
     it closes the listener, finishes in-flight requests, flushes
     replies and closes all connections before [run] returns. *)
  Event_loop.wake_loop t.loop;
  Option.iter
    (fun fd ->
      (try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
      try Unix.close fd with Unix.Unix_error _ -> ())
    t.metrics_fd;
  Domain.join t.event_domain;
  List.iter Domain.join t.worker_domains;
  Option.iter Domain.join t.metrics_domain;
  let drained = if drain then drain_sessions t else 0 in
  with_manager t.manager (fun () -> Hashtbl.reset t.manager.m_sessions);
  Option.iter (fun path -> try Sys.remove path with Sys_error _ -> ())
    t.cleanup_socket;
  Option.iter (fun path -> try Sys.remove path with Sys_error _ -> ())
    t.metrics_cleanup;
  drained

let stop_requested = Atomic.make false

let serve ?restore config =
  Atomic.set stop_requested false;
  let request_stop _signal = Atomic.set stop_requested true in
  let previous_term = Sys.signal Sys.sigterm (Sys.Signal_handle request_stop) in
  let previous_int = Sys.signal Sys.sigint (Sys.Signal_handle request_stop) in
  let t = start ?restore config in
  while not (Atomic.get stop_requested) do
    Unix.sleepf 0.1
  done;
  Slog.info ~event:"stopping" [ ("reason", "signal") ];
  let drained = stop ~drain:true t in
  Sys.set_signal Sys.sigterm previous_term;
  Sys.set_signal Sys.sigint previous_int;
  drained
