(** The rrs session server ([rrs-wire/1] JSON by default, [rrs-wire/2]
    binary by negotiation).

    One accept-loop domain hands connections to a pool of worker domains
    over a bounded queue; each worker serves its connection frame by
    frame against a shared session manager (many named
    {!Session}s). Malformed input is answered with an [error] frame and
    the connection — and every session — survives; a frame-handler
    exception costs that one frame, never the server. A connection
    starts in /1 framing; a [hello] naming ["rrs-wire/2"] (unless
    [max_wire = 1]) answers [hello_ok] in the old framing and then
    switches the connection to the binary framing.

    {b Lifecycle}: [start] returns a handle for in-process use (tests,
    benches); [stop ~drain:true] closes the listener, shuts down every
    live connection, joins the domains and snapshots every open session
    into [snap_dir] (files named [<session>.sess.jsonl]). [serve] is the
    CLI entry: start, wait for SIGTERM/SIGINT, graceful drain. A
    restarted server with [restore] (default) reloads every snapshot in
    [snap_dir] before accepting connections, so served sessions continue
    across restarts with ledger continuity; a snapshot embedding a
    path-unsafe session name is refused with a log line, and two
    snapshots claiming the same name keep the first (by file order) and
    log the collision. A [close] deletes the session's drain snapshot,
    so a closed session never resurrects at the next restart.
    Client-requested [snapshot]-to-file writes are confined to
    [snap_dir] (bare path-safe file names only). *)

type address = Net.address = Unix_socket of string | Tcp of string * int

type config = {
  address : address;
  snap_dir : string option;  (** drain/restore directory *)
  trace_dir : string option;  (** per-session [rrs-events/2] streams *)
  domains : int;  (** worker domains; 0 = {!Rrs_sim.Sweep.default_domains} *)
  queue_limit : int;  (** per-session admission bound; 0 = default *)
  max_wire : int;
      (** highest wire version the server will negotiate: [1] pins every
          connection to [rrs-wire/1]; anything else (the default, [2])
          also accepts [rrs-wire/2] upgrades *)
  snap_version : int;
      (** session snapshot schema: [1] = [rrs-snap/1] (full-history
          replay, no checkpointing), [0] or [2] = [rrs-snap/2]
          (checkpointed). Restored /2 snapshots are never downgraded *)
  checkpoint_every : int;
      (** checkpoint interval for version-2 sessions; [0] =
          {!Session.default_checkpoint_every}. Requires
          [snap_version <> 1] when positive *)
  max_reply : int;
      (** reply frame size cap in bytes; [0] = {!Wire.max_frame}
          (values above it are clamped). A reply that would exceed the
          cap — an inline snapshot of a deep session — is replaced by an
          [error] naming the limit, because the peer's reader could
          never receive the frame anyway; snapshot-to-file is the
          unbounded path *)
  metrics : address option;
      (** when set, a separate listener serving the merged metrics as
          Prometheus/OpenMetrics text over one-shot HTTP/1.1 exchanges
          (see {!Exposition}). Metrics are always collected; this only
          adds the exposition endpoint *)
  slow_threshold_us : int;
      (** slow-request log threshold in µs;
          [0] = {!Metrics.default_slow_threshold_us} *)
  slow_log : int;
      (** slow-request ring capacity;
          [0] = {!Metrics.default_slow_capacity} *)
  server_id : string;
      (** identity string surfaced in [hello_ok] (e.g. ["rrs/1.0.0"]) *)
  autosnap : bool;
      (** write each session's snapshot into [snap_dir] whenever a
          [step] crosses a checkpoint boundary, so a crashed process
          (kill -9 — no SIGTERM drain) loses at most one unsnapshotted
          window (≤ [checkpoint_every] rounds) per session. Requires
          [snap_dir]; no-op for /1 sessions. Autosave failures are
          logged and never fail the step *)
  admission : Rrs_workload.Demand.t option;
      (** deployment capacity spec ([rrs-spec/1]) for the admission
          gate: its [n] (or, absent one, the analytically sized minimum
          — {!Rrs_analysis.Capacity.size}) times its [speed] is the
          supply budget in milli-jobs/round that declared sessions are
          priced against (see {!Admission}). [start] raises [Failure]
          when the spec carries no [n] and cannot be sized *)
  admission_mode : Admission.mode;
      (** [Off] (default): no gate even with a spec. [Warn]: violations
          are admitted and logged, gauges tell the truth. [Enforce]:
          an over-budget or analytically infeasible declaration draws
          [admission_reject] — for an [open], with no session state left
          behind — and enforce-mode feeds are policed against the
          declared envelope *)
}

val default_config : address -> config

val resolve_host : string -> (Unix.inet_addr, string) result
(** Resolve a dotted quad or host name; failures are an [Error] naming
    the host, never an exception. *)

type t

(** Bind, restore snapshots (unless [restore:false]), spawn the accept
    loop and worker domains, return immediately.
    @raise Failure on an unresolvable TCP host (clean message naming the
    host). *)
val start : ?restore:bool -> config -> t

(** For [Tcp] with port 0: the port the kernel picked. *)
val bound_port : t -> int option

(** The metrics listener's port, when [config.metrics] is [Tcp]. *)
val bound_metrics_port : t -> int option

(** Stop accepting, shut down live connections, join all domains. With
    [drain] (default) every open session is snapshotted to [snap_dir]
    (released without a snapshot when [snap_dir] is absent). Returns the
    number of sessions drained to disk. *)
val stop : ?drain:bool -> t -> int

(** [start] + block until SIGTERM/SIGINT + [stop ~drain:true]. Returns
    the number of sessions drained. *)
val serve : ?restore:bool -> config -> int
