module Stepper = Rrs_sim.Stepper
module Probe = Rrs_obs.Probe
module Json = Rrs_sim.Event_sink.Json

let snapshot_schema = "rrs-sess/1"
let default_queue_limit = 4096
let default_checkpoint_every = 256

type t = {
  name : string;
  policy_key : string;
  queue_limit : int;
  snap_version : int; (* stepper snapshot schema this session writes *)
  mutex : Mutex.t;
  stepper : Stepper.t;
  probes : Probe.registry;
  shed_jobs : Probe.counter;
  mutable shed : int;
  mutable fed : int; (* jobs offered = accepted + shed *)
  mutable declared : Wire.decl option;
      (* admitted arrival envelope (rates/den/bursts), when the client
         declared one *)
  mutable police : bool;
      (* enforce the envelope in [feed] (the server's admission mode is
         enforce and a declaration is in force) *)
  mutable admitted_by_color : int array;
      (* jobs accepted per color since round 0, the envelope cursor;
         [||] until declared *)
  mutable policed : int; (* jobs refused by the envelope (subset of shed) *)
  mutable trace : out_channel option;
      (* owned: closed with the session, then [None] so a lost
         close/release race never double-closes the channel *)
  mutable saved_epoch : int;
      (* checkpoint epoch (round / checkpoint_every) already on disk;
         [autosave] writes once per epoch so a kill -9 loses at most
         one unsnapshotted window *)
}

(* [on_lock_wait_us], when given, observes the time this caller spent
   blocked on the session mutex (µs) — the serving layer's lock_wait_us
   series. The no-callback path stays a bare lock. *)
let locked ?on_lock_wait_us t f =
  (match on_lock_wait_us with
  | None -> Mutex.lock t.mutex
  | Some record ->
      let started = Rrs_obs.Clock.now_ns () in
      Mutex.lock t.mutex;
      let waited = Int64.sub (Rrs_obs.Clock.now_ns ()) started in
      record (Int64.to_int (Int64.div waited 1000L)));
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let resolve_policy key =
  match Rrs_core.Policies.find key with
  | Some policy -> Ok policy
  | None ->
      Error
        (Printf.sprintf "unknown policy %S (known: %s)" key
           (String.concat ", " Rrs_core.Policies.names))

(* The version/interval pair a session runs with. [snap_version]
   defaults to 2 (checkpointed snapshots); [checkpoint_every] defaults
   per version: [default_checkpoint_every] under /2, 0 (never) under /1
   — a /1 session must never compact, or its own snapshot would become
   unwritable. *)
let resolve_versioning ?snap_version ?checkpoint_every () =
  let version = Option.value snap_version ~default:2 in
  if version <> 1 && version <> 2 then
    Error (Printf.sprintf "unsupported snapshot version %d (known: 1, 2)" version)
  else
    match checkpoint_every with
    | Some k when k < 0 ->
        Error (Printf.sprintf "negative checkpoint interval %d" k)
    | Some k when k > 0 && version = 1 ->
        Error
          (Printf.sprintf
             "checkpoint interval %d requires snapshot version 2 \
              (rrs-snap/1 cannot compact history)"
             k)
    | Some k -> Ok (version, k)
    | None ->
        Ok (version, if version = 2 then default_checkpoint_every else 0)

let make ~name ~policy_key ~queue_limit ~snap_version ~trace stepper probes =
  {
    name;
    policy_key;
    queue_limit;
    snap_version;
    mutex = Mutex.create ();
    stepper;
    probes;
    shed_jobs = Probe.counter probes "shed_jobs";
    shed = 0;
    fed = 0;
    declared = None;
    police = false;
    admitted_by_color = [||];
    policed = 0;
    trace;
    saved_epoch =
      (* A fresh session (round 0) starts one epoch behind so the very
         first step autosaves it; without that, a crash before round
         [checkpoint_every] would lose the session entirely, not just
         its last window. Restored sessions start at their own epoch so
         restore->step doesn't rewrite an identical snapshot. *)
      (let k = Stepper.checkpoint_every stepper in
       if k <= 0 then 0
       else if Stepper.round stepper = 0 then -1
       else Stepper.round stepper / k);
  }

let open_trace trace_dir name =
  match trace_dir with
  | None -> (None, None)
  | Some dir ->
      let path = Filename.concat dir (name ^ ".events.jsonl") in
      let channel = open_out path in
      (Some channel, Some (Rrs_sim.Event_sink.Jsonl channel))

let create ~name ~policy:policy_key ?(queue_limit = 0) ?snap_version
    ?checkpoint_every ?trace_dir (config : Stepper.config) =
  let queue_limit =
    if queue_limit > 0 then queue_limit else default_queue_limit
  in
  match resolve_versioning ?snap_version ?checkpoint_every () with
  | Error _ as e -> e
  | Ok (snap_version, checkpoint_every) -> (
      match resolve_policy policy_key with
      | Error _ as e -> e
      | Ok policy -> (
          let trace, sink = open_trace trace_dir name in
          let probes = Probe.create_registry () in
          match
            Stepper.create ?sink ~probes ~checkpoint_every
              ~label:("session " ^ name) ~policy config
          with
          | stepper ->
              Ok
                (make ~name ~policy_key ~queue_limit ~snap_version ~trace
                   stepper probes)
          | exception Invalid_argument message ->
              Option.iter close_out trace;
              Error message))

let name t = t.name
let policy_key t = t.policy_key
let queue_limit t = t.queue_limit
let snap_version t = t.snap_version
let checkpoint_every t = Stepper.checkpoint_every t.stepper
let num_colors t = Array.length (Stepper.config t.stepper).Stepper.bounds
let config t = Stepper.config t.stepper

(* Install (or replace) the admitted arrival envelope. The caller
   (server) validates the declaration's shape against the session's
   color count first. The envelope cursor survives re-declarations: the
   new rates apply to the cumulative history, not from a reset. *)
let declare ?on_lock_wait_us t ~decl ~police =
  locked ?on_lock_wait_us t (fun () ->
      t.declared <- Some decl;
      t.police <- police;
      if Array.length t.admitted_by_color <> num_colors t then
        t.admitted_by_color <- Array.make (num_colors t) 0)

let declaration t = locked t (fun () -> t.declared)
let policed t = locked t (fun () -> t.policed)

type feed_result =
  | Accepted of { accepted : int; buffered : int }
  | Shed_reply of { shed : int; buffered : int; limit : int }
  | Policed of { color : int; offered : int; allowance : int }

let validate_request t request =
  let num_colors = Array.length (Stepper.config t.stepper).Stepper.bounds in
  List.fold_left
    (fun acc (color, count) ->
      match acc with
      | Error _ -> acc
      | Ok () ->
          if color < 0 || color >= num_colors then
            Error
              (Printf.sprintf "feed: unknown color %d (valid: 0..%d)" color
                 (num_colors - 1))
          else if count < 0 then
            Error (Printf.sprintf "feed: color %d has negative count %d" color count)
          else Ok ())
    (Ok ()) request

(* Envelope check (enforce mode with a declaration in force): each
   color's cumulative accepted jobs plus this request must stay within
   [burst + floor ((round + 1) * rate / den)] — exactly the cumulative
   arrivals a spec-conformant generator ({!Rrs_workload.Demand}) has
   produced through the current round, so honest traffic is never
   policed. First violating color wins (colors are sorted in a
   normalized request; the raw order is the caller's). *)
let envelope_violation t request =
  match t.declared with
  | Some { Wire.d_rates; d_den; d_bursts } when t.police ->
      let round = Stepper.round t.stepper in
      let request = Rrs_sim.Types.normalize_request request in
      List.fold_left
        (fun acc (color, count) ->
          match acc with
          | Some _ -> acc
          | None ->
              let burst =
                if Array.length d_bursts = 0 then 0 else d_bursts.(color)
              in
              let allowance = burst + ((round + 1) * d_rates.(color) / d_den) in
              let offered = t.admitted_by_color.(color) + count in
              if offered > allowance then Some (color, offered, allowance)
              else None)
        None request
  | _ -> None

let feed ?on_lock_wait_us t ~colors ~counts =
  if Array.length colors <> Array.length counts then
    Error "feed: colors and counts differ in length"
  else
    let request =
      Array.to_list (Array.map2 (fun c k -> (c, k)) colors counts)
    in
    let jobs = Rrs_sim.Types.request_size request in
    locked ?on_lock_wait_us t (fun () ->
        (* Validate before admission: an invalid request is rejected
           outright and never counts as fed or shed. *)
        match validate_request t request with
        | Error _ as e -> e
        | Ok () -> (
            match envelope_violation t request with
            | Some (color, offered, allowance) ->
                (* Over the admitted envelope: refused whole, like a
                   queue-limit shed (fed/shed keep their conservation
                   law), but answered with the typed admission error. *)
                t.fed <- t.fed + jobs;
                t.shed <- t.shed + jobs;
                t.policed <- t.policed + jobs;
                Probe.add t.shed_jobs jobs;
                Ok (Policed { color; offered; allowance })
            | None -> (
                let buffered = Stepper.buffered_jobs t.stepper in
                t.fed <- t.fed + jobs;
                if buffered + jobs > t.queue_limit then begin
                  (* All-or-nothing shed: a partially admitted request
                     would make the stream depend on admission timing. *)
                  t.shed <- t.shed + jobs;
                  Probe.add t.shed_jobs jobs;
                  Ok
                    (Shed_reply
                       { shed = jobs; buffered; limit = t.queue_limit })
                end
                else
                  match Stepper.feed t.stepper request with
                  | () ->
                      if Array.length t.admitted_by_color > 0 then
                        List.iter
                          (fun (color, count) ->
                            t.admitted_by_color.(color) <-
                              t.admitted_by_color.(color) + count)
                          request;
                      Ok
                        (Accepted
                           { accepted = jobs; buffered = buffered + jobs })
                  | exception Invalid_argument message ->
                      t.fed <- t.fed - jobs;
                      Error message)))

type step_result = {
  sr_round : int;
  sr_pending : int;
  sr_cost : int;
  sr_reconfigs : int;
  sr_drops : int;
  sr_execs : int;
}

let step_summary t =
  let ledger = Stepper.ledger t.stepper in
  {
    sr_round = Stepper.round t.stepper;
    sr_pending = Stepper.pool_pending t.stepper;
    sr_cost = Rrs_sim.Ledger.total_cost ledger;
    sr_reconfigs = Rrs_sim.Ledger.reconfig_count ledger;
    sr_drops = Rrs_sim.Ledger.drop_count ledger;
    sr_execs = Rrs_sim.Ledger.exec_count ledger;
  }

let step ?on_lock_wait_us t ~rounds =
  if rounds < 1 then Error "step: rounds must be >= 1"
  else
    locked ?on_lock_wait_us t (fun () ->
        match
          for _ = 1 to rounds do
            Stepper.step t.stepper
          done
        with
        | () -> Ok (step_summary t)
        | exception Invalid_argument message -> Error message)

type stats = {
  st_round : int;
  st_pending : int;
  st_buffered : int;
  st_fed : int;
  st_accepted : int;
  st_shed : int;
  st_execs : int;
  st_drops : int;
  st_reconfigs : int;
  st_failed : int;
  st_cost : int;
}

let stats ?on_lock_wait_us t =
  locked ?on_lock_wait_us t (fun () ->
      let ledger = Stepper.ledger t.stepper in
      {
        st_round = Stepper.round t.stepper;
        st_pending = Stepper.pool_pending t.stepper;
        st_buffered = Stepper.buffered_jobs t.stepper;
        st_fed = t.fed;
        st_accepted = Stepper.accepted_jobs t.stepper;
        st_shed = t.shed;
        st_execs = Rrs_sim.Ledger.exec_count ledger;
        st_drops = Rrs_sim.Ledger.drop_count ledger;
        st_reconfigs = Rrs_sim.Ledger.reconfig_count ledger;
        st_failed = Rrs_sim.Ledger.failed_reconfig_count ledger;
        st_cost = Rrs_sim.Ledger.total_cost ledger;
      })

(* ---- snapshot: one rrs-sess/1 header line + the embedded rrs-snap/1
   or /2 stepper document. The header declares the body's version
   ([snap_version], absent = 1 for pre-/2 files) so a restore can detect
   a spliced or truncated-and-recombined document before replaying
   it. ---- *)

let ints_literal a = Json.ints (Array.to_list a)

let header_line t =
  (* The declaration group is optional and appended, so pre-admission
     files (and undeclared sessions) keep the historical header
     byte-for-byte; [restore] treats the fields as absent = undeclared. *)
  let decl_suffix =
    match t.declared with
    | None -> ""
    | Some { Wire.d_rates; d_den; d_bursts } ->
        Printf.sprintf
          ",\"rates\":%s,\"rate_den\":%d,\"bursts\":%s,\"admitted\":%s,\
           \"policed\":%d"
          (ints_literal d_rates) d_den (ints_literal d_bursts)
          (ints_literal t.admitted_by_color)
          t.policed
  in
  Printf.sprintf
    "{\"schema\":%s,\"session\":%s,\"policy\":%s,\"queue_limit\":%d,\
     \"fed\":%d,\"shed\":%d,\"snap_version\":%d%s}"
    (Json.escape snapshot_schema) (Json.escape t.name)
    (Json.escape t.policy_key) t.queue_limit t.fed t.shed t.snap_version
    decl_suffix

let snapshot ?on_lock_wait_us t =
  locked ?on_lock_wait_us t (fun () ->
      header_line t ^ "\n" ^ Stepper.snapshot ~version:t.snap_version t.stepper)

(* Atomic, as Stepper.save: protected close so a failure mid-write
   never leaks the channel, and the temp file is unlinked instead of
   left behind when the write or the rename fails. *)
let write_doc doc ~path =
  let tmp = path ^ ".tmp" in
  let channel = open_out tmp in
  try
    Fun.protect
      ~finally:(fun () -> close_out channel)
      (fun () -> output_string channel doc);
    Sys.rename tmp path
  with e ->
    (try Sys.remove tmp with Sys_error _ -> ());
    raise e

let save ?on_lock_wait_us t ~path =
  write_doc (snapshot ?on_lock_wait_us t) ~path

(* Checkpoint-boundary autosave: write the snapshot to [path] once per
   checkpoint epoch (round / checkpoint_every), so a crashed process
   (kill -9, no drain) loses at most the current unsnapshotted window.
   The document is built under the session lock; file I/O runs outside
   it. Returns true when a document was written. No-op for sessions
   without checkpoints (rrs-snap/1). *)
let autosave ?on_lock_wait_us t ~path =
  let doc =
    locked ?on_lock_wait_us t (fun () ->
        let k = Stepper.checkpoint_every t.stepper in
        if k <= 0 then None
        else
          let epoch = Stepper.round t.stepper / k in
          if epoch = t.saved_epoch then None
          else begin
            t.saved_epoch <- epoch;
            Some
              (header_line t ^ "\n"
              ^ Stepper.snapshot ~version:t.snap_version t.stepper)
          end)
  in
  match doc with
  | None -> false
  | Some doc -> (
      match write_doc doc ~path with
      | () -> true
      | exception e ->
          (* Retry at the next boundary instead of skipping the epoch. *)
          locked t (fun () -> t.saved_epoch <- -1);
          raise e)

let close_trace t =
  Option.iter close_out t.trace;
  t.trace <- None

let close ?on_lock_wait_us t =
  locked ?on_lock_wait_us t (fun () ->
      match Stepper.finish t.stepper with
      | result ->
          close_trace t;
          Ok (Rrs_sim.Ledger.total_cost result.Stepper.ledger)
      | exception Invalid_argument message ->
          close_trace t;
          Error message)

(* Release resources without writing a summary (connectionless teardown,
   e.g. server stop without drain). *)
let release t =
  locked t (fun () ->
      if not (Stepper.finished t.stepper) then
        Stepper.abort t.stepper ~reason:"session released";
      close_trace t)

(* The schema string the embedded stepper document actually carries (its
   first line), when one is readable — the version cross-check below;
   unreadable bodies fall through to [Stepper.restore] for a precise
   parse error. *)
let body_schema rest =
  let first =
    match String.index_opt rest '\n' with
    | None -> rest
    | Some i -> String.sub rest 0 i
  in
  match Json.str_field (Json.parse_fields first) "schema" with
  | schema -> Some schema
  | exception Json.Parse_error _ -> None

let restore ?trace_dir ?snap_version ?checkpoint_every text =
  match String.index_opt text '\n' with
  | None -> Error "session snapshot: missing stepper document"
  | Some newline -> (
      let header = String.sub text 0 newline in
      let rest =
        String.sub text (newline + 1) (String.length text - newline - 1)
      in
      match Json.parse_fields header with
      | exception Json.Parse_error message ->
          Error ("session snapshot header: " ^ message)
      | fields -> (
          try
            let schema = Json.str_field fields "schema" in
            if schema <> snapshot_schema then
              Error (Printf.sprintf "unsupported session schema %S" schema)
            else
              let name = Json.str_field fields "session" in
              let policy_key = Json.str_field fields "policy" in
              let queue_limit = Json.int_field fields "queue_limit" in
              let fed = Json.int_field fields "fed" in
              let shed = Json.int_field fields "shed" in
              let opt_ints key =
                match List.assoc_opt key fields with
                | None -> [||]
                | Some (Json.Vints values) -> values
                | Some _ ->
                    raise
                      (Json.Parse_error
                         (Printf.sprintf "field %S: expected int array" key))
              in
              (* Declaration group: absent in pre-admission files. The
                 police flag is the server's to set (it depends on the
                 admission mode of the process doing the restore). *)
              let decl_group, admitted, policed =
                match List.assoc_opt "rate_den" fields with
                | None -> (None, [||], 0)
                | Some (Json.Vint d_den) ->
                    ( Some
                        {
                          Wire.d_rates = opt_ints "rates";
                          d_den;
                          d_bursts = opt_ints "bursts";
                        },
                      opt_ints "admitted",
                      Json.opt_int_field fields "policed" ~default:0 )
                | Some _ ->
                    raise (Json.Parse_error "field \"rate_den\": expected int")
              in
              (* Absent in pre-/2 files, which always embedded /1. *)
              let declared = Json.opt_int_field fields "snap_version" ~default:1 in
              if declared <> 1 && declared <> 2 then
                Error
                  (Printf.sprintf
                     "session snapshot declares unsupported snap_version %d"
                     declared)
              else
                let declared_schema = Stepper.schema_of_version declared in
                match body_schema rest with
                | Some schema when schema <> declared_schema ->
                    Error
                      (Printf.sprintf
                         "session snapshot declares snap_version %d (%s) but \
                          embeds a %S stepper document: spliced or corrupt \
                          snapshot"
                         declared declared_schema schema)
                | _ -> (
                    (* A /2 server override upgrades a /1 document on its
                       next snapshot; a /1 override never downgrades a /2
                       one (its base cannot replay from round 0). *)
                    let snap_version =
                      match snap_version with
                      | None -> declared
                      | Some v -> max v declared
                    in
                    let checkpoint_override =
                      match checkpoint_every with
                      | Some _ as k -> k
                      | None ->
                          if snap_version = 2 && declared = 1 then
                            Some default_checkpoint_every
                          else None
                    in
                    match checkpoint_override with
                    | Some k when k < 0 ->
                        Error
                          (Printf.sprintf "negative checkpoint interval %d" k)
                    | Some k when k > 0 && snap_version = 1 ->
                        Error
                          (Printf.sprintf
                             "checkpoint interval %d requires snapshot \
                              version 2 (rrs-snap/1 cannot compact history)"
                             k)
                    | _ -> (
                        match resolve_policy policy_key with
                        | Error _ as e -> e
                        | Ok policy -> (
                            let trace, sink = open_trace trace_dir name in
                            let probes = Probe.create_registry () in
                            match
                              Stepper.restore ?sink ~probes
                                ?checkpoint_every:checkpoint_override
                                ~label:("session " ^ name) ~policy rest
                            with
                            | Ok stepper ->
                                let t =
                                  make ~name ~policy_key ~queue_limit
                                    ~snap_version ~trace stepper probes
                                in
                                t.fed <- fed;
                                t.shed <- shed;
                                t.declared <- decl_group;
                                t.policed <- policed;
                                (if decl_group <> None then
                                   let colors =
                                     Array.length
                                       (Stepper.config stepper).Stepper.bounds
                                   in
                                   t.admitted_by_color <-
                                     (if Array.length admitted = colors then
                                        admitted
                                      else Array.make colors 0));
                                Probe.add t.shed_jobs shed;
                                Ok t
                            | Error _ as e ->
                                Option.iter close_out trace;
                                e)))
          with Json.Parse_error message ->
            Error ("session snapshot header: " ^ message)))

let load ?trace_dir ?snap_version ?checkpoint_every ~path () =
  match In_channel.with_open_bin path In_channel.input_all with
  | text -> restore ?trace_dir ?snap_version ?checkpoint_every text
  | exception Sys_error message -> Error message
