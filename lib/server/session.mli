(** One named scheduler session: a {!Rrs_sim.Stepper} plus admission
    control and a mutex.

    Every operation locks the session, so concurrent worker domains can
    serve frames for the same session safely (operations serialize; the
    stepper itself is single-threaded state). The optional
    [on_lock_wait_us] callback on each operation observes how long this
    caller spent blocked on the session mutex, in µs — the serving
    layer's [lock_wait_us] series; omitted, the lock is taken bare.

    {b Admission control}: [feed] is bounded by [queue_limit] jobs of
    fed-but-unstepped backlog. A feed that would exceed it is {e shed} —
    refused whole, counted in the session's [shed] total and the
    [shed_jobs] probe, and answered explicitly; the session itself is
    never harmed. Conservation, checked by the E18 harness:
    [fed = accepted + shed] and
    [accepted = execs + drops + pool pending + buffered].

    {b Snapshot} (schema [rrs-sess/1]): one header line carrying the
    session name, policy key, queue limit, fed/shed totals and the
    embedded stepper document's version ([snap_version]: 1 or 2,
    absent = 1 in pre-/2 files), followed by that [rrs-snap/1] or [/2]
    document. [restore] cross-checks the declared version against the
    schema the body actually carries — a mismatch is a spliced or
    corrupt file, rejected before any replay — then rebuilds the
    stepper by deterministic replay (see {!Rrs_sim.Stepper}). Sessions
    default to [rrs-snap/2] with a checkpoint every
    {!default_checkpoint_every} rounds, which bounds snapshot size and
    restore time by the interval instead of the session's lifetime. *)

val snapshot_schema : string
(** ["rrs-sess/1"]. *)

val default_queue_limit : int
(** Backlog bound used when [create]'s [queue_limit] is 0 or absent. *)

val default_checkpoint_every : int
(** Checkpoint interval of a version-2 session when [checkpoint_every]
    is absent. *)

type t

(** [create ~name ~policy config] opens a session at round 0. [policy]
    is a registry key ({!Rrs_core.Policies}); [trace_dir], when given,
    streams the session's [rrs-events/2] document to
    [<trace_dir>/<name>.events.jsonl]. [snap_version] (default 2)
    selects the snapshot schema; [checkpoint_every] (default
    {!default_checkpoint_every} under version 2, 0 under version 1)
    the stepper's checkpoint interval. Errors (unknown policy, invalid
    config, unknown version, a positive interval under version 1) are
    returned, never raised. *)
val create :
  name:string ->
  policy:string ->
  ?queue_limit:int ->
  ?snap_version:int ->
  ?checkpoint_every:int ->
  ?trace_dir:string ->
  Rrs_sim.Stepper.config ->
  (t, string) result

val name : t -> string
val policy_key : t -> string
val queue_limit : t -> int

(** The stepper configuration the session runs ([n], [delta], bounds,
    [speed], horizon) — the admission gate checks re-declarations
    against it. *)
val config : t -> Rrs_sim.Stepper.config

val num_colors : t -> int

(** The stepper snapshot version this session writes (1 or 2). *)
val snap_version : t -> int

(** The stepper's checkpoint interval (0 = never). *)
val checkpoint_every : t -> int

(** {2 Admission declaration}

    A session may carry a declared arrival envelope ({!Wire.decl}):
    installed at [open] (or re-declared by a later [feed]) when the
    server runs with [--admission]. With [police] set (the server's
    enforce mode) every [feed] is checked against the cumulative
    envelope [burst_l + floor ((round + 1) * rate_l / den)] — exactly
    what a spec-conformant generator has produced through the current
    round, so honest traffic is never policed — and an over-envelope
    feed is refused whole ({!Policed}), counted like a shed. The
    declaration, the envelope cursor and the policed total persist in
    the session snapshot header (optional fields; pre-admission
    documents restore as undeclared). *)

(** Install or replace the declared envelope. The caller validates the
    declaration's shape ({!Admission.validate_decl}) first. *)
val declare :
  ?on_lock_wait_us:(int -> unit) -> t -> decl:Wire.decl -> police:bool -> unit

val declaration : t -> Wire.decl option

(** Jobs refused by the envelope so far (a subset of the shed total). *)
val policed : t -> int

type feed_result =
  | Accepted of { accepted : int; buffered : int }
  | Shed_reply of { shed : int; buffered : int; limit : int }
  | Policed of { color : int; offered : int; allowance : int }
      (** The feed would exceed the declared envelope for [color]:
          cumulative [offered] jobs against an [allowance] through the
          current round. Refused whole; counted in [fed]/[shed] (and
          the policed total), never enqueued. *)

(** [feed t ~colors ~counts] offers one request. [Error] means the
    request was rejected outright (mismatched arrays, unknown color,
    negative count) and does not count as fed. *)
val feed :
  ?on_lock_wait_us:(int -> unit) ->
  t ->
  colors:int array ->
  counts:int array ->
  (feed_result, string) result

type step_result = {
  sr_round : int;
  sr_pending : int;
  sr_cost : int;
  sr_reconfigs : int;
  sr_drops : int;
  sr_execs : int;
}

val step :
  ?on_lock_wait_us:(int -> unit) -> t -> rounds:int ->
  (step_result, string) result

type stats = {
  st_round : int;
  st_pending : int;
  st_buffered : int;
  st_fed : int;
  st_accepted : int;
  st_shed : int;
  st_execs : int;
  st_drops : int;
  st_reconfigs : int;
  st_failed : int;
  st_cost : int;
}

val stats : ?on_lock_wait_us:(int -> unit) -> t -> stats

(** The session as an [rrs-sess/1] document (embedded stepper schema per
    {!snap_version}). *)
val snapshot : ?on_lock_wait_us:(int -> unit) -> t -> string

(** Atomic write of {!snapshot} (temp + rename); on failure the channel
    is closed and the temp file unlinked before the exception
    propagates. *)
val save : ?on_lock_wait_us:(int -> unit) -> t -> path:string -> unit

(** Checkpoint-boundary autosave: {!save} to [path] at most once per
    checkpoint epoch ([round / checkpoint_every]), so a crashed process
    loses at most the unsnapshotted window. True when a document was
    written; always false for /1 sessions (no checkpoints). A failed
    write re-arms the epoch so the next boundary retries. *)
val autosave : ?on_lock_wait_us:(int -> unit) -> t -> path:string -> bool

(** Finish the stepper (writes the stream summary), close the trace,
    return the final total cost. *)
val close : ?on_lock_wait_us:(int -> unit) -> t -> (int, string) result

(** Tear down without a summary (the trace ends with an [aborted]
    record): used when the server stops without drain. *)
val release : t -> unit

(** Rebuild a session from an [rrs-sess/1] document. Rejects a document
    whose declared [snap_version] disagrees with the schema the embedded
    stepper document carries. [snap_version], when given, is the
    server's preference for {e future} snapshots: the session adopts
    [max declared preference] — an upgrade re-snapshots a /1 document as
    /2 (gaining a {!default_checkpoint_every} interval unless
    [checkpoint_every] overrides it), while a /2 document is never
    downgraded (its checkpoint base cannot replay from round 0). *)
val restore :
  ?trace_dir:string ->
  ?snap_version:int ->
  ?checkpoint_every:int ->
  string ->
  (t, string) result

(** {!restore} from a file. *)
val load :
  ?trace_dir:string ->
  ?snap_version:int ->
  ?checkpoint_every:int ->
  path:string ->
  unit ->
  (t, string) result
