(* Shard-set supervisor: spawn N shard processes, reap exits, restart
   crashed shards with exponential backoff. Works with any argv (the
   CLI builds [rrs serve ...] per shard; the E21 bench builds its own
   child mode), so it contains no serving logic at all.

   Restart policy: every abnormal exit schedules a respawn after
   [base_backoff_ms * 2^consecutive_restarts] (capped at
   [max_backoff_ms]); a child that stayed up at least
   [stable_after_s] resets its streak. The poll loop never blocks in
   waitpid, so one flapping shard cannot delay monitoring the rest. *)

type spec = {
  sp_label : string;
  sp_argv : string array; (* argv.(0) is the program *)
}

type child = {
  ch_spec : spec;
  mutable ch_pid : int; (* 0 = not running *)
  mutable ch_started_at : float;
  mutable ch_streak : int; (* consecutive abnormal exits *)
  mutable ch_next_start : float; (* backoff gate, absolute *)
  mutable ch_restarts : int; (* total restarts (not first spawns) *)
}

type t = {
  children : child array;
  base_backoff_ms : int;
  max_backoff_ms : int;
  stable_after_s : float;
  on_spawn : label:string -> pid:int -> unit;
  mutable stopping : bool;
}

let spawn_child t child =
  let argv = child.ch_spec.sp_argv in
  let pid = Unix.create_process argv.(0) argv Unix.stdin Unix.stdout Unix.stderr in
  child.ch_pid <- pid;
  child.ch_started_at <- Unix.gettimeofday ();
  Slog.info ~event:"shard_spawned"
    [ ("shard", child.ch_spec.sp_label); ("pid", Slog.int pid) ];
  t.on_spawn ~label:child.ch_spec.sp_label ~pid

let backoff_s t streak =
  let ms = t.base_backoff_ms * (1 lsl min streak 16) in
  float_of_int (min ms t.max_backoff_ms) /. 1000.

(* Signal numbers here are OCaml's portable (negative) encodings. *)
let describe_signal signal =
  if signal = Sys.sigkill then "SIGKILL"
  else if signal = Sys.sigterm then "SIGTERM"
  else if signal = Sys.sigint then "SIGINT"
  else if signal = Sys.sigsegv then "SIGSEGV"
  else if signal = Sys.sigabrt then "SIGABRT"
  else string_of_int signal

let describe_status = function
  | Unix.WEXITED code -> Printf.sprintf "exited %d" code
  | Unix.WSIGNALED signal -> "killed by " ^ describe_signal signal
  | Unix.WSTOPPED signal -> "stopped by " ^ describe_signal signal

(* Reap exits and (re)start due children. Non-blocking; call it from a
   short-period loop ([run]) or a test harness. *)
let poll t =
  let now = Unix.gettimeofday () in
  Array.iter
    (fun child ->
      if child.ch_pid > 0 then begin
        match Unix.waitpid [ Unix.WNOHANG ] child.ch_pid with
        | 0, _ -> () (* still running *)
        | _, status ->
            let uptime = now -. child.ch_started_at in
            if uptime >= t.stable_after_s then child.ch_streak <- 0;
            let delay = backoff_s t child.ch_streak in
            child.ch_pid <- 0;
            child.ch_streak <- child.ch_streak + 1;
            child.ch_next_start <- now +. delay;
            if not t.stopping then
              Slog.warn ~event:"shard_exited"
                [
                  ("shard", child.ch_spec.sp_label);
                  ("status", describe_status status);
                  ("restart_in_ms",
                   Slog.int (int_of_float (delay *. 1000.)));
                ]
        | exception Unix.Unix_error (Unix.ECHILD, _, _) ->
            (* Someone else reaped it; treat as an exit. *)
            child.ch_pid <- 0;
            child.ch_next_start <- now +. backoff_s t child.ch_streak;
            child.ch_streak <- child.ch_streak + 1
      end)
    t.children;
  if not t.stopping then
    Array.iter
      (fun child ->
        if child.ch_pid = 0 && now >= child.ch_next_start then begin
          (* [start] spawned everyone once, so any spawn here is a
             restart. *)
          if child.ch_started_at > 0. then
            child.ch_restarts <- child.ch_restarts + 1;
          spawn_child t child
        end)
      t.children

let start ?(base_backoff_ms = 100) ?(max_backoff_ms = 5_000)
    ?(stable_after_s = 10.) ?(on_spawn = fun ~label:_ ~pid:_ -> ()) specs =
  if specs = [] then failwith "shard-set: no shards";
  let t =
    {
      children =
        Array.of_list
          (List.map
             (fun spec ->
               {
                 ch_spec = spec;
                 ch_pid = 0;
                 ch_started_at = 0.;
                 ch_streak = 0;
                 ch_next_start = 0.;
                 ch_restarts = 0;
               })
             specs);
      base_backoff_ms;
      max_backoff_ms;
      stable_after_s;
      on_spawn;
      stopping = false;
    }
  in
  Array.iter (fun child -> spawn_child t child) t.children;
  t

let pids t =
  Array.to_list
    (Array.map (fun c -> (c.ch_spec.sp_label, c.ch_pid)) t.children)

let restarts t =
  Array.fold_left (fun acc c -> acc + c.ch_restarts) 0 t.children

let run t ~stop =
  while not (stop ()) do
    poll t;
    Unix.sleepf 0.05
  done

(* SIGTERM everyone (graceful drain in the shard), give them a grace
   window, SIGKILL stragglers, reap everything. *)
let stop ?(grace_s = 10.) t =
  t.stopping <- true;
  Array.iter
    (fun child ->
      if child.ch_pid > 0 then
        try Unix.kill child.ch_pid Sys.sigterm with Unix.Unix_error _ -> ())
    t.children;
  let deadline = Unix.gettimeofday () +. grace_s in
  let rec wait_all () =
    let live =
      Array.exists
        (fun child ->
          if child.ch_pid = 0 then false
          else
            match Unix.waitpid [ Unix.WNOHANG ] child.ch_pid with
            | 0, _ -> true
            | _, _ ->
                child.ch_pid <- 0;
                false
            | exception Unix.Unix_error (Unix.ECHILD, _, _) ->
                child.ch_pid <- 0;
                false)
        t.children
    in
    if live then
      if Unix.gettimeofday () >= deadline then
        Array.iter
          (fun child ->
            if child.ch_pid > 0 then begin
              (try Unix.kill child.ch_pid Sys.sigkill
               with Unix.Unix_error _ -> ());
              (try ignore (Unix.waitpid [] child.ch_pid)
               with Unix.Unix_error _ -> ());
              child.ch_pid <- 0
            end)
          t.children
      else begin
        Unix.sleepf 0.05;
        wait_all ()
      end
  in
  wait_all ()
