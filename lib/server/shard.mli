(** Shard-set supervisor: spawn N child processes from argv specs,
    reap exits, restart crashed children with exponential backoff
    ([base_backoff_ms * 2^streak], capped at [max_backoff_ms]; a child
    up for [stable_after_s] resets its streak). Contains no serving
    logic — the CLI builds [rrs serve ...] argvs, the E21 bench builds
    its own child mode.

    Single-threaded by design: call {!poll} (or {!run}) from one
    thread. [on_spawn] fires after every (re)spawn — the CLI writes
    pidfiles there so a failover harness can kill a specific shard. *)

type spec = {
  sp_label : string;
  sp_argv : string array;  (** [sp_argv.(0)] is the program to exec *)
}

type t

(** Spawns every child once before returning.
    @raise Failure on an empty spec list. *)
val start :
  ?base_backoff_ms:int ->
  ?max_backoff_ms:int ->
  ?stable_after_s:float ->
  ?on_spawn:(label:string -> pid:int -> unit) ->
  spec list ->
  t

val poll : t -> unit
(** Reap exits, schedule backoffs, respawn due children. Non-blocking. *)

val run : t -> stop:(unit -> bool) -> unit
(** {!poll} every 50ms until [stop ()] is true. *)

val pids : t -> (string * int) list
(** [(label, pid)] per child; pid 0 while a child is between restarts. *)

val restarts : t -> int
(** Total respawns performed after the initial spawns. *)

val stop : ?grace_s:float -> t -> unit
(** SIGTERM every child (graceful drain), wait up to [grace_s]
    (default 10s), SIGKILL stragglers, reap everything. *)
