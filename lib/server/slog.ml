type level = Debug | Info | Warn | Error

let int_of_level = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

let level_name = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let level_of_string s =
  match String.lowercase_ascii s with
  | "debug" -> Some Debug
  | "info" -> Some Info
  | "warn" | "warning" -> Some Warn
  | "error" -> Some Error
  | _ -> None

(* Default [Warn] keeps library consumers (tests, benches) quiet;
   [rrs serve] raises it to [Info] from --log-level. *)
let threshold = Atomic.make (int_of_level Warn)
let set_level level = Atomic.set threshold (int_of_level level)

let level () =
  match Atomic.get threshold with
  | 0 -> Debug
  | 1 -> Info
  | 2 -> Warn
  | _ -> Error

let enabled l = int_of_level l >= Atomic.get threshold

let needs_quoting value =
  value = ""
  || String.exists
       (fun c -> c = ' ' || c = '"' || c = '=' || c < ' ' || c = '\x7f')
       value

let quote value =
  if not (needs_quoting value) then value
  else begin
    let buf = Buffer.create (String.length value + 8) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when c < ' ' || c = '\x7f' ->
            Buffer.add_string buf (Printf.sprintf "\\x%02x" (Char.code c))
        | c -> Buffer.add_char buf c)
      value;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end

(* One stderr write per record: lines from concurrent domains interleave
   whole, never mid-field. *)
let emit level ~event fields =
  if enabled level then begin
    let buf = Buffer.create 128 in
    Buffer.add_string buf
      (Printf.sprintf "ts=%.6f level=%s event=%s" (Rrs_obs.Clock.now_s ())
         (level_name level) (quote event));
    List.iter
      (fun (key, value) ->
        Buffer.add_char buf ' ';
        Buffer.add_string buf key;
        Buffer.add_char buf '=';
        Buffer.add_string buf (quote value))
      fields;
    Buffer.add_char buf '\n';
    output_string stderr (Buffer.contents buf);
    flush stderr
  end

let debug ~event fields = emit Debug ~event fields
let info ~event fields = emit Info ~event fields
let warn ~event fields = emit Warn ~event fields
let error ~event fields = emit Error ~event fields
let int n = string_of_int n
