(** Structured single-line logging for the serving layer.

    Every record is one [key=value] line on stderr:

    {v ts=12.345678 level=info event=accept conn=7 addr=127.0.0.1:9100 v}

    [ts] is the monotonic clock ({!Rrs_obs.Clock.now_s}) — stable under
    wall-clock jumps and directly comparable with span timings. Values
    containing spaces, quotes, [=] or control characters are quoted and
    escaped. Each record is a single [stderr] write, so lines from
    concurrent domains interleave whole.

    The threshold is a process-wide atomic, [Warn] by default so that
    library consumers (tests, benches) stay quiet; [rrs serve] raises it
    from [--log-level]. *)

type level = Debug | Info | Warn | Error

val level_name : level -> string

(** Parse ["debug"], ["info"], ["warn"]/["warning"], ["error"]
    (case-insensitive). *)
val level_of_string : string -> level option

val set_level : level -> unit
val level : unit -> level

(** [enabled l] is true when a record at level [l] would be emitted. *)
val enabled : level -> bool

val debug : event:string -> (string * string) list -> unit
val info : event:string -> (string * string) list -> unit
val warn : event:string -> (string * string) list -> unit
val error : event:string -> (string * string) list -> unit

(** Shorthand for [string_of_int], for field lists. *)
val int : int -> string
