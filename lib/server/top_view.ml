(* Rendering for [rrs top]. See top_view.mli. *)

module Json = Rrs_sim.Event_sink.Json

type sample = { at : float; fields : (string * Json.value) list }

let field s name = Json.opt_int_field s.fields name ~default:0

(* Counters live in the server process: a restart resets every total to
   zero, so a monotone counter moving backwards between two polls means
   the polls straddle different server lives. [uptime_s] going backwards
   is the direct signal; [requests_total] shrinking catches a restart
   that outlived the previous sample's uptime. *)
let restarted ~previous sample =
  field sample "uptime_s" < field previous "uptime_s"
  || field sample "requests_total" < field previous "requests_total"

let rate ~previous sample name =
  match previous with
  | Some prev when sample.at > prev.at && not (restarted ~previous:prev sample)
    ->
      (* Per-counter clamp: even within one server life a merged
         multi-worker read is not a snapshot, so tiny negative deltas
         are possible; a rate is never negative. *)
      let delta = max 0 (field sample name - field prev name) in
      Printf.sprintf "%7.1f/s" (float_of_int delta /. (sample.at -. prev.at))
  | _ -> "      -/s"

let render ~previous sample ~slow =
  let g = field sample in
  let buf = Buffer.create 2048 in
  let line format =
    Printf.ksprintf
      (fun s ->
        Buffer.add_string buf s;
        Buffer.add_char buf '\n')
      format
  in
  let rate = rate ~previous sample in
  let restart_note =
    match previous with
    | Some prev when restarted ~previous:prev sample -> "  [server restarted]"
    | _ -> ""
  in
  line "rrs top  uptime %ds  workers %d  sessions %d (rounds %d, shed %d)%s"
    (g "uptime_s") (g "workers") (g "sessions_open") (g "sessions_rounds")
    (g "sessions_shed_jobs") restart_note;
  line "requests %d %s  errors %d  malformed %d  slow %d (>= %dus)"
    (g "requests_total") (rate "requests_total") (g "errors_total")
    (g "malformed_total") (g "slow_total") (g "slow_threshold_us");
  line "rounds   %d %s  shed jobs %d  bytes in p50 %d  out p50 %d"
    (g "rounds_total") (rate "rounds_total") (g "shed_jobs_total")
    (g "bytes_in_p50") (g "bytes_out_p50");
  line "lock wait p50 %dus p99 %dus  step p50 %dus p99 %dus"
    (g "lock_wait_us_p50") (g "lock_wait_us_p99") (g "step_us_p50")
    (g "step_us_p99");
  (* The admission gauges exist only when the server runs a gate. *)
  if List.mem_assoc "admission_supply_mjpr" sample.fields then
    line
      "admission supply %d mj/r  demand %d  headroom %d  sessions %d  \
       rejected %d  policed %d jobs"
      (g "admission_supply_mjpr")
      (g "admission_demand_mjpr")
      (g "admission_headroom_mjpr")
      (g "admission_sessions")
      (g "admission_rejected_total")
      (g "admission_policed_jobs");
  line "%-10s %10s %8s %8s %8s %8s" "type" "count" "p50us" "p90us" "p99us"
    "maxus";
  Array.iter
    (fun kind ->
      let n = g ("requests_" ^ kind) in
      if n > 0 then
        let h key = g ("req_latency_us_" ^ kind ^ "_" ^ key) in
        line "%-10s %10d %8d %8d %8d %8d" kind n (h "p50") (h "p90") (h "p99")
          (h "max"))
    Metrics.kinds;
  if slow <> [] then begin
    line "slow requests (newest first):";
    List.iter
      (fun entry ->
        match Json.parse_fields entry with
        | fields ->
            let f name = Json.opt_int_field fields name ~default:0 in
            line
              "  +%6dms %-8s %-12s wire%d %6dus (read %d lock %d handle %d \
               write %d) %dB>%dB%s"
              (f "at_us" / 1000)
              (try Json.str_field fields "type" with Json.Parse_error _ -> "?")
              (try Json.str_field fields "session"
               with Json.Parse_error _ -> "")
              (f "wire") (f "latency_us") (f "read_us") (f "lock_us")
              (f "handle_us") (f "write_us") (f "bytes_in") (f "bytes_out")
              (if f "error" = 1 then " ERROR" else "")
        | exception Json.Parse_error _ -> line "  %s" entry)
      slow
  end;
  Buffer.contents buf
