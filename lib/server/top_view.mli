(** The [rrs top] display: one render of a polled metrics document
    against the previous poll.

    Rates are per-second deltas between consecutive polls of monotone
    [_total] counters. Two hazards are handled here rather than in the
    CLI loop:

    - {b restart}: a server restart resets every counter, so a naive
      delta goes hugely negative. A poll whose [uptime_s] or
      [requests_total] moved backwards is flagged ({!restarted}): its
      rates render as ["-/s"] (no baseline) and the header carries a
      [[server restarted]] marker. The next poll pair is consistent
      again and rates resume.
    - {b skew}: merged multi-worker counters are not read atomically,
      so deltas within one server life can be slightly negative; they
      clamp to zero. *)

type sample = {
  at : float;  (** client-side poll time, seconds *)
  fields : (string * Rrs_sim.Event_sink.Json.value) list;
      (** the parsed metrics document *)
}

(** Did the server restart between [previous] and this sample? *)
val restarted : previous:sample -> sample -> bool

(** [rate ~previous sample name]: the counter's per-second rate as a
    padded display string; ["-/s"] without a usable baseline. *)
val rate : previous:sample option -> sample -> string -> string

(** The full display: header, rates, admission line (when the server
    exposes the gate gauges), per-kind latency table, slow log. *)
val render : previous:sample option -> sample -> slow:string list -> string
