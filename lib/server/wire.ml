module Json = Rrs_sim.Event_sink.Json

let version = "rrs-wire/1"

(* One frame must fit one line; longer payloads (snapshot docs) are close
   to but far under this in practice — raise deliberately if they grow. *)
let max_frame = 4 * 1024 * 1024

type frame =
  (* requests *)
  | Hello of { client_version : string }
  | Open of {
      session : string;
      policy : string;
      delta : int;
      bounds : int array;
      n : int;
      speed : int;
      horizon : int;
      queue_limit : int; (* 0 = server default *)
    }
  | Feed of { session : string; colors : int array; counts : int array }
  | Step of { session : string; rounds : int }
  | Stats of { session : string }
  | Snapshot of { session : string; path : string option }
  | Close of { session : string }
  (* replies *)
  | Hello_ok of { server_version : string }
  | Opened of { session : string; round : int }
  | Fed of { session : string; accepted : int; buffered : int }
  | Shed of { session : string; shed : int; buffered : int; limit : int }
  | Stepped of {
      session : string;
      round : int;
      pending : int;
      cost : int;
      reconfigs : int;
      drops : int;
      execs : int;
    }
  | Stats_ok of {
      session : string;
      round : int;
      pending : int; (* in the pool *)
      buffered : int; (* fed, not yet stepped *)
      fed : int; (* attempted: accepted + shed *)
      accepted : int;
      shed : int;
      execs : int;
      drops : int;
      reconfigs : int;
      failed : int;
      cost : int;
    }
  | Snapshotted of { session : string; path : string option; doc : string option }
  | Closed of { session : string; cost : int }
  | Error_frame of { message : string }

(* ---- encoding ---- *)

let ints array =
  let buffer = Buffer.create 32 in
  Buffer.add_char buffer '[';
  Array.iteri
    (fun i v ->
      if i > 0 then Buffer.add_char buffer ',';
      Buffer.add_string buffer (string_of_int v))
    array;
  Buffer.add_char buffer ']';
  Buffer.contents buffer

let encode = function
  | Hello { client_version } ->
      Printf.sprintf "{\"type\":\"hello\",\"version\":%s}"
        (Json.escape client_version)
  | Open { session; policy; delta; bounds; n; speed; horizon; queue_limit } ->
      Printf.sprintf
        "{\"type\":\"open\",\"session\":%s,\"policy\":%s,\"delta\":%d,\
         \"bounds\":%s,\"n\":%d,\"speed\":%d,\"horizon\":%d,\
         \"queue_limit\":%d}"
        (Json.escape session) (Json.escape policy) delta (ints bounds) n speed
        horizon queue_limit
  | Feed { session; colors; counts } ->
      Printf.sprintf
        "{\"type\":\"feed\",\"session\":%s,\"colors\":%s,\"counts\":%s}"
        (Json.escape session) (ints colors) (ints counts)
  | Step { session; rounds } ->
      Printf.sprintf "{\"type\":\"step\",\"session\":%s,\"rounds\":%d}"
        (Json.escape session) rounds
  | Stats { session } ->
      Printf.sprintf "{\"type\":\"stats\",\"session\":%s}"
        (Json.escape session)
  | Snapshot { session; path } ->
      Printf.sprintf "{\"type\":\"snapshot\",\"session\":%s%s}"
        (Json.escape session)
        (match path with
        | None -> ""
        | Some p -> Printf.sprintf ",\"path\":%s" (Json.escape p))
  | Close { session } ->
      Printf.sprintf "{\"type\":\"close\",\"session\":%s}"
        (Json.escape session)
  | Hello_ok { server_version } ->
      Printf.sprintf "{\"type\":\"hello_ok\",\"version\":%s}"
        (Json.escape server_version)
  | Opened { session; round } ->
      Printf.sprintf "{\"type\":\"opened\",\"session\":%s,\"round\":%d}"
        (Json.escape session) round
  | Fed { session; accepted; buffered } ->
      Printf.sprintf
        "{\"type\":\"fed\",\"session\":%s,\"accepted\":%d,\"buffered\":%d}"
        (Json.escape session) accepted buffered
  | Shed { session; shed; buffered; limit } ->
      Printf.sprintf
        "{\"type\":\"shed\",\"session\":%s,\"shed\":%d,\"buffered\":%d,\
         \"limit\":%d}"
        (Json.escape session) shed buffered limit
  | Stepped { session; round; pending; cost; reconfigs; drops; execs } ->
      Printf.sprintf
        "{\"type\":\"stepped\",\"session\":%s,\"round\":%d,\"pending\":%d,\
         \"cost\":%d,\"reconfigs\":%d,\"drops\":%d,\"execs\":%d}"
        (Json.escape session) round pending cost reconfigs drops execs
  | Stats_ok
      { session; round; pending; buffered; fed; accepted; shed; execs; drops;
        reconfigs; failed; cost } ->
      Printf.sprintf
        "{\"type\":\"stats_ok\",\"session\":%s,\"round\":%d,\"pending\":%d,\
         \"buffered\":%d,\"fed\":%d,\"accepted\":%d,\"shed\":%d,\
         \"execs\":%d,\"drops\":%d,\"reconfigs\":%d,\"failed\":%d,\
         \"cost\":%d}"
        (Json.escape session) round pending buffered fed accepted shed execs
        drops reconfigs failed cost
  | Snapshotted { session; path; doc } ->
      Printf.sprintf "{\"type\":\"snapshotted\",\"session\":%s%s%s}"
        (Json.escape session)
        (match path with
        | None -> ""
        | Some p -> Printf.sprintf ",\"path\":%s" (Json.escape p))
        (match doc with
        | None -> ""
        | Some d -> Printf.sprintf ",\"doc\":%s" (Json.escape d))
  | Closed { session; cost } ->
      Printf.sprintf "{\"type\":\"closed\",\"session\":%s,\"cost\":%d}"
        (Json.escape session) cost
  | Error_frame { message } ->
      Printf.sprintf "{\"type\":\"error\",\"message\":%s}"
        (Json.escape message)

(* ---- decoding ---- *)

let opt_str_field fields key =
  match List.assoc_opt key fields with
  | None -> None
  | Some (Json.Vstr value) -> Some value
  | Some _ ->
      raise (Json.Parse_error (Printf.sprintf "field %S: expected string" key))

let decode text =
  match Json.parse_fields text with
  | exception Json.Parse_error message -> Error message
  | fields -> (
      try
        let session () = Json.str_field fields "session" in
        match Json.str_field fields "type" with
        | "hello" ->
            Ok (Hello { client_version = Json.str_field fields "version" })
        | "open" ->
            Ok
              (Open
                 {
                   session = session ();
                   policy = Json.str_field fields "policy";
                   delta = Json.int_field fields "delta";
                   bounds = Json.ints_field fields "bounds";
                   n = Json.int_field fields "n";
                   speed = Json.opt_int_field fields "speed" ~default:1;
                   horizon = Json.opt_int_field fields "horizon" ~default:0;
                   queue_limit =
                     Json.opt_int_field fields "queue_limit" ~default:0;
                 })
        | "feed" ->
            Ok
              (Feed
                 {
                   session = session ();
                   colors = Json.ints_field fields "colors";
                   counts = Json.ints_field fields "counts";
                 })
        | "step" ->
            Ok
              (Step
                 {
                   session = session ();
                   rounds = Json.opt_int_field fields "rounds" ~default:1;
                 })
        | "stats" -> Ok (Stats { session = session () })
        | "snapshot" ->
            Ok
              (Snapshot
                 { session = session (); path = opt_str_field fields "path" })
        | "close" -> Ok (Close { session = session () })
        | "hello_ok" ->
            Ok (Hello_ok { server_version = Json.str_field fields "version" })
        | "opened" ->
            Ok
              (Opened
                 { session = session (); round = Json.int_field fields "round" })
        | "fed" ->
            Ok
              (Fed
                 {
                   session = session ();
                   accepted = Json.int_field fields "accepted";
                   buffered = Json.int_field fields "buffered";
                 })
        | "shed" ->
            Ok
              (Shed
                 {
                   session = session ();
                   shed = Json.int_field fields "shed";
                   buffered = Json.int_field fields "buffered";
                   limit = Json.int_field fields "limit";
                 })
        | "stepped" ->
            Ok
              (Stepped
                 {
                   session = session ();
                   round = Json.int_field fields "round";
                   pending = Json.int_field fields "pending";
                   cost = Json.int_field fields "cost";
                   reconfigs = Json.int_field fields "reconfigs";
                   drops = Json.int_field fields "drops";
                   execs = Json.int_field fields "execs";
                 })
        | "stats_ok" ->
            Ok
              (Stats_ok
                 {
                   session = session ();
                   round = Json.int_field fields "round";
                   pending = Json.int_field fields "pending";
                   buffered = Json.int_field fields "buffered";
                   fed = Json.int_field fields "fed";
                   accepted = Json.int_field fields "accepted";
                   shed = Json.int_field fields "shed";
                   execs = Json.int_field fields "execs";
                   drops = Json.int_field fields "drops";
                   reconfigs = Json.int_field fields "reconfigs";
                   failed = Json.int_field fields "failed";
                   cost = Json.int_field fields "cost";
                 })
        | "snapshotted" ->
            Ok
              (Snapshotted
                 {
                   session = session ();
                   path = opt_str_field fields "path";
                   doc = opt_str_field fields "doc";
                 })
        | "closed" ->
            Ok
              (Closed
                 { session = session (); cost = Json.int_field fields "cost" })
        | "error" ->
            Ok (Error_frame { message = Json.str_field fields "message" })
        | other -> Error (Printf.sprintf "unknown frame type %S" other)
      with Json.Parse_error message -> Error message)

(* ---- framing: "<byte length of JSON> <JSON>\n" ----

   Length-delimited but still line-synced: a reader that lost the length
   can resynchronize at the next newline, which is what lets the server
   answer [error] to garbage and keep the connection alive instead of
   tearing it down. *)

let frame_line json = Printf.sprintf "%d %s\n" (String.length json) json

let write channel frame =
  output_string channel (frame_line (encode frame));
  flush channel

type read_result = Frame of frame | Malformed of string | Eof

(* Read one '\n'-terminated line of at most [max_frame] bytes; an
   over-long line is discarded (bounded memory) and reported malformed. *)
let read_line_bounded channel =
  let buffer = Buffer.create 256 in
  let rec go () =
    match input_char channel with
    | exception End_of_file ->
        if Buffer.length buffer = 0 then None else Some (Buffer.contents buffer)
    | '\n' -> Some (Buffer.contents buffer)
    | c ->
        if Buffer.length buffer >= max_frame then begin
          (* Discard the rest of the line, keeping memory bounded. *)
          (try
             while input_char channel <> '\n' do
               ()
             done
           with End_of_file -> ());
          Some (Buffer.contents buffer ^ "...")
        end
        else begin
          Buffer.add_char buffer c;
          go ()
        end
  in
  go ()

let read channel =
  match read_line_bounded channel with
  | None -> Eof
  | Some line -> (
      if String.length line > max_frame then
        Malformed (Printf.sprintf "frame longer than %d bytes" max_frame)
      else
        match String.index_opt line ' ' with
        | None -> Malformed "missing length prefix"
        | Some space -> (
            let prefix = String.sub line 0 space in
            let body =
              String.sub line (space + 1) (String.length line - space - 1)
            in
            match int_of_string_opt prefix with
            | None ->
                Malformed (Printf.sprintf "bad length prefix %S" prefix)
            | Some length when length <> String.length body ->
                Malformed
                  (Printf.sprintf
                     "length prefix %d does not match body length %d" length
                     (String.length body))
            | Some _ -> (
                match decode body with
                | Ok frame -> Frame frame
                | Error message -> Malformed message)))
