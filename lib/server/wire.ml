module Json = Rrs_sim.Event_sink.Json

let version = "rrs-wire/1"
let version2 = "rrs-wire/2"

(* One frame must fit one line; longer payloads (snapshot docs) are close
   to but far under this in practice — raise deliberately if they grow. *)
let max_frame = 4 * 1024 * 1024

type framing = V1 | V2

(* A declared workload: per-color token-bucket rate numerators over one
   shared denominator, plus optional per-color bursts ([||] = all
   zero). Optional on [Open] (admission) and [Feed] (re-declaration) in
   both framings: /1 encodes three extra JSON fields old servers
   ignore, /2 appends a presence-marked group old frames simply lack
   (an undeclared frame is byte-identical to the pre-declaration
   encoding). *)
type decl = { d_rates : int array; d_den : int; d_bursts : int array }

type frame =
  (* requests *)
  | Hello of { client_version : string }
  | Open of {
      session : string;
      policy : string;
      delta : int;
      bounds : int array;
      n : int;
      speed : int;
      horizon : int;
      queue_limit : int; (* 0 = server default *)
      decl : decl option;
    }
  | Feed of {
      session : string;
      colors : int array;
      counts : int array;
      decl : decl option;
    }
  | Step of { session : string; rounds : int }
  | Stats of { session : string }
  | Snapshot of { session : string; path : string option }
  | Close of { session : string }
  | Metrics of { slow : int } (* max slow-log entries wanted *)
  (* replies *)
  | Hello_ok of {
      server_version : string;
      server : string; (* server identity, e.g. "rrs/1.0.0" *)
      uptime_s : int;
    }
  | Opened of { session : string; round : int }
  | Fed of { session : string; accepted : int; buffered : int }
  | Shed of { session : string; shed : int; buffered : int; limit : int }
  | Stepped of {
      session : string;
      round : int;
      pending : int;
      cost : int;
      reconfigs : int;
      drops : int;
      execs : int;
    }
  | Stats_ok of {
      session : string;
      round : int;
      pending : int; (* in the pool *)
      buffered : int; (* fed, not yet stepped *)
      fed : int; (* attempted: accepted + shed *)
      accepted : int;
      shed : int;
      execs : int;
      drops : int;
      reconfigs : int;
      failed : int;
      cost : int;
      wire : int; (* negotiated wire version of the connection *)
      bytes_in : int; (* server-side bytes read on the connection *)
      bytes_out : int; (* server-side bytes written on the connection *)
    }
  | Snapshotted of { session : string; path : string option; doc : string option }
  | Closed of { session : string; cost : int }
  | Metrics_ok of {
      doc : string; (* merged snapshot as a flat JSON object, name -> int *)
      slow : string; (* slow-request log, one JSON object per line *)
    }
  | Admission_reject of {
      session : string;
      color : int; (* binding color; -1 = aggregate deployment capacity *)
      demand : int; (* offered/declared demand, units per [message] *)
      supply : int; (* the budget it violates *)
      message : string; (* names the binding constraint *)
    }
  | Error_frame of { message : string }

(* ---- rrs-wire/1 encoding: flat JSON objects ---- *)

let ints array =
  let buffer = Buffer.create 32 in
  Buffer.add_char buffer '[';
  Array.iteri
    (fun i v ->
      if i > 0 then Buffer.add_char buffer ',';
      Buffer.add_string buffer (string_of_int v))
    array;
  Buffer.add_char buffer ']';
  Buffer.contents buffer

let decl_suffix = function
  | None -> ""
  | Some { d_rates; d_den; d_bursts } ->
      Printf.sprintf ",\"rates\":%s,\"rate_den\":%d%s" (ints d_rates) d_den
        (if Array.length d_bursts = 0 then ""
         else Printf.sprintf ",\"bursts\":%s" (ints d_bursts))

let encode = function
  | Hello { client_version } ->
      Printf.sprintf "{\"type\":\"hello\",\"version\":%s}"
        (Json.escape client_version)
  | Open
      { session; policy; delta; bounds; n; speed; horizon; queue_limit; decl }
    ->
      Printf.sprintf
        "{\"type\":\"open\",\"session\":%s,\"policy\":%s,\"delta\":%d,\
         \"bounds\":%s,\"n\":%d,\"speed\":%d,\"horizon\":%d,\
         \"queue_limit\":%d%s}"
        (Json.escape session) (Json.escape policy) delta (ints bounds) n speed
        horizon queue_limit (decl_suffix decl)
  | Feed { session; colors; counts; decl } ->
      Printf.sprintf
        "{\"type\":\"feed\",\"session\":%s,\"colors\":%s,\"counts\":%s%s}"
        (Json.escape session) (ints colors) (ints counts) (decl_suffix decl)
  | Step { session; rounds } ->
      Printf.sprintf "{\"type\":\"step\",\"session\":%s,\"rounds\":%d}"
        (Json.escape session) rounds
  | Stats { session } ->
      Printf.sprintf "{\"type\":\"stats\",\"session\":%s}"
        (Json.escape session)
  | Snapshot { session; path } ->
      Printf.sprintf "{\"type\":\"snapshot\",\"session\":%s%s}"
        (Json.escape session)
        (match path with
        | None -> ""
        | Some p -> Printf.sprintf ",\"path\":%s" (Json.escape p))
  | Close { session } ->
      Printf.sprintf "{\"type\":\"close\",\"session\":%s}"
        (Json.escape session)
  | Metrics { slow } ->
      Printf.sprintf "{\"type\":\"metrics\",\"slow\":%d}" slow
  | Hello_ok { server_version; server; uptime_s } ->
      Printf.sprintf
        "{\"type\":\"hello_ok\",\"version\":%s,\"server\":%s,\"uptime_s\":%d}"
        (Json.escape server_version) (Json.escape server) uptime_s
  | Opened { session; round } ->
      Printf.sprintf "{\"type\":\"opened\",\"session\":%s,\"round\":%d}"
        (Json.escape session) round
  | Fed { session; accepted; buffered } ->
      Printf.sprintf
        "{\"type\":\"fed\",\"session\":%s,\"accepted\":%d,\"buffered\":%d}"
        (Json.escape session) accepted buffered
  | Shed { session; shed; buffered; limit } ->
      Printf.sprintf
        "{\"type\":\"shed\",\"session\":%s,\"shed\":%d,\"buffered\":%d,\
         \"limit\":%d}"
        (Json.escape session) shed buffered limit
  | Stepped { session; round; pending; cost; reconfigs; drops; execs } ->
      Printf.sprintf
        "{\"type\":\"stepped\",\"session\":%s,\"round\":%d,\"pending\":%d,\
         \"cost\":%d,\"reconfigs\":%d,\"drops\":%d,\"execs\":%d}"
        (Json.escape session) round pending cost reconfigs drops execs
  | Stats_ok
      { session; round; pending; buffered; fed; accepted; shed; execs; drops;
        reconfigs; failed; cost; wire; bytes_in; bytes_out } ->
      Printf.sprintf
        "{\"type\":\"stats_ok\",\"session\":%s,\"round\":%d,\"pending\":%d,\
         \"buffered\":%d,\"fed\":%d,\"accepted\":%d,\"shed\":%d,\
         \"execs\":%d,\"drops\":%d,\"reconfigs\":%d,\"failed\":%d,\
         \"cost\":%d,\"wire\":%d,\"bytes_in\":%d,\"bytes_out\":%d}"
        (Json.escape session) round pending buffered fed accepted shed execs
        drops reconfigs failed cost wire bytes_in bytes_out
  | Snapshotted { session; path; doc } ->
      Printf.sprintf "{\"type\":\"snapshotted\",\"session\":%s%s%s}"
        (Json.escape session)
        (match path with
        | None -> ""
        | Some p -> Printf.sprintf ",\"path\":%s" (Json.escape p))
        (match doc with
        | None -> ""
        | Some d -> Printf.sprintf ",\"doc\":%s" (Json.escape d))
  | Closed { session; cost } ->
      Printf.sprintf "{\"type\":\"closed\",\"session\":%s,\"cost\":%d}"
        (Json.escape session) cost
  | Metrics_ok { doc; slow } ->
      Printf.sprintf "{\"type\":\"metrics_ok\",\"doc\":%s,\"slow\":%s}"
        (Json.escape doc) (Json.escape slow)
  | Admission_reject { session; color; demand; supply; message } ->
      Printf.sprintf
        "{\"type\":\"admission_rejected\",\"session\":%s,\"color\":%d,\
         \"demand\":%d,\"supply\":%d,\"message\":%s}"
        (Json.escape session) color demand supply (Json.escape message)
  | Error_frame { message } ->
      Printf.sprintf "{\"type\":\"error\",\"message\":%s}"
        (Json.escape message)

(* ---- rrs-wire/1 decoding ---- *)

let opt_str_field fields key =
  match List.assoc_opt key fields with
  | None -> None
  | Some (Json.Vstr value) -> Some value
  | Some _ ->
      raise (Json.Parse_error (Printf.sprintf "field %S: expected string" key))

let opt_ints_field fields key =
  match List.assoc_opt key fields with
  | None -> [||]
  | Some (Json.Vints values) -> values
  | Some _ ->
      raise
        (Json.Parse_error (Printf.sprintf "field %S: expected int array" key))

(* The declaration is carried by three optional fields keyed on
   ["rate_den"]; frames without it decode as undeclared. *)
let decl_of_fields fields =
  match List.assoc_opt "rate_den" fields with
  | None -> None
  | Some (Json.Vint d_den) ->
      Some
        {
          d_rates = Json.ints_field fields "rates";
          d_den;
          d_bursts = opt_ints_field fields "bursts";
        }
  | Some _ ->
      raise (Json.Parse_error "field \"rate_den\": expected int")

let decode text =
  match Json.parse_fields text with
  | exception Json.Parse_error message -> Error message
  | fields -> (
      try
        let session () = Json.str_field fields "session" in
        match Json.str_field fields "type" with
        | "hello" ->
            Ok (Hello { client_version = Json.str_field fields "version" })
        | "open" ->
            Ok
              (Open
                 {
                   session = session ();
                   policy = Json.str_field fields "policy";
                   delta = Json.int_field fields "delta";
                   bounds = Json.ints_field fields "bounds";
                   n = Json.int_field fields "n";
                   speed = Json.opt_int_field fields "speed" ~default:1;
                   horizon = Json.opt_int_field fields "horizon" ~default:0;
                   queue_limit =
                     Json.opt_int_field fields "queue_limit" ~default:0;
                   decl = decl_of_fields fields;
                 })
        | "feed" ->
            Ok
              (Feed
                 {
                   session = session ();
                   colors = Json.ints_field fields "colors";
                   counts = Json.ints_field fields "counts";
                   decl = decl_of_fields fields;
                 })
        | "step" ->
            Ok
              (Step
                 {
                   session = session ();
                   rounds = Json.opt_int_field fields "rounds" ~default:1;
                 })
        | "stats" -> Ok (Stats { session = session () })
        | "snapshot" ->
            Ok
              (Snapshot
                 { session = session (); path = opt_str_field fields "path" })
        | "close" -> Ok (Close { session = session () })
        | "metrics" ->
            Ok (Metrics { slow = Json.opt_int_field fields "slow" ~default:0 })
        | "hello_ok" ->
            (* [server]/[uptime_s] are optional so pre-observability
               transcripts still decode. *)
            Ok
              (Hello_ok
                 {
                   server_version = Json.str_field fields "version";
                   server =
                     Option.value (opt_str_field fields "server") ~default:"";
                   uptime_s = Json.opt_int_field fields "uptime_s" ~default:0;
                 })
        | "opened" ->
            Ok
              (Opened
                 { session = session (); round = Json.int_field fields "round" })
        | "fed" ->
            Ok
              (Fed
                 {
                   session = session ();
                   accepted = Json.int_field fields "accepted";
                   buffered = Json.int_field fields "buffered";
                 })
        | "shed" ->
            Ok
              (Shed
                 {
                   session = session ();
                   shed = Json.int_field fields "shed";
                   buffered = Json.int_field fields "buffered";
                   limit = Json.int_field fields "limit";
                 })
        | "stepped" ->
            Ok
              (Stepped
                 {
                   session = session ();
                   round = Json.int_field fields "round";
                   pending = Json.int_field fields "pending";
                   cost = Json.int_field fields "cost";
                   reconfigs = Json.int_field fields "reconfigs";
                   drops = Json.int_field fields "drops";
                   execs = Json.int_field fields "execs";
                 })
        | "stats_ok" ->
            Ok
              (Stats_ok
                 {
                   session = session ();
                   round = Json.int_field fields "round";
                   pending = Json.int_field fields "pending";
                   buffered = Json.int_field fields "buffered";
                   fed = Json.int_field fields "fed";
                   accepted = Json.int_field fields "accepted";
                   shed = Json.int_field fields "shed";
                   execs = Json.int_field fields "execs";
                   drops = Json.int_field fields "drops";
                   reconfigs = Json.int_field fields "reconfigs";
                   failed = Json.int_field fields "failed";
                   cost = Json.int_field fields "cost";
                   wire = Json.opt_int_field fields "wire" ~default:0;
                   bytes_in = Json.opt_int_field fields "bytes_in" ~default:0;
                   bytes_out =
                     Json.opt_int_field fields "bytes_out" ~default:0;
                 })
        | "snapshotted" ->
            Ok
              (Snapshotted
                 {
                   session = session ();
                   path = opt_str_field fields "path";
                   doc = opt_str_field fields "doc";
                 })
        | "closed" ->
            Ok
              (Closed
                 { session = session (); cost = Json.int_field fields "cost" })
        | "metrics_ok" ->
            Ok
              (Metrics_ok
                 {
                   doc = Json.str_field fields "doc";
                   slow =
                     Option.value (opt_str_field fields "slow") ~default:"";
                 })
        | "admission_rejected" ->
            Ok
              (Admission_reject
                 {
                   session = session ();
                   color = Json.int_field fields "color";
                   demand = Json.int_field fields "demand";
                   supply = Json.int_field fields "supply";
                   message = Json.str_field fields "message";
                 })
        | "error" ->
            Ok (Error_frame { message = Json.str_field fields "message" })
        | other -> Error (Printf.sprintf "unknown frame type %S" other)
      with Json.Parse_error message -> Error message)

(* ---- rrs-wire/2: binary framing ----

   [magic0 magic1 | u32be payload length | u8 tag | payload]. Ints are
   zigzag LEB128 varints, strings and int arrays length-prefixed, options
   one presence byte. The two magic bytes are the resynchronization
   point: a reader facing garbage skips to the next newline (textual
   garbage stays request/reply interactive) or the next magic pair and
   reports it malformed, mirroring /1's line sync. *)

let magic0 = '\xF2'
let magic1 = 'R'

let tag_of_frame = function
  | Hello _ -> 1
  | Open _ -> 2
  | Feed _ -> 3
  | Step _ -> 4
  | Stats _ -> 5
  | Snapshot _ -> 6
  | Close _ -> 7
  | Metrics _ -> 8
  | Hello_ok _ -> 17
  | Opened _ -> 18
  | Fed _ -> 19
  | Shed _ -> 20
  | Stepped _ -> 21
  | Stats_ok _ -> 22
  | Snapshotted _ -> 23
  | Closed _ -> 24
  | Error_frame _ -> 25
  | Metrics_ok _ -> 26
  | Admission_reject _ -> 27

let add_varint buffer value =
  (* zigzag, so negative ints stay compact and total *)
  let z = (value lsl 1) lxor (value asr (Sys.int_size - 1)) in
  let rec go z =
    if z land lnot 0x7f = 0 then Buffer.add_char buffer (Char.chr z)
    else begin
      Buffer.add_char buffer (Char.chr (z land 0x7f lor 0x80));
      go (z lsr 7)
    end
  in
  go z

let add_string buffer s =
  add_varint buffer (String.length s);
  Buffer.add_string buffer s

let add_ints buffer a =
  add_varint buffer (Array.length a);
  Array.iter (add_varint buffer) a

let add_opt_string buffer = function
  | None -> Buffer.add_char buffer '\000'
  | Some s ->
      Buffer.add_char buffer '\001';
      add_string buffer s

(* Appended only when declared, so an undeclared frame stays
   byte-identical to its pre-declaration encoding and old decoders never
   see trailing bytes. *)
let add_opt_decl buffer = function
  | None -> ()
  | Some { d_rates; d_den; d_bursts } ->
      Buffer.add_char buffer '\001';
      add_ints buffer d_rates;
      add_varint buffer d_den;
      add_ints buffer d_bursts

let add_payload buffer = function
  | Hello { client_version } -> add_string buffer client_version
  | Open
      { session; policy; delta; bounds; n; speed; horizon; queue_limit; decl }
    ->
      add_string buffer session;
      add_string buffer policy;
      add_varint buffer delta;
      add_ints buffer bounds;
      add_varint buffer n;
      add_varint buffer speed;
      add_varint buffer horizon;
      add_varint buffer queue_limit;
      add_opt_decl buffer decl
  | Feed { session; colors; counts; decl } ->
      add_string buffer session;
      add_ints buffer colors;
      add_ints buffer counts;
      add_opt_decl buffer decl
  | Step { session; rounds } ->
      add_string buffer session;
      add_varint buffer rounds
  | Stats { session } -> add_string buffer session
  | Snapshot { session; path } ->
      add_string buffer session;
      add_opt_string buffer path
  | Close { session } -> add_string buffer session
  | Metrics { slow } -> add_varint buffer slow
  | Hello_ok { server_version; server; uptime_s } ->
      add_string buffer server_version;
      add_string buffer server;
      add_varint buffer uptime_s
  | Opened { session; round } ->
      add_string buffer session;
      add_varint buffer round
  | Fed { session; accepted; buffered } ->
      add_string buffer session;
      add_varint buffer accepted;
      add_varint buffer buffered
  | Shed { session; shed; buffered; limit } ->
      add_string buffer session;
      add_varint buffer shed;
      add_varint buffer buffered;
      add_varint buffer limit
  | Stepped { session; round; pending; cost; reconfigs; drops; execs } ->
      add_string buffer session;
      add_varint buffer round;
      add_varint buffer pending;
      add_varint buffer cost;
      add_varint buffer reconfigs;
      add_varint buffer drops;
      add_varint buffer execs
  | Stats_ok
      { session; round; pending; buffered; fed; accepted; shed; execs; drops;
        reconfigs; failed; cost; wire; bytes_in; bytes_out } ->
      add_string buffer session;
      add_varint buffer round;
      add_varint buffer pending;
      add_varint buffer buffered;
      add_varint buffer fed;
      add_varint buffer accepted;
      add_varint buffer shed;
      add_varint buffer execs;
      add_varint buffer drops;
      add_varint buffer reconfigs;
      add_varint buffer failed;
      add_varint buffer cost;
      add_varint buffer wire;
      add_varint buffer bytes_in;
      add_varint buffer bytes_out
  | Snapshotted { session; path; doc } ->
      add_string buffer session;
      add_opt_string buffer path;
      add_opt_string buffer doc
  | Closed { session; cost } ->
      add_string buffer session;
      add_varint buffer cost
  | Metrics_ok { doc; slow } ->
      add_string buffer doc;
      add_string buffer slow
  | Admission_reject { session; color; demand; supply; message } ->
      add_string buffer session;
      add_varint buffer color;
      add_varint buffer demand;
      add_varint buffer supply;
      add_string buffer message
  | Error_frame { message } -> add_string buffer message

let encode_binary frame =
  let payload = Buffer.create 64 in
  add_payload payload frame;
  let length = Buffer.length payload in
  let out = Buffer.create (length + 7) in
  Buffer.add_char out magic0;
  Buffer.add_char out magic1;
  Buffer.add_char out (Char.chr ((length lsr 24) land 0xff));
  Buffer.add_char out (Char.chr ((length lsr 16) land 0xff));
  Buffer.add_char out (Char.chr ((length lsr 8) land 0xff));
  Buffer.add_char out (Char.chr (length land 0xff));
  Buffer.add_char out (Char.chr (tag_of_frame frame));
  Buffer.add_buffer out payload;
  Buffer.contents out

(* Binary payload decoding: a cursor over the payload string; every
   malformation is a [Decode_error], never an exception escape. *)

exception Decode_error of string

type cursor = { text : string; mutable at : int }

let fail format = Printf.ksprintf (fun m -> raise (Decode_error m)) format

let next_byte cursor =
  if cursor.at >= String.length cursor.text then fail "truncated payload";
  let byte = Char.code cursor.text.[cursor.at] in
  cursor.at <- cursor.at + 1;
  byte

let read_varint cursor =
  let rec go shift acc =
    if shift > 63 then fail "varint too long";
    let byte = next_byte cursor in
    let acc = acc lor ((byte land 0x7f) lsl shift) in
    if byte land 0x80 = 0 then acc else go (shift + 7) acc
  in
  let z = go 0 0 in
  (z lsr 1) lxor (-(z land 1))

let read_string cursor =
  let length = read_varint cursor in
  if length < 0 || cursor.at + length > String.length cursor.text then
    fail "bad string length %d" length;
  let s = String.sub cursor.text cursor.at length in
  cursor.at <- cursor.at + length;
  s

let read_ints cursor =
  let count = read_varint cursor in
  if count < 0 || count > String.length cursor.text - cursor.at then
    fail "bad array length %d" count;
  Array.init count (fun _ -> read_varint cursor)

let read_opt_string cursor =
  match next_byte cursor with
  | 0 -> None
  | 1 -> Some (read_string cursor)
  | b -> fail "bad option byte %d" b

(* Present only when the sender declared: a pre-declaration frame ends
   exactly where the fixed fields do, so a cursor at payload end means
   [None]. This is what keeps the extension optional in /2 without a
   version bump. *)
let read_opt_decl c =
  if c.at >= String.length c.text then None
  else
    match next_byte c with
    | 1 ->
        let d_rates = read_ints c in
        let d_den = read_varint c in
        let d_bursts = read_ints c in
        Some { d_rates; d_den; d_bursts }
    | b -> fail "bad declaration marker %d" b

let decode_payload tag payload =
  let c = { text = payload; at = 0 } in
  let str () = read_string c in
  let int () = read_varint c in
  let ints () = read_ints c in
  match
    match tag with
    | 1 -> Hello { client_version = str () }
    | 2 ->
        let session = str () in
        let policy = str () in
        let delta = int () in
        let bounds = ints () in
        let n = int () in
        let speed = int () in
        let horizon = int () in
        let queue_limit = int () in
        let decl = read_opt_decl c in
        Open
          { session; policy; delta; bounds; n; speed; horizon; queue_limit;
            decl }
    | 3 ->
        let session = str () in
        let colors = ints () in
        let counts = ints () in
        let decl = read_opt_decl c in
        Feed { session; colors; counts; decl }
    | 4 ->
        let session = str () in
        let rounds = int () in
        Step { session; rounds }
    | 5 -> Stats { session = str () }
    | 6 ->
        let session = str () in
        let path = read_opt_string c in
        Snapshot { session; path }
    | 7 -> Close { session = str () }
    | 8 -> Metrics { slow = int () }
    | 17 ->
        let server_version = str () in
        let server = str () in
        let uptime_s = int () in
        Hello_ok { server_version; server; uptime_s }
    | 18 ->
        let session = str () in
        let round = int () in
        Opened { session; round }
    | 19 ->
        let session = str () in
        let accepted = int () in
        let buffered = int () in
        Fed { session; accepted; buffered }
    | 20 ->
        let session = str () in
        let shed = int () in
        let buffered = int () in
        let limit = int () in
        Shed { session; shed; buffered; limit }
    | 21 ->
        let session = str () in
        let round = int () in
        let pending = int () in
        let cost = int () in
        let reconfigs = int () in
        let drops = int () in
        let execs = int () in
        Stepped { session; round; pending; cost; reconfigs; drops; execs }
    | 22 ->
        let session = str () in
        let round = int () in
        let pending = int () in
        let buffered = int () in
        let fed = int () in
        let accepted = int () in
        let shed = int () in
        let execs = int () in
        let drops = int () in
        let reconfigs = int () in
        let failed = int () in
        let cost = int () in
        let wire = int () in
        let bytes_in = int () in
        let bytes_out = int () in
        Stats_ok
          { session; round; pending; buffered; fed; accepted; shed; execs;
            drops; reconfigs; failed; cost; wire; bytes_in; bytes_out }
    | 23 ->
        let session = str () in
        let path = read_opt_string c in
        let doc = read_opt_string c in
        Snapshotted { session; path; doc }
    | 24 ->
        let session = str () in
        let cost = int () in
        Closed { session; cost }
    | 25 -> Error_frame { message = str () }
    | 26 ->
        let doc = str () in
        let slow = str () in
        Metrics_ok { doc; slow }
    | 27 ->
        let session = str () in
        let color = int () in
        let demand = int () in
        let supply = int () in
        let message = str () in
        Admission_reject { session; color; demand; supply; message }
    | tag -> fail "unknown binary frame tag %d" tag
  with
  | frame ->
      if c.at <> String.length payload then
        Error
          (Printf.sprintf "%d trailing byte(s) after binary frame"
             (String.length payload - c.at))
      else Ok frame
  | exception Decode_error message -> Error message

let decode_binary data =
  if String.length data < 7 then Error "truncated binary frame"
  else if not (data.[0] = magic0 && data.[1] = magic1) then
    Error "missing frame magic"
  else
    let b i = Char.code data.[i] in
    let length = (b 2 lsl 24) lor (b 3 lsl 16) lor (b 4 lsl 8) lor b 5 in
    if length > max_frame then
      Error (Printf.sprintf "frame longer than %d bytes" max_frame)
    else if String.length data <> 7 + length then
      Error
        (Printf.sprintf "length prefix %d does not match body length %d" length
           (String.length data - 7))
    else decode_payload (b 6) (String.sub data 7 length)

(* ---- framing ----

   /1 frames are "<byte length of JSON> <JSON>\n": length-delimited but
   still line-synced, so a reader that lost the length can resynchronize
   at the next newline, which is what lets the server answer [error] to
   garbage and keep the connection alive instead of tearing it down.
   /2 frames resynchronize at the magic pair (or a newline, so textual
   garbage still draws an immediate reply). *)

let frame_line json = Printf.sprintf "%d %s\n" (String.length json) json

let to_wire framing frame =
  match framing with
  | V1 -> frame_line (encode frame)
  | V2 -> encode_binary frame

let write ?(framing = V1) channel frame =
  output_string channel (to_wire framing frame);
  flush channel

type read_result = Frame of frame | Malformed of string | Eof

(* ---- buffered reader, shared by both framings ----

   One [input] call per chunk instead of one per byte; both the /1 line
   scan and the /2 header/payload reads run over the in-memory chunk. *)

type reader = {
  pull : Bytes.t -> int -> int -> int;
  chunk : Bytes.t;
  mutable pos : int; (* next unconsumed byte in [chunk] *)
  mutable len : int; (* valid bytes in [chunk] *)
  mutable pulled : int; (* total bytes pulled from the source *)
}

let chunk_size = 64 * 1024

let reader_fn pull =
  { pull; chunk = Bytes.create chunk_size; pos = 0; len = 0; pulled = 0 }

let reader channel = reader_fn (fun buf off len -> input channel buf off len)

let reader_bytes r = r.pulled

(* Make at least one byte available; false at EOF. *)
let refill r =
  if r.pos < r.len then true
  else begin
    let k = r.pull r.chunk 0 (Bytes.length r.chunk) in
    r.pos <- 0;
    r.len <- k;
    r.pulled <- r.pulled + k;
    k > 0
  end

(* Make at least [want] contiguous bytes available (compacting first);
   false at EOF. [want] must fit the chunk. *)
let ensure r want =
  if r.len - r.pos >= want then true
  else begin
    if r.pos > 0 then begin
      Bytes.blit r.chunk r.pos r.chunk 0 (r.len - r.pos);
      r.len <- r.len - r.pos;
      r.pos <- 0
    end;
    let rec fill () =
      if r.len >= want then true
      else
        let k = r.pull r.chunk r.len (Bytes.length r.chunk - r.len) in
        if k = 0 then false
        else begin
          r.len <- r.len + k;
          r.pulled <- r.pulled + k;
          fill ()
        end
    in
    fill ()
  end

(* Exactly [n] bytes as a fresh string (may exceed the chunk); None at
   EOF. *)
let read_exact r n =
  let out = Bytes.create n in
  let have = min n (r.len - r.pos) in
  Bytes.blit r.chunk r.pos out 0 have;
  r.pos <- r.pos + have;
  let rec go off =
    if off >= n then Some (Bytes.unsafe_to_string out)
    else
      let k = r.pull out off (n - off) in
      if k = 0 then None
      else begin
        r.pulled <- r.pulled + k;
        go (off + k)
      end
  in
  go have

let find_newline chunk pos len =
  let rec go i =
    if i >= len then -1
    else if Bytes.unsafe_get chunk i = '\n' then i
    else go (i + 1)
  in
  go pos

(* Read one '\n'-terminated line of at most [max_frame] bytes; an
   over-long line is truncated (bounded memory) and flagged with a "..."
   suffix so [read] reports it malformed. *)
let read_line_bounded r =
  if not (refill r) then None
  else begin
    let buffer = Buffer.create 256 in
    let overflow = ref false in
    let finished = ref false in
    while not !finished do
      if r.pos >= r.len && not (refill r) then finished := true
      else begin
        let nl = find_newline r.chunk r.pos r.len in
        let stop = if nl = -1 then r.len else nl in
        let segment = stop - r.pos in
        let room = max_frame - Buffer.length buffer in
        if segment > room then begin
          if room > 0 then Buffer.add_subbytes buffer r.chunk r.pos room;
          overflow := true
        end
        else Buffer.add_subbytes buffer r.chunk r.pos segment;
        r.pos <- stop;
        if nl >= 0 then begin
          r.pos <- r.pos + 1;
          finished := true
        end
      end
    done;
    let line = Buffer.contents buffer in
    Some (if !overflow then line ^ "..." else line)
  end

(* Parse one complete /1 line (newline already stripped). Shared by the
   pull reader and the incremental [Stream] so the two stay
   byte-for-byte equivalent. *)
let parse_v1_line line =
  if String.length line > max_frame then
    Malformed (Printf.sprintf "frame longer than %d bytes" max_frame)
  else
    match String.index_opt line ' ' with
    | None -> Malformed "missing length prefix"
    | Some space -> (
        let prefix = String.sub line 0 space in
        let body =
          String.sub line (space + 1) (String.length line - space - 1)
        in
        match int_of_string_opt prefix with
        | None -> Malformed (Printf.sprintf "bad length prefix %S" prefix)
        | Some length when length <> String.length body ->
            Malformed
              (Printf.sprintf "length prefix %d does not match body length %d"
                 length (String.length body))
        | Some _ -> (
            match decode body with
            | Ok frame -> Frame frame
            | Error message -> Malformed message))

let read_v1 r =
  match read_line_bounded r with None -> Eof | Some line -> parse_v1_line line

(* Consume garbage up to (and including) a newline, or up to (but not
   including) the next magic pair, whichever comes first; count what was
   skipped. Stopping at newlines keeps textual garbage request/reply
   interactive — the peer gets its [error] without the reader blocking
   for a frame that may never come. *)
let skip_garbage r =
  let skipped = ref 0 in
  let continue = ref true in
  while !continue do
    if r.pos >= r.len && not (refill r) then continue := false
    else
      let c = Bytes.get r.chunk r.pos in
      if c = '\n' then begin
        r.pos <- r.pos + 1;
        incr skipped;
        continue := false
      end
      else if
        c = magic0 && ensure r 2 && Bytes.get r.chunk (r.pos + 1) = magic1
      then continue := false
      else begin
        r.pos <- r.pos + 1;
        incr skipped
      end
  done;
  !skipped

let read_v2 r =
  if not (ensure r 2) then begin
    (* 0 or 1 dangling bytes before EOF: nothing decodable remains. *)
    r.pos <- r.len;
    Eof
  end
  else if
    not (Bytes.get r.chunk r.pos = magic0 && Bytes.get r.chunk (r.pos + 1) = magic1)
  then
    let skipped = skip_garbage r in
    Malformed (Printf.sprintf "not a frame: skipped %d garbage byte(s)" skipped)
  else if not (ensure r 7) then begin
    r.pos <- r.len;
    Eof
  end
  else begin
    let b i = Char.code (Bytes.get r.chunk (r.pos + i)) in
    let length = (b 2 lsl 24) lor (b 3 lsl 16) lor (b 4 lsl 8) lor b 5 in
    let tag = b 6 in
    r.pos <- r.pos + 7;
    if length > max_frame then
      Malformed (Printf.sprintf "frame longer than %d bytes" max_frame)
    else
      match read_exact r length with
      | None -> Eof
      | Some payload -> (
          match decode_payload tag payload with
          | Ok frame -> Frame frame
          | Error message -> Malformed message)
  end

let read ?(framing = V1) r =
  match framing with V1 -> read_v1 r | V2 -> read_v2 r

(* ---- incremental frame stream ----

   The pull [reader] blocks inside its pull function until a whole frame
   arrives, which is fine for one-thread-per-connection but useless for
   a readiness loop: there a read(2) that would block simply is not
   made, so the parser must accept bytes as they arrive and say "need
   more" in between. [Stream] is that push-style parser. Its observable
   behaviour — frames, malformed reports (same messages), resync points,
   EOF handling — matches [read] over the same byte sequence exactly;
   test_server's qcheck equivalence suite holds the two together. *)

module Stream = struct
  type state =
    | Idle  (* between frames *)
    | V1_discard
      (* over-long /1 line: drop bytes until the newline, then report
         [Malformed "frame longer than ..."] like read_line_bounded's
         truncate-and-flag path *)
    | V2_garbage of int
      (* skipping to newline / magic pair; the count mirrors
         [skip_garbage]'s *)
    | V2_payload of int * int  (* tag, remaining payload length *)

  type t = {
    mutable framing : framing;
    mutable buf : Bytes.t;
    mutable start : int;  (* first unconsumed byte *)
    mutable stop : int;  (* end of valid bytes *)
    mutable eof : bool;
    mutable scanned : int;  (* /1: prefix already scanned for '\n' *)
    mutable state : state;
    mutable fed : int;  (* total bytes ever fed *)
  }

  let create framing =
    {
      framing;
      buf = Bytes.create 4096;
      start = 0;
      stop = 0;
      eof = false;
      scanned = 0;
      state = Idle;
      fed = 0;
    }

  let framing t = t.framing

  (* Framing switches happen between frames (the hello exchange), so any
     buffered bytes belong to the next frame and are reinterpreted under
     the new framing. *)
  let set_framing t framing =
    t.framing <- framing;
    t.scanned <- 0;
    t.state <- Idle

  let buffered t = t.stop - t.start
  let fed t = t.fed

  let feed t bytes off len =
    if len < 0 || off < 0 || off + len > Bytes.length bytes then
      invalid_arg "Wire.Stream.feed";
    if t.eof then invalid_arg "Wire.Stream.feed: after eof";
    if t.stop + len > Bytes.length t.buf then begin
      let live = t.stop - t.start in
      let need = live + len in
      if need <= Bytes.length t.buf && t.start > 0 then begin
        Bytes.blit t.buf t.start t.buf 0 live;
        t.start <- 0;
        t.stop <- live
      end
      else begin
        let capacity = ref (max 4096 (2 * Bytes.length t.buf)) in
        while !capacity < need do
          capacity := !capacity * 2
        done;
        let grown = Bytes.create !capacity in
        Bytes.blit t.buf t.start grown 0 live;
        t.buf <- grown;
        t.start <- 0;
        t.stop <- live
      end
    end;
    Bytes.blit bytes off t.buf t.stop len;
    t.stop <- t.stop + len;
    t.fed <- t.fed + len

  let feed_string t s = feed t (Bytes.unsafe_of_string s) 0 (String.length s)
  let feed_eof t = t.eof <- true

  (* Drop [n] consumed bytes off the front. *)
  let consume t n = t.start <- t.start + n

  let take t n =
    let s = Bytes.sub_string t.buf t.start n in
    consume t n;
    s

  let rec next_v1 t =
    match t.state with
    | V1_discard -> (
        match find_newline t.buf (t.start + t.scanned) t.stop with
        | -1 ->
            (* everything buffered is part of the over-long line *)
            consume t (buffered t);
            t.scanned <- 0;
            if t.eof then begin
              (* read_line_bounded ends the truncated line at EOF *)
              t.state <- Idle;
              Some
                (Malformed
                   (Printf.sprintf "frame longer than %d bytes" max_frame))
            end
            else None
        | nl ->
            consume t (nl + 1 - t.start);
            t.scanned <- 0;
            t.state <- Idle;
            Some
              (Malformed (Printf.sprintf "frame longer than %d bytes" max_frame))
        )
    | _ -> (
        match find_newline t.buf (t.start + t.scanned) t.stop with
        | -1 ->
            t.scanned <- buffered t;
            if t.scanned > max_frame then begin
              (* no newline within a frame-sized prefix: the line cannot
                 parse whatever follows, so stop buffering it *)
              t.state <- V1_discard;
              consume t t.scanned;
              t.scanned <- 0;
              next_v1 t
            end
            else if t.eof then
              if t.scanned = 0 then Some Eof
              else begin
                (* trailing newline-less line: read_line_bounded parses
                   it as a final line at EOF *)
                let line = take t t.scanned in
                t.scanned <- 0;
                Some (parse_v1_line line)
              end
            else None
        | nl ->
            let line = take t (nl - t.start) in
            consume t 1;
            t.scanned <- 0;
            Some (parse_v1_line line))

  let rec next_v2 t =
    match t.state with
    | V1_discard -> assert false
    | V2_payload (tag, length) ->
        if buffered t >= length then begin
          let payload = take t length in
          t.state <- Idle;
          Some
            (match decode_payload tag payload with
            | Ok frame -> Frame frame
            | Error message -> Malformed message)
        end
        else if t.eof then Some Eof (* truncated payload, like read_exact *)
        else None
    | V2_garbage count ->
        (* mirror [skip_garbage]: stop after a newline (consumed) or
           before a magic pair (not consumed); at EOF everything left is
           garbage *)
        let rec scan count =
          if t.start >= t.stop then
            if t.eof then begin
              t.state <- Idle;
              Some
                (Malformed
                   (Printf.sprintf "not a frame: skipped %d garbage byte(s)"
                      count))
            end
            else begin
              t.state <- V2_garbage count;
              None
            end
          else
            let c = Bytes.get t.buf t.start in
            if c = '\n' then begin
              consume t 1;
              t.state <- Idle;
              Some
                (Malformed
                   (Printf.sprintf "not a frame: skipped %d garbage byte(s)"
                      (count + 1)))
            end
            else if c = magic0 then
              if t.start + 1 < t.stop then
                if Bytes.get t.buf (t.start + 1) = magic1 then begin
                  t.state <- Idle;
                  Some
                    (Malformed
                       (Printf.sprintf "not a frame: skipped %d garbage byte(s)"
                          count))
                end
                else begin
                  consume t 1;
                  scan (count + 1)
                end
              else if t.eof then begin
                (* dangling magic0 at EOF is garbage, like [ensure]
                   failing inside skip_garbage *)
                consume t 1;
                scan (count + 1)
              end
              else begin
                t.state <- V2_garbage count;
                None
              end
            else begin
              consume t 1;
              scan (count + 1)
            end
        in
        scan count
    | Idle ->
        let avail = buffered t in
        if avail < 2 then
          if t.eof then begin
            (* 0 or 1 dangling bytes before EOF: nothing decodable *)
            consume t avail;
            Some Eof
          end
          else None
        else if
          not
            (Bytes.get t.buf t.start = magic0
            && Bytes.get t.buf (t.start + 1) = magic1)
        then begin
          t.state <- V2_garbage 0;
          next_v2 t
        end
        else if avail < 7 then
          if t.eof then begin
            consume t avail;
            Some Eof
          end
          else None
        else begin
          let b i = Char.code (Bytes.get t.buf (t.start + i)) in
          let length =
            (b 2 lsl 24) lor (b 3 lsl 16) lor (b 4 lsl 8) lor b 5
          in
          let tag = b 6 in
          consume t 7;
          if length > max_frame then
            Some
              (Malformed
                 (Printf.sprintf "frame longer than %d bytes" max_frame))
          else begin
            t.state <- V2_payload (tag, length);
            next_v2 t
          end
        end

  let next t = match t.framing with V1 -> next_v1 t | V2 -> next_v2 t
end
