(** The [rrs-wire/1] session protocol: typed frames, JSON codec and
    channel framing.

    Framing is ["<byte length of JSON> <JSON>\n"] — length-delimited but
    still line-synced, so a peer that sends garbage desynchronizes only
    to the next newline: the server answers [error] and the connection
    (and every session behind it) survives. One frame per line; a line
    longer than {!max_frame} is discarded with bounded memory and
    reported [Malformed].

    The codec reuses the project's hand-rolled flat-object JSON scanner
    ({!Rrs_sim.Event_sink.Json}); unknown frame types and malformed
    fields are [Error]s, never exceptions. *)

val version : string
(** ["rrs-wire/1"], exchanged in [hello]/[hello_ok]. *)

val max_frame : int
(** Upper bound on one frame line, in bytes. *)

type frame =
  (* requests *)
  | Hello of { client_version : string }
  | Open of {
      session : string;
      policy : string;
      delta : int;
      bounds : int array;
      n : int;
      speed : int;
      horizon : int;
      queue_limit : int;  (** 0 = server default *)
    }
  | Feed of { session : string; colors : int array; counts : int array }
  | Step of { session : string; rounds : int }
  | Stats of { session : string }
  | Snapshot of { session : string; path : string option }
      (** [path = Some file] saves to [file] — a bare, path-safe file
          name ([A-Za-z0-9._-]+, not dot-led) resolved inside the
          server's snapshot directory; arbitrary paths are refused.
          [None] returns the document inline. *)
  | Close of { session : string }
  (* replies *)
  | Hello_ok of { server_version : string }
  | Opened of { session : string; round : int }
  | Fed of { session : string; accepted : int; buffered : int }
  | Shed of { session : string; shed : int; buffered : int; limit : int }
      (** Admission control refused the whole feed: the per-session
          buffer already holds [buffered] jobs against a limit of
          [limit]. The request's [shed] jobs are counted, not enqueued;
          the session itself is untouched. *)
  | Stepped of {
      session : string;
      round : int;  (** rounds executed so far, after this step *)
      pending : int;
      cost : int;
      reconfigs : int;
      drops : int;
      execs : int;
    }
  | Stats_ok of {
      session : string;
      round : int;
      pending : int;  (** jobs in the pool *)
      buffered : int;  (** jobs fed but not yet stepped *)
      fed : int;  (** jobs offered = [accepted + shed] *)
      accepted : int;
      shed : int;
      execs : int;
      drops : int;
      reconfigs : int;
      failed : int;
      cost : int;
    }
  | Snapshotted of {
      session : string;
      path : string option;  (** where the server saved it, if to disk *)
      doc : string option;  (** the inline document, if requested *)
    }
  | Closed of { session : string; cost : int }
  | Error_frame of { message : string }

val encode : frame -> string
(** One flat JSON object, no newline. *)

val decode : string -> (frame, string) result

val frame_line : string -> string
(** [frame_line json] is the framed wire line (length prefix + newline). *)

val write : out_channel -> frame -> unit
(** Encode, frame, write and flush. *)

type read_result =
  | Frame of frame
  | Malformed of string
      (** Bad length prefix, over-long line, JSON or frame error; the
          channel is positioned after the offending line. *)
  | Eof

val read : in_channel -> read_result
