(** The rrs session protocol: typed frames, two negotiated framings
    ([rrs-wire/1] JSON and [rrs-wire/2] binary) and a buffered channel
    reader shared by both.

    {b [rrs-wire/1]} framing is ["<byte length of JSON> <JSON>\n"] —
    length-delimited but still line-synced, so a peer that sends garbage
    desynchronizes only to the next newline: the server answers [error]
    and the connection (and every session behind it) survives. One frame
    per line; a line longer than {!max_frame} is discarded with bounded
    memory and reported [Malformed]. The codec reuses the project's
    hand-rolled flat-object JSON scanner ({!Rrs_sim.Event_sink.Json});
    unknown frame types and malformed fields are [Error]s, never
    exceptions.

    {b [rrs-wire/2]} framing is binary:
    [magic(2) | u32be payload length | u8 tag | payload], with zigzag
    LEB128 varints for ints, length-prefixed strings and int arrays, and
    a presence byte for options. Same frame semantics as /1, a fraction
    of the bytes and none of the JSON parse cost. Negotiated through the
    [hello] exchange: a client that says [hello] with ["rrs-wire/2"]
    gets its [hello_ok] in the current framing, then both sides switch.
    Resynchronization point is the magic pair — or a newline, so textual
    garbage still draws an immediate [error] instead of stalling the
    reader.

    Both framings are served by one {!reader}: a chunked buffer filled
    with one [input] call per chunk, so neither framing pays a libc call
    per byte. *)

val version : string
(** ["rrs-wire/1"], the default, exchanged in [hello]/[hello_ok]. *)

val version2 : string
(** ["rrs-wire/2"], the negotiated binary framing. *)

val max_frame : int
(** Upper bound on one frame, in bytes (either framing). *)

type framing = V1 | V2

(** A declared workload for admission control: per-color token-bucket
    rate numerators over one shared denominator [d_den] (jobs per
    round), plus per-color bursts ([[||]] = all zero). Optional on
    [Open] and [Feed] in {e both} framings, backward-compatibly: /1
    carries it as three extra JSON fields ([rates], [rate_den],
    [bursts]) that pre-admission servers ignore; /2 appends a
    presence-marked group that pre-admission frames simply lack — an
    undeclared frame is byte-identical to the pre-declaration encoding,
    while a declared frame sent to a pre-admission server draws that
    server's clean per-frame trailing-bytes error, not a desync. *)
type decl = { d_rates : int array; d_den : int; d_bursts : int array }

type frame =
  (* requests *)
  | Hello of { client_version : string }
  | Open of {
      session : string;
      policy : string;
      delta : int;
      bounds : int array;
      n : int;
      speed : int;
      horizon : int;
      queue_limit : int;  (** 0 = server default *)
      decl : decl option;
          (** declared arrival rates, gated by [--admission] *)
    }
  | Feed of {
      session : string;
      colors : int array;
      counts : int array;
      decl : decl option;  (** re-declaration of the session's rates *)
    }
  | Step of { session : string; rounds : int }
  | Stats of { session : string }
  | Snapshot of { session : string; path : string option }
      (** [path = Some file] saves to [file] — a bare, path-safe file
          name ([A-Za-z0-9._-]+, not dot-led) resolved inside the
          server's snapshot directory; arbitrary paths are refused.
          [None] returns the document inline. *)
  | Close of { session : string }
  | Metrics of { slow : int }
      (** Fetch the server-wide merged metrics snapshot; [slow] caps the
          number of slow-request log entries returned (0 = none). *)
  (* replies *)
  | Hello_ok of {
      server_version : string;
      server : string;
          (** Server identity (name/version, e.g. ["rrs/1.0.0"]); [""]
              from pre-observability peers. *)
      uptime_s : int;  (** whole seconds since the server started *)
    }
  | Opened of { session : string; round : int }
  | Fed of { session : string; accepted : int; buffered : int }
  | Shed of { session : string; shed : int; buffered : int; limit : int }
      (** Admission control refused the whole feed: the per-session
          buffer already holds [buffered] jobs against a limit of
          [limit]. The request's [shed] jobs are counted, not enqueued;
          the session itself is untouched. *)
  | Stepped of {
      session : string;
      round : int;  (** rounds executed so far, after this step *)
      pending : int;
      cost : int;
      reconfigs : int;
      drops : int;
      execs : int;
    }
  | Stats_ok of {
      session : string;
      round : int;
      pending : int;  (** jobs in the pool *)
      buffered : int;  (** jobs fed but not yet stepped *)
      fed : int;  (** jobs offered = [accepted + shed] *)
      accepted : int;
      shed : int;
      execs : int;
      drops : int;
      reconfigs : int;
      failed : int;
      cost : int;
      wire : int;
          (** negotiated wire version of the answering connection (1 or
              2); 0 from pre-observability peers *)
      bytes_in : int;
          (** server-side bytes read on this connection so far (the
              mirror of {!Client.bytes_sent}); 0 from older peers *)
      bytes_out : int;  (** server-side bytes written on this connection *)
    }
  | Snapshotted of {
      session : string;
      path : string option;  (** where the server saved it, if to disk *)
      doc : string option;  (** the inline document, if requested *)
    }
  | Closed of { session : string; cost : int }
  | Metrics_ok of {
      doc : string;
          (** the merged {!Rrs_obs.Probe.merged_snapshot} as one flat
              JSON object (name -> int), parseable with
              {!Rrs_sim.Event_sink.Json.parse_fields} *)
      slow : string;
          (** the slow-request log, newest first, one flat JSON object
              per line (possibly empty) *)
    }
  | Admission_reject of {
      session : string;
      color : int;
          (** the binding color, or [-1] when the aggregate deployment
              capacity binds *)
      demand : int;  (** offered/declared demand (units per [message]) *)
      supply : int;  (** the budget it violates *)
      message : string;  (** names the binding constraint *)
    }
      (** The admission gate refused the request: an [open]/[feed] whose
          declared (or offered) demand would violate the session's own
          configuration or the deployment's configured supply. A
          rejected [open] leaves no session state behind. *)
  | Error_frame of { message : string }

val encode : frame -> string
(** The /1 body: one flat JSON object, no newline. *)

val decode : string -> (frame, string) result
(** Inverse of {!encode}. *)

val encode_binary : frame -> string
(** The complete /2 wire bytes: magic, length, tag, payload. *)

val decode_binary : string -> (frame, string) result
(** Inverse of {!encode_binary} (exactly one whole frame). *)

val frame_line : string -> string
(** [frame_line json] is the framed /1 wire line (length prefix +
    newline). *)

val to_wire : framing -> frame -> string
(** The complete wire bytes of one frame under the given framing. *)

val write : ?framing:framing -> out_channel -> frame -> unit
(** Encode, frame, write and flush. Default framing is [V1]. *)

type read_result =
  | Frame of frame
  | Malformed of string
      (** Bad framing, over-long frame, codec or frame error; the reader
          is positioned after the offending input (next newline for /1,
          next newline or magic pair for /2). *)
  | Eof

type reader
(** A buffered frame reader over an [in_channel]: chunked refills, so
    neither framing reads byte-at-a-time from the OS. One reader per
    connection; not thread-safe. *)

val reader : in_channel -> reader

val reader_fn : (bytes -> int -> int -> int) -> reader
(** A reader over an arbitrary pull function [pull buf off len -> k]
    with [read(2)] semantics (0 means EOF). Lets callers interpose
    deadlines: a pull that polls with a remaining-time budget before
    reading gives every {!read} a hard time bound. *)

val reader_bytes : reader -> int
(** Total bytes pulled from the underlying channel so far (used by the
    E18 harness for bytes/frame accounting). *)

val read : ?framing:framing -> reader -> read_result
(** Read one frame under the given framing. Default is [V1]. *)

(** Incremental (push-style) frame extraction for the readiness event
    loop: the loop feeds whatever bytes a non-blocking [read(2)]
    returned and asks for the next complete frame, getting [None] when
    more bytes are needed instead of blocking. Over any byte sequence
    and split points, the emitted results — frames, malformed messages,
    resync positions, EOF handling — are identical to repeated {!read}
    over the same bytes (pinned by a qcheck equivalence suite). *)
module Stream : sig
  type t

  val create : framing -> t

  val framing : t -> framing

  val set_framing : t -> framing -> unit
  (** Reinterpret from the next frame boundary on — the hello
      negotiation switch. Any buffered bytes belong to the next frame
      and are parsed under the new framing. *)

  val feed : t -> Bytes.t -> int -> int -> unit
  (** Append [len] bytes at [off]. Raises [Invalid_argument] after
      {!feed_eof}. *)

  val feed_string : t -> string -> unit

  val feed_eof : t -> unit
  (** The peer closed its write side; pending partial input is resolved
      exactly as the pull reader resolves EOF (a newline-less trailing
      /1 line still parses, a truncated /2 header or payload is [Eof]). *)

  val next : t -> read_result option
  (** The next complete result, or [None] when more bytes are needed.
      Call in a loop after every {!feed}: one feed can complete several
      frames. After [Some Eof], every later call returns [Some Eof]. *)

  val buffered : t -> int
  (** Bytes held but not yet consumed by {!next} — the event loop's
      per-connection backpressure signal. *)

  val fed : t -> int
  (** Total bytes ever fed (mirrors {!reader_bytes} for the stats
      [bytes_in] accounting). *)
end
