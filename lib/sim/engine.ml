(* The batch engine is a loop over the incremental {!Stepper}: feed the
   round's request, step. One code path serves both pre-materialized
   [Instance] runs and the online serving layer, and the 260+ existing
   tests pin the stepper's behavior (streams stay byte-identical). *)

let phase_names = Stepper.phase_names

type result = Stepper.result = {
  ledger : Ledger.t;
  stats : (string * int) list;
  final_assignment : Types.color option array;
  profile : Rrs_obs.Profile.t option;
}

let run ?(speed = 1) ?(record_events = true) ?sink ?probes ?(profile = false)
    ?faults ~n ~policy:(module P : Policy.POLICY) (instance : Instance.t) =
  if n < 1 then invalid_arg "Engine.run: n must be >= 1";
  if speed < 1 then invalid_arg "Engine.run: speed must be >= 1";
  Log.debug (fun m ->
      m "run %s: policy=%s n=%d speed=%d horizon=%d" instance.Instance.name
        P.name n speed instance.Instance.horizon);
  let stepper =
    Stepper.create ~record_events ?sink ?probes ~profile ?faults
      ~label:"Engine.run" ~policy:(module P)
      {
        Stepper.name = instance.Instance.name;
        delta = instance.delta;
        bounds = instance.bounds;
        n;
        speed;
        horizon = instance.horizon;
      }
  in
  (* A policy exception mid-run must not leave a silently truncated
     stream: close it with an explicit aborted record, flush, re-raise. *)
  (match
     for round = 0 to instance.horizon - 1 do
       Stepper.feed stepper instance.requests.(round);
       Stepper.step stepper
     done
   with
  | () -> ()
  | exception e ->
      let backtrace = Printexc.get_raw_backtrace () in
      Stepper.abort stepper ~reason:(Printexc.to_string e);
      Printexc.raise_with_backtrace e backtrace);
  let result = Stepper.finish stepper in
  Log.debug (fun m ->
      m "done %s: cost=%d reconfigs=%d drops=%d" instance.Instance.name
        (Ledger.total_cost result.ledger)
        (Ledger.reconfig_count result.ledger)
        (Ledger.drop_count result.ledger));
  result

let cost ?speed ?faults ~n ~policy instance =
  let { ledger; _ } =
    run ?speed ?faults ~record_events:false ~n ~policy instance
  in
  Ledger.total_cost ledger
