type result = {
  ledger : Ledger.t;
  stats : (string * int) list;
  final_assignment : Types.color option array;
}

let run ?(speed = 1) ?(record_events = true) ~n
    ~policy:(module P : Policy.POLICY) (instance : Instance.t) =
  if n < 1 then invalid_arg "Engine.run: n must be >= 1";
  if speed < 1 then invalid_arg "Engine.run: speed must be >= 1";
  Log.debug (fun m ->
      m "run %s: policy=%s n=%d speed=%d horizon=%d" instance.Instance.name
        P.name n speed instance.Instance.horizon);
  let delta = instance.delta in
  let bounds = instance.bounds in
  let pool = Job_pool.create ~num_colors:(Array.length bounds) in
  let ledger = Ledger.create ~record_events ~delta () in
  let state = P.create ~n ~delta ~bounds in
  let assignment = Array.make n None in
  for round = 0 to instance.horizon - 1 do
    (* Drop phase: jobs with deadline = round are dropped. *)
    let dropped = Job_pool.drop_expired pool ~round in
    if dropped <> [] then
      Log.debug (fun m ->
          m "round %d: dropped %a" round
            (Format.pp_print_list
               ~pp_sep:(fun ppf () -> Format.fprintf ppf " ")
               (fun ppf (c, k) -> Format.fprintf ppf "%d:%d" c k))
            dropped);
    List.iter
      (fun (color, count) -> Ledger.record_drop ledger ~round ~color ~count)
      dropped;
    P.on_drop state ~round ~dropped;
    (* Arrival phase. *)
    let request = instance.requests.(round) in
    List.iter
      (fun (color, count) ->
        Job_pool.add pool ~color ~deadline:(round + bounds.(color)) ~count)
      request;
    P.on_arrival state ~round ~request;
    (* Reconfiguration + execution, [speed] mini-rounds. *)
    for mini_round = 0 to speed - 1 do
      let view =
        { Policy.round; mini_round; n; delta; bounds; assignment; pool }
      in
      let target = P.reconfigure state view in
      if Array.length target <> n then
        invalid_arg
          (Printf.sprintf "Engine.run: policy %s returned %d locations, expected %d"
             P.name (Array.length target) n);
      let num_colors = Array.length bounds in
      for location = 0 to n - 1 do
        match target.(location) with
        | None -> () (* inactive this mini-round; physical color persists *)
        | Some next ->
            if next < 0 || next >= num_colors then
              invalid_arg
                (Printf.sprintf
                   "Engine.run: policy %s returned color %d at location %d \
                    (round %d, mini-round %d); valid colors are 0..%d"
                   P.name next location round mini_round (num_colors - 1));
            if assignment.(location) <> Some next then begin
              Ledger.record_reconfig ledger ~round ~mini_round ~location
                ~previous:assignment.(location) ~next;
              assignment.(location) <- Some next
            end
      done;
      for location = 0 to n - 1 do
        match target.(location) with
        | None -> ()
        | Some color -> (
            match Job_pool.execute_one pool ~color ~round with
            | None -> ()
            | Some deadline ->
                Ledger.record_execute ledger ~round ~mini_round ~location ~color
                  ~deadline)
      done
    done
  done;
  Log.debug (fun m ->
      m "done %s: cost=%d reconfigs=%d drops=%d" instance.Instance.name
        (Ledger.total_cost ledger)
        (Ledger.reconfig_count ledger)
        (Ledger.drop_count ledger));
  { ledger; stats = P.stats state; final_assignment = assignment }

let cost ?speed ~n ~policy instance =
  let { ledger; _ } = run ?speed ~record_events:false ~n ~policy instance in
  Ledger.total_cost ledger
