module Probe = Rrs_obs.Probe
module Profile = Rrs_obs.Profile

let phase_names = [ "drop"; "arrival"; "reconfig"; "execute" ]

type result = {
  ledger : Ledger.t;
  stats : (string * int) list;
  final_assignment : Types.color option array;
  profile : Profile.t option;
}

(* The standard engine probes, registered in the caller's registry so
   policies and analysis helpers share the namespace. *)
type probes = {
  registry : Probe.registry;
  exec_slack : Probe.histogram;
  drop_latency : Probe.histogram;
  round_reconfigs : Probe.histogram;
  queue_depth : Probe.histogram;
  offline_locations : Probe.histogram;
  failed_reconfigs : Probe.counter;
  color_depth : Probe.gauge array;
}

let make_probes registry ~num_colors =
  {
    registry;
    exec_slack = Probe.histogram registry "exec_slack";
    drop_latency = Probe.histogram registry "drop_latency";
    round_reconfigs = Probe.histogram registry "round_reconfigs";
    queue_depth = Probe.histogram registry "queue_depth";
    offline_locations = Probe.histogram registry "offline_locations";
    failed_reconfigs = Probe.counter registry "failed_reconfigs";
    color_depth =
      Array.init num_colors (fun color ->
          Probe.gauge registry (Printf.sprintf "queue_depth_c%d" color));
  }

let run ?(speed = 1) ?(record_events = true) ?sink ?probes ?(profile = false)
    ?faults ~n ~policy:(module P : Policy.POLICY) (instance : Instance.t) =
  if n < 1 then invalid_arg "Engine.run: n must be >= 1";
  if speed < 1 then invalid_arg "Engine.run: speed must be >= 1";
  Log.debug (fun m ->
      m "run %s: policy=%s n=%d speed=%d horizon=%d" instance.Instance.name
        P.name n speed instance.Instance.horizon);
  let delta = instance.delta in
  let bounds = instance.bounds in
  let num_colors = Array.length bounds in
  let faults =
    match faults with
    | Some plan when not (Fault.is_empty plan) ->
        Some (Fault.compile plan ~n ~horizon:instance.Instance.horizon)
    | Some _ | None -> None
  in
  let pool = Job_pool.create ~num_colors in
  let ledger = Ledger.create ~record_events ?sink ~delta () in
  let sink = Ledger.sink ledger in
  Event_sink.write_header sink ~name:instance.Instance.name ~delta ~n ~speed
    ~horizon:instance.Instance.horizon ~bounds;
  let probes = Option.map (fun reg -> make_probes reg ~num_colors) probes in
  let prof = Profile.create phase_names in
  let idle_mark = { Profile.mark_s = 0.0; mark_minor = 0.0 } in
  let mark () = if profile then Profile.start () else idle_mark in
  let tick index m = if profile then Profile.stop prof index m in
  let state = P.create ~n ~delta ~bounds in
  let assignment = Array.make n None in
  let offline = Array.make n false in
  let offline_count = ref 0 in
  let current_round = ref 0 in
  let simulate () =
    for round = 0 to instance.horizon - 1 do
      current_round := round;
      let reconfigs0 = Ledger.reconfig_count ledger in
      let drops0 = Ledger.drop_count ledger in
      let execs0 = Ledger.exec_count ledger in
      (* Fault transitions, before the drop phase: repairs first, then
         crashes (a merged plan never has both for one location in one
         round). A crashed location loses its color. *)
      (match faults with
      | None -> ()
      | Some plan ->
          List.iter
            (fun location ->
              offline.(location) <- false;
              decr offline_count;
              Ledger.record_repair ledger ~round ~location)
            (Fault.repairs_at plan ~round);
          List.iter
            (fun location ->
              offline.(location) <- true;
              incr offline_count;
              assignment.(location) <- None;
              Ledger.record_crash ledger ~round ~location)
            (Fault.crashes_at plan ~round));
      (* Drop phase: jobs with deadline = round are dropped. *)
      let m0 = mark () in
      let dropped = Job_pool.drop_expired pool ~round in
      if dropped <> [] then
        Log.debug (fun m ->
            m "round %d: dropped %a" round
              (Format.pp_print_list
                 ~pp_sep:(fun ppf () -> Format.fprintf ppf " ")
                 (fun ppf (c, k) -> Format.fprintf ppf "%d:%d" c k))
              dropped);
      List.iter
        (fun (color, count) -> Ledger.record_drop ledger ~round ~color ~count)
        dropped;
      (match probes with
      | None -> ()
      | Some p ->
          List.iter
            (fun (color, count) ->
              Probe.observe_n p.drop_latency bounds.(color) ~n:count)
            dropped);
      P.on_drop state ~round ~dropped;
      tick 0 m0;
      (* Arrival phase. *)
      let m1 = mark () in
      let request = instance.requests.(round) in
      List.iter
        (fun (color, count) ->
          Job_pool.add pool ~color ~deadline:(round + bounds.(color)) ~count)
        request;
      P.on_arrival state ~round ~request;
      tick 1 m1;
      (* Reconfiguration + execution, [speed] mini-rounds. *)
      for mini_round = 0 to speed - 1 do
        let m2 = mark () in
        let view =
          { Policy.round; mini_round; n; delta; bounds; assignment; pool }
        in
        let target = P.reconfigure state view in
        if Array.length target <> n then
          invalid_arg
            (Printf.sprintf
               "Engine.run: policy %s returned %d locations, expected %d"
               P.name (Array.length target) n);
        for location = 0 to n - 1 do
          match target.(location) with
          | None -> () (* inactive this mini-round; physical color persists *)
          | Some next ->
              if next < 0 || next >= num_colors then
                invalid_arg
                  (Printf.sprintf
                     "Engine.run: policy %s returned color %d at location %d \
                      (round %d, mini-round %d); valid colors are 0..%d"
                     P.name next location round mini_round (num_colors - 1));
              if offline.(location) then
                () (* offline: the target is ignored, nothing is paid *)
              else if assignment.(location) <> Some next then
                if
                  match faults with
                  | None -> false
                  | Some plan -> Fault.reconfig_fails plan ~round ~location
                then begin
                  Ledger.record_failed_reconfig ledger ~round ~mini_round
                    ~location ~previous:assignment.(location) ~attempted:next;
                  match probes with
                  | None -> ()
                  | Some p -> Probe.incr p.failed_reconfigs
                end
                else begin
                  Ledger.record_reconfig ledger ~round ~mini_round ~location
                    ~previous:assignment.(location) ~next;
                  assignment.(location) <- Some next
                end
        done;
        tick 2 m2;
        let m3 = mark () in
        for location = 0 to n - 1 do
          (* Execute the location's PHYSICAL color: after a failed
             reconfiguration it differs from the policy's target. *)
          if not offline.(location) && target.(location) <> None then
            match assignment.(location) with
            | None -> ()
            | Some color -> (
                match Job_pool.execute_one pool ~color ~round with
                | None -> ()
                | Some deadline ->
                    Ledger.record_execute ledger ~round ~mini_round ~location
                      ~color ~deadline;
                    (match probes with
                    | None -> ()
                    | Some p -> Probe.observe p.exec_slack (deadline - round)))
        done;
        tick 3 m3
      done;
      (* End-of-round observability: probes and the streamed snapshot. *)
      (match probes with
      | None -> ()
      | Some p ->
          Probe.observe p.round_reconfigs
            (Ledger.reconfig_count ledger - reconfigs0);
          Probe.observe p.queue_depth (Job_pool.total_pending pool);
          Probe.observe p.offline_locations !offline_count;
          Array.iteri
            (fun color g -> Probe.set_gauge g (Job_pool.pending pool color))
            p.color_depth);
      Event_sink.write_round sink ~round
        ~pending:(Job_pool.total_pending pool)
        ~reconfigs:(Ledger.reconfig_count ledger - reconfigs0)
        ~drops:(Ledger.drop_count ledger - drops0)
        ~execs:(Ledger.exec_count ledger - execs0)
    done
  in
  (* A policy exception mid-run must not leave a silently truncated
     stream: close it with an explicit aborted record, flush, re-raise. *)
  (match simulate () with
  | () -> ()
  | exception e ->
      let backtrace = Printexc.get_raw_backtrace () in
      Event_sink.write_aborted sink ~round:!current_round
        ~reason:(Printexc.to_string e);
      Event_sink.flush sink;
      Printexc.raise_with_backtrace e backtrace);
  Event_sink.write_summary sink ~delta
    ~reconfigs:(Ledger.reconfig_count ledger)
    ~failed:(Ledger.failed_reconfig_count ledger)
    ~drops:(Ledger.drop_count ledger) ~execs:(Ledger.exec_count ledger);
  Event_sink.flush sink;
  Log.debug (fun m ->
      m "done %s: cost=%d reconfigs=%d drops=%d" instance.Instance.name
        (Ledger.total_cost ledger)
        (Ledger.reconfig_count ledger)
        (Ledger.drop_count ledger));
  let stats =
    P.stats state
    @ (match probes with Some p -> Probe.snapshot p.registry | None -> [])
  in
  {
    ledger;
    stats;
    final_assignment = assignment;
    profile = (if profile then Some prof else None);
  }

let cost ?speed ?faults ~n ~policy instance =
  let { ledger; _ } =
    run ?speed ?faults ~record_events:false ~n ~policy instance
  in
  Ledger.total_cost ledger
