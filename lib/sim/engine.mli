(** The discrete-round engine: the paper's four-phase round model.

    Implemented as a loop over the incremental {!Stepper} (feed one
    round's request, step): batch runs and the online serving layer
    ([Rrs_server]) execute the same code and emit byte-identical
    [rrs-events/2] streams.

    Each round runs (1) the drop phase — jobs whose deadline equals the
    round index are dropped at unit cost each; (2) the arrival phase;
    (3)+(4) [speed] iterations of the reconfiguration and execution
    phases ([speed = 1] for uni-speed algorithms, [speed = 2] for the
    double-speed schedules of Section 3.3). In each execution phase every
    location configured with color [c] executes up to one pending job of
    color [c], always the one with the earliest deadline.

    Fault injection (opt-in via [faults], see {!Fault}): crash windows
    take locations offline at the start of a round (before the drop
    phase) — an offline location loses its color, ignores the policy's
    target and executes nothing until repaired — and reconfiguration
    failures make a Configure pay [Delta] without taking effect. With an
    empty (or absent) plan the engine behaves bit-for-bit as before.

    Observability (all opt-in, zero-cost when off):
    - [sink]: stream ledger events, per-round snapshots and a closing
      summary (JSONL schema [rrs-events/2]) with bounded resident memory.
      A policy exception mid-run closes the stream with an explicit
      [aborted] record (then re-raises), so readers can tell an abort
      from silent truncation.
    - [probes]: register the standard engine probes ([exec_slack],
      [drop_latency], [round_reconfigs], [queue_depth],
      [offline_locations], [failed_reconfigs], per-color
      [queue_depth_c<i>] gauges) in the given registry; their snapshot is
      appended to [result.stats], sharing the policy-stats namespace that
      [Rrs_core.Instrument.stat] reads.
    - [profile]: per-phase monotonic wall-clock + GC minor-words
      aggregates in [result.profile]. *)

(** Phase slot names of [result.profile], in slot order:
    [drop; arrival; reconfig; execute]. *)
val phase_names : string list

type result = Stepper.result = {
  ledger : Ledger.t;
  stats : (string * int) list;
      (* policy-reported counters, then the probe snapshot (if any) *)
  final_assignment : Types.color option array;
  profile : Rrs_obs.Profile.t option;
}

(** [run ~n ~policy instance] simulates [instance] to its horizon with [n]
    resources under [policy].

    @param speed mini-rounds (reconfig+execution iterations) per round;
    default 1.
    @param record_events keep the full event log in the ledger (needed by
    {!Schedule.validate}); default true. Ignored when [sink] is given.
    @param sink explicit event sink (overrides [record_events]).
    @param probes register and drive the standard engine probes in this
    registry.
    @param profile measure per-phase wall clock and allocation; default
    false.
    @param faults deterministic fault plan; absent or {!Fault.empty}
    leaves the run untouched.
    @raise Invalid_argument if the policy returns an assignment of the
    wrong length, or [n < 1], or [speed < 1], or the fault plan names a
    location [>= n]. *)
val run :
  ?speed:int ->
  ?record_events:bool ->
  ?sink:Event_sink.t ->
  ?probes:Rrs_obs.Probe.registry ->
  ?profile:bool ->
  ?faults:Fault.plan ->
  n:int ->
  policy:(module Policy.POLICY) ->
  Instance.t ->
  result

(** Convenience: [total_cost (run ...)]. *)
val cost :
  ?speed:int -> ?faults:Fault.plan -> n:int -> policy:(module Policy.POLICY) ->
  Instance.t -> int
