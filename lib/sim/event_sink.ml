type event =
  | Reconfig of { round : int; mini_round : int; location : int;
                  previous : Types.color option; next : Types.color }
  | Drop of { round : int; color : Types.color; count : int }
  | Execute of { round : int; mini_round : int; location : int;
                 color : Types.color; deadline : int }
  | Crash of { round : int; location : int }
  | Repair of { round : int; location : int }
  | Reconfig_failed of { round : int; mini_round : int; location : int;
                         previous : Types.color option;
                         attempted : Types.color }

type t =
  | Null
  | Memory of event list ref
  | Jsonl of out_channel

let memory () = Memory (ref [])

let schema_version = "rrs-events/2"
let supported_schemas = [ "rrs-events/1"; schema_version ]

(* ---- writing ---- *)

let escape_into buffer s =
  Buffer.add_char buffer '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buffer "\\\""
      | '\\' -> Buffer.add_string buffer "\\\\"
      | '\n' -> Buffer.add_string buffer "\\n"
      | '\r' -> Buffer.add_string buffer "\\r"
      | '\t' -> Buffer.add_string buffer "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buffer (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buffer c)
    s;
  Buffer.add_char buffer '"'

let escape s =
  let buffer = Buffer.create (String.length s + 2) in
  escape_into buffer s;
  Buffer.contents buffer

let color_opt = function None -> "null" | Some c -> string_of_int c

let event_line event =
  match event with
  | Reconfig { round; mini_round; location; previous; next } ->
      Printf.sprintf
        "{\"type\":\"reconfig\",\"round\":%d,\"mini\":%d,\"location\":%d,\
         \"previous\":%s,\"next\":%d}"
        round mini_round location (color_opt previous) next
  | Drop { round; color; count } ->
      Printf.sprintf "{\"type\":\"drop\",\"round\":%d,\"color\":%d,\"count\":%d}"
        round color count
  | Execute { round; mini_round; location; color; deadline } ->
      Printf.sprintf
        "{\"type\":\"execute\",\"round\":%d,\"mini\":%d,\"location\":%d,\
         \"color\":%d,\"deadline\":%d}"
        round mini_round location color deadline
  | Crash { round; location } ->
      Printf.sprintf "{\"type\":\"crash\",\"round\":%d,\"location\":%d}" round
        location
  | Repair { round; location } ->
      Printf.sprintf "{\"type\":\"repair\",\"round\":%d,\"location\":%d}" round
        location
  | Reconfig_failed { round; mini_round; location; previous; attempted } ->
      Printf.sprintf
        "{\"type\":\"reconfig_failed\",\"round\":%d,\"mini\":%d,\
         \"location\":%d,\"previous\":%s,\"attempted\":%d}"
        round mini_round location (color_opt previous) attempted

let write_line channel line =
  output_string channel line;
  output_char channel '\n'

let record t event =
  match t with
  | Null -> ()
  | Memory events -> events := event :: !events
  | Jsonl channel -> write_line channel (event_line event)

let events = function
  | Null | Jsonl _ -> []
  | Memory events -> List.rev !events

let write_header t ~name ~delta ~n ~speed ~horizon ~bounds =
  match t with
  | Null | Memory _ -> ()
  | Jsonl channel ->
      let buffer = Buffer.create 128 in
      Buffer.add_string buffer "{\"schema\":";
      escape_into buffer schema_version;
      Buffer.add_string buffer ",\"name\":";
      escape_into buffer name;
      Buffer.add_string buffer
        (Printf.sprintf ",\"delta\":%d,\"n\":%d,\"speed\":%d,\"horizon\":%d,\
                         \"colors\":%d,\"bounds\":["
           delta n speed horizon (Array.length bounds));
      Array.iteri
        (fun i bound ->
          if i > 0 then Buffer.add_char buffer ',';
          Buffer.add_string buffer (string_of_int bound))
        bounds;
      Buffer.add_string buffer "]}";
      write_line channel (Buffer.contents buffer)

let write_round t ~round ~pending ~reconfigs ~drops ~execs =
  match t with
  | Null | Memory _ -> ()
  | Jsonl channel ->
      write_line channel
        (Printf.sprintf
           "{\"type\":\"round\",\"round\":%d,\"pending\":%d,\"reconfigs\":%d,\
            \"drops\":%d,\"execs\":%d}"
           round pending reconfigs drops execs)

let write_summary t ~delta ~reconfigs ~failed ~drops ~execs =
  match t with
  | Null | Memory _ -> ()
  | Jsonl channel ->
      write_line channel
        (Printf.sprintf
           "{\"type\":\"summary\",\"cost\":%d,\"reconfig_count\":%d,\
            \"reconfig_cost\":%d,\"failed_reconfig_count\":%d,\
            \"drop_count\":%d,\"exec_count\":%d}"
           ((delta * reconfigs) + drops)
           reconfigs (delta * reconfigs) failed drops execs)

let write_restored t ~round ~reconfigs ~failed ~drops ~execs =
  match t with
  | Null | Memory _ -> ()
  | Jsonl channel ->
      write_line channel
        (Printf.sprintf
           "{\"type\":\"restored\",\"round\":%d,\"reconfigs\":%d,\
            \"failed\":%d,\"drops\":%d,\"execs\":%d}"
           round reconfigs failed drops execs)

let write_aborted t ~round ~reason =
  match t with
  | Null | Memory _ -> ()
  | Jsonl channel ->
      write_line channel
        (Printf.sprintf "{\"type\":\"aborted\",\"round\":%d,\"reason\":%s}"
           round (escape reason))

let flush = function Null | Memory _ -> () | Jsonl channel -> Stdlib.flush channel

(* ---- reading ---- *)

(* Scanner for the flat objects this module (and [Fault]) writes: string
   keys; int, string, null or int-array values. *)
module Json = struct
  type value = Vint of int | Vstr of string | Vnull | Vints of int array

  exception Parse_error of string

  let escape = escape

  let ints values =
    let buffer = Buffer.create 64 in
    Buffer.add_char buffer '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char buffer ',';
        Buffer.add_string buffer (string_of_int v))
      values;
    Buffer.add_char buffer ']';
    Buffer.contents buffer

  let parse_fields text =
    let len = String.length text in
    let pos = ref 0 in
    let fail message = raise (Parse_error message) in
    let peek () = if !pos < len then text.[!pos] else '\000' in
    let skip_ws () =
      while
        !pos < len && (match text.[!pos] with ' ' | '\t' -> true | _ -> false)
      do incr pos done
    in
    let expect c =
      skip_ws ();
      if peek () <> c then
        fail (Printf.sprintf "expected %C at offset %d" c !pos);
      incr pos
    in
    let parse_string () =
      expect '"';
      let buffer = Buffer.create 16 in
      let rec go () =
        if !pos >= len then fail "unterminated string"
        else
          match text.[!pos] with
          | '"' -> incr pos
          | '\\' ->
              if !pos + 1 >= len then fail "dangling escape";
              (match text.[!pos + 1] with
              | '"' -> Buffer.add_char buffer '"'
              | '\\' -> Buffer.add_char buffer '\\'
              | 'n' -> Buffer.add_char buffer '\n'
              | 'r' -> Buffer.add_char buffer '\r'
              | 't' -> Buffer.add_char buffer '\t'
              | 'u' ->
                  if !pos + 5 >= len then fail "short \\u escape";
                  let code =
                    try int_of_string ("0x" ^ String.sub text (!pos + 2) 4)
                    with _ -> fail "bad \\u escape"
                  in
                  if code > 0xff then fail "non-latin \\u escape"
                  else Buffer.add_char buffer (Char.chr code);
                  pos := !pos + 4
              | c -> fail (Printf.sprintf "bad escape \\%c" c));
              pos := !pos + 2;
              go ()
          | c ->
              Buffer.add_char buffer c;
              incr pos;
              go ()
      in
      go ();
      Buffer.contents buffer
    in
    let parse_int () =
      skip_ws ();
      let start = !pos in
      if peek () = '-' then incr pos;
      while
        !pos < len && (match text.[!pos] with '0' .. '9' -> true | _ -> false)
      do incr pos done;
      if !pos = start then
        fail (Printf.sprintf "expected integer at offset %d" start);
      match int_of_string_opt (String.sub text start (!pos - start)) with
      | Some value -> value
      | None -> fail "bad integer"
    in
    let parse_value () =
      skip_ws ();
      match peek () with
      | '"' -> Vstr (parse_string ())
      | 'n' ->
          if !pos + 4 <= len && String.sub text !pos 4 = "null" then begin
            pos := !pos + 4;
            Vnull
          end
          else fail "bad literal"
      | '[' ->
          incr pos;
          skip_ws ();
          if peek () = ']' then begin incr pos; Vints [||] end
          else begin
            let items = ref [ parse_int () ] in
            skip_ws ();
            while peek () = ',' do
              incr pos;
              items := parse_int () :: !items;
              skip_ws ()
            done;
            expect ']';
            Vints (Array.of_list (List.rev !items))
          end
      | _ -> Vint (parse_int ())
    in
    expect '{';
    skip_ws ();
    let fields = ref [] in
    if peek () = '}' then incr pos
    else begin
      let parse_field () =
        let key = (skip_ws (); parse_string ()) in
        expect ':';
        let value = parse_value () in
        fields := (key, value) :: !fields
      in
      parse_field ();
      skip_ws ();
      while peek () = ',' do
        incr pos;
        parse_field ();
        skip_ws ()
      done;
      expect '}'
    end;
    skip_ws ();
    if !pos <> len then fail "trailing content after object";
    List.rev !fields

  let field fields key =
    match List.assoc_opt key fields with
    | Some value -> value
    | None -> raise (Parse_error (Printf.sprintf "missing field %S" key))

  let int_field fields key =
    match field fields key with
    | Vint value -> value
    | _ -> raise (Parse_error (Printf.sprintf "field %S: expected int" key))

  let opt_int_field fields key ~default =
    match List.assoc_opt key fields with
    | None -> default
    | Some (Vint value) -> value
    | Some _ ->
        raise (Parse_error (Printf.sprintf "field %S: expected int" key))

  let str_field fields key =
    match field fields key with
    | Vstr value -> value
    | _ -> raise (Parse_error (Printf.sprintf "field %S: expected string" key))

  let ints_field fields key =
    match field fields key with
    | Vints value -> value
    | _ ->
        raise (Parse_error (Printf.sprintf "field %S: expected int array" key))

  let color_opt_field fields key =
    match field fields key with
    | Vnull -> None
    | Vint c -> Some c
    | _ ->
        raise
          (Parse_error (Printf.sprintf "field %S: expected int or null" key))
end

type header = {
  hdr_name : string;
  hdr_delta : int;
  hdr_n : int;
  hdr_speed : int;
  hdr_horizon : int;
  hdr_bounds : int array;
}

type round_snapshot = {
  snap_round : int;
  snap_pending : int;
  snap_reconfigs : int;
  snap_drops : int;
  snap_execs : int;
}

type summary = {
  sum_cost : int;
  sum_reconfig_count : int;
  sum_reconfig_cost : int;
  sum_failed_reconfig_count : int; (* 0 in rrs-events/1 files *)
  sum_drop_count : int;
  sum_exec_count : int;
}

type line =
  | Header of header
  | Event of event
  | Round of round_snapshot
  | Summary of summary
  | Restored of { res_round : int; res_reconfigs : int; res_failed : int;
                  res_drops : int; res_execs : int }
  | Aborted of { ab_round : int; ab_reason : string }

let parse_line text =
  let open Json in
  match parse_fields text with
  | exception Parse_error message -> Error message
  | fields -> (
      try
        if List.mem_assoc "schema" fields then begin
          let schema = str_field fields "schema" in
          if not (List.mem schema supported_schemas) then
            Error
              (Printf.sprintf "unsupported schema %S (want one of: %s)" schema
                 (String.concat ", " supported_schemas))
          else
            Ok
              (Header
                 {
                   hdr_name = str_field fields "name";
                   hdr_delta = int_field fields "delta";
                   hdr_n = int_field fields "n";
                   hdr_speed = int_field fields "speed";
                   hdr_horizon = int_field fields "horizon";
                   hdr_bounds = ints_field fields "bounds";
                 })
        end
        else
          match str_field fields "type" with
          | "reconfig" ->
              Ok
                (Event
                   (Reconfig
                      {
                        round = int_field fields "round";
                        mini_round = int_field fields "mini";
                        location = int_field fields "location";
                        previous = color_opt_field fields "previous";
                        next = int_field fields "next";
                      }))
          | "drop" ->
              Ok
                (Event
                   (Drop
                      {
                        round = int_field fields "round";
                        color = int_field fields "color";
                        count = int_field fields "count";
                      }))
          | "execute" ->
              Ok
                (Event
                   (Execute
                      {
                        round = int_field fields "round";
                        mini_round = int_field fields "mini";
                        location = int_field fields "location";
                        color = int_field fields "color";
                        deadline = int_field fields "deadline";
                      }))
          | "crash" ->
              Ok
                (Event
                   (Crash
                      {
                        round = int_field fields "round";
                        location = int_field fields "location";
                      }))
          | "repair" ->
              Ok
                (Event
                   (Repair
                      {
                        round = int_field fields "round";
                        location = int_field fields "location";
                      }))
          | "reconfig_failed" ->
              Ok
                (Event
                   (Reconfig_failed
                      {
                        round = int_field fields "round";
                        mini_round = int_field fields "mini";
                        location = int_field fields "location";
                        previous = color_opt_field fields "previous";
                        attempted = int_field fields "attempted";
                      }))
          | "round" ->
              Ok
                (Round
                   {
                     snap_round = int_field fields "round";
                     snap_pending = int_field fields "pending";
                     snap_reconfigs = int_field fields "reconfigs";
                     snap_drops = int_field fields "drops";
                     snap_execs = int_field fields "execs";
                   })
          | "summary" ->
              Ok
                (Summary
                   {
                     sum_cost = int_field fields "cost";
                     sum_reconfig_count = int_field fields "reconfig_count";
                     sum_reconfig_cost = int_field fields "reconfig_cost";
                     sum_failed_reconfig_count =
                       opt_int_field fields "failed_reconfig_count" ~default:0;
                     sum_drop_count = int_field fields "drop_count";
                     sum_exec_count = int_field fields "exec_count";
                   })
          | "restored" ->
              Ok
                (Restored
                   {
                     res_round = int_field fields "round";
                     res_reconfigs = int_field fields "reconfigs";
                     res_failed = int_field fields "failed";
                     res_drops = int_field fields "drops";
                     res_execs = int_field fields "execs";
                   })
          | "aborted" ->
              Ok
                (Aborted
                   {
                     ab_round = int_field fields "round";
                     ab_reason = str_field fields "reason";
                   })
          | other -> Error (Printf.sprintf "unknown line type %S" other)
      with Parse_error message -> Error message)
