(** Streaming destination for ledger events and per-round snapshots.

    The sink replaces the ledger's historical grow-forever event list: a
    [Memory] sink retains events for {!Schedule.validate} exactly as
    before, while a [Jsonl] sink streams every event (plus engine-written
    round snapshots and a closing summary) as one JSON object per line —
    schema {!schema_version} ([rrs-events/1]) — so horizon-length runs
    keep bounded resident memory. [Null] discards everything.

    JSONL line shapes (first line is always the header):
    {v
    {"schema":"rrs-events/1","name":...,"delta":D,"n":N,"speed":S,
     "horizon":H,"colors":C,"bounds":[...]}
    {"type":"reconfig","round":r,"mini":m,"location":l,"previous":p,"next":c}
    {"type":"drop","round":r,"color":c,"count":k}
    {"type":"execute","round":r,"mini":m,"location":l,"color":c,"deadline":d}
    {"type":"round","round":r,"pending":q,"reconfigs":a,"drops":b,"execs":e}
    {"type":"summary","cost":C,"reconfig_count":R,"reconfig_cost":X,
     "drop_count":D,"exec_count":E}
    v}
    ["previous"] is [null] for a black (unconfigured) location. The
    summary line lets a reader detect truncated files: totals folded from
    the event lines must match it exactly. *)

type event =
  | Reconfig of { round : int; mini_round : int; location : int;
                  previous : Types.color option; next : Types.color }
  | Drop of { round : int; color : Types.color; count : int }
  | Execute of { round : int; mini_round : int; location : int;
                 color : Types.color; deadline : int }

type t =
  | Null
  | Memory of event list ref (* reverse chronological *)
  | Jsonl of out_channel

(** A fresh [Memory] sink. *)
val memory : unit -> t

(** [record t event] appends to a [Memory] sink or writes one JSONL line;
    no-op on [Null]. *)
val record : t -> event -> unit

(** Retained events in chronological order ([] for [Null] and [Jsonl]).*)
val events : t -> event list

val schema_version : string

(** Header, round-snapshot and summary lines; no-ops unless [Jsonl]. *)
val write_header :
  t -> name:string -> delta:int -> n:int -> speed:int -> horizon:int ->
  bounds:int array -> unit

val write_round :
  t -> round:int -> pending:int -> reconfigs:int -> drops:int -> execs:int ->
  unit

val write_summary :
  t -> delta:int -> reconfigs:int -> drops:int -> execs:int -> unit

(** Flush the underlying channel ([Jsonl] only). *)
val flush : t -> unit

(** {1 Reading JSONL back}

    Minimal parser for the flat objects this module writes (ints,
    strings, [null], one int array). Unknown line types and unknown
    fields are errors — the schema is versioned, not open. *)

type header = {
  hdr_name : string;
  hdr_delta : int;
  hdr_n : int;
  hdr_speed : int;
  hdr_horizon : int;
  hdr_bounds : int array;
}

type round_snapshot = {
  snap_round : int;
  snap_pending : int;
  snap_reconfigs : int;
  snap_drops : int;
  snap_execs : int;
}

type summary = {
  sum_cost : int;
  sum_reconfig_count : int;
  sum_reconfig_cost : int;
  sum_drop_count : int;
  sum_exec_count : int;
}

type line =
  | Header of header
  | Event of event
  | Round of round_snapshot
  | Summary of summary

(** Parse one JSONL line. *)
val parse_line : string -> (line, string) result
