(** Streaming destination for ledger events and per-round snapshots.

    The sink replaces the ledger's historical grow-forever event list: a
    [Memory] sink retains events for {!Schedule.validate} exactly as
    before, while a [Jsonl] sink streams every event (plus engine-written
    round snapshots and a closing summary) as one JSON object per line —
    schema {!schema_version} ([rrs-events/2]) — so horizon-length runs
    keep bounded resident memory. [Null] discards everything.

    JSONL line shapes (first line is always the header):
    {v
    {"schema":"rrs-events/2","name":...,"delta":D,"n":N,"speed":S,
     "horizon":H,"colors":C,"bounds":[...]}
    {"type":"reconfig","round":r,"mini":m,"location":l,"previous":p,"next":c}
    {"type":"drop","round":r,"color":c,"count":k}
    {"type":"execute","round":r,"mini":m,"location":l,"color":c,"deadline":d}
    {"type":"crash","round":r,"location":l}
    {"type":"repair","round":r,"location":l}
    {"type":"reconfig_failed","round":r,"mini":m,"location":l,
     "previous":p,"attempted":c}
    {"type":"round","round":r,"pending":q,"reconfigs":a,"drops":b,"execs":e}
    {"type":"summary","cost":C,"reconfig_count":R,"reconfig_cost":X,
     "failed_reconfig_count":F,"drop_count":D,"exec_count":E}
    {"type":"restored","round":r,"reconfigs":a,"failed":f,"drops":b,"execs":e}
    {"type":"aborted","round":r,"reason":"..."}
    v}
    ["previous"] is [null] for a black (unconfigured) location. The
    summary line lets a reader detect truncated files: totals folded from
    the event lines must match it exactly. A run that dies mid-stream (a
    policy exception) ends with an ["aborted"] record instead of the
    summary, so readers can distinguish an abort from silent truncation.

    rrs-events/2 extends rrs-events/1 with the [crash], [repair],
    [reconfig_failed] and [aborted] line types and the summary's
    [failed_reconfig_count] field; {!parse_line} still accepts
    rrs-events/1 files (the new field defaults to 0).

    A ["restored"] line (written by {!write_restored} right after the
    header) marks a trace whose stepper was seeded from an [rrs-snap/2]
    checkpoint: the stream carries only events from [round] on, and the
    line's counters are the totals already accumulated before it.
    Readers folding event counts (e.g. [Rrs_stats.Report]) seed their
    totals from it so the closing summary still reconciles. This is a
    documented in-version extension of rrs-events/2 — traces without the
    line are unchanged. *)

type event =
  | Reconfig of { round : int; mini_round : int; location : int;
                  previous : Types.color option; next : Types.color }
  | Drop of { round : int; color : Types.color; count : int }
  | Execute of { round : int; mini_round : int; location : int;
                 color : Types.color; deadline : int }
  | Crash of { round : int; location : int }
      (* the location goes offline at the start of [round] and loses its
         color *)
  | Repair of { round : int; location : int }
      (* the location is back online (black) from [round] on *)
  | Reconfig_failed of { round : int; mini_round : int; location : int;
                         previous : Types.color option;
                         attempted : Types.color }
      (* a Configure that paid [Delta] but left [previous] in place *)

type t =
  | Null
  | Memory of event list ref (* reverse chronological *)
  | Jsonl of out_channel

(** A fresh [Memory] sink. *)
val memory : unit -> t

(** [record t event] appends to a [Memory] sink or writes one JSONL line;
    no-op on [Null]. *)
val record : t -> event -> unit

(** Retained events in chronological order ([] for [Null] and [Jsonl]).*)
val events : t -> event list

val schema_version : string

(** Schemas {!parse_line} accepts: rrs-events/1 and rrs-events/2. *)
val supported_schemas : string list

(** Header, round-snapshot, summary and aborted lines; no-ops unless
    [Jsonl]. [failed] counts the reconfigurations that paid [Delta] but
    left the old color (they are included in [reconfigs]). *)
val write_header :
  t -> name:string -> delta:int -> n:int -> speed:int -> horizon:int ->
  bounds:int array -> unit

val write_round :
  t -> round:int -> pending:int -> reconfigs:int -> drops:int -> execs:int ->
  unit

val write_summary :
  t -> delta:int -> reconfigs:int -> failed:int -> drops:int -> execs:int ->
  unit

(** Marks a trace seeded from a checkpoint at [round] with the totals
    accumulated before it ([failed] included in [reconfigs], as in the
    summary). Written once, right after the header. *)
val write_restored :
  t -> round:int -> reconfigs:int -> failed:int -> drops:int -> execs:int ->
  unit

(** Closing record of a run that died before its summary (e.g. a policy
    exception at [round]). *)
val write_aborted : t -> round:int -> reason:string -> unit

(** Flush the underlying channel ([Jsonl] only). *)
val flush : t -> unit

(** {1 Reading JSONL back}

    Minimal parser for the flat objects this module writes (ints,
    strings, [null], one int array). Unknown line types and unknown
    fields are errors — the schema is versioned, not open. *)

(** The flat-object scanner, exposed for the other JSONL readers of the
    project ([Fault] plans share it). All accessors raise
    {!Json.Parse_error}. *)
module Json : sig
  type value = Vint of int | Vstr of string | Vnull | Vints of int array

  exception Parse_error of string

  (** Quote and escape a string as a JSON string literal. *)
  val escape : string -> string

  (** Render an int list as a JSON array literal, e.g. [[1,2,3]]. *)
  val ints : int list -> string

  (** Parse one [{"key":value,...}] object. @raise Parse_error *)
  val parse_fields : string -> (string * value) list

  val field : (string * value) list -> string -> value
  val int_field : (string * value) list -> string -> int

  (** Missing key yields [default]; a present non-int is an error. *)
  val opt_int_field : (string * value) list -> string -> default:int -> int

  val str_field : (string * value) list -> string -> string
  val ints_field : (string * value) list -> string -> int array

  (** [null] or int. *)
  val color_opt_field : (string * value) list -> string -> int option
end

type header = {
  hdr_name : string;
  hdr_delta : int;
  hdr_n : int;
  hdr_speed : int;
  hdr_horizon : int;
  hdr_bounds : int array;
}

type round_snapshot = {
  snap_round : int;
  snap_pending : int;
  snap_reconfigs : int;
  snap_drops : int;
  snap_execs : int;
}

type summary = {
  sum_cost : int;
  sum_reconfig_count : int; (* paid reconfigurations, failed included *)
  sum_reconfig_cost : int;
  sum_failed_reconfig_count : int; (* 0 in rrs-events/1 files *)
  sum_drop_count : int;
  sum_exec_count : int;
}

type line =
  | Header of header
  | Event of event
  | Round of round_snapshot
  | Summary of summary
  | Restored of { res_round : int; res_reconfigs : int; res_failed : int;
                  res_drops : int; res_execs : int }
  | Aborted of { ab_round : int; ab_reason : string }

(** Parse one JSONL line (either schema version). *)
val parse_line : string -> (line, string) result
