module Json = Event_sink.Json

type crash = { location : int; from_round : int; until_round : int }
type reconfig_failure = { rf_round : int; rf_location : int }

type plan = {
  name : string;
  seed : int;
  crashes : crash list;
  reconfig_failures : reconfig_failure list;
}

let schema_version = "rrs-faults/1"

exception Invalid of string

let invalid fmt = Printf.ksprintf (fun s -> raise (Invalid s)) fmt

let validate_crash { location; from_round; until_round } =
  if location < 0 then invalid "crash window at negative location %d" location;
  if from_round < 0 then
    invalid "crash window at location %d starts at negative round %d" location
      from_round;
  if until_round <= from_round then
    invalid "crash window at location %d is empty ([%d, %d))" location
      from_round until_round

let validate_failure { rf_round; rf_location } =
  if rf_location < 0 then
    invalid "reconfig failure at negative location %d" rf_location;
  if rf_round < 0 then
    invalid "reconfig failure at location %d in negative round %d" rf_location
      rf_round

(* Canonical form: crashes sorted by (location, from) with overlapping or
   touching windows of one location merged — so a location never repairs
   and re-crashes within the same round — and failures sorted/deduped. *)
let normalize crashes reconfig_failures =
  let crashes =
    List.sort
      (fun a b ->
        match Int.compare a.location b.location with
        | 0 -> Int.compare a.from_round b.from_round
        | c -> c)
      crashes
  in
  let crashes =
    List.fold_left
      (fun acc window ->
        match acc with
        | previous :: rest
          when previous.location = window.location
               && window.from_round <= previous.until_round ->
            { previous with
              until_round = max previous.until_round window.until_round }
            :: rest
        | _ -> window :: acc)
      [] crashes
    |> List.rev
  in
  let reconfig_failures =
    List.sort_uniq
      (fun a b ->
        match Int.compare a.rf_round b.rf_round with
        | 0 -> Int.compare a.rf_location b.rf_location
        | c -> c)
      reconfig_failures
  in
  (crashes, reconfig_failures)

let make ?(name = "faults") ?(seed = 0) ~crashes ~reconfig_failures () =
  List.iter validate_crash crashes;
  List.iter validate_failure reconfig_failures;
  let crashes, reconfig_failures = normalize crashes reconfig_failures in
  { name; seed; crashes; reconfig_failures }

let empty = { name = "empty"; seed = 0; crashes = []; reconfig_failures = [] }

let is_empty plan = plan.crashes = [] && plan.reconfig_failures = []

let crash_count plan = List.length plan.crashes
let reconfig_failure_count plan = List.length plan.reconfig_failures

let offline_location_rounds plan =
  List.fold_left
    (fun acc { from_round; until_round; _ } -> acc + until_round - from_round)
    0 plan.crashes

(* ---- serialization (JSONL, one fault per line) ---- *)

let to_string plan =
  let buffer = Buffer.create 256 in
  Buffer.add_string buffer "{\"schema\":";
  Buffer.add_string buffer (Json.escape schema_version);
  Buffer.add_string buffer ",\"name\":";
  Buffer.add_string buffer (Json.escape plan.name);
  Buffer.add_string buffer (Printf.sprintf ",\"seed\":%d}\n" plan.seed);
  List.iter
    (fun { location; from_round; until_round } ->
      Buffer.add_string buffer
        (Printf.sprintf
           "{\"type\":\"crash\",\"location\":%d,\"from\":%d,\"until\":%d}\n"
           location from_round until_round))
    plan.crashes;
  List.iter
    (fun { rf_round; rf_location } ->
      Buffer.add_string buffer
        (Printf.sprintf
           "{\"type\":\"reconfig_fail\",\"round\":%d,\"location\":%d}\n"
           rf_round rf_location))
    plan.reconfig_failures;
  Buffer.contents buffer

let save plan ~path =
  (* Atomic, as Trace.save: a crash mid-write must not leave a torn plan. *)
  let temp = path ^ ".tmp" in
  let out = open_out temp in
  Fun.protect
    ~finally:(fun () -> close_out out)
    (fun () -> output_string out (to_string plan));
  Sys.rename temp path

let parse text =
  let lines =
    String.split_on_char '\n' text
    |> List.filter (fun line -> String.trim line <> "")
  in
  match lines with
  | [] -> Error "empty fault plan (no schema header)"
  | header :: rest -> (
      try
        let fields = Json.parse_fields header in
        let schema = Json.str_field fields "schema" in
        if schema <> schema_version then
          Error
            (Printf.sprintf "unsupported fault schema %S (want %S)" schema
               schema_version)
        else begin
          let name = Json.str_field fields "name" in
          let seed = Json.opt_int_field fields "seed" ~default:0 in
          let crashes = ref [] and failures = ref [] in
          List.iteri
            (fun index line ->
              let fields = Json.parse_fields line in
              match Json.str_field fields "type" with
              | "crash" ->
                  crashes :=
                    {
                      location = Json.int_field fields "location";
                      from_round = Json.int_field fields "from";
                      until_round = Json.int_field fields "until";
                    }
                    :: !crashes
              | "reconfig_fail" ->
                  failures :=
                    {
                      rf_round = Json.int_field fields "round";
                      rf_location = Json.int_field fields "location";
                    }
                    :: !failures
              | other ->
                  raise
                    (Json.Parse_error
                       (Printf.sprintf "line %d: unknown fault type %S"
                          (index + 2) other)))
            rest;
          Ok
            (make ~name ~seed ~crashes:(List.rev !crashes)
               ~reconfig_failures:(List.rev !failures) ())
        end
      with
      | Json.Parse_error message -> Error message
      | Invalid message -> Error message)

let load ~path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error message -> Error message
  | text -> parse text

let pp_describe ppf plan =
  Format.fprintf ppf "fault plan %s (seed %d)@." plan.name plan.seed;
  Format.fprintf ppf "  crash windows: %d (%d offline location-rounds)@."
    (crash_count plan)
    (offline_location_rounds plan);
  List.iter
    (fun { location; from_round; until_round } ->
      Format.fprintf ppf "    location %d offline rounds [%d, %d)@." location
        from_round until_round)
    plan.crashes;
  Format.fprintf ppf "  reconfig failures: %d@." (reconfig_failure_count plan);
  List.iter
    (fun { rf_round; rf_location } ->
      Format.fprintf ppf "    round %d location %d@." rf_round rf_location)
    plan.reconfig_failures

(* ---- compiled runtime form ---- *)

type compiled = {
  crash_at : int list array; (* round -> locations crashing (ascending) *)
  repair_at : int list array; (* round -> locations repairing (ascending) *)
  fails_at : int list array; (* round -> locations whose Configure fails *)
  horizon : int;
}

let no_faults = []

let compile plan ~n ~horizon =
  if n < 1 then invalid_arg "Fault.compile: n must be >= 1";
  if horizon < 0 then invalid_arg "Fault.compile: negative horizon";
  let crash_at = Array.make horizon no_faults in
  let repair_at = Array.make horizon no_faults in
  let fails_at = Array.make horizon no_faults in
  let push table round location =
    (* Entries arrive sorted ascending per round key, so cons + final
       reverse keeps each round's list ascending. *)
    if round >= 0 && round < horizon then
      table.(round) <- location :: table.(round)
  in
  List.iter
    (fun { location; from_round; until_round } ->
      if location >= n then
        invalid_arg
          (Printf.sprintf
             "Fault.compile: crash window at location %d, but n = %d" location
             n);
      (* Clip to the run's horizon; a window entirely past it is inert. *)
      if from_round < horizon then begin
        push crash_at from_round location;
        if until_round < horizon then push repair_at until_round location
      end)
    plan.crashes;
  List.iter
    (fun { rf_round; rf_location } ->
      if rf_location >= n then
        invalid_arg
          (Printf.sprintf
             "Fault.compile: reconfig failure at location %d, but n = %d"
             rf_location n);
      push fails_at rf_round rf_location)
    plan.reconfig_failures;
  (* The plan is normalized by (location, round); re-sort each per-round
     bucket by location so event emission order is canonical. *)
  let ascending table =
    Array.iteri (fun i list -> table.(i) <- List.sort Int.compare list) table
  in
  ascending crash_at;
  ascending repair_at;
  ascending fails_at;
  { crash_at; repair_at; fails_at; horizon }

let in_horizon compiled round = round >= 0 && round < compiled.horizon

let crashes_at compiled ~round =
  if in_horizon compiled round then compiled.crash_at.(round) else []

let repairs_at compiled ~round =
  if in_horizon compiled round then compiled.repair_at.(round) else []

let reconfig_fails compiled ~round ~location =
  in_horizon compiled round
  && List.mem location compiled.fails_at.(round)
