(** Deterministic fault plans: location crash/repair intervals and
    reconfiguration failures, injected into {!Engine.run} via [?faults].

    The paper's model assumes resources never fail; this module is the
    deliberate departure that lets the engine regenerate
    degradation-style curves (drop rate vs. fraction of capacity lost) in
    the spirit of the dynamic-reallocation and stochastic-availability
    literature. A plan is pure data — every fault is pinned to an
    absolute (round, location) — so runs are reproducible bit-for-bit
    from (instance seed, plan) alone, whatever the domain count.

    Semantics relative to the paper's four-phase round:
    - A {e crash window} [\[from, until)] takes the location offline at
      the start of round [from] (before the drop phase): its color is
      lost (it comes back black), it ignores the policy's target and
      executes nothing until round [until]. The global drop and arrival
      phases are unaffected — work keeps expiring while capacity is
      gone, which is exactly the degradation being measured.
    - A {e reconfiguration failure} at (round [r], location [l]) makes
      every Configure the policy attempts there during round [r] pay
      [Delta] without taking effect (the old color stays).

    Plans serialize as JSONL (schema {!schema_version}):
    {v
    {"schema":"rrs-faults/1","name":"...","seed":S}
    {"type":"crash","location":l,"from":a,"until":b}
    {"type":"reconfig_fail","round":r,"location":l}
    v} *)

type crash = {
  location : int;
  from_round : int; (* first offline round *)
  until_round : int; (* first online round again; exclusive *)
}

type reconfig_failure = { rf_round : int; rf_location : int }

type plan = private {
  name : string;
  seed : int; (* generator provenance; 0 for hand-written plans *)
  crashes : crash list; (* canonical: sorted, per-location merged *)
  reconfig_failures : reconfig_failure list; (* canonical: sorted, deduped *)
}

val schema_version : string

(** [make ~crashes ~reconfig_failures ()] validates and canonicalizes a
    plan: crashes sort by (location, from) and overlapping or touching
    windows of one location merge; failures sort and dedupe.
    @raise Invalid on a negative location/round or an empty window. *)
val make :
  ?name:string ->
  ?seed:int ->
  crashes:crash list ->
  reconfig_failures:reconfig_failure list ->
  unit ->
  plan

exception Invalid of string

(** The no-fault plan: [Engine.run ?faults:(Some empty)] is byte-identical
    to [Engine.run] without [faults]. *)
val empty : plan

val is_empty : plan -> bool
val crash_count : plan -> int
val reconfig_failure_count : plan -> int

(** Total offline location-rounds over all crash windows (not clipped to
    any horizon). *)
val offline_location_rounds : plan -> int

(** {1 Serialization} *)

val to_string : plan -> string

(** Atomic write (temp + rename), like [Trace.save]. *)
val save : plan -> path:string -> unit

(** Parse a serialized plan; the result is canonicalized by {!make}. *)
val parse : string -> (plan, string) result

val load : path:string -> (plan, string) result

(** Human-readable description of every fault in the plan. *)
val pp_describe : Format.formatter -> plan -> unit

(** {1 Compiled runtime form}

    The engine compiles a plan once per run into per-round lookup
    tables, so the fault checks inside the round loop are list lookups
    on (almost always empty) per-round buckets. *)

type compiled

(** [compile plan ~n ~horizon] clips windows/failures to [horizon] rounds
    and validates every location against [n].
    @raise Invalid_argument if a fault names a location [>= n]. *)
val compile : plan -> n:int -> horizon:int -> compiled

(** Locations whose crash window starts at [round] (ascending). *)
val crashes_at : compiled -> round:int -> int list

(** Locations whose crash window ends at [round] (ascending). *)
val repairs_at : compiled -> round:int -> int list

(** Does a Configure at (round, location) fail? *)
val reconfig_fails : compiled -> round:int -> location:int -> bool
