module Counter_map = Rrs_ds.Counter_map
module Timing_wheel = Rrs_ds.Timing_wheel

type t = {
  by_color : Counter_map.t array; (* deadline multiset per color *)
  mutable total : int;
  wheel : Types.color Timing_wheel.t; (* colors that may expire at each time *)
}

let create ~num_colors =
  {
    by_color = Array.make num_colors Counter_map.empty;
    total = 0;
    wheel = Timing_wheel.create ~horizon:64 ();
  }

let pending t color = Counter_map.total t.by_color.(color)
let nonidle t color = pending t color > 0
let earliest_deadline t color = Counter_map.min_key t.by_color.(color)
let total_pending t = t.total

let nonidle_colors t =
  let acc = ref [] in
  for color = Array.length t.by_color - 1 downto 0 do
    if nonidle t color then acc := color :: !acc
  done;
  !acc

let deadlines t color = Counter_map.to_list t.by_color.(color)

let add t ~color ~deadline ~count =
  if count < 0 then invalid_arg "Job_pool.add: negative count";
  if count > 0 then begin
    if deadline < Timing_wheel.now t.wheel then
      invalid_arg "Job_pool.add: deadline already expired";
    (* Register the color once per (color, deadline) batch; duplicate
       wheel entries are harmless because expiry removes all occurrences. *)
    if Counter_map.count t.by_color.(color) deadline = 0 then
      Timing_wheel.add t.wheel ~time:deadline color;
    t.by_color.(color) <- Counter_map.add t.by_color.(color) deadline ~count;
    t.total <- t.total + count
  end

let drop_expired t ~round =
  (* Accumulate into a small assoc list instead of a hash table: most
     rounds drop nothing (the wheel slot is empty and [advance] returns
     immediately), so this path must not allocate in the common case. *)
  let dropped = ref [] in
  Timing_wheel.advance t.wheel ~time:(round + 1) (fun time color ->
      let count = Counter_map.count t.by_color.(color) time in
      if count > 0 then begin
        t.by_color.(color) <- Counter_map.remove t.by_color.(color) time ~count;
        t.total <- t.total - count;
        let rec bump = function
          | [] -> [ (color, count) ]
          | (c, k) :: rest when c = color -> (c, k + count) :: rest
          | pair :: rest -> pair :: bump rest
        in
        dropped := bump !dropped
      end);
  match !dropped with
  | [] -> []
  | [ _ ] as single -> single
  | many -> List.sort (fun (a, _) (b, _) -> Int.compare a b) many

let execute_one t ~color ~round =
  match Counter_map.remove_min t.by_color.(color) with
  | None -> None
  | Some (deadline, rest) ->
      if deadline <= round then
        invalid_arg
          (Printf.sprintf
             "Job_pool.execute_one: expired job (deadline %d <= round %d)" deadline
             round);
      t.by_color.(color) <- rest;
      t.total <- t.total - 1;
      Some deadline

let copy t =
  (* Field-for-field copy: the counter maps are persistent (mutations
     replace whole array slots) and [Timing_wheel.copy] preserves the
     wheel's clock. Rebuilding via [add] into a fresh pool would reset the
     expiry clock to 0, so the copy would accept already-expired deadlines
     and re-walk every round from 0 on its next [drop_expired]. *)
  {
    by_color = Array.copy t.by_color;
    total = t.total;
    wheel = Timing_wheel.copy t.wheel;
  }
