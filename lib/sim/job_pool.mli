(** Pending-job store: per-color deadline multisets plus an expiry wheel.

    The engine owns one pool per run. Jobs of one color are
    indistinguishable except for their deadline, so they are stored as
    [deadline -> count] multisets; executing a job of a color always
    consumes the earliest deadline (within one color this is optimal and
    matches every algorithm in the paper). *)

type t

val create : num_colors:int -> t

(** Number of pending jobs of [color]. *)
val pending : t -> Types.color -> int

(** A color is nonidle when it has at least one pending job. *)
val nonidle : t -> Types.color -> bool

(** Earliest pending deadline of [color], if any. *)
val earliest_deadline : t -> Types.color -> int option

(** Total pending jobs over all colors. *)
val total_pending : t -> int

(** Colors with at least one pending job (ascending). *)
val nonidle_colors : t -> Types.color list

(** Deadline multiset of a color as ascending [(deadline, count)] pairs. *)
val deadlines : t -> Types.color -> (int * int) list

(** [add t ~color ~deadline ~count] registers newly arrived jobs.
    @raise Invalid_argument if [deadline] is in the past of the pool's
    expiry clock. *)
val add : t -> color:Types.color -> deadline:int -> count:int -> unit

(** [drop_expired t ~round] implements the drop phase of [round]: removes
    every pending job with deadline [<= round] and returns the dropped
    counts as [(color, count)] pairs (ascending color). Must be called
    with nondecreasing rounds. *)
val drop_expired : t -> round:int -> (Types.color * int) list

(** [execute_one t ~color ~round] consumes the earliest-deadline pending
    job of [color], returning its deadline. Returns [None] when the color
    is idle. @raise Invalid_argument if the earliest deadline is
    [<= round] (an expired job survived a drop phase — engine bug). *)
val execute_one : t -> color:Types.color -> round:int -> int option

(** Deep copy (used by what-if explorations in tests). The copy preserves
    the pool's expiry clock: it rejects the same past deadlines as the
    original and its next [drop_expired] resumes from the original's
    round, not from 0. *)
val copy : t -> t
