type event = Event_sink.event =
  | Reconfig of { round : int; mini_round : int; location : int;
                  previous : Types.color option; next : Types.color }
  | Drop of { round : int; color : Types.color; count : int }
  | Execute of { round : int; mini_round : int; location : int;
                 color : Types.color; deadline : int }
  | Crash of { round : int; location : int }
  | Repair of { round : int; location : int }
  | Reconfig_failed of { round : int; mini_round : int; location : int;
                         previous : Types.color option;
                         attempted : Types.color }

type t = {
  delta : int;
  sink : Event_sink.t;
  mutable reconfigs : int;
  mutable failed : int;
  mutable drops : int;
  mutable execs : int;
}

let create ?(record_events = true) ?sink ~delta () =
  let sink =
    match sink with
    | Some sink -> sink
    | None -> if record_events then Event_sink.memory () else Event_sink.Null
  in
  { delta; sink; reconfigs = 0; failed = 0; drops = 0; execs = 0 }

let sink t = t.sink

let record_reconfig t ~round ~mini_round ~location ~previous ~next =
  t.reconfigs <- t.reconfigs + 1;
  Event_sink.record t.sink
    (Reconfig { round; mini_round; location; previous; next })

let record_failed_reconfig t ~round ~mini_round ~location ~previous ~attempted =
  (* A failed Configure still pays Delta, so it counts as a reconfig. *)
  t.reconfigs <- t.reconfigs + 1;
  t.failed <- t.failed + 1;
  Event_sink.record t.sink
    (Reconfig_failed { round; mini_round; location; previous; attempted })

let record_drop t ~round ~color ~count =
  if count < 0 then invalid_arg "Ledger.record_drop: negative count";
  t.drops <- t.drops + count;
  if count > 0 then Event_sink.record t.sink (Drop { round; color; count })

let record_execute t ~round ~mini_round ~location ~color ~deadline =
  t.execs <- t.execs + 1;
  Event_sink.record t.sink
    (Execute { round; mini_round; location; color; deadline })

let record_crash t ~round ~location =
  Event_sink.record t.sink (Crash { round; location })

let record_repair t ~round ~location =
  Event_sink.record t.sink (Repair { round; location })

let seed t ~reconfigs ~failed ~drops ~execs =
  t.reconfigs <- reconfigs;
  t.failed <- failed;
  t.drops <- drops;
  t.execs <- execs

let reconfig_count t = t.reconfigs
let failed_reconfig_count t = t.failed
let drop_count t = t.drops
let exec_count t = t.execs
let reconfig_cost t = t.delta * t.reconfigs
let total_cost t = reconfig_cost t + t.drops
let events t = Event_sink.events t.sink

let pp_summary_counts ?(failed = 0) ppf ~delta ~reconfigs ~drops ~execs =
  if failed = 0 then
    Format.fprintf ppf
      "cost=%d (reconfig=%d x delta=%d -> %d, drops=%d) executed=%d"
      ((delta * reconfigs) + drops)
      reconfigs delta (delta * reconfigs) drops execs
  else
    Format.fprintf ppf
      "cost=%d (reconfig=%d x delta=%d -> %d, of which %d failed, drops=%d) \
       executed=%d"
      ((delta * reconfigs) + drops)
      reconfigs delta (delta * reconfigs) failed drops execs

let pp_summary ppf t =
  pp_summary_counts ~failed:t.failed ppf ~delta:t.delta ~reconfigs:t.reconfigs
    ~drops:t.drops ~execs:t.execs
