(** Cost accounting for a run: reconfigurations, drops, executions.

    The ledger is the single source of truth for the objective value
    [total_cost = delta * reconfigurations + drops]. Events are routed to
    an {!Event_sink.t}: a [Memory] sink retains them for the schedule
    validator, a [Jsonl] sink streams them with bounded resident memory,
    and [Null] discards them — the counters are maintained regardless.

    Fault accounting: a {e failed} reconfiguration (the fault plan made a
    Configure pay [Delta] without taking effect) is included in
    {!reconfig_count} — it was paid for — and additionally counted by
    {!failed_reconfig_count}. Crash/repair transitions carry no cost;
    they are events only. *)

type event = Event_sink.event =
  | Reconfig of { round : int; mini_round : int; location : int;
                  previous : Types.color option; next : Types.color }
  | Drop of { round : int; color : Types.color; count : int }
  | Execute of { round : int; mini_round : int; location : int;
                 color : Types.color; deadline : int }
  | Crash of { round : int; location : int }
  | Repair of { round : int; location : int }
  | Reconfig_failed of { round : int; mini_round : int; location : int;
                         previous : Types.color option;
                         attempted : Types.color }

type t

(** [create ~delta ()] is an empty ledger. [sink] (when given) receives
    every event; otherwise [record_events] (default [true]) selects a
    fresh [Memory] sink or [Null]. *)
val create : ?record_events:bool -> ?sink:Event_sink.t -> delta:int -> unit -> t

(** The sink events are routed to. *)
val sink : t -> Event_sink.t

val record_reconfig :
  t -> round:int -> mini_round:int -> location:int ->
  previous:Types.color option -> next:Types.color -> unit

(** A Configure that paid [Delta] but left [previous] in place (fault
    injection): counts toward {!reconfig_count} and
    {!failed_reconfig_count}. *)
val record_failed_reconfig :
  t -> round:int -> mini_round:int -> location:int ->
  previous:Types.color option -> attempted:Types.color -> unit

val record_drop : t -> round:int -> color:Types.color -> count:int -> unit

val record_execute :
  t -> round:int -> mini_round:int -> location:int -> color:Types.color ->
  deadline:int -> unit

(** Cost-free fault transitions, forwarded to the sink. *)
val record_crash : t -> round:int -> location:int -> unit

val record_repair : t -> round:int -> location:int -> unit

(** Overwrite the counters without emitting events — the checkpoint seed
    of an [rrs-snap/2] restore, where the totals up to the checkpoint are
    carried by the snapshot rather than replayed. *)
val seed : t -> reconfigs:int -> failed:int -> drops:int -> execs:int -> unit

(** All paid reconfigurations, failed ones included. *)
val reconfig_count : t -> int

(** The subset of {!reconfig_count} that paid without taking effect. *)
val failed_reconfig_count : t -> int

val drop_count : t -> int
val exec_count : t -> int

(** [delta * reconfig_count]. *)
val reconfig_cost : t -> int

(** [reconfig_cost + drop_count]. *)
val total_cost : t -> int

(** Events retained by the sink in chronological order ([] unless the
    sink is [Memory]). *)
val events : t -> event list

(** The one-line summary from raw counters — {!pp_summary} uses this, and
    so does [Rrs_stats.Report] when reconstructing a run from its JSONL,
    which is what makes the two byte-identical. With [failed = 0] (the
    default) the line is unchanged from fault-free builds. *)
val pp_summary_counts :
  ?failed:int -> Format.formatter -> delta:int -> reconfigs:int -> drops:int ->
  execs:int -> unit

val pp_summary : Format.formatter -> t -> unit
