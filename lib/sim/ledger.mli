(** Cost accounting for a run: reconfigurations, drops, executions.

    The ledger is the single source of truth for the objective value
    [total_cost = delta * reconfigurations + drops]. Events are routed to
    an {!Event_sink.t}: a [Memory] sink retains them for the schedule
    validator, a [Jsonl] sink streams them with bounded resident memory,
    and [Null] discards them — the counters are maintained regardless. *)

type event = Event_sink.event =
  | Reconfig of { round : int; mini_round : int; location : int;
                  previous : Types.color option; next : Types.color }
  | Drop of { round : int; color : Types.color; count : int }
  | Execute of { round : int; mini_round : int; location : int;
                 color : Types.color; deadline : int }

type t

(** [create ~delta ()] is an empty ledger. [sink] (when given) receives
    every event; otherwise [record_events] (default [true]) selects a
    fresh [Memory] sink or [Null]. *)
val create : ?record_events:bool -> ?sink:Event_sink.t -> delta:int -> unit -> t

(** The sink events are routed to. *)
val sink : t -> Event_sink.t

val record_reconfig :
  t -> round:int -> mini_round:int -> location:int ->
  previous:Types.color option -> next:Types.color -> unit

val record_drop : t -> round:int -> color:Types.color -> count:int -> unit

val record_execute :
  t -> round:int -> mini_round:int -> location:int -> color:Types.color ->
  deadline:int -> unit

val reconfig_count : t -> int
val drop_count : t -> int
val exec_count : t -> int

(** [delta * reconfig_count]. *)
val reconfig_cost : t -> int

(** [reconfig_cost + drop_count]. *)
val total_cost : t -> int

(** Events retained by the sink in chronological order ([] unless the
    sink is [Memory]). *)
val events : t -> event list

(** The one-line summary from raw counters — {!pp_summary} uses this, and
    so does [Rrs_stats.Report] when reconstructing a run from its JSONL,
    which is what makes the two byte-identical. *)
val pp_summary_counts :
  Format.formatter -> delta:int -> reconfigs:int -> drops:int -> execs:int ->
  unit

val pp_summary : Format.formatter -> t -> unit
