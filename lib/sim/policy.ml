(** Interface between the round engine and reconfiguration policies.

    A policy owns the algorithm-specific state (counters, eligibility,
    timestamps, cached sets) and exposes one decision: the desired
    location->color assignment for the coming execution phase. The engine
    diffs that target against the current assignment and charges [Delta]
    per location whose color changes — policies can never mis-account
    reconfiguration cost.

    Conventions:
    - [Some c] at a location in the target makes the location active on
      color [c]: it is recolored (cost [Delta]) unless it already holds
      [c], and executes up to one pending [c] job this mini-round.
    - [None] in the target means inactive: the location executes nothing;
      its physical color persists, so resuming the same color later is
      free — a legal schedule in the paper's cost model (execution is
      "up to one job"), and never more expensive than the paper's own
      accounting, which charges every cache re-entry.
    - The [view] given to [reconfigure] is read-only; policies must not
      mutate [view.assignment] (the physical colors) or [view.pool]. *)

type view = {
  round : int;
  mini_round : int; (* 0 for uni-speed; 0,1 for double-speed (Section 3.3) *)
  n : int; (* number of locations (resources) *)
  delta : int;
  bounds : int array; (* per-color delay bounds *)
  assignment : Types.color option array; (* current configuration; read-only *)
  pool : Job_pool.t; (* pending jobs; read-only *)
}

module type POLICY = sig
  type t

  val name : string
  val create : n:int -> delta:int -> bounds:int array -> t

  (** Called after the engine's drop phase of each round with the jobs it
      dropped (per color). Policies update eligibility here. *)
  val on_drop : t -> round:int -> dropped:(Types.color * int) list -> unit

  (** Called after the arrival phase with the (normalized) request. *)
  val on_arrival : t -> round:int -> request:Types.request -> unit

  (** The desired assignment for this mini-round; must have length
      [view.n]. *)
  val reconfigure : t -> view -> Types.color option array

  (** Algorithm-specific counters exposed for experiments (epochs, wraps,
      eligible/ineligible drop split, ...). *)
  val stats : t -> (string * int) list

  (** The policy's internal state as one flat JSON object (string keys;
      int, string or int-array values — the dialect
      {!Event_sink.Json.parse_fields} reads). Together with
      [deserialize] this is the materialized-state replay base of
      [rrs-snap/2] checkpoints: the blob must capture everything the
      policy needs to continue deterministically, and its size must be
      bounded by the instance (colors, locations), never by the rounds
      served. *)
  val serialize : t -> string

  (** [deserialize t blob] applies a {!serialize}d blob to a state
      freshly built by [create] with the same [n]/[delta]/[bounds].
      After it returns, [t] must behave exactly as the serialized state
      did. @raise Event_sink.Json.Parse_error (or [Invalid_argument]) on
      a blob this policy did not write. *)
  val deserialize : t -> string -> unit
end

(** A policy packaged with the constructor arguments it needs, for
    registries and CLI dispatch. *)
type packed = Packed : (module POLICY) -> packed

let name (Packed (module P)) = P.name
