type t = {
  instance : Instance.t;
  n : int;
  speed : int;
  events : Ledger.event list;
}

let of_run ~instance ~n ~speed ledger =
  { instance; n; speed; events = Ledger.events ledger }

(* Paid reconfigurations: failed ones still cost Delta. *)
let reconfig_count t =
  List.fold_left
    (fun acc -> function
      | Ledger.Reconfig _ | Ledger.Reconfig_failed _ -> acc + 1
      | _ -> acc)
    0 t.events

let drop_count t =
  List.fold_left
    (fun acc -> function Ledger.Drop { count; _ } -> acc + count | _ -> acc)
    0 t.events

let exec_count t =
  List.fold_left
    (fun acc -> function Ledger.Execute _ -> acc + 1 | _ -> acc)
    0 t.events

let total_cost t = (t.instance.delta * reconfig_count t) + drop_count t

let aggregate_counts pairs =
  let table = Hashtbl.create 8 in
  List.iter
    (fun (color, count) ->
      let current = try Hashtbl.find table color with Not_found -> 0 in
      Hashtbl.replace table color (current + count))
    pairs;
  Hashtbl.fold (fun color count acc -> (color, count) :: acc) table []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let validate t =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  let instance = t.instance in
  let bounds = instance.bounds in
  let pool = Job_pool.create ~num_colors:(Array.length bounds) in
  let assignment = Array.make t.n None in
  let offline = Array.make t.n false in
  let events = ref t.events in
  for round = 0 to instance.horizon - 1 do
    (* Fault transitions (round start, before the drop phase): a repair
       brings an offline location back black; a crash takes an online
       location down and clears its color. *)
    let rec take_faults () =
      match !events with
      | Ledger.Repair { round = r; location } :: rest when r = round ->
          events := rest;
          if location < 0 || location >= t.n then
            err "round %d: repair at bad location %d" round location
          else if not offline.(location) then
            err "round %d: repair of online location %d" round location
          else offline.(location) <- false;
          take_faults ()
      | Ledger.Crash { round = r; location } :: rest when r = round ->
          events := rest;
          if location < 0 || location >= t.n then
            err "round %d: crash at bad location %d" round location
          else if offline.(location) then
            err "round %d: crash of already-offline location %d" round location
          else begin
            offline.(location) <- true;
            assignment.(location) <- None
          end;
          take_faults ()
      | _ -> ()
    in
    take_faults ();
    (* Drop phase. *)
    let expected_drops = Job_pool.drop_expired pool ~round in
    let rec take_drops acc =
      match !events with
      | Ledger.Drop { round = r; color; count } :: rest when r = round ->
          events := rest;
          take_drops ((color, count) :: acc)
      | _ -> List.rev acc
    in
    let observed_drops = aggregate_counts (take_drops []) in
    if observed_drops <> expected_drops then
      err "round %d: drop events %s do not match expiring jobs %s" round
        (Format.asprintf "%a" Types.pp_request observed_drops)
        (Format.asprintf "%a" Types.pp_request expected_drops);
    (* Arrival phase. *)
    List.iter
      (fun (color, count) ->
        Job_pool.add pool ~color ~deadline:(round + bounds.(color)) ~count)
      instance.requests.(round);
    (* Mini-rounds. *)
    for mini_round = 0 to t.speed - 1 do
      let rec take_reconfigs () =
        match !events with
        | Ledger.Reconfig { round = r; mini_round = m; location; previous; next }
          :: rest
          when r = round && m = mini_round ->
            events := rest;
            if location < 0 || location >= t.n then
              err "round %d.%d: reconfig at bad location %d" round mini_round
                location
            else begin
              if offline.(location) then
                err "round %d.%d: offline location %d reconfigures" round
                  mini_round location;
              if assignment.(location) <> previous then
                err "round %d.%d: reconfig at location %d claims previous %s"
                  round mini_round location
                  (match previous with None -> "black" | Some c -> string_of_int c);
              if assignment.(location) = Some next then
                err "round %d.%d: reconfig at location %d to its own color %d"
                  round mini_round location next;
              assignment.(location) <- Some next
            end;
            take_reconfigs ()
        | Ledger.Reconfig_failed
            { round = r; mini_round = m; location; previous; attempted }
          :: rest
          when r = round && m = mini_round ->
            events := rest;
            if location < 0 || location >= t.n then
              err "round %d.%d: failed reconfig at bad location %d" round
                mini_round location
            else begin
              if offline.(location) then
                err "round %d.%d: offline location %d pays a failed reconfig"
                  round mini_round location;
              if assignment.(location) <> previous then
                err
                  "round %d.%d: failed reconfig at location %d claims \
                   previous %s"
                  round mini_round location
                  (match previous with None -> "black" | Some c -> string_of_int c);
              if assignment.(location) = Some attempted then
                err
                  "round %d.%d: failed reconfig at location %d to its own \
                   color %d"
                  round mini_round location attempted
              (* the old color stays: assignment is deliberately unchanged *)
            end;
            take_reconfigs ()
        | _ -> ()
      in
      take_reconfigs ();
      let used = Array.make t.n false in
      let rec take_executes () =
        match !events with
        | Ledger.Execute { round = r; mini_round = m; location; color; deadline }
          :: rest
          when r = round && m = mini_round ->
            events := rest;
            if location < 0 || location >= t.n then
              err "round %d.%d: execution at bad location %d" round mini_round
                location
            else begin
              if offline.(location) then
                err "round %d.%d: offline location %d executes" round mini_round
                  location;
              if used.(location) then
                err "round %d.%d: location %d executes twice" round mini_round
                  location;
              used.(location) <- true;
              (match assignment.(location) with
              | Some c when c = color -> ()
              | Some c ->
                  err "round %d.%d: location %d colored %d executes color %d" round
                    mini_round location c color
              | None ->
                  err "round %d.%d: black location %d executes color %d" round
                    mini_round location color);
              match Job_pool.execute_one pool ~color ~round with
              | None -> err "round %d.%d: phantom execution of color %d" round
                          mini_round color
              | Some d ->
                  if d <> deadline then
                    err
                      "round %d.%d: execution of color %d records deadline %d, \
                       earliest pending is %d"
                      round mini_round color deadline d
            end;
            take_executes ()
        | _ -> ()
      in
      take_executes ()
    done
  done;
  (match !events with
  | [] -> ()
  | Ledger.Reconfig { round; _ } :: _ -> err "unconsumed reconfig event at round %d" round
  | Ledger.Drop { round; _ } :: _ -> err "unconsumed drop event at round %d" round
  | Ledger.Execute { round; _ } :: _ -> err "unconsumed execute event at round %d" round
  | Ledger.Crash { round; _ } :: _ -> err "unconsumed crash event at round %d" round
  | Ledger.Repair { round; _ } :: _ -> err "unconsumed repair event at round %d" round
  | Ledger.Reconfig_failed { round; _ } :: _ ->
      err "unconsumed failed-reconfig event at round %d" round);
  match List.rev !errors with [] -> Ok () | errors -> Error errors
