(** Recorded schedules and independent validation.

    A schedule is the event log of a run together with the instance it was
    produced for. [validate] replays the log against a fresh pending-job
    pool and checks every model rule, so a policy or reduction bug that
    produces an infeasible schedule (executing dropped jobs, double-booking
    a location, phantom executions, mis-priced reconfigurations) is caught
    independently of the engine that produced it. *)

type t = {
  instance : Instance.t;
  n : int;
  speed : int;
  events : Ledger.event list; (* chronological *)
}

val of_run : instance:Instance.t -> n:int -> speed:int -> Ledger.t -> t

(** Recompute costs from the event log. Failed reconfigurations count —
    they paid [Delta]. *)
val reconfig_count : t -> int

val drop_count : t -> int
val exec_count : t -> int
val total_cost : t -> int

(** [validate t] replays the schedule. Checks, per round:
    - drop events exactly match the jobs expiring that round;
    - reconfiguration events carry the true previous color;
    - at most one execution per (location, mini-round), on the location's
      configured color, consuming a genuinely pending job;
    - fault coherence: crash/repair transitions alternate per location, a
      crash clears the color, and an offline location neither
      reconfigures (successfully or not) nor executes;
    - rounds, mini-rounds and phases appear in chronological order.
    Returns all violations found (empty list = valid). *)
val validate : t -> (unit, string list) result
