module Probe = Rrs_obs.Probe
module Profile = Rrs_obs.Profile
module Json = Event_sink.Json

let phase_names = [ "drop"; "arrival"; "reconfig"; "execute" ]

let snapshot_schema = "rrs-snap/1"
let snapshot_schema_v2 = "rrs-snap/2"

let schema_of_version = function
  | 1 -> snapshot_schema
  | 2 -> snapshot_schema_v2
  | v -> invalid_arg (Printf.sprintf "Stepper: unknown snapshot version %d" v)

type config = {
  name : string;
  delta : int;
  bounds : int array;
  n : int;
  speed : int;
  horizon : int;
}

type result = {
  ledger : Ledger.t;
  stats : (string * int) list;
  final_assignment : Types.color option array;
  profile : Profile.t option;
}

(* The standard engine probes, registered in the caller's registry so
   policies and analysis helpers share the namespace. *)
type probes = {
  registry : Probe.registry;
  exec_slack : Probe.histogram;
  drop_latency : Probe.histogram;
  round_reconfigs : Probe.histogram;
  queue_depth : Probe.histogram;
  offline_locations : Probe.histogram;
  failed_reconfigs : Probe.counter;
  color_depth : Probe.gauge array;
}

let make_probes registry ~num_colors =
  {
    registry;
    exec_slack = Probe.histogram registry "exec_slack";
    drop_latency = Probe.histogram registry "drop_latency";
    round_reconfigs = Probe.histogram registry "round_reconfigs";
    queue_depth = Probe.histogram registry "queue_depth";
    offline_locations = Probe.histogram registry "offline_locations";
    failed_reconfigs = Probe.counter registry "failed_reconfigs";
    color_depth =
      Array.init num_colors (fun color ->
          Probe.gauge registry (Printf.sprintf "queue_depth_c%d" color));
  }

(* A policy instantiated over its (existential) state, so the stepper can
   hold any policy without exposing the state type. *)
type policy_instance = {
  p_name : string;
  p_on_drop : round:int -> dropped:(Types.color * int) list -> unit;
  p_on_arrival : round:int -> request:Types.request -> unit;
  p_reconfigure : Policy.view -> Types.color option array;
  p_stats : unit -> (string * int) list;
  p_serialize : unit -> string;
  p_deserialize : string -> unit;
}

let instantiate (module P : Policy.POLICY) ~n ~delta ~bounds =
  let state = P.create ~n ~delta ~bounds in
  {
    p_name = P.name;
    p_on_drop = (fun ~round ~dropped -> P.on_drop state ~round ~dropped);
    p_on_arrival = (fun ~round ~request -> P.on_arrival state ~round ~request);
    p_reconfigure = (fun view -> P.reconfigure state view);
    p_stats = (fun () -> P.stats state);
    p_serialize = (fun () -> P.serialize state);
    p_deserialize = (fun blob -> P.deserialize state blob);
  }

(* A materialized-state checkpoint: the [rrs-snap/2] replay base.
   Everything a fresh stepper needs to stand at [ck_round] as if it had
   replayed rounds [0..ck_round-1]: the pool's deadline multisets, the
   physical assignment, the offline set, the ledger counters, and the
   policy's serialized internal state. Its size is bounded by the
   instance (colors x distinct deadlines, locations, policy blob), never
   by the rounds served. *)
type checkpoint = {
  ck_round : int;
  ck_accepted : int;
  ck_pending : (int * (int * int) list) list; (* color -> deadline multiset *)
  ck_assignment : int array; (* -1 = unconfigured *)
  ck_offline : int list;
  ck_reconfigs : int;
  ck_failed : int;
  ck_drops : int;
  ck_execs : int;
  ck_policy : string; (* the policy's [serialize] blob *)
}

type t = {
  config : config;
  label : string;
  policy : (module Policy.POLICY); (* kept so [snapshot] can name it *)
  pi : policy_instance;
  pool : Job_pool.t;
  ledger : Ledger.t;
  sink : Event_sink.t;
  probes : probes option;
  prof : Profile.t;
  profile : bool;
  fault_plan : Fault.plan option; (* original plan, embedded in snapshots *)
  faults : Fault.compiled option;
  assignment : Types.color option array;
  offline : bool array;
  checkpoint_every : int; (* 0 = never checkpoint (full-history replay) *)
  mutable base : checkpoint option; (* latest checkpoint, if any *)
  mutable offline_count : int;
  mutable round : int; (* the round the next [step] executes *)
  mutable buffered : Types.request list; (* fed chunks, newest first *)
  mutable buffered_jobs : int;
  mutable accepted_jobs : int; (* total jobs accepted by [feed] *)
  mutable history : (int * Types.request) list;
      (* Consumed arrivals since the latest checkpoint (all of them when
         [checkpoint_every = 0]), newest first: the delta section of the
         deterministic-replay base for [snapshot]/[restore]. With
         checkpointing on, [step] truncates this at every checkpoint, so
         its length — and with it snapshot size and restore replay time —
         is O(checkpoint_every), not O(total arrivals). *)
  mutable finished : bool;
}

let create ?(record_events = true) ?sink ?probes ?(profile = false) ?faults
    ?(checkpoint_every = 0) ?(label = "Stepper")
    ~policy:(module P : Policy.POLICY) config =
  if checkpoint_every < 0 then
    invalid_arg (label ^ ": negative checkpoint_every");
  if config.n < 1 then invalid_arg (label ^ ": n must be >= 1");
  if config.speed < 1 then invalid_arg (label ^ ": speed must be >= 1");
  if config.delta < 1 then invalid_arg (label ^ ": delta must be >= 1");
  if Array.length config.bounds = 0 then invalid_arg (label ^ ": no colors");
  Array.iteri
    (fun c d ->
      if d < 1 then
        invalid_arg
          (Printf.sprintf "%s: bound of color %d is %d" label c d))
    config.bounds;
  if config.horizon < 0 then invalid_arg (label ^ ": negative horizon");
  let num_colors = Array.length config.bounds in
  let faults_compiled =
    match faults with
    | Some plan when not (Fault.is_empty plan) ->
        Some (Fault.compile plan ~n:config.n ~horizon:config.horizon)
    | Some _ | None -> None
  in
  let pool = Job_pool.create ~num_colors in
  let ledger = Ledger.create ~record_events ?sink ~delta:config.delta () in
  let sink = Ledger.sink ledger in
  Event_sink.write_header sink ~name:config.name ~delta:config.delta
    ~n:config.n ~speed:config.speed ~horizon:config.horizon
    ~bounds:config.bounds;
  let probes = Option.map (fun reg -> make_probes reg ~num_colors) probes in
  let prof = Profile.create phase_names in
  let pi = instantiate (module P) ~n:config.n ~delta:config.delta
      ~bounds:config.bounds in
  {
    config;
    label;
    policy = (module P);
    pi;
    pool;
    ledger;
    sink;
    probes;
    prof;
    profile;
    fault_plan = faults;
    faults = faults_compiled;
    assignment = Array.make config.n None;
    offline = Array.make config.n false;
    checkpoint_every;
    base = None;
    offline_count = 0;
    round = 0;
    buffered = [];
    buffered_jobs = 0;
    accepted_jobs = 0;
    history = [];
    finished = false;
  }

let round t = t.round
let ledger t = t.ledger
let pool_pending t = Job_pool.total_pending t.pool
let buffered_jobs t = t.buffered_jobs
let accepted_jobs t = t.accepted_jobs
let policy_name t = t.pi.p_name
let config t = t.config
let finished t = t.finished
let assignment t = Array.copy t.assignment
let checkpoint_every t = t.checkpoint_every
let base_round t = match t.base with None -> 0 | Some ck -> ck.ck_round
let history_rounds t = List.length t.history

let feed t request =
  if t.finished then invalid_arg (t.label ^ ": feed after finish");
  let num_colors = Array.length t.config.bounds in
  let jobs =
    List.fold_left
      (fun acc (color, count) ->
        if color < 0 || color >= num_colors then
          invalid_arg
            (Printf.sprintf "%s: feed of unknown color %d (valid: 0..%d)"
               t.label color (num_colors - 1));
        if count < 0 then
          invalid_arg
            (Printf.sprintf "%s: feed of color %d with negative count %d"
               t.label color count);
        acc + count)
      0 request
  in
  (* Chunks are prepended (constant-time), so repeated feeds within one
     round stay linear; [buffered_request] restores fed order. *)
  if request <> [] then t.buffered <- request :: t.buffered;
  t.buffered_jobs <- t.buffered_jobs + jobs;
  t.accepted_jobs <- t.accepted_jobs + jobs

(* The fed-but-unconsumed arrivals, flattened in fed order. The common
   single-feed round returns the chunk itself, no copy. *)
let buffered_request t =
  match t.buffered with
  | [] -> []
  | [ request ] -> request
  | chunks -> List.concat (List.rev chunks)

(* Already-normalized requests (strictly ascending colors, positive
   counts — everything [Instance.make] produces) are consumed as-is, so
   the [Engine.run] fast path pays one short list scan and no allocation. *)
let rec is_normalized prev = function
  | [] -> true
  | (color, count) :: rest ->
      count > 0 && color > prev && is_normalized color rest

let idle_mark = { Profile.mark_s = 0.0; mark_minor = 0.0 }

let offline_list offline =
  let acc = ref [] in
  for location = Array.length offline - 1 downto 0 do
    if offline.(location) then acc := location :: !acc
  done;
  !acc

(* Materialize the current state as the new replay base and drop the
   arrival history it supersedes. Called between rounds (the fed buffer
   has been consumed), so the checkpoint is exactly "the state at the
   start of round [t.round]". *)
let take_checkpoint t =
  let pending = ref [] in
  for color = Array.length t.config.bounds - 1 downto 0 do
    match Job_pool.deadlines t.pool color with
    | [] -> ()
    | deadlines -> pending := (color, deadlines) :: !pending
  done;
  t.base <-
    Some
      {
        ck_round = t.round;
        ck_accepted = t.accepted_jobs;
        ck_pending = !pending;
        ck_assignment =
          Array.map (function None -> -1 | Some c -> c) t.assignment;
        ck_offline = offline_list t.offline;
        ck_reconfigs = Ledger.reconfig_count t.ledger;
        ck_failed = Ledger.failed_reconfig_count t.ledger;
        ck_drops = Ledger.drop_count t.ledger;
        ck_execs = Ledger.exec_count t.ledger;
        ck_policy = t.pi.p_serialize ();
      };
  t.history <- []

let step t =
  if t.finished then invalid_arg (t.label ^ ": step after finish");
  let { delta; bounds; n; speed; _ } = t.config in
  let num_colors = Array.length bounds in
  let pool = t.pool and ledger = t.ledger and sink = t.sink in
  let assignment = t.assignment and offline = t.offline in
  let probes = t.probes in
  let mark () = if t.profile then Profile.start () else idle_mark in
  let tick index m = if t.profile then Profile.stop t.prof index m in
  let round = t.round in
  let reconfigs0 = Ledger.reconfig_count ledger in
  let drops0 = Ledger.drop_count ledger in
  let execs0 = Ledger.exec_count ledger in
  (* Fault transitions, before the drop phase: repairs first, then
     crashes (a merged plan never has both for one location in one
     round). A crashed location loses its color. *)
  (match t.faults with
  | None -> ()
  | Some plan ->
      List.iter
        (fun location ->
          offline.(location) <- false;
          t.offline_count <- t.offline_count - 1;
          Ledger.record_repair ledger ~round ~location)
        (Fault.repairs_at plan ~round);
      List.iter
        (fun location ->
          offline.(location) <- true;
          t.offline_count <- t.offline_count + 1;
          assignment.(location) <- None;
          Ledger.record_crash ledger ~round ~location)
        (Fault.crashes_at plan ~round));
  (* Drop phase: jobs with deadline = round are dropped. *)
  let m0 = mark () in
  let dropped = Job_pool.drop_expired pool ~round in
  if dropped <> [] then
    Log.debug (fun m ->
        m "round %d: dropped %a" round
          (Format.pp_print_list
             ~pp_sep:(fun ppf () -> Format.fprintf ppf " ")
             (fun ppf (c, k) -> Format.fprintf ppf "%d:%d" c k))
          dropped);
  List.iter
    (fun (color, count) -> Ledger.record_drop ledger ~round ~color ~count)
    dropped;
  (match probes with
  | None -> ()
  | Some p ->
      List.iter
        (fun (color, count) ->
          Probe.observe_n p.drop_latency bounds.(color) ~n:count)
        dropped);
  t.pi.p_on_drop ~round ~dropped;
  tick 0 m0;
  (* Arrival phase: consume the fed buffer. *)
  let m1 = mark () in
  let request =
    match buffered_request t with
    | [] -> []
    | request when is_normalized (-1) request -> request
    | request -> Types.normalize_request request
  in
  t.buffered <- [];
  t.buffered_jobs <- 0;
  if request <> [] then t.history <- (round, request) :: t.history;
  List.iter
    (fun (color, count) ->
      Job_pool.add pool ~color ~deadline:(round + bounds.(color)) ~count)
    request;
  t.pi.p_on_arrival ~round ~request;
  tick 1 m1;
  (* Reconfiguration + execution, [speed] mini-rounds. *)
  for mini_round = 0 to speed - 1 do
    let m2 = mark () in
    let view = { Policy.round; mini_round; n; delta; bounds; assignment; pool } in
    let target = t.pi.p_reconfigure view in
    if Array.length target <> n then
      invalid_arg
        (Printf.sprintf "%s: policy %s returned %d locations, expected %d"
           t.label t.pi.p_name (Array.length target) n);
    for location = 0 to n - 1 do
      match target.(location) with
      | None -> () (* inactive this mini-round; physical color persists *)
      | Some next ->
          if next < 0 || next >= num_colors then
            invalid_arg
              (Printf.sprintf
                 "%s: policy %s returned color %d at location %d (round %d, \
                  mini-round %d); valid colors are 0..%d"
                 t.label t.pi.p_name next location round mini_round
                 (num_colors - 1));
          if offline.(location) then
            () (* offline: the target is ignored, nothing is paid *)
          else if assignment.(location) <> Some next then
            if
              match t.faults with
              | None -> false
              | Some plan -> Fault.reconfig_fails plan ~round ~location
            then begin
              Ledger.record_failed_reconfig ledger ~round ~mini_round ~location
                ~previous:assignment.(location) ~attempted:next;
              match probes with
              | None -> ()
              | Some p -> Probe.incr p.failed_reconfigs
            end
            else begin
              Ledger.record_reconfig ledger ~round ~mini_round ~location
                ~previous:assignment.(location) ~next;
              assignment.(location) <- Some next
            end
    done;
    tick 2 m2;
    let m3 = mark () in
    for location = 0 to n - 1 do
      (* Execute the location's PHYSICAL color: after a failed
         reconfiguration it differs from the policy's target. *)
      if (not offline.(location)) && target.(location) <> None then
        match assignment.(location) with
        | None -> ()
        | Some color -> (
            match Job_pool.execute_one pool ~color ~round with
            | None -> ()
            | Some deadline ->
                Ledger.record_execute ledger ~round ~mini_round ~location
                  ~color ~deadline;
                (match probes with
                | None -> ()
                | Some p -> Probe.observe p.exec_slack (deadline - round)))
    done;
    tick 3 m3
  done;
  (* End-of-round observability: probes and the streamed snapshot. *)
  (match probes with
  | None -> ()
  | Some p ->
      Probe.observe p.round_reconfigs
        (Ledger.reconfig_count ledger - reconfigs0);
      Probe.observe p.queue_depth (Job_pool.total_pending pool);
      Probe.observe p.offline_locations t.offline_count;
      Array.iteri
        (fun color g -> Probe.set_gauge g (Job_pool.pending pool color))
        p.color_depth);
  Event_sink.write_round sink ~round
    ~pending:(Job_pool.total_pending pool)
    ~reconfigs:(Ledger.reconfig_count ledger - reconfigs0)
    ~drops:(Ledger.drop_count ledger - drops0)
    ~execs:(Ledger.exec_count ledger - execs0);
  t.round <- round + 1;
  if t.checkpoint_every > 0 && t.round mod t.checkpoint_every = 0 then
    take_checkpoint t

let abort t ~reason =
  Event_sink.write_aborted t.sink ~round:t.round ~reason;
  Event_sink.flush t.sink

let finish t =
  if t.finished then invalid_arg (t.label ^ ": double finish");
  t.finished <- true;
  Event_sink.write_summary t.sink ~delta:t.config.delta
    ~reconfigs:(Ledger.reconfig_count t.ledger)
    ~failed:(Ledger.failed_reconfig_count t.ledger)
    ~drops:(Ledger.drop_count t.ledger)
    ~execs:(Ledger.exec_count t.ledger);
  Event_sink.flush t.sink;
  let stats =
    t.pi.p_stats ()
    @ (match t.probes with Some p -> Probe.snapshot p.registry | None -> [])
  in
  {
    ledger = t.ledger;
    stats;
    final_assignment = t.assignment;
    profile = (if t.profile then Some t.prof else None);
  }

(* ---- snapshot (rrs-snap/1 and /2) ----

   The document's source of truth for restore is the deterministic replay
   section: config + fault plan + a replay base + the arrivals to replay
   on top of it + the still buffered feed. In rrs-snap/1 the base is
   round 0 and the arrivals are the complete history; in rrs-snap/2 the
   base is the latest materialized-state checkpoint ([base_*] lines) and
   the arrivals are only those consumed since it. Either way the
   [check_*] lines carry the current materialized scheduler state (pool
   deadlines, assignment, offline set, ledger counters); [restore]
   replays and cross-checks them, so a snapshot that does not reproduce
   (nondeterministic policy, a policy-serialization bug, version drift)
   fails loudly instead of silently diverging. *)

let ints_to_json array =
  let buffer = Buffer.create 64 in
  Buffer.add_char buffer '[';
  Array.iteri
    (fun i v ->
      if i > 0 then Buffer.add_char buffer ',';
      Buffer.add_string buffer (string_of_int v))
    array;
  Buffer.add_char buffer ']';
  Buffer.contents buffer

let request_fields request =
  let colors = Array.of_list (List.map fst request) in
  let counts = Array.of_list (List.map snd request) in
  Printf.sprintf "\"colors\":%s,\"counts\":%s" (ints_to_json colors)
    (ints_to_json counts)

let pending_fields deadlines =
  let ds = Array.of_list (List.map fst deadlines) in
  let ks = Array.of_list (List.map snd deadlines) in
  Printf.sprintf "\"deadlines\":%s,\"counts\":%s" (ints_to_json ds)
    (ints_to_json ks)

let snapshot ?version t =
  let version =
    match version with
    | Some v -> v
    | None -> if t.checkpoint_every > 0 || t.base <> None then 2 else 1
  in
  let schema = schema_of_version version in
  if version = 1 && t.base <> None then
    invalid_arg
      (t.label
     ^ ": cannot write rrs-snap/1 after checkpoint compaction (the arrival \
        history no longer reaches round 0); snapshot with version 2");
  let buffer = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buffer s;
                                   Buffer.add_char buffer '\n') fmt in
  (match version with
  | 1 ->
      line
        "{\"schema\":%s,\"name\":%s,\"delta\":%d,\"n\":%d,\"speed\":%d,\
         \"horizon\":%d,\"bounds\":%s,\"policy\":%s,\"round\":%d,\
         \"accepted\":%d}"
        (Json.escape schema)
        (Json.escape t.config.name)
        t.config.delta t.config.n t.config.speed t.config.horizon
        (ints_to_json t.config.bounds)
        (Json.escape t.pi.p_name)
        t.round t.accepted_jobs
  | _ ->
      line
        "{\"schema\":%s,\"name\":%s,\"delta\":%d,\"n\":%d,\"speed\":%d,\
         \"horizon\":%d,\"bounds\":%s,\"policy\":%s,\"round\":%d,\
         \"accepted\":%d,\"checkpoint_every\":%d}"
        (Json.escape schema)
        (Json.escape t.config.name)
        t.config.delta t.config.n t.config.speed t.config.horizon
        (ints_to_json t.config.bounds)
        (Json.escape t.pi.p_name)
        t.round t.accepted_jobs t.checkpoint_every);
  (match t.fault_plan with
  | None -> ()
  | Some plan ->
      List.iter
        (fun { Fault.location; from_round; until_round } ->
          line
            "{\"type\":\"fault_crash\",\"location\":%d,\"from\":%d,\
             \"until\":%d}"
            location from_round until_round)
        plan.Fault.crashes;
      List.iter
        (fun { Fault.rf_round; rf_location } ->
          line "{\"type\":\"fault_reconfig\",\"round\":%d,\"location\":%d}"
            rf_round rf_location)
        plan.Fault.reconfig_failures);
  (* The /2 replay base: restore seeds this state directly instead of
     replaying rounds [0..base.round-1]. *)
  (match t.base with
  | None -> ()
  | Some ck ->
      line "{\"type\":\"base\",\"round\":%d,\"accepted\":%d}" ck.ck_round
        ck.ck_accepted;
      List.iter
        (fun (color, deadlines) ->
          line "{\"type\":\"base_pending\",\"color\":%d,%s}" color
            (pending_fields deadlines))
        ck.ck_pending;
      line "{\"type\":\"base_assignment\",\"colors\":%s}"
        (ints_to_json ck.ck_assignment);
      if ck.ck_offline <> [] then
        line "{\"type\":\"base_offline\",\"locations\":%s}"
          (ints_to_json (Array.of_list ck.ck_offline));
      line
        "{\"type\":\"base_counters\",\"reconfigs\":%d,\"failed\":%d,\
         \"drops\":%d,\"execs\":%d}"
        ck.ck_reconfigs ck.ck_failed ck.ck_drops ck.ck_execs;
      line "{\"type\":\"base_policy\",\"blob\":%s}" (Json.escape ck.ck_policy));
  List.iter
    (fun (round, request) ->
      line "{\"type\":\"arrival\",\"round\":%d,%s}" round
        (request_fields request))
    (List.rev t.history);
  (match buffered_request t with
  | [] -> ()
  | request -> line "{\"type\":\"buffered\",%s}" (request_fields request));
  Array.iteri
    (fun color _ ->
      match Job_pool.deadlines t.pool color with
      | [] -> ()
      | deadlines ->
          line "{\"type\":\"check_pending\",\"color\":%d,%s}" color
            (pending_fields deadlines))
    t.config.bounds;
  line "{\"type\":\"check_assignment\",\"colors\":%s}"
    (ints_to_json
       (Array.map (function None -> -1 | Some c -> c) t.assignment));
  (match offline_list t.offline with
  | [] -> ()
  | offline ->
      line "{\"type\":\"check_offline\",\"locations\":%s}"
        (ints_to_json (Array.of_list offline)));
  line
    "{\"type\":\"check_counters\",\"reconfigs\":%d,\"failed\":%d,\
     \"drops\":%d,\"execs\":%d,\"cost\":%d}"
    (Ledger.reconfig_count t.ledger)
    (Ledger.failed_reconfig_count t.ledger)
    (Ledger.drop_count t.ledger)
    (Ledger.exec_count t.ledger)
    (Ledger.total_cost t.ledger);
  line "{\"type\":\"end\"}";
  Buffer.contents buffer

let save ?version t ~path =
  (* Atomic, as Trace.save: a drain interrupted mid-write must never
     leave a torn snapshot behind. *)
  let temp = path ^ ".tmp" in
  let out = open_out temp in
  Fun.protect
    ~finally:(fun () -> close_out out)
    (fun () -> output_string out (snapshot ?version t));
  Sys.rename temp path

(* ---- restore: replay + cross-check ---- *)

type parsed_snapshot = {
  ps_version : int; (* 1 or 2, from the schema line *)
  ps_checkpoint_every : int; (* 0 in /1 documents *)
  ps_config : config;
  ps_policy : string;
  ps_round : int;
  ps_accepted : int;
  ps_faults : Fault.plan option;
  ps_base : checkpoint option; (* the /2 replay base, when present *)
  ps_arrivals : (int * Types.request) list; (* chronological *)
  ps_buffered : Types.request;
  ps_pending : (int * (int * int) list) list; (* color -> deadline multiset *)
  ps_assignment : int array;
  ps_offline : int list;
  ps_counters : int * int * int * int; (* reconfigs, failed, drops, execs *)
}

let parse_request fields =
  let colors = Json.ints_field fields "colors" in
  let counts = Json.ints_field fields "counts" in
  if Array.length colors <> Array.length counts then
    raise (Json.Parse_error "colors/counts length mismatch");
  Array.to_list (Array.map2 (fun c k -> (c, k)) colors counts)

let parse_snapshot text =
  let lines =
    String.split_on_char '\n' text
    |> List.filter (fun line -> String.trim line <> "")
  in
  match lines with
  | [] -> Error "empty snapshot (no schema header)"
  | header :: rest -> (
      try
        let fields = Json.parse_fields header in
        let schema = Json.str_field fields "schema" in
        if schema <> snapshot_schema && schema <> snapshot_schema_v2 then
          Error
            (Printf.sprintf "unsupported snapshot schema %S (want %S or %S)"
               schema snapshot_schema snapshot_schema_v2)
        else begin
          let version = if schema = snapshot_schema then 1 else 2 in
          let ps_config =
            {
              name = Json.str_field fields "name";
              delta = Json.int_field fields "delta";
              n = Json.int_field fields "n";
              speed = Json.int_field fields "speed";
              horizon = Json.int_field fields "horizon";
              bounds = Json.ints_field fields "bounds";
            }
          in
          let ps_policy = Json.str_field fields "policy" in
          let ps_round = Json.int_field fields "round" in
          let ps_accepted = Json.int_field fields "accepted" in
          let ps_checkpoint_every =
            if version = 1 then 0
            else Json.int_field fields "checkpoint_every"
          in
          let crashes = ref [] and fault_reconfigs = ref [] in
          let arrivals = ref [] and buffered = ref [] in
          let pending = ref [] and offline = ref [] in
          let assignment = ref None and counters = ref None in
          let base_header = ref None and base_pending = ref [] in
          let base_assignment = ref None and base_offline = ref [] in
          let base_counters = ref None and base_policy = ref None in
          let only_v2 kind =
            if version = 1 then
              raise
                (Json.Parse_error
                   (Printf.sprintf "%S line in an rrs-snap/1 document" kind))
          in
          let ended = ref false in
          List.iteri
            (fun index line ->
              if !ended then
                raise
                  (Json.Parse_error
                     (Printf.sprintf "line %d: content after end" (index + 2)));
              let fields = Json.parse_fields line in
              match Json.str_field fields "type" with
              | "fault_crash" ->
                  crashes :=
                    {
                      Fault.location = Json.int_field fields "location";
                      from_round = Json.int_field fields "from";
                      until_round = Json.int_field fields "until";
                    }
                    :: !crashes
              | "fault_reconfig" ->
                  fault_reconfigs :=
                    {
                      Fault.rf_round = Json.int_field fields "round";
                      rf_location = Json.int_field fields "location";
                    }
                    :: !fault_reconfigs
              | "arrival" ->
                  arrivals :=
                    (Json.int_field fields "round", parse_request fields)
                    :: !arrivals
              | "buffered" -> buffered := parse_request fields
              | "base" ->
                  only_v2 "base";
                  base_header :=
                    Some
                      ( Json.int_field fields "round",
                        Json.int_field fields "accepted" )
              | "base_pending" ->
                  only_v2 "base_pending";
                  let color = Json.int_field fields "color" in
                  let ds = Json.ints_field fields "deadlines" in
                  let ks = Json.ints_field fields "counts" in
                  if Array.length ds <> Array.length ks then
                    raise
                      (Json.Parse_error "deadlines/counts length mismatch");
                  base_pending :=
                    ( color,
                      Array.to_list (Array.map2 (fun d k -> (d, k)) ds ks) )
                    :: !base_pending
              | "base_assignment" ->
                  only_v2 "base_assignment";
                  base_assignment := Some (Json.ints_field fields "colors")
              | "base_offline" ->
                  only_v2 "base_offline";
                  base_offline :=
                    Array.to_list (Json.ints_field fields "locations")
              | "base_counters" ->
                  only_v2 "base_counters";
                  base_counters :=
                    Some
                      ( Json.int_field fields "reconfigs",
                        Json.int_field fields "failed",
                        Json.int_field fields "drops",
                        Json.int_field fields "execs" )
              | "base_policy" ->
                  only_v2 "base_policy";
                  base_policy := Some (Json.str_field fields "blob")
              | "check_pending" ->
                  let color = Json.int_field fields "color" in
                  let ds = Json.ints_field fields "deadlines" in
                  let ks = Json.ints_field fields "counts" in
                  if Array.length ds <> Array.length ks then
                    raise
                      (Json.Parse_error "deadlines/counts length mismatch");
                  pending :=
                    ( color,
                      Array.to_list (Array.map2 (fun d k -> (d, k)) ds ks) )
                    :: !pending
              | "check_assignment" ->
                  assignment := Some (Json.ints_field fields "colors")
              | "check_offline" ->
                  offline :=
                    Array.to_list (Json.ints_field fields "locations")
              | "check_counters" ->
                  counters :=
                    Some
                      ( Json.int_field fields "reconfigs",
                        Json.int_field fields "failed",
                        Json.int_field fields "drops",
                        Json.int_field fields "execs" )
              | "end" -> ended := true
              | other ->
                  raise
                    (Json.Parse_error
                       (Printf.sprintf "line %d: unknown snapshot line %S"
                          (index + 2) other)))
            rest;
          if not !ended then Error "truncated snapshot (no end line)"
          else
            let base =
              match !base_header with
              | None ->
                  if
                    !base_pending <> [] || !base_assignment <> None
                    || !base_offline <> [] || !base_counters <> None
                    || !base_policy <> None
                  then Error "base_* lines without a base line"
                  else Ok None
              | Some (ck_round, ck_accepted) -> (
                  match (!base_assignment, !base_counters, !base_policy) with
                  | None, _, _ -> Error "snapshot missing base_assignment"
                  | _, None, _ -> Error "snapshot missing base_counters"
                  | _, _, None -> Error "snapshot missing base_policy"
                  | ( Some ck_assignment,
                      Some (ck_reconfigs, ck_failed, ck_drops, ck_execs),
                      Some ck_policy ) ->
                      Ok
                        (Some
                           {
                             ck_round;
                             ck_accepted;
                             ck_pending = List.rev !base_pending;
                             ck_assignment;
                             ck_offline = !base_offline;
                             ck_reconfigs;
                             ck_failed;
                             ck_drops;
                             ck_execs;
                             ck_policy;
                           }))
            in
            match (base, !assignment, !counters) with
            | Error message, _, _ -> Error message
            | _, None, _ -> Error "snapshot missing check_assignment"
            | _, _, None -> Error "snapshot missing check_counters"
            | Ok base, Some assignment, Some counters ->
                let faults =
                  if !crashes = [] && !fault_reconfigs = [] then None
                  else
                    Some
                      (Fault.make ~name:"restored"
                         ~crashes:(List.rev !crashes)
                         ~reconfig_failures:(List.rev !fault_reconfigs) ())
                in
                Ok
                  {
                    ps_version = version;
                    ps_checkpoint_every;
                    ps_config;
                    ps_policy;
                    ps_round;
                    ps_accepted;
                    ps_faults = faults;
                    ps_base = base;
                    ps_arrivals = List.rev !arrivals;
                    ps_buffered = !buffered;
                    ps_pending = List.rev !pending;
                    ps_assignment = assignment;
                    ps_offline = !offline;
                    ps_counters = counters;
                  }
        end
      with
      | Json.Parse_error message -> Error message
      | Fault.Invalid message -> Error message)

let check message condition = if condition then Ok () else Error message

let ( let* ) = Result.bind

let verify t ps =
  let reconfigs, failed, drops, execs = ps.ps_counters in
  let* () =
    check
      (Printf.sprintf
         "snapshot check failed: replayed counters \
          (reconfigs=%d failed=%d drops=%d execs=%d) differ from snapshot \
          (reconfigs=%d failed=%d drops=%d execs=%d)"
         (Ledger.reconfig_count t.ledger)
         (Ledger.failed_reconfig_count t.ledger)
         (Ledger.drop_count t.ledger)
         (Ledger.exec_count t.ledger)
         reconfigs failed drops execs)
      (Ledger.reconfig_count t.ledger = reconfigs
      && Ledger.failed_reconfig_count t.ledger = failed
      && Ledger.drop_count t.ledger = drops
      && Ledger.exec_count t.ledger = execs)
  in
  let* () =
    check "snapshot check failed: accepted-job count differs"
      (t.accepted_jobs = ps.ps_accepted)
  in
  let replayed =
    Array.map (function None -> -1 | Some c -> c) t.assignment
  in
  let* () =
    check "snapshot check failed: assignment differs" (replayed = ps.ps_assignment)
  in
  let offline =
    Array.to_list t.offline
    |> List.mapi (fun i o -> if o then Some i else None)
    |> List.filter_map Fun.id
  in
  let* () =
    check "snapshot check failed: offline set differs"
      (offline = ps.ps_offline)
  in
  let rec check_pending = function
    | [] -> Ok ()
    | (color, deadlines) :: rest ->
        if
          color >= 0
          && color < Array.length t.config.bounds
          && Job_pool.deadlines t.pool color = deadlines
        then check_pending rest
        else
          Error
            (Printf.sprintf
               "snapshot check failed: pending multiset of color %d differs"
               color)
  in
  let* () = check_pending ps.ps_pending in
  (* Every color absent from the snapshot must be idle after replay. *)
  let listed = List.map fst ps.ps_pending in
  let rec check_idle color =
    if color >= Array.length t.config.bounds then Ok ()
    else if List.mem color listed || Job_pool.pending t.pool color = 0 then
      check_idle (color + 1)
    else
      Error
        (Printf.sprintf
           "snapshot check failed: color %d pending after replay but idle in \
            snapshot"
           color)
  in
  check_idle 0

(* Install a checkpoint into a freshly created stepper: re-add the
   pending jobs (deadlines are >= ck_round >= 0, so a fresh pool accepts
   them; the next [step]'s drop phase advances the wheel), blit the
   assignment/offline sets, seed the ledger counters, apply the policy
   blob, and mark the trace as checkpoint-seeded so readers can reconcile
   the partial event stream. *)
let seed_checkpoint t ck =
  if Array.length ck.ck_assignment <> t.config.n then
    failwith "base_assignment length differs from n";
  List.iter
    (fun (color, deadlines) ->
      if color < 0 || color >= Array.length t.config.bounds then
        failwith (Printf.sprintf "base_pending of unknown color %d" color);
      List.iter
        (fun (deadline, count) -> Job_pool.add t.pool ~color ~deadline ~count)
        deadlines)
    ck.ck_pending;
  Array.iteri
    (fun location c ->
      t.assignment.(location) <- (if c < 0 then None else Some c))
    ck.ck_assignment;
  List.iter
    (fun location ->
      if location < 0 || location >= t.config.n then
        failwith
          (Printf.sprintf "base_offline location %d out of range" location);
      if not t.offline.(location) then begin
        t.offline.(location) <- true;
        t.offline_count <- t.offline_count + 1
      end)
    ck.ck_offline;
  Ledger.seed t.ledger ~reconfigs:ck.ck_reconfigs ~failed:ck.ck_failed
    ~drops:ck.ck_drops ~execs:ck.ck_execs;
  t.round <- ck.ck_round;
  t.accepted_jobs <- ck.ck_accepted;
  t.pi.p_deserialize ck.ck_policy;
  t.base <- Some ck;
  Event_sink.write_restored t.sink ~round:ck.ck_round
    ~reconfigs:ck.ck_reconfigs ~failed:ck.ck_failed ~drops:ck.ck_drops
    ~execs:ck.ck_execs

let restore ?record_events ?sink ?probes ?profile ?label ?checkpoint_every
    ~policy:(module P : Policy.POLICY) text =
  let* ps = parse_snapshot text in
  let* () =
    check
      (Printf.sprintf "snapshot was taken under policy %S, not %S" ps.ps_policy
         P.name)
      (ps.ps_policy = P.name)
  in
  match
    let t =
      create ?record_events ?sink ?probes ?profile ?faults:ps.ps_faults ?label
        ~checkpoint_every:
          (match checkpoint_every with
          | Some k -> k
          | None -> ps.ps_checkpoint_every)
        ~policy:(module P) ps.ps_config
    in
    (* Deterministic replay from the base (round 0 for /1, the embedded
       checkpoint for /2). The replayed events are re-emitted into the
       (fresh) sink, so the restored stream is a self-consistent
       rrs-events document — complete for /1, checkpoint-marked for /2. *)
    let start =
      match ps.ps_base with
      | None -> 0
      | Some ck ->
          if ck.ck_round > ps.ps_round then
            failwith
              (Printf.sprintf "base round %d > snapshot round %d" ck.ck_round
                 ps.ps_round);
          seed_checkpoint t ck;
          ck.ck_round
    in
    let arrivals = ref ps.ps_arrivals in
    for round = start to ps.ps_round - 1 do
      (match !arrivals with
      | (r, request) :: rest when r = round ->
          feed t request;
          arrivals := rest
      | _ -> ());
      step t
    done;
    (match !arrivals with
    | [] -> ()
    | (r, _) :: _ ->
        failwith
          (Printf.sprintf
             "snapshot arrival at round %d outside replay range %d..%d" r start
             (ps.ps_round - 1)));
    feed t ps.ps_buffered;
    t
  with
  | t ->
      let* () = verify t ps in
      Ok t
  | exception e -> Error ("restore: " ^ Printexc.to_string e)
