(** Incremental round engine: the paper's four-phase round model, one
    round at a time, for online serving.

    {!Engine.run} is a loop over this module — the stepper IS the engine,
    so a served session and a batch run execute the same code and emit
    byte-identical [rrs-events/2] streams. The serving layer
    ([Rrs_server]) holds one stepper per session, [feed]s arrivals as
    they come in over the wire and [step]s rounds on demand; nothing has
    to be known up front, unlike {!Instance.t} which materializes the
    whole request sequence before a run starts.

    Lifecycle: [create] (writes the stream header) -> any interleaving of
    [feed] and [step] -> [finish] (writes the closing summary) — or
    [abort] if a policy raised mid-round. [feed] accumulates arrivals for
    the round the {e next} [step] executes; a round with no feeds is a
    legal idle round.

    {1 Snapshot / restore (schemas [rrs-snap/1] and [rrs-snap/2])}

    [snapshot] captures the full scheduler state as a versioned JSONL
    document; [restore] rebuilds a live stepper from it by {e
    deterministic replay}: the document embeds the config, the fault
    plan, a replay base and the arrivals consumed since that base, and
    restore re-runs them round by round (policies are deterministic, so
    this reconstructs the policy's live state exactly). The document
    also carries the current materialized state (pool deadline
    multisets, assignment, offline set, ledger counters); restore
    cross-checks the replay against them and fails loudly on any
    mismatch rather than continuing from a diverged state.

    In [rrs-snap/1] the replay base is round 0 and the document embeds
    {e every} arrival ever consumed — snapshot size and restore time
    grow as O(total arrivals fed), which is fine for batch runs and
    bounded experiments but unbounded for a long-lived serving session.

    [rrs-snap/2] fixes that lifetime bound: with [checkpoint_every = K]
    (> 0), every K-th round the stepper materializes its state — pool,
    assignment, offline set, ledger counters, and the policy's
    {!Policy.POLICY.serialize} blob — as the new replay base and drops
    the arrival history it supersedes. Snapshots then embed the
    checkpoint ([base_*] lines) plus at most K rounds of arrivals, so
    resident history, snapshot bytes and restore replay time are all
    O(K), independent of the rounds served. [restore] accepts both
    schemas; a /2 restore seeds the checkpoint, replays only the delta
    rounds, and still runs every cross-check.

    Replayed events are re-emitted into the restored stepper's (fresh)
    sink. For /1 the restored stream is a complete rrs-events document
    from round 0, byte-identical to an uninterrupted run's. For /2 the
    stream starts at the checkpoint: a [restored] line written right
    after the header carries the event totals accumulated before it, so
    stream readers ({!Rrs_stats.Report}) still reconcile the closing
    summary against the folded events. *)

(** Phase slot names of [result.profile], in slot order:
    [drop; arrival; reconfig; execute]. *)
val phase_names : string list

val snapshot_schema : string

(** [rrs-snap/2], the checkpointed snapshot schema. *)
val snapshot_schema_v2 : string

(** The schema id of a snapshot version (1 or 2).
    @raise Invalid_argument on any other version. *)
val schema_of_version : int -> string

(** Static run parameters. [horizon] is nominal for a served session (it
    sizes fault-plan compilation and is echoed in the stream header);
    stepping past it is legal — fault plans are simply inert there. *)
type config = {
  name : string;
  delta : int;
  bounds : int array; (* bounds.(c) = D_c >= 1; length = number of colors *)
  n : int;
  speed : int; (* mini-rounds per round, >= 1 *)
  horizon : int;
}

type result = {
  ledger : Ledger.t;
  stats : (string * int) list;
      (* policy-reported counters, then the probe snapshot (if any) *)
  final_assignment : Types.color option array;
  profile : Rrs_obs.Profile.t option;
}

(** The standard engine probes (see {!Engine}); exposed so analysis
    helpers can reuse the record shape. *)
type probes = {
  registry : Rrs_obs.Probe.registry;
  exec_slack : Rrs_obs.Probe.histogram;
  drop_latency : Rrs_obs.Probe.histogram;
  round_reconfigs : Rrs_obs.Probe.histogram;
  queue_depth : Rrs_obs.Probe.histogram;
  offline_locations : Rrs_obs.Probe.histogram;
  failed_reconfigs : Rrs_obs.Probe.counter;
  color_depth : Rrs_obs.Probe.gauge array;
}

type t

(** [create ~policy config] builds a stepper at round 0 and writes the
    [rrs-events/2] header to the sink. Parameters as {!Engine.run};
    [label] prefixes every [Invalid_argument] this stepper raises
    (default ["Stepper"]; [Engine.run] passes its own name so existing
    error messages are unchanged). [checkpoint_every] (default 0 =
    never) makes every K-th round materialize a checkpoint and compact
    the arrival history — see the module docs; a stepper with
    checkpointing on defaults {!snapshot} to [rrs-snap/2].
    @raise Invalid_argument on [n < 1], [speed < 1], [delta < 1], empty
    or invalid [bounds], a negative [checkpoint_every], or a fault plan
    naming a location [>= n]. *)
val create :
  ?record_events:bool ->
  ?sink:Event_sink.t ->
  ?probes:Rrs_obs.Probe.registry ->
  ?profile:bool ->
  ?faults:Fault.plan ->
  ?checkpoint_every:int ->
  ?label:string ->
  policy:(module Policy.POLICY) ->
  config ->
  t

(** [feed t request] queues arrivals for the round the next [step]
    executes. Multiple feeds accumulate; the request is normalized at
    consumption. @raise Invalid_argument on an unknown color, a negative
    count, or a finished stepper. *)
val feed : t -> Types.request -> unit

(** [step t] runs one full round: fault transitions, drop phase, arrival
    phase (consuming the fed buffer), [speed] reconfigure+execute
    mini-rounds, then the probes and the streamed round snapshot.
    @raise Invalid_argument on a policy protocol violation (wrong target
    length, color out of range) or a finished stepper. *)
val step : t -> unit

(** Close the stream with an explicit [aborted] record and flush (the
    stepper's round names the aborting round). Use when [step] raised and
    the run will not continue. *)
val abort : t -> reason:string -> unit

(** Write the closing summary, flush, and return the run's result.
    @raise Invalid_argument on double finish. *)
val finish : t -> result

(** {1 Accessors} *)

(** The round the next [step] executes (= rounds executed so far). *)
val round : t -> int

val ledger : t -> Ledger.t

(** Jobs pending in the pool (excludes the fed-but-unstepped buffer). *)
val pool_pending : t -> int

(** Jobs fed but not yet consumed by a [step]. *)
val buffered_jobs : t -> int

(** Total jobs accepted by [feed] since creation (survives restore). *)
val accepted_jobs : t -> int

val policy_name : t -> string
val config : t -> config
val finished : t -> bool

(** Copy of the current physical assignment. *)
val assignment : t -> Types.color option array

(** The checkpoint interval this stepper was created with (0 = never). *)
val checkpoint_every : t -> int

(** Round of the latest checkpoint — the replay base a snapshot embeds —
    or 0 when none has been taken (replay starts at round 0 either way). *)
val base_round : t -> int

(** Rounds currently retained in the arrival history (the replay delta).
    Bounded by [checkpoint_every] when checkpointing is on; grows with
    every arrival-carrying round otherwise. *)
val history_rounds : t -> int

(** {1 Snapshot / restore} *)

(** The full scheduler state as an [rrs-snap/1] or [/2] JSONL document.
    [version] defaults to 2 when the stepper checkpoints (or has a base),
    1 otherwise — so steppers created without [checkpoint_every] emit the
    same bytes as before.
    @raise Invalid_argument on a version other than 1 or 2, or on
    [~version:1] after a checkpoint has compacted the history (the
    document could no longer replay from round 0). *)
val snapshot : ?version:int -> t -> string

(** [save t ~path] writes {!snapshot} atomically (temp + rename). *)
val save : ?version:int -> t -> path:string -> unit

(** [restore ~policy doc] rebuilds a stepper by deterministic replay —
    from round 0 for [rrs-snap/1], from the embedded checkpoint for
    [rrs-snap/2] — and cross-checks the result against the document's
    materialized state (see module docs). [policy] must be the module
    the snapshot names. [checkpoint_every] overrides the document's
    interval for the restored stepper (default: keep the document's;
    0 for /1 documents). Replayed events go to [sink]. *)
val restore :
  ?record_events:bool ->
  ?sink:Event_sink.t ->
  ?probes:Rrs_obs.Probe.registry ->
  ?profile:bool ->
  ?label:string ->
  ?checkpoint_every:int ->
  policy:(module Policy.POLICY) ->
  string ->
  (t, string) Stdlib.result
